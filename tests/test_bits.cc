/**
 * @file
 * Unit tests for the bit-manipulation helpers that underpin chunk
 * addressing and pair enumeration.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"

namespace qgpu
{
namespace
{

TEST(Bits, LowMask)
{
    EXPECT_EQ(bits::lowMask(0), 0u);
    EXPECT_EQ(bits::lowMask(1), 1u);
    EXPECT_EQ(bits::lowMask(4), 0xfu);
    EXPECT_EQ(bits::lowMask(64), ~std::uint64_t{0});
}

TEST(Bits, TestSetClear)
{
    std::uint64_t v = 0;
    v = bits::setBit(v, 5);
    EXPECT_TRUE(bits::testBit(v, 5));
    EXPECT_FALSE(bits::testBit(v, 4));
    v = bits::clearBit(v, 5);
    EXPECT_EQ(v, 0u);
}

TEST(Bits, InsertZeroBitAtZero)
{
    // Inserting at position 0 doubles the value.
    for (std::uint64_t v : {0ull, 1ull, 5ull, 1000ull})
        EXPECT_EQ(bits::insertZeroBit(v, 0), v << 1);
}

TEST(Bits, InsertZeroBitMiddle)
{
    // 0b1011 with a zero inserted at position 2 -> 0b10011.
    EXPECT_EQ(bits::insertZeroBit(0b1011, 2), 0b10011u);
}

TEST(Bits, InsertZeroBitEnumeratesPairs)
{
    // For n = 4 qubits and target t, inserting a zero at t over
    // i in [0, 8) must produce each index with bit t clear, exactly
    // once.
    for (int t = 0; t < 4; ++t) {
        std::vector<bool> seen(16, false);
        for (std::uint64_t i = 0; i < 8; ++i) {
            const std::uint64_t idx = bits::insertZeroBit(i, t);
            ASSERT_LT(idx, 16u);
            EXPECT_FALSE(bits::testBit(idx, t));
            EXPECT_FALSE(seen[idx]);
            seen[idx] = true;
        }
    }
}

TEST(Bits, InsertZeroBitsMulti)
{
    // Inserting zeros at {0, 2} into 0b11: bit0 -> pos 1, bit1 ->
    // pos 3 (positions 0 and 2 forced to zero).
    const std::vector<int> pos = {0, 2};
    EXPECT_EQ(bits::insertZeroBits(0b11u, pos), 0b1010u);
}

TEST(Bits, InsertZeroBitsEnumeratesGroups)
{
    // Two insertion points must enumerate all indices with both bits
    // clear, uniquely.
    const std::vector<int> pos = {1, 3};
    std::vector<bool> seen(32, false);
    for (std::uint64_t i = 0; i < 8; ++i) {
        const std::uint64_t idx = bits::insertZeroBits(i, pos);
        ASSERT_LT(idx, 32u);
        EXPECT_FALSE(bits::testBit(idx, 1));
        EXPECT_FALSE(bits::testBit(idx, 3));
        EXPECT_FALSE(seen[idx]);
        seen[idx] = true;
    }
}

TEST(Bits, TrailingOnes)
{
    EXPECT_EQ(bits::trailingOnes(0b0), 0);
    EXPECT_EQ(bits::trailingOnes(0b1), 1);
    EXPECT_EQ(bits::trailingOnes(0b0111), 3);
    EXPECT_EQ(bits::trailingOnes(0b1011), 2);
    EXPECT_EQ(bits::trailingOnes(0b0110), 0);
}

TEST(Bits, Pow2Helpers)
{
    EXPECT_TRUE(bits::isPow2(1));
    EXPECT_TRUE(bits::isPow2(64));
    EXPECT_FALSE(bits::isPow2(0));
    EXPECT_FALSE(bits::isPow2(12));
    EXPECT_EQ(bits::log2Exact(1), 0);
    EXPECT_EQ(bits::log2Exact(1ull << 33), 33);
}

TEST(Bits, CeilDiv)
{
    EXPECT_EQ(bits::ceilDiv(10, 3), 4u);
    EXPECT_EQ(bits::ceilDiv(9, 3), 3u);
    EXPECT_EQ(bits::ceilDiv(1, 100), 1u);
}

class InsertZeroBitParam : public ::testing::TestWithParam<int>
{
};

TEST_P(InsertZeroBitParam, RoundTripRemove)
{
    // Property: removing the inserted bit recovers the input.
    const int pos = GetParam();
    for (std::uint64_t v = 0; v < 256; ++v) {
        const std::uint64_t with = bits::insertZeroBit(v, pos);
        const std::uint64_t low = with & bits::lowMask(pos);
        const std::uint64_t high = (with >> (pos + 1)) << pos;
        EXPECT_EQ(high | low, v);
    }
}

INSTANTIATE_TEST_SUITE_P(AllPositions, InsertZeroBitParam,
                         ::testing::Range(0, 12));

} // namespace
} // namespace qgpu
