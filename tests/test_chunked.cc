/**
 * @file
 * Chunked state vector tests: layout, accessors, rechunking, and
 * equality with the flat representation.
 */

#include <gtest/gtest.h>

#include "circuits/circuits.hh"
#include "statevec/apply.hh"
#include "statevec/chunked.hh"

namespace qgpu
{
namespace
{

TEST(Chunked, LayoutCounts)
{
    ChunkedStateVector s(7, 4); // the paper's running example
    EXPECT_EQ(s.numChunks(), 8u);
    EXPECT_EQ(s.chunkSize(), 16u);
    EXPECT_EQ(s.chunkBytes(), 16u * sizeof(Amp));
}

TEST(Chunked, InitialState)
{
    ChunkedStateVector s(6, 2);
    EXPECT_EQ(s.amp(0), (Amp{1, 0}));
    EXPECT_NEAR(s.norm(), 1.0, 1e-15);
    EXPECT_TRUE(s.chunkIsZero(3));
    EXPECT_FALSE(s.chunkIsZero(0));
}

TEST(Chunked, AccessorAddressing)
{
    ChunkedStateVector s(5, 2);
    s.amp(13) = Amp{0.5, -0.5};
    // Index 13 = 0b01101: chunk 0b011 = 3, offset 0b01 = 1.
    EXPECT_EQ(s.chunk(3)[1], (Amp{0.5, -0.5}));
}

TEST(Chunked, ToFromFlat)
{
    const StateVector flat = simulateReference(circuits::qft(6));
    ChunkedStateVector s(6, 3);
    s.fromFlat(flat);
    EXPECT_LT(s.toFlat().maxAbsDiff(flat), 1e-16);
}

class RechunkParam
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(RechunkParam, RechunkPreservesAmplitudes)
{
    const auto &[from_bits, to_bits] = GetParam();
    const Circuit c = circuits::makeBenchmark("hlf", 6);
    const StateVector flat = simulateReference(c);

    ChunkedStateVector s(6, from_bits);
    s.fromFlat(flat);
    s.rechunk(to_bits);
    EXPECT_EQ(s.chunkBits(), to_bits);
    EXPECT_LT(s.toFlat().maxAbsDiff(flat), 1e-16);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, RechunkParam,
    ::testing::Combine(::testing::Values(0, 2, 4, 6),
                       ::testing::Values(0, 1, 3, 5, 6)));

TEST(Chunked, ExtremeChunkSizes)
{
    // One amplitude per chunk and one chunk for everything both work.
    ChunkedStateVector tiny(4, 0);
    EXPECT_EQ(tiny.numChunks(), 16u);
    ChunkedStateVector one(4, 4);
    EXPECT_EQ(one.numChunks(), 1u);
}

TEST(ChunkedDeath, BadChunkBits)
{
    EXPECT_DEATH(ChunkedStateVector(4, 5), "chunk bits");
}

} // namespace
} // namespace qgpu
