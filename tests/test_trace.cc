/**
 * @file
 * Trace subsystem tests: span recording and nesting, per-phase
 * busy/exposed aggregation, exporter shape, and the engine
 * integration (a full-flags StreamingEngine run must produce nonzero
 * h2d/d2h/compress phase totals whose exposed times partition the
 * run).
 */

#include <thread>

#include <gtest/gtest.h>

#include "common/trace.hh"
#include "harness/experiment.hh"

namespace qgpu
{
namespace
{

TEST(Trace, DisabledRecordsNothing)
{
    Trace trace;
    EXPECT_FALSE(trace.enabled());
    trace.record(phases::h2d, "xfer", "gpu0.h2d", 0.0, 1.0);
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.horizon(), 0.0);
}

TEST(Trace, RecordAndAggregate)
{
    Trace trace;
    trace.enable();
    trace.record(phases::h2d, "xfer", "gpu0.h2d", 0.0, 2.0);
    trace.record(phases::h2d, "xfer", "gpu0.h2d", 3.0, 4.0);
    trace.record(phases::compute, "kernel", "gpu0.compute", 1.0, 5.0);

    const auto totals = trace.phaseTotals();
    EXPECT_DOUBLE_EQ(totals.at(phases::h2d).busy, 3.0);
    EXPECT_EQ(totals.at(phases::h2d).spans, 2u);
    EXPECT_DOUBLE_EQ(totals.at(phases::compute).busy, 4.0);
    EXPECT_DOUBLE_EQ(trace.horizon(), 5.0);
}

TEST(Trace, ExposedTimePartitionsCoverage)
{
    // compute [1,5] outranks the transfers; h2d keeps [0,1], d2h
    // keeps [5,6]. Exposure must partition the covered span [0,6].
    Trace trace;
    trace.enable();
    trace.record(phases::h2d, "xfer", "gpu0.h2d", 0.0, 2.0);
    trace.record(phases::compute, "kernel", "gpu0.compute", 1.0, 5.0);
    trace.record(phases::d2h, "xfer", "gpu0.d2h", 4.0, 6.0);

    const auto totals = trace.phaseTotals();
    EXPECT_DOUBLE_EQ(totals.at(phases::compute).exposed, 4.0);
    EXPECT_DOUBLE_EQ(totals.at(phases::h2d).exposed, 1.0);
    EXPECT_DOUBLE_EQ(totals.at(phases::d2h).exposed, 1.0);
    EXPECT_DOUBLE_EQ(trace.coveredTime(), 6.0);

    double sum = 0.0;
    for (const auto &[phase, total] : totals)
        sum += total.exposed;
    EXPECT_DOUBLE_EQ(sum, trace.coveredTime());
}

TEST(Trace, ExposureHandlesFragmentedOverlap)
{
    // Two disjoint compute bursts over one long h2d: the transfer's
    // exposed time is exactly the gaps.
    Trace trace;
    trace.enable();
    trace.record(phases::h2d, "xfer", "gpu0.h2d", 0.0, 10.0);
    trace.record(phases::compute, "kernel", "gpu0.compute", 1.0, 3.0);
    trace.record(phases::compute, "kernel", "gpu0.compute", 6.0, 8.0);

    const auto totals = trace.phaseTotals();
    EXPECT_DOUBLE_EQ(totals.at(phases::compute).exposed, 4.0);
    EXPECT_DOUBLE_EQ(totals.at(phases::h2d).exposed, 6.0);
}

TEST(Trace, UnknownPhaseRanksAfterPriority)
{
    Trace trace;
    trace.enable();
    trace.record("custom", "x", "r", 0.0, 4.0);
    trace.record(phases::d2h, "xfer", "gpu0.d2h", 0.0, 2.0);
    const auto totals = trace.phaseTotals();
    EXPECT_DOUBLE_EQ(totals.at(phases::d2h).exposed, 2.0);
    EXPECT_DOUBLE_EQ(totals.at("custom").exposed, 2.0);
}

TEST(Trace, CountersAttachToSpans)
{
    Trace trace;
    trace.enable();
    trace.record(phases::prune, "decide", "host.prune", 1.0, 1.0,
                 {{"chunks.pruned", 12.0}, {"chunks.processed", 4.0}});
    ASSERT_EQ(trace.spans().size(), 1u);
    const auto &counters = trace.spans()[0].counters;
    ASSERT_EQ(counters.size(), 2u);
    EXPECT_EQ(counters[0].first, "chunks.pruned");
    EXPECT_DOUBLE_EQ(counters[0].second, 12.0);
}

TEST(Trace, ScopedSpansNest)
{
    Trace trace;
    trace.enable();
    {
        ScopedSpan outer(trace, phases::hostCompute, "outer");
        {
            ScopedSpan inner(trace, phases::hostCompute, "inner");
            inner.counter("items", 3.0);
            inner.counter("items", 2.0);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }
    // Inner closes first, so it is recorded first, one level deeper.
    ASSERT_EQ(trace.spans().size(), 2u);
    const auto &inner = trace.spans()[0];
    const auto &outer = trace.spans()[1];
    EXPECT_EQ(inner.label, "inner");
    EXPECT_EQ(inner.depth, 1);
    EXPECT_EQ(outer.label, "outer");
    EXPECT_EQ(outer.depth, 0);
    EXPECT_GE(inner.start, outer.start);
    EXPECT_LE(inner.end, outer.end);
    EXPECT_GT(inner.duration(), 0.0);
    // Repeated counter() calls on one name aggregate.
    ASSERT_EQ(inner.counters.size(), 1u);
    EXPECT_DOUBLE_EQ(inner.counters[0].second, 5.0);
}

TEST(Trace, JsonExportShape)
{
    Trace trace;
    trace.enable();
    trace.record(phases::h2d, "xfer", "gpu0.h2d", 0.0, 2.0);
    trace.record(phases::compute, "kernel", "gpu0.compute", 2.0, 3.0,
                 {{"flops", 64.0}});

    const std::string json = trace.toJson();
    EXPECT_NE(json.find("\"phases\""), std::string::npos);
    EXPECT_NE(json.find("\"h2d\""), std::string::npos);
    EXPECT_NE(json.find("\"busy\""), std::string::npos);
    EXPECT_NE(json.find("\"exposed\""), std::string::npos);
    EXPECT_NE(json.find("\"spans\""), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"flops\": 64"), std::string::npos);
    // Compact form drops the span array but keeps the totals.
    const std::string compact = trace.toJson(false);
    EXPECT_EQ(compact.find("\"resource\""), std::string::npos);
    EXPECT_NE(compact.find("\"phases\""), std::string::npos);
}

TEST(Trace, CsvExportShape)
{
    Trace trace;
    trace.enable();
    trace.record(phases::h2d, "xfer", "gpu0.h2d", 0.0, 2.0);
    trace.record(phases::d2h, "xfer", "gpu0.d2h", 2.0, 3.0);

    const std::string csv = trace.toCsv();
    // Header + one row per span.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
    EXPECT_EQ(csv.rfind("phase,label,resource,start,end,depth", 0),
              0u);
    EXPECT_NE(csv.find("h2d,xfer,gpu0.h2d,0,2"), std::string::npos);
}

TEST(Trace, JsonEscaping)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(TraceEngine, StreamingRunProducesPhaseSpans)
{
    // Full Q-GPU flags on a machine that forces streaming: every
    // transfer/codec phase must show up with nonzero totals.
    const int n = 10;
    const Circuit c = circuits::makeBenchmark("qft", n);
    Machine m = harness::benchMachine(n);
    ExecOptions o;
    o.recordTrace = true;
    o.keepState = false;
    const RunResult r = harness::runOn("qgpu", m, c, o);

    ASSERT_FALSE(r.trace.empty());
    const auto totals = r.trace.phaseTotals();
    EXPECT_GT(totals.at(phases::h2d).busy, 0.0);
    EXPECT_GT(totals.at(phases::d2h).busy, 0.0);
    EXPECT_GT(totals.at(phases::compute).busy, 0.0);
    EXPECT_GT(totals.at(phases::compress).busy, 0.0);
    EXPECT_GT(totals.at(phases::prune).spans, 0u);

    // The exposed phase totals partition the covered time, which in
    // turn accounts for (nearly) the whole virtual run time — the
    // measurement contract of the breakdown figures.
    double exposed_sum = 0.0;
    for (const auto &[phase, total] : totals)
        exposed_sum += total.exposed;
    EXPECT_NEAR(exposed_sum, r.trace.coveredTime(),
                1e-9 * r.totalTime);
    EXPECT_GT(r.trace.coveredTime(), 0.95 * r.totalTime);
    EXPECT_LE(r.trace.horizon(), r.totalTime + 1e-12);
}

TEST(TraceEngine, TimelineDerivesFromTrace)
{
    const int n = 9;
    const Circuit c = circuits::makeBenchmark("gs", n);
    Machine m = harness::benchMachine(n);
    ExecOptions o;
    o.recordTimeline = true;
    o.keepState = false;
    const RunResult r = harness::runOn("qgpu", m, c, o);

    ASSERT_FALSE(r.trace.empty());
    ASSERT_FALSE(r.timeline.spans().empty());
    // Every positive-length trace span became a timeline event;
    // zero-length prune markers were dropped.
    std::size_t positive = 0;
    for (const auto &span : r.trace.spans())
        positive += span.end > span.start ? 1 : 0;
    EXPECT_EQ(r.timeline.spans().size(), positive);
    EXPECT_NE(r.timeline.render(60).find(".h2d"), std::string::npos);
}

TEST(TraceEngine, TraceOffByDefault)
{
    const Circuit c = circuits::makeBenchmark("bv", 8);
    Machine m = harness::benchMachine(8);
    const RunResult r = harness::runOn("naive", m, c);
    EXPECT_TRUE(r.trace.empty());
    EXPECT_TRUE(r.timeline.spans().empty());
}

TEST(TraceEngine, RunReportJsonShape)
{
    const Circuit c = circuits::makeBenchmark("qft", 8);
    Machine m = harness::benchMachine(8);
    ExecOptions o;
    o.recordTrace = true;
    const RunResult r = harness::runOn("qgpu", m, c, o);
    const std::string json = harness::runReportJson(r);
    EXPECT_NE(json.find("\"engine\": \"Q-GPU\""), std::string::npos);
    EXPECT_NE(json.find("\"total_time\""), std::string::npos);
    EXPECT_NE(json.find("\"stats\""), std::string::npos);
    EXPECT_NE(json.find("\"trace\""), std::string::npos);
    EXPECT_NE(json.find("\"time.total\""), std::string::npos);
}

} // namespace
} // namespace qgpu
