/**
 * @file
 * Tests for the named counter set used in engine reporting.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace qgpu
{
namespace
{

TEST(StatSet, AddCreatesAndAccumulates)
{
    StatSet s;
    EXPECT_FALSE(s.has("x"));
    s.add("x", 2.0);
    s.add("x", 3.0);
    EXPECT_TRUE(s.has("x"));
    EXPECT_DOUBLE_EQ(s.get("x"), 5.0);
}

TEST(StatSet, MissingIsZero)
{
    StatSet s;
    EXPECT_DOUBLE_EQ(s.get("nothing"), 0.0);
}

TEST(StatSet, SetOverwrites)
{
    StatSet s;
    s.add("x", 2.0);
    s.set("x", 10.0);
    EXPECT_DOUBLE_EQ(s.get("x"), 10.0);
}

TEST(StatSet, InsertionOrderPreserved)
{
    StatSet s;
    s.add("b", 1);
    s.add("a", 1);
    s.add("c", 1);
    s.add("a", 1); // no reordering on re-add
    const std::vector<std::string> want = {"b", "a", "c"};
    EXPECT_EQ(s.names(), want);
}

TEST(StatSet, Merge)
{
    StatSet a, b;
    a.add("x", 1.0);
    b.add("x", 2.0);
    b.add("y", 3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 3.0);
}

TEST(StatSet, ClearKeepsNames)
{
    StatSet s;
    s.add("x", 5.0);
    s.clear();
    EXPECT_TRUE(s.has("x"));
    EXPECT_DOUBLE_EQ(s.get("x"), 0.0);
}

TEST(StatSet, ToStringContainsEntries)
{
    StatSet s;
    s.add("alpha", 1.5);
    const std::string str = s.toString();
    EXPECT_NE(str.find("alpha"), std::string::npos);
    EXPECT_NE(str.find("1.5"), std::string::npos);
}

} // namespace
} // namespace qgpu
