/**
 * @file
 * Edge-case coverage: degenerate register and chunk geometries, the
 * deep-circuit generator end to end, and configuration extremes.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{
namespace
{

TEST(EdgeCases, TwoQubitCircuitThroughEveryEngine)
{
    Circuit bell(2, "bell");
    bell.h(0).cx(0, 1);
    const StateVector want = simulateReference(bell);
    for (const char *engine :
         {"baseline", "naive", "overlap", "pruning", "reorder",
          "qgpu", "cpu", "qsim", "qdk"}) {
        Machine m = machines::makeScaled(2);
        const RunResult r = harness::runOn(engine, m, bell);
        EXPECT_LT(r.state.maxAbsDiff(want), 1e-12) << engine;
    }
}

TEST(EdgeCases, SingleChunkConfiguration)
{
    // targetChunks = 1 degenerates to one chunk holding everything.
    const Circuit c = circuits::makeBenchmark("gs", 8);
    Machine m = harness::benchMachine(8);
    ExecOptions o;
    o.targetChunks = 1;
    o.dynamicChunks = false;
    const RunResult r = harness::runOn("qgpu", m, c, o);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-10);
}

TEST(EdgeCases, OneChunkPerAmplitude)
{
    const Circuit c = circuits::makeBenchmark("hlf", 8);
    Machine m = harness::benchMachine(8);
    ExecOptions o;
    o.targetChunks = 256; // = 2^8 -> chunkBits 0
    o.dynamicChunks = false;
    const RunResult r = harness::runOn("pruning", m, c, o);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-10);
}

TEST(EdgeCases, GateOnHighestQubitPairsExtremeChunks)
{
    Circuit c(8, "edge");
    c.h(7).cx(7, 0).h(0);
    Machine m = harness::benchMachine(8);
    const RunResult r = harness::runOn("qgpu", m, c);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-12);
}

TEST(EdgeCases, DeepGrqcIsExact)
{
    // ~1100 gates through the full recipe on a small register.
    const Circuit c = circuits::grqc(8, 80);
    ASSERT_GT(c.numGates(), 800u);
    Machine m = harness::benchMachine(8);
    ExecOptions o;
    o.codecSampleChunks = 2;
    const RunResult r = harness::runOn("qgpu", m, c, o);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-9);
}

TEST(EdgeCases, DiagonalOnlyCircuitNeverLeavesGround)
{
    // A circuit of only diagonal gates keeps |0...0| the sole
    // non-zero amplitude; with the NonDiagonal policy, Q-GPU prunes
    // every chunk transfer except chunk 0's.
    Circuit c(10, "diag");
    for (int q = 0; q < 10; ++q)
        c.t(q);
    for (int q = 0; q + 1 < 10; ++q)
        c.cz(q, q + 1);
    Machine m = harness::benchMachine(10);
    ExecOptions o;
    o.involvement = InvolvementPolicy::NonDiagonal;
    const RunResult r = harness::runOn("qgpu", m, c, o);
    EXPECT_NEAR(std::abs(r.state[0]), 1.0, 1e-12);
    // All visits but one chunk per gate pruned.
    EXPECT_GT(r.stats.get(statkeys::chunksPruned), 0.0);
    EXPECT_DOUBLE_EQ(r.stats.get(statkeys::chunksProcessed),
                     static_cast<double>(c.numGates()));
}

TEST(EdgeCases, TinyDeviceStillExact)
{
    // Device memory of barely four amplitudes forces thousands of
    // tiny batches.
    const Circuit c = circuits::makeBenchmark("bv", 8);
    Machine m = machines::makeScaled(8, machines::p100(),
                                     1.0 / 64.0);
    const RunResult r = harness::runOn("qgpu", m, c);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-10);
}

TEST(EdgeCases, ReorderOfSingleGateCircuit)
{
    Circuit c(3, "one");
    c.h(1);
    for (auto kind :
         {ReorderKind::Greedy, ReorderKind::ForwardLooking}) {
        const Circuit r = reorderCircuit(c, kind);
        ASSERT_EQ(r.numGates(), 1u);
        EXPECT_EQ(r.gates()[0].kind, GateKind::H);
    }
}

TEST(EdgeCases, EmptyCircuitRuns)
{
    const Circuit c(4, "empty");
    Machine m = harness::benchMachine(4);
    const RunResult r = harness::runOn("qgpu", m, c);
    EXPECT_EQ(r.state[0], (Amp{1, 0}));
    EXPECT_GE(r.totalTime, 0.0);
}

} // namespace
} // namespace qgpu
