/**
 * @file
 * Edge-case coverage: degenerate register and chunk geometries, the
 * deep-circuit generator end to end, and configuration extremes.
 */

#include <gtest/gtest.h>

#include "fault/integrity.hh"
#include "harness/experiment.hh"
#include "statevec/measure.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{
namespace
{

TEST(EdgeCases, TwoQubitCircuitThroughEveryEngine)
{
    Circuit bell(2, "bell");
    bell.h(0).cx(0, 1);
    const StateVector want = simulateReference(bell);
    for (const char *engine :
         {"baseline", "naive", "overlap", "pruning", "reorder",
          "qgpu", "cpu", "qsim", "qdk"}) {
        Machine m = machines::makeScaled(2);
        const RunResult r = harness::runOn(engine, m, bell);
        EXPECT_LT(r.state.maxAbsDiff(want), 1e-12) << engine;
    }
}

TEST(EdgeCases, SingleChunkConfiguration)
{
    // targetChunks = 1 degenerates to one chunk holding everything.
    const Circuit c = circuits::makeBenchmark("gs", 8);
    Machine m = harness::benchMachine(8);
    ExecOptions o;
    o.targetChunks = 1;
    o.dynamicChunks = false;
    const RunResult r = harness::runOn("qgpu", m, c, o);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-10);
}

TEST(EdgeCases, OneChunkPerAmplitude)
{
    const Circuit c = circuits::makeBenchmark("hlf", 8);
    Machine m = harness::benchMachine(8);
    ExecOptions o;
    o.targetChunks = 256; // = 2^8 -> chunkBits 0
    o.dynamicChunks = false;
    const RunResult r = harness::runOn("pruning", m, c, o);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-10);
}

TEST(EdgeCases, GateOnHighestQubitPairsExtremeChunks)
{
    Circuit c(8, "edge");
    c.h(7).cx(7, 0).h(0);
    Machine m = harness::benchMachine(8);
    const RunResult r = harness::runOn("qgpu", m, c);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-12);
}

TEST(EdgeCases, DeepGrqcIsExact)
{
    // ~1100 gates through the full recipe on a small register.
    const Circuit c = circuits::grqc(8, 80);
    ASSERT_GT(c.numGates(), 800u);
    Machine m = harness::benchMachine(8);
    ExecOptions o;
    o.codecSampleChunks = 2;
    const RunResult r = harness::runOn("qgpu", m, c, o);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-9);
}

TEST(EdgeCases, DiagonalOnlyCircuitNeverLeavesGround)
{
    // A circuit of only diagonal gates keeps |0...0| the sole
    // non-zero amplitude; with the NonDiagonal policy, Q-GPU prunes
    // every chunk transfer except chunk 0's.
    Circuit c(10, "diag");
    for (int q = 0; q < 10; ++q)
        c.t(q);
    for (int q = 0; q + 1 < 10; ++q)
        c.cz(q, q + 1);
    Machine m = harness::benchMachine(10);
    ExecOptions o;
    o.involvement = InvolvementPolicy::NonDiagonal;
    const RunResult r = harness::runOn("qgpu", m, c, o);
    EXPECT_NEAR(std::abs(r.state[0]), 1.0, 1e-12);
    // All visits but one chunk per gate pruned.
    EXPECT_GT(r.stats.get(statkeys::chunksPruned), 0.0);
    EXPECT_DOUBLE_EQ(r.stats.get(statkeys::chunksProcessed),
                     static_cast<double>(c.numGates()));
}

TEST(EdgeCases, TinyDeviceStillExact)
{
    // Device memory of barely four amplitudes forces thousands of
    // tiny batches.
    const Circuit c = circuits::makeBenchmark("bv", 8);
    Machine m = machines::makeScaled(8, machines::p100(),
                                     1.0 / 64.0);
    const RunResult r = harness::runOn("qgpu", m, c);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-10);
}

TEST(EdgeCases, ReorderOfSingleGateCircuit)
{
    Circuit c(3, "one");
    c.h(1);
    for (auto kind :
         {ReorderKind::Greedy, ReorderKind::ForwardLooking}) {
        const Circuit r = reorderCircuit(c, kind);
        ASSERT_EQ(r.numGates(), 1u);
        EXPECT_EQ(r.gates()[0].kind, GateKind::H);
    }
}

TEST(EdgeCases, EmptyCircuitRuns)
{
    const Circuit c(4, "empty");
    Machine m = harness::benchMachine(4);
    const RunResult r = harness::runOn("qgpu", m, c);
    EXPECT_EQ(r.state[0], (Amp{1, 0}));
    EXPECT_GE(r.totalTime, 0.0);
}

TEST(EdgeCases, EmptyCircuitNeverTouchesTheFaultPath)
{
    // With no gates there is nothing to ship, so even certain faults
    // (probability 1 everywhere) must never fire: the streaming
    // versions' fault path is strictly per-shipped-chunk. (Baseline
    // is the exception by design -- it bulk-loads the device region
    // regardless of the gate stream.)
    const Circuit c(6, "empty");
    ExecOptions o;
    o.verifyChunks = true;
    o.faultSpec = "h2d:1.0,d2h:1.0,codec:1.0,alloc:1.0";
    for (const Version v : allVersions()) {
        if (v == Version::Baseline)
            continue;
        Machine m = harness::benchMachine(6);
        const RunResult r = makeVersion(v, m, o)->run(c);
        ASSERT_TRUE(r.ok()) << versionName(v);
        EXPECT_EQ(r.state[0], (Amp{1, 0})) << versionName(v);
        for (const char *key :
             {intkeys::checksumMismatch, intkeys::fallbackRaw,
              intkeys::faultKey(FaultPoint::H2D),
              intkeys::faultKey(FaultPoint::D2H),
              intkeys::faultKey(FaultPoint::Codec),
              intkeys::faultKey(FaultPoint::Alloc)})
            EXPECT_EQ(r.stats.get(key), 0.0)
                << versionName(v) << " touched " << key;
    }
}

TEST(EdgeCases, MeasurementOnlyCircuitSamplesCleanlyUnderFaults)
{
    // A circuit whose only operations are identity placeholders (the
    // "measure-everything" program: no amplitude ever changes, all
    // the work is post-run sampling). It must flow through the sweep
    // cursor of every version with faults armed, recover exactly, and
    // sample |0...0> on every shot -- identically to a fault-free run.
    const int n = 6;
    Circuit c(n, "measure_only");
    for (int q = 0; q < n; ++q)
        c.add(Gate(GateKind::ID, {q}));

    ExecOptions clean;
    clean.faultSpec = "none";
    ExecOptions faulty;
    faulty.verifyChunks = true;
    faulty.faultSpec = "d2h:0.1,codec:0.5,alloc:0.2";

    for (const Version v : allVersions()) {
        Machine mc = harness::benchMachine(n);
        const RunResult ref = makeVersion(v, mc, clean)->run(c);
        Machine mf = harness::benchMachine(n);
        const RunResult r = makeVersion(v, mf, faulty)->run(c);
        ASSERT_TRUE(ref.ok());
        ASSERT_TRUE(r.ok()) << versionName(v) << ": "
                            << r.error->toString();
        EXPECT_EQ(r.state.maxAbsDiff(ref.state), 0.0)
            << versionName(v);

        Rng rng(17);
        const auto counts = sampleCounts(r.state, 64, rng);
        ASSERT_EQ(counts.size(), 1u) << versionName(v);
        EXPECT_EQ(counts.begin()->first, 0u);
        EXPECT_EQ(counts.begin()->second, 64u);
    }
}

} // namespace
} // namespace qgpu
