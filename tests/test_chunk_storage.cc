/**
 * @file
 * Unit tests for the pluggable cold-chunk storage layer
 * (statevec/chunk_storage.hh): backend round trips at the bit level
 * (including -0.0, denormals, and NaN payloads), the bounded working
 * set and clock eviction, zero elision vs value-zero chunks, checksum
 * tamper detection, re-partitioning under a bounded set, and the
 * shard-balanced victim preference.
 */

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "common/cacheinfo.hh"
#include "common/parallel.hh"
#include "fault/injector.hh"
#include "fault/sim_error.hh"
#include "circuits/circuits.hh"
#include "statevec/apply.hh"
#include "statevec/chunked.hh"

namespace qgpu
{
namespace
{

bool
bitsEqual(const StateVector &a, const StateVector &b)
{
    if (a.numQubits() != b.numQubits())
        return false;
    for (Index i = 0; i < stateSize(a.numQubits()); ++i)
        if (std::memcmp(&a[i], &b[i], sizeof(Amp)) != 0)
            return false;
    return true;
}

StorageConfig
config(StorageKind kind, Index working_set)
{
    StorageConfig cfg;
    cfg.kind = kind;
    cfg.workingSetChunks = working_set;
    return cfg;
}

TEST(StorageKindNames, RoundTrip)
{
    for (StorageKind k : {StorageKind::Raw, StorageKind::Compressed,
                          StorageKind::Spill}) {
        StorageKind parsed = StorageKind::Raw;
        ASSERT_TRUE(parseStorageKind(storageKindName(k), parsed));
        EXPECT_EQ(parsed, k);
    }
    StorageKind out = StorageKind::Raw;
    EXPECT_FALSE(parseStorageKind("zram", out));
    EXPECT_FALSE(parseStorageKind("", out));
}

// Bit-level round trip through both real backends, in both stream
// lanes, over the payloads the codec must not normalize: signed
// zeros, denormals, NaN payloads, infinities.
TEST(ColdStoreRoundTrip, PreservesEveryBitPattern)
{
    constexpr Index kChunk = 64;
    std::vector<Amp> amps(kChunk);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double denorm = std::numeric_limits<double>::denorm_min();
    const double inf = std::numeric_limits<double>::infinity();
    for (Index i = 0; i < kChunk; ++i)
        amps[i] = Amp{0.25 * static_cast<double>(i), -0.5};
    amps[0] = Amp{-0.0, 0.0};
    amps[1] = Amp{denorm, -denorm};
    amps[2] = Amp{nan, -nan};
    amps[3] = Amp{inf, -inf};

    // The fp32 lane is only ever selected when every component
    // round-trips double->float->double bit-exactly; -0.0, float
    // denormals, and infinities all qualify (NaN payloads do not).
    const double f32_denorm = static_cast<double>(
        std::numeric_limits<float>::denorm_min());
    std::vector<Amp> exact(kChunk);
    for (Index i = 0; i < kChunk; ++i)
        exact[i] = Amp{0.25 * static_cast<double>(i), -0.5};
    exact[0] = Amp{-0.0, 0.0};
    exact[1] = Amp{f32_denorm, -f32_denorm};
    exact[2] = Amp{inf, -inf};

    // Not float-exact, so the wide lane must carry it losslessly.
    std::vector<Amp> wide(kChunk);
    for (Index i = 0; i < kChunk; ++i)
        wide[i] = Amp{1.0 + 1e-12 * static_cast<double>(i), 0.0};

    for (StorageKind kind :
         {StorageKind::Compressed, StorageKind::Spill}) {
        auto store = makeColdStore(kind, "");
        ASSERT_NE(store, nullptr) << storageKindName(kind);
        store->reset(4, kChunk);
        for (bool force_raw : {false, true}) {
            const StoredInfo f64_info =
                store->store(0, amps, false, force_raw);
            const StoredInfo f32_info =
                store->store(1, exact, true, force_raw);
            const StoredInfo wide_info =
                store->store(2, wide, false, force_raw);
            std::vector<Amp> out(kChunk);
            store->load(0, out, f64_info.streamSum);
            EXPECT_EQ(std::memcmp(out.data(), amps.data(),
                                  kChunk * sizeof(Amp)),
                      0)
                << storageKindName(kind) << " f64 raw=" << force_raw;
            store->load(1, out, f32_info.streamSum);
            EXPECT_EQ(std::memcmp(out.data(), exact.data(),
                                  kChunk * sizeof(Amp)),
                      0)
                << storageKindName(kind) << " f32 raw=" << force_raw;
            store->load(2, out, wide_info.streamSum);
            EXPECT_EQ(std::memcmp(out.data(), wide.data(),
                                  kChunk * sizeof(Amp)),
                      0)
                << storageKindName(kind) << " wide raw=" << force_raw;
        }
        store->drop(0);
        store->drop(1);
        store->drop(2);
        EXPECT_EQ(store->hostBytes(), 0u) << storageKindName(kind);
    }
}

TEST(ColdStoreRoundTrip, CompressedBeatsRawOnStructuredData)
{
    constexpr Index kChunk = 1 << 10;
    std::vector<Amp> amps(kChunk);
    for (Index i = 0; i < kChunk; ++i)
        amps[i] = Amp{1.0 / 32.0, 0.0}; // one repeated pattern
    auto store = makeColdStore(StorageKind::Compressed, "");
    store->reset(1, kChunk);
    const StoredInfo info = store->store(0, amps, false, false);
    EXPECT_LT(info.storedBytes, kChunk * sizeof(Amp) / 2);
    EXPECT_EQ(store->hostBytes(), info.storedBytes);
}

TEST(ColdStoreRoundTrip, TamperedStreamThrowsChecksumMismatch)
{
    constexpr Index kChunk = 128;
    std::vector<Amp> amps(kChunk);
    for (Index i = 0; i < kChunk; ++i)
        amps[i] = Amp{std::sin(0.1 * static_cast<double>(i)), 0.25};
    FaultInjector injector(FaultSpec{}, 99);
    for (StorageKind kind :
         {StorageKind::Compressed, StorageKind::Spill}) {
        auto store = makeColdStore(kind, "");
        store->reset(1, kChunk);
        const StoredInfo info = store->store(0, amps, false, false);
        store->corruptStored(0, injector);
        EXPECT_NE(store->storedSum(0), info.streamSum)
            << storageKindName(kind);
        std::vector<Amp> out(kChunk);
        try {
            store->load(0, out, info.streamSum);
            FAIL() << storageKindName(kind)
                   << " decoded a tampered stream";
        } catch (const SimException &e) {
            EXPECT_EQ(e.error().code, SimErrorCode::ChecksumMismatch);
            EXPECT_EQ(e.error().chunk, 0);
        }
    }
}

TEST(BoundedState, RespectsWorkingSetAndStaysBitIdentical)
{
    constexpr int kQubits = 10;
    constexpr int kChunkBits = 6; // 16 chunks of 64 amps
    const Circuit circuit =
        circuits::makeBenchmark("random", kQubits, 7);

    ChunkedStateVector raw(kQubits, kChunkBits);
    applyCircuitChunked(raw, circuit);
    const StateVector want = raw.toFlat();

    for (StorageKind kind :
         {StorageKind::Compressed, StorageKind::Spill}) {
        ChunkedStateVector state(kQubits, kChunkBits,
                                 config(kind, 4));
        ASSERT_TRUE(state.boundedStorage());
        EXPECT_EQ(state.residency()->workingSet(), 4);
        EXPECT_EQ(state.residency()->maxPinnedBlock(), 2);
        applyCircuitChunked(state, circuit);

        const StorageStats stats = state.storageStats();
        EXPECT_LE(stats.residentChunks, 4u) << storageKindName(kind);
        EXPECT_GT(stats.evictions, 0u) << storageKindName(kind);
        EXPECT_GT(stats.decompressMisses, 0u)
            << storageKindName(kind);
        if (kind == StorageKind::Spill)
            EXPECT_GT(stats.spillBytes, 0u);
        else
            EXPECT_GT(stats.coldBytes, 0u);

        // toFlat reads cold chunks without residency churn, and the
        // contract is bit identity, not a tolerance.
        const StateVector got = state.toFlat();
        EXPECT_EQ(got.maxAbsDiff(want), 0.0) << storageKindName(kind);
        EXPECT_TRUE(bitsEqual(got, want)) << storageKindName(kind);
        EXPECT_DOUBLE_EQ(state.norm(), raw.norm());
    }
}

TEST(BoundedState, MultiThreadedSweepMatchesSingleThreaded)
{
    constexpr int kQubits = 10;
    constexpr int kChunkBits = 6;
    const Circuit circuit =
        circuits::makeBenchmark("random", kQubits, 11);

    setSimThreads(1);
    ChunkedStateVector ref(kQubits, kChunkBits,
                           config(StorageKind::Compressed, 4));
    applyCircuitChunked(ref, circuit);
    const StateVector want = ref.toFlat();

    setSimThreads(0); // all cores
    ChunkedStateVector state(kQubits, kChunkBits,
                             config(StorageKind::Compressed, 4));
    applyCircuitChunked(state, circuit);
    EXPECT_TRUE(bitsEqual(state.toFlat(), want));
    setSimThreads(1);
}

TEST(BoundedState, FromFlatElidesZerosAndToFlatRestores)
{
    constexpr int kQubits = 8;
    constexpr int kChunkBits = 4; // 16 chunks of 16 amps
    StateVector flat(kQubits);
    // Chunks 0..3 carry data, the rest stay byte-zero.
    for (Index i = 0; i < 64; ++i)
        flat[i] = Amp{0.125, -0.125};

    ChunkedStateVector state(kQubits, kChunkBits,
                             config(StorageKind::Compressed, 4));
    state.fromFlat(flat);
    const StorageStats stats = state.storageStats();
    EXPECT_GE(stats.zeroChunks, 12u);
    EXPECT_TRUE(bitsEqual(state.toFlat(), flat));
    for (Index c = 4; c < state.numChunks(); ++c)
        EXPECT_TRUE(state.chunkIsZero(c)) << c;
}

// A chunk of -0.0 is VALUE zero but not BYTE zero: eviction must keep
// its payload (Cold, not elided to Zero) so refill reproduces the
// sign bits, while chunkIsZero still reports it zero-valued.
TEST(BoundedState, NegativeZeroChunksSurviveEviction)
{
    constexpr int kQubits = 8;
    constexpr int kChunkBits = 4;
    StateVector flat(kQubits);
    flat[0] = Amp{1.0, 0.0};
    for (Index i = 16; i < 32; ++i) // chunk 1: all -0.0
        flat[i] = Amp{-0.0, -0.0};

    ChunkedStateVector state(kQubits, kChunkBits,
                             config(StorageKind::Compressed, 2));
    state.fromFlat(flat);
    // Touch other chunks so chunk 1 gets evicted.
    for (Index c = 2; c < 6; ++c)
        state.chunk(c);
    using State = ChunkResidency::State;
    ASSERT_EQ(state.residency()->stateOf(1), State::Cold);
    EXPECT_TRUE(state.residency()->knownZero(1));
    EXPECT_TRUE(state.chunkIsZero(1));

    const StateVector got = state.toFlat();
    EXPECT_TRUE(bitsEqual(got, flat));
    for (Index i = 16; i < 32; ++i)
        EXPECT_TRUE(std::signbit(got[i].real()) &&
                    std::signbit(got[i].imag()))
            << i;
}

TEST(BoundedState, RechunkMatchesRawRepartition)
{
    constexpr int kQubits = 9;
    const Circuit circuit =
        circuits::makeBenchmark("qft", kQubits);

    ChunkedStateVector raw(kQubits, 5);
    applyCircuitChunked(raw, circuit);
    raw.rechunk(3);

    ChunkedStateVector state(kQubits, 5,
                             config(StorageKind::Compressed, 4));
    applyCircuitChunked(state, circuit);
    state.rechunk(3);
    ASSERT_TRUE(state.boundedStorage());
    EXPECT_EQ(state.numChunks(), raw.numChunks());
    EXPECT_LE(state.storageStats().residentChunks, 4u);
    EXPECT_TRUE(bitsEqual(state.toFlat(), raw.toFlat()));
}

TEST(BoundedState, ConfigureStorageSwitchesBackAndForth)
{
    constexpr int kQubits = 8;
    const Circuit circuit =
        circuits::makeBenchmark("hlf", kQubits, 3);
    ChunkedStateVector raw(kQubits, 4);
    applyCircuitChunked(raw, circuit);
    const StateVector want = raw.toFlat();

    ChunkedStateVector state(kQubits, 4);
    applyCircuitChunked(state, circuit);
    state.configureStorage(config(StorageKind::Spill, 4));
    ASSERT_TRUE(state.boundedStorage());
    EXPECT_LE(state.storageStats().residentChunks, 4u);
    EXPECT_TRUE(bitsEqual(state.toFlat(), want));

    state.configureStorage(config(StorageKind::Raw, 0));
    EXPECT_FALSE(state.boundedStorage());
    EXPECT_TRUE(bitsEqual(state.toFlat(), want));
}

TEST(BoundedState, PinnedBlocksRefillAndNeverEvict)
{
    constexpr int kQubits = 8;
    constexpr int kChunkBits = 4; // 16 chunks
    StateVector flat(kQubits);
    for (Index i = 0; i < stateSize(kQubits); ++i)
        flat[i] = Amp{1e-3 * static_cast<double>(i + 1), 0.5};
    ChunkedStateVector state(kQubits, kChunkBits,
                             config(StorageKind::Compressed, 8));
    state.fromFlat(flat);

    ChunkResidency &res = *state.residency();
    const std::vector<Index> block = {0, 5, 9, 13};
    res.pinAsync(block);
    res.waitPins();
    using State = ChunkResidency::State;
    for (Index c : block) {
        EXPECT_EQ(res.stateOf(c), State::Resident) << c;
        EXPECT_FALSE(state.chunk(c).empty()) << c;
    }
    // Force eviction pressure: pinned chunks must keep their slots.
    for (Index c = 0; c < state.numChunks(); ++c)
        state.chunk(c);
    for (Index c : block)
        EXPECT_EQ(res.stateOf(c), State::Resident) << c;
    res.unpin(block);
    EXPECT_TRUE(bitsEqual(state.toFlat(), flat));
}

TEST(BoundedState, ShardBalancedEvictionKeepsDevicesEven)
{
    constexpr int kQubits = 9;
    constexpr int kChunkBits = 5; // 16 chunks
    StateVector flat(kQubits);
    for (Index i = 0; i < stateSize(kQubits); ++i)
        flat[i] = Amp{2e-3 * static_cast<double>(i + 1), -0.25};

    ChunkedStateVector state(kQubits, kChunkBits,
                             config(StorageKind::Compressed, 8));
    // Top-bit split: chunks 0-7 on device 0, 8-15 on device 1.
    std::vector<int> device_of(16, 0);
    for (Index c = 8; c < 16; ++c)
        device_of[c] = 1;
    state.setDeviceMap(device_of);
    state.fromFlat(flat);
    // Sweep every chunk a few times to churn the working set.
    for (int pass = 0; pass < 3; ++pass)
        for (Index c = 0; c < state.numChunks(); ++c)
            state.chunk(c);

    const std::vector<Index> per_dev =
        state.residency()->deviceResident();
    ASSERT_EQ(per_dev.size(), 2u);
    EXPECT_EQ(per_dev[0] + per_dev[1],
              state.storageStats().residentChunks);
    // Neither device's shard may monopolize the working set.
    EXPECT_GT(per_dev[0], 0u);
    EXPECT_GT(per_dev[1], 0u);
    EXPECT_TRUE(bitsEqual(state.toFlat(), flat));
}

TEST(BoundedState, AutoBudgetIsClampedToValidRange)
{
    constexpr int kQubits = 8;
    ChunkedStateVector state(kQubits, 4,
                             config(StorageKind::Compressed, 0));
    const Index budget = state.residency()->workingSet();
    EXPECT_GE(budget, std::min<Index>(4, state.numChunks()));
    EXPECT_LE(budget, state.numChunks());
    EXPECT_EQ(state.storageStats().workingSet,
              static_cast<std::uint64_t>(budget));
}

TEST(HostRam, EnvOverrideWins)
{
    ASSERT_EQ(setenv("QGPU_HOST_RAM_BYTES", "1G", 1), 0);
    EXPECT_EQ(detectHostRamBytes(), std::uint64_t{1} << 30);
    ASSERT_EQ(setenv("QGPU_HOST_RAM_BYTES", "512M", 1), 0);
    EXPECT_EQ(detectHostRamBytes(), std::uint64_t{512} << 20);
    unsetenv("QGPU_HOST_RAM_BYTES");
    // Without the override the probe still reports something sane.
    EXPECT_GE(detectHostRamBytes(), std::uint64_t{1} << 28);
}

TEST(BoundedState, PrecisionLanesComposeWithEviction)
{
    constexpr int kQubits = 9;
    const Circuit circuit =
        circuits::makeBenchmark("random", kQubits, 21);

    ChunkedStateVector raw(kQubits, 5);
    raw.setPrecision(Precision::adaptive, 1e-6);
    applyCircuitChunked(raw, circuit);
    raw.refreshPrecision();
    const StateVector want = raw.toFlat();

    ChunkedStateVector state(kQubits, 5,
                             config(StorageKind::Compressed, 4));
    state.setPrecision(Precision::adaptive, 1e-6);
    applyCircuitChunked(state, circuit);
    state.refreshPrecision();
    EXPECT_TRUE(bitsEqual(state.toFlat(), want));
    EXPECT_EQ(state.promotedChunks(), raw.promotedChunks());
}

} // namespace
} // namespace qgpu
