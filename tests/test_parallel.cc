/**
 * @file
 * Tests for the parallel-for helper and the threaded state-vector
 * apply path: identical results regardless of worker count.
 */

#include <atomic>

#include <gtest/gtest.h>

#include "circuits/circuits.hh"
#include "common/parallel.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{
namespace
{

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    std::vector<std::atomic<int>> hits(10000);
    parallelFor(
        0, hits.size(), 4,
        [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t i = lo; i < hi; ++i)
                ++hits[i];
        },
        16);
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop)
{
    bool called = false;
    parallelFor(5, 5, 4, [&](std::uint64_t, std::uint64_t) {
        called = true;
    });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallRangeRunsInline)
{
    // Below the grain, the body runs once over the whole range.
    int calls = 0;
    parallelFor(
        0, 100, 8,
        [&](std::uint64_t lo, std::uint64_t hi) {
            ++calls;
            EXPECT_EQ(lo, 0u);
            EXPECT_EQ(hi, 100u);
        },
        1024);
    EXPECT_EQ(calls, 1);
}

TEST(SimThreads, DefaultIsSequential)
{
    EXPECT_EQ(simThreads(), 1);
}

TEST(SimThreads, ZeroMeansHardwareConcurrency)
{
    setSimThreads(0);
    EXPECT_GE(simThreads(), 1);
    setSimThreads(1);
}

TEST(SimThreadsDeath, RejectsBadCounts)
{
    EXPECT_DEATH(setSimThreads(-1), "bad thread count");
    EXPECT_DEATH(setSimThreads(300), "bad thread count");
}

class ThreadedApply : public ::testing::TestWithParam<
                          std::tuple<std::string, int>>
{
  protected:
    void TearDown() override { setSimThreads(1); }
};

TEST_P(ThreadedApply, MatchesSequentialExactly)
{
    const auto &[family, threads] = GetParam();
    const Circuit c = circuits::makeBenchmark(family, 9);

    setSimThreads(1);
    const StateVector want = simulateReference(c);

    setSimThreads(threads);
    const StateVector got = simulateReference(c);
    setSimThreads(1);

    // Threaded and sequential orders touch disjoint work items, so
    // the results are bit-identical, not merely close.
    for (Index i = 0; i < want.size(); ++i)
        ASSERT_EQ(want[i], got[i]) << family << " i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndThreads, ThreadedApply,
    ::testing::Combine(
        ::testing::Values("hchain", "qft", "iqp", "gs", "rqc"),
        ::testing::Values(2, 4, 7)));

} // namespace
} // namespace qgpu
