/**
 * @file
 * Tests for the benchmark generators: structural properties,
 * functional correctness where the algorithm has a known answer
 * (Bernstein-Vazirani, graph states), and the involvement profile
 * ordering that drives the paper's Table II.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "circuits/circuits.hh"
#include "statevec/measure.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{
namespace
{

class EveryFamily : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryFamily, TouchesEveryQubit)
{
    const Circuit c = circuits::makeBenchmark(GetParam(), 10);
    EXPECT_LE(c.opsBeforeFullInvolvement(), c.numGates())
        << "family " << GetParam() << " leaves a qubit untouched";
}

TEST_P(EveryFamily, DeterministicForSameSeed)
{
    const Circuit a = circuits::makeBenchmark(GetParam(), 9);
    const Circuit b = circuits::makeBenchmark(GetParam(), 9);
    ASSERT_EQ(a.numGates(), b.numGates());
    for (std::size_t i = 0; i < a.numGates(); ++i)
        EXPECT_EQ(a.gates()[i].toString(), b.gates()[i].toString());
}

TEST_P(EveryFamily, NameEncodesFamilyAndSize)
{
    const Circuit c = circuits::makeBenchmark(GetParam(), 12);
    EXPECT_EQ(c.name(), GetParam() + "_12");
}

TEST_P(EveryFamily, ScalesWithQubits)
{
    const Circuit small = circuits::makeBenchmark(GetParam(), 8);
    const Circuit big = circuits::makeBenchmark(GetParam(), 16);
    EXPECT_GT(big.numGates(), small.numGates());
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, EveryFamily,
    ::testing::Values("hchain", "rqc", "qaoa", "gs", "hlf", "qft",
                      "iqp", "qf", "bv", "random"));

TEST(Registry, ListsTenFamilies)
{
    EXPECT_EQ(circuits::benchmarkNames().size(), 10u);
}

TEST(Random, SameSeedRoundTripsIdentically)
{
    // The registry path and the direct generator must agree, and the
    // same seed must reproduce the exact gate stream (qubits, kinds,
    // and parameters) -- the property the fuzz harness leans on.
    const Circuit a = circuits::makeBenchmark("random", 9, 42);
    const Circuit b = circuits::makeBenchmark("random", 9, 42);
    const Circuit c = circuits::randomFamily(9, 0, 42);
    ASSERT_EQ(a.numGates(), b.numGates());
    ASSERT_EQ(a.numGates(), c.numGates());
    for (std::size_t i = 0; i < a.numGates(); ++i) {
        EXPECT_EQ(a.gates()[i].toString(), b.gates()[i].toString());
        EXPECT_EQ(a.gates()[i].toString(), c.gates()[i].toString());
    }
}

TEST(Random, DifferentSeedsDiverge)
{
    const Circuit a = circuits::makeBenchmark("random", 9, 42);
    const Circuit b = circuits::makeBenchmark("random", 9, 43);
    ASSERT_EQ(a.numGates(), b.numGates());
    bool any_differ = false;
    for (std::size_t i = 0; i < a.numGates(); ++i)
        if (a.gates()[i].toString() != b.gates()[i].toString())
            any_differ = true;
    EXPECT_TRUE(any_differ);
}

TEST(Random, DrawsFromTheWholePalette)
{
    // A long enough stream hits one-, two-, and three-qubit gates and
    // at least one parameterized kind of each arity.
    const Circuit c = circuits::randomFamily(8, 400, 7);
    int arity[4] = {0, 0, 0, 0};
    for (const Gate &g : c.gates())
        ++arity[g.qubits.size()];
    EXPECT_GT(arity[1], 0);
    EXPECT_GT(arity[2], 0);
    EXPECT_GT(arity[3], 0);
}

TEST(Random, SingleQubitRegisterFallsBackToOneQubitGates)
{
    const Circuit c = circuits::randomFamily(1, 50, 3);
    for (const Gate &g : c.gates())
        EXPECT_EQ(g.qubits.size(), 1u);
}

TEST(RegistryDeath, UnknownFamily)
{
    EXPECT_DEATH((void)circuits::makeBenchmark("nope", 8),
                 "unknown benchmark");
}

TEST(Bv, MeasuringDataQubitsRecoversSecret)
{
    // BV ends with the data register holding the secret string
    // deterministically.
    const int n = 9;
    const Circuit c = circuits::bv(n, 1234);
    const StateVector s = simulateReference(c);

    // Find the dominant data-register outcome.
    std::vector<int> data_qubits;
    for (int q = 0; q < n - 1; ++q)
        data_qubits.push_back(q);
    const auto marg = marginalProbabilities(s, data_qubits);
    Index best = 0;
    for (Index i = 0; i < marg.size(); ++i)
        if (marg[i] > marg[best])
            best = i;
    EXPECT_NEAR(marg[best], 1.0, 1e-10);

    // The secret must match the CX pattern in the circuit.
    Index secret = 0;
    for (const Gate &g : c.gates())
        if (g.kind == GateKind::CX)
            secret |= Index{1} << g.qubits[0];
    EXPECT_EQ(best, secret);
}

TEST(GraphState, UniformMagnitudes)
{
    // A graph state has all 2^n amplitudes of magnitude 2^(-n/2)
    // with +/-1 signs.
    const int n = 6;
    const StateVector s =
        simulateReference(circuits::graphState(n));
    const double want = 1.0 / std::sqrt(static_cast<double>(1 << n));
    for (Index i = 0; i < s.size(); ++i) {
        EXPECT_NEAR(std::abs(s[i]), want, 1e-12);
        EXPECT_NEAR(std::abs(s[i].imag()), 0.0, 1e-12);
    }
}

TEST(GraphState, SignStructureMatchesEdges)
{
    // amplitude(x) sign = (-1)^(number of edges inside x). For the
    // path graph the edges are (q, q+1).
    const int n = 5;
    const StateVector s =
        simulateReference(circuits::graphState(n));
    for (Index x = 0; x < s.size(); ++x) {
        int edges_in = 0;
        for (int q = 0; q + 1 < n; ++q)
            if (((x >> q) & 1) && ((x >> (q + 1)) & 1))
                ++edges_in;
        const double sign = (edges_in % 2) ? -1.0 : 1.0;
        EXPECT_GT(s[x].real() * sign, 0.0) << "x=" << x;
    }
}

TEST(Qft, ApproximationDegreeLimitsGates)
{
    const Circuit exact = circuits::qft(12, 0);
    const Circuit approx = circuits::qft(12, 3);
    EXPECT_LT(approx.numGates(), exact.numGates());
    for (const Gate &g : approx.gates()) {
        if (g.kind == GateKind::CP) {
            EXPECT_LE(std::abs(g.qubits[1] - g.qubits[0]), 3);
        }
    }
}

TEST(Iqp, LateInvolvementProfile)
{
    // iqp is the paper's best pruning case: most operations execute
    // before all qubits are involved.
    const Circuit c = circuits::makeBenchmark("iqp", 20);
    const double frac =
        static_cast<double>(c.opsBeforeFullInvolvement()) /
        static_cast<double>(c.numGates());
    EXPECT_GT(frac, 0.6);
}

TEST(Qaoa, EarlyInvolvementProfile)
{
    // qaoa involves everything in its opening H column.
    const Circuit c = circuits::makeBenchmark("qaoa", 20);
    const double frac =
        static_cast<double>(c.opsBeforeFullInvolvement()) /
        static_cast<double>(c.numGates());
    EXPECT_LT(frac, 0.1);
}

TEST(TableTwo, InvolvementOrderingAcrossFamilies)
{
    // The paper's Table II ordering: iqp has by far the largest
    // fraction of operations before full involvement; qaoa, qft and
    // qf the smallest.
    auto frac = [](const std::string &family) {
        const Circuit c = circuits::makeBenchmark(family, 22);
        return static_cast<double>(c.opsBeforeFullInvolvement()) /
               static_cast<double>(c.numGates());
    };
    const double iqp = frac("iqp");
    for (const auto &other :
         {"hchain", "rqc", "qaoa", "gs", "hlf", "qft", "qf", "bv"})
        EXPECT_GT(iqp, frac(other)) << other;
    EXPECT_LT(frac("qaoa"), frac("gs"));
    EXPECT_LT(frac("qft"), frac("gs"));
    EXPECT_LT(frac("qf"), frac("rqc"));
}

TEST(Hchain, LongCircuitManyOps)
{
    // hchain is the deepest benchmark (~50 ops per qubit).
    const Circuit c = circuits::makeBenchmark("hchain", 10);
    EXPECT_GT(c.numGates(), 40u * 10u);
}

TEST(Grqc, DeepVariantIsMuchDeeper)
{
    const Circuit shallow = circuits::rqc(10);
    const Circuit deep = circuits::grqc(10);
    EXPECT_GT(deep.numGates(), 10 * shallow.numGates());
}

TEST(Rqc, GradualInvolvement)
{
    // Full involvement happens mid-circuit, not in an opening column.
    const Circuit c = circuits::makeBenchmark("rqc", 20);
    const double frac =
        static_cast<double>(c.opsBeforeFullInvolvement()) /
        static_cast<double>(c.numGates());
    EXPECT_GT(frac, 0.15);
    EXPECT_LT(frac, 0.8);
}

} // namespace
} // namespace qgpu
