/**
 * @file
 * Tests for the small gate-matrix type.
 */

#include <gtest/gtest.h>

#include "qc/matrix.hh"

namespace qgpu
{
namespace
{

TEST(GateMatrix, IdentityByDefault)
{
    GateMatrix m(4);
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            EXPECT_EQ(m.at(r, c), (r == c ? Amp{1, 0} : Amp{0, 0}));
}

TEST(GateMatrix, NumQubits)
{
    EXPECT_EQ(GateMatrix(2).numQubits(), 1);
    EXPECT_EQ(GateMatrix(4).numQubits(), 2);
    EXPECT_EQ(GateMatrix(8).numQubits(), 3);
}

TEST(GateMatrix, Multiply)
{
    // X * X = I.
    GateMatrix x(2, {{0, 0}, {1, 0}, {1, 0}, {0, 0}});
    EXPECT_LT((x * x).maxAbsDiff(GateMatrix::identity(2)), 1e-15);
}

TEST(GateMatrix, KronDimensions)
{
    GateMatrix a(2), b(4);
    EXPECT_EQ(a.kron(b).dim(), 8);
}

TEST(GateMatrix, KronValues)
{
    // Z (x) I: diag(1, 1, -1, -1) with Z on the high index bit.
    GateMatrix z(2, {{1, 0}, {0, 0}, {0, 0}, {-1, 0}});
    GateMatrix zi = z.kron(GateMatrix::identity(2));
    EXPECT_EQ(zi.at(0, 0), (Amp{1, 0}));
    EXPECT_EQ(zi.at(1, 1), (Amp{1, 0}));
    EXPECT_EQ(zi.at(2, 2), (Amp{-1, 0}));
    EXPECT_EQ(zi.at(3, 3), (Amp{-1, 0}));
    EXPECT_TRUE(zi.isDiagonal());
}

TEST(GateMatrix, DaggerConjugatesTranspose)
{
    GateMatrix m(2, {{1, 2}, {3, 4}, {5, 6}, {7, 8}});
    const GateMatrix d = m.dagger();
    EXPECT_EQ(d.at(0, 1), (Amp{5, -6}));
    EXPECT_EQ(d.at(1, 0), (Amp{3, -4}));
}

TEST(GateMatrix, UnitaryDetection)
{
    GateMatrix x(2, {{0, 0}, {1, 0}, {1, 0}, {0, 0}});
    EXPECT_TRUE(x.isUnitary());
    GateMatrix not_unitary(2, {{2, 0}, {0, 0}, {0, 0}, {1, 0}});
    EXPECT_FALSE(not_unitary.isUnitary());
}

TEST(GateMatrix, DiagonalDetection)
{
    GateMatrix z(2, {{1, 0}, {0, 0}, {0, 0}, {-1, 0}});
    EXPECT_TRUE(z.isDiagonal());
    GateMatrix x(2, {{0, 0}, {1, 0}, {1, 0}, {0, 0}});
    EXPECT_FALSE(x.isDiagonal());
}

TEST(GateMatrix, VectorCtorInfersDim)
{
    std::vector<Amp> vals(16, Amp{0, 0});
    GateMatrix m(std::move(vals));
    EXPECT_EQ(m.dim(), 4);
}

TEST(GateMatrixDeath, BadInitSize)
{
    EXPECT_DEATH(GateMatrix(2, {Amp{1, 0}}), "init list");
}

} // namespace
} // namespace qgpu
