/**
 * @file
 * Tests for the text table printer used by the bench harness.
 */

#include <gtest/gtest.h>

#include "common/table.hh"

namespace qgpu
{
namespace
{

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"bb", "22"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TextTable, ColumnsAligned)
{
    TextTable t({"a", "b"});
    t.addRow({"longvalue", "x"});
    const std::string s = t.toString();
    // Header 'b' must be pushed past the widest cell of column a.
    const auto header_end = s.find('\n');
    ASSERT_NE(header_end, std::string::npos);
    const std::string header = s.substr(0, header_end);
    EXPECT_GE(header.size(), std::string("longvalue  b").size());
}

TEST(TextTable, CsvOutput)
{
    TextTable t({"x", "y"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.toCsv(), "x,y\n1,2\n");
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTableDeath, RowWidthMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

} // namespace
} // namespace qgpu
