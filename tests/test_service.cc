/**
 * @file
 * Job-service behavior: JSON round-trips, the job lifecycle,
 * admission control, fair-share dispatch order, single-flight
 * coalescing, result-cache bookkeeping, cancellation, per-job fault
 * isolation, and a concurrent-submission stress (the TSan target for
 * the service layer — scripts/check.sh --tsan runs this binary).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "service/result_cache.hh"
#include "service/scheduler.hh"
#include "service/traffic.hh"

namespace qgpu
{
namespace service
{
namespace
{

/** A distinct small job per @p variant (unique simulation key). */
JobRequest
smallJob(std::uint64_t variant)
{
    JobRequest r;
    r.circuit.family = "random";
    r.circuit.qubits = 6;
    r.circuit.seed = 1000 + variant;
    return r;
}

ServiceConfig
testConfig()
{
    ServiceConfig c;
    c.maxActiveJobs = 1; // deterministic dispatch order
    return c;
}

TEST(JobJson, RequestRoundTrips)
{
    JobRequest r;
    r.tenant = "acme";
    r.circuit.family = "iqp";
    r.circuit.qubits = 9;
    r.circuit.seed = 77;
    r.engine = "pruning";
    r.shots = 128;
    r.seed = 5;
    r.precision = Precision::adaptive;
    r.adaptiveThreshold = 1e-4;
    r.arrivalMs = 17.25;

    const std::string line = r.toJson().toString();
    const auto parsed = parseJson(line);
    ASSERT_TRUE(parsed.has_value());
    const auto back = JobRequest::fromJson(*parsed);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->tenant, r.tenant);
    EXPECT_EQ(back->circuit.family, r.circuit.family);
    EXPECT_EQ(back->circuit.qubits, r.circuit.qubits);
    EXPECT_EQ(back->circuit.seed, r.circuit.seed);
    EXPECT_EQ(back->engine, r.engine);
    EXPECT_EQ(back->shots, r.shots);
    EXPECT_EQ(back->seed, r.seed);
    EXPECT_EQ(back->precision, r.precision);
    EXPECT_DOUBLE_EQ(back->adaptiveThreshold, r.adaptiveThreshold);
    EXPECT_DOUBLE_EQ(back->arrivalMs, r.arrivalMs);
    // Identical serialization again: stable representation.
    EXPECT_EQ(back->toJson().toString(), line);
}

TEST(JobJson, BadRequestsAreRejectedStructurally)
{
    EXPECT_FALSE(
        JobRequest::fromJson(JsonValue::makeNumber(4)).has_value());
    const auto noCircuit = parseJson("{\"tenant\": \"x\"}");
    ASSERT_TRUE(noCircuit.has_value());
    EXPECT_FALSE(JobRequest::fromJson(*noCircuit).has_value());
    const auto badPrecision = parseJson(
        "{\"circuit\": {\"family\": \"qft\", \"qubits\": 8}, "
        "\"precision\": \"f13\"}");
    ASSERT_TRUE(badPrecision.has_value());
    EXPECT_FALSE(JobRequest::fromJson(*badPrecision).has_value());
}

TEST(Traffic, GenerationIsDeterministicAndRoundTrips)
{
    TrafficConfig cfg;
    cfg.jobs = 25;
    cfg.repeatFraction = 0.5;
    cfg.seed = 42;
    const auto a = generateTraffic(cfg);
    const auto b = generateTraffic(cfg);
    ASSERT_EQ(a.size(), 25u);
    EXPECT_EQ(trafficToJsonl(a), trafficToJsonl(b));

    std::vector<JobRequest> back;
    std::string error;
    ASSERT_TRUE(trafficFromJsonl(trafficToJsonl(a), back, error))
        << error;
    EXPECT_EQ(trafficToJsonl(back), trafficToJsonl(a));

    // Repeats reuse an earlier circuit spec; with 50% repeat over 25
    // jobs at least one must collide.
    bool repeated = false;
    for (std::size_t i = 1; i < a.size() && !repeated; ++i)
        for (std::size_t j = 0; j < i && !repeated; ++j)
            repeated = a[i].circuit.toJson().toString() ==
                       a[j].circuit.toJson().toString();
    EXPECT_TRUE(repeated);
}

TEST(JobService, LifecycleReachesDone)
{
    JobService svc(testConfig());
    JobRequest r = smallJob(1);
    r.shots = 16;
    const std::uint64_t id = svc.submit(r);
    const JobResult result = svc.wait(id);
    EXPECT_EQ(result.status, JobStatus::Done);
    EXPECT_FALSE(result.cacheHit);
    EXPECT_NEAR(result.norm, 1.0, 1e-9);
    EXPECT_GT(result.totalVTime, 0.0);
    EXPECT_GE(result.doneSeconds, result.startSeconds);
    std::uint64_t shots = 0;
    for (const auto &[outcome, hits] : result.counts)
        shots += hits;
    EXPECT_EQ(shots, 16u);
    EXPECT_EQ(svc.counter("service.completed"), 1u);
}

TEST(JobService, CacheHitSharesTheSimulation)
{
    JobService svc(testConfig());
    JobRequest r = smallJob(2);
    const JobResult first = svc.wait(svc.submit(r));
    ASSERT_EQ(first.status, JobStatus::Done);

    r.seed = 777; // scheduling-only: same key, fresh sampling
    r.shots = 8;
    const JobResult second = svc.wait(svc.submit(r));
    EXPECT_EQ(second.status, JobStatus::Done);
    EXPECT_TRUE(second.cacheHit);
    EXPECT_EQ(second.key, first.key);
    EXPECT_EQ(second.totalVTime, first.totalVTime);
    EXPECT_EQ(svc.counter("service.cache.hit"), 1u);
    EXPECT_EQ(svc.counter("service.cache.miss"), 1u);
}

TEST(JobJson, NoiseFieldsRoundTripOnlyWhenArmed)
{
    JobRequest r = smallJob(3);
    r.shots = 32;
    r.noiseSpec = "pauli1:0.05,readout:0.02";
    r.shotSeed = 0xabcdull;
    const std::string line = r.toJson().toString();
    EXPECT_NE(line.find("noise_spec"), std::string::npos);
    const auto back = JobRequest::fromJson(*parseJson(line));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->noiseSpec, r.noiseSpec);
    EXPECT_EQ(back->shotSeed, r.shotSeed);
    EXPECT_EQ(back->toJson().toString(), line);

    // Ideal jobs keep their wire format unchanged: no noise keys.
    JobRequest ideal = smallJob(3);
    ideal.shotSeed = 0xabcdull; // scheduling-only without a spec
    EXPECT_EQ(ideal.toJson().toString().find("noise_spec"),
              std::string::npos);
    EXPECT_EQ(ideal.toJson().toString().find("shot_seed"),
              std::string::npos);
}

TEST(JobService, NoisyJobsKeyOnSpecShotsAndSeed)
{
    JobService svc(testConfig());
    JobRequest r = smallJob(4);
    r.shots = 16;
    r.noiseSpec = "pauli1:0.1";
    const JobResult first = svc.wait(svc.submit(r));
    ASSERT_EQ(first.status, JobStatus::Done);
    EXPECT_FALSE(first.cacheHit);
    std::uint64_t shots = 0;
    for (const auto &[outcome, hits] : first.counts)
        shots += hits;
    EXPECT_EQ(shots, 16u);

    // A different shot seed is result-affecting for noisy jobs:
    // different key, cache miss.
    JobRequest reseeded = r;
    reseeded.shotSeed = 0x1234ull;
    const JobResult second = svc.wait(svc.submit(reseeded));
    ASSERT_EQ(second.status, JobStatus::Done);
    EXPECT_NE(second.key, first.key);
    EXPECT_FALSE(second.cacheHit);

    // So are the spec and the shot count.
    JobRequest respecced = r;
    respecced.noiseSpec = "pauli1:0.2";
    EXPECT_NE(svc.wait(svc.submit(respecced)).key, first.key);
    JobRequest reshot = r;
    reshot.shots = 32;
    EXPECT_NE(svc.wait(svc.submit(reshot)).key, first.key);

    // The identical request hits the cache and returns the cached
    // counts verbatim -- noisy results are never resampled.
    const JobResult replay = svc.wait(svc.submit(r));
    ASSERT_EQ(replay.status, JobStatus::Done);
    EXPECT_TRUE(replay.cacheHit);
    EXPECT_EQ(replay.key, first.key);
    EXPECT_EQ(replay.counts, first.counts);
    EXPECT_EQ(svc.counter("service.cache.hit"), 1u);
    EXPECT_EQ(svc.counter("service.cache.miss"), 4u);
}

TEST(JobService, IdealJobsIgnoreTheShotSeedInTheKey)
{
    // Without a noise spec the shot seed stays scheduling-only, so
    // the ideal cache keeps deduplicating across it.
    JobService svc(testConfig());
    JobRequest r = smallJob(5);
    r.shots = 8;
    const JobResult first = svc.wait(svc.submit(r));
    r.shotSeed = 0x9999ull;
    const JobResult second = svc.wait(svc.submit(r));
    EXPECT_EQ(second.key, first.key);
    EXPECT_TRUE(second.cacheHit);
}

TEST(JobService, NoiseAdmissionRejectsEnvAndShotlessJobs)
{
    JobService svc(testConfig());
    JobRequest env = smallJob(6);
    env.shots = 8;
    env.noiseSpec = "env"; // environment-dependent: not admissible
    const JobResult r1 = svc.wait(svc.submit(env));
    EXPECT_EQ(r1.status, JobStatus::Rejected);
    ASSERT_TRUE(r1.error.has_value());
    EXPECT_NE(r1.error->detail.find("env"), std::string::npos);

    JobRequest shotless = smallJob(7);
    shotless.noiseSpec = "pauli1:0.1"; // armed but shots == 0
    const JobResult r2 = svc.wait(svc.submit(shotless));
    EXPECT_EQ(r2.status, JobStatus::Rejected);
    ASSERT_TRUE(r2.error.has_value());
    EXPECT_NE(r2.error->detail.find("shots"), std::string::npos);
    EXPECT_EQ(svc.counter("service.rejected"), 2u);
}

TEST(JobService, AdmissionControlRejectsStructurally)
{
    ServiceConfig cfg = testConfig();
    cfg.maxQueueDepth = 2;
    cfg.startPaused = true;
    JobService svc(cfg);
    const std::uint64_t a = svc.submit(smallJob(10));
    const std::uint64_t b = svc.submit(smallJob(11));
    const std::uint64_t c = svc.submit(smallJob(12));
    EXPECT_EQ(svc.result(a).status, JobStatus::Queued);
    EXPECT_EQ(svc.result(b).status, JobStatus::Queued);
    const JobResult rejected = svc.result(c);
    EXPECT_EQ(rejected.status, JobStatus::Rejected);
    ASSERT_TRUE(rejected.error.has_value());
    EXPECT_NE(rejected.error->detail.find("queue full"),
              std::string::npos);
    EXPECT_EQ(svc.counter("service.rejected"), 1u);
    EXPECT_EQ(svc.queueDepth(), 2);
    svc.resume();
    svc.drain();
    EXPECT_EQ(svc.result(a).status, JobStatus::Done);
}

TEST(JobService, InvalidRequestsAreRejectedNotFatal)
{
    JobService svc(testConfig());
    JobRequest bad = smallJob(13);
    bad.circuit.family = "no-such-family";
    EXPECT_EQ(svc.wait(svc.submit(bad)).status,
              JobStatus::Rejected);

    bad = smallJob(14);
    bad.engine = "no-such-engine";
    EXPECT_EQ(svc.wait(svc.submit(bad)).status,
              JobStatus::Rejected);

    bad = smallJob(15);
    bad.fastMath = true; // service pinned to the exact tier
    const JobResult r = svc.wait(svc.submit(bad));
    EXPECT_EQ(r.status, JobStatus::Rejected);
    ASSERT_TRUE(r.error.has_value());
    EXPECT_NE(r.error->detail.find("tier"), std::string::npos);
}

TEST(JobService, FairShareAlternatesSmallBurstsAndLarges)
{
    ServiceConfig cfg = testConfig();
    cfg.startPaused = true;
    cfg.fairShareSmallBurst = 2;
    // random@6 is small, random@12 is large under this boundary
    // (cost = 2^qubits * gates).
    cfg.smallCostThreshold = 1.0e5;
    JobService svc(cfg);

    std::vector<std::uint64_t> small_ids, large_ids;
    for (int i = 0; i < 4; ++i)
        small_ids.push_back(svc.submit(smallJob(20 + i)));
    for (int i = 0; i < 2; ++i) {
        JobRequest big = smallJob(30 + i);
        big.circuit.qubits = 12;
        large_ids.push_back(svc.submit(big));
    }
    svc.resume();
    svc.drain();

    // Expected dispatch: S S L S S L.
    std::vector<char> order(6, '?');
    const auto place = [&](const std::vector<std::uint64_t> &ids,
                           char tag) {
        for (const std::uint64_t id : ids) {
            const JobResult r = svc.result(id);
            EXPECT_EQ(r.status, JobStatus::Done);
            ASSERT_GE(r.dispatchIndex, 1u);
            ASSERT_LE(r.dispatchIndex, 6u);
            order[r.dispatchIndex - 1] = tag;
        }
    };
    place(small_ids, 'S');
    place(large_ids, 'L');
    EXPECT_EQ(std::string(order.begin(), order.end()), "SSLSSL");
}

TEST(JobService, ZeroBurstIsSubmissionOrderFifo)
{
    ServiceConfig cfg = testConfig();
    cfg.startPaused = true;
    cfg.fairShareSmallBurst = 0;
    cfg.smallCostThreshold = 1.0e5;
    JobService svc(cfg);

    std::vector<std::uint64_t> ids;
    JobRequest big = smallJob(40);
    big.circuit.qubits = 12;
    ids.push_back(svc.submit(big));
    ids.push_back(svc.submit(smallJob(41)));
    big = smallJob(42);
    big.circuit.qubits = 12;
    ids.push_back(svc.submit(big));
    svc.resume();
    svc.drain();

    for (std::size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(svc.result(ids[i]).dispatchIndex, i + 1)
            << "job " << i << " dispatched out of order";
}

TEST(JobService, SingleFlightCoalescesIdenticalInFlightJobs)
{
    ServiceConfig cfg = testConfig();
    cfg.startPaused = true;
    JobService svc(cfg);
    JobRequest r = smallJob(50);
    r.shots = 4;
    const std::uint64_t leader = svc.submit(r);
    r.seed = 1;
    const std::uint64_t f1 = svc.submit(r);
    r.seed = 2;
    const std::uint64_t f2 = svc.submit(r);
    EXPECT_EQ(svc.queueDepth(), 1) << "followers hold no queue slot";
    svc.resume();
    svc.drain();

    const JobResult lead = svc.result(leader);
    EXPECT_EQ(lead.status, JobStatus::Done);
    EXPECT_FALSE(lead.coalesced);
    for (const std::uint64_t id : {f1, f2}) {
        const JobResult r2 = svc.result(id);
        EXPECT_EQ(r2.status, JobStatus::Done);
        EXPECT_TRUE(r2.coalesced);
        EXPECT_EQ(r2.key, lead.key);
        EXPECT_EQ(r2.totalVTime, lead.totalVTime);
    }
    EXPECT_EQ(svc.counter("service.singleflight.coalesced"), 2u);
    EXPECT_EQ(svc.counter("service.cache.hit"), 0u);
    EXPECT_EQ(svc.counter("service.completed"), 3u);
    // The run was shared, not repeated: one insertion.
    EXPECT_EQ(svc.cacheStats().insertions, 1u);
}

TEST(JobService, CancelQueuedJobNeverRuns)
{
    ServiceConfig cfg = testConfig();
    cfg.startPaused = true;
    JobService svc(cfg);
    const std::uint64_t id = svc.submit(smallJob(60));
    EXPECT_TRUE(svc.cancel(id));
    EXPECT_FALSE(svc.cancel(id)) << "already terminal";
    EXPECT_FALSE(svc.cancel(9999)) << "unknown id";
    svc.resume();
    svc.drain();
    const JobResult r = svc.result(id);
    EXPECT_EQ(r.status, JobStatus::Cancelled);
    EXPECT_EQ(r.engine, "") << "cancelled before any run";
    EXPECT_EQ(svc.counter("service.cancelled"), 1u);
    EXPECT_EQ(svc.counter("service.completed"), 0u);
}

TEST(JobService, CancelledLeaderStillServesFollowers)
{
    ServiceConfig cfg = testConfig();
    cfg.startPaused = true;
    JobService svc(cfg);
    JobRequest r = smallJob(61);
    const std::uint64_t leader = svc.submit(r);
    r.seed = 9;
    const std::uint64_t follower = svc.submit(r);
    EXPECT_TRUE(svc.cancel(leader));
    svc.resume();
    svc.drain();
    EXPECT_EQ(svc.result(leader).status, JobStatus::Cancelled);
    const JobResult f = svc.result(follower);
    EXPECT_EQ(f.status, JobStatus::Done);
    EXPECT_TRUE(f.coalesced);
}

TEST(JobService, FaultedJobsFailInIsolationAndBypassTheCache)
{
    JobService svc(testConfig());
    JobRequest faulty = smallJob(70);
    faulty.faultSpec = "d2h:1.0"; // every transfer fails: fatal
    const JobResult bad = svc.wait(svc.submit(faulty));
    EXPECT_EQ(bad.status, JobStatus::Failed);
    ASSERT_TRUE(bad.error.has_value());
    EXPECT_EQ(bad.error->code, SimErrorCode::TransferFailed);
    EXPECT_EQ(svc.counter("service.failed"), 1u);

    // The same circuit without faults: unaffected, and its key was
    // never polluted by the faulted run.
    JobRequest clean = smallJob(70);
    const JobResult good = svc.wait(svc.submit(clean));
    EXPECT_EQ(good.status, JobStatus::Done);
    EXPECT_FALSE(good.cacheHit);
    EXPECT_NEAR(good.norm, 1.0, 1e-9);
    EXPECT_EQ(svc.cacheStats().insertions, 1u);
}

TEST(ResultCache, LruEvictionRespectsTheByteBudget)
{
    const auto makeSim = [](std::uint64_t key, int qubits) {
        auto sim = std::make_shared<CachedSim>();
        sim->key = key;
        sim->state = StateVector(qubits);
        sim->norm = 1.0;
        return sim;
    };
    const std::size_t entry = makeSim(0, 6)->bytes();
    // One shard, room for exactly two entries.
    ResultCache cache(2 * entry, 1);

    EXPECT_TRUE(cache.insert(makeSim(1, 6)));
    EXPECT_TRUE(cache.insert(makeSim(2, 6)));
    EXPECT_EQ(cache.stats().entries, 2u);

    // Touch 1 so 2 is the LRU victim.
    EXPECT_NE(cache.lookup(1), nullptr);
    EXPECT_TRUE(cache.insert(makeSim(3, 6)));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_NE(cache.lookup(1), nullptr);
    EXPECT_EQ(cache.lookup(2), nullptr) << "LRU entry evicted";
    EXPECT_NE(cache.lookup(3), nullptr);

    // An entry larger than the whole shard is not admitted.
    EXPECT_FALSE(cache.insert(makeSim(4, 10)));
    EXPECT_EQ(cache.stats().rejected, 1u);

    // A held reference survives eviction of its cache slot.
    const auto held = cache.lookup(1);
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(held->key, 1u);
    EXPECT_EQ(held->state.numQubits(), 6);
}

TEST(ResultCache, ZeroCapacityDisablesCaching)
{
    ResultCache cache(0, 4);
    auto sim = std::make_shared<CachedSim>();
    sim->key = 5;
    sim->state = StateVector(4);
    EXPECT_FALSE(cache.insert(sim));
    EXPECT_EQ(cache.lookup(5), nullptr);
}

TEST(JobServiceStress, ConcurrentSubmissionFromManyThreads)
{
    ServiceConfig cfg;
    cfg.maxActiveJobs = 2;
    cfg.maxQueueDepth = 1024;
    JobService svc(cfg);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 12;
    std::vector<std::vector<std::uint64_t>> ids(kThreads);
    std::atomic<int> cancelled{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                // A mix of unique jobs, shared jobs (cross-thread
                // coalescing/caching), and the occasional cancel.
                JobRequest r = smallJob(
                    i % 3 == 0 ? 100 + static_cast<std::uint64_t>(i)
                               : 200 + static_cast<std::uint64_t>(
                                           t * kPerThread + i));
                r.shots = 2;
                r.seed = static_cast<std::uint64_t>(t) << 32 |
                         static_cast<std::uint64_t>(i);
                const std::uint64_t id = svc.submit(r);
                ids[t].push_back(id);
                if (i % 7 == 6 && svc.cancel(id))
                    cancelled.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    svc.drain();

    int done = 0, other = 0;
    for (const auto &mine : ids) {
        ASSERT_EQ(mine.size(),
                  static_cast<std::size_t>(kPerThread));
        for (const std::uint64_t id : mine) {
            const JobResult r = svc.result(id);
            EXPECT_TRUE(jobStatusTerminal(r.status));
            if (r.status == JobStatus::Done) {
                ++done;
                EXPECT_NEAR(r.norm, 1.0, 1e-9);
            } else {
                ++other;
                EXPECT_EQ(r.status, JobStatus::Cancelled);
            }
        }
    }
    EXPECT_EQ(done + other, kThreads * kPerThread);
    EXPECT_EQ(other, cancelled.load());
    EXPECT_EQ(svc.counter("service.submitted"),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    // Shared keys must have been deduplicated by cache or
    // single-flight: strictly fewer simulations than submissions.
    EXPECT_LT(svc.cacheStats().insertions,
              static_cast<std::uint64_t>(kThreads * kPerThread));
}

} // namespace
} // namespace service
} // namespace qgpu
