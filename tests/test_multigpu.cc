/**
 * @file
 * Multi-GPU tests (paper §V-E): round-robin streaming across several
 * devices must stay exact and must beat both the single-GPU run and
 * the static multi-GPU baseline.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{
namespace
{

class MultiGpuCorrectness
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(MultiGpuCorrectness, ExactAcrossDeviceCounts)
{
    const auto &[family, gpus] = GetParam();
    const int n = 9;
    const Circuit c = circuits::makeBenchmark(family, n);
    Machine m =
        machines::makeScaled(n, machines::p4(), 1.0 / 8.0, gpus);
    const RunResult r = harness::runOn("qgpu", m, c);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-10)
        << family << " on " << gpus << " GPUs";
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndGpuCounts, MultiGpuCorrectness,
    ::testing::Combine(::testing::Values("qft", "gs", "iqp", "qaoa"),
                       ::testing::Values(2, 3, 4)));

TEST(MultiGpu, BaselineExactWithMultipleDevices)
{
    const int n = 9;
    const Circuit c = circuits::makeBenchmark("hlf", n);
    Machine m =
        machines::makeScaled(n, machines::p4(), 1.0 / 8.0, 4);
    const RunResult r = harness::runOn("baseline", m, c);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-10);
}

TEST(MultiGpu, MoreGpusMoreThroughput)
{
    // Four P4s streaming round-robin must beat one P4 on a
    // transfer-heavy circuit.
    const int n = 12;
    const Circuit c = circuits::makeBenchmark("qft", n);
    ExecOptions o;
    o.keepState = false;

    Machine one =
        machines::makeScaled(n, machines::p4(), 1.0 / 32.0, 1);
    Machine four =
        machines::makeScaled(n, machines::p4(), 4.0 / 32.0, 4);
    const VTime t1 = harness::runOn("qgpu", one, c, o).totalTime;
    const VTime t4 = harness::runOn("qgpu", four, c, o).totalTime;
    EXPECT_LT(t4, t1);
}

TEST(MultiGpu, QgpuBeatsStaticMultiGpuBaseline)
{
    // The Fig. 19 comparison on the PCIe server shape.
    const int n = 12;
    const Circuit c = circuits::makeBenchmark("gs", n);
    ExecOptions o;
    o.keepState = false;

    Machine m1 =
        machines::makeScaled(n, machines::p4(), 1.0 / 8.0, 4);
    Machine m2 =
        machines::makeScaled(n, machines::p4(), 1.0 / 8.0, 4);
    const VTime baseline =
        harness::runOn("baseline", m1, c, o).totalTime;
    const VTime qgpu = harness::runOn("qgpu", m2, c, o).totalTime;
    EXPECT_LT(qgpu, baseline);
}

TEST(MultiGpu, AllDevicesParticipate)
{
    const int n = 11;
    const Circuit c = circuits::makeBenchmark("qaoa", n);
    Machine m =
        machines::makeScaled(n, machines::p4(), 1.0 / 8.0, 3);
    ExecOptions o;
    o.keepState = false;
    (void)harness::runOn("qgpu", m, c, o);
    for (int d = 0; d < m.numDevices(); ++d)
        EXPECT_GT(m.device(d).compute().busyTime(), 0.0)
            << "device " << d << " idle";
}

} // namespace
} // namespace qgpu
