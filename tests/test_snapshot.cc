/**
 * @file
 * Snapshot round-trip tests: raw and GFC-compressed state
 * serialization must restore states bit-exactly.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "circuits/circuits.hh"
#include "harness/experiment.hh"
#include "statevec/snapshot.hh"

namespace qgpu
{
namespace
{

class SnapshotRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, bool>>
{
};

TEST_P(SnapshotRoundTrip, BitExactRestore)
{
    const auto &[family, compress] = GetParam();
    const StateVector want =
        simulateReference(circuits::makeBenchmark(family, 9));

    std::stringstream stream;
    saveState(want, stream, compress);
    const StateVector got = loadState(stream);

    ASSERT_EQ(got.numQubits(), want.numQubits());
    for (Index i = 0; i < want.size(); ++i)
        ASSERT_EQ(want[i], got[i]) << family << " i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndModes, SnapshotRoundTrip,
    ::testing::Combine(
        ::testing::Values("hchain", "qft", "iqp", "bv", "random"),
        ::testing::Bool()));

TEST(Snapshot, ChunkedPrunedEngineStateRoundTrips)
{
    // The states worth snapshotting come out of the streaming engine
    // (chunked, pruned, possibly with sidecar recovery behind them),
    // not simulateReference. Both snapshot modes must restore them
    // bit-exactly.
    const Circuit c = circuits::makeBenchmark("iqp", 9);
    Machine m = harness::benchMachine(9);
    ExecOptions o;
    o.targetChunks = 32;
    const RunResult r = harness::runOn("qgpu", m, c, o);
    ASSERT_TRUE(r.ok());

    for (const bool compress : {false, true}) {
        std::stringstream stream;
        saveState(r.state, stream, compress);
        const StateVector got = loadState(stream);
        ASSERT_EQ(got.numQubits(), r.state.numQubits());
        for (Index i = 0; i < r.state.size(); ++i)
            ASSERT_EQ(r.state[i], got[i])
                << (compress ? "gfc" : "raw") << " i=" << i;
    }
}

TEST(Snapshot, CompressedSparseStateIsSmaller)
{
    // The ground state is almost all zeros: compression must shrink
    // the snapshot well below the raw payload.
    const StateVector ground(12);
    std::stringstream raw, packed;
    saveState(ground, raw, false);
    saveState(ground, packed, true);
    EXPECT_LT(packed.str().size(), raw.str().size() / 2);
}

TEST(Snapshot, GroundStateDefaults)
{
    StateVector s(5);
    std::stringstream stream;
    saveState(s, stream);
    const StateVector back = loadState(stream);
    EXPECT_EQ(back[0], (Amp{1, 0}));
    EXPECT_EQ(back.countZeros(), 31u);
}

TEST(SnapshotDeath, BadMagic)
{
    std::stringstream stream;
    stream << "not a snapshot at all";
    EXPECT_DEATH((void)loadState(stream), "bad magic");
}

TEST(SnapshotDeath, Truncated)
{
    const StateVector s(6);
    std::stringstream stream;
    saveState(s, stream, true);
    std::string bytes = stream.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream cut(bytes);
    EXPECT_DEATH((void)loadState(cut), "truncated");
}

} // namespace
} // namespace qgpu
