/**
 * @file
 * Unit tests for the fault-injection and chunk-integrity subsystem
 * (src/fault/): checksums, fault-spec parsing, the deterministic
 * injector, structured SimErrors, the guarded-transfer retry policy,
 * and small end-to-end smoke runs through the streaming engines. The
 * long randomized sweeps live in test_fault_fuzz.cc (tier2).
 */

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "fault/checksum.hh"
#include "fault/injector.hh"
#include "fault/integrity.hh"
#include "fault/sim_error.hh"
#include "harness/experiment.hh"

namespace qgpu
{
namespace
{

// ---------------------------------------------------------------- checksum

TEST(Checksum, DeterministicAndSensitiveToEveryByte)
{
    std::vector<std::uint8_t> buf(67);
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::uint8_t>(i * 31 + 7);
    const std::uint64_t base = checksumBytes(buf.data(), buf.size());
    EXPECT_EQ(base, checksumBytes(buf.data(), buf.size()));
    // Any single-byte flip -- word-aligned or in the tail -- must
    // change the digest; that is the whole integrity contract.
    for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] ^= 0x40;
        EXPECT_NE(base, checksumBytes(buf.data(), buf.size()))
            << "flip at byte " << i << " went undetected";
        buf[i] ^= 0x40;
    }
    EXPECT_EQ(base, checksumBytes(buf.data(), buf.size()));
}

TEST(Checksum, LengthIsMixedIn)
{
    // A buffer of zeros must not collide with a shorter prefix of
    // itself (plain FNV over zero bytes is length-blind without the
    // finalizer).
    const std::vector<std::uint8_t> zeros(64, 0);
    EXPECT_NE(checksumBytes(zeros.data(), 64),
              checksumBytes(zeros.data(), 32));
    EXPECT_NE(checksumBytes(zeros.data(), 8),
              checksumBytes(zeros.data(), 9));
}

TEST(Checksum, AmpSpanMatchesRawBytes)
{
    std::vector<Amp> amps = {{0.25, -1.5}, {3.0, 0.0}, {-0.0, 2.0}};
    EXPECT_EQ(checksumAmps(amps),
              checksumBytes(amps.data(), amps.size() * sizeof(Amp)));
}

TEST(Checksum, EmptyBufferIsStable)
{
    EXPECT_EQ(checksumBytes(nullptr, 0), checksumBytes(nullptr, 0));
}

// --------------------------------------------------------------- FaultSpec

TEST(FaultSpec, ParsesPointsAndProbabilities)
{
    const FaultSpec s = FaultSpec::parse("d2h:0.01,codec:0.005");
    EXPECT_TRUE(s.enabled());
    EXPECT_FALSE(s.enabled(FaultPoint::H2D));
    EXPECT_TRUE(s.enabled(FaultPoint::D2H));
    EXPECT_TRUE(s.enabled(FaultPoint::Codec));
    EXPECT_FALSE(s.enabled(FaultPoint::Alloc));
    EXPECT_DOUBLE_EQ(
        s.probability[static_cast<int>(FaultPoint::D2H)], 0.01);
    EXPECT_DOUBLE_EQ(
        s.probability[static_cast<int>(FaultPoint::Codec)], 0.005);
}

TEST(FaultSpec, EmptyAndNoneDisable)
{
    EXPECT_FALSE(FaultSpec::parse("").enabled());
    EXPECT_FALSE(FaultSpec::resolve("").enabled());
    EXPECT_FALSE(FaultSpec::resolve("none").enabled());
}

TEST(FaultSpec, ResolveEnvReadsTheVariable)
{
    ::setenv("QGPU_FAULT_SPEC", "alloc:0.25", 1);
    const FaultSpec s = FaultSpec::resolve("env");
    ::unsetenv("QGPU_FAULT_SPEC");
    EXPECT_TRUE(s.enabled(FaultPoint::Alloc));
    EXPECT_DOUBLE_EQ(
        s.probability[static_cast<int>(FaultPoint::Alloc)], 0.25);
    EXPECT_FALSE(FaultSpec::resolve("env").enabled());
}

TEST(FaultSpec, ResolveInlineSpecBypassesEnv)
{
    ::setenv("QGPU_FAULT_SPEC", "alloc:1.0", 1);
    const FaultSpec s = FaultSpec::resolve("h2d:0.5");
    ::unsetenv("QGPU_FAULT_SPEC");
    EXPECT_TRUE(s.enabled(FaultPoint::H2D));
    EXPECT_FALSE(s.enabled(FaultPoint::Alloc));
}

TEST(FaultSpecDeath, MalformedSpecsAreFatal)
{
    EXPECT_DEATH((void)FaultSpec::parse("gpu:0.5"), "fault");
    EXPECT_DEATH((void)FaultSpec::parse("d2h:elephants"), "fault");
    EXPECT_DEATH((void)FaultSpec::parse("d2h:1.5"), "fault");
    EXPECT_DEATH((void)FaultSpec::parse("d2h"), "fault");
}

// ------------------------------------------------------------ FaultInjector

TEST(FaultInjector, DeterministicForSeed)
{
    const FaultSpec spec = FaultSpec::parse("d2h:0.3,h2d:0.3");
    FaultInjector a(spec, 99), b(spec, 99);
    for (int i = 0; i < 200; ++i) {
        const FaultPoint p =
            (i % 2) ? FaultPoint::D2H : FaultPoint::H2D;
        EXPECT_EQ(a.fire(p), b.fire(p)) << "draw " << i;
    }
    EXPECT_EQ(a.injectedTotal(), b.injectedTotal());
    EXPECT_GT(a.injectedTotal(), 0u);
}

TEST(FaultInjector, ExtremeProbabilities)
{
    FaultInjector never(FaultSpec::parse("d2h:0.0"), 1);
    FaultInjector always(FaultSpec::parse("d2h:1.0"), 1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(never.fire(FaultPoint::D2H));
        EXPECT_TRUE(always.fire(FaultPoint::D2H));
    }
    EXPECT_EQ(never.injected(FaultPoint::D2H), 0u);
    EXPECT_EQ(always.injected(FaultPoint::D2H), 100u);
}

TEST(FaultInjector, CorruptFlipsExactlyOneByte)
{
    FaultInjector inj(FaultSpec::parse("codec:1.0"), 7);
    std::vector<std::uint8_t> buf(256, 0xAB);
    const std::vector<std::uint8_t> orig = buf;
    inj.corrupt(buf);
    int changed = 0;
    for (std::size_t i = 0; i < buf.size(); ++i)
        if (buf[i] != orig[i])
            ++changed;
    EXPECT_EQ(changed, 1);

    std::vector<std::uint8_t> empty;
    inj.corrupt(empty); // must not crash
    EXPECT_TRUE(empty.empty());
}

// ---------------------------------------------------------------- SimError

TEST(SimError, ToStringCarriesContext)
{
    const SimError e{SimErrorCode::ChecksumMismatch, "h2d",
                     "raw copy diverged", 12, 34, 2};
    const std::string s = e.toString();
    EXPECT_NE(s.find("checksum_mismatch"), std::string::npos);
    EXPECT_NE(s.find("h2d"), std::string::npos);
    EXPECT_NE(s.find("12"), std::string::npos);
    EXPECT_NE(s.find("34"), std::string::npos);
    EXPECT_NE(s.find("raw copy diverged"), std::string::npos);
}

TEST(SimError, ExceptionWhatMatchesToString)
{
    const SimError e{SimErrorCode::TransferFailed, "d2h",
                     "retry budget exhausted", -1, 5, 4};
    const SimException ex(e);
    EXPECT_EQ(std::string(ex.what()), e.toString());
    EXPECT_EQ(ex.error().code, SimErrorCode::TransferFailed);
    EXPECT_EQ(ex.error().gate, 5);
}

// --------------------------------------------------------- guardedTransfer

TEST(GuardedTransfer, NoInjectorMeansOneAttempt)
{
    StatSet stats;
    int calls = 0;
    const VTime done = guardedTransfer(
        nullptr, FaultPoint::D2H, 3, 0, stats, 1.0, [&](VTime s) {
            ++calls;
            return s + 0.5;
        });
    EXPECT_EQ(calls, 1);
    EXPECT_DOUBLE_EQ(done, 1.5);
    EXPECT_EQ(stats.get(intkeys::faultKey(FaultPoint::D2H)), 0.0);
}

TEST(GuardedTransfer, RetriesBurnVirtualTimeThenSucceed)
{
    // Fault on the first two draws, then clean: expect 3 attempts
    // chained end-to-start. Injector draws are probabilistic, so
    // search for a seed whose first draws at p=0.5 are fail, fail,
    // pass.
    StatSet stats;
    for (std::uint64_t seed = 0; seed < 4096; ++seed) {
        FaultInjector probe(FaultSpec::parse("d2h:0.5"), seed);
        if (probe.fire(FaultPoint::D2H) &&
            probe.fire(FaultPoint::D2H) &&
            !probe.fire(FaultPoint::D2H)) {
            FaultInjector inj(FaultSpec::parse("d2h:0.5"), seed);
            int calls = 0;
            const VTime done = guardedTransfer(
                &inj, FaultPoint::D2H, 3, 7, stats, 0.0,
                [&](VTime s) {
                    ++calls;
                    return s + 1.0;
                });
            EXPECT_EQ(calls, 3);
            EXPECT_DOUBLE_EQ(done, 3.0);
            EXPECT_EQ(
                stats.get(intkeys::faultKey(FaultPoint::D2H)), 2.0);
            EXPECT_EQ(
                stats.get(intkeys::retryKey(FaultPoint::D2H)), 2.0);
            return;
        }
    }
    FAIL() << "no seed with a fail-fail-pass prefix in 4096 tries";
}

TEST(GuardedTransfer, ExhaustionThrowsStructuredError)
{
    FaultInjector inj(FaultSpec::parse("h2d:1.0"), 3);
    StatSet stats;
    try {
        guardedTransfer(&inj, FaultPoint::H2D, 2, 9, stats, 0.0,
                        [&](VTime s) { return s + 1.0; });
        FAIL() << "expected SimException";
    } catch (const SimException &e) {
        EXPECT_EQ(e.error().code, SimErrorCode::TransferFailed);
        EXPECT_EQ(e.error().point, "h2d");
        EXPECT_EQ(e.error().gate, 9);
        EXPECT_EQ(e.error().attempts, 3); // 1 initial + 2 retries
    }
}

// ------------------------------------------------------ ChunkIntegrity

TEST(ChunkIntegrity, RotatingSampleWindowCoversEveryChunk)
{
    // Pure verify mode with a window of 2 over 8 chunks: each epoch
    // tracks exactly 2 chunks, and four consecutive epochs cover all
    // 8 (disjoint windows), so nothing escapes verification for long.
    ChunkIntegrity guard(true, nullptr, 2);
    guard.reset(8);
    FaultInjector inj(FaultSpec::parse(""), 1);
    StatSet stats;
    const std::vector<Amp> chunk(4, Amp{0.5, -0.5});
    for (int epoch = 0; epoch < 4; ++epoch) {
        const double before = stats.get(intkeys::checksumComputed);
        for (Index c = 0; c < 8; ++c)
            guard.onShip(chunk, c, 0, inj, stats);
        EXPECT_EQ(stats.get(intkeys::checksumComputed) - before, 2.0)
            << "epoch " << epoch;
        for (Index c = 0; c < 8; ++c)
            guard.onReceive(chunk, c, 0, inj, stats);
        guard.beginEpoch();
    }
    // 8 distinct chunks computed in 4 epochs of 2 proves the windows
    // rotated without overlap; every receive of a tracked chunk
    // verified cleanly.
    EXPECT_EQ(stats.get(intkeys::checksumComputed), 8.0);
    EXPECT_EQ(stats.get(intkeys::checksumVerified), 8.0);
    EXPECT_EQ(stats.get(intkeys::checksumMismatch), 0.0);
}

TEST(ChunkIntegrity, SampledWindowStillDetectsCorruption)
{
    ChunkIntegrity guard(true, nullptr, 2);
    guard.reset(8);
    FaultInjector inj(FaultSpec::parse(""), 1);
    StatSet stats;
    const std::vector<Amp> good(4, Amp{0.5, -0.5});
    const std::vector<Amp> bad(4, Amp{0.25, 0.0});
    for (Index c = 0; c < 8; ++c)
        guard.onShip(good, c, 0, inj, stats);
    // Every tracked chunk "arrives" damaged: each one in the window
    // must raise the unrecoverable raw-mismatch error.
    int detected = 0;
    for (Index c = 0; c < 8; ++c) {
        try {
            guard.onReceive(bad, c, 0, inj, stats);
        } catch (const SimException &e) {
            EXPECT_EQ(e.error().code, SimErrorCode::ChecksumMismatch);
            ++detected;
        }
    }
    EXPECT_EQ(detected, 2);
}

TEST(ChunkIntegrity, ZeroLimitTracksEveryChunk)
{
    ChunkIntegrity guard(true, nullptr, 0);
    guard.reset(8);
    FaultInjector inj(FaultSpec::parse(""), 1);
    StatSet stats;
    const std::vector<Amp> chunk(4, Amp{1.0, 0.0});
    for (Index c = 0; c < 8; ++c)
        guard.onShip(chunk, c, 0, inj, stats);
    EXPECT_EQ(stats.get(intkeys::checksumComputed), 8.0);
}

// ----------------------------------------------------- end-to-end smoke

ExecOptions
faultlessOptions()
{
    ExecOptions o;
    o.targetChunks = 32;
    o.faultSpec = "none"; // isolate from any ambient QGPU_FAULT_SPEC
    return o;
}

TEST(FaultSmoke, CleanVerifyRunRecordsAndMatchesReference)
{
    const Circuit circuit = circuits::makeBenchmark("qft", 8);
    ExecOptions o = faultlessOptions();
    o.verifyChunks = true;
    o.verifySampleChunks = 0; // full tracking: every chunk, every epoch
    Machine m = harness::benchMachine(8);
    const RunResult r = harness::runOn("qgpu", m, circuit, o);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r.stats.get(intkeys::checksumComputed), 0.0);
    EXPECT_GT(r.stats.get(intkeys::checksumVerified), 0.0);
    EXPECT_EQ(r.stats.get(intkeys::checksumMismatch), 0.0);
    EXPECT_EQ(r.stats.get(intkeys::fallbackRaw), 0.0);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(circuit)), 1e-12);
}

TEST(FaultSmoke, SampledVerifyStaysExactAndComputesLess)
{
    // The default --verify-chunks configuration tracks a rotating
    // sample of chunks per sweep: it must cost measurably fewer hash
    // passes than full tracking while leaving the result untouched.
    const Circuit circuit = circuits::makeBenchmark("qft", 8);
    ExecOptions full = faultlessOptions();
    full.verifyChunks = true;
    full.verifySampleChunks = 0;
    Machine m_full = harness::benchMachine(8);
    const RunResult rf = harness::runOn("qgpu", m_full, circuit, full);
    ASSERT_TRUE(rf.ok());

    ExecOptions sampled = faultlessOptions();
    sampled.verifyChunks = true;
    sampled.verifySampleChunks = 4;
    Machine m_sampled = harness::benchMachine(8);
    const RunResult rs =
        harness::runOn("qgpu", m_sampled, circuit, sampled);
    ASSERT_TRUE(rs.ok());
    EXPECT_GT(rs.stats.get(intkeys::checksumComputed), 0.0);
    EXPECT_LT(rs.stats.get(intkeys::checksumComputed),
              rf.stats.get(intkeys::checksumComputed));
    EXPECT_EQ(rs.stats.get(intkeys::checksumMismatch), 0.0);
    EXPECT_EQ(rs.state.maxAbsDiff(rf.state), 0.0);
}

TEST(FaultSmoke, RecoveredFaultsLeaveTheStateBitIdentical)
{
    const Circuit circuit = circuits::makeBenchmark("random", 8);
    Machine m_ref = harness::benchMachine(8);
    const RunResult ref =
        harness::runOn("qgpu", m_ref, circuit, faultlessOptions());
    ASSERT_TRUE(ref.ok());

    ExecOptions o = faultlessOptions();
    o.faultSpec = "h2d:0.05,d2h:0.05,codec:0.3,alloc:0.1";
    o.faultSeed = 1234;
    Machine m = harness::benchMachine(8);
    const RunResult r = harness::runOn("qgpu", m, circuit, o);
    ASSERT_TRUE(r.ok()) << r.error->toString();
    // Corruption hits the compressed sidecar, never the
    // authoritative chunks: recovery must be exact, not approximate.
    EXPECT_EQ(r.state.maxAbsDiff(ref.state), 0.0);
    EXPECT_GT(r.stats.get(intkeys::checksumMismatch) +
                  r.stats.get(intkeys::fallbackRaw),
              0.0)
        << "fault spec injected nothing -- smoke test lost its bite";
    // Recovered runs also burn extra virtual time, never less.
    EXPECT_GE(r.totalTime, ref.totalTime);
}

TEST(FaultSmoke, ExhaustedRetriesSurfaceAsStructuredError)
{
    const Circuit circuit = circuits::makeBenchmark("qft", 8);
    ExecOptions o = faultlessOptions();
    o.faultSpec = "d2h:1.0";
    Machine m = harness::benchMachine(8);
    const RunResult r = harness::runOn("qgpu", m, circuit, o);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error->code, SimErrorCode::TransferFailed);
    EXPECT_EQ(r.error->point, "d2h");
    EXPECT_EQ(r.error->attempts, o.transferRetries + 1);
    EXPECT_EQ(r.stats.get(intkeys::simErrors), 1.0);
}

TEST(FaultSmoke, FaultSequenceIsSeedStableAcrossThreadCounts)
{
    const Circuit circuit = circuits::makeBenchmark("random", 8);
    ExecOptions o = faultlessOptions();
    o.faultSpec = "d2h:0.1,codec:0.2";
    o.faultSeed = 77;

    StatSet first;
    for (const int threads : {1, 3}) {
        setSimThreads(threads);
        Machine m = harness::benchMachine(8);
        const RunResult r = harness::runOn("qgpu", m, circuit, o);
        ASSERT_TRUE(r.ok());
        if (threads == 1) {
            first = r.stats;
            continue;
        }
        for (const char *key :
             {intkeys::faultKey(FaultPoint::D2H),
              intkeys::faultKey(FaultPoint::Codec),
              intkeys::checksumMismatch, intkeys::fallbackRaw,
              intkeys::retryKey(FaultPoint::D2H)})
            EXPECT_EQ(r.stats.get(key), first.get(key)) << key;
    }
    setSimThreads(1);
}

} // namespace
} // namespace qgpu
