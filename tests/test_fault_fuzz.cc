/**
 * @file
 * Differential fuzz harness for the fault-injection subsystem (tier2:
 * excluded from the pre-commit gate, run via `ctest -L tier2`, e.g. by
 * `scripts/check.sh --asan`). For every engine version and pruning
 * mode, a sweep of seeded random circuits runs twice -- fault-free and
 * under an injected fault mix -- rotating register size, host thread
 * count, fault spec, and injector seed per iteration. The contract
 * under test is the tentpole guarantee: a faulted run either recovers
 * BIT-identically (corruption only ever touches the compressed
 * sidecar, never the authoritative chunks) or surfaces a structured
 * SimError; it never crashes and never returns a silently corrupt
 * state.
 */

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "fault/integrity.hh"
#include "harness/experiment.hh"

namespace qgpu
{
namespace
{

constexpr int kSeeds = 50;

struct PruneMode
{
    const char *name;
    bool dynamicChunks;
    InvolvementPolicy involvement;
};

constexpr PruneMode kModes[] = {
    {"dynamic_perop", true, InvolvementPolicy::PerOp},
    {"static_perop", false, InvolvementPolicy::PerOp},
    {"dynamic_nondiag", true, InvolvementPolicy::NonDiagonal},
};

// A moderate mix (recovery path), a payload-heavy mix (codec/alloc
// fallback path), and a hot transfer mix that regularly exhausts the
// retry budget (structured-error path).
constexpr const char *kSpecs[] = {
    "h2d:0.02,d2h:0.02,codec:0.05,alloc:0.02",
    "codec:0.4,alloc:0.2",
    "d2h:0.6,codec:0.1",
};

class FaultFuzz
    : public ::testing::TestWithParam<std::tuple<Version, int>>
{
  protected:
    void TearDown() override { setSimThreads(1); }
};

TEST_P(FaultFuzz, RecoversBitIdenticallyOrErrorsStructurally)
{
    const auto &[version, mode_idx] = GetParam();
    const PruneMode &mode = kModes[mode_idx];

    int recovered_runs = 0;
    int errored_runs = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
        const int n = 6 + seed % 3;
        const Circuit circuit =
            circuits::makeBenchmark("random", n, seed + 1);
        setSimThreads(1 + seed % 3);

        ExecOptions o;
        o.targetChunks = 32;
        o.codecSampleChunks = 0;
        o.dynamicChunks = mode.dynamicChunks;
        o.involvement = mode.involvement;
        o.faultSpec = "none"; // ignore any ambient QGPU_FAULT_SPEC

        Machine ref_machine = harness::benchMachine(n);
        const RunResult ref =
            makeVersion(version, ref_machine, o)->run(circuit);
        ASSERT_TRUE(ref.ok()) << "fault-free run failed, seed "
                              << seed;

        ExecOptions fo = o;
        fo.verifyChunks = true;
        fo.faultSpec = kSpecs[seed % std::size(kSpecs)];
        fo.faultSeed = 0x9e3779b97f4a7c15ull *
                       static_cast<std::uint64_t>(seed + 1);
        Machine machine = harness::benchMachine(n);
        const RunResult r =
            makeVersion(version, machine, fo)->run(circuit);

        if (!r.ok()) {
            // Recovery exhausted: the error must be structured and
            // localized. Only transfer retries can exhaust -- payload
            // corruption always has the raw fallback.
            ++errored_runs;
            EXPECT_EQ(r.error->code, SimErrorCode::TransferFailed)
                << "seed " << seed;
            EXPECT_FALSE(r.error->point.empty());
            EXPECT_GT(r.error->attempts, fo.transferRetries);
            EXPECT_EQ(r.stats.get(intkeys::simErrors), 1.0);
            continue;
        }
        ++recovered_runs;
        EXPECT_EQ(r.state.maxAbsDiff(ref.state), 0.0)
            << versionName(version) << "/" << mode.name
            << " diverged from its fault-free twin, seed " << seed;
        EXPECT_LT(r.state.maxAbsDiff(simulateReference(circuit)),
                  1e-12)
            << versionName(version) << "/" << mode.name
            << " diverged from the flat reference, seed " << seed;
    }
    // The sweep must actually exercise the recovery path; a spec mix
    // that errors every run (or never injects) tests nothing.
    EXPECT_GT(recovered_runs, 0)
        << versionName(version) << "/" << mode.name;
    EXPECT_EQ(recovered_runs + errored_runs, kSeeds);
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, FaultFuzz,
    ::testing::Combine(::testing::ValuesIn(allVersions()),
                       ::testing::Range(0, 3)),
    [](const auto &info) {
        std::string name = versionName(std::get<0>(info.param));
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_'; // "Q-GPU" is not a valid gtest name
        return name + "_" + kModes[std::get<1>(info.param)].name;
    });

// Peer-heavy mixes for the sharded multi-device paths: a moderate mix
// exercising peer retry recovery alongside the host-link points, a
// payload mix on top of peer faults, and a hot peer link that
// regularly exhausts the retry budget (structured-error path, point
// "peer").
constexpr const char *kPeerSpecs[] = {
    "peer:0.05,h2d:0.02,d2h:0.02",
    "peer:0.2,codec:0.3,alloc:0.1",
    "peer:0.7",
};

class MultiDeviceFaultFuzz
    : public ::testing::TestWithParam<std::tuple<Version, int>>
{
  protected:
    void TearDown() override { setSimThreads(1); }
};

TEST_P(MultiDeviceFaultFuzz, ShardedRunsRecoverOrErrorStructurally)
{
    const auto &[version, mode_idx] = GetParam();
    const PruneMode &mode = kModes[mode_idx];
    constexpr int kMultiSeeds = 30;
    constexpr int kDevs[] = {2, 4, 8};

    int recovered_runs = 0;
    int errored_runs = 0;
    int peer_errors = 0;
    for (int seed = 0; seed < kMultiSeeds; ++seed) {
        const int n = 6 + seed % 3;
        const int devices = kDevs[seed % std::size(kDevs)];
        const DeviceSpec gpu = (seed / 2) % 2 == 0
                                   ? machines::v100Nvlink()
                                   : machines::p4();
        const Circuit circuit =
            circuits::makeBenchmark("random", n, seed + 1);
        setSimThreads(1 + seed % 3);

        ExecOptions o;
        o.targetChunks = 32;
        o.codecSampleChunks = 0;
        o.dynamicChunks = mode.dynamicChunks;
        o.involvement = mode.involvement;
        o.faultSpec = "none";

        // Fraction 1.0: the state is resident across the shards, so
        // the engines take the sharded paths with peer exchange.
        Machine ref_machine =
            machines::makeScaled(n, gpu, 1.0, devices);
        const RunResult ref =
            makeVersion(version, ref_machine, o)->run(circuit);
        ASSERT_TRUE(ref.ok()) << "fault-free run failed, seed "
                              << seed;

        ExecOptions fo = o;
        fo.verifyChunks = true;
        fo.faultSpec = kPeerSpecs[seed % std::size(kPeerSpecs)];
        fo.faultSeed = 0x9e3779b97f4a7c15ull *
                       static_cast<std::uint64_t>(seed + 1);
        Machine machine = machines::makeScaled(n, gpu, 1.0, devices);
        const RunResult r =
            makeVersion(version, machine, fo)->run(circuit);

        if (!r.ok()) {
            ++errored_runs;
            EXPECT_EQ(r.error->code, SimErrorCode::TransferFailed)
                << "seed " << seed;
            EXPECT_FALSE(r.error->point.empty());
            EXPECT_GT(r.error->attempts, fo.transferRetries);
            EXPECT_EQ(r.stats.get(intkeys::simErrors), 1.0);
            if (r.error->point == "peer")
                ++peer_errors;
            continue;
        }
        ++recovered_runs;
        EXPECT_EQ(r.state.maxAbsDiff(ref.state), 0.0)
            << versionName(version) << "/" << mode.name
            << " diverged from its fault-free twin at " << devices
            << " devices, seed " << seed;
        EXPECT_LT(r.state.maxAbsDiff(simulateReference(circuit)),
                  1e-12)
            << versionName(version) << "/" << mode.name
            << " diverged from the flat reference, seed " << seed;
    }
    EXPECT_GT(recovered_runs, 0)
        << versionName(version) << "/" << mode.name;
    EXPECT_EQ(recovered_runs + errored_runs, kMultiSeeds);
    // The hot-peer spec must actually reach the peer link's
    // structured-error path at least once across the sweep.
    EXPECT_GT(peer_errors, 0)
        << versionName(version) << "/" << mode.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, MultiDeviceFaultFuzz,
    ::testing::Combine(::testing::ValuesIn(allVersions()),
                       ::testing::Range(0, 3)),
    [](const auto &info) {
        std::string name = versionName(std::get<0>(info.param));
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name + "_" + kModes[std::get<1>(info.param)].name;
    });

} // namespace
} // namespace qgpu
