/**
 * @file
 * Algorithm 1 tests: the chunk sweep must agree with a brute-force
 * liveness check, and its early-exit must never skip a live chunk.
 */

#include <gtest/gtest.h>

#include "prune/pruning.hh"

namespace qgpu
{
namespace
{

TEST(PruneSweep, AllLiveWhenFullyInvolved)
{
    InvolvementMask mask(6);
    for (int q = 0; q < 6; ++q)
        mask.involve(q);
    const PruneSweep sweep = sweepChunks(mask, 6, 2);
    EXPECT_EQ(sweep.totalChunks, 16u);
    EXPECT_EQ(sweep.live.size(), 16u);
    EXPECT_EQ(sweep.prunedChunks, 0u);
}

TEST(PruneSweep, OnlyChunkZeroAtStart)
{
    InvolvementMask mask(6);
    const PruneSweep sweep = sweepChunks(mask, 6, 2);
    EXPECT_EQ(sweep.live, (std::vector<Index>{0}));
    EXPECT_EQ(sweep.prunedChunks, 15u);
}

TEST(PruneSweep, PaperExample)
{
    // 7 qubits, 4-bit chunks, qubits 0..4 involved: chunks with
    // bit 5 or 6 set are dead.
    InvolvementMask mask(7);
    for (int q = 0; q <= 4; ++q)
        mask.involve(q);
    const PruneSweep sweep = sweepChunks(mask, 7, 4);
    EXPECT_EQ(sweep.live, (std::vector<Index>{0, 1}));
    EXPECT_EQ(sweep.prunedChunks, 6u);
}

class SweepMatchesBruteForce
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SweepMatchesBruteForce, EveryMaskEveryChunkSize)
{
    // Exhaustive over all 2^6 involvement masks for a 6-qubit state.
    const std::uint64_t mask_bits = GetParam();
    InvolvementMask mask(6);
    for (int q = 0; q < 6; ++q)
        if ((mask_bits >> q) & 1)
            mask.involve(q);

    for (int chunk_bits = 0; chunk_bits <= 6; ++chunk_bits) {
        const PruneSweep sweep = sweepChunks(mask, 6, chunk_bits);
        std::vector<Index> want;
        const Index chunks = Index{1} << (6 - chunk_bits);
        for (Index c = 0; c < chunks; ++c) {
            const std::uint64_t shifted = c << chunk_bits;
            if ((shifted & mask_bits) == shifted)
                want.push_back(c);
        }
        EXPECT_EQ(sweep.live, want)
            << "mask " << mask_bits << " chunkBits " << chunk_bits;
        EXPECT_EQ(sweep.live.size() + sweep.prunedChunks,
                  sweep.totalChunks);
    }
}

INSTANTIATE_TEST_SUITE_P(AllMasks, SweepMatchesBruteForce,
                         ::testing::Range<std::uint64_t>(0, 64));

} // namespace
} // namespace qgpu
