/**
 * @file
 * Measurement tests: probability vectors, marginals, and sampling --
 * on reference states and on states produced by the chunked, pruned
 * streaming engines (the states a user actually measures).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "statevec/measure.hh"

namespace qgpu
{
namespace
{

StateVector
bell()
{
    Circuit c(2);
    c.h(0).cx(0, 1);
    return simulateReference(c);
}

TEST(Measure, ProbabilitiesSumToOne)
{
    const auto probs = probabilities(bell());
    double sum = 0.0;
    for (double p : probs)
        sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-14);
    EXPECT_NEAR(probs[0], 0.5, 1e-14);
    EXPECT_NEAR(probs[3], 0.5, 1e-14);
}

TEST(Measure, ProbabilityOfOne)
{
    const StateVector s = bell();
    EXPECT_NEAR(probabilityOfOne(s, 0), 0.5, 1e-14);
    EXPECT_NEAR(probabilityOfOne(s, 1), 0.5, 1e-14);

    StateVector ground(3);
    EXPECT_NEAR(probabilityOfOne(ground, 2), 0.0, 1e-15);
}

TEST(Measure, MarginalOverSubset)
{
    // GHZ on 3 qubits; marginal over {0, 2} is 50/50 on 00 and 11.
    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2);
    const StateVector s = simulateReference(c);
    const auto marg = marginalProbabilities(s, {0, 2});
    ASSERT_EQ(marg.size(), 4u);
    EXPECT_NEAR(marg[0b00], 0.5, 1e-14);
    EXPECT_NEAR(marg[0b11], 0.5, 1e-14);
    EXPECT_NEAR(marg[0b01], 0.0, 1e-14);
}

TEST(Measure, SamplingMatchesDistribution)
{
    const StateVector s = bell();
    Rng rng(123);
    const auto counts = sampleCounts(s, 20000, rng);

    std::uint64_t c00 = 0, c11 = 0, other = 0;
    for (const auto &[outcome, count] : counts) {
        if (outcome == 0)
            c00 = count;
        else if (outcome == 3)
            c11 = count;
        else
            other += count;
    }
    EXPECT_EQ(other, 0u);
    EXPECT_NEAR(static_cast<double>(c00) / 20000, 0.5, 0.02);
    EXPECT_NEAR(static_cast<double>(c11) / 20000, 0.5, 0.02);
}

TEST(Measure, ChunkedPrunedStateMeasuresLikeTheReference)
{
    // iqp is the pruning-heavy family: most chunks stay zero for most
    // of the run, so the engine state has seen the dynamic-chunk and
    // prune paths before measurement.
    const int n = 8;
    const Circuit c = circuits::makeBenchmark("iqp", n);
    const StateVector want = simulateReference(c);

    for (const char *engine : {"pruning", "qgpu"}) {
        Machine m = harness::benchMachine(n);
        ExecOptions o;
        o.targetChunks = 32;
        const RunResult r = harness::runOn(engine, m, c, o);
        ASSERT_TRUE(r.ok()) << engine;

        const auto got = probabilities(r.state);
        const auto ref = probabilities(want);
        ASSERT_EQ(got.size(), ref.size());
        double sum = 0.0;
        for (Index i = 0; i < static_cast<Index>(got.size()); ++i) {
            EXPECT_NEAR(got[i], ref[i], 1e-12)
                << engine << " i=" << i;
            sum += got[i];
        }
        EXPECT_NEAR(sum, 1.0, 1e-12) << engine;

        const auto marg = marginalProbabilities(r.state, {0, n - 1});
        const auto marg_ref = marginalProbabilities(want, {0, n - 1});
        for (Index i = 0; i < 4; ++i)
            EXPECT_NEAR(marg[i], marg_ref[i], 1e-12) << engine;

        // Sampling an engine state is deterministic in the rng seed.
        Rng rng_a(99), rng_b(99);
        const auto counts_a = sampleCounts(r.state, 500, rng_a);
        const auto counts_b = sampleCounts(r.state, 500, rng_b);
        EXPECT_EQ(counts_a, counts_b) << engine;
        std::uint64_t shots = 0;
        for (const auto &[outcome, count] : counts_a) {
            EXPECT_GT(ref[outcome], 0.0)
                << engine << " sampled an impossible outcome";
            shots += count;
        }
        EXPECT_EQ(shots, 500u) << engine;
    }
}

TEST(Measure, SamplingDeterministicBasisState)
{
    StateVector s(3);
    s.apply(Gate(GateKind::X, {1}));
    Rng rng(5);
    const auto counts = sampleCounts(s, 100, rng);
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_EQ(counts.begin()->first, 0b010u);
    EXPECT_EQ(counts.begin()->second, 100u);
}

} // namespace
} // namespace qgpu
