/**
 * @file
 * Unit tests for the machine model's multi-device plumbing: host-link
 * DRAM derating (Machine::contendedHostLink), the peer-link
 * composition rule (Machine::peerLink), and makeScaled's per-GPU
 * capacity and rate scaling with num_gpus > 1.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"

namespace qgpu
{
namespace
{

TEST(MachineScaling, ContendedHostLinkDeratesWithDeviceCount)
{
    // Unscaled host: 36 GB/s of DRAM bandwidth shared by 2 directions
    // per device. One device leaves a 12 GB/s PCIe link alone
    // (36/2 = 18 > 12); four devices squeeze it to 36/8 = 4.5 GB/s.
    const HostSpec host = machines::xeonSilverHost();
    Machine one(host, {machines::p100()});
    const LinkModel raw = one.device(0).spec().h2d;
    EXPECT_DOUBLE_EQ(one.contendedHostLink(raw).bandwidth,
                     raw.bandwidth);

    Machine four(host, std::vector<DeviceSpec>(4, machines::p100()));
    const LinkModel derated = four.contendedHostLink(raw);
    EXPECT_DOUBLE_EQ(derated.bandwidth,
                     host.memBandwidth / (2.0 * 4.0));
    // Latency is a link property, not a DRAM one.
    EXPECT_DOUBLE_EQ(derated.latency, raw.latency);
}

TEST(MachineScaling, PeerLinkIsMinBandwidthMaxLatencyAndSymmetric)
{
    // Heterogeneous endpoints: the link is the two peer ports in
    // series — the slower bandwidth and the larger latency win.
    Machine m(machines::xeonSilverHost(),
              {machines::p100(), machines::v100Nvlink()});
    const LinkModel p = m.device(0).spec().peer;   // 10 GB/s, 12 us
    const LinkModel v = m.device(1).spec().peer;   // 75 GB/s, 4 us
    const LinkModel link = m.peerLink(0, 1);
    EXPECT_DOUBLE_EQ(link.bandwidth,
                     std::min(p.bandwidth, v.bandwidth));
    EXPECT_DOUBLE_EQ(link.latency, std::max(p.latency, v.latency));
    const LinkModel back = m.peerLink(1, 0);
    EXPECT_DOUBLE_EQ(back.bandwidth, link.bandwidth);
    EXPECT_DOUBLE_EQ(back.latency, link.latency);
}

TEST(MachineScaling, MakeScaledSplitsCapacityAcrossGpus)
{
    // fraction 1.0 over 4 GPUs: each holds a quarter of the state, so
    // together they hold it all (the sharded-resident trigger).
    const int n = 10;
    Machine m = machines::makeScaled(n, machines::p4(), 1.0, 4, n);
    ASSERT_EQ(m.numDevices(), 4);
    for (int d = 0; d < 4; ++d)
        EXPECT_EQ(m.device(d).spec().memBytes, stateBytes(n) / 4);
    EXPECT_EQ(m.totalDeviceMem(), stateBytes(n));
}

TEST(MachineScaling, MakeScaledDividesRatesNotLatencies)
{
    // 24 qubits at paper size 34: every rate shrinks by 2^10; fixed
    // latencies stay absolute (they do not scale with state size).
    const DeviceSpec raw = machines::v100Nvlink();
    Machine m = machines::makeScaled(24, raw, 1.0 / 16.0, 2, 34);
    const double scale = 1024.0;
    const DeviceSpec &s = m.device(0).spec();
    EXPECT_DOUBLE_EQ(s.flops, raw.flops / scale);
    EXPECT_DOUBLE_EQ(s.memBandwidth, raw.memBandwidth / scale);
    EXPECT_DOUBLE_EQ(s.h2d.bandwidth, raw.h2d.bandwidth / scale);
    EXPECT_DOUBLE_EQ(s.peer.bandwidth, raw.peer.bandwidth / scale);
    EXPECT_DOUBLE_EQ(s.peer.latency, raw.peer.latency);
    EXPECT_DOUBLE_EQ(s.kernelLatency, raw.kernelLatency);
}

TEST(MachineScaling, PeerEngineSchedulesAndResets)
{
    Machine m(machines::xeonSilverHost(),
              std::vector<DeviceSpec>(2, machines::p100()));
    auto &peer = m.device(0).peerEngine();
    const VTime done =
        peer.schedule(0.0, m.peerLink(0, 1).transferTime(1 << 20));
    EXPECT_GT(done, 0.0);
    EXPECT_GT(peer.busyTime(), 0.0);
    m.reset();
    EXPECT_DOUBLE_EQ(m.device(0).peerEngine().busyTime(), 0.0);
    EXPECT_DOUBLE_EQ(m.device(0).peerEngine().freeAt(), 0.0);
}

} // namespace
} // namespace qgpu
