/**
 * @file
 * Tests for the virtual-time device model: resources, links, kernel
 * roofs, machine presets, and timeline rendering.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "sim/timeline.hh"

namespace qgpu
{
namespace
{

TEST(TimedResource, SequentialOccupancy)
{
    TimedResource r("r");
    EXPECT_DOUBLE_EQ(r.schedule(0.0, 2.0), 2.0);
    // Earliest 1.0 but resource busy until 2.0.
    EXPECT_DOUBLE_EQ(r.schedule(1.0, 3.0), 5.0);
    // Gap: earliest 10 after free at 5.
    EXPECT_DOUBLE_EQ(r.schedule(10.0, 1.0), 11.0);
    EXPECT_DOUBLE_EQ(r.busyTime(), 6.0);
}

TEST(TimedResource, ResetClears)
{
    TimedResource r("r");
    r.schedule(0.0, 5.0);
    r.reset();
    EXPECT_DOUBLE_EQ(r.freeAt(), 0.0);
    EXPECT_DOUBLE_EQ(r.busyTime(), 0.0);
}

TEST(LinkModel, TransferTime)
{
    LinkModel link{10e9, 1e-5};
    EXPECT_DOUBLE_EQ(link.transferTime(10'000'000'000ull),
                     1.0 + 1e-5);
    // Latency dominates tiny transfers.
    EXPECT_GT(link.transferTime(1), 1e-5);
}

TEST(DeviceModel, KernelRoofline)
{
    DeviceSpec spec;
    spec.flops = 1e12;
    spec.memBandwidth = 1e11;
    spec.kernelLatency = 0.0;
    DeviceModel dev(spec);
    // Compute-bound: 1e12 flops over 1 byte.
    EXPECT_NEAR(dev.kernelTime(1e12, 1.0), 1.0, 1e-12);
    // Memory-bound: 1 flop over 1e11 bytes.
    EXPECT_NEAR(dev.kernelTime(1.0, 1e11), 1.0, 1e-12);
}

TEST(DeviceModel, CodecTime)
{
    DeviceSpec spec;
    spec.codecThroughput = 50e9;
    spec.kernelLatency = 0.0;
    DeviceModel dev(spec);
    EXPECT_NEAR(dev.codecTime(50'000'000'000ull), 1.0, 1e-12);
}

TEST(Machine, PresetsSane)
{
    EXPECT_GT(machines::p100().flops, 1e12);
    EXPECT_GT(machines::v100Pcie().flops, machines::p100().flops);
    EXPECT_GT(machines::a100().memBandwidth,
              machines::v100Pcie().memBandwidth);
    EXPECT_LT(machines::p4().flops, machines::p100().flops);
    EXPECT_GT(machines::v100Nvlink().h2d.bandwidth,
              machines::v100Pcie().h2d.bandwidth);
}

TEST(Machine, ScaledDeviceFraction)
{
    const int n = 20;
    Machine m = machines::makeScaled(n, machines::p100(), 1.0 / 16.0);
    EXPECT_EQ(m.numDevices(), 1);
    EXPECT_EQ(m.device(0).spec().memBytes, stateBytes(n) / 16);
}

TEST(Machine, MultiGpuSplitsCapacity)
{
    Machine m =
        machines::makeScaled(20, machines::p4(), 1.0 / 8.0, 4);
    EXPECT_EQ(m.numDevices(), 4);
    EXPECT_EQ(m.totalDeviceMem(), stateBytes(20) / 8);
    // Device names are disambiguated.
    EXPECT_NE(m.device(0).spec().name, m.device(1).spec().name);
}

TEST(Machine, ResetClearsAllEngines)
{
    Machine m = machines::makeScaled(16, machines::p100());
    m.device(0).compute().schedule(0.0, 1.0);
    m.host().compute().schedule(0.0, 2.0);
    m.reset();
    EXPECT_DOUBLE_EQ(m.device(0).compute().freeAt(), 0.0);
    EXPECT_DOUBLE_EQ(m.host().compute().freeAt(), 0.0);
}

TEST(HostModel, ThreadScaling)
{
    HostModel host(machines::xeonSilverHost());
    const double flops = 1e12;
    // More threads -> faster, but sublinearly.
    const VTime t1 = host.updateTime(flops, 0.0, 1);
    const VTime t10 = host.updateTime(flops, 0.0, 10);
    EXPECT_LT(t10, t1);
    EXPECT_GT(t10, t1 / 10.0);
}

TEST(HostModel, MemoryRoof)
{
    HostSpec spec;
    spec.memBandwidth = 1e9;
    spec.flopsPerCore = 1e15; // compute free
    HostModel host(spec);
    EXPECT_NEAR(host.updateTime(1.0, 1e9), 1.0, 1e-12);
}

TEST(Timeline, DisabledRecordsNothing)
{
    Timeline t;
    t.record("r", "x", 0.0, 1.0);
    EXPECT_TRUE(t.spans().empty());
}

TEST(Timeline, RenderShowsResources)
{
    Timeline t;
    t.enable();
    t.record("gpu.compute", "kernel", 0.0, 1.0);
    t.record("gpu.h2d", "xfer", 0.5, 2.0);
    const std::string out = t.render(40);
    EXPECT_NE(out.find("gpu.compute"), std::string::npos);
    EXPECT_NE(out.find("gpu.h2d"), std::string::npos);
    EXPECT_NE(out.find("k"), std::string::npos);
}

} // namespace
} // namespace qgpu
