/**
 * @file
 * Tests for the deterministic PRNG used by workload generation.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace qgpu
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowOneIsZero)
{
    Rng rng(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        const double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    // Mean of U[0,1) should be ~0.5.
    EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(Rng, NextBoolBias)
{
    Rng rng(13);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, UniformityOverBuckets)
{
    Rng rng(17);
    const int buckets = 8;
    std::vector<int> hist(buckets, 0);
    const int trials = 16000;
    for (int i = 0; i < trials; ++i)
        ++hist[rng.nextBelow(buckets)];
    for (int b = 0; b < buckets; ++b)
        EXPECT_NEAR(hist[b], trials / buckets, trials / buckets / 4);
}

} // namespace
} // namespace qgpu
