/**
 * @file
 * Tests for the deterministic PRNG used by workload generation.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace qgpu
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowOneIsZero)
{
    Rng rng(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        const double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    // Mean of U[0,1) should be ~0.5.
    EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(Rng, NextBoolBias)
{
    Rng rng(13);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

// Golden values for the shot-seed derivation (engine/batched.hh
// seeds shot i with Rng(splitSeed(base, i))). These pin the exact
// splitmix64 arithmetic cross-platform: a platform where any of them
// drifts would silently change every noisy trajectory while the
// statistical tests still pass.
TEST(Rng, SplitSeedGoldens)
{
    const struct
    {
        std::uint64_t base, index, expect;
    } cases[] = {
        {0x5407ull, 0, 0x68bd5ffb995a2d63ull},
        {0x5407ull, 1, 0xb227106cf5810c85ull},
        {0x5407ull, 2, 0x65b8da70b34bbb3full},
        {0x5407ull, 1023, 0xb413cd130c16093bull},
        {0x0ull, 0, 0x6e789e6aa1b965f4ull},
        {0xdeadbeefcafef00dull, 7, 0x5047e69e4524a085ull},
    };
    for (const auto &c : cases)
        EXPECT_EQ(splitSeed(c.base, c.index), c.expect)
            << "base " << c.base << " index " << c.index;
}

// Shot 0's seed differs from the base seed itself (the index+1
// offset), so the batch RNG never aliases a direct Rng(base) user.
TEST(Rng, SplitSeedDistinctFromBase)
{
    EXPECT_NE(splitSeed(0x5407ull, 0), 0x5407ull);
    // And the first derived double is pinned too (the first noise
    // draw of shot 0 under the default batch seed).
    Rng rng(splitSeed(0x5407ull, 0));
    EXPECT_EQ(rng.nextDouble(), 0.037842898865806496);
}

TEST(Rng, SplitSeedIndexSensitivity)
{
    // Adjacent indices and adjacent bases must not collide; a weak
    // mix here would correlate neighboring shots.
    const std::uint64_t a = splitSeed(100, 5);
    EXPECT_NE(a, splitSeed(100, 6));
    EXPECT_NE(a, splitSeed(101, 5));
    EXPECT_NE(a, splitSeed(101, 4));
}

TEST(Rng, UniformityOverBuckets)
{
    Rng rng(17);
    const int buckets = 8;
    std::vector<int> hist(buckets, 0);
    const int trials = 16000;
    for (int i = 0; i < trials; ++i)
        ++hist[rng.nextBelow(buckets)];
    for (int b = 0; b < buckets; ++b)
        EXPECT_NEAR(hist[b], trials / buckets, trials / buckets / 4);
}

} // namespace
} // namespace qgpu
