/**
 * @file
 * Virtual-time behaviour of the engines: the orderings the paper's
 * evaluation hinges on. Each optimization must help (or at least not
 * hurt) on the workloads the paper says it helps on.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace qgpu
{
namespace
{

VTime
timeOf(const std::string &engine, const std::string &family, int n,
       ExecOptions o = {})
{
    Machine m = harness::benchMachine(n);
    o.keepState = false;
    return harness::runOn(engine, m,
                          circuits::makeBenchmark(family, n), o)
        .totalTime;
}

TEST(EngineTiming, OverlapBeatsNaiveEverywhere)
{
    for (const auto &family : {"qft", "gs", "qaoa", "hchain"}) {
        EXPECT_LT(timeOf("overlap", family, 12),
                  timeOf("naive", family, 12))
            << family;
    }
}

TEST(EngineTiming, PruningHelpsLateInvolvementCircuits)
{
    // iqp and gs have large pruning potential.
    for (const auto &family : {"iqp", "gs"}) {
        const VTime pruned = timeOf("pruning", family, 12);
        const VTime overlap = timeOf("overlap", family, 12);
        EXPECT_LT(pruned, 0.9 * overlap) << family;
    }
}

TEST(EngineTiming, PruningNeverHurts)
{
    for (const auto &family : {"qaoa", "qf", "hchain", "rqc"}) {
        EXPECT_LE(timeOf("pruning", family, 12),
                  timeOf("overlap", family, 12) * 1.02)
            << family;
    }
}

TEST(EngineTiming, ReorderHelpsQftAndGs)
{
    for (const auto &family : {"qft", "gs"}) {
        EXPECT_LT(timeOf("reorder", family, 12),
                  timeOf("pruning", family, 12) * 1.001)
            << family;
    }
}

TEST(EngineTiming, QgpuBeatsBaselineAlmostEverywhere)
{
    // qaoa is the documented deviation: its dense random-angle state
    // does not GFC-compress here, so the paper's compression win for
    // qaoa does not materialize; Q-GPU stays within ~1.4x of the
    // baseline there instead of beating it (EXPERIMENTS.md).
    for (const auto &family :
         {"hchain", "rqc", "gs", "hlf", "qft", "iqp", "qf", "bv"}) {
        EXPECT_LT(timeOf("qgpu", family, 12),
                  timeOf("baseline", family, 12))
            << family;
    }
    EXPECT_LT(timeOf("qgpu", "qaoa", 12),
              1.4 * timeOf("baseline", "qaoa", 12));
}

TEST(EngineTiming, CompressionHelpsCompressibleFamilies)
{
    for (const auto &family : {"gs", "qft", "bv", "hlf"}) {
        EXPECT_LT(timeOf("qgpu", family, 12),
                  0.9 * timeOf("reorder", family, 12))
            << family;
    }
}

TEST(EngineTiming, CompressionNeverHurts)
{
    // The adaptive raw fallback bounds the loss on incompressible
    // circuits to the sampling overhead.
    for (const auto &family : {"qaoa", "iqp", "hchain", "rqc"}) {
        EXPECT_LE(timeOf("qgpu", family, 12),
                  1.03 * timeOf("reorder", family, 12))
            << family;
    }
}

TEST(EngineTiming, NaiveIsNotFasterThanBaseline)
{
    // Fig. 3: dynamic allocation alone does not help; data movement
    // dominates.
    for (const auto &family : {"qft", "qaoa"}) {
        EXPECT_GE(timeOf("naive", family, 12) * 1.05,
                  timeOf("baseline", family, 12))
            << family;
    }
}

TEST(EngineTiming, BaselineIsCpuDominated)
{
    // Fig. 2: with the device holding 1/16 of the state, most of the
    // baseline's time is host compute.
    Machine m = harness::benchMachine(12);
    ExecOptions o;
    o.keepState = false;
    const RunResult r = harness::runOn(
        "baseline", m, circuits::makeBenchmark("qft", 12), o);
    const double host = r.stats.get(statkeys::hostCompute);
    EXPECT_GT(host / r.totalTime, 0.5);
}

TEST(EngineTiming, NaiveIsTransferDominated)
{
    // Fig. 4: in the naive version data movement dominates.
    Machine m = harness::benchMachine(12);
    ExecOptions o;
    o.keepState = false;
    const RunResult r = harness::runOn(
        "naive", m, circuits::makeBenchmark("qft", 12), o);
    const double transfer = r.stats.get(statkeys::transfer);
    EXPECT_GT(transfer / r.totalTime, 0.5);
    EXPECT_LT(r.stats.get(statkeys::deviceCompute) / r.totalTime,
              0.4);
}

TEST(EngineTiming, PruningMovesFewerBytes)
{
    Machine m1 = harness::benchMachine(12);
    Machine m2 = harness::benchMachine(12);
    ExecOptions o;
    o.keepState = false;
    const Circuit c = circuits::makeBenchmark("iqp", 12);
    const RunResult pruned = harness::runOn("pruning", m1, c, o);
    const RunResult overlap = harness::runOn("overlap", m2, c, o);
    EXPECT_LT(pruned.stats.get(statkeys::bytesH2d),
              overlap.stats.get(statkeys::bytesH2d));
    EXPECT_GT(pruned.stats.get(statkeys::chunksPruned), 0.0);
}

TEST(EngineTiming, CompressionMovesFewerBytesOnGs)
{
    Machine m1 = harness::benchMachine(12);
    Machine m2 = harness::benchMachine(12);
    ExecOptions o;
    o.keepState = false;
    o.codecSampleChunks = 0;
    const Circuit c = circuits::makeBenchmark("gs", 12);
    const RunResult qgpu = harness::runOn("qgpu", m1, c, o);
    const RunResult reorder = harness::runOn("reorder", m2, c, o);
    EXPECT_LT(qgpu.stats.get(statkeys::bytesD2h),
              reorder.stats.get(statkeys::bytesD2h));
    // Mean measured ratio must exceed 1 for gs.
    EXPECT_GT(qgpu.stats.get(statkeys::compressIn),
              qgpu.stats.get(statkeys::compressOut));
}

TEST(EngineTiming, CompressionOverheadAccounted)
{
    Machine m = harness::benchMachine(12);
    ExecOptions o;
    o.keepState = false;
    const RunResult r = harness::runOn(
        "qgpu", m, circuits::makeBenchmark("gs", 12), o);
    EXPECT_GT(r.stats.get(statkeys::compressTime), 0.0);
    EXPECT_GT(r.stats.get(statkeys::decompressTime), 0.0);
    // Bounded relative to the total. (The fraction runs higher than
    // the paper's ~3% average because compression shrinks gs's total
    // so much that the codec becomes a visible share of what's left.)
    EXPECT_LT(r.stats.get(statkeys::compressTime) / r.totalTime,
              0.4);
}

TEST(EngineTiming, AdaptiveBypassSkipsCodecOnIncompressibleData)
{
    // On qaoa the escape hatch ships almost everything raw (only the
    // sparse early-circuit chunks compress): codec time stays a tiny
    // fraction of the run instead of the ~30% a forced-compression
    // engine would pay.
    Machine m = harness::benchMachine(12);
    ExecOptions o;
    o.keepState = false;
    const RunResult r = harness::runOn(
        "qgpu", m, circuits::makeBenchmark("qaoa", 12), o);
    EXPECT_LT(r.stats.get(statkeys::decompressTime) / r.totalTime,
              0.02);
    EXPECT_LT(r.stats.get(statkeys::compressTime) / r.totalTime,
              0.05);
}

TEST(EngineTiming, ResidentSmallCircuitIsFast)
{
    // Below the device capacity the GPU path must beat the CPU path
    // decisively (the paper's <30-qubit observation).
    const int n = 10;
    Machine m1 = machines::makeScaled(n, machines::p100(), 2.0);
    Machine m2 = machines::makeScaled(n, machines::p100(), 2.0);
    const Circuit c = circuits::makeBenchmark("qft", n);
    ExecOptions o;
    o.keepState = false;
    const VTime gpu = harness::runOn("qgpu", m1, c, o).totalTime;
    const VTime cpu = harness::runOn("cpu", m2, c, o).totalTime;
    EXPECT_LT(gpu, cpu);
}

TEST(EngineTiming, TimelineRecordsSpans)
{
    Machine m = harness::benchMachine(10);
    ExecOptions o;
    o.recordTimeline = true;
    o.keepState = false;
    const RunResult r = harness::runOn(
        "qgpu", m, circuits::makeBenchmark("gs", 10), o);
    EXPECT_FALSE(r.timeline.spans().empty());
    EXPECT_NE(r.timeline.render(60).find("p100:0.h2d"),
              std::string::npos);
}

TEST(EngineTiming, StatsContainCanonicalKeys)
{
    Machine m = harness::benchMachine(10);
    ExecOptions o;
    o.keepState = false;
    const RunResult r = harness::runOn(
        "qgpu", m, circuits::makeBenchmark("bv", 10), o);
    for (const char *key :
         {statkeys::totalTime, statkeys::h2d, statkeys::d2h,
          statkeys::transfer, statkeys::deviceCompute,
          statkeys::flopsDevice}) {
        EXPECT_TRUE(r.stats.has(key)) << key;
    }
}

} // namespace
} // namespace qgpu
