/**
 * @file
 * GFC codec tests: losslessness on every kind of payload (property
 * sweeps over sizes and configurations), compression behaviour on
 * smooth vs random data, and the size fast path.
 */

#include <bit>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "circuits/circuits.hh"
#include "common/rng.hh"
#include "compress/gfc.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{
namespace
{

void
roundTrip(const GfcCodec &codec, const std::vector<double> &data)
{
    const CompressedBlock block =
        codec.compress(data.data(), data.size());
    ASSERT_EQ(block.numDoubles, data.size());
    std::vector<double> out(data.size(), -1.0);
    codec.decompress(block, out.data());
    for (std::size_t i = 0; i < data.size(); ++i) {
        // Bit-exact comparison (lossless also for NaN payloads).
        EXPECT_EQ(std::bit_cast<std::uint64_t>(data[i]),
                  std::bit_cast<std::uint64_t>(out[i]))
            << "index " << i;
    }
}

TEST(Gfc, EmptyInput)
{
    GfcCodec codec;
    const CompressedBlock block = codec.compress(nullptr, 0);
    EXPECT_EQ(block.numDoubles, 0u);
    codec.decompress(block, nullptr);
}

TEST(Gfc, AllZeros)
{
    GfcCodec codec;
    const std::vector<double> zeros(1024, 0.0);
    const CompressedBlock block =
        codec.compress(zeros.data(), zeros.size());
    // Zero residuals: ~0.5 byte nibble + 1 payload byte per double.
    EXPECT_LT(block.compressedBytes(), zeros.size() * 2 + 64);
    EXPECT_GT(block.ratio(), 4.0);
    roundTrip(codec, zeros);
}

TEST(Gfc, SpecialValues)
{
    GfcCodec codec(4, 2);
    roundTrip(codec,
              {0.0, -0.0, 1.0, -1.0,
               std::numeric_limits<double>::infinity(),
               -std::numeric_limits<double>::infinity(),
               std::numeric_limits<double>::quiet_NaN(),
               std::numeric_limits<double>::signaling_NaN(),
               std::numeric_limits<double>::denorm_min(),
               -std::numeric_limits<double>::denorm_min(),
               std::numeric_limits<double>::max(),
               std::numeric_limits<double>::lowest(),
               std::numeric_limits<double>::epsilon()});
}

TEST(Gfc, RandomBitPatterns)
{
    GfcCodec codec;
    Rng rng(99);
    std::vector<double> data(777);
    for (auto &v : data)
        v = std::bit_cast<double>(rng.next());
    roundTrip(codec, data);
}

TEST(Gfc, SmoothDataCompressesWell)
{
    GfcCodec codec;
    std::vector<double> smooth(4096);
    for (std::size_t i = 0; i < smooth.size(); ++i)
        smooth[i] = 0.125; // identical values -> zero residuals
    // Residuals vanish after the first micro-chunk of each segment;
    // the per-segment restarts cap the ratio around 2.5 at this
    // segment count.
    const CompressedBlock block =
        codec.compress(smooth.data(), smooth.size());
    EXPECT_GT(block.ratio(), 2.0);
    roundTrip(codec, smooth);
    // Fewer segments amortize the restarts and compress better.
    GfcCodec coarse(32, 4);
    EXPECT_GT(coarse.compress(smooth.data(), smooth.size()).ratio(),
              block.ratio());
}

TEST(Gfc, RandomDataBarelyCompresses)
{
    GfcCodec codec;
    Rng rng(7);
    std::vector<double> noise(4096);
    for (auto &v : noise)
        v = rng.nextDouble() * 2.0 - 1.0;
    const CompressedBlock block =
        codec.compress(noise.data(), noise.size());
    EXPECT_LT(block.ratio(), 1.3);
    EXPECT_GT(block.ratio(), 0.8); // bounded expansion
    roundTrip(codec, noise);
}

TEST(Gfc, CompressedSizeMatchesStream)
{
    GfcCodec codec;
    Rng rng(13);
    std::vector<double> data(1000);
    for (auto &v : data)
        v = rng.nextBool(0.7) ? 0.25 : rng.nextDouble();
    const CompressedBlock block =
        codec.compress(data.data(), data.size());
    EXPECT_EQ(codec.compressedSize(data.data(), data.size()),
              block.compressedBytes());
}

TEST(Gfc, AmplitudeInterface)
{
    const StateVector s =
        simulateReference(circuits::makeBenchmark("qaoa", 10));
    GfcCodec codec;
    const CompressedBlock block =
        codec.compressAmps(s.amplitudes().data(), s.size());
    EXPECT_EQ(block.numDoubles, 2 * s.size());

    std::vector<Amp> out(s.size());
    codec.decompressAmps(block, out.data());
    for (Index i = 0; i < s.size(); ++i)
        EXPECT_EQ(s[i], out[i]);
}

TEST(Gfc, PaperCompressibilityContrast)
{
    // Fig. 10's observation, as it reproduces here: circuits with
    // structured amplitudes (gs: +/- one magnitude; bv: one-hot)
    // compress well, while iqp's dispersed amplitudes barely
    // compress. (Deviation from the paper: qaoa's dense random-angle
    // states do not GFC-compress in our reproduction; see
    // EXPERIMENTS.md.)
    GfcCodec codec(32, 1);
    auto payload_ratio = [&](const char *family) {
        const StateVector s =
            simulateReference(circuits::makeBenchmark(family, 12));
        return static_cast<double>(2 * s.size() * sizeof(double)) /
               static_cast<double>(codec.compressedPayloadSize(
                   reinterpret_cast<const double *>(
                       s.amplitudes().data()),
                   2 * s.size()));
    };
    const double iqp = payload_ratio("iqp");
    EXPECT_GT(payload_ratio("gs"), 1.5);
    EXPECT_GT(payload_ratio("bv"), 3.0);
    EXPECT_LT(iqp, 1.3);
    EXPECT_GT(payload_ratio("gs"), iqp);
    EXPECT_GT(payload_ratio("hlf"), iqp);
}

class GfcConfigSweep
    : public ::testing::TestWithParam<
          std::tuple<int, int, std::size_t>>
{
};

TEST_P(GfcConfigSweep, RoundTripAcrossConfigs)
{
    const auto &[warp, segments, count] = GetParam();
    GfcCodec codec(warp, segments);
    Rng rng(count * 31 + warp);
    std::vector<double> data(count);
    for (auto &v : data) {
        switch (rng.nextBelow(3)) {
          case 0: v = 0.0; break;
          case 1: v = 1.0 / 3.0; break;
          default: v = rng.nextDouble() - 0.5; break;
        }
    }
    roundTrip(codec, data);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GfcConfigSweep,
    ::testing::Combine(::testing::Values(1, 4, 32),
                       ::testing::Values(1, 3, 32),
                       ::testing::Values<std::size_t>(1, 31, 32, 33,
                                                      1000)));

TEST(GfcDeath, BadConfig)
{
    EXPECT_DEATH(GfcCodec(0, 4), "invalid GFC");
}

} // namespace
} // namespace qgpu
