/**
 * @file
 * MetricsRegistry tests: counter aggregation, histogram summaries,
 * exporter shape, thread safety, and the harness integration that
 * publishes per-run headline numbers into the global registry.
 */

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.hh"
#include "harness/experiment.hh"
#include "statevec/apply.hh"

namespace qgpu
{
namespace
{

TEST(Metrics, CountersAggregate)
{
    MetricsRegistry registry;
    EXPECT_DOUBLE_EQ(registry.counter("absent"), 0.0);
    registry.add("runs.total");
    registry.add("runs.total");
    registry.add("bytes", 100.0);
    registry.add("bytes", 28.0);
    EXPECT_DOUBLE_EQ(registry.counter("runs.total"), 2.0);
    EXPECT_DOUBLE_EQ(registry.counter("bytes"), 128.0);
    EXPECT_EQ(registry.counterNames().size(), 2u);
}

TEST(Metrics, HistogramSummary)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    h.observe(2.0);
    h.observe(-1.0);
    h.observe(5.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 6.0);
    EXPECT_DOUBLE_EQ(h.min(), -1.0);
    EXPECT_DOUBLE_EQ(h.max(), 5.0);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Metrics, HistogramMerge)
{
    Histogram a, b;
    a.observe(1.0);
    b.observe(3.0);
    b.observe(-2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), -2.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
    Histogram empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 3u);
}

TEST(Metrics, RegistryHistograms)
{
    MetricsRegistry registry;
    registry.observe("run.total_time", 1.5);
    registry.observe("run.total_time", 2.5);
    const Histogram h = registry.histogram("run.total_time");
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
    EXPECT_EQ(registry.histogram("absent").count(), 0u);
    EXPECT_EQ(registry.histogramNames(),
              std::vector<std::string>{"run.total_time"});
}

TEST(Metrics, ClearDropsEverything)
{
    MetricsRegistry registry;
    registry.add("c");
    registry.observe("h", 1.0);
    registry.clear();
    EXPECT_TRUE(registry.counterNames().empty());
    EXPECT_TRUE(registry.histogramNames().empty());
}

TEST(Metrics, JsonExportShape)
{
    MetricsRegistry registry;
    registry.add("runs.total", 3.0);
    registry.observe("run.total_time", 4.0);
    const std::string json = registry.toJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"runs.total\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"mean\": 4"), std::string::npos);
}

TEST(Metrics, CsvExportShape)
{
    MetricsRegistry registry;
    registry.add("runs.total", 2.0);
    registry.observe("run.total_time", 1.0);
    const std::string csv = registry.toCsv();
    EXPECT_EQ(csv.rfind("kind,name,count,sum,min,max,mean", 0), 0u);
    EXPECT_NE(csv.find("counter,runs.total"), std::string::npos);
    EXPECT_NE(csv.find("histogram,run.total_time,1,1"),
              std::string::npos);
}

TEST(Metrics, ConcurrentAddsAreExact)
{
    MetricsRegistry registry;
    constexpr int kThreads = 8, kAdds = 1000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&registry] {
            for (int i = 0; i < kAdds; ++i) {
                registry.add("hits");
                registry.observe("values", 1.0);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_DOUBLE_EQ(registry.counter("hits"), kThreads * kAdds);
    EXPECT_EQ(registry.histogram("values").count(),
              static_cast<std::uint64_t>(kThreads * kAdds));
}

TEST(Metrics, GlobalIsASingleton)
{
    EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

TEST(Metrics, SweepRecordsKernelCountersOncePerGate)
{
    // The sweep executor touches every chunk in its fan-out but must
    // record the kernel counters once per gate per sweep with the
    // full modeled totals - a per-chunk recording bug would inflate
    // invocations by the chunk count.
    auto &registry = MetricsRegistry::global();
    const double inv0 =
        registry.counter("kernel.dense1q.invocations");
    const double amps0 = registry.counter("kernel.dense1q.amps");

    const int n = 8, chunk_bits = 4; // 16 chunks
    const std::vector<Gate> gates = {Gate(GateKind::H, {0}),
                                     Gate(GateKind::H, {1})};
    ChunkedStateVector state(n, chunk_bits);
    applySweepChunked(state, gates, {});

    EXPECT_DOUBLE_EQ(
        registry.counter("kernel.dense1q.invocations") - inv0, 2.0);
    EXPECT_DOUBLE_EQ(registry.counter("kernel.dense1q.amps") - amps0,
                     2.0 * static_cast<double>(stateSize(n)));
}

TEST(Metrics, HarnessPublishesRunMetrics)
{
    auto &registry = MetricsRegistry::global();
    registry.clear();

    const Circuit c = circuits::makeBenchmark("bv", 8);
    Machine m = harness::benchMachine(8);
    ExecOptions o;
    o.keepState = false;
    const RunResult r = harness::runOn("qgpu", m, c, o);

    EXPECT_DOUBLE_EQ(registry.counter("runs.total"), 1.0);
    EXPECT_DOUBLE_EQ(registry.counter("runs.Q-GPU"), 1.0);
    const Histogram total = registry.histogram("run.total_time");
    ASSERT_EQ(total.count(), 1u);
    EXPECT_DOUBLE_EQ(total.sum(), r.totalTime);
    EXPECT_GT(registry.histogram("run.bytes_h2d").sum(), 0.0);
    registry.clear();
}

} // namespace
} // namespace qgpu
