/**
 * @file
 * Reordering tests: schedule validity, semantic preservation, and the
 * paper's Fig. 8 gs_5 walk-through (greedy delays involvement by two
 * steps, forward-looking by four).
 */

#include <gtest/gtest.h>

#include "circuits/circuits.hh"
#include "reorder/reorder.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{
namespace
{

/** The gs_5 circuit of Fig. 8: five H gates then a CZ chain. */
Circuit
gs5()
{
    return circuits::graphState(5);
}

TEST(Reorder, FactoryNames)
{
    EXPECT_EQ(makeReorderer(ReorderKind::None), nullptr);
    EXPECT_EQ(makeReorderer(ReorderKind::Greedy)->name(), "greedy");
    EXPECT_EQ(makeReorderer(ReorderKind::ForwardLooking)->name(),
              "forward-looking");
}

TEST(Reorder, SchedulesAreValid)
{
    const Circuit c = circuits::makeBenchmark("qft", 10);
    const DagCircuit dag(c);
    for (auto kind :
         {ReorderKind::Greedy, ReorderKind::ForwardLooking}) {
        const auto order = makeReorderer(kind)->schedule(dag);
        EXPECT_TRUE(dag.isValidSchedule(order))
            << reorderKindName(kind);
    }
}

TEST(Reorder, ForwardLookingDelaysGs5LikeFig8)
{
    // Original gs_5 involvement: 1,2,3,4,5,5,5,5,5 (all H first).
    // Forward-looking interleaves each CZ right after its second H,
    // the Fig. 8c behaviour: 1,2,2,3,3,4,4,5,5 on the path graph.
    const Circuit fl =
        reorderCircuit(gs5(), ReorderKind::ForwardLooking);
    const auto curve = fl.involvementCurve();
    const std::vector<int> want = {1, 2, 2, 3, 3, 4, 4, 5, 5};
    EXPECT_EQ(curve, want);

    // Area under the curve must beat the original's.
    const auto orig = gs5().involvementCurve();
    int fl_area = 0, orig_area = 0;
    for (std::size_t i = 0; i < curve.size(); ++i) {
        fl_area += curve[i];
        orig_area += orig[i];
    }
    EXPECT_LT(fl_area, orig_area);
}

TEST(Reorder, GreedyCanRegressOnGs)
{
    // The paper observes greedy is no better (and can be worse) than
    // the original order on gs; forward-looking must always be at
    // least as good as greedy there.
    const Circuit gs = circuits::graphState(22);
    const auto greedy_curve =
        reorderCircuit(gs, ReorderKind::Greedy).involvementCurve();
    const auto fl_curve =
        reorderCircuit(gs, ReorderKind::ForwardLooking)
            .involvementCurve();
    long greedy_area = 0, fl_area = 0;
    for (std::size_t i = 0; i < greedy_curve.size(); ++i) {
        greedy_area += greedy_curve[i];
        fl_area += fl_curve[i];
    }
    EXPECT_LE(fl_area, greedy_area);
}

TEST(Reorder, QaoaStaysEarlyInvolvedEvenAfterReorder)
{
    // qaoa's dependent gate structure caps what reordering can do:
    // even after forward-looking reordering, nearly all of the
    // circuit still executes with every qubit involved, so pruning
    // gains remain negligible (the paper's Fig. 9 observation).
    const Circuit c = circuits::makeBenchmark("qaoa", 14);
    const Circuit fl =
        reorderCircuit(c, ReorderKind::ForwardLooking);
    const double frac =
        static_cast<double>(fl.opsBeforeFullInvolvement()) /
        static_cast<double>(fl.numGates());
    EXPECT_LT(frac, 0.2);
}

TEST(Reorder, QftImprovesUnderBothHeuristics)
{
    const Circuit c = circuits::qft(22, 5);
    const auto orig = c.involvementCurve();
    for (auto kind :
         {ReorderKind::Greedy, ReorderKind::ForwardLooking}) {
        const auto curve =
            reorderCircuit(c, kind).involvementCurve();
        long orig_area = 0, area = 0;
        for (std::size_t i = 0; i < curve.size(); ++i) {
            orig_area += orig[i];
            area += curve[i];
        }
        EXPECT_LT(area, orig_area) << reorderKindName(kind);
    }
}

class SemanticsPreserved
    : public ::testing::TestWithParam<
          std::tuple<std::string, ReorderKind>>
{
};

TEST_P(SemanticsPreserved, FinalStateUnchanged)
{
    const auto &[family, kind] = GetParam();
    const Circuit c = circuits::makeBenchmark(family, 8);
    const Circuit r = reorderCircuit(c, kind);
    ASSERT_EQ(r.numGates(), c.numGates());
    EXPECT_LT(simulateReference(c).maxAbsDiff(simulateReference(r)),
              1e-10)
        << family << " under " << reorderKindName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndKinds, SemanticsPreserved,
    ::testing::Combine(
        ::testing::Values("hchain", "rqc", "qaoa", "gs", "hlf",
                          "qft", "iqp", "qf", "bv"),
        ::testing::Values(ReorderKind::Greedy,
                          ReorderKind::ForwardLooking)));

} // namespace
} // namespace qgpu
