/**
 * @file
 * Cross-version differential harness: before any PR churns the
 * engines' hot path, lock in that all six paper versions agree. For
 * every circuit family and a sweep of register sizes, each version
 * built by makeVersion must reproduce the Baseline engine's final
 * state to 1e-12 and report the same applied-gate count — pruning,
 * reordering, and compression are scheduling optimizations, never
 * semantic ones.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace qgpu
{
namespace
{

class VersionsDifferential
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(VersionsDifferential, AllVersionsMatchBaseline)
{
    const auto &[family, n] = GetParam();
    const Circuit circuit = circuits::makeBenchmark(family, n);

    ExecOptions o;
    o.targetChunks = 32;
    o.codecSampleChunks = 0; // measure every chunk: exact sizes

    // The reference run: Baseline on its own machine (engines share
    // a machine's resource clocks, so each version gets a fresh one).
    Machine base_machine = harness::benchMachine(n);
    const RunResult base =
        makeVersion(Version::Baseline, base_machine, o)->run(circuit);
    ASSERT_EQ(base.state.numQubits(), n);
    const double base_gates =
        base.stats.get(statkeys::gatesApplied);
    EXPECT_DOUBLE_EQ(base_gates,
                     static_cast<double>(circuit.numGates()));

    for (const Version version : allVersions()) {
        if (version == Version::Baseline)
            continue;
        Machine machine = harness::benchMachine(n);
        const RunResult r =
            makeVersion(version, machine, o)->run(circuit);
        EXPECT_LT(r.state.maxAbsDiff(base.state), 1e-12)
            << versionName(version) << " diverged on " << family
            << " at " << n << " qubits";
        // Pruned/compressed runs still apply every gate exactly once.
        EXPECT_DOUBLE_EQ(r.stats.get(statkeys::gatesApplied),
                         base_gates)
            << versionName(version) << " on " << family;
        EXPECT_GT(r.totalTime, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, VersionsDifferential,
    ::testing::Combine(
        ::testing::ValuesIn(circuits::benchmarkNames()),
        ::testing::Values(6, 8, 10)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               std::to_string(std::get<1>(info.param));
    });

TEST(VersionsDifferential, CoversEveryRegisteredFamily)
{
    // The parameter list above is generated from the registry, so a
    // newly added family is differential-tested automatically; this
    // guards the registry itself against silent shrinkage.
    EXPECT_EQ(circuits::benchmarkNames().size(), 10u);
}

} // namespace
} // namespace qgpu
