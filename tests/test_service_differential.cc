/**
 * @file
 * The service cache's correctness contract, end to end: a cache-hit
 * result is BIT-IDENTICAL (maxAbsDiff == 0, not epsilon-close) to
 * the state a fresh simulation of the same request would produce —
 * for every benchmark family and every paper engine version.
 *
 * Why this holds (qc/canonical.hh): hash-equal requests execute the
 * exact same canonical gate stream under the same result-affecting
 * options, and thread/device/storage scheduling cannot move a ULP.
 * The test drives the real JobService (so the canonical-execution
 * path is the one under test), then reruns the request's canonical
 * circuit directly through the harness on an identically configured
 * machine and compares states bitwise.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "qc/canonical.hh"
#include "service/scheduler.hh"

namespace qgpu
{
namespace service
{
namespace
{

class ServiceDifferential
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ServiceDifferential, CacheHitMatchesFreshSimulationBitwise)
{
    const std::string engine = GetParam();
    constexpr int kQubits = 8;

    ServiceConfig config;
    config.maxActiveJobs = 1;
    JobService svc(config);

    for (const auto &family : circuits::benchmarkNames()) {
        JobRequest request;
        request.circuit.family = family;
        request.circuit.qubits = kQubits;
        request.engine = engine;

        const JobResult result = svc.wait(svc.submit(request));
        ASSERT_EQ(result.status, JobStatus::Done)
            << engine << " on " << family;
        EXPECT_FALSE(result.cacheHit) << "first run must simulate";

        const auto cached = svc.cachedFor(request);
        ASSERT_NE(cached, nullptr) << engine << " on " << family;

        // Fresh simulation, identically configured: the service's
        // execution recipe is canonicalCircuit(request) on a
        // makeScaled machine with bench options + kept state.
        ExecOptions options = harness::benchOptions();
        options.keepState = true;
        options.faultSpec = "none";
        Machine machine = machines::makeScaled(
            kQubits, machines::p100(), config.deviceFraction,
            config.devices);
        const RunResult fresh = harness::runOn(
            engine, machine,
            canonicalCircuit(request.circuit.build()), options);
        ASSERT_TRUE(fresh.ok()) << engine << " on " << family;

        EXPECT_EQ(cached->state.maxAbsDiff(fresh.state), 0.0)
            << engine << " cached state diverged on " << family
            << ": a cache hit would not be bit-identical to a "
               "fresh simulation";
        EXPECT_EQ(cached->totalVTime, fresh.totalTime)
            << engine << " on " << family;

        // And the second submission is that hit.
        const JobResult second = svc.wait(svc.submit(request));
        EXPECT_EQ(second.status, JobStatus::Done);
        EXPECT_TRUE(second.cacheHit) << engine << " on " << family;
        EXPECT_EQ(second.totalVTime, fresh.totalTime);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, ServiceDifferential,
    ::testing::Values("baseline", "naive", "overlap", "pruning",
                      "reorder", "qgpu"),
    [](const auto &info) { return info.param; });

} // namespace
} // namespace service
} // namespace qgpu
