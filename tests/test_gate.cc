/**
 * @file
 * Tests for the gate library: every kind's matrix must be unitary,
 * diagonality flags must match the matrices, and the controlled-gate
 * index convention must hold.
 */

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "qc/gate.hh"

namespace qgpu
{
namespace
{

std::vector<Gate>
oneOfEachKind()
{
    return {
        Gate(GateKind::ID, {0}),
        Gate(GateKind::H, {0}),
        Gate(GateKind::X, {0}),
        Gate(GateKind::Y, {0}),
        Gate(GateKind::Z, {0}),
        Gate(GateKind::S, {0}),
        Gate(GateKind::Sdg, {0}),
        Gate(GateKind::T, {0}),
        Gate(GateKind::Tdg, {0}),
        Gate(GateKind::SX, {0}),
        Gate(GateKind::SY, {0}),
        Gate(GateKind::RX, {0}, {0.7}),
        Gate(GateKind::RY, {0}, {1.1}),
        Gate(GateKind::RZ, {0}, {2.3}),
        Gate(GateKind::P, {0}, {0.4}),
        Gate(GateKind::U, {0}, {0.3, 1.2, -0.8}),
        Gate(GateKind::CX, {0, 1}),
        Gate(GateKind::CY, {0, 1}),
        Gate(GateKind::CZ, {0, 1}),
        Gate(GateKind::CP, {0, 1}, {0.9}),
        Gate(GateKind::CRZ, {0, 1}, {0.6}),
        Gate(GateKind::RXX, {0, 1}, {0.8}),
        Gate(GateKind::RYY, {0, 1}, {1.3}),
        Gate(GateKind::RZZ, {0, 1}, {0.5}),
        Gate(GateKind::SWAP, {0, 1}),
        Gate(GateKind::CCX, {0, 1, 2}),
        Gate(GateKind::CCZ, {0, 1, 2}),
        Gate(GateKind::CSWAP, {0, 1, 2}),
    };
}

class EveryGateKind : public ::testing::TestWithParam<std::size_t>
{
  protected:
    Gate gate() const { return oneOfEachKind()[GetParam()]; }
};

TEST_P(EveryGateKind, MatrixIsUnitary)
{
    EXPECT_TRUE(gate().matrix().isUnitary())
        << gate().toString();
}

TEST_P(EveryGateKind, MatrixDimMatchesQubits)
{
    const Gate g = gate();
    EXPECT_EQ(g.matrix().dim(), 1 << g.numQubits());
}

TEST_P(EveryGateKind, DiagonalFlagMatchesMatrix)
{
    const Gate g = gate();
    EXPECT_EQ(g.isDiagonal(), g.matrix().isDiagonal())
        << g.toString();
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EveryGateKind,
                         ::testing::Range<std::size_t>(0, 28));

TEST(Gate, RzzEqualsCxRzCx)
{
    // The hchain ladder identity: rzz(t) == cx . rz(t) . cx up to
    // global phase; compare as 4x4 matrices with the phase divided
    // out.
    const double theta = 0.73;
    const GateMatrix cx = Gate(GateKind::CX, {0, 1}).matrix();
    // kron puts the left operand on the high index bit, and the CX
    // target is bit 1 (the high bit).
    const GateMatrix rz_high =
        Gate(GateKind::RZ, {0}, {theta}).matrix().kron(
            GateMatrix::identity(2));
    const GateMatrix composed = cx * rz_high * cx;
    const GateMatrix rzz =
        Gate(GateKind::RZZ, {0, 1}, {theta}).matrix();
    EXPECT_LT(composed.maxAbsDiff(rzz), 1e-14);
}

TEST(Gate, RxxEqualsHhRzzHh)
{
    // rxx(t) = (H(x)H) rzz(t) (H(x)H).
    const double theta = 1.1;
    const GateMatrix h = Gate(GateKind::H, {0}).matrix();
    const GateMatrix hh = h.kron(h);
    const GateMatrix rzz =
        Gate(GateKind::RZZ, {0, 1}, {theta}).matrix();
    const GateMatrix rxx =
        Gate(GateKind::RXX, {0, 1}, {theta}).matrix();
    EXPECT_LT((hh * rzz * hh).maxAbsDiff(rxx), 1e-14);
}

TEST(Gate, TwoQubitRotationsAtZeroAreIdentity)
{
    for (const auto kind :
         {GateKind::RXX, GateKind::RYY, GateKind::RZZ}) {
        const GateMatrix m = Gate(kind, {0, 1}, {0.0}).matrix();
        EXPECT_LT(m.maxAbsDiff(GateMatrix::identity(4)), 1e-15)
            << gateKindName(kind);
    }
}

TEST(Gate, HadamardValues)
{
    const GateMatrix h = Gate(GateKind::H, {3}).matrix();
    const double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(h.at(0, 0).real(), r, 1e-15);
    EXPECT_NEAR(h.at(1, 1).real(), -r, 1e-15);
}

TEST(Gate, SxSquaredIsX)
{
    const GateMatrix sx = Gate(GateKind::SX, {0}).matrix();
    const GateMatrix x = Gate(GateKind::X, {0}).matrix();
    EXPECT_LT((sx * sx).maxAbsDiff(x), 1e-14);
}

TEST(Gate, SySquaredIsY)
{
    const GateMatrix sy = Gate(GateKind::SY, {0}).matrix();
    const GateMatrix y = Gate(GateKind::Y, {0}).matrix();
    EXPECT_LT((sy * sy).maxAbsDiff(y), 1e-14);
}

TEST(Gate, TSquaredIsS)
{
    const GateMatrix t = Gate(GateKind::T, {0}).matrix();
    const GateMatrix s = Gate(GateKind::S, {0}).matrix();
    EXPECT_LT((t * t).maxAbsDiff(s), 1e-14);
}

TEST(Gate, CxConvention)
{
    // qubits = {control, target}; matrix bit 0 = control. So basis
    // |t c>: input c=1,t=0 (index 1) maps to c=1,t=1 (index 3).
    const GateMatrix cx = Gate(GateKind::CX, {0, 1}).matrix();
    EXPECT_EQ(cx.at(0, 0), (Amp{1, 0})); // |00> fixed
    EXPECT_EQ(cx.at(3, 1), (Amp{1, 0})); // |01> -> |11>
    EXPECT_EQ(cx.at(2, 2), (Amp{1, 0})); // |10> fixed (c=0)
    EXPECT_EQ(cx.at(1, 3), (Amp{1, 0})); // |11> -> |01>
}

TEST(Gate, SwapConvention)
{
    const GateMatrix sw = Gate(GateKind::SWAP, {0, 1}).matrix();
    EXPECT_EQ(sw.at(2, 1), (Amp{1, 0})); // |01> -> |10>
    EXPECT_EQ(sw.at(1, 2), (Amp{1, 0}));
}

TEST(Gate, CcxOnlyFlipsWhenBothControlsSet)
{
    const GateMatrix ccx = Gate(GateKind::CCX, {0, 1, 2}).matrix();
    // Controls are bits 0 and 1; target is bit 2.
    // Input 0b011 (both controls) -> 0b111.
    EXPECT_EQ(ccx.at(0b111, 0b011), (Amp{1, 0}));
    EXPECT_EQ(ccx.at(0b011, 0b111), (Amp{1, 0}));
    // Single control set: fixed point.
    EXPECT_EQ(ccx.at(0b001, 0b001), (Amp{1, 0}));
}

TEST(Gate, RzIsDiagonalPhases)
{
    const double theta = 0.37;
    const GateMatrix rz = Gate(GateKind::RZ, {0}, {theta}).matrix();
    EXPECT_NEAR(std::arg(rz.at(0, 0)), -theta / 2, 1e-15);
    EXPECT_NEAR(std::arg(rz.at(1, 1)), theta / 2, 1e-15);
}

TEST(Gate, CustomGate)
{
    const Gate x = Gate(GateKind::X, {2});
    const Gate custom =
        Gate::makeCustom({2}, x.matrix().data());
    EXPECT_LT(custom.matrix().maxAbsDiff(x.matrix()), 1e-16);
    EXPECT_EQ(custom.numQubits(), 1);
}

TEST(Gate, ToStringMentionsKindAndQubits)
{
    const Gate g = Gate(GateKind::CP, {1, 4}, {0.5});
    const std::string s = g.toString();
    EXPECT_NE(s.find("cp"), std::string::npos);
    EXPECT_NE(s.find("q1"), std::string::npos);
    EXPECT_NE(s.find("q4"), std::string::npos);
}

TEST(GateDeath, WrongQubitCount)
{
    EXPECT_DEATH(Gate(GateKind::CX, {0}), "expects");
}

TEST(GateDeath, WrongParamCount)
{
    EXPECT_DEATH(Gate(GateKind::RX, {0}), "params");
}

} // namespace
} // namespace qgpu
