/**
 * @file
 * The stochastic-differential suite locking down batched-shot
 * execution (engine/batched.hh):
 *
 *   (a) noiseless runBatched(N) is bit-identical, shot by shot, to N
 *       independent single runs sampled with the same derived seeds;
 *   (b) noisy shots are bit-identical across host thread counts,
 *       device counts, storage backends, and both batch modes for
 *       fixed seeds (the draw-path determinism contract);
 *   (c) every noisy shot equals an independently constructed
 *       expanded-circuit run at tolerance 0 (trajectories are exact
 *       gate insertions, not approximations);
 *   (d) Pauli-channel outcome frequencies converge to the analytic
 *       distribution (chi-squared over >= 10k shots).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/parallel.hh"
#include "engine/batched.hh"
#include "harness/experiment.hh"
#include "noise/model.hh"
#include "statevec/measure.hh"

namespace qgpu
{
namespace
{

constexpr const char *kMix =
    "pauli1:0.05,pauli2:0.04,damp:0.03,readout:0.02";

class BatchedDifferential : public ::testing::Test
{
  protected:
    void TearDown() override { setSimThreads(1); }
};

TEST_F(BatchedDifferential, NoiselessBatchMatchesSingleRuns)
{
    constexpr int kN = 6;
    constexpr std::uint64_t kShots = 32;
    const Circuit circuit = circuits::makeBenchmark("qft", kN);

    ExecOptions o;
    o.faultSpec = "none";
    o.keepState = true;
    Machine machine = harness::benchMachine(kN);
    const auto engine = harness::makeEngine("qgpu", machine, o);

    const BatchResult br = engine->runBatched(circuit, kShots);
    ASSERT_TRUE(br.ok());
    ASSERT_EQ(br.outcomes.size(), kShots);
    EXPECT_EQ(br.stats.get(statkeys::noiseEvents), 0.0);

    // The single-run side: one engine run (deterministic state),
    // then shot i sampled with Rng(splitSeed(base, i)) -- exactly
    // what N independent `run(); sampleCounts(state, 1, rng)` calls
    // would do.
    Machine ref_machine = harness::benchMachine(kN);
    const RunResult ref =
        harness::runOn("qgpu", ref_machine, circuit, o);
    ASSERT_TRUE(ref.ok());
    for (std::uint64_t s = 0; s < kShots; ++s) {
        Rng rng(splitSeed(o.shotSeed, s));
        const auto counts = sampleCounts(ref.state, 1, rng);
        ASSERT_EQ(counts.size(), 1u);
        EXPECT_EQ(br.outcomes[s], counts.begin()->first)
            << "shot " << s;
    }
}

TEST_F(BatchedDifferential,
       NoisyShotsStableAcrossThreadsDevicesStorageAndMode)
{
    constexpr int kN = 7;
    constexpr std::uint64_t kShots = 8;
    const Circuit circuit = circuits::makeBenchmark("random", kN, 5);

    const auto runMatrixPoint = [&](int threads, int devices,
                                    StorageKind storage,
                                    BatchMode mode) {
        setSimThreads(threads);
        ExecOptions o;
        o.targetChunks = 32;
        o.faultSpec = "none";
        o.noiseSpec = kMix;
        o.batchMode = mode;
        o.keepShotStates = true;
        o.storage = storage;
        Machine machine = harness::benchMachine(kN, devices);
        const auto engine = harness::makeEngine("qgpu", machine, o);
        BatchResult br = engine->runBatched(circuit, kShots);
        setSimThreads(1);
        return br;
    };

    const BatchResult ref = runMatrixPoint(
        1, 1, StorageKind::Raw, BatchMode::Shared);
    ASSERT_TRUE(ref.ok());
    ASSERT_EQ(ref.states.size(), kShots);
    EXPECT_GT(ref.stats.get(statkeys::noiseEvents), 0.0);

    for (const int threads : {1, 4}) {
        for (const int devices : {1, 2, 4}) {
            for (const StorageKind storage :
                 {StorageKind::Raw, StorageKind::Compressed}) {
                for (const BatchMode mode :
                     {BatchMode::Shared, BatchMode::PerShot}) {
                    const BatchResult br = runMatrixPoint(
                        threads, devices, storage, mode);
                    ASSERT_TRUE(br.ok());
                    ASSERT_EQ(br.outcomes.size(), kShots);
                    const std::string where =
                        std::to_string(threads) + " threads, " +
                        std::to_string(devices) + " devices, " +
                        storageKindName(storage) +
                        (mode == BatchMode::Shared ? ", shared"
                                                   : ", pershot");
                    for (std::uint64_t s = 0; s < kShots; ++s) {
                        EXPECT_EQ(br.outcomes[s], ref.outcomes[s])
                            << where << ", shot " << s;
                        EXPECT_EQ(br.states[s].maxAbsDiff(
                                      ref.states[s]),
                                  0.0)
                            << where << ", shot " << s;
                    }
                }
            }
        }
    }
}

TEST_F(BatchedDifferential, ShotsMatchIndependentlyExpandedCircuits)
{
    // "pruning" keeps reordering/fusion off, so the executed order
    // IS the circuit order and the test can rebuild each shot's
    // trajectory from scratch: resample the events with the same
    // derived seed, materialize them into an expanded circuit, and
    // run THAT through a fresh engine. Tolerance 0 -- trajectories
    // are exact gate insertions.
    constexpr int kN = 6;
    constexpr std::uint64_t kShots = 12;
    const Circuit circuit = circuits::makeBenchmark("random", kN, 9);

    ExecOptions o;
    o.targetChunks = 32;
    o.faultSpec = "none";
    o.noiseSpec = kMix;
    o.keepShotStates = true;
    Machine machine = harness::benchMachine(kN);
    const auto engine = harness::makeEngine("pruning", machine, o);
    const BatchResult br = engine->runBatched(circuit, kShots);
    ASSERT_TRUE(br.ok());
    ASSERT_EQ(br.states.size(), kShots);

    const noise::NoiseModel model = noise::NoiseModel::parse(kMix);
    ExecOptions to = o;
    to.noiseSpec = "";
    to.keepShotStates = false;
    to.keepState = true;
    for (std::uint64_t s = 0; s < kShots; ++s) {
        Rng rng(splitSeed(o.shotSeed, s));
        const auto events = model.sample(
            std::span<const Gate>(circuit.gates()), rng);
        const Circuit expanded = noise::expandCircuit(
            circuit, std::span<const noise::NoiseEvent>(events));

        Machine twin_machine = harness::benchMachine(kN);
        const RunResult twin = harness::runOn(
            "pruning", twin_machine, expanded, to);
        ASSERT_TRUE(twin.ok()) << "shot " << s;
        EXPECT_EQ(br.states[s].maxAbsDiff(twin.state), 0.0)
            << "shot " << s << " diverged from its expanded twin";
        EXPECT_LT(twin.state.maxAbsDiff(simulateReference(expanded)),
                  1e-12)
            << "shot " << s;

        // The outcome stream continues the same RNG: one outcome
        // draw over the twin state, then readout flips.
        const auto counts = sampleCounts(twin.state, 1, rng);
        ASSERT_EQ(counts.size(), 1u);
        Index outcome = counts.begin()->first;
        outcome ^= model.sampleReadoutFlips(kN, rng);
        EXPECT_EQ(br.outcomes[s], outcome) << "shot " << s;
    }
}

TEST_F(BatchedDifferential, ExplicitShotSeedsOverrideDerivation)
{
    constexpr int kN = 5;
    const Circuit circuit = circuits::makeBenchmark("random", kN, 2);
    ExecOptions o;
    o.faultSpec = "none";
    o.noiseSpec = "pauli1:0.2";
    Machine machine = harness::benchMachine(kN);
    const auto engine = harness::makeEngine("qgpu", machine, o);

    const std::vector<std::uint64_t> seeds = {11, 22, 33, 44};
    std::vector<std::uint64_t> reversed(seeds.rbegin(),
                                        seeds.rend());
    const BatchResult fwd = engine->runBatched(
        circuit, seeds.size(),
        std::span<const std::uint64_t>(seeds));
    const BatchResult rev = engine->runBatched(
        circuit, reversed.size(),
        std::span<const std::uint64_t>(reversed));
    ASSERT_TRUE(fwd.ok());
    ASSERT_TRUE(rev.ok());
    ASSERT_EQ(fwd.outcomes.size(), seeds.size());
    // Per-shot results are a pure function of the shot seed: the
    // reversed batch is the reversed outcome sequence (and the
    // aggregate counts are identical).
    for (std::size_t i = 0; i < seeds.size(); ++i)
        EXPECT_EQ(fwd.outcomes[i],
                  rev.outcomes[seeds.size() - 1 - i]);
    EXPECT_EQ(fwd.counts, rev.counts);
}

TEST_F(BatchedDifferential, PauliFrequenciesMatchAnalytic)
{
    // x(q) on each of 3 qubits under pauli1 px=py=pz=0.05: an X or Y
    // error after the gate flips that qubit's measured bit, Z does
    // not, so P(bit q = 0) = 0.1 independently per qubit. The final
    // state of every trajectory is a basis state, so the outcome
    // draw is deterministic and the frequencies are purely the
    // channel's -- a chi-squared fit over all 8 cells at 10k shots.
    constexpr int kN = 3;
    constexpr std::uint64_t kShots = 10000;
    Circuit circuit(kN, "flip3");
    circuit.x(0);
    circuit.x(1);
    circuit.x(2);

    ExecOptions o;
    o.faultSpec = "none";
    o.noiseSpec = "pauli1:0.05:0.05:0.05";
    Machine machine = harness::benchMachine(kN);
    const auto engine = harness::makeEngine("qgpu", machine, o);
    const BatchResult br = engine->runBatched(circuit, kShots);
    ASSERT_TRUE(br.ok());

    const double p_flip = 0.1; // px + py
    double chi2 = 0.0;
    for (Index cell = 0; cell < (Index{1} << kN); ++cell) {
        double p = 1.0;
        for (int q = 0; q < kN; ++q)
            p *= ((cell >> q) & 1) ? 1.0 - p_flip : p_flip;
        const double expected = p * static_cast<double>(kShots);
        const auto it = br.counts.find(cell);
        const double observed =
            it == br.counts.end()
                ? 0.0
                : static_cast<double>(it->second);
        chi2 += (observed - expected) * (observed - expected) /
                expected;
    }
    // 7 degrees of freedom; 24.32 is the 0.999 quantile. The seeds
    // are fixed, so this never flakes -- it fails only if the
    // channel's sampling distribution drifts.
    EXPECT_LT(chi2, 24.32);
    // And the marginals are near the analytic flip rate.
    for (int q = 0; q < kN; ++q) {
        std::uint64_t zeros = 0;
        for (const auto &[outcome, hits] : br.counts)
            if (((outcome >> q) & 1) == 0)
                zeros += hits;
        EXPECT_NEAR(static_cast<double>(zeros) /
                        static_cast<double>(kShots),
                    p_flip, 0.015)
            << "qubit " << q;
    }
}

} // namespace
} // namespace qgpu
