/**
 * @file
 * Involvement-mask tests, including the load-bearing exactness
 * property: during simulation of any benchmark, every amplitude whose
 * index sets an uninvolved qubit's bit is exactly zero.
 */

#include <gtest/gtest.h>

#include "circuits/circuits.hh"
#include "common/bits.hh"
#include "prune/involvement.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{
namespace
{

TEST(Involvement, StartsEmpty)
{
    InvolvementMask mask(8);
    EXPECT_EQ(mask.bits(), 0u);
    EXPECT_EQ(mask.count(), 0);
    EXPECT_FALSE(mask.allInvolved());
}

TEST(Involvement, PerOpMarksEveryNamedQubit)
{
    InvolvementMask mask(8);
    mask.involve(Gate(GateKind::CZ, {2, 5}));
    EXPECT_TRUE(mask.isInvolved(2));
    EXPECT_TRUE(mask.isInvolved(5));
    EXPECT_EQ(mask.count(), 2);
}

TEST(Involvement, NonDiagonalSkipsDiagonalGates)
{
    InvolvementMask mask(8, InvolvementPolicy::NonDiagonal);
    mask.involve(Gate(GateKind::CZ, {2, 5}));
    mask.involve(Gate(GateKind::T, {1}));
    mask.involve(Gate(GateKind::RZ, {0}, {0.5}));
    EXPECT_EQ(mask.count(), 0);
    mask.involve(Gate(GateKind::H, {3}));
    EXPECT_EQ(mask.count(), 1);
}

TEST(Involvement, NonDiagonalCxNeedsLiveControl)
{
    InvolvementMask mask(8, InvolvementPolicy::NonDiagonal);
    // Control 0 uninvolved: identity on the live subspace.
    mask.involve(Gate(GateKind::CX, {0, 1}));
    EXPECT_EQ(mask.count(), 0);
    // After H on 0 the same CX involves its target.
    mask.involve(Gate(GateKind::H, {0}));
    mask.involve(Gate(GateKind::CX, {0, 1}));
    EXPECT_TRUE(mask.isInvolved(1));
}

TEST(Involvement, ChunkLiveness)
{
    InvolvementMask mask(7);
    mask.involve(0);
    mask.involve(1);
    mask.involve(4);
    // chunk_bits = 4: chunk index covers qubits 4..6.
    EXPECT_TRUE(mask.chunkIsLive(0b000, 4));
    EXPECT_TRUE(mask.chunkIsLive(0b001, 4));  // qubit 4 involved
    EXPECT_FALSE(mask.chunkIsLive(0b010, 4)); // qubit 5 not
    EXPECT_FALSE(mask.chunkIsLive(0b011, 4));
    EXPECT_FALSE(mask.chunkIsLive(0b100, 4)); // qubit 6 not
}

TEST(Involvement, DynamicChunkBitsFollowsTrailingOnes)
{
    InvolvementMask mask(10);
    EXPECT_EQ(mask.dynamicChunkBits(0, 8), 0);
    mask.involve(0);
    mask.involve(1);
    EXPECT_EQ(mask.dynamicChunkBits(0, 8), 2); // paper's 00000011 case
    mask.involve(3); // gap at 2 stops the run
    EXPECT_EQ(mask.dynamicChunkBits(0, 8), 2);
    mask.involve(2);
    EXPECT_EQ(mask.dynamicChunkBits(0, 8), 4);
    EXPECT_EQ(mask.dynamicChunkBits(5, 8), 5); // clamped up
    EXPECT_EQ(mask.dynamicChunkBits(0, 3), 3); // clamped down
}

class ExactnessProperty
    : public ::testing::TestWithParam<
          std::tuple<std::string, InvolvementPolicy>>
{
};

TEST_P(ExactnessProperty, UninvolvedBitsImplyZeroAmplitudes)
{
    // The invariant that licenses pruning: at every point in the
    // simulation, if qubit k is uninvolved then every amplitude with
    // bit k set is exactly zero.
    const auto &[family, policy] = GetParam();
    const int n = 8;
    const Circuit c = circuits::makeBenchmark(family, n);

    StateVector state(n);
    InvolvementMask mask(n, policy);
    for (const Gate &g : c.gates()) {
        state.apply(g);
        mask.involve(g);
        for (Index i = 0; i < state.size(); ++i) {
            if ((i & ~mask.bits()) != 0) {
                ASSERT_EQ(state[i], (Amp{0, 0}))
                    << family << " index " << i << " mask "
                    << mask.bits();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndPolicies, ExactnessProperty,
    ::testing::Combine(
        ::testing::Values("hchain", "rqc", "qaoa", "gs", "hlf",
                          "qft", "iqp", "qf", "bv"),
        ::testing::Values(InvolvementPolicy::PerOp,
                          InvolvementPolicy::NonDiagonal)));

class NonDiagonalSubset : public ::testing::TestWithParam<std::string>
{
};

TEST_P(NonDiagonalSubset, NeverInvolvesMoreThanPerOp)
{
    const Circuit c = circuits::makeBenchmark(GetParam(), 12);
    InvolvementMask per_op(12, InvolvementPolicy::PerOp);
    InvolvementMask sharp(12, InvolvementPolicy::NonDiagonal);
    for (const Gate &g : c.gates()) {
        per_op.involve(g);
        sharp.involve(g);
        EXPECT_EQ(sharp.bits() & ~per_op.bits(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, NonDiagonalSubset,
    ::testing::Values("hchain", "rqc", "qaoa", "gs", "hlf", "qft",
                      "iqp", "qf", "bv"));

TEST(Involvement, NonDiagonalIsStrictlySharperOnDiagonalPrefix)
{
    // A circuit that phases qubits before ever rotating them: the
    // paper's rule involves them immediately, the sharper rule only
    // at the Hadamards.
    Circuit c(4);
    c.t(0).cz(0, 1).cp(0.3, 1, 2).h(0).cx(0, 3);
    InvolvementMask per_op(4, InvolvementPolicy::PerOp);
    InvolvementMask sharp(4, InvolvementPolicy::NonDiagonal);
    bool strictly_sharper = false;
    for (const Gate &g : c.gates()) {
        per_op.involve(g);
        sharp.involve(g);
        EXPECT_EQ(sharp.bits() & ~per_op.bits(), 0u);
        strictly_sharper |= sharp.count() < per_op.count();
    }
    EXPECT_TRUE(strictly_sharper);
    EXPECT_EQ(sharp.count(), 2);  // only qubits 0 and 3
    EXPECT_EQ(per_op.count(), 4);
}

} // namespace
} // namespace qgpu
