/**
 * @file
 * Tests for the experiment harness used by the bench binaries.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace qgpu
{
namespace
{

TEST(Harness, MakeEngineKnowsAllNames)
{
    Machine m = harness::benchMachine(8);
    for (const char *name :
         {"baseline", "naive", "overlap", "pruning", "reorder",
          "qgpu", "cpu", "qsim", "qdk"}) {
        EXPECT_NE(harness::makeEngine(name, m), nullptr) << name;
    }
}

TEST(HarnessDeath, UnknownEngine)
{
    Machine m = harness::benchMachine(8);
    EXPECT_DEATH((void)harness::makeEngine("gpu9000", m),
                 "unknown engine");
}

TEST(Harness, BenchMachineScaling)
{
    Machine m = harness::benchMachine(20);
    EXPECT_EQ(m.device(0).spec().memBytes, stateBytes(20) / 16);
}

TEST(Harness, BenchOptionsLightweight)
{
    const ExecOptions o = harness::benchOptions();
    EXPECT_FALSE(o.keepState);
    EXPECT_GT(o.codecSampleChunks, 0);
}

TEST(Harness, CpuEnginesIgnoreDevices)
{
    Machine m = harness::benchMachine(9);
    const Circuit c = circuits::makeBenchmark("bv", 9);
    const RunResult r = harness::runOn("cpu", m, c);
    EXPECT_DOUBLE_EQ(r.stats.get(statkeys::bytesH2d), 0.0);
    EXPECT_GT(r.stats.get(statkeys::hostCompute), 0.0);
}

TEST(Harness, QsimFusesGates)
{
    Machine m = harness::benchMachine(9);
    const Circuit c = circuits::makeBenchmark("qft", 9);
    const RunResult r = harness::runOn("qsim", m, c);
    EXPECT_LT(r.stats.get("gates.fused"),
              r.stats.get("gates.original"));
}

TEST(Harness, ComparatorOrdering)
{
    // Fig. 16 shape: qsim-like is faster than Aer CPU; QDK is far
    // slower than both.
    const int n = 12;
    const Circuit c = circuits::makeBenchmark("qft", n);
    ExecOptions o;
    o.keepState = false;
    Machine m1 = harness::benchMachine(n);
    Machine m2 = harness::benchMachine(n);
    Machine m3 = harness::benchMachine(n);
    const VTime cpu = harness::runOn("cpu", m1, c, o).totalTime;
    const VTime qsim = harness::runOn("qsim", m2, c, o).totalTime;
    const VTime qdk = harness::runOn("qdk", m3, c, o).totalTime;
    EXPECT_LT(qsim, cpu);
    EXPECT_GT(qdk, 1.7 * cpu);
}

} // namespace
} // namespace qgpu
