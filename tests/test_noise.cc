/**
 * @file
 * The pluggable noise layer (src/noise/): spec-string and JSON
 * parsing, the amplitude-damping Pauli twirl, the touchable-bits
 * contract feeding the batched planner's union involvement mask,
 * draw-path determinism, trajectory materialization (expandCircuit),
 * and the noise x pruning regression: a sampled error on a qubit the
 * ideal circuit NEVER touches must still flip measurement outcomes
 * under every pruning mode and both batch modes.
 */

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "engine/batched.hh"
#include "harness/experiment.hh"
#include "noise/model.hh"

namespace qgpu
{
namespace
{

using noise::NoiseModel;
using noise::PauliProbs;

std::vector<noise::NoiseEvent>
sampleOnce(const NoiseModel &model, const Circuit &circuit,
           std::uint64_t seed)
{
    Rng rng(seed);
    return model.sample(std::span<const Gate>(circuit.gates()), rng);
}

TEST(NoiseSpec, EmptyAndNoneAreDisarmed)
{
    EXPECT_FALSE(NoiseModel::parse("").armed());
    EXPECT_FALSE(NoiseModel::resolve("").armed());
    EXPECT_FALSE(NoiseModel::resolve("none").armed());
}

TEST(NoiseSpec, SpecStringArmsTheNamedChannels)
{
    const NoiseModel m =
        NoiseModel::parse("pauli1:0.1,pauli2:0.05,readout:0.02");
    EXPECT_TRUE(m.gateNoiseArmed());
    EXPECT_TRUE(m.readoutArmed());
    EXPECT_EQ(m.spec(), "pauli1:0.1,pauli2:0.05,readout:0.02");

    const NoiseModel readout_only = NoiseModel::parse("readout:0.5");
    EXPECT_FALSE(readout_only.gateNoiseArmed());
    EXPECT_TRUE(readout_only.readoutArmed());
    EXPECT_TRUE(readout_only.armed());
}

TEST(NoiseSpec, JsonAndSpecStringSampleIdentically)
{
    // The same physical model through both front ends must produce
    // the same trajectories: equality of every sampled event for a
    // shared seed is the strongest observable equivalence.
    const NoiseModel a = NoiseModel::parse(
        "pauli1:0.2,pauli1@1:0.3:0.1:0,damp:0.1,readout:0.05,"
        "idle@2:0.3");
    const NoiseModel b = NoiseModel::parse(
        "{\"pauli1\": {\"default\": 0.2, \"1\": [0.3, 0.1, 0]}, "
        "\"damp\": 0.1, \"readout\": 0.05, \"idle\": {\"2\": 0.3}}");
    const Circuit circuit = circuits::makeBenchmark("random", 4, 11);
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const auto ea = sampleOnce(a, circuit, seed);
        const auto eb = sampleOnce(b, circuit, seed);
        ASSERT_EQ(ea.size(), eb.size()) << "seed " << seed;
        for (std::size_t i = 0; i < ea.size(); ++i) {
            EXPECT_EQ(ea[i].gateIndex, eb[i].gateIndex);
            EXPECT_EQ(ea[i].gate.kind, eb[i].gate.kind);
            EXPECT_EQ(ea[i].gate.qubits, eb[i].gate.qubits);
        }
        Rng ra(seed), rb(seed);
        EXPECT_EQ(a.sampleReadoutFlips(4, ra),
                  b.sampleReadoutFlips(4, rb));
    }
}

TEST(NoiseSpec, MalformedSpecsDie)
{
    EXPECT_DEATH(NoiseModel::parse("pauli1"), "");
    EXPECT_DEATH(NoiseModel::parse("bogus:0.1"), "");
    EXPECT_DEATH(NoiseModel::parse("idle:0.1"), ""); // @q required
    EXPECT_DEATH(NoiseModel::parse("pauli1:1.5"), "");
    EXPECT_DEATH(NoiseModel::parse("{\"pauli1\": "), ""); // bad JSON
}

TEST(NoiseTwirl, DampingMatchesTheAnalyticTwirl)
{
    // Pauli twirl of amplitude damping gamma: px = py = gamma/4,
    // pz = (1 - gamma/2 - sqrt(1-gamma)) / 2 (the diagonal PTM
    // (1, s, s, 1-gamma) with s = sqrt(1-gamma), averaged over Pauli
    // conjugations). The twirl is what keeps the channel
    // mixed-unitary, so trajectories stay exact gate insertions.
    for (const double gamma : {0.0, 0.1, 0.5, 1.0}) {
        const PauliProbs p = noise::twirledDamping(gamma);
        const double s = std::sqrt(1.0 - gamma);
        EXPECT_DOUBLE_EQ(p.px, gamma / 4.0);
        EXPECT_DOUBLE_EQ(p.py, gamma / 4.0);
        EXPECT_NEAR(p.pz, (1.0 - gamma / 2.0 - s) / 2.0, 1e-15);
        EXPECT_GE(p.pz, 0.0);
        EXPECT_LE(p.total(), 1.0);
    }
    EXPECT_FALSE(noise::twirledDamping(0.0).enabled());
}

TEST(NoiseModel, TouchableBitsTracksNonDiagonalErrorsOnly)
{
    const Gate h0(GateKind::H, {0});
    const Gate h2(GateKind::H, {2});
    const Gate cx(GateKind::CX, {1, 3});

    NoiseModel depol;
    depol.pauli1(PauliProbs::depolarizing(0.1));
    EXPECT_EQ(depol.touchableBits(h0), 1ull << 0);
    EXPECT_EQ(depol.touchableBits(h2), 1ull << 2);
    EXPECT_EQ(depol.touchableBits(cx), 0ull); // 1q channel only

    // Pure-Z mixtures are diagonal: they can never move weight out
    // of the pruned subspace, so they must NOT arm the mask.
    NoiseModel dephase;
    dephase.pauli1(PauliProbs{0.0, 0.0, 0.3});
    EXPECT_EQ(dephase.touchableBits(h0), 0ull);

    NoiseModel two;
    two.pauli2(0.1);
    EXPECT_EQ(two.touchableBits(h0), 0ull);
    EXPECT_EQ(two.touchableBits(cx), (1ull << 1) | (1ull << 3));

    NoiseModel damp;
    damp.dampingOn(3, 0.2);
    EXPECT_EQ(damp.touchableBits(cx), 1ull << 3);
    EXPECT_EQ(damp.touchableBits(h0), 0ull);

    // Idle errors fire after EVERY gate on their configured qubits.
    NoiseModel idle;
    idle.idle(5, PauliProbs::depolarizing(0.3));
    EXPECT_EQ(idle.touchableBits(h0), 1ull << 5);
    EXPECT_EQ(idle.touchableBits(cx), 1ull << 5);

    // Readout is post-measurement: never part of gate arming.
    NoiseModel ro;
    ro.readout(0.5);
    EXPECT_EQ(ro.touchableBits(h0), 0ull);
}

TEST(NoiseModel, SamplingIsDeterministicAndOrdered)
{
    const NoiseModel m = NoiseModel::parse(
        "pauli1:0.3,pauli2:0.3,damp:0.2,idle@3:0.4");
    const Circuit circuit = circuits::makeBenchmark("random", 4, 3);
    const auto a = sampleOnce(m, circuit, 99);
    const auto b = sampleOnce(m, circuit, 99);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].gateIndex, b[i].gateIndex);
        EXPECT_EQ(a[i].gate.kind, b[i].gate.kind);
        EXPECT_EQ(a[i].gate.qubits, b[i].gate.qubits);
    }
    // Events come back sorted by attachment gate.
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_GE(a[i].gateIndex, a[i - 1].gateIndex);
    // Different seeds must eventually differ.
    const auto c = sampleOnce(m, circuit, 100);
    bool same = a.size() == c.size();
    for (std::size_t i = 0; same && i < a.size(); ++i)
        same = a[i].gateIndex == c[i].gateIndex &&
               a[i].gate.kind == c[i].gate.kind;
    EXPECT_FALSE(same);
}

TEST(NoiseModel, ExpandCircuitInterleavesEventsAfterTheirGate)
{
    Circuit circuit(3, "toy");
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.h(2);

    std::vector<noise::NoiseEvent> events;
    events.push_back({0, noise::pauliGate(1, 0)}); // X0 after gate 0
    events.push_back({1, noise::pauliGate(3, 1)}); // Z1 after gate 1
    events.push_back({1, noise::pauliGate(2, 0)}); // then Y0
    const Circuit expanded = noise::expandCircuit(
        circuit, std::span<const noise::NoiseEvent>(events));

    ASSERT_EQ(expanded.numGates(), 6u);
    EXPECT_EQ(expanded.gates()[0].kind, GateKind::H);
    EXPECT_EQ(expanded.gates()[1].kind, GateKind::X);
    EXPECT_EQ(expanded.gates()[2].kind, GateKind::CX);
    EXPECT_EQ(expanded.gates()[3].kind, GateKind::Z);
    EXPECT_EQ(expanded.gates()[4].kind, GateKind::Y);
    EXPECT_EQ(expanded.gates()[5].kind, GateKind::H);
    EXPECT_EQ(expanded.numQubits(), 3);

    EXPECT_EQ(noise::expandCircuit(circuit, {}).numGates(), 3u);
}

/**
 * The noise x pruning regression (the tentpole's core correctness
 * problem). Circuit: a single X on qubit 0 of a 6-qubit register;
 * qubit 5 is never touched by any ideal gate, so every pruning mode
 * keeps the involvement mask clear of it and skips the chunks where
 * bit 5 is set. The noise model fires an X on qubit 5 after every
 * gate with probability 1 (idle@5:1:0:0). A pruner that ignores the
 * noise would apply that X into chunks it still considers dead --
 * and the sampled error would silently vanish from the outcome.
 * Every shot must measure bit 5 set, under all three pruning modes
 * and both batch modes.
 */
struct PruneMode
{
    const char *name;
    bool dynamicChunks;
    InvolvementPolicy involvement;
};

constexpr PruneMode kModes[] = {
    {"dynamic_perop", true, InvolvementPolicy::PerOp},
    {"static_perop", false, InvolvementPolicy::PerOp},
    {"dynamic_nondiag", true, InvolvementPolicy::NonDiagonal},
};

TEST(NoisePruning, ErrorOnNeverTouchedQubitFlipsOutcomes)
{
    constexpr int kN = 6;
    Circuit circuit(kN, "lonely_x");
    circuit.x(0);

    for (const PruneMode &mode : kModes) {
        for (const BatchMode batch :
             {BatchMode::Shared, BatchMode::PerShot}) {
            ExecOptions o;
            o.targetChunks = 32;
            o.prune = true;
            o.dynamicChunks = mode.dynamicChunks;
            o.involvement = mode.involvement;
            o.faultSpec = "none";
            o.noiseSpec = "idle@5:1:0:0";
            o.batchMode = batch;
            Machine machine = harness::benchMachine(kN);
            const auto engine =
                harness::makeEngine("pruning", machine, o);
            const BatchResult br = engine->runBatched(circuit, 4);
            ASSERT_TRUE(br.ok()) << mode.name;
            ASSERT_EQ(br.outcomes.size(), 4u) << mode.name;
            for (const Index outcome : br.outcomes)
                EXPECT_EQ(outcome, (Index{1} << 5) | 1)
                    << mode.name << ", batch mode "
                    << (batch == BatchMode::Shared ? "shared"
                                                  : "pershot");
        }
    }
}

/** Same shape through the full Q-GPU version (reorder + fusion +
 *  compression riding on top of pruning). */
TEST(NoisePruning, NeverTouchedQubitSurvivesTheFullPipeline)
{
    // Three gates: the always-firing idle X lands three times on
    // qubit 5 (an even count would cancel, X.X = I).
    constexpr int kN = 6;
    Circuit circuit(kN, "lonely_h");
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.h(1);

    ExecOptions o;
    o.targetChunks = 32;
    o.faultSpec = "none";
    o.noiseSpec = "idle@5:1:0:0";
    Machine machine = harness::benchMachine(kN);
    const auto engine = harness::makeEngine("qgpu", machine, o);
    const BatchResult br = engine->runBatched(circuit, 8);
    ASSERT_TRUE(br.ok());
    for (const Index outcome : br.outcomes)
        EXPECT_TRUE((outcome >> 5) & 1)
            << "sampled X on the untouched qubit was pruned away";
    EXPECT_GT(br.stats.get(statkeys::noiseEvents), 0.0);
}

TEST(NoiseModel, BatchCountersAreReported)
{
    constexpr int kN = 6;
    const Circuit circuit = circuits::makeBenchmark("qft", kN);
    ExecOptions o;
    o.faultSpec = "none";
    o.noiseSpec = "pauli1:0.2,readout:0.5";
    Machine machine = harness::benchMachine(kN);
    const auto engine = harness::makeEngine("qgpu", machine, o);
    const BatchResult br = engine->runBatched(circuit, 16);
    ASSERT_TRUE(br.ok());
    EXPECT_EQ(br.stats.get(statkeys::shotsTotal), 16.0);
    EXPECT_EQ(br.stats.get(statkeys::shotsPlans), 1.0);
    EXPECT_GT(br.stats.get(statkeys::shotsPlanSweeps), 0.0);
    EXPECT_GT(br.stats.get(statkeys::shotsSweepReplays), 0.0);
    EXPECT_GT(br.stats.get(statkeys::noiseEvents), 0.0);
    EXPECT_GT(br.stats.get(statkeys::noiseReadoutFlips), 0.0);
    std::uint64_t total = 0;
    for (const auto &[outcome, hits] : br.counts)
        total += hits;
    EXPECT_EQ(total, 16u);
    EXPECT_EQ(br.outcomes.size(), 16u);
}

} // namespace
} // namespace qgpu
