/**
 * @file
 * Tests for the gate-dependency DAG that reordering traverses.
 */

#include <gtest/gtest.h>

#include "circuits/circuits.hh"
#include "qc/dag.hh"

namespace qgpu
{
namespace
{

Circuit
diamond()
{
    // g0: h q0; g1: h q1; g2: cx q0,q1; g3: h q0; g4: h q1.
    Circuit c(2);
    c.h(0).h(1).cx(0, 1).h(0).h(1);
    return c;
}

TEST(DagCircuit, EdgesFollowSharedQubits)
{
    const Circuit c = diamond();
    const DagCircuit dag(c);
    EXPECT_EQ(dag.numNodes(), 5u);
    EXPECT_EQ(dag.successors(0), (std::vector<int>{2}));
    EXPECT_EQ(dag.successors(1), (std::vector<int>{2}));
    EXPECT_EQ(dag.successors(2), (std::vector<int>{3, 4}));
    EXPECT_TRUE(dag.successors(3).empty());
    EXPECT_EQ(dag.predecessors(2), (std::vector<int>{0, 1}));
}

TEST(DagCircuit, EdgeDeduplication)
{
    // Two consecutive CX on the same pair: one edge, not two.
    Circuit c(2);
    c.cx(0, 1).cx(0, 1);
    const DagCircuit dag(c);
    EXPECT_EQ(dag.successors(0).size(), 1u);
    EXPECT_EQ(dag.predecessors(1).size(), 1u);
}

TEST(DagCircuit, Roots)
{
    const DagCircuit dag(diamond());
    EXPECT_EQ(dag.roots(), (std::vector<int>{0, 1}));
}

TEST(DagCircuit, TopologicalOrderValid)
{
    const DagCircuit dag(diamond());
    const auto order = dag.topologicalOrder();
    EXPECT_TRUE(dag.isValidSchedule(order));
}

TEST(DagCircuit, InvalidScheduleDetected)
{
    const DagCircuit dag(diamond());
    EXPECT_FALSE(dag.isValidSchedule({2, 0, 1, 3, 4})); // cx first
    EXPECT_FALSE(dag.isValidSchedule({0, 1, 2, 3}));    // too short
    EXPECT_FALSE(dag.isValidSchedule({0, 0, 2, 3, 4})); // duplicate
}

TEST(DagCircuit, ApplyScheduleRebuilds)
{
    const Circuit c = diamond();
    const Circuit r = applySchedule(c, {1, 0, 2, 4, 3});
    ASSERT_EQ(r.numGates(), c.numGates());
    EXPECT_EQ(r.gates()[0].qubits[0], 1);
    EXPECT_EQ(r.gates()[1].qubits[0], 0);
    EXPECT_EQ(r.gates()[2].kind, GateKind::CX);
}

class GeneratorDagParam
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GeneratorDagParam, TopoOrderOfBenchmarksIsValid)
{
    const Circuit c = circuits::makeBenchmark(GetParam(), 8);
    const DagCircuit dag(c);
    EXPECT_TRUE(dag.isValidSchedule(dag.topologicalOrder()));
    // The identity order must always be a valid schedule.
    std::vector<int> identity(c.numGates());
    for (std::size_t i = 0; i < identity.size(); ++i)
        identity[i] = static_cast<int>(i);
    EXPECT_TRUE(dag.isValidSchedule(identity));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, GeneratorDagParam,
    ::testing::Values("hchain", "rqc", "qaoa", "gs", "hlf", "qft",
                      "iqp", "qf", "bv"));

} // namespace
} // namespace qgpu
