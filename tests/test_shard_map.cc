/**
 * @file
 * Unit tests for the multi-device shard map (sched/shard.hh): balanced
 * and capacity-limited chunk assignment, the cross-boundary bit test
 * (including boundaries at odd multiples of the stride), group
 * ownership, and the gather/scatter asymmetry of the exchange plan.
 */

#include <gtest/gtest.h>

#include "sched/shard.hh"

namespace qgpu
{
namespace
{

TEST(ShardMap, BalancedRangesArePowerOfTwoTopBitSplit)
{
    const ShardMap shard(32, 4);
    EXPECT_EQ(shard.numChunks(), 32u);
    EXPECT_EQ(shard.numDevices(), 4);
    EXPECT_EQ(shard.hostChunks(), 0u);
    EXPECT_EQ(shard.shardBits(), 2);
    for (int d = 0; d < 4; ++d) {
        EXPECT_EQ(shard.ownedBegin(d), static_cast<Index>(8 * d));
        EXPECT_EQ(shard.ownedCount(d), 8u);
    }
    // Top-2-bit split: the device is literally the top two bits of
    // the 5-bit chunk index.
    for (Index c = 0; c < 32; ++c)
        EXPECT_EQ(shard.device(c), static_cast<int>(c >> 3)) << c;
}

TEST(ShardMap, BalancedHandlesNonPowerOfTwoDeviceCounts)
{
    const ShardMap shard(32, 3);
    EXPECT_EQ(shard.shardBits(), -1);
    EXPECT_EQ(shard.hostChunks(), 0u);
    EXPECT_EQ(shard.ownedCount(0) + shard.ownedCount(1) +
                  shard.ownedCount(2),
              32u);
    // Balanced: counts differ by at most one chunk.
    for (int d = 0; d < 3; ++d) {
        EXPECT_GE(shard.ownedCount(d), 10u);
        EXPECT_LE(shard.ownedCount(d), 11u);
    }
    EXPECT_EQ(shard.device(0), 0);
    EXPECT_EQ(shard.device(31), 2);
}

TEST(ShardMap, MoreDevicesThanChunksLeavesSomeEmpty)
{
    const ShardMap shard(2, 4);
    Index total = 0;
    for (int d = 0; d < 4; ++d)
        total += shard.ownedCount(d);
    EXPECT_EQ(total, 2u);
    EXPECT_EQ(shard.hostChunks(), 0u);
}

TEST(ShardMap, CapacityLimitedSpillsToHost)
{
    const ShardMap shard = ShardMap::capacityLimited(10, {2, 2});
    EXPECT_EQ(shard.hostChunks(), 6u);
    EXPECT_EQ(shard.device(0), 0);
    EXPECT_EQ(shard.device(1), 0);
    EXPECT_EQ(shard.device(2), 1);
    EXPECT_EQ(shard.device(3), 1);
    for (Index c = 4; c < 10; ++c)
        EXPECT_EQ(shard.device(c), ShardMap::kHost) << c;
}

TEST(ShardMap, CapacityLimitedStopsAtTheChunkCount)
{
    // The last device's surplus capacity absorbs the remainder.
    const ShardMap shard = ShardMap::capacityLimited(10, {4, 2, 100});
    EXPECT_EQ(shard.hostChunks(), 0u);
    EXPECT_EQ(shard.ownedCount(0), 4u);
    EXPECT_EQ(shard.ownedCount(1), 2u);
    EXPECT_EQ(shard.ownedCount(2), 4u);
}

TEST(ShardMap, BitIsCrossDetectsOddMultipleBoundaries)
{
    // 32 chunks on 2 devices: the single internal boundary sits at
    // 16. Flipping bit 4 pairs (x, x+16), which straddles it for
    // every x < 16 even though 16 is a multiple of the stride — the
    // boundary is at an ODD multiple of 16, which is what matters.
    const ShardMap shard(32, 2);
    for (int b = 0; b < 4; ++b)
        EXPECT_FALSE(shard.bitIsCross(b)) << b;
    EXPECT_TRUE(shard.bitIsCross(4));

    // 4 devices: boundaries 8, 16, 24. Bit 3 crosses (boundary 8 is
    // an odd multiple of its stride) and bit 4 crosses (boundaries 8
    // and 24 are not multiples of 32); bits 0-2 stay inside a shard.
    const ShardMap quad(32, 4);
    for (int b = 0; b < 3; ++b)
        EXPECT_FALSE(quad.bitIsCross(b)) << b;
    EXPECT_TRUE(quad.bitIsCross(3));
    EXPECT_TRUE(quad.bitIsCross(4));
}

TEST(ShardMap, CrossBitsFiltersTheSweepSignature)
{
    const ShardMap shard(32, 4);
    EXPECT_TRUE(shard.crossBits({0, 1, 2}).empty());
    EXPECT_FALSE(shard.isCrossDevice({0, 1, 2}));
    const std::vector<int> cross = shard.crossBits({1, 3, 4});
    EXPECT_EQ(cross, (std::vector<int>{3, 4}));
    EXPECT_TRUE(shard.isCrossDevice({1, 3, 4}));
    EXPECT_FALSE(shard.isCrossDevice({}));
}

TEST(ShardMap, GroupOwnerIsTheLowestMembersDevice)
{
    const ShardMap shard(32, 4);
    // Coupling bits {3, 4}: a group's members are base + {0, 8, 16,
    // 24}, and the base always has bits 3-4 clear (base < 8), so the
    // owner is device 0 for every group.
    for (Index g = 0; g < 8; ++g)
        EXPECT_EQ(shard.groupOwner(g, {3, 4}), 0) << g;
    // Coupling only bit 3: bases have bit 3 clear; base 16-23 belongs
    // to device 2.
    EXPECT_EQ(shard.groupOwner(0, {3}), 0);
    const int owner_hi = shard.groupOwner(8, {3});
    EXPECT_EQ(owner_hi, 2); // group 8 expands over base 16
}

TEST(ShardMap, ExchangePlanEmptyForDeviceLocalSweeps)
{
    const ShardMap shard(8, 2);
    EXPECT_TRUE(shard.exchangePlan({}).empty());
    EXPECT_TRUE(shard.exchangePlan({0, 1}).empty());
}

TEST(ShardMap, ExchangePlanGathersAndScattersForeignMembers)
{
    // 8 chunks on 2 devices (boundary 4); bit 2 pairs (c, c+4)
    // across it. Owner of every group is device 0, so chunks 4-7 are
    // the foreign members.
    const ShardMap shard(8, 2);
    const ExchangePlan plan = shard.exchangePlan({2});
    ASSERT_EQ(plan.gather.size(), 4u);
    ASSERT_EQ(plan.scatter.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(plan.gather[i].chunk, static_cast<Index>(4 + i));
        EXPECT_EQ(plan.gather[i].src, 1);
        EXPECT_EQ(plan.gather[i].dst, 0);
        EXPECT_EQ(plan.scatter[i].chunk, static_cast<Index>(4 + i));
        EXPECT_EQ(plan.scatter[i].src, 0);
        EXPECT_EQ(plan.scatter[i].dst, 1);
    }
}

TEST(ShardMap, ExchangePlanSkipsDeadGroupsButScattersDeadMembers)
{
    const ShardMap shard(8, 2);
    // Only chunk 0 is live: group (0, 4) is live (one live member),
    // groups (1,5), (2,6), (3,7) are fully dead and move nothing.
    const auto live = [](Index c) { return c == 0; };
    const ExchangePlan plan = shard.exchangePlan({2}, live);
    // Gather ships only LIVE foreign members — chunk 4 is dead, and a
    // provably-zero chunk is materialized as zeros at the owner.
    EXPECT_TRUE(plan.gather.empty());
    // Scatter ships EVERY foreign member of the live group: the
    // cross-chunk kernel writes both members, so chunk 4 now holds
    // real amplitudes that must go home.
    ASSERT_EQ(plan.scatter.size(), 1u);
    EXPECT_EQ(plan.scatter[0].chunk, 4u);
    EXPECT_EQ(plan.scatter[0].src, 0);
    EXPECT_EQ(plan.scatter[0].dst, 1);
}

TEST(ShardMap, ExchangePlanFourDevices)
{
    // 16 chunks on 4 devices (4 each); bit 3 pairs shards (0,2) and
    // (1,3). Every transfer's endpoints must differ and agree with
    // the map.
    const ShardMap shard(16, 4);
    const ExchangePlan plan = shard.exchangePlan({3});
    ASSERT_EQ(plan.gather.size(), 8u);
    ASSERT_EQ(plan.scatter.size(), 8u);
    for (const PeerTransfer &t : plan.gather) {
        EXPECT_NE(t.src, t.dst);
        EXPECT_EQ(t.src, shard.device(t.chunk));
    }
    for (const PeerTransfer &t : plan.scatter) {
        EXPECT_NE(t.src, t.dst);
        EXPECT_EQ(t.dst, shard.device(t.chunk));
    }
}

} // namespace
} // namespace qgpu
