/**
 * @file
 * Gate-fusion tests: the fused circuit must compute the same unitary
 * (checked via final states) with fewer full-state passes.
 */

#include <gtest/gtest.h>

#include "circuits/circuits.hh"
#include "qc/fusion.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{
namespace
{

TEST(ExpandMatrix, SingleQubitIntoTwo)
{
    const GateMatrix x = Gate(GateKind::X, {0}).matrix();
    // X on local bit 1 of a 2-qubit space = X (x) I.
    const GateMatrix big = expandMatrix(x, {1}, 2);
    EXPECT_EQ(big.at(2, 0), (Amp{1, 0})); // |00> -> |10>
    EXPECT_EQ(big.at(3, 1), (Amp{1, 0})); // |01> -> |11>
    EXPECT_TRUE(big.isUnitary());
}

TEST(ExpandMatrix, PreservesOrderingAcrossPositions)
{
    // CX with control at local bit 2 and target at local bit 0.
    const GateMatrix cx = Gate(GateKind::CX, {0, 1}).matrix();
    const GateMatrix big = expandMatrix(cx, {2, 0}, 3);
    // Input |100> (control set): target flips -> |101>.
    EXPECT_EQ(big.at(0b101, 0b100), (Amp{1, 0}));
    // Input |001| (control clear): fixed.
    EXPECT_EQ(big.at(0b001, 0b001), (Amp{1, 0}));
    EXPECT_TRUE(big.isUnitary());
}

TEST(FuseGates, ReducesGateCount)
{
    const Circuit c = circuits::qft(6);
    const Circuit fused = fuseGates(c, 3);
    EXPECT_LT(fused.numGates(), c.numGates());
}

TEST(FuseGates, SingleGateRunsKeepOriginalKind)
{
    Circuit c(6);
    c.h(0).h(5); // qubit union {0,5} would exceed width 1
    const Circuit fused = fuseGates(c, 1);
    ASSERT_EQ(fused.numGates(), 2u);
    EXPECT_EQ(fused.gates()[0].kind, GateKind::H);
}

TEST(FuseGates, RespectsWidthLimit)
{
    const Circuit fused = fuseGates(circuits::qft(8), 3);
    for (const Gate &g : fused.gates())
        EXPECT_LE(g.numQubits(), 3);
}

class FusionEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(FusionEquivalence, FusedStateMatchesOriginal)
{
    const auto &[family, width] = GetParam();
    const Circuit c = circuits::makeBenchmark(family, 7);
    const Circuit fused = fuseGates(c, width);

    const StateVector want = simulateReference(c);
    const StateVector got = simulateReference(fused);
    EXPECT_LT(want.maxAbsDiff(got), 1e-10)
        << family << " width " << width;
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndWidths, FusionEquivalence,
    ::testing::Combine(
        ::testing::Values("hchain", "rqc", "qaoa", "gs", "hlf",
                          "qft", "iqp", "qf", "bv"),
        ::testing::Values(2, 4)));

} // namespace
} // namespace qgpu
