/**
 * @file
 * Tests for the flat reference simulator: canonical states, gate
 * algebra identities, and norm preservation.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "circuits/circuits.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{
namespace
{

TEST(StateVector, InitialState)
{
    StateVector s(3);
    EXPECT_EQ(s.size(), 8u);
    EXPECT_EQ(s[0], (Amp{1, 0}));
    EXPECT_EQ(s.countZeros(), 7u);
    EXPECT_NEAR(s.norm(), 1.0, 1e-15);
}

TEST(StateVector, BellState)
{
    Circuit c(2);
    c.h(0).cx(0, 1);
    const StateVector s = simulateReference(c);
    const double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(s[0b00]), r, 1e-15);
    EXPECT_NEAR(std::abs(s[0b11]), r, 1e-15);
    EXPECT_NEAR(std::abs(s[0b01]), 0.0, 1e-15);
    EXPECT_NEAR(std::abs(s[0b10]), 0.0, 1e-15);
}

TEST(StateVector, GhzState)
{
    const int n = 5;
    Circuit c(n);
    c.h(0);
    for (int q = 0; q + 1 < n; ++q)
        c.cx(q, q + 1);
    const StateVector s = simulateReference(c);
    const double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(s[0]), r, 1e-14);
    EXPECT_NEAR(std::abs(s[(1u << n) - 1]), r, 1e-14);
    EXPECT_EQ(s.countZeros(1e-12), (Index{1} << n) - 2);
}

TEST(StateVector, XFlipsBasisState)
{
    StateVector s(3);
    s.apply(Gate(GateKind::X, {1}));
    EXPECT_EQ(s[0b010], (Amp{1, 0}));
    EXPECT_EQ(s[0], (Amp{0, 0}));
}

TEST(StateVector, HHIsIdentity)
{
    Circuit c(1);
    c.h(0).h(0);
    const StateVector s = simulateReference(c);
    EXPECT_NEAR(std::abs(s[0] - Amp{1, 0}), 0.0, 1e-15);
}

TEST(StateVector, CxCxIsIdentity)
{
    Circuit c(2);
    c.h(0).cx(0, 1).cx(0, 1).h(0);
    const StateVector s = simulateReference(c);
    EXPECT_NEAR(std::abs(s[0] - Amp{1, 0}), 0.0, 1e-14);
}

TEST(StateVector, SwapViaThreeCx)
{
    // swap(a,b) == cx(a,b) cx(b,a) cx(a,b).
    Circuit direct(2), threecx(2);
    direct.h(0).t(0).swap(0, 1);
    threecx.h(0).t(0).cx(0, 1).cx(1, 0).cx(0, 1);
    EXPECT_LT(simulateReference(direct).maxAbsDiff(
                  simulateReference(threecx)),
              1e-14);
}

TEST(StateVector, CzSymmetric)
{
    Circuit a(2), b(2);
    a.h(0).h(1).cz(0, 1);
    b.h(0).h(1).cz(1, 0);
    EXPECT_LT(simulateReference(a).maxAbsDiff(simulateReference(b)),
              1e-15);
}

TEST(StateVector, CzEqualsHCxH)
{
    Circuit a(2), b(2);
    a.h(0).h(1).cz(0, 1);
    b.h(0).h(1).h(1).cx(0, 1).h(1);
    EXPECT_LT(simulateReference(a).maxAbsDiff(simulateReference(b)),
              1e-14);
}

TEST(StateVector, FidelityIdentical)
{
    const StateVector s = simulateReference(circuits::qft(5));
    EXPECT_NEAR(s.fidelity(s), 1.0, 1e-12);
}

TEST(StateVector, FidelityOrthogonal)
{
    StateVector a(2), b(2);
    b.apply(Gate(GateKind::X, {0}));
    EXPECT_NEAR(a.fidelity(b), 0.0, 1e-15);
}

TEST(StateVector, QftOfZeroIsUniform)
{
    const int n = 6;
    const StateVector s = simulateReference(circuits::qft(n));
    const double want = 1.0 / std::sqrt(static_cast<double>(1 << n));
    for (Index i = 0; i < s.size(); ++i)
        EXPECT_NEAR(std::abs(s[i]), want, 1e-12);
}

TEST(StateVector, QftMatchesDft)
{
    // QFT of |x> has amplitudes exp(2*pi*i*x*k/N)/sqrt(N). Prepare
    // |x> = |5> on 3 qubits and check against the analytic DFT
    // column (the ascending-form generator leaves the output in
    // natural order without a swap layer).
    const int n = 3;
    const Index x = 5;
    Circuit c(n);
    for (int q = 0; q < n; ++q)
        if ((x >> q) & 1)
            c.x(q);
    const Circuit qft_c = circuits::qft(n);
    for (const Gate &g : qft_c.gates())
        c.add(g);

    const StateVector s = simulateReference(c);
    const double N = 8.0;
    for (Index k = 0; k < 8; ++k) {
        const double phase = 2.0 * 3.14159265358979323846 *
                             static_cast<double>(x * k) / N;
        const Amp want{std::cos(phase) / std::sqrt(N),
                       std::sin(phase) / std::sqrt(N)};
        EXPECT_NEAR(std::abs(s[k] - want), 0.0, 1e-12) << "k=" << k;
    }
}

class NormPreservation : public ::testing::TestWithParam<std::string>
{
};

TEST_P(NormPreservation, EveryBenchmarkKeepsUnitNorm)
{
    const StateVector s =
        simulateReference(circuits::makeBenchmark(GetParam(), 9));
    EXPECT_NEAR(s.norm(), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, NormPreservation,
    ::testing::Values("hchain", "rqc", "qaoa", "gs", "hlf", "qft",
                      "iqp", "qf", "bv"));

TEST(StateVector, ResetRestoresGround)
{
    StateVector s(3);
    s.apply(Gate(GateKind::H, {0}));
    s.reset();
    EXPECT_EQ(s[0], (Amp{1, 0}));
    EXPECT_EQ(s.countZeros(), 7u);
}

} // namespace
} // namespace qgpu
