/**
 * @file
 * Differential suite for the kernel-dispatch layer: every specialized
 * kernel must be bit-identical (tolerance 0) to the generic
 * accessor-based reference in statevec/kernels.hh, across gate kinds,
 * random matrices, chunk-local and cross-chunk targets, and flat and
 * chunked states. Also covers classification, fused-diagonal
 * detection, range-split determinism, and the per-kind metrics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/metrics.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "qc/fusion.hh"
#include "statevec/apply.hh"
#include "statevec/kernel_dispatch.hh"
#include "statevec/kernels.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{
namespace
{

/** Deterministic non-trivial amplitudes (not normalized; irrelevant). */
std::vector<Amp>
randomAmps(int num_qubits, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Amp> amps(stateSize(num_qubits));
    for (Amp &a : amps)
        a = Amp{rng.nextDouble() * 2 - 1, rng.nextDouble() * 2 - 1};
    return amps;
}

/** Random dense k-qubit matrix (no unitarity needed for equivalence). */
std::vector<Amp>
randomMatrix(int k, std::uint64_t seed)
{
    Rng rng(seed);
    const int dim = 1 << k;
    std::vector<Amp> m(static_cast<std::size_t>(dim) * dim);
    for (Amp &e : m)
        e = Amp{rng.nextDouble() * 2 - 1, rng.nextDouble() * 2 - 1};
    return m;
}

/** Random diagonal k-qubit matrix (exact zero off-diagonals). */
std::vector<Amp>
randomDiagMatrix(int k, std::uint64_t seed)
{
    Rng rng(seed);
    const int dim = 1 << k;
    std::vector<Amp> m(static_cast<std::size_t>(dim) * dim,
                       Amp{0, 0});
    for (int i = 0; i < dim; ++i)
        m[static_cast<std::size_t>(i) * dim + i] =
            Amp{rng.nextDouble() * 2 - 1, rng.nextDouble() * 2 - 1};
    return m;
}

/** Max |a - b| over two equally sized amplitude buffers. */
double
maxDiff(const std::vector<Amp> &a, const std::vector<Amp> &b)
{
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    return worst;
}

/**
 * The gates under test, covering every KernelKind with both builtin
 * and random Custom matrices. Targets are parameterized so the same
 * set runs with low (chunk-local) and high (cross-chunk) qubits.
 */
std::vector<Gate>
gateZoo(int lo0, int lo1, int hi0, int hi1)
{
    std::vector<Gate> gates;
    // Diag1q / Diag2q / DiagK
    gates.emplace_back(GateKind::T, std::vector<int>{lo0});
    gates.emplace_back(GateKind::RZ, std::vector<int>{hi0},
                       std::vector<double>{0.37});
    gates.emplace_back(GateKind::CP, std::vector<int>{lo0, hi0},
                       std::vector<double>{1.1});
    gates.emplace_back(GateKind::RZZ, std::vector<int>{lo1, lo0},
                       std::vector<double>{0.6});
    gates.emplace_back(GateKind::CCZ,
                       std::vector<int>{lo0, hi0, lo1});
    gates.push_back(Gate::makeCustom({lo1}, randomDiagMatrix(1, 11)));
    gates.push_back(
        Gate::makeCustom({hi0, lo0}, randomDiagMatrix(2, 12)));
    gates.push_back(
        Gate::makeCustom({lo0, lo1, hi1}, randomDiagMatrix(3, 13)));
    // Perm1q
    gates.emplace_back(GateKind::X, std::vector<int>{lo0});
    gates.emplace_back(GateKind::Y, std::vector<int>{hi1});
    {
        // Random anti-diagonal 1q Custom.
        std::vector<Amp> m = {Amp{0, 0}, Amp{0.6, -0.8},
                              Amp{-0.28, 0.96}, Amp{0, 0}};
        gates.push_back(Gate::makeCustom({lo1}, std::move(m)));
    }
    // Ctrl1q
    gates.emplace_back(GateKind::CX, std::vector<int>{lo0, hi0});
    gates.emplace_back(GateKind::CX, std::vector<int>{hi0, lo0});
    gates.emplace_back(GateKind::CY, std::vector<int>{lo1, lo0});
    gates.emplace_back(GateKind::CCX,
                       std::vector<int>{lo0, hi1, lo1});
    // Dense1q
    gates.emplace_back(GateKind::H, std::vector<int>{lo0});
    gates.emplace_back(GateKind::H, std::vector<int>{hi0});
    gates.emplace_back(GateKind::U, std::vector<int>{lo1},
                       std::vector<double>{0.3, 1.2, -0.7});
    gates.push_back(Gate::makeCustom({hi1}, randomMatrix(1, 21)));
    // Dense2q
    gates.emplace_back(GateKind::SWAP, std::vector<int>{lo0, hi0});
    gates.emplace_back(GateKind::RXX, std::vector<int>{hi0, lo1},
                       std::vector<double>{0.9});
    gates.push_back(
        Gate::makeCustom({lo1, lo0}, randomMatrix(2, 22)));
    gates.push_back(
        Gate::makeCustom({hi1, hi0}, randomMatrix(2, 23)));
    // DenseK
    gates.emplace_back(GateKind::CSWAP,
                       std::vector<int>{hi0, lo0, lo1});
    gates.push_back(
        Gate::makeCustom({lo0, hi0, lo1}, randomMatrix(3, 24)));
    gates.push_back(
        Gate::makeCustom({lo0, lo1, hi0, hi1}, randomMatrix(4, 25)));
    return gates;
}

TEST(KernelDispatch, ClassifiesBuiltinKinds)
{
    const auto kindOf = [](const Gate &g) {
        return makeKernelSpec(g).kind;
    };
    EXPECT_EQ(kindOf(Gate(GateKind::Z, {0})), KernelKind::Diag1q);
    EXPECT_EQ(kindOf(Gate(GateKind::RZ, {3}, {0.5})),
              KernelKind::Diag1q);
    EXPECT_EQ(kindOf(Gate(GateKind::CZ, {1, 4})), KernelKind::Diag2q);
    EXPECT_EQ(kindOf(Gate(GateKind::RZZ, {4, 1}, {0.2})),
              KernelKind::Diag2q);
    EXPECT_EQ(kindOf(Gate(GateKind::CCZ, {0, 2, 4})),
              KernelKind::DiagK);
    EXPECT_EQ(kindOf(Gate(GateKind::X, {2})), KernelKind::Perm1q);
    EXPECT_EQ(kindOf(Gate(GateKind::Y, {2})), KernelKind::Perm1q);
    EXPECT_EQ(kindOf(Gate(GateKind::CX, {0, 5})), KernelKind::Ctrl1q);
    EXPECT_EQ(kindOf(Gate(GateKind::CCX, {0, 1, 5})),
              KernelKind::Ctrl1q);
    EXPECT_EQ(kindOf(Gate(GateKind::H, {0})), KernelKind::Dense1q);
    EXPECT_EQ(kindOf(Gate(GateKind::SX, {1})), KernelKind::Dense1q);
    EXPECT_EQ(kindOf(Gate(GateKind::SWAP, {0, 3})),
              KernelKind::Dense2q);
    EXPECT_EQ(kindOf(Gate(GateKind::RXX, {2, 0}, {0.4})),
              KernelKind::Dense2q);
    EXPECT_EQ(kindOf(Gate(GateKind::CSWAP, {0, 1, 2})),
              KernelKind::DenseK);
}

TEST(KernelDispatch, ClassifiesCustomShapes)
{
    const Gate diag = Gate::makeCustom({2}, randomDiagMatrix(1, 1));
    EXPECT_TRUE(diag.isDiagonal());
    EXPECT_EQ(makeKernelSpec(diag).kind, KernelKind::Diag1q);

    std::vector<Amp> anti = {Amp{0, 0}, Amp{1, 0}, Amp{0, 1},
                             Amp{0, 0}};
    const Gate perm = Gate::makeCustom({2}, std::move(anti));
    EXPECT_FALSE(perm.isDiagonal());
    EXPECT_TRUE(perm.isPermutation());
    EXPECT_EQ(perm.shape(), GateShape::Permutation);
    EXPECT_EQ(makeKernelSpec(perm).kind, KernelKind::Perm1q);

    const Gate dense = Gate::makeCustom({2}, randomMatrix(1, 2));
    EXPECT_EQ(dense.shape(), GateShape::Dense);
    EXPECT_EQ(makeKernelSpec(dense).kind, KernelKind::Dense1q);
}

/** Specialized flat apply == generic reference, exactly. */
TEST(KernelDispatch, FlatMatchesGenericBitExact)
{
    const int n = 10;
    // lo targets below a typical chunk boundary, hi targets above;
    // for the flat register this just spreads strides.
    for (const Gate &gate : gateZoo(0, 2, 7, 9)) {
        std::vector<Amp> got = randomAmps(n, 42);
        std::vector<Amp> want = got;

        const KernelSpec spec = makeKernelSpec(gate);
        applyKernel(spec, got.data(), n);

        Amp *ref = want.data();
        kernels::applyGate([ref](Index i) -> Amp & { return ref[i]; },
                           n, gate);

        EXPECT_EQ(maxDiff(got, want), 0.0)
            << gate.toString() << " (kind "
            << kernelKindName(spec.kind) << ")";
    }
}

/** Arbitrary work-item range splits compose to the full-range result. */
TEST(KernelDispatch, RangeSplitsComposeBitExact)
{
    const int n = 9;
    for (const Gate &gate : gateZoo(1, 3, 6, 8)) {
        const KernelSpec spec = makeKernelSpec(gate);
        const Index items = kernelWorkItems(spec, n);

        std::vector<Amp> got = randomAmps(n, 7);
        std::vector<Amp> want = got;
        applyKernel(spec, want.data(), n);

        // Deliberately misaligned split points.
        const Index cuts[] = {0, items / 3 + 1, items / 2 + 3, items};
        for (int s = 0; s + 1 < 4; ++s)
            applyKernel(spec, got.data(), n, cuts[s],
                        std::min(cuts[s + 1], items));

        EXPECT_EQ(maxDiff(got, want), 0.0) << gate.toString();
    }
}

/** Chunked apply (local and cross-chunk groups) == generic flat. */
TEST(KernelDispatch, ChunkedMatchesGenericBitExact)
{
    const int n = 10;
    for (int chunk_bits : {4, 6}) {
        // hi targets land above the chunk boundary (cross-chunk for
        // non-diagonal gates), lo targets below it.
        for (const Gate &gate :
             gateZoo(0, chunk_bits - 1, chunk_bits, n - 1)) {
            const std::vector<Amp> init = randomAmps(n, 99);

            StateVector flat(n);
            flat.amplitudes() = init;
            ChunkedStateVector chunked(n, chunk_bits);
            chunked.fromFlat(flat);

            applyGateChunked(chunked, gate);

            std::vector<Amp> want = init;
            Amp *ref = want.data();
            kernels::applyGate(
                [ref](Index i) -> Amp & { return ref[i]; }, n, gate);

            EXPECT_EQ(maxDiff(chunked.toFlat().amplitudes(), want),
                      0.0)
                << gate.toString() << " chunk_bits=" << chunk_bits;
        }
    }
}

/** applyGroup covers each group exactly once, matching the reference. */
TEST(KernelDispatch, GroupwiseMatchesGenericBitExact)
{
    const int n = 9, chunk_bits = 4;
    for (const Gate &gate : gateZoo(0, 3, 5, 8)) {
        const std::vector<Amp> init = randomAmps(n, 5);
        StateVector flat(n);
        flat.amplitudes() = init;
        ChunkedStateVector chunked(n, chunk_bits);
        chunked.fromFlat(flat);

        const GatePlan plan(gate, n, chunk_bits);
        for (Index g = 0; g < plan.numGroups(); ++g)
            applyGroup(chunked, gate, plan, g);

        std::vector<Amp> want = init;
        Amp *ref = want.data();
        kernels::applyGate([ref](Index i) -> Amp & { return ref[i]; },
                           n, gate);
        EXPECT_EQ(maxDiff(chunked.toFlat().amplitudes(), want), 0.0)
            << gate.toString();
    }
}

/** Threaded flat/chunked apply is bit-identical to serial. */
TEST(KernelDispatch, ThreadedApplyMatchesSerialBitExact)
{
    const int n = 10;
    for (const Gate &gate : gateZoo(0, 4, 7, 9)) {
        StateVector serial(n), threaded(n);
        serial.amplitudes() = randomAmps(n, 3);
        threaded.amplitudes() = serial.amplitudes();

        setSimThreads(1);
        serial.apply(gate);
        setSimThreads(4);
        threaded.apply(gate);
        setSimThreads(1);

        EXPECT_EQ(maxDiff(serial.amplitudes(),
                          threaded.amplitudes()),
                  0.0)
            << gate.toString();
    }
}

/** A run of diagonal gates fuses into a *diagonal* Custom gate. */
TEST(KernelDispatch, FusedDiagonalRunStaysDiagonal)
{
    Circuit c(4, "diag-run");
    c.add(Gate(GateKind::T, {0}));
    c.add(Gate(GateKind::CZ, {0, 2}));
    c.add(Gate(GateKind::RZ, {2}, {0.7}));
    c.add(Gate(GateKind::RZZ, {1, 2}, {0.3}));
    c.add(Gate(GateKind::S, {1}));

    const Circuit fused = fuseGates(c, 3);
    ASSERT_EQ(fused.numGates(), 1u);
    const Gate &g = fused.gates()[0];
    EXPECT_EQ(g.kind, GateKind::Custom);
    EXPECT_TRUE(g.isDiagonal());
    EXPECT_EQ(makeKernelSpec(g).kind, KernelKind::DiagK);

    // And the fused gate still computes the same state.
    const StateVector a = simulateReference(c);
    const StateVector b = simulateReference(fused);
    EXPECT_LT(a.maxAbsDiff(b), 1e-12);
}

/** Mixed runs stay dense; diagonal detection is not fooled. */
TEST(KernelDispatch, FusedMixedRunIsNotDiagonal)
{
    Circuit c(3, "mixed-run");
    c.add(Gate(GateKind::T, {0}));
    c.add(Gate(GateKind::H, {1}));
    c.add(Gate(GateKind::CZ, {0, 1}));

    const Circuit fused = fuseGates(c, 2);
    ASSERT_EQ(fused.numGates(), 1u);
    EXPECT_FALSE(fused.gates()[0].isDiagonal());

    const StateVector a = simulateReference(c);
    const StateVector b = simulateReference(fused);
    EXPECT_LT(a.maxAbsDiff(b), 1e-12);
}

TEST(KernelDispatch, PublishesPerKindMetrics)
{
    auto &mr = MetricsRegistry::global();
    mr.clear();

    StateVector flat(6);
    flat.apply(Gate(GateKind::H, {0}));
    flat.apply(Gate(GateKind::T, {1}));
    flat.apply(Gate(GateKind::CX, {0, 5}));

    ChunkedStateVector chunked(8, 4);
    applyGateChunked(chunked, Gate(GateKind::CZ, {1, 6}));
    applyGateChunked(chunked, Gate(GateKind::H, {7}));

    EXPECT_EQ(mr.counter("kernel.dense1q.invocations"), 2.0);
    EXPECT_EQ(mr.counter("kernel.dense1q.amps"),
              static_cast<double>(stateSize(6) + stateSize(8)));
    EXPECT_EQ(mr.counter("kernel.diag1q.invocations"), 1.0);
    EXPECT_EQ(mr.counter("kernel.ctrl1q.invocations"), 1.0);
    EXPECT_EQ(mr.counter("kernel.ctrl1q.amps"),
              static_cast<double>(stateSize(6) / 2));
    EXPECT_EQ(mr.counter("kernel.diag2q.invocations"), 1.0);
    EXPECT_EQ(mr.counter("kernel.diag2q.amps"),
              static_cast<double>(stateSize(8)));
    mr.clear();
}

} // namespace
} // namespace qgpu
