/**
 * @file
 * Differential fuzz harness for batched-shot noise execution (tier2:
 * excluded from the pre-commit gate, run via `ctest -L tier2`, e.g. by
 * `scripts/check.sh --asan`). For every engine version and pruning
 * mode, a sweep of seeded random circuits runs noisy batches three
 * ways -- the shared-schedule replay, the per-shot materialized path,
 * and an independently reconstructed expanded-circuit reference --
 * rotating register size, host thread count, and noise mix per
 * iteration. The contract under test: every shot of a noisy batch is
 * BIT-identical to its materialized-circuit twin (noise is exact gate
 * insertion, never an approximation), and when storage faults are
 * armed on top of noise the batch either completes bit-identically or
 * surfaces a structured SimError -- never a silently corrupt shot.
 */

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "engine/batched.hh"
#include "fault/integrity.hh"
#include "harness/experiment.hh"
#include "noise/model.hh"
#include "reorder/reorder.hh"

namespace qgpu
{
namespace
{

constexpr int kSeeds = 40;
constexpr std::uint64_t kShots = 3;

struct PruneMode
{
    const char *name;
    bool dynamicChunks;
    InvolvementPolicy involvement;
};

constexpr PruneMode kModes[] = {
    {"dynamic_perop", true, InvolvementPolicy::PerOp},
    {"static_perop", false, InvolvementPolicy::PerOp},
    {"dynamic_nondiag", true, InvolvementPolicy::NonDiagonal},
};

// Pauli-only, correlated two-qubit, amplitude-damping + readout, and
// a kitchen-sink mix with idle noise on a qubit the circuits rarely
// entangle (the pruning-mask hazard).
constexpr const char *kMixes[] = {
    "pauli1:0.1",
    "pauli1:0.02:0.03:0.05,pauli2:0.1",
    "damp:0.1,readout:0.05",
    "pauli1:0.05,damp:0.05,idle@5:0.3,readout:0.1",
};

class NoiseFuzz
    : public ::testing::TestWithParam<std::tuple<Version, int>>
{
  protected:
    void TearDown() override { setSimThreads(1); }
};

TEST_P(NoiseFuzz, ShotsMatchMaterializedTwinsBitIdentically)
{
    const auto &[version, mode_idx] = GetParam();
    const PruneMode &mode = kModes[mode_idx];

    int noisy_shots = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
        const int n = 6 + seed % 3;
        const Circuit circuit =
            circuits::makeBenchmark("random", n, seed + 1);
        setSimThreads(1 + seed % 3);

        ExecOptions o;
        o.targetChunks = 32;
        o.codecSampleChunks = 0;
        o.dynamicChunks = mode.dynamicChunks;
        o.involvement = mode.involvement;
        o.faultSpec = "none";
        o.noiseSpec = kMixes[seed % std::size(kMixes)];
        o.shotSeed = 0x5407ull + static_cast<std::uint64_t>(seed);
        o.keepShotStates = true;

        Machine machine = harness::benchMachine(n);
        const auto shared = makeVersion(version, machine, o);
        const BatchResult sb = shared->runBatched(circuit, kShots);
        ASSERT_TRUE(sb.ok())
            << versionName(version) << "/" << mode.name << " seed "
            << seed << ": " << sb.error->detail;
        ASSERT_EQ(sb.states.size(), kShots);

        // Twin 1: the per-shot materialized path of the SAME version
        // must reproduce every shot bit-identically -- two completely
        // different execution strategies over one draw stream.
        ExecOptions po = o;
        po.batchMode = BatchMode::PerShot;
        Machine per_machine = harness::benchMachine(n);
        const BatchResult pb =
            makeVersion(version, per_machine, po)
                ->runBatched(circuit, kShots);
        ASSERT_TRUE(pb.ok()) << versionName(version) << "/"
                             << mode.name << " seed " << seed;
        for (std::uint64_t s = 0; s < kShots; ++s) {
            EXPECT_EQ(sb.outcomes[s], pb.outcomes[s])
                << versionName(version) << "/" << mode.name
                << " shared vs per-shot outcome, seed " << seed
                << " shot " << s;
            EXPECT_EQ(sb.states[s].maxAbsDiff(pb.states[s]), 0.0)
                << versionName(version) << "/" << mode.name
                << " shared vs per-shot state, seed " << seed
                << " shot " << s;
        }

        // Twin 2: reconstruct each trajectory from scratch. Noise is
        // sampled over the engine's executed (reordered) gate
        // sequence, which we rebuild from the version's forced
        // options; the expanded circuit through the flat reference
        // simulator bounds the engine at numeric tolerance.
        const Circuit ordered =
            reorderCircuit(circuit, shared->options().reorder);
        const noise::NoiseModel model =
            noise::NoiseModel::parse(o.noiseSpec);
        for (std::uint64_t s = 0; s < kShots; ++s) {
            Rng rng(splitSeed(o.shotSeed, s));
            const auto events = model.sample(
                std::span<const Gate>(ordered.gates()), rng);
            noisy_shots += !events.empty();
            const Circuit expanded = noise::expandCircuit(
                ordered,
                std::span<const noise::NoiseEvent>(events));
            EXPECT_LT(sb.states[s].maxAbsDiff(
                          simulateReference(expanded)),
                      1e-12)
                << versionName(version) << "/" << mode.name
                << " diverged from the expanded reference, seed "
                << seed << " shot " << s;
        }
    }
    // The sweep must actually inject errors; mixes that never fire
    // would reduce this to a noiseless identity test.
    EXPECT_GT(noisy_shots, 0)
        << versionName(version) << "/" << mode.name;
}

// Storage faults armed on top of noise: every shot still either
// matches its fault-free twin bit-identically or the batch stops with
// a structured, localized SimError recording how far it got.
TEST_P(NoiseFuzz, FaultedBatchesRecoverOrErrorStructurally)
{
    const auto &[version, mode_idx] = GetParam();
    const PruneMode &mode = kModes[mode_idx];
    constexpr int kFaultSeeds = 20;
    constexpr const char *kFaultSpecs[] = {
        "h2d:0.02,d2h:0.02,codec:0.05,alloc:0.02",
        "d2h:0.5,codec:0.1",
    };

    int recovered = 0;
    int errored = 0;
    for (int seed = 0; seed < kFaultSeeds; ++seed) {
        const int n = 6 + seed % 3;
        const Circuit circuit =
            circuits::makeBenchmark("random", n, seed + 1);
        setSimThreads(1 + seed % 3);

        ExecOptions o;
        o.targetChunks = 32;
        o.codecSampleChunks = 0;
        o.dynamicChunks = mode.dynamicChunks;
        o.involvement = mode.involvement;
        o.faultSpec = "none";
        o.noiseSpec = kMixes[seed % std::size(kMixes)];
        o.keepShotStates = true;

        Machine ref_machine = harness::benchMachine(n);
        const BatchResult ref =
            makeVersion(version, ref_machine, o)
                ->runBatched(circuit, kShots);
        ASSERT_TRUE(ref.ok()) << "fault-free batch failed, seed "
                              << seed;

        ExecOptions fo = o;
        fo.verifyChunks = true;
        fo.faultSpec = kFaultSpecs[seed % std::size(kFaultSpecs)];
        fo.faultSeed = 0x9e3779b97f4a7c15ull *
                       static_cast<std::uint64_t>(seed + 1);
        Machine machine = harness::benchMachine(n);
        const BatchResult fb = makeVersion(version, machine, fo)
                                   ->runBatched(circuit, kShots);

        if (!fb.ok()) {
            ++errored;
            EXPECT_EQ(fb.error->code, SimErrorCode::TransferFailed)
                << "seed " << seed;
            EXPECT_FALSE(fb.error->point.empty());
            EXPECT_EQ(fb.stats.get(intkeys::simErrors), 1.0);
            // Completed shots stay valid: everything before the
            // failing shot must already match the fault-free twin.
            ASSERT_LE(fb.outcomes.size(), kShots);
            for (std::uint64_t s = 0; s < fb.outcomes.size(); ++s)
                EXPECT_EQ(fb.outcomes[s], ref.outcomes[s])
                    << "completed shot " << s << " of errored batch,"
                    << " seed " << seed;
            continue;
        }
        ++recovered;
        for (std::uint64_t s = 0; s < kShots; ++s) {
            EXPECT_EQ(fb.outcomes[s], ref.outcomes[s])
                << versionName(version) << "/" << mode.name
                << " seed " << seed << " shot " << s;
            EXPECT_EQ(fb.states[s].maxAbsDiff(ref.states[s]), 0.0)
                << versionName(version) << "/" << mode.name
                << " seed " << seed << " shot " << s;
        }
    }
    EXPECT_GT(recovered, 0)
        << versionName(version) << "/" << mode.name;
    EXPECT_EQ(recovered + errored, kFaultSeeds);
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, NoiseFuzz,
    ::testing::Combine(::testing::ValuesIn(allVersions()),
                       ::testing::Range(0, 3)),
    [](const auto &info) {
        std::string name = versionName(std::get<0>(info.param));
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_'; // "Q-GPU" is not a valid gtest name
        return name + "_" + kModes[std::get<1>(info.param)].name;
    });

} // namespace
} // namespace qgpu
