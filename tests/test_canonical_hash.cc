/**
 * @file
 * Canonical circuit form and simulation-key contract
 * (qc/canonical.hh, service/job.hh): gate streams that provably act
 * identically hash equal, everything else hashes apart, and
 * scheduling-only execution options never move the key. The
 * cache-hit bit-identity half of the contract (hash-equal requests
 * produce maxAbsDiff == 0 states because both execute the canonical
 * form) is exercised end-to-end in test_service_differential.cc; the
 * focused single-engine case lives here.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "qc/canonical.hh"
#include "service/job.hh"

namespace qgpu
{
namespace
{

std::uint64_t
hash(const Circuit &c)
{
    return canonicalCircuitHash(c);
}

TEST(CanonicalCircuit, DiagonalRunOrderIsNormalized)
{
    // z / t / cz / rzz all act diagonally in the computational
    // basis, so any order of a consecutive run is the same operator.
    Circuit a(3);
    a.h(0).z(1).t(0).cz(0, 1).rzz(0.25, 1, 2).h(2);
    Circuit b(3);
    b.h(0).rzz(0.25, 1, 2).cz(0, 1).t(0).z(1).h(2);
    EXPECT_EQ(hash(a), hash(b));

    const Circuit ca = canonicalCircuit(a);
    const Circuit cb = canonicalCircuit(b);
    ASSERT_EQ(ca.numGates(), cb.numGates());
    for (std::size_t i = 0; i < ca.numGates(); ++i)
        EXPECT_EQ(ca.gates()[i].kind, cb.gates()[i].kind)
            << "gate " << i;
}

TEST(CanonicalCircuit, NonDiagonalGatesAreBarriers)
{
    // The H between them puts z and t in different runs: swapping
    // across it changes the operator and must change the hash.
    Circuit a(1);
    a.z(0).h(0).t(0);
    Circuit b(1);
    b.t(0).h(0).z(0);
    EXPECT_NE(hash(a), hash(b));
}

TEST(CanonicalCircuit, NonDiagonalOrderIsPreserved)
{
    Circuit a(2);
    a.h(0).x(1);
    Circuit b(2);
    b.x(1).h(0);
    EXPECT_NE(hash(a), hash(b));
}

TEST(CanonicalCircuit, IdentityGatesAreDropped)
{
    Circuit a(2);
    a.h(0).cx(0, 1);
    Circuit b(2);
    b.add(Gate(GateKind::ID, {0}));
    b.h(0).add(Gate(GateKind::ID, {1}));
    b.cx(0, 1);
    EXPECT_EQ(hash(a), hash(b));
    EXPECT_EQ(canonicalCircuit(b).numGates(), a.numGates());
}

TEST(CanonicalCircuit, NegativeZeroParameterFolds)
{
    Circuit a(1);
    a.rz(0.0, 0);
    Circuit b(1);
    b.rz(-0.0, 0);
    EXPECT_EQ(hash(a), hash(b));
}

TEST(CanonicalCircuit, DistinctParametersHashApart)
{
    Circuit a(1);
    a.rz(0.5, 0);
    Circuit b(1);
    b.rz(0.25, 0);
    EXPECT_NE(hash(a), hash(b));
}

TEST(CanonicalCircuit, DistinctTargetsHashApart)
{
    Circuit a(2);
    a.z(0);
    Circuit b(2);
    b.z(1);
    EXPECT_NE(hash(a), hash(b));
}

TEST(CanonicalCircuit, WidthMatters)
{
    Circuit a(2);
    a.h(0);
    Circuit b(3);
    b.h(0);
    EXPECT_NE(hash(a), hash(b));
}

TEST(CanonicalCircuit, SeedChangesDigest)
{
    Circuit a(2);
    a.h(0).cz(0, 1);
    EXPECT_NE(canonicalCircuitHash(a, 1), canonicalCircuitHash(a, 2));
}

TEST(CanonicalCircuit, CanonicalizationIsIdempotent)
{
    const Circuit c = circuits::makeBenchmark("iqp", 8);
    const Circuit once = canonicalCircuit(c);
    const Circuit twice = canonicalCircuit(once);
    ASSERT_EQ(once.numGates(), twice.numGates());
    EXPECT_EQ(hash(once), hash(twice));
    EXPECT_EQ(hash(c), hash(once));
}

TEST(CanonicalCircuit, EveryFamilyHashesStably)
{
    // Same generator inputs -> same hash; guards against hidden
    // nondeterminism in either the generators or the hasher.
    for (const auto &family : circuits::benchmarkNames()) {
        const std::uint64_t h1 =
            hash(circuits::makeBenchmark(family, 10));
        const std::uint64_t h2 =
            hash(circuits::makeBenchmark(family, 10));
        EXPECT_EQ(h1, h2) << family;
        EXPECT_NE(h1, hash(circuits::makeBenchmark(family, 11)))
            << family;
    }
}

TEST(CanonicalCircuit, ExecutedCanonicalFormIsBitIdentical)
{
    // The service executes canonicalCircuit(request): two hash-equal
    // circuits therefore run the same gate stream and their states
    // match bitwise, even though running the PERMUTED originals
    // could differ in final ULPs (diagonal chains reassociate).
    Circuit a(4);
    a.h(0).h(1).h(2).h(3);
    a.t(0).cz(0, 1).rzz(0.3, 1, 2).p(0.7, 3).cp(0.2, 0, 3);
    a.h(1);
    Circuit b(4);
    b.h(0).h(1).h(2).h(3);
    b.cp(0.2, 0, 3).p(0.7, 3).rzz(0.3, 1, 2).cz(0, 1).t(0);
    b.h(1);
    ASSERT_EQ(hash(a), hash(b));

    ExecOptions o;
    o.keepState = true;
    Machine ma = harness::benchMachine(4);
    const RunResult ra =
        harness::runOn("qgpu", ma, canonicalCircuit(a), o);
    Machine mb = harness::benchMachine(4);
    const RunResult rb =
        harness::runOn("qgpu", mb, canonicalCircuit(b), o);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra.state.maxAbsDiff(rb.state), 0.0);
}

service::JobRequest
baseRequest()
{
    service::JobRequest r;
    r.circuit.family = "qft";
    r.circuit.qubits = 8;
    r.engine = "qgpu";
    return r;
}

std::uint64_t
keyOf(const service::JobRequest &r)
{
    return service::simulationKey(r, r.circuit.build());
}

TEST(SimulationKey, SchedulingOnlyFieldsDoNotMoveTheKey)
{
    const std::uint64_t base = keyOf(baseRequest());

    service::JobRequest r = baseRequest();
    r.tenant = "someone-else";
    r.shots = 1000;
    r.seed = 99;
    r.arrivalMs = 123.0;
    EXPECT_EQ(keyOf(r), base)
        << "tenant/shots/sampling-seed/arrival are not "
           "result-affecting";

    // Threshold is inert outside adaptive precision.
    r = baseRequest();
    r.adaptiveThreshold = 1e-3;
    EXPECT_EQ(keyOf(r), base);
}

TEST(SimulationKey, ResultAffectingFieldsMoveTheKey)
{
    const std::uint64_t base = keyOf(baseRequest());

    service::JobRequest r = baseRequest();
    r.engine = "baseline";
    EXPECT_NE(keyOf(r), base);

    r = baseRequest();
    r.precision = Precision::f32;
    EXPECT_NE(keyOf(r), base);

    r = baseRequest();
    r.fastMath = true;
    EXPECT_NE(keyOf(r), base);

    r = baseRequest();
    r.precision = Precision::adaptive;
    const std::uint64_t adaptive = keyOf(r);
    EXPECT_NE(adaptive, base);
    r.adaptiveThreshold = 1e-3;
    EXPECT_NE(keyOf(r), adaptive)
        << "threshold is result-affecting under adaptive precision";

    r = baseRequest();
    r.circuit.qubits = 9;
    EXPECT_NE(keyOf(r), base);
}

} // namespace
} // namespace qgpu
