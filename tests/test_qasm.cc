/**
 * @file
 * OpenQASM round-trip tests: every benchmark family must survive
 * export + import with its gate stream intact.
 */

#include <gtest/gtest.h>

#include "circuits/circuits.hh"
#include "qc/qasm.hh"

namespace qgpu
{
namespace
{

TEST(Qasm, ExportContainsHeaderAndGates)
{
    Circuit c(2, "bell");
    c.h(0).cx(0, 1);
    const std::string text = toQasm(c);
    EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(text.find("qreg q[2];"), std::string::npos);
    EXPECT_NE(text.find("h q[0];"), std::string::npos);
    EXPECT_NE(text.find("cx q[0],q[1];"), std::string::npos);
}

TEST(Qasm, ImportSimpleProgram)
{
    const std::string text = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cp(0.5) q[0],q[2];
rz(-pi/2) q[1];
)";
    const Circuit c = fromQasm(text);
    EXPECT_EQ(c.numQubits(), 3);
    ASSERT_EQ(c.numGates(), 3u);
    EXPECT_EQ(c.gates()[1].kind, GateKind::CP);
    EXPECT_DOUBLE_EQ(c.gates()[1].params[0], 0.5);
    EXPECT_NEAR(c.gates()[2].params[0], -1.5707963267948966, 1e-12);
}

TEST(Qasm, ImportAliases)
{
    const std::string text = R"(OPENQASM 2.0;
qreg q[2];
u1(0.25) q[0];
cu1(0.5) q[0],q[1];
)";
    const Circuit c = fromQasm(text);
    EXPECT_EQ(c.gates()[0].kind, GateKind::P);
    EXPECT_EQ(c.gates()[1].kind, GateKind::CP);
}

TEST(Qasm, ImportSkipsComments)
{
    const std::string text = "OPENQASM 2.0;\n// comment line\n"
                             "qreg q[1];\n// another\nh q[0];\n";
    EXPECT_EQ(fromQasm(text).numGates(), 1u);
}

TEST(Qasm, PiExpressions)
{
    const std::string text = "OPENQASM 2.0;\nqreg q[1];\n"
                             "p(pi/4) q[0];\np(2*pi) q[0];\n"
                             "p(-pi) q[0];\n";
    const Circuit c = fromQasm(text);
    EXPECT_NEAR(c.gates()[0].params[0], 0.7853981633974483, 1e-12);
    EXPECT_NEAR(c.gates()[1].params[0], 6.283185307179586, 1e-12);
    EXPECT_NEAR(c.gates()[2].params[0], -3.141592653589793, 1e-12);
}

class QasmRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(QasmRoundTrip, BenchmarkSurvivesRoundTrip)
{
    const Circuit original =
        circuits::makeBenchmark(GetParam(), 7);
    const Circuit back = fromQasm(toQasm(original));

    ASSERT_EQ(back.numQubits(), original.numQubits());
    ASSERT_EQ(back.numGates(), original.numGates());
    for (std::size_t i = 0; i < original.numGates(); ++i) {
        const Gate &a = original.gates()[i];
        const Gate &b = back.gates()[i];
        EXPECT_EQ(a.kind, b.kind) << "gate " << i;
        EXPECT_EQ(a.qubits, b.qubits) << "gate " << i;
        ASSERT_EQ(a.params.size(), b.params.size());
        for (std::size_t p = 0; p < a.params.size(); ++p)
            EXPECT_DOUBLE_EQ(a.params[p], b.params[p]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, QasmRoundTrip,
    ::testing::Values("hchain", "rqc", "qaoa", "gs", "hlf", "qft",
                      "iqp", "qf", "bv"));

TEST(Qasm, CommentsOnlyProgramHasNoGates)
{
    const std::string text = "OPENQASM 2.0;\n// nothing here\n"
                             "qreg q[4];\n// still nothing\n";
    const Circuit c = fromQasm(text);
    EXPECT_EQ(c.numQubits(), 4);
    EXPECT_EQ(c.numGates(), 0u);
}

TEST(Qasm, EmitParseEmitIsAFixedPoint)
{
    // Text-level roundtrip: once through the parser, the emitted
    // program must re-emit byte-identically (stable formatting and
    // full-precision parameters).
    for (const char *family : {"qft", "iqp", "hchain"}) {
        const Circuit original =
            circuits::makeBenchmark(family, 6);
        const std::string emitted = toQasm(original);
        const std::string again = toQasm(fromQasm(emitted));
        // The parser does not keep the circuit name comment, so
        // compare from the qreg line onward.
        const auto tail = [](const std::string &s) {
            return s.substr(s.find("qreg"));
        };
        EXPECT_EQ(tail(again), tail(emitted)) << family;
    }
}

TEST(QasmDeath, MissingHeader)
{
    EXPECT_DEATH((void)fromQasm("qreg q[2];\n"), "OPENQASM");
}

TEST(QasmDeath, EmptyProgram)
{
    EXPECT_DEATH((void)fromQasm(""), "expected identifier");
}

TEST(QasmDeath, HeaderOnlyHasNoRegister)
{
    EXPECT_DEATH((void)fromQasm("OPENQASM 2.0;\n// only comments\n"),
                 "no qreg");
}

TEST(QasmDeath, UnknownGate)
{
    EXPECT_DEATH(
        (void)fromQasm("OPENQASM 2.0;\nqreg q[1];\nbogus q[0];\n"),
        "unsupported gate");
}

TEST(QasmDeath, MalformedQubitIndex)
{
    EXPECT_DEATH(
        (void)fromQasm("OPENQASM 2.0;\nqreg q[2];\nh q[x];\n"),
        "expected integer");
}

TEST(QasmDeath, GateBeforeRegister)
{
    EXPECT_DEATH((void)fromQasm("OPENQASM 2.0;\nh q[0];\n"),
                 "gate before qreg");
}

TEST(QasmDeath, UnknownRegisterName)
{
    EXPECT_DEATH(
        (void)fromQasm("OPENQASM 2.0;\nqreg q[2];\nh r[0];\n"),
        "unknown register");
}

} // namespace
} // namespace qgpu
