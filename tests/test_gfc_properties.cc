/**
 * @file
 * GFC codec property/fuzz tests: deterministic randomized roundtrips
 * over amplitude-like payloads (dense random, sparse, denormal, ±0,
 * ±Inf, NaN) across lane/segment configurations, the documented size
 * bound for all-zero input, and byte-identity of the serial and
 * thread-pool compression paths.
 */

#include <bit>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "compress/gfc.hh"

namespace qgpu
{
namespace
{

void
expectRoundTrip(const GfcCodec &codec,
                const std::vector<double> &data)
{
    const CompressedBlock block =
        codec.compress(data.data(), data.size());
    ASSERT_EQ(block.numDoubles, data.size());
    // The size fast path must agree with the materialized stream.
    ASSERT_EQ(codec.compressedSize(data.data(), data.size()),
              block.compressedBytes());
    std::vector<double> out(data.size(), -7.0);
    codec.decompress(block, out.data());
    for (std::size_t i = 0; i < data.size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(data[i]),
                  std::bit_cast<std::uint64_t>(out[i]))
            << "index " << i << " of " << data.size();
    }
}

/** NaN-free amplitude-like value: finite, mixed magnitudes. */
double
randomAmplitudeValue(Rng &rng)
{
    switch (rng.nextBelow(6)) {
      case 0: return 0.0;
      case 1: return -0.0;
      case 2:
        // Denormal range.
        return static_cast<double>(rng.nextBelow(1000) + 1) *
               std::numeric_limits<double>::denorm_min();
      case 3:
        // Tiny normal magnitudes, signs mixed.
        return (rng.nextBool(0.5) ? 1.0 : -1.0) *
               std::ldexp(rng.nextDouble(), -900);
      case 4:
        // A shared magnitude, as in structured states.
        return rng.nextBool(0.5) ? 0.0883883476483184
                                 : -0.0883883476483184;
      default: return rng.nextDouble() * 2.0 - 1.0;
    }
}

TEST(GfcProperties, FuzzRoundTripAcrossConfigs)
{
    const int warps[] = {1, 3, 32};
    const int segments[] = {1, 2, 32};
    Rng rng(20260806);
    for (int iter = 0; iter < 60; ++iter) {
        const int warp = warps[rng.nextBelow(3)];
        const int segs = segments[rng.nextBelow(3)];
        const std::size_t count = rng.nextBelow(700);
        std::vector<double> data(count);
        for (auto &v : data)
            v = randomAmplitudeValue(rng);
        GfcCodec codec(warp, segs);
        expectRoundTrip(codec, data);
    }
}

TEST(GfcProperties, SparseBlocksRoundTripAndCompress)
{
    // Pruning leaves blocks that are almost entirely zero; GFC must
    // both preserve and shrink them.
    Rng rng(11);
    for (const double density : {0.0, 0.01, 0.1}) {
        std::vector<double> data(2048, 0.0);
        for (auto &v : data)
            if (rng.nextBool(density))
                v = rng.nextDouble() - 0.5;
        GfcCodec codec(32, 1);
        expectRoundTrip(codec, data);
        const CompressedBlock block =
            codec.compress(data.data(), data.size());
        if (density <= 0.01) {
            EXPECT_GT(block.ratio(), 2.0) << density;
        }
    }
}

TEST(GfcProperties, DenormalAndSignedZeroBlocks)
{
    // Denormal payloads have near-empty high bytes; ±0 differ only
    // in the sign bit. Both stress the residual sign handling.
    std::vector<double> data;
    for (int i = 0; i < 257; ++i) {
        data.push_back((i % 2 ? 1.0 : -1.0) *
                       static_cast<double>(i) *
                       std::numeric_limits<double>::denorm_min());
        data.push_back(i % 3 ? 0.0 : -0.0);
    }
    for (const int segs : {1, 4}) {
        GfcCodec codec(8, segs);
        expectRoundTrip(codec, data);
    }
}

TEST(GfcProperties, AllZeroSizeBound)
{
    // Documented bound: a zero double's residual is zero, costing one
    // 4-bit prefix nibble plus one payload byte, i.e. 1.5 bytes per
    // double. Nibble packing rounds up to a whole byte once per
    // segment, and the stream adds headerBytes(count) of fixed
    // framing. So:
    //   compressed <= header + ceil(1.5 * count) + num_segments
    for (const int segs : {1, 2, 32}) {
        GfcCodec codec(32, segs);
        for (const std::size_t count :
             {std::size_t{1}, std::size_t{31}, std::size_t{32},
              std::size_t{1000}, std::size_t{4096}}) {
            const std::vector<double> zeros(count, 0.0);
            const CompressedBlock block =
                codec.compress(zeros.data(), zeros.size());
            const std::uint64_t bound =
                codec.headerBytes(count) +
                (3 * count + 1) / 2 +
                static_cast<std::uint64_t>(segs);
            EXPECT_LE(block.compressedBytes(), bound)
                << "segments " << segs << ", count " << count;
            expectRoundTrip(codec, zeros);
        }
    }
}

TEST(GfcProperties, InfAndNanPayloadsRoundTripBitExactly)
{
    // Residuals are computed on raw 64-bit patterns, so the codec is
    // lossless even for values amplitude data should never contain:
    // infinities and NaNs (including non-default payload bits, which
    // arithmetic would silently canonicalize -- only a bit-pattern
    // comparison catches that).
    const double qnan = std::numeric_limits<double>::quiet_NaN();
    const double payload_nan = std::bit_cast<double>(
        std::bit_cast<std::uint64_t>(qnan) | 0xdeadbeefull);
    const double neg_nan = std::bit_cast<double>(
        std::bit_cast<std::uint64_t>(qnan) | (1ull << 63));
    const double inf = std::numeric_limits<double>::infinity();

    std::vector<double> data;
    Rng rng(404);
    for (int i = 0; i < 300; ++i) {
        switch (i % 6) {
          case 0: data.push_back(inf); break;
          case 1: data.push_back(-inf); break;
          case 2: data.push_back(qnan); break;
          case 3: data.push_back(payload_nan); break;
          case 4: data.push_back(neg_nan); break;
          default: data.push_back(randomAmplitudeValue(rng)); break;
        }
    }
    for (const int segs : {1, 4, 32}) {
        GfcCodec codec(8, segs);
        expectRoundTrip(codec, data);
    }
}

TEST(GfcProperties, SerialAndParallelStreamsAreByteIdentical)
{
    // The engine records sender-side checksums over compressed bytes
    // (fault/integrity.hh), so the parallel compression path must
    // produce the exact stream of the serial one, not merely a stream
    // that decodes to the same values.
    Rng rng(31337);
    std::vector<double> data(4099);
    for (auto &v : data)
        v = randomAmplitudeValue(rng);

    for (const int segs : {1, 32}) {
        const GfcCodec codec(32, segs);
        setSimThreads(1);
        const CompressedBlock serial =
            codec.compress(data.data(), data.size());
        setSimThreads(4);
        const CompressedBlock parallel =
            codec.compress(data.data(), data.size());
        EXPECT_EQ(serial.bytes, parallel.bytes)
            << "segments " << segs;

        // Parallel decode of the serial stream is bit-exact too.
        std::vector<double> out(data.size(), -7.0);
        codec.decompress(serial, out.data());
        setSimThreads(1);
        for (std::size_t i = 0; i < data.size(); ++i)
            ASSERT_EQ(std::bit_cast<std::uint64_t>(data[i]),
                      std::bit_cast<std::uint64_t>(out[i]))
                << "segments " << segs << ", index " << i;
    }
}

TEST(GfcProperties, PayloadSizePlusHeaderIsTotal)
{
    Rng rng(5);
    std::vector<double> data(513);
    for (auto &v : data)
        v = randomAmplitudeValue(rng);
    GfcCodec codec(32, 4);
    EXPECT_EQ(codec.headerBytes(data.size()) +
                  codec.compressedPayloadSize(data.data(),
                                              data.size()),
              codec.compressedSize(data.data(), data.size()));
}

// ---------------------------------------------------------------------
// fp32 lane (GfcCodec::compressF32 and friends): the same stream
// layout over 32-bit words, mirroring the f64 property suite above.
// ---------------------------------------------------------------------

void
expectRoundTripF32(const GfcCodec &codec,
                   const std::vector<float> &data)
{
    const CompressedBlock block =
        codec.compressF32(data.data(), data.size());
    ASSERT_EQ(block.numDoubles, data.size());
    ASSERT_TRUE(block.f32);
    ASSERT_EQ(codec.compressedSizeF32(data.data(), data.size()),
              block.compressedBytes());
    std::vector<float> out(data.size(), -7.0f);
    codec.decompressF32(block, out.data());
    for (std::size_t i = 0; i < data.size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(data[i]),
                  std::bit_cast<std::uint32_t>(out[i]))
            << "index " << i << " of " << data.size();
    }
}

float
randomAmplitudeValueF32(Rng &rng)
{
    switch (rng.nextBelow(6)) {
      case 0: return 0.0f;
      case 1: return -0.0f;
      case 2:
        return static_cast<float>(rng.nextBelow(1000) + 1) *
               std::numeric_limits<float>::denorm_min();
      case 3:
        return (rng.nextBool(0.5) ? 1.0f : -1.0f) *
               std::ldexp(static_cast<float>(rng.nextDouble()), -100);
      case 4:
        return rng.nextBool(0.5) ? 0.08838835f : -0.08838835f;
      default:
        return static_cast<float>(rng.nextDouble()) * 2.0f - 1.0f;
    }
}

TEST(GfcPropertiesF32, FuzzRoundTripAcrossConfigs)
{
    const int warps[] = {1, 3, 32};
    const int segments[] = {1, 2, 32};
    Rng rng(20260809);
    for (int iter = 0; iter < 60; ++iter) {
        const int warp = warps[rng.nextBelow(3)];
        const int segs = segments[rng.nextBelow(3)];
        const std::size_t count = rng.nextBelow(700);
        std::vector<float> data(count);
        for (auto &v : data)
            v = randomAmplitudeValueF32(rng);
        GfcCodec codec(warp, segs);
        expectRoundTripF32(codec, data);
    }
}

TEST(GfcPropertiesF32, InfAndNanPayloadsRoundTripBitExactly)
{
    const float qnan = std::numeric_limits<float>::quiet_NaN();
    const float payload_nan = std::bit_cast<float>(
        std::bit_cast<std::uint32_t>(qnan) | 0xbeefu);
    const float neg_nan = std::bit_cast<float>(
        std::bit_cast<std::uint32_t>(qnan) | (1u << 31));
    const float inf = std::numeric_limits<float>::infinity();

    std::vector<float> data;
    Rng rng(405);
    for (int i = 0; i < 300; ++i) {
        switch (i % 6) {
          case 0: data.push_back(inf); break;
          case 1: data.push_back(-inf); break;
          case 2: data.push_back(qnan); break;
          case 3: data.push_back(payload_nan); break;
          case 4: data.push_back(neg_nan); break;
          default:
            data.push_back(randomAmplitudeValueF32(rng));
            break;
        }
    }
    for (const int segs : {1, 4, 32}) {
        GfcCodec codec(8, segs);
        expectRoundTripF32(codec, data);
    }
}

TEST(GfcPropertiesF32, SerialAndParallelStreamsAreByteIdentical)
{
    Rng rng(31338);
    std::vector<float> data(4099);
    for (auto &v : data)
        v = randomAmplitudeValueF32(rng);

    for (const int segs : {1, 32}) {
        const GfcCodec codec(32, segs);
        setSimThreads(1);
        const CompressedBlock serial =
            codec.compressF32(data.data(), data.size());
        setSimThreads(4);
        const CompressedBlock parallel =
            codec.compressF32(data.data(), data.size());
        EXPECT_EQ(serial.bytes, parallel.bytes)
            << "segments " << segs;

        std::vector<float> out(data.size(), -7.0f);
        codec.decompressF32(serial, out.data());
        setSimThreads(1);
        for (std::size_t i = 0; i < data.size(); ++i)
            ASSERT_EQ(std::bit_cast<std::uint32_t>(data[i]),
                      std::bit_cast<std::uint32_t>(out[i]))
                << "segments " << segs << ", index " << i;
    }
}

TEST(GfcPropertiesF32, PayloadSizePlusHeaderIsTotal)
{
    Rng rng(6);
    std::vector<float> data(513);
    for (auto &v : data)
        v = randomAmplitudeValueF32(rng);
    GfcCodec codec(32, 4);
    EXPECT_EQ(codec.headerBytes(data.size()) +
                  codec.compressedPayloadSizeF32(data.data(),
                                                 data.size()),
              codec.compressedSizeF32(data.data(), data.size()));
}

TEST(GfcPropertiesF32, AmpRoundTripEqualsQuantizedInput)
{
    // compressAmpsF32 narrows each (pre-quantized) component to
    // float; decompressAmpsF32 widens exactly. So the round trip
    // reproduces quantizeAmpF32 of the input bit-for-bit.
    Rng rng(77);
    std::vector<Amp> amps(300);
    for (auto &a : amps)
        a = quantizeAmpF32(Amp(rng.nextDouble() - 0.5,
                               rng.nextDouble() - 0.5));
    GfcCodec codec(32, 4);
    const CompressedBlock block =
        codec.compressAmpsF32(amps.data(), amps.size());
    ASSERT_TRUE(block.f32);
    ASSERT_EQ(block.numDoubles, amps.size() * 2);
    std::vector<Amp> out(amps.size());
    codec.decompressAmpsF32(block, out.data());
    for (std::size_t i = 0; i < amps.size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(amps[i].real()),
                  std::bit_cast<std::uint64_t>(out[i].real()))
            << "amp " << i;
        ASSERT_EQ(std::bit_cast<std::uint64_t>(amps[i].imag()),
                  std::bit_cast<std::uint64_t>(out[i].imag()))
            << "amp " << i;
    }
}

TEST(GfcPropertiesF32, LaneFlagGuardsPanicOnMismatch)
{
    // Feeding a stream to the wrong lane's decoder would silently
    // misparse word widths; both directions must panic instead.
    GfcCodec codec(8, 2);
    const std::vector<float> floats(64, 0.25f);
    const std::vector<double> doubles(64, 0.25);
    const CompressedBlock narrow =
        codec.compressF32(floats.data(), floats.size());
    const CompressedBlock wide =
        codec.compress(doubles.data(), doubles.size());
    std::vector<double> out64(64);
    std::vector<float> out32(64);
    EXPECT_DEATH(codec.decompress(narrow, out64.data()), "f32");
    EXPECT_DEATH(codec.decompressF32(wide, out32.data()), "f32");
}

} // namespace
} // namespace qgpu
