/**
 * @file
 * Tests for the fusion+streaming extension: fused streaming stays
 * exact and reduces both passes and transferred bytes.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{
namespace
{

class FusedStreaming : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FusedStreaming, ExactWithFusionEnabled)
{
    const int n = 9;
    const Circuit c = circuits::makeBenchmark(GetParam(), n);
    Machine m = harness::benchMachine(n);
    ExecOptions o;
    o.fuseWidth = 3;
    const RunResult r = harness::runOn("qgpu", m, c, o);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-10)
        << GetParam();
    EXPECT_LT(r.stats.get("gates.fused"),
              r.stats.get("gates.original"));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FusedStreaming,
    ::testing::Values("hchain", "rqc", "qaoa", "gs", "hlf", "qft",
                      "iqp", "qf", "bv"));

TEST(FusedStreaming, CutsTransfersOnDeepCircuits)
{
    // hchain streams the full state once per gate; fusing 3-4 gates
    // per pass must cut H2D bytes by a similar factor.
    const int n = 12;
    const Circuit c = circuits::makeBenchmark("hchain", n);
    ExecOptions o;
    o.keepState = false;

    Machine m1 = harness::benchMachine(n);
    const RunResult plain = harness::runOn("qgpu", m1, c, o);

    Machine m2 = harness::benchMachine(n);
    o.fuseWidth = 4;
    const RunResult fused = harness::runOn("qgpu", m2, c, o);

    EXPECT_LT(fused.stats.get(statkeys::bytesH2d),
              0.6 * plain.stats.get(statkeys::bytesH2d));
    EXPECT_LT(fused.totalTime, 0.7 * plain.totalTime);
}

TEST(FusedStreaming, WorksWithMultiGpu)
{
    const int n = 9;
    const Circuit c = circuits::makeBenchmark("qft", n);
    Machine m =
        machines::makeScaled(n, machines::p4(), 1.0 / 8.0, 3);
    ExecOptions o;
    o.fuseWidth = 3;
    const RunResult r = harness::runOn("qgpu", m, c, o);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-10);
}

} // namespace
} // namespace qgpu
