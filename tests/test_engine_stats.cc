/**
 * @file
 * Engine accounting invariants: determinism, byte conservation,
 * overlap semantics, and counter consistency across versions.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace qgpu
{
namespace
{

RunResult
runQuick(const std::string &engine, const std::string &family,
         int n = 11)
{
    Machine m = harness::benchMachine(n);
    ExecOptions o;
    o.keepState = false;
    return harness::runOn(engine, m,
                          circuits::makeBenchmark(family, n), o);
}

TEST(EngineStats, DeterministicAcrossRuns)
{
    for (const char *engine : {"baseline", "qgpu", "cpu"}) {
        const RunResult a = runQuick(engine, "qft");
        const RunResult b = runQuick(engine, "qft");
        EXPECT_DOUBLE_EQ(a.totalTime, b.totalTime) << engine;
        for (const auto &key : a.stats.names())
            EXPECT_DOUBLE_EQ(a.stats.get(key), b.stats.get(key))
                << engine << " " << key;
    }
}

TEST(EngineStats, StreamingBytesBalance)
{
    // Without pruning or compression, the streaming engines move the
    // same amount in as out (every chunk round-trips).
    for (const char *engine : {"naive", "overlap"}) {
        const RunResult r = runQuick(engine, "hlf");
        EXPECT_DOUBLE_EQ(r.stats.get(statkeys::bytesH2d),
                         r.stats.get(statkeys::bytesD2h))
            << engine;
        EXPECT_GT(r.stats.get(statkeys::bytesH2d), 0.0);
    }
}

TEST(EngineStats, PrunedPlusProcessedIsConstantPerGatePlan)
{
    // With a fixed chunk size, chunks.pruned + chunks.processed must
    // equal the total chunk visits an unpruned run performs (dynamic
    // chunk sizing changes the geometry, so pin it here).
    Machine m1 = harness::benchMachine(11);
    Machine m2 = harness::benchMachine(11);
    ExecOptions o;
    o.keepState = false;
    o.dynamicChunks = false;
    const Circuit c = circuits::makeBenchmark("iqp", 11);
    const RunResult pruned = harness::runOn("pruning", m1, c, o);
    const RunResult plain = harness::runOn("overlap", m2, c, o);
    EXPECT_DOUBLE_EQ(
        pruned.stats.get(statkeys::chunksPruned) +
            pruned.stats.get(statkeys::chunksProcessed),
        plain.stats.get(statkeys::chunksProcessed));
}

TEST(EngineStats, TransferMetricSemantics)
{
    // Serial engines report transfer = h2d + d2h; overlapped engines
    // report the exposed max of the two.
    const RunResult naive = runQuick("naive", "gs");
    EXPECT_DOUBLE_EQ(naive.stats.get(statkeys::transfer),
                     naive.stats.get(statkeys::h2d) +
                         naive.stats.get(statkeys::d2h));

    const RunResult overlap = runQuick("overlap", "gs");
    EXPECT_DOUBLE_EQ(
        overlap.stats.get(statkeys::transfer),
        std::max(overlap.stats.get(statkeys::h2d),
                 overlap.stats.get(statkeys::d2h)));
}

TEST(EngineStats, TotalTimeBoundsComponents)
{
    for (const char *engine :
         {"baseline", "naive", "overlap", "pruning", "reorder",
          "qgpu"}) {
        const RunResult r = runQuick(engine, "qft");
        EXPECT_GE(r.totalTime,
                  r.stats.get(statkeys::deviceCompute))
            << engine;
        EXPECT_GE(r.totalTime, r.stats.get(statkeys::hostCompute))
            << engine;
        EXPECT_GE(r.totalTime * 1.0000001,
                  std::max(r.stats.get(statkeys::h2d),
                           r.stats.get(statkeys::d2h)))
            << engine;
        EXPECT_DOUBLE_EQ(r.stats.get(statkeys::totalTime),
                         r.totalTime)
            << engine;
    }
}

TEST(EngineStats, FlopsMatchAcrossStreamingVersions)
{
    // Naive and overlap perform identical device work; pruning can
    // only reduce it.
    const RunResult naive = runQuick("naive", "bv");
    const RunResult overlap = runQuick("overlap", "bv");
    const RunResult pruning = runQuick("pruning", "bv");
    EXPECT_DOUBLE_EQ(naive.stats.get(statkeys::flopsDevice),
                     overlap.stats.get(statkeys::flopsDevice));
    EXPECT_LE(pruning.stats.get(statkeys::flopsDevice),
              overlap.stats.get(statkeys::flopsDevice));
}

TEST(EngineStats, BaselineAllocationCounters)
{
    Machine m = harness::benchMachine(11);
    ExecOptions o;
    o.keepState = false;
    o.targetChunks = 64;
    const RunResult r = harness::runOn(
        "baseline", m, circuits::makeBenchmark("gs", 11), o);
    EXPECT_DOUBLE_EQ(r.stats.get("chunks.total"), 64.0);
    EXPECT_DOUBLE_EQ(r.stats.get("chunks.on_device") +
                         r.stats.get("chunks.on_host"),
                     64.0);
    // 1/16 device fraction -> 4 of 64 chunks resident.
    EXPECT_DOUBLE_EQ(r.stats.get("chunks.on_device"), 4.0);
}

TEST(EngineStats, CompressionRatioReportedConsistently)
{
    const RunResult r = runQuick("qgpu", "gs");
    const double in = r.stats.get(statkeys::compressIn);
    const double out = r.stats.get(statkeys::compressOut);
    ASSERT_GT(in, 0.0);
    ASSERT_GT(out, 0.0);
    // Compressed D2H bytes cannot exceed raw.
    EXPECT_LE(out, in);
}

TEST(EngineStats, SyncChargedOnlyBySerialEngines)
{
    EXPECT_GT(runQuick("baseline", "gs").stats.get(statkeys::sync),
              0.0);
    EXPECT_GT(runQuick("naive", "gs").stats.get(statkeys::sync),
              0.0);
    EXPECT_DOUBLE_EQ(
        runQuick("overlap", "gs").stats.get(statkeys::sync), 0.0);
}

} // namespace
} // namespace qgpu
