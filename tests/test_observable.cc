/**
 * @file
 * Pauli-observable tests: expectation values against hand-computed
 * states and operator algebra identities.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "statevec/observable.hh"

namespace qgpu
{
namespace
{

TEST(PauliString, ParseAndPrint)
{
    const PauliString p("XIZ", 0);
    EXPECT_EQ(p.toString(), "X0*Z2");
    EXPECT_EQ(p.maxQubit(), 2);

    const PauliString shifted("ZZ", 3);
    EXPECT_EQ(shifted.toString(), "Z3*Z4");
}

TEST(PauliString, IdentityExpectationIsOne)
{
    StateVector s(3);
    s.apply(Gate(GateKind::H, {1}));
    EXPECT_NEAR(PauliString().expectation(s), 1.0, 1e-14);
}

TEST(PauliString, ZOnBasisStates)
{
    StateVector s(2);
    PauliString z0("Z");
    EXPECT_NEAR(z0.expectation(s), 1.0, 1e-15); // |00>
    s.apply(Gate(GateKind::X, {0}));
    EXPECT_NEAR(z0.expectation(s), -1.0, 1e-15); // |01>
}

TEST(PauliString, XOnPlusMinus)
{
    StateVector plus(1);
    plus.apply(Gate(GateKind::H, {0}));
    EXPECT_NEAR(PauliString("X").expectation(plus), 1.0, 1e-14);

    StateVector minus(1);
    minus.apply(Gate(GateKind::X, {0}));
    minus.apply(Gate(GateKind::H, {0}));
    EXPECT_NEAR(PauliString("X").expectation(minus), -1.0, 1e-14);
}

TEST(PauliString, YEigenstate)
{
    // |+i> = (|0> + i|1>)/sqrt(2) = S H |0>.
    StateVector s(1);
    s.apply(Gate(GateKind::H, {0}));
    s.apply(Gate(GateKind::S, {0}));
    EXPECT_NEAR(PauliString("Y").expectation(s), 1.0, 1e-14);
}

TEST(PauliString, ZzOnBell)
{
    Circuit c(2);
    c.h(0).cx(0, 1);
    const StateVector bell = simulateReference(c);
    EXPECT_NEAR(PauliString("ZZ").expectation(bell), 1.0, 1e-14);
    EXPECT_NEAR(PauliString("XX").expectation(bell), 1.0, 1e-14);
    EXPECT_NEAR(PauliString("Z").expectation(bell), 0.0, 1e-14);
}

TEST(PauliString, RotationTracksBlochVector)
{
    // After RX(theta), <Z> = cos(theta), <Y> = -sin(theta).
    for (const double theta : {0.0, 0.4, 1.2, 2.8}) {
        StateVector s(1);
        s.apply(Gate(GateKind::RX, {0}, {theta}));
        EXPECT_NEAR(PauliString("Z").expectation(s),
                    std::cos(theta), 1e-12);
        EXPECT_NEAR(PauliString("Y").expectation(s),
                    -std::sin(theta), 1e-12);
    }
}

TEST(Observable, IsingChainGroundFieldLimit)
{
    // For J = 0, h = 1 the ground state is |+>^n with energy -n.
    const int n = 5;
    Circuit c(n);
    for (int q = 0; q < n; ++q)
        c.h(q);
    const StateVector s = simulateReference(c);
    const Observable h = Observable::isingChain(n, 0.0, 1.0);
    EXPECT_NEAR(h.expectation(s), -n, 1e-12);
}

TEST(Observable, IsingChainCouplingLimit)
{
    // For h = 0, J = 1 the all-zero state has energy -(n-1).
    const int n = 6;
    const StateVector s(n);
    const Observable h = Observable::isingChain(n, 1.0, 0.0);
    EXPECT_NEAR(h.expectation(s), -(n - 1), 1e-12);
}

TEST(Observable, LinearInTerms)
{
    StateVector s(2);
    s.apply(Gate(GateKind::H, {0}));
    Observable h;
    h.add(2.0, PauliString("X"));
    h.add(-3.0, PauliString("Z", 1));
    EXPECT_NEAR(h.expectation(s), 2.0 * 1.0 - 3.0 * 1.0, 1e-12);
    EXPECT_EQ(h.numTerms(), 2u);
}

TEST(ObservableDeath, DuplicateQubit)
{
    PauliString p;
    p.add(Pauli::X, 1);
    EXPECT_DEATH(p.add(Pauli::Z, 1), "duplicate");
}

} // namespace
} // namespace qgpu
