/**
 * @file
 * Thread-count determinism: the parallel execution layer fans
 * independent work items (chunk groups, amplitude ranges, codec
 * ranges) across the pool with no cross-item floating-point
 * accumulation, so every engine and every hot path must produce
 * BIT-IDENTICAL results at any worker count. Tolerance here is zero
 * by design — "close enough" would hide a partitioning bug.
 *
 * Also hosts the overlapping-apply stress test that the
 * ThreadSanitizer pass (scripts/check.sh --tsan) leans on.
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "common/thread_pool.hh"
#include "compress/gfc.hh"
#include "harness/experiment.hh"
#include "statevec/apply.hh"

namespace qgpu
{
namespace
{

int
hardwareCount()
{
    return std::max(2, ThreadPool::hardwareThreads());
}

/** Thread counts every determinism case sweeps (vs 1-thread). */
std::vector<int>
sweptThreadCounts()
{
    std::vector<int> counts = {2, 4};
    const int hw = hardwareCount();
    if (hw != 2 && hw != 4)
        counts.push_back(hw);
    return counts;
}

class EngineThreadDeterminism
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
  protected:
    void TearDown() override { setSimThreads(1); }
};

TEST_P(EngineThreadDeterminism, BitIdenticalAcrossThreadCounts)
{
    const auto &[family, engine] = GetParam();
    const int n = 8;
    const Circuit circuit = circuits::makeBenchmark(family, n);

    ExecOptions o;
    o.targetChunks = 16;
    o.codecSampleChunks = 0;

    setSimThreads(1);
    Machine ref_machine = harness::benchMachine(n);
    const RunResult ref =
        harness::makeEngine(engine, ref_machine, o)->run(circuit);

    for (const int threads : sweptThreadCounts()) {
        setSimThreads(threads);
        Machine machine = harness::benchMachine(n);
        const RunResult got =
            harness::makeEngine(engine, machine, o)->run(circuit);
        setSimThreads(1);

        ASSERT_EQ(got.state.size(), ref.state.size());
        for (Index i = 0; i < ref.state.size(); ++i)
            ASSERT_EQ(ref.state[i], got.state[i])
                << engine << " on " << family << " diverged at amp "
                << i << " with " << threads << " threads";
        // The virtual-time schedule is host bookkeeping and must not
        // depend on the host thread count either.
        EXPECT_DOUBLE_EQ(ref.totalTime, got.totalTime)
            << engine << " on " << family << " at " << threads;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAndEngines, EngineThreadDeterminism,
    ::testing::Combine(
        ::testing::ValuesIn(circuits::benchmarkNames()),
        ::testing::Values("baseline", "naive", "overlap", "pruning",
                          "reorder", "qgpu", "cpu", "qsim", "qdk")),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               std::get<1>(info.param);
    });

class ChunkedApplyDeterminism
    : public ::testing::TestWithParam<std::string>
{
  protected:
    void TearDown() override { setSimThreads(1); }
};

TEST_P(ChunkedApplyDeterminism, BitIdenticalAcrossThreadCounts)
{
    const std::string family = GetParam();
    const int n = 12;
    const Circuit circuit = circuits::makeBenchmark(family, n);

    setSimThreads(1);
    ChunkedStateVector ref(n, n - 4); // 16 chunks
    applyCircuitChunked(ref, circuit);

    for (const int threads : sweptThreadCounts()) {
        setSimThreads(threads);
        ChunkedStateVector got(n, n - 4);
        applyCircuitChunked(got, circuit);
        setSimThreads(1);

        for (Index c = 0; c < ref.numChunks(); ++c) {
            const auto &want = ref.chunk(c);
            const auto &have = got.chunk(c);
            for (Index i = 0; i < static_cast<Index>(want.size());
                 ++i)
                ASSERT_EQ(want[i], have[i])
                    << family << " chunk " << c << " amp " << i
                    << " with " << threads << " threads";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ChunkedApplyDeterminism,
    ::testing::ValuesIn(circuits::benchmarkNames()));

class GfcThreadDeterminism : public ::testing::Test
{
  protected:
    void TearDown() override { setSimThreads(1); }
};

TEST_F(GfcThreadDeterminism, ParallelStreamIsByteIdentical)
{
    // Large enough to split into several codec ranges.
    const StateVector s =
        simulateReference(circuits::makeBenchmark("gs", 16));
    const double *data =
        reinterpret_cast<const double *>(s.amplitudes().data());
    const std::uint64_t count = 2 * s.size();

    for (const int segments : {1, 32}) {
        const GfcCodec codec(32, segments);
        setSimThreads(1);
        const CompressedBlock serial = codec.compress(data, count);
        const std::uint64_t serial_size =
            codec.compressedSize(data, count);
        EXPECT_EQ(serial.bytes.size(), serial_size);

        for (const int threads : sweptThreadCounts()) {
            setSimThreads(threads);
            const CompressedBlock parallel =
                codec.compress(data, count);
            EXPECT_EQ(serial.bytes, parallel.bytes)
                << segments << " segments, " << threads
                << " threads";
            EXPECT_EQ(codec.compressedSize(data, count),
                      serial_size);

            // Parallel decompression reconstructs bit-exactly.
            std::vector<double> out(count);
            codec.decompress(serial, out.data());
            for (std::uint64_t i = 0; i < count; ++i)
                ASSERT_EQ(data[i], out[i])
                    << "element " << i << " with " << threads
                    << " threads";
            setSimThreads(1);
        }
    }
}

TEST_F(GfcThreadDeterminism, BatchMatchesPerBlockCalls)
{
    const StateVector s =
        simulateReference(circuits::makeBenchmark("qft", 14));
    const double *data =
        reinterpret_cast<const double *>(s.amplitudes().data());
    const std::uint64_t count = 2 * s.size();
    const GfcCodec codec;

    constexpr std::size_t kBlocks = 8;
    const std::uint64_t per = count / kBlocks;
    std::vector<DoubleRun> runs;
    for (std::size_t b = 0; b < kBlocks; ++b)
        runs.push_back({data + b * per, per});

    setSimThreads(hardwareCount());
    const auto blocks = compressBatch(codec, runs);
    ASSERT_EQ(blocks.size(), kBlocks);
    setSimThreads(1);
    for (std::size_t b = 0; b < kBlocks; ++b) {
        const CompressedBlock want =
            codec.compress(runs[b].data, runs[b].count);
        EXPECT_EQ(want.bytes, blocks[b].bytes) << "block " << b;
    }

    std::vector<double> out(count);
    std::vector<std::pair<const CompressedBlock *, double *>> items;
    for (std::size_t b = 0; b < kBlocks; ++b)
        items.emplace_back(&blocks[b], out.data() + b * per);
    setSimThreads(hardwareCount());
    decompressBatch(codec, items);
    setSimThreads(1);
    for (std::uint64_t i = 0; i < kBlocks * per; ++i)
        ASSERT_EQ(data[i], out[i]) << "element " << i;
}

TEST(ThreadStress, OverlappingChunkedAppliesOnSharedPool)
{
    // Several external threads each run chunked applies with the
    // pool engaged, concurrently. States are disjoint, the pool and
    // its queue are shared: this is the test the TSan pass hammers.
    setSimThreads(4);
    constexpr int kDrivers = 4;
    const Circuit circuit = circuits::makeBenchmark("qft", 10);
    std::atomic<int> mismatches{0};

    setSimThreads(1);
    ChunkedStateVector ref(10, 6);
    applyCircuitChunked(ref, circuit);
    setSimThreads(4);

    std::vector<std::thread> drivers;
    for (int d = 0; d < kDrivers; ++d) {
        drivers.emplace_back([&] {
            for (int round = 0; round < 3; ++round) {
                ChunkedStateVector state(10, 6);
                applyCircuitChunked(state, circuit);
                for (Index c = 0; c < ref.numChunks(); ++c)
                    if (state.chunk(c) != ref.chunk(c))
                        ++mismatches;
            }
        });
    }
    for (auto &t : drivers)
        t.join();
    setSimThreads(1);
    EXPECT_EQ(mismatches.load(), 0);
}

} // namespace
} // namespace qgpu
