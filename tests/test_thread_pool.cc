/**
 * @file
 * Tests for the persistent thread pool: task execution, TaskGroup
 * completion scoping, exception propagation (first error wins, every
 * task still runs), nesting, and the help-based wait that keeps a
 * zero-worker pool live.
 */

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "common/thread_pool.hh"

namespace qgpu
{
namespace
{

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.numWorkers(), 3);
    std::atomic<int> done{0};
    TaskGroup group(pool);
    for (int i = 0; i < 100; ++i)
        group.run([&done] { ++done; });
    group.wait();
    EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ZeroWorkerPoolRunsTasksOnWaiter)
{
    // With no workers, the waiting thread itself drains the queue.
    ThreadPool pool(0);
    EXPECT_EQ(pool.numWorkers(), 0);
    std::atomic<int> done{0};
    TaskGroup group(pool);
    for (int i = 0; i < 10; ++i)
        group.run([&done] { ++done; });
    group.wait();
    EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, EnsureWorkersGrowsButNeverShrinks)
{
    ThreadPool pool(1);
    pool.ensureWorkers(3);
    EXPECT_EQ(pool.numWorkers(), 3);
    pool.ensureWorkers(2);
    EXPECT_EQ(pool.numWorkers(), 3);
}

TEST(ThreadPool, GroupWaitRethrowsFirstExceptionAfterAllTasksRan)
{
    ThreadPool pool(2);
    std::atomic<int> completed{0};
    TaskGroup group(pool);
    for (int i = 0; i < 50; ++i) {
        group.run([&completed, i] {
            if (i == 17)
                throw std::runtime_error("task 17 failed");
            ++completed;
        });
    }
    EXPECT_THROW(group.wait(), std::runtime_error);
    // Every non-throwing task still ran: an error does not cancel
    // the group, it is reported after completion.
    EXPECT_EQ(completed.load(), 49);

    // The pool stays usable after a failed group.
    std::atomic<int> done{0};
    TaskGroup again(pool);
    again.run([&done] { ++done; });
    again.wait();
    EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPool, GlobalPoolIsASingleton)
{
    EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

TEST(ParallelFor, PropagatesBodyExceptionAndStaysUsable)
{
    // Satellite: a throwing body must not strand workers or deadlock
    // the caller; the first exception surfaces on the calling thread.
    std::atomic<int> visited{0};
    const auto throwing = [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
            if (i == 1000)
                throw std::runtime_error("body failed");
            ++visited;
        }
    };
    EXPECT_THROW(parallelFor(0, 4096, 4, throwing, 16),
                 std::runtime_error);
    EXPECT_GT(visited.load(), 0);

    // The pool is fully drained: the next parallelFor is exact.
    std::vector<std::atomic<int>> hits(4096);
    parallelFor(
        0, hits.size(), 4,
        [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t i = lo; i < hi; ++i)
                ++hits[i];
        },
        16);
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, NestedCallsDoNotDeadlock)
{
    // Inner parallelFor from a worker task: the waiting task helps
    // drain the queue instead of blocking a worker slot.
    std::atomic<int> total{0};
    parallelFor(
        0, 8, 4,
        [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t i = lo; i < hi; ++i) {
                parallelFor(
                    0, 64, 4,
                    [&](std::uint64_t l, std::uint64_t h) {
                        total += static_cast<int>(h - l);
                    },
                    8);
            }
        },
        1);
    EXPECT_EQ(total.load(), 8 * 64);
}

TEST(ParallelFor, ManyConcurrentGroupsFromDistinctThreads)
{
    // Several external threads driving the shared global pool at
    // once: groups are independent completion scopes.
    constexpr int kThreads = 4;
    std::vector<std::thread> drivers;
    std::atomic<int> total{0};
    for (int t = 0; t < kThreads; ++t) {
        drivers.emplace_back([&total] {
            for (int round = 0; round < 10; ++round)
                parallelFor(
                    0, 256, 3,
                    [&](std::uint64_t lo, std::uint64_t hi) {
                        total += static_cast<int>(hi - lo);
                    },
                    16);
        });
    }
    for (auto &d : drivers)
        d.join();
    EXPECT_EQ(total.load(), kThreads * 10 * 256);
}

} // namespace
} // namespace qgpu
