/**
 * @file
 * Sweep scheduler and chunk-major executor coverage.
 *
 * The load-bearing contract is bit-identity: applySweepChunked over a
 * scheduled sweep must equal gate-by-gate applyGateChunked with zero
 * tolerance, for every circuit family, flat and chunked, pruned and
 * unpruned, at any thread count. "Close enough" would hide a
 * partitioning or skip-decision bug, so every comparison here is
 * operator== on the raw amplitudes.
 *
 * Also pins the scheduler's sweep-boundary rules (pairing change,
 * involvement advance, diagonal batching) and the sweep counters'
 * passes-over-the-state accounting.
 */

#include <cstddef>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "circuits/circuits.hh"
#include "common/metrics.hh"
#include "common/parallel.hh"
#include "prune/involvement.hh"
#include "sched/sweep.hh"
#include "statevec/apply.hh"

namespace qgpu
{
namespace
{

enum class PruneMode { Off, PerOp, NonDiagonal };

const char *
pruneModeName(PruneMode mode)
{
    switch (mode) {
      case PruneMode::Off: return "unpruned";
      case PruneMode::PerOp: return "perop";
      case PruneMode::NonDiagonal: return "nondiag";
    }
    return "?";
}

InvolvementPolicy
policyOf(PruneMode mode)
{
    return mode == PruneMode::NonDiagonal
               ? InvolvementPolicy::NonDiagonal
               : InvolvementPolicy::PerOp;
}

/** Gate-by-gate reference: applyGateChunked with the per-gate mask. */
void
runReference(ChunkedStateVector &state, const Circuit &circuit,
             PruneMode mode)
{
    InvolvementMask mask(circuit.numQubits(), policyOf(mode));
    const int chunk_bits = state.chunkBits();
    for (const Gate &gate : circuit.gates()) {
        if (mode == PruneMode::Off) {
            applyGateChunked(state, gate);
            continue;
        }
        applyGateChunked(state, gate, [&](Index c) {
            return !mask.chunkIsLive(c, chunk_bits);
        });
        mask.involve(gate);
    }
}

/** Sweep path: nextSweep driving applySweepChunked, mask advanced
 *  sweep-by-sweep exactly as the engines do. */
void
runSweeps(ChunkedStateVector &state, const Circuit &circuit,
          PruneMode mode)
{
    InvolvementMask mask(circuit.numQubits(), policyOf(mode));
    const int chunk_bits = state.chunkBits();
    const std::span<const Gate> gates{circuit.gates()};
    const ZeroPredicate zero =
        mode == PruneMode::Off
            ? ZeroPredicate{}
            : ZeroPredicate([&](Index c) {
                  return !mask.chunkIsLive(c, chunk_bits);
              });
    std::size_t at = 0;
    while (at < gates.size()) {
        const Sweep sw =
            nextSweep(gates, at, chunk_bits,
                      mode == PruneMode::Off ? nullptr : &mask);
        applySweepChunked(state,
                          gates.subspan(sw.begin, sw.size()),
                          sw.globalBits, zero);
        if (mode != PruneMode::Off)
            for (std::size_t i = sw.begin; i < sw.end; ++i)
                mask.involve(gates[i]);
        at = sw.end;
    }
}

class SweepDifferential
    : public ::testing::TestWithParam<
          std::tuple<std::string, bool, PruneMode, int>>
{
  protected:
    void TearDown() override { setSimThreads(1); }
};

TEST_P(SweepDifferential, BitIdenticalToGateByGate)
{
    const auto &[family, chunked, mode, threads] = GetParam();
    const int n = 10;
    const int chunk_bits = chunked ? n - 4 : n; // 16 chunks or flat
    const Circuit circuit = circuits::makeBenchmark(family, n);

    setSimThreads(1);
    ChunkedStateVector ref(n, chunk_bits);
    runReference(ref, circuit, mode);

    setSimThreads(threads);
    ChunkedStateVector got(n, chunk_bits);
    runSweeps(got, circuit, mode);
    setSimThreads(1);

    for (Index c = 0; c < ref.numChunks(); ++c) {
        const auto &want = ref.chunk(c);
        const auto &have = got.chunk(c);
        for (Index i = 0; i < static_cast<Index>(want.size()); ++i)
            ASSERT_EQ(want[i], have[i])
                << family << " chunk " << c << " amp " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SweepDifferential,
    ::testing::Combine(
        ::testing::ValuesIn(circuits::benchmarkNames()),
        ::testing::Bool(),
        ::testing::Values(PruneMode::Off, PruneMode::PerOp,
                          PruneMode::NonDiagonal),
        ::testing::Values(1, 2, 4)),
    [](const auto &info) {
        return std::get<0>(info.param) +
               (std::get<1>(info.param) ? "_chunked_" : "_flat_") +
               pruneModeName(std::get<2>(info.param)) + "_t" +
               std::to_string(std::get<3>(info.param));
    });

// ---------------------------------------------------------------------
// Scheduler boundary rules.

TEST(SweepScheduler, GateGlobalBits)
{
    const int chunk_bits = 4;
    // Diagonal gates never couple chunks, wherever the targets sit.
    EXPECT_TRUE(gateGlobalBits(Gate(GateKind::CZ, {4, 5}), chunk_bits)
                    .empty());
    // Chunk-local targets couple nothing.
    EXPECT_TRUE(gateGlobalBits(Gate(GateKind::CX, {0, 1}), chunk_bits)
                    .empty());
    EXPECT_EQ(gateGlobalBits(Gate(GateKind::CX, {0, 4}), chunk_bits),
              (std::vector<int>{0}));
    EXPECT_EQ(gateGlobalBits(Gate(GateKind::SWAP, {5, 4}), chunk_bits),
              (std::vector<int>{0, 1}));
}

TEST(SweepScheduler, PairingChangeClosesSweep)
{
    const int chunk_bits = 4;
    const std::vector<Gate> gates = {
        Gate(GateKind::CX, {0, 4}), // couples chunk-index bit 0
        Gate(GateKind::CX, {1, 4}), // same pairing: batches
        Gate(GateKind::CX, {0, 5}), // couples bit 1: new sweep
    };
    const Sweep first = nextSweep(gates, 0, chunk_bits);
    EXPECT_EQ(first.begin, 0u);
    EXPECT_EQ(first.end, 2u);
    EXPECT_EQ(first.globalBits, (std::vector<int>{0}));
    const Sweep second = nextSweep(gates, first.end, chunk_bits);
    EXPECT_EQ(second.end, 3u);
    EXPECT_EQ(second.globalBits, (std::vector<int>{1}));
}

TEST(SweepScheduler, ChunkLocalAndDiagonalGatesBatchFreely)
{
    const int chunk_bits = 4;
    // Chunk-local gates and diagonal gates (even with targets above
    // the boundary) refine any partition, so one cross-chunk gate in
    // the middle still yields a single sweep with its signature.
    const std::vector<Gate> gates = {
        Gate(GateKind::H, {0}),
        Gate(GateKind::CZ, {4, 5}), // diagonal: chunk-independent
        Gate(GateKind::CX, {0, 4}), // donates G = {0}
        Gate(GateKind::H, {2}),
        Gate(GateKind::CX, {2, 4}), // same pairing
    };
    const Sweep sweep = nextSweep(gates, 0, chunk_bits);
    EXPECT_EQ(sweep.size(), gates.size());
    EXPECT_EQ(sweep.globalBits, (std::vector<int>{0}));
}

TEST(SweepScheduler, FusedDiagonalRunsFormOneSweep)
{
    const int chunk_bits = 4;
    const std::vector<Gate> gates = {
        Gate(GateKind::CZ, {4, 5}),
        Gate(GateKind::T, {5}),
        Gate(GateKind::CP, {0, 5}, {0.25}),
        Gate(GateKind::RZ, {4}, {0.5}),
    };
    const Sweep sweep = nextSweep(gates, 0, chunk_bits);
    EXPECT_EQ(sweep.size(), gates.size());
    EXPECT_TRUE(sweep.globalBits.empty());
}

TEST(SweepScheduler, InvolvementAdvanceClosesSweep)
{
    const int n = 6, chunk_bits = 4;
    const std::vector<Gate> gates = {
        Gate(GateKind::H, {0}), // involves q0: last gate of sweep 0
        Gate(GateKind::X, {0}), // adds nothing
        Gate(GateKind::H, {1}), // involves q1: last gate of sweep 1
        Gate(GateKind::X, {1}),
    };
    InvolvementMask mask(n, InvolvementPolicy::PerOp);
    const std::vector<Sweep> sweeps =
        scheduleSweeps(gates, chunk_bits, &mask);
    ASSERT_EQ(sweeps.size(), 3u);
    EXPECT_EQ(sweeps[0].end, 1u);
    EXPECT_EQ(sweeps[1].end, 3u);
    EXPECT_EQ(sweeps[2].end, 4u);
    // The mask ends in the post-circuit involvement state.
    EXPECT_TRUE(mask.isInvolved(0));
    EXPECT_TRUE(mask.isInvolved(1));
    EXPECT_FALSE(mask.isInvolved(2));

    // Without a mask, rule 3 is off and the run batches fully.
    const Sweep unpruned = nextSweep(gates, 0, chunk_bits);
    EXPECT_EQ(unpruned.size(), gates.size());
}

TEST(SweepScheduler, SweepsExactlyCoverTheSequence)
{
    for (const std::string &family : circuits::benchmarkNames()) {
        const Circuit circuit = circuits::makeBenchmark(family, 10);
        const std::vector<Sweep> sweeps =
            scheduleSweeps(circuit.gates(), 6);
        std::size_t at = 0;
        for (const Sweep &s : sweeps) {
            EXPECT_EQ(s.begin, at) << family;
            EXPECT_GT(s.end, s.begin) << family;
            at = s.end;
        }
        EXPECT_EQ(at, circuit.gates().size()) << family;
    }
}

// ---------------------------------------------------------------------
// Sweep counters: the executor's whole point is fewer passes over the
// state than gates.

TEST(SweepMetrics, StatePassesBelowGateCountOnEveryFamily)
{
    auto &mr = MetricsRegistry::global();
    for (const std::string &family : circuits::benchmarkNames()) {
        const int n = 10;
        const Circuit circuit = circuits::makeBenchmark(family, n);
        const double before = mr.counter("sweep.state_passes");
        ChunkedStateVector state(n, n - 4);
        applyCircuitChunked(state, circuit);
        const double passes =
            mr.counter("sweep.state_passes") - before;
        EXPECT_GT(passes, 0.0) << family;
        EXPECT_LT(passes, static_cast<double>(circuit.numGates()))
            << family;
    }
}

TEST(SweepMetrics, DiagonalHeavyFamiliesBatchManyGatesPerSweep)
{
    // qft/iqp/gs are dominated by diagonal or chunk-local gates, so
    // sweeps must batch well beyond one gate on average.
    for (const std::string family : {"qft", "iqp", "gs"}) {
        const Circuit circuit = circuits::makeBenchmark(family, 10);
        const std::vector<Sweep> sweeps =
            scheduleSweeps(circuit.gates(), 6);
        const double per_sweep =
            static_cast<double>(circuit.numGates()) /
            static_cast<double>(sweeps.size());
        EXPECT_GT(per_sweep, 1.0) << family;
    }
}

TEST(SweepMetrics, CountersAndHistogramAdvancePerSweep)
{
    auto &mr = MetricsRegistry::global();
    const Circuit circuit = circuits::makeBenchmark("gs", 8);
    const std::vector<Sweep> sweeps =
        scheduleSweeps(circuit.gates(), 4);
    const double count0 = mr.counter("sweep.count");
    const double passes0 = mr.counter("sweep.state_passes");
    const std::uint64_t hist0 =
        mr.histogram("sweep.gates_per_sweep").count();

    ChunkedStateVector state(8, 4);
    applyCircuitChunked(state, circuit);

    const double delta = static_cast<double>(sweeps.size());
    EXPECT_EQ(mr.counter("sweep.count") - count0, delta);
    EXPECT_EQ(mr.counter("sweep.state_passes") - passes0, delta);
    EXPECT_EQ(mr.histogram("sweep.gates_per_sweep").count() - hist0,
              sweeps.size());
}

} // namespace
} // namespace qgpu
