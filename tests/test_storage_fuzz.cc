/**
 * @file
 * Differential fuzz harness for the bounded-storage layer (tier2, run
 * via `ctest -L tier2`, e.g. by `scripts/check.sh --asan`). Seeded
 * random circuits run under compressed/spill storage with codec and
 * alloc faults armed, so injection reaches the eviction and refill
 * paths of the residency manager. The contract: a faulted run either
 * finishes BIT-identically to its fault-free raw twin (eviction
 * degraded to raw payloads, retries absorbed the damage) or surfaces
 * a structured SimError (codec exhaustion, refill allocation failure,
 * detected checksum mismatch); it never crashes and never returns a
 * silently corrupt state.
 */

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "fault/integrity.hh"
#include "harness/experiment.hh"

namespace qgpu
{
namespace
{

constexpr int kSeeds = 40;
constexpr Index kWorkingSet = 8;

// A mild codec mix (retry recovery survives even churn-heavy
// engines), a hot codec mix (retry-budget exhaustion -> structured
// error), and an alloc-heavy mix (evict raw fallback + the fatal
// refill AllocFailed path).
constexpr const char *kSpecs[] = {
    "codec:0.02",
    "codec:0.6",
    "alloc:0.3,codec:0.1",
};

class StorageFuzz
    : public ::testing::TestWithParam<std::tuple<Version, int>>
{
  protected:
    void TearDown() override { setSimThreads(1); }
};

TEST_P(StorageFuzz, RecoversBitIdenticallyOrErrorsStructurally)
{
    const auto &[version, kind_idx] = GetParam();
    const StorageKind kind = kind_idx == 0 ? StorageKind::Compressed
                                           : StorageKind::Spill;

    int recovered_runs = 0;
    int errored_runs = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
        const int n = 7 + seed % 3;
        const Circuit circuit =
            circuits::makeBenchmark("random", n, seed + 1);
        setSimThreads(1 + seed % 3);

        ExecOptions o;
        o.targetChunks = 32;
        o.codecSampleChunks = 0;
        // Static chunk geometry: dynamic selection can re-chunk to
        // hundreds of tiny chunks, and the resulting eviction volume
        // makes every nonzero fault rate a certain structured error —
        // the recovery path would never be reached.
        o.dynamicChunks = false;
        o.faultSpec = "none"; // ignore any ambient QGPU_FAULT_SPEC

        Machine ref_machine = harness::benchMachine(n);
        const RunResult ref =
            makeVersion(version, ref_machine, o)->run(circuit);
        ASSERT_TRUE(ref.ok()) << "fault-free run failed, seed "
                              << seed;

        ExecOptions fo = o;
        fo.storage = kind;
        fo.workingSetChunks = kWorkingSet;
        fo.faultSpec = kSpecs[seed % std::size(kSpecs)];
        fo.faultSeed = 0x9e3779b97f4a7c15ull *
                       static_cast<std::uint64_t>(seed + 1);
        Machine machine = harness::benchMachine(n);
        const RunResult r =
            makeVersion(version, machine, fo)->run(circuit);

        if (!r.ok()) {
            // Recovery exhausted: the error must be structured and
            // name a storage-reachable failure. Codec faults can
            // exhaust the eviction-verify retry budget or corrupt a
            // stream past its checksum; alloc faults can fail a
            // refill outright.
            ++errored_runs;
            EXPECT_TRUE(
                r.error->code == SimErrorCode::CodecFailed ||
                r.error->code == SimErrorCode::ChecksumMismatch ||
                r.error->code == SimErrorCode::AllocFailed)
                << "seed " << seed << ": "
                << simErrorCodeName(r.error->code);
            EXPECT_FALSE(r.error->point.empty());
            EXPECT_EQ(r.stats.get(intkeys::simErrors), 1.0);
            continue;
        }
        ++recovered_runs;
        EXPECT_EQ(r.state.maxAbsDiff(ref.state), 0.0)
            << versionName(version) << "/" << storageKindName(kind)
            << " diverged from its fault-free raw twin, seed "
            << seed;
        // Injection must have actually reached the storage layer for
        // the recovery claim to mean anything: a clean run shows
        // recovery work (raw fallbacks or retries) whenever eviction
        // happened under an armed codec/alloc mix.
        if (r.stats.get(statkeys::storageEvictions) > 0.0 &&
            seed % std::size(kSpecs) != 2) {
            EXPECT_GT(r.stats.get(statkeys::storageRetries) +
                          r.stats.get(statkeys::storageRawFallbacks) +
                          r.stats.get(statkeys::storageVerified),
                      0.0)
                << "seed " << seed;
        }
    }
    // The sweep must exercise BOTH paths; a mix that errors every run
    // (or never reaches the storage layer) tests nothing.
    EXPECT_GT(recovered_runs, 0)
        << versionName(version) << "/" << storageKindName(kind);
    EXPECT_GT(errored_runs, 0)
        << versionName(version) << "/" << storageKindName(kind);
    EXPECT_EQ(recovered_runs + errored_runs, kSeeds);
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, StorageFuzz,
    ::testing::Combine(::testing::ValuesIn(allVersions()),
                       ::testing::Range(0, 2)),
    [](const auto &info) {
        std::string name = versionName(std::get<0>(info.param));
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name + (std::get<1>(info.param) == 0 ? "_compressed"
                                                    : "_spill");
    });

} // namespace
} // namespace qgpu
