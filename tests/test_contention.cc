/**
 * @file
 * Host-DRAM contention model tests: per-link bandwidth sharing across
 * many concurrent copy engines (DESIGN.md §6).
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"

namespace qgpu
{
namespace
{

TEST(Contention, SingleGpuUnaffected)
{
    // 36 GB/s host / 2 links = 18 GB/s share > the 12 GB/s PCIe
    // link: the link stays the bottleneck.
    Machine m(machines::xeonSilverHost(), {machines::p100()});
    const LinkModel raw = m.device(0).spec().h2d;
    const LinkModel eff = m.contendedHostLink(raw);
    EXPECT_DOUBLE_EQ(eff.bandwidth, raw.bandwidth);
    EXPECT_DOUBLE_EQ(eff.latency, raw.latency);
}

TEST(Contention, FourGpusShareHostBandwidth)
{
    Machine m(machines::xeonSilverHost(),
              std::vector<DeviceSpec>(4, machines::p100()));
    const LinkModel raw = m.device(0).spec().h2d;
    const LinkModel eff = m.contendedHostLink(raw);
    // 36 GB/s over 8 concurrent links: 4.5 GB/s each.
    EXPECT_DOUBLE_EQ(eff.bandwidth,
                     m.host().spec().memBandwidth / 8.0);
    EXPECT_LT(eff.bandwidth, raw.bandwidth);
}

TEST(Contention, TransferTimeGrowsWithDeviceCount)
{
    const std::uint64_t bytes = 1ull << 30;
    Machine one(machines::xeonSilverHost(), {machines::p4()});
    Machine four(machines::xeonSilverHost(),
                 std::vector<DeviceSpec>(4, machines::p4()));
    const VTime t1 =
        one.contendedHostLink(one.device(0).spec().h2d)
            .transferTime(bytes);
    const VTime t4 =
        four.contendedHostLink(four.device(0).spec().h2d)
            .transferTime(bytes);
    EXPECT_GT(t4, t1);
}

TEST(Contention, ScaledMachinePreservesRatios)
{
    // Rate scaling divides host and link rates together, so the
    // contention crossover (how many GPUs saturate the host) is
    // scale-invariant.
    Machine small = machines::makeScaled(10, machines::p100(),
                                         1.0 / 16.0, 4, 34);
    const double host_bw = small.host().spec().memBandwidth;
    const double link_bw = small.device(0).spec().h2d.bandwidth;
    const LinkModel eff = small.contendedHostLink(
        small.device(0).spec().h2d);
    EXPECT_DOUBLE_EQ(eff.bandwidth,
                     std::min(link_bw, host_bw / 8.0));
}

TEST(Contention, MultiGpuStreamingSlowerPerByteThanSingle)
{
    // End to end: moving the same total bytes through four GPUs can
    // still win on elapsed time, but each byte pays the contended
    // rate. Verified indirectly via engine totals in test_multigpu;
    // here just pin the model arithmetic.
    Machine m(machines::xeonSilverHost(),
              std::vector<DeviceSpec>(2, machines::p100()));
    const LinkModel eff =
        m.contendedHostLink(m.device(0).spec().h2d);
    EXPECT_DOUBLE_EQ(eff.bandwidth, 9e9); // 36/4
}

} // namespace
} // namespace qgpu
