/**
 * @file
 * Tests for the circuit container and its involvement analyses.
 */

#include <gtest/gtest.h>

#include "qc/circuit.hh"

namespace qgpu
{
namespace
{

TEST(Circuit, BuilderAppends)
{
    Circuit c(3);
    c.h(0).cx(0, 1).cz(1, 2);
    ASSERT_EQ(c.numGates(), 3u);
    EXPECT_EQ(c.gates()[1].kind, GateKind::CX);
}

TEST(Circuit, DepthSingleQubitChain)
{
    Circuit c(2);
    c.h(0).h(0).h(0).h(1);
    EXPECT_EQ(c.depth(), 3);
}

TEST(Circuit, DepthAcrossEntanglement)
{
    Circuit c(3);
    c.h(0).h(1).cx(0, 1).cx(1, 2);
    EXPECT_EQ(c.depth(), 3); // h; cx01; cx12
}

TEST(Circuit, OpsBeforeFullInvolvement)
{
    Circuit c(3);
    c.h(0).h(0).cx(0, 1).h(2).h(1);
    // Qubit 2 first touched by the 4th gate.
    EXPECT_EQ(c.opsBeforeFullInvolvement(), 4u);
}

TEST(Circuit, OpsBeforeFullInvolvementNeverComplete)
{
    Circuit c(3);
    c.h(0).cx(0, 1);
    EXPECT_EQ(c.opsBeforeFullInvolvement(), c.numGates() + 1);
}

TEST(Circuit, InvolvementCurveMonotone)
{
    Circuit c(4);
    c.h(2).cx(2, 0).h(2).h(3).h(1);
    const auto curve = c.involvementCurve();
    ASSERT_EQ(curve.size(), c.numGates());
    EXPECT_EQ(curve.front(), 1);
    EXPECT_EQ(curve.back(), 4);
    for (std::size_t i = 1; i < curve.size(); ++i)
        EXPECT_GE(curve[i], curve[i - 1]);
}

TEST(Circuit, GateCensus)
{
    Circuit c(2);
    c.h(0).h(1).cx(0, 1);
    const auto census = c.gateCensus();
    ASSERT_EQ(census.size(), 2u);
    // Sorted by name: cx then h.
    EXPECT_EQ(census[0].first, "cx");
    EXPECT_EQ(census[0].second, 1u);
    EXPECT_EQ(census[1].first, "h");
    EXPECT_EQ(census[1].second, 2u);
}

TEST(Circuit, NamePlumbing)
{
    Circuit c(2, "bell");
    EXPECT_EQ(c.name(), "bell");
    c.setName("other");
    EXPECT_EQ(c.name(), "other");
}

TEST(CircuitDeath, OutOfRangeQubit)
{
    Circuit c(2);
    EXPECT_DEATH(c.h(2), "outside");
}

TEST(CircuitDeath, RepeatedQubit)
{
    Circuit c(2);
    EXPECT_DEATH(c.cx(1, 1), "repeats");
}

} // namespace
} // namespace qgpu
