/**
 * @file
 * Chunk-aware gate application tests: the GatePlan group structure
 * (the paper's Case 1 / Case 2) and the equivalence of group-wise
 * application with the flat reference, for every chunk size.
 */

#include <gtest/gtest.h>

#include "circuits/circuits.hh"
#include "statevec/apply.hh"

namespace qgpu
{
namespace
{

TEST(GatePlan, Case1LocalGate)
{
    // Gate on qubit 0 with 4-bit chunks: chunk-local (Case 1).
    const Gate g(GateKind::H, {0});
    const GatePlan plan(g, 7, 4);
    EXPECT_TRUE(plan.perChunk());
    EXPECT_EQ(plan.numGroups(), 8u);
    EXPECT_EQ(plan.chunksPerGroup(), 1);
}

TEST(GatePlan, Case2PairsChunksAtStride)
{
    // The paper's example: gate on q6 with 4-bit chunks pairs
    // (chunk0, chunk4), (chunk1, chunk5), ...
    const Gate g(GateKind::H, {6});
    const GatePlan plan(g, 7, 4);
    EXPECT_FALSE(plan.perChunk());
    EXPECT_EQ(plan.numGroups(), 4u);
    EXPECT_EQ(plan.chunksPerGroup(), 2);
    EXPECT_EQ(plan.members(0), (std::vector<Index>{0, 4}));
    EXPECT_EQ(plan.members(1), (std::vector<Index>{1, 5}));
    EXPECT_EQ(plan.members(3), (std::vector<Index>{3, 7}));
}

TEST(GatePlan, DiagonalGatesAreAlwaysPerChunk)
{
    // CZ on the two highest qubits still never couples amplitudes.
    const Gate g(GateKind::CZ, {5, 6});
    const GatePlan plan(g, 7, 4);
    EXPECT_TRUE(plan.perChunk());
    EXPECT_EQ(plan.numGroups(), 8u);
}

TEST(GatePlan, TwoGlobalTargetsQuadChunks)
{
    const Gate g(GateKind::SWAP, {5, 6});
    const GatePlan plan(g, 7, 4);
    EXPECT_EQ(plan.chunksPerGroup(), 4);
    EXPECT_EQ(plan.numGroups(), 2u);
    EXPECT_EQ(plan.members(0), (std::vector<Index>{0, 2, 4, 6}));
    EXPECT_EQ(plan.members(1), (std::vector<Index>{1, 3, 5, 7}));
}

TEST(GatePlan, MixedLocalGlobal)
{
    const Gate g(GateKind::CX, {1, 6});
    const GatePlan plan(g, 7, 4);
    EXPECT_FALSE(plan.perChunk());
    EXPECT_EQ(plan.chunksPerGroup(), 2);
}

TEST(ApplyGateChunked, ZeroPredicateSkipsAreExact)
{
    // Skipping groups whose chunks are genuinely zero must not change
    // the result. Use the actual zero-ness as the predicate.
    const Circuit c = circuits::makeBenchmark("iqp", 8);
    const StateVector want = simulateReference(c);

    ChunkedStateVector state(8, 3);
    for (const Gate &g : c.gates()) {
        applyGateChunked(state, g, [&state](Index chunk) {
            return state.chunkIsZero(chunk);
        });
    }
    EXPECT_LT(state.toFlat().maxAbsDiff(want), 1e-12);
}

class ChunkedEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(ChunkedEquivalence, MatchesFlatReference)
{
    const auto &[family, chunk_bits] = GetParam();
    const Circuit c = circuits::makeBenchmark(family, 8);
    const StateVector want = simulateReference(c);

    ChunkedStateVector state(8, chunk_bits);
    applyCircuitChunked(state, c);
    EXPECT_LT(state.toFlat().maxAbsDiff(want), 1e-12)
        << family << " chunkBits=" << chunk_bits;
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndChunkSizes, ChunkedEquivalence,
    ::testing::Combine(
        ::testing::Values("hchain", "rqc", "qaoa", "gs", "hlf",
                          "qft", "iqp", "qf", "bv"),
        ::testing::Values(0, 1, 3, 5, 8)));

TEST(ApplyGroup, SingleGroupOnlyTouchesItsChunks)
{
    // Prepare a superposition, then apply a global-target gate to one
    // group and verify the other group's chunks are untouched.
    Circuit prep(4);
    prep.h(0).h(1).h(2).h(3);
    ChunkedStateVector state(4, 2);
    applyCircuitChunked(state, prep);
    const StateVector before = state.toFlat();

    const Gate g(GateKind::X, {3}); // pairs (0,2) and (1,3)
    const GatePlan plan(g, 4, 2);
    applyGroup(state, g, plan, 0); // chunks 0 and 2 only

    const StateVector after = state.toFlat();
    for (Index i = 0; i < 16; ++i) {
        const Index chunk = i >> 2;
        if (chunk == 1 || chunk == 3) {
            EXPECT_EQ(after[i], before[i]) << i;
        }
    }
}

} // namespace
} // namespace qgpu
