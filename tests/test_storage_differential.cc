/**
 * @file
 * Storage-backend differential harness — the bit-identity contract of
 * the bounded working set. For every benchmark family and engine
 * version, the same circuit runs under raw storage (reference) and
 * under `compressed` storage with a working set far below the chunk
 * count, across 1/2/4/8 devices and single/multi-threaded. Cold
 * storage is a memory-layout concern only: every run must reproduce
 * the raw state EXACTLY (maxAbsDiff == 0, not a tolerance), with
 * measurement, sampling, and snapshot round trips indistinguishable.
 * The spill backend runs the same contract on a reduced grid.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "harness/experiment.hh"
#include "statevec/measure.hh"
#include "statevec/snapshot.hh"

namespace qgpu
{
namespace
{

constexpr int kQubits = 9;
constexpr int kDeviceCounts[] = {1, 2, 4, 8};
constexpr Index kWorkingSet = 8; // well below the 32-chunk target

ExecOptions
baseOptions()
{
    ExecOptions o;
    o.targetChunks = 32;
    o.codecSampleChunks = 0;
    o.faultSpec = "none";
    return o;
}

class StorageDifferential
    : public ::testing::TestWithParam<std::tuple<std::string, Version>>
{
  protected:
    void TearDown() override { setSimThreads(1); }
};

TEST_P(StorageDifferential, CompressedBitIdenticalToRaw)
{
    const auto &[family, version] = GetParam();
    const Circuit circuit = circuits::makeBenchmark(family, kQubits);

    for (const int devices : kDeviceCounts) {
        setSimThreads(1);
        Machine ref_machine = machines::makeScaled(
            kQubits, machines::v100Nvlink(), 1.0, devices);
        const RunResult ref =
            makeVersion(version, ref_machine, baseOptions())
                ->run(circuit);
        ASSERT_TRUE(ref.ok()) << devices << " devices";

        for (const int threads : {1, 0}) {
            setSimThreads(threads);
            ExecOptions o = baseOptions();
            o.storage = StorageKind::Compressed;
            o.workingSetChunks = kWorkingSet;
            Machine machine = machines::makeScaled(
                kQubits, machines::v100Nvlink(), 1.0, devices);
            const RunResult r =
                makeVersion(version, machine, o)->run(circuit);
            ASSERT_TRUE(r.ok()) << devices << " devices";
            // The contract: tolerance ZERO. Eviction is lossless, so
            // the bounded working set may never change a bit.
            EXPECT_EQ(r.state.maxAbsDiff(ref.state), 0.0)
                << versionName(version) << " diverged on " << family
                << " at " << devices << " devices, threads="
                << threads;
            EXPECT_EQ(r.stats.get(statkeys::storageWorkingSet),
                      static_cast<double>(kWorkingSet));
            EXPECT_GT(r.stats.get(statkeys::storagePeakBytes), 0.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, StorageDifferential,
    ::testing::Combine(
        ::testing::ValuesIn(circuits::benchmarkNames()),
        ::testing::ValuesIn(allVersions())),
    [](const auto &info) {
        std::string v = versionName(std::get<1>(info.param));
        for (char &c : v)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return std::get<0>(info.param) + "_" + v;
    });

TEST(StorageDifferentialExtra, SpillBitIdenticalToRaw)
{
    // The spill backend shares the residency layer with compressed;
    // a reduced grid (every family, flagship + baseline versions,
    // 1 and 4 devices) keeps file traffic in budget while still
    // crossing the backend with pruning and exchange paths.
    for (const std::string &family : circuits::benchmarkNames()) {
        const Circuit circuit =
            circuits::makeBenchmark(family, kQubits);
        for (const Version version :
             {Version::Baseline, Version::QGpu}) {
            for (const int devices : {1, 4}) {
                setSimThreads(1);
                Machine ref_machine = machines::makeScaled(
                    kQubits, machines::v100Nvlink(), 1.0, devices);
                const RunResult ref =
                    makeVersion(version, ref_machine, baseOptions())
                        ->run(circuit);
                ASSERT_TRUE(ref.ok());

                ExecOptions o = baseOptions();
                o.storage = StorageKind::Spill;
                o.workingSetChunks = kWorkingSet;
                Machine machine = machines::makeScaled(
                    kQubits, machines::v100Nvlink(), 1.0, devices);
                const RunResult r =
                    makeVersion(version, machine, o)->run(circuit);
                ASSERT_TRUE(r.ok());
                EXPECT_EQ(r.state.maxAbsDiff(ref.state), 0.0)
                    << versionName(version) << "/" << family << " x"
                    << devices << " (spill)";
            }
        }
    }
    setSimThreads(1);
}

TEST(StorageDifferentialExtra, EvictionsActuallyHappen)
{
    // QFT lights up every chunk, so a 32-chunk state with an 8-chunk
    // working set must cycle chunks through the cold store; a sweep
    // that never evicted would be testing nothing.
    const Circuit circuit = circuits::makeBenchmark("qft", kQubits);
    ExecOptions o = baseOptions();
    o.storage = StorageKind::Compressed;
    o.workingSetChunks = kWorkingSet;
    Machine machine = machines::makeScaled(
        kQubits, machines::v100Nvlink(), 1.0, 1);
    const RunResult r =
        makeVersion(Version::QGpu, machine, o)->run(circuit);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r.stats.get(statkeys::storageEvictions), 0.0);
    EXPECT_GT(r.stats.get(statkeys::storageMisses), 0.0);
    EXPECT_GT(r.stats.get(statkeys::storageVerified), 0.0);
    EXPECT_GT(r.stats.get(statkeys::storageColdBytes), 0.0);
}

TEST(StorageDifferentialExtra, PeakHostBytesBeatRawOnCompressible)
{
    // The whole point of the backend: on a compressible state the
    // peak host footprint (working set + cold streams) stays well
    // below the raw register. BV keeps most chunks zero or uniform,
    // the GFC codec's best case; dense random-phase states are its
    // worst case and are covered by the bit-identity grid instead.
    const Circuit circuit = circuits::makeBenchmark("bv", kQubits);
    ExecOptions o = baseOptions();
    o.storage = StorageKind::Compressed;
    o.workingSetChunks = kWorkingSet;
    Machine machine = machines::makeScaled(
        kQubits, machines::v100Nvlink(), 1.0, 1);
    const RunResult r =
        makeVersion(Version::QGpu, machine, o)->run(circuit);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r.stats.get(statkeys::storagePeakBytes), 0.0);
    EXPECT_LT(r.stats.get(statkeys::storagePeakBytes),
              static_cast<double>(stateBytes(kQubits)) / 2);
}

TEST(StorageDifferentialExtra,
     MeasurementSamplingAndSnapshotRoundTripsMatch)
{
    const Circuit circuit = circuits::makeBenchmark("qft", kQubits);
    Machine ref_machine = machines::makeScaled(
        kQubits, machines::v100Nvlink(), 1.0, 1);
    const RunResult ref =
        makeVersion(Version::QGpu, ref_machine, baseOptions())
            ->run(circuit);
    ASSERT_TRUE(ref.ok());

    for (StorageKind kind :
         {StorageKind::Compressed, StorageKind::Spill}) {
        ExecOptions o = baseOptions();
        o.storage = kind;
        o.workingSetChunks = kWorkingSet;
        Machine machine = machines::makeScaled(
            kQubits, machines::v100Nvlink(), 1.0, 1);
        const RunResult r =
            makeVersion(Version::QGpu, machine, o)->run(circuit);
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(r.state.maxAbsDiff(ref.state), 0.0)
            << storageKindName(kind);

        // Sampling and per-qubit probabilities bit-match.
        Rng rng_a(1234), rng_b(1234);
        EXPECT_EQ(sampleCounts(r.state, 500, rng_a),
                  sampleCounts(ref.state, 500, rng_b))
            << storageKindName(kind);
        for (int q = 0; q < kQubits; ++q)
            EXPECT_EQ(probabilityOfOne(r.state, q),
                      probabilityOfOne(ref.state, q))
                << storageKindName(kind);

        // Snapshot save/restore round trip on the bounded-state run.
        std::stringstream buf;
        saveState(r.state, buf, /*compress=*/true);
        const StateVector restored = loadState(buf);
        EXPECT_EQ(restored.maxAbsDiff(ref.state), 0.0)
            << storageKindName(kind);
    }
}

TEST(StorageDifferentialExtra, ComposesWithPrecisionTiers)
{
    // Storage lanes (PR 7) and cold storage must commute: an adaptive
    // -precision run under compressed storage matches its raw twin
    // exactly (the cold round trip happens between quantize points
    // and is lossless on the already-quantized values).
    const Circuit circuit =
        circuits::makeBenchmark("random", kQubits, 5);
    for (const Precision p : {Precision::f32, Precision::adaptive}) {
        ExecOptions ro = baseOptions();
        ro.precision = p;
        Machine ref_machine = machines::makeScaled(
            kQubits, machines::v100Nvlink(), 1.0, 1);
        const RunResult ref =
            makeVersion(Version::QGpu, ref_machine, ro)->run(circuit);
        ASSERT_TRUE(ref.ok());

        ExecOptions o = ro;
        o.storage = StorageKind::Compressed;
        o.workingSetChunks = kWorkingSet;
        Machine machine = machines::makeScaled(
            kQubits, machines::v100Nvlink(), 1.0, 1);
        const RunResult r =
            makeVersion(Version::QGpu, machine, o)->run(circuit);
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(r.state.maxAbsDiff(ref.state), 0.0)
            << precisionName(p);
    }
}

} // namespace
} // namespace qgpu
