/**
 * @file
 * Engine correctness: every execution version (Baseline, Naive,
 * Overlap, Pruning, Reorder, Q-GPU) and every CPU comparator must
 * produce exactly the reference final state on every benchmark
 * family. The paper's claim that "pruning and reordering do not
 * affect the simulation results" is enforced here, not assumed.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{
namespace
{

class EngineCorrectness
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
};

TEST_P(EngineCorrectness, FinalStateMatchesReference)
{
    const auto &[engine, family] = GetParam();
    const int n = 9;
    const Circuit c = circuits::makeBenchmark(family, n);
    const StateVector want = simulateReference(c);

    // Scaled machine: device holds 1/16 of the state, so streaming
    // really happens.
    Machine m = harness::benchMachine(n);
    ExecOptions o;
    o.targetChunks = 32;
    o.codecSampleChunks = 0; // measure every chunk in tests
    const RunResult result = harness::runOn(engine, m, c, o);

    ASSERT_EQ(result.state.numQubits(), n);
    EXPECT_LT(result.state.maxAbsDiff(want), 1e-10)
        << engine << " on " << family;
    EXPECT_GT(result.totalTime, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesAllFamilies, EngineCorrectness,
    ::testing::Combine(
        ::testing::Values("baseline", "naive", "overlap", "pruning",
                          "reorder", "qgpu", "cpu", "qsim", "qdk"),
        ::testing::Values("hchain", "rqc", "qaoa", "gs", "hlf",
                          "qft", "iqp", "qf", "bv")));

TEST(EngineCorrectness, ResidentModeMatchesReference)
{
    // State fits on the device: the streaming engine takes the
    // resident fast path.
    const int n = 8;
    const Circuit c = circuits::makeBenchmark("qft", n);
    Machine m = machines::makeScaled(n, machines::p100(), 2.0);
    ASSERT_GE(m.device(0).spec().memBytes, stateBytes(n));

    const RunResult r = harness::runOn("qgpu", m, c);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-10);
    // Exactly one bulk upload and one bulk download.
    EXPECT_DOUBLE_EQ(r.stats.get(statkeys::bytesH2d),
                     static_cast<double>(stateBytes(n)));
    EXPECT_DOUBLE_EQ(r.stats.get(statkeys::bytesD2h),
                     static_cast<double>(stateBytes(n)));
}

TEST(EngineCorrectness, NonDiagonalInvolvementStillExact)
{
    // The sharper involvement policy (extension) must not change
    // results either.
    const int n = 9;
    for (const auto &family : {"iqp", "qft", "gs"}) {
        const Circuit c = circuits::makeBenchmark(family, n);
        Machine m = harness::benchMachine(n);
        ExecOptions o;
        o.involvement = InvolvementPolicy::NonDiagonal;
        const RunResult r = harness::runOn("qgpu", m, c, o);
        EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-10)
            << family;
    }
}

TEST(EngineCorrectness, DynamicChunksOffStillExact)
{
    const int n = 9;
    const Circuit c = circuits::makeBenchmark("iqp", n);
    Machine m = harness::benchMachine(n);
    ExecOptions o;
    o.dynamicChunks = false;
    const RunResult r = harness::runOn("pruning", m, c, o);
    EXPECT_LT(r.state.maxAbsDiff(simulateReference(c)), 1e-10);
}

TEST(EngineCorrectness, KeepStateFalseDropsState)
{
    const Circuit c = circuits::makeBenchmark("gs", 8);
    Machine m = harness::benchMachine(8);
    ExecOptions o;
    o.keepState = false;
    const RunResult r = harness::runOn("qgpu", m, c, o);
    EXPECT_EQ(r.state.numQubits(), 1);
    EXPECT_GT(r.totalTime, 0.0);
}

TEST(EngineCorrectness, EngineNamesMatchVersions)
{
    Machine m = harness::benchMachine(8);
    EXPECT_EQ(makeVersion(Version::Baseline, m)->name(), "Baseline");
    EXPECT_EQ(makeVersion(Version::Naive, m)->name(), "Naive");
    EXPECT_EQ(makeVersion(Version::Overlap, m)->name(), "Overlap");
    EXPECT_EQ(makeVersion(Version::Pruning, m)->name(), "Pruning");
    EXPECT_EQ(makeVersion(Version::Reorder, m)->name(), "Reorder");
    EXPECT_EQ(makeVersion(Version::QGpu, m)->name(), "Q-GPU");
    EXPECT_EQ(allVersions().size(), 6u);
}

} // namespace
} // namespace qgpu
