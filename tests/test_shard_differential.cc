/**
 * @file
 * Multi-device sharding differential harness — the bit-identity
 * contract across device counts. For every benchmark family, engine
 * version, and pruning mode, the same circuit runs on 1 (reference),
 * 2, 4, and 8 devices with the whole state resident across the
 * shards (fraction 1.0), single- and multi-threaded, on both a
 * PCIe-ish (p4) and an NVLink-ish (v100nvl) preset. Sharding is a
 * scheduling concern only: every run must reproduce the single-device
 * state EXACTLY (maxAbsDiff == 0, not a tolerance), measurement and
 * snapshot results included. Cross-shard sweeps must also pay their
 * exchange phases — the timing model is allowed to differ across
 * device counts, the amplitudes never.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "harness/experiment.hh"
#include "statevec/measure.hh"
#include "statevec/snapshot.hh"

namespace qgpu
{
namespace
{

struct PruneMode
{
    const char *name;
    bool dynamicChunks;
    InvolvementPolicy involvement;
};

constexpr PruneMode kModes[] = {
    {"dynamic_perop", true, InvolvementPolicy::PerOp},
    {"static_perop", false, InvolvementPolicy::PerOp},
    {"dynamic_nondiag", true, InvolvementPolicy::NonDiagonal},
};

constexpr int kQubits = 9;
constexpr int kDeviceCounts[] = {2, 4, 8};

struct Preset
{
    const char *name;
    DeviceSpec (*spec)();
};

constexpr Preset kPresets[] = {
    {"p4", machines::p4},           // PCIe-ish peer fabric
    {"v100nvl", machines::v100Nvlink}, // NVLink-ish peer fabric
};

class ShardDifferential
    : public ::testing::TestWithParam<
          std::tuple<std::string, Version, int>>
{
  protected:
    void TearDown() override { setSimThreads(1); }
};

TEST_P(ShardDifferential, BitIdenticalAcrossDeviceCounts)
{
    const auto &[family, version, mode_idx] = GetParam();
    const PruneMode &mode = kModes[mode_idx];
    const Circuit circuit =
        circuits::makeBenchmark(family, kQubits);

    ExecOptions o;
    o.targetChunks = 32;
    o.codecSampleChunks = 0;
    o.dynamicChunks = mode.dynamicChunks;
    o.involvement = mode.involvement;
    o.faultSpec = "none";

    for (const Preset &preset : kPresets) {
        // Reference: the same version on one device holding the
        // whole state (the resident path).
        setSimThreads(1);
        Machine ref_machine = machines::makeScaled(
            kQubits, preset.spec(), 1.0, 1);
        const RunResult ref =
            makeVersion(version, ref_machine, o)->run(circuit);
        ASSERT_TRUE(ref.ok());
        ASSERT_EQ(ref.state.numQubits(), kQubits);

        for (const int devices : kDeviceCounts) {
            for (const int threads : {1, 0}) {
                setSimThreads(threads);
                Machine machine = machines::makeScaled(
                    kQubits, preset.spec(), 1.0, devices);
                const RunResult r =
                    makeVersion(version, machine, o)->run(circuit);
                ASSERT_TRUE(r.ok())
                    << preset.name << " x" << devices;
                // The contract: tolerance ZERO. The functional
                // update is shared; a shard map may only reshape the
                // schedule.
                EXPECT_EQ(r.state.maxAbsDiff(ref.state), 0.0)
                    << versionName(version) << "/" << mode.name
                    << " diverged on " << family << " at "
                    << devices << " devices (" << preset.name
                    << ", threads=" << threads << ")";
                EXPECT_DOUBLE_EQ(
                    r.stats.get(statkeys::gatesApplied),
                    static_cast<double>(circuit.numGates()));
                EXPECT_GT(r.totalTime, 0.0);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ShardDifferential,
    ::testing::Combine(
        ::testing::ValuesIn(circuits::benchmarkNames()),
        ::testing::ValuesIn(allVersions()), ::testing::Range(0, 3)),
    [](const auto &info) {
        std::string v = versionName(std::get<1>(info.param));
        for (char &c : v)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return std::get<0>(info.param) + "_" + v + "_" +
               kModes[std::get<2>(info.param)].name;
    });

TEST(ShardDifferential, MeasurementAndSnapshotMatchOnShardedState)
{
    // Downstream consumers of a sharded run's state — sampling and
    // snapshot save/restore — must be indistinguishable from the
    // single-device run too.
    const Circuit circuit = circuits::makeBenchmark("qft", kQubits);
    ExecOptions o;
    o.targetChunks = 32;

    Machine ref_machine =
        machines::makeScaled(kQubits, machines::v100Nvlink(), 1.0, 1);
    const RunResult ref =
        makeVersion(Version::QGpu, ref_machine, o)->run(circuit);
    ASSERT_TRUE(ref.ok());

    Machine machine =
        machines::makeScaled(kQubits, machines::v100Nvlink(), 1.0, 4);
    const RunResult r =
        makeVersion(Version::QGpu, machine, o)->run(circuit);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.state.maxAbsDiff(ref.state), 0.0);

    Rng rng_a(1234), rng_b(1234);
    EXPECT_EQ(sampleCounts(r.state, 500, rng_a),
              sampleCounts(ref.state, 500, rng_b));
    for (int q = 0; q < kQubits; ++q)
        EXPECT_EQ(probabilityOfOne(r.state, q),
                  probabilityOfOne(ref.state, q));

    std::stringstream buf;
    saveState(r.state, buf, /*compress=*/true);
    const StateVector restored = loadState(buf);
    EXPECT_EQ(restored.maxAbsDiff(ref.state), 0.0);
}

TEST(ShardDifferential, CrossShardSweepsPayExchangePhases)
{
    // QFT couples every pair of qubits, so at 2+ devices some sweeps
    // must reach across the shard boundary and the exchange counters
    // must show it; a single device must show none.
    const Circuit circuit = circuits::makeBenchmark("qft", kQubits);
    ExecOptions o;
    o.targetChunks = 32;

    Machine one =
        machines::makeScaled(kQubits, machines::v100Nvlink(), 1.0, 1);
    const RunResult r1 =
        makeVersion(Version::QGpu, one, o)->run(circuit);
    EXPECT_EQ(r1.stats.get(statkeys::exchangePhases), 0.0);
    EXPECT_EQ(r1.stats.get(statkeys::exchangeBytes), 0.0);

    for (const int devices : kDeviceCounts) {
        Machine m = machines::makeScaled(
            kQubits, machines::v100Nvlink(), 1.0, devices);
        const RunResult r =
            makeVersion(Version::QGpu, m, o)->run(circuit);
        ASSERT_TRUE(r.ok());
        EXPECT_GE(r.stats.get(statkeys::exchangePhases), 1.0)
            << devices;
        EXPECT_GT(r.stats.get(statkeys::exchangeBytes), 0.0)
            << devices;
        EXPECT_GT(r.stats.get(statkeys::exchangeChunks), 0.0)
            << devices;
        EXPECT_GT(r.stats.get(statkeys::peerTime), 0.0) << devices;
        // Per-device busy rows exist for multi-device runs.
        for (int d = 0; d < devices; ++d) {
            const std::string prefix =
                "device." + std::to_string(d) + ".";
            EXPECT_TRUE(r.stats.has(prefix + "busy")) << d;
            EXPECT_TRUE(r.stats.has(prefix + "peer")) << d;
        }
    }
}

} // namespace
} // namespace qgpu
