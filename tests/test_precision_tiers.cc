/**
 * @file
 * Accuracy-tier differential harness: the fast-math kernel tier and
 * the fp32/adaptive storage precision must stay inside their
 * contracts against the exact tier, for every circuit family, every
 * engine version, the pruning ablations, and device counts 1/2/4.
 *
 * Contracts under test (DESIGN.md §14):
 *   fast-math (f64 storage)  max |amp diff| < 1e-12 vs exact
 *   f32 storage              max |amp diff| < 1e-5 vs exact
 *   f32 across device counts bit-identical to the 1-device f32 run
 *   adaptive, threshold 0    bit-identical to the f32 run
 *   adaptive, huge threshold bit-identical to the exact f64 run
 *   f32 transfer accounting  bytes.h2d exactly halved
 *
 * The binary also exercises the cache-geometry-derived sweep tiling:
 * ctest launches it with QGPU_L2_BYTES=64K (tests/CMakeLists.txt), so
 * chunks above 2^11 amplitudes run the tiled chunk-local path, whose
 * bit-identity the sweep differential below checks directly.
 */

#include <cstdlib>
#include <span>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "common/cacheinfo.hh"
#include "common/parallel.hh"
#include "harness/experiment.hh"
#include "prune/involvement.hh"
#include "sched/sweep.hh"
#include "statevec/apply.hh"
#include "statevec/kernel_dispatch.hh"

namespace qgpu
{
namespace
{

constexpr int kQubits = 9;

RunResult
runTier(Version version, const Circuit &circuit, bool fast_math,
        Precision precision, int devices = 1,
        double adaptive_threshold = 1e-6)
{
    ExecOptions o;
    o.targetChunks = 32;
    o.codecSampleChunks = 0;
    o.faultSpec = "none";
    o.fastMath = fast_math;
    o.precision = precision;
    o.adaptiveThreshold = adaptive_threshold;
    // Fraction 1.0 so multi-device runs shard the whole state (the
    // cross-device-count bit-identity contract from
    // test_shard_differential carries over to the fp32 lane).
    Machine machine = machines::makeScaled(circuit.numQubits(),
                                           machines::p4(), 1.0,
                                           devices);
    return makeVersion(version, machine, o)->run(circuit);
}

class PrecisionDifferential
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PrecisionDifferential, TiersWithinContractForEveryVersion)
{
    const std::string &family = GetParam();
    const Circuit circuit = circuits::makeBenchmark(family, kQubits);

    // Exact reference: Baseline, exact kernels, f64 storage.
    const RunResult exact = runTier(Version::Baseline, circuit,
                                    false, Precision::f64);
    ASSERT_TRUE(exact.ok());

    for (const Version version : allVersions()) {
        const RunResult fast =
            runTier(version, circuit, true, Precision::f64);
        ASSERT_TRUE(fast.ok());
        EXPECT_LT(fast.state.maxAbsDiff(exact.state), 1e-12)
            << versionName(version) << " fast-math diverged on "
            << family;

        const RunResult narrow =
            runTier(version, circuit, false, Precision::f32);
        ASSERT_TRUE(narrow.ok());
        EXPECT_LT(narrow.state.maxAbsDiff(exact.state), 1e-5)
            << versionName(version) << " f32 diverged on " << family;

        const RunResult both =
            runTier(version, circuit, true, Precision::f32);
        ASSERT_TRUE(both.ok());
        EXPECT_LT(both.state.maxAbsDiff(exact.state), 1e-5)
            << versionName(version) << " fast+f32 diverged on "
            << family;
    }

    // Tier overrides are scoped to the run: later runs (and direct
    // kernel users) must see the exact tier again.
    EXPECT_EQ(kernelTier(), KernelTier::Exact);
}

struct PruneMode
{
    const char *name;
    bool dynamicChunks;
    InvolvementPolicy involvement;
};

constexpr PruneMode kModes[] = {
    {"dynamic_perop", true, InvolvementPolicy::PerOp},
    {"static_perop", false, InvolvementPolicy::PerOp},
    {"dynamic_nondiag", true, InvolvementPolicy::NonDiagonal},
};

TEST_P(PrecisionDifferential, F32BitIdenticalAcrossDeviceCounts)
{
    const std::string &family = GetParam();
    const Circuit circuit = circuits::makeBenchmark(family, kQubits);
    const RunResult exact = runTier(Version::Baseline, circuit,
                                    false, Precision::f64);
    ASSERT_TRUE(exact.ok());

    for (const PruneMode &mode : kModes) {
        ExecOptions o;
        o.targetChunks = 32;
        o.codecSampleChunks = 0;
        o.faultSpec = "none";
        o.precision = Precision::f32;
        o.dynamicChunks = mode.dynamicChunks;
        o.involvement = mode.involvement;

        Machine ref_machine = machines::makeScaled(
            kQubits, machines::p4(), 1.0, 1);
        const RunResult ref =
            makeVersion(Version::QGpu, ref_machine, o)->run(circuit);
        ASSERT_TRUE(ref.ok());
        EXPECT_LT(ref.state.maxAbsDiff(exact.state), 1e-5)
            << family << " " << mode.name;

        for (const int devices : {2, 4}) {
            Machine machine = machines::makeScaled(
                kQubits, machines::p4(), 1.0, devices);
            const RunResult r =
                makeVersion(Version::QGpu, machine, o)->run(circuit);
            ASSERT_TRUE(r.ok());
            // fp32 rounding happens per chunk at sweep boundaries,
            // identically on every device count: EXACT equality, as
            // in the f64 shard differential.
            EXPECT_EQ(r.state.maxAbsDiff(ref.state), 0.0)
                << family << " " << mode.name << " at " << devices
                << " devices";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, PrecisionDifferential,
    ::testing::ValuesIn(circuits::benchmarkNames()),
    [](const auto &info) { return info.param; });

TEST(PrecisionBytes, F32HalvesModeledTransferBytes)
{
    // Transfer-bound check on streaming (Naive: no prune, no
    // compress): every chunk crosses the bus each sweep, so halving
    // the stored amp width must halve bytes.h2d exactly.
    for (const char *family : {"qft", "gs", "rqc"}) {
        const Circuit circuit =
            circuits::makeBenchmark(family, kQubits);
        const RunResult wide = runTier(Version::Naive, circuit,
                                       false, Precision::f64);
        const RunResult narrow = runTier(Version::Naive, circuit,
                                         false, Precision::f32);
        ASSERT_TRUE(wide.ok());
        ASSERT_TRUE(narrow.ok());
        const double wide_h2d = wide.stats.get(statkeys::bytesH2d);
        const double narrow_h2d =
            narrow.stats.get(statkeys::bytesH2d);
        ASSERT_GT(wide_h2d, 0.0) << family;
        EXPECT_DOUBLE_EQ(narrow_h2d * 2.0, wide_h2d) << family;
        EXPECT_LT(narrow.totalTime, wide.totalTime) << family;
    }
}

TEST(AdaptivePrecision, ThresholdZeroMatchesF32Exactly)
{
    const Circuit circuit = circuits::makeBenchmark("qft", kQubits);
    const RunResult narrow = runTier(Version::QGpu, circuit, false,
                                     Precision::f32);
    // Threshold 0: no chunk's max magnitude is below 0, so every
    // chunk lives in the fp32 lane — identical to Precision::f32.
    const RunResult adaptive = runTier(Version::QGpu, circuit, false,
                                       Precision::adaptive, 1, 0.0);
    ASSERT_TRUE(narrow.ok());
    ASSERT_TRUE(adaptive.ok());
    EXPECT_EQ(adaptive.state.maxAbsDiff(narrow.state), 0.0);
    EXPECT_EQ(adaptive.stats.get("precision.promoted_chunks"), 0.0);
}

TEST(AdaptivePrecision, HugeThresholdMatchesF64Exactly)
{
    const Circuit circuit = circuits::makeBenchmark("qft", kQubits);
    const RunResult exact = runTier(Version::QGpu, circuit, false,
                                    Precision::f64);
    // Every chunk's max magnitude falls below 1e9, so every chunk is
    // promoted to (kept in) the f64 lane: nothing is ever rounded.
    const RunResult adaptive = runTier(Version::QGpu, circuit, false,
                                       Precision::adaptive, 1, 1e9);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(adaptive.ok());
    EXPECT_EQ(adaptive.state.maxAbsDiff(exact.state), 0.0);
    EXPECT_GT(adaptive.stats.get("precision.promoted_chunks"), 0.0);
}

TEST(CacheInfo, DerivedSizesFollowGeometry)
{
    CacheGeometry g;
    g.l1dBytes = 48u * 1024;
    g.l2Bytes = 2048u * 1024;
    g.l3Bytes = 32u * 1024 * 1024;
    // Half of 2 MiB is 1 MiB = 2^16 amps.
    EXPECT_EQ(sweepTileBits(g), 16);
    // 4 * 48K / 8 = 24576 words, inside the clamp window.
    EXPECT_EQ(codecGrainWords(g), Index{24576});
    EXPECT_EQ(scratchRetainAmps(g),
              static_cast<std::size_t>(g.l3Bytes / 2 / ampBytes));

    g.l2Bytes = 1; // degenerate: clamp low
    EXPECT_EQ(sweepTileBits(g), 10);
    g.l2Bytes = 1ull << 40; // clamp high
    EXPECT_EQ(sweepTileBits(g), 26);

    g.l1dBytes = 1;
    EXPECT_EQ(codecGrainWords(g), Index{1} << 12);
    g.l1dBytes = 1ull << 30;
    EXPECT_EQ(codecGrainWords(g), Index{1} << 17);
}

TEST(CacheInfo, EnvOverridesParseSuffixes)
{
    ASSERT_EQ(setenv("QGPU_L2_BYTES", "3M", 1), 0);
    EXPECT_EQ(detectCacheGeometry().l2Bytes, 3ull << 20);
    ASSERT_EQ(setenv("QGPU_L2_BYTES", "64K", 1), 0);
    EXPECT_EQ(detectCacheGeometry().l2Bytes, 64ull << 10);
    ASSERT_EQ(setenv("QGPU_L2_BYTES", "1G", 1), 0);
    EXPECT_EQ(detectCacheGeometry().l2Bytes, 1ull << 30);
    ASSERT_EQ(setenv("QGPU_L2_BYTES", "123456", 1), 0);
    EXPECT_EQ(detectCacheGeometry().l2Bytes, 123456u);

    // Junk falls back to the detected/default value instead of 0.
    ASSERT_EQ(setenv("QGPU_L2_BYTES", "lots", 1), 0);
    EXPECT_GT(detectCacheGeometry().l2Bytes, 0u);
    ASSERT_EQ(unsetenv("QGPU_L2_BYTES"), 0);
}

/** Gate-by-gate reference for the tiling differential. */
void
runGateByGate(ChunkedStateVector &state, const Circuit &circuit)
{
    for (const Gate &gate : circuit.gates())
        applyGateChunked(state, gate);
}

void
runSweeps(ChunkedStateVector &state, const Circuit &circuit)
{
    const std::span<const Gate> gates{circuit.gates()};
    std::size_t at = 0;
    while (at < gates.size()) {
        const Sweep sw = nextSweep(gates, at, state.chunkBits());
        applySweepChunked(state,
                          gates.subspan(sw.begin, sw.size()),
                          sw.globalBits);
        at = sw.end;
    }
}

class SweepTiling : public ::testing::TestWithParam<std::string>
{
  protected:
    void TearDown() override { setSimThreads(1); }
};

TEST_P(SweepTiling, TiledChunkLocalPathBitIdentical)
{
    // ctest runs this binary with QGPU_L2_BYTES=64K, deriving an
    // 11-bit sweep tile; chunks of 2^13 amplitudes then split into 4
    // tiles. Launched by hand on a big-L2 machine the tile swallows
    // the chunk and this differential degenerates to the untiled
    // path (still worth the run, but assert the intended config so a
    // lost CMake ENVIRONMENT property is caught).
    EXPECT_EQ(sweepTileBits(), 11)
        << "expected the QGPU_L2_BYTES=64K test environment";

    const std::string &family = GetParam();
    const int n = 14;
    const int chunk_bits = 13;
    const Circuit circuit = circuits::makeBenchmark(family, n);

    setSimThreads(1);
    ChunkedStateVector ref(n, chunk_bits);
    runGateByGate(ref, circuit);

    for (const int threads : {1, 4}) {
        setSimThreads(threads);
        ChunkedStateVector got(n, chunk_bits);
        runSweeps(got, circuit);
        setSimThreads(1);
        for (Index c = 0; c < ref.numChunks(); ++c) {
            const auto &want = ref.chunk(c);
            const auto &have = got.chunk(c);
            for (Index i = 0; i < static_cast<Index>(want.size());
                 ++i)
                ASSERT_EQ(want[i], have[i])
                    << family << " chunk " << c << " amp " << i
                    << " at " << threads << " threads";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SweepTiling,
    ::testing::ValuesIn(circuits::benchmarkNames()),
    [](const auto &info) { return info.param; });

} // namespace
} // namespace qgpu
