/**
 * @file
 * Property tests for the chunk-group machinery: the groups of any
 * gate plan partition the chunk set exactly, group-wise application
 * composes to the full update in any order, and random circuits
 * agree with the reference at random chunk sizes.
 */

#include <algorithm>
#include <numbers>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "statevec/apply.hh"

namespace qgpu
{
namespace
{

/** Random circuit over a wide gate mix, for differential testing. */
Circuit
randomCircuit(int num_qubits, int num_gates, std::uint64_t seed)
{
    Circuit c(num_qubits,
              "random_" + std::to_string(seed));
    Rng rng(seed);
    auto q = [&] {
        return static_cast<int>(rng.nextBelow(num_qubits));
    };
    auto angle = [&] {
        return rng.nextDouble() * 2 * std::numbers::pi;
    };
    for (int g = 0; g < num_gates; ++g) {
        switch (rng.nextBelow(12)) {
          case 0: c.h(q()); break;
          case 1: c.x(q()); break;
          case 2: c.t(q()); break;
          case 3: c.rx(angle(), q()); break;
          case 4: c.rz(angle(), q()); break;
          case 5: c.sx(q()); break;
          case 6: {
              const int a = q();
              const int b = (a + 1 + static_cast<int>(rng.nextBelow(
                                static_cast<std::uint64_t>(
                                    num_qubits - 1)))) %
                            num_qubits;
              c.cx(a, b);
              break;
          }
          case 7: {
              const int a = q();
              const int b = (a + 1) % num_qubits;
              c.cp(angle(), std::min(a, b), std::max(a, b));
              break;
          }
          case 8: {
              const int a = q();
              const int b = (a + 2) % num_qubits;
              if (a != b)
                  c.swap(std::min(a, b), std::max(a, b));
              break;
          }
          case 9: {
              const int a = q();
              const int b = (a + 1) % num_qubits;
              c.rzz(angle(), std::min(a, b), std::max(a, b));
              break;
          }
          case 10: {
              const int a = q();
              const int b = (a + 3) % num_qubits;
              if (a != b)
                  c.rxx(angle(), std::min(a, b), std::max(a, b));
              break;
          }
          default: {
              const int a = q();
              const int b = (a + 1) % num_qubits;
              const int t = (a + 2) % num_qubits;
              if (a != b && b != t && a != t)
                  c.ccx(a, b, t);
              break;
          }
        }
    }
    return c;
}

class PlanPartition
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PlanPartition, GroupsPartitionAllChunks)
{
    const auto &[chunk_bits, gate_pick] = GetParam();
    const int n = 8;
    const std::vector<Gate> gates = {
        Gate(GateKind::H, {0}),
        Gate(GateKind::H, {7}),
        Gate(GateKind::CX, {2, 6}),
        Gate(GateKind::SWAP, {5, 7}),
        Gate(GateKind::CCX, {1, 6, 7}),
        Gate(GateKind::CZ, {6, 7}),
        Gate(GateKind::RZZ, {4, 6}, {0.3}),
    };
    const Gate &gate = gates[static_cast<std::size_t>(gate_pick)];
    const GatePlan plan(gate, n, chunk_bits);

    std::vector<int> seen(Index{1} << (n - chunk_bits), 0);
    for (Index g = 0; g < plan.numGroups(); ++g) {
        const auto members = plan.members(g);
        EXPECT_EQ(members.size(),
                  static_cast<std::size_t>(plan.chunksPerGroup()));
        EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
        for (Index c : members) {
            ASSERT_LT(c, seen.size());
            ++seen[c];
        }
    }
    for (int count : seen)
        EXPECT_EQ(count, 1);
}

INSTANTIATE_TEST_SUITE_P(
    ChunkSizesAndGates, PlanPartition,
    ::testing::Combine(::testing::Values(0, 2, 4, 6, 8),
                       ::testing::Range(0, 7)));

TEST(ApplyGroup, GroupOrderDoesNotMatter)
{
    // Apply the same gate's groups in reverse order; the result must
    // match the forward order exactly (groups touch disjoint chunks).
    Circuit prep = randomCircuit(6, 30, 77);
    const Gate gate(GateKind::CX, {1, 5});

    ChunkedStateVector fwd(6, 2), rev(6, 2);
    applyCircuitChunked(fwd, prep);
    applyCircuitChunked(rev, prep);

    const GatePlan plan(gate, 6, 2);
    for (Index g = 0; g < plan.numGroups(); ++g)
        applyGroup(fwd, gate, plan, g);
    for (Index g = plan.numGroups(); g-- > 0;)
        applyGroup(rev, gate, plan, g);

    EXPECT_LT(fwd.toFlat().maxAbsDiff(rev.toFlat()), 1e-16);
}

class RandomCircuitEquivalence
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomCircuitEquivalence, ChunkedMatchesFlat)
{
    const std::uint64_t seed = GetParam();
    const int n = 8;
    const Circuit c = randomCircuit(n, 60, seed);
    const StateVector want = simulateReference(c);
    EXPECT_NEAR(want.norm(), 1.0, 1e-10);

    Rng rng(seed * 3 + 1);
    const int chunk_bits = static_cast<int>(rng.nextBelow(n + 1));
    ChunkedStateVector state(n, chunk_bits);
    applyCircuitChunked(state, c);
    EXPECT_LT(state.toFlat().maxAbsDiff(want), 1e-11)
        << "seed " << seed << " chunkBits " << chunk_bits;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitEquivalence,
                         ::testing::Range<std::uint64_t>(1, 21));

} // namespace
} // namespace qgpu
