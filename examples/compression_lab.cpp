/**
 * @file
 * Compression lab: run GFC over the final states of every benchmark
 * family and over synthetic payloads, verify losslessness on the
 * spot, and print ratios — the hands-on version of the paper's
 * Fig. 10 compressibility study.
 *
 * Run:  ./compression_lab [num_qubits]
 */

#include <cstdio>
#include <cstdlib>

#include "circuits/circuits.hh"
#include "compress/gfc.hh"
#include "statevec/state_vector.hh"

using namespace qgpu;

int
main(int argc, char **argv)
{
    const int n = argc > 1 ? std::atoi(argv[1]) : 14;
    if (n < 4 || n > 22) {
        std::fprintf(stderr, "usage: %s [qubits 4..22]\n", argv[0]);
        return 1;
    }

    GfcCodec codec; // warp 32, 32 segments, as on the GPU
    std::printf("%-10s %12s %12s %8s %10s\n", "state", "raw bytes",
                "compressed", "ratio", "lossless?");

    for (const auto &family : circuits::benchmarkNames()) {
        const StateVector s =
            simulateReference(circuits::makeBenchmark(family, n));
        const CompressedBlock block =
            codec.compressAmps(s.amplitudes().data(), s.size());

        std::vector<Amp> back(s.size());
        codec.decompressAmps(block, back.data());
        bool exact = true;
        for (Index i = 0; i < s.size(); ++i)
            exact &= s[i] == back[i];

        std::printf("%-10s %12llu %12llu %8.3f %10s\n",
                    (family + "_" + std::to_string(n)).c_str(),
                    static_cast<unsigned long long>(
                        block.originalBytes()),
                    static_cast<unsigned long long>(
                        block.compressedBytes()),
                    block.ratio(), exact ? "yes" : "NO!");
    }

    // Synthetic extremes.
    const std::vector<double> zeros(1 << n, 0.0);
    const CompressedBlock zero_block =
        codec.compress(zeros.data(), zeros.size());
    std::printf("%-10s %12llu %12llu %8.3f %10s\n", "all-zero",
                static_cast<unsigned long long>(
                    zero_block.originalBytes()),
                static_cast<unsigned long long>(
                    zero_block.compressedBytes()),
                zero_block.ratio(), "yes");
    return 0;
}
