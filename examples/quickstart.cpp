/**
 * @file
 * Quickstart: build a GHZ circuit, simulate it with the full Q-GPU
 * engine on a scaled P100 machine, sample measurement outcomes, and
 * print the engine's virtual-time report.
 *
 * Run:  ./quickstart [num_qubits]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "statevec/measure.hh"

using namespace qgpu;

int
main(int argc, char **argv)
{
    const int n = argc > 1 ? std::atoi(argv[1]) : 12;
    if (n < 2 || n > 24) {
        std::fprintf(stderr, "usage: %s [qubits in 2..24]\n",
                     argv[0]);
        return 1;
    }

    // 1. Build a circuit with the fluent builder API.
    Circuit ghz(n, "ghz");
    ghz.h(0);
    for (int q = 0; q + 1 < n; ++q)
        ghz.cx(q, q + 1);

    // 2. Build a machine: one P100 whose memory holds 1/16 of the
    //    state, so the engine actually streams chunks.
    Machine machine = machines::makeScaled(n);

    // 3. Run the full Q-GPU recipe (overlap + pruning + reordering +
    //    compression).
    ExecOptions options;
    options.recordTimeline = true;
    const RunResult result =
        harness::runOn("qgpu", machine, ghz, options);

    std::printf("engine: %s\n", result.engine.c_str());
    std::printf("virtual execution time: %.3f s "
                "(at 34-qubit-equivalent scale)\n\n",
                result.totalTime);

    // 4. Inspect the final state.
    std::printf("|<0...0|psi>|^2 = %.4f, |<1...1|psi>|^2 = %.4f\n",
                std::norm(result.state[0]),
                std::norm(result.state[result.state.size() - 1]));

    Rng rng(2026);
    const auto counts = sampleCounts(result.state, 1000, rng);
    std::printf("1000 shots:\n");
    for (const auto &[outcome, count] : counts)
        std::printf("  %0*llx: %llu\n", (n + 3) / 4,
                    static_cast<unsigned long long>(outcome),
                    static_cast<unsigned long long>(count));

    // 5. The per-phase virtual-time breakdown.
    std::printf("\nstats:\n%s", result.stats.toString().c_str());
    return 0;
}
