/**
 * @file
 * qgpu_serve - multi-tenant job-service front end over the simulator.
 *
 * Three modes:
 *
 *   qgpu_serve --generate trace.jsonl [traffic flags]
 *       Write a deterministic synthetic traffic trace (one JSON job
 *       request per line) without running anything.
 *
 *   qgpu_serve --replay trace.jsonl [service flags]
 *       Submit every request of the trace, in order, through a
 *       JobService and print one JSON result line per job (in job-id
 *       order, so the output is deterministic run-to-run), then the
 *       service.* counter summary.
 *
 *   qgpu_serve [traffic flags] [service flags]
 *       Generate-and-run: the synthetic trace goes straight into the
 *       service.
 *
 * Traffic flags: --jobs n, --repeat f (0..1 repeat fraction),
 *   --tenants n, --min-qubits n, --max-qubits n, --shots n,
 *   --traffic-seed s, --families a,b,...
 * Service flags: --engine name, --gpu preset, --devices n,
 *   --active n (concurrent jobs), --queue n (admission bound),
 *   --small-burst n (fair-share burst; 0 = FIFO),
 *   --small-cost c (small/large boundary on 2^qubits * gates),
 *   --cache-mb n (0 disables the result cache), --fast-math
 * Output: --out file (result lines; default stdout), --quiet (no
 *   per-job lines, counters only).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "service/scheduler.hh"
#include "service/traffic.hh"

using namespace qgpu;
using namespace qgpu::service;

namespace
{

std::vector<std::string>
splitList(std::string list)
{
    std::vector<std::string> out;
    for (char *tok = std::strtok(list.data(), ","); tok != nullptr;
         tok = std::strtok(nullptr, ","))
        out.emplace_back(tok);
    return out;
}

void
printCounters(const JobService &svc)
{
    static const char *names[] = {
        "service.submitted",
        "service.completed",
        "service.failed",
        "service.rejected",
        "service.cancelled",
        "service.cache.hit",
        "service.cache.miss",
        "service.singleflight.coalesced",
    };
    std::fprintf(stderr, "counters:\n");
    for (const char *name : names)
        std::fprintf(stderr, "  %-32s %llu\n", name,
                     static_cast<unsigned long long>(
                         svc.counter(name)));
    const ResultCacheStats cache = svc.cacheStats();
    std::fprintf(stderr,
                 "  cache: %llu entries, %.1f MiB resident, "
                 "%llu evictions\n",
                 static_cast<unsigned long long>(cache.entries),
                 static_cast<double>(cache.bytes) / (1 << 20),
                 static_cast<unsigned long long>(cache.evictions));
}

} // namespace

int
main(int argc, char **argv)
{
    TrafficConfig traffic;
    traffic.jobs = 40;
    traffic.repeatFraction = 0.5;
    ServiceConfig config;
    std::string generate_path, replay_path, out_path;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                QGPU_FATAL("missing value for ", flag);
            return argv[++i];
        };
        if (flag == "--generate") {
            generate_path = value();
        } else if (flag == "--replay") {
            replay_path = value();
        } else if (flag == "--jobs") {
            traffic.jobs = std::atoi(value().c_str());
        } else if (flag == "--repeat") {
            traffic.repeatFraction = std::atof(value().c_str());
        } else if (flag == "--tenants") {
            traffic.tenants = std::atoi(value().c_str());
        } else if (flag == "--min-qubits") {
            traffic.minQubits = std::atoi(value().c_str());
        } else if (flag == "--max-qubits") {
            traffic.maxQubits = std::atoi(value().c_str());
        } else if (flag == "--shots") {
            traffic.shots = static_cast<std::uint64_t>(
                std::atoll(value().c_str()));
        } else if (flag == "--traffic-seed") {
            traffic.seed = static_cast<std::uint64_t>(
                std::atoll(value().c_str()));
        } else if (flag == "--families") {
            traffic.families = splitList(value());
        } else if (flag == "--engine") {
            traffic.engine = value();
        } else if (flag == "--gpu") {
            config.gpu = value();
        } else if (flag == "--devices") {
            config.devices = std::atoi(value().c_str());
        } else if (flag == "--active") {
            config.maxActiveJobs = std::atoi(value().c_str());
        } else if (flag == "--queue") {
            config.maxQueueDepth = std::atoi(value().c_str());
        } else if (flag == "--small-burst") {
            config.fairShareSmallBurst = std::atoi(value().c_str());
        } else if (flag == "--small-cost") {
            config.smallCostThreshold = std::atof(value().c_str());
        } else if (flag == "--cache-mb") {
            config.cacheBytes =
                static_cast<std::size_t>(
                    std::atoll(value().c_str()))
                << 20;
        } else if (flag == "--fast-math") {
            config.fastMath = true;
        } else if (flag == "--out") {
            out_path = value();
        } else if (flag == "--quiet") {
            quiet = true;
        } else {
            QGPU_FATAL("unknown flag '", flag, "'");
        }
    }
    if (traffic.jobs < 1 || traffic.repeatFraction < 0.0 ||
        traffic.repeatFraction > 1.0 ||
        traffic.minQubits > traffic.maxQubits)
        QGPU_FATAL("bad arguments");

    if (!generate_path.empty()) {
        const auto requests = generateTraffic(traffic);
        saveTraffic(requests, generate_path);
        std::fprintf(stderr, "qgpu_serve: wrote %zu requests to %s\n",
                     requests.size(), generate_path.c_str());
        return 0;
    }

    const std::vector<JobRequest> requests =
        replay_path.empty() ? generateTraffic(traffic)
                            : loadTraffic(replay_path);
    std::fprintf(stderr,
                 "qgpu_serve: %zu jobs, engine %s, %d active, "
                 "queue %d, burst %d, cache %.0f MiB\n",
                 requests.size(), traffic.engine.c_str(),
                 config.maxActiveJobs, config.maxQueueDepth,
                 config.fairShareSmallBurst,
                 static_cast<double>(config.cacheBytes) /
                     (1 << 20));

    JobService svc(config);
    std::vector<std::uint64_t> ids;
    ids.reserve(requests.size());
    for (const JobRequest &r : requests)
        ids.push_back(svc.submit(r));
    svc.drain();

    std::ofstream file;
    if (!out_path.empty()) {
        file.open(out_path);
        if (!file)
            QGPU_FATAL("cannot write '", out_path, "'");
    }
    for (const std::uint64_t id : ids) {
        const JobResult r = svc.result(id);
        if (quiet)
            continue;
        const std::string line = r.toJson().toString();
        if (file.is_open())
            file << line << '\n';
        else
            std::printf("%s\n", line.c_str());
    }
    printCounters(svc);
    return 0;
}
