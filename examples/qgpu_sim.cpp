/**
 * @file
 * qgpu_sim - the command-line simulator driver. Loads a benchmark
 * family or an OpenQASM 2.0 file, runs it through a chosen engine on
 * a chosen (scaled) machine, and reports measurement counts, timing,
 * and stats.
 *
 * Examples:
 *   ./qgpu_sim --circuit qft --qubits 14 --engine qgpu --shots 100
 *   ./qgpu_sim --qasm program.qasm --engine baseline --gpu v100
 *   ./qgpu_sim --circuit gs --qubits 12 --gpus 4 --gpu p4 --timeline
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/parallel.hh"
#include "engine/batched.hh"
#include "harness/experiment.hh"
#include "qc/qasm.hh"
#include "statevec/kernel_dispatch.hh"
#include "statevec/measure.hh"

using namespace qgpu;

namespace
{

struct Args
{
    std::string circuit;
    std::string qasm_path;
    std::string engine = "qgpu";
    std::string gpu = "p100";
    int qubits = 14;
    int gpus = 1;
    int paper_qubits = 34;
    double device_fraction = 1.0 / 16.0;
    std::uint64_t shots = 0;
    std::uint64_t seed = 2026;
    int threads = -1; // -1: keep QGPU_SIM_THREADS / default
    bool timeline = false;
    bool stats = false;
    bool exchange_stats = false;
    bool kernel_stats = false;
    bool sweep_stats = false;
    bool verify_chunks = false;
    int verify_sample = 8;
    bool fast_math = false;
    std::string precision;
    double adaptive_threshold = -1.0; // < 0: keep the default
    std::string storage;
    long long working_set = 0;
    std::string spill_dir;
    bool storage_stats = false;
    std::string fault_spec = "env";
    std::uint64_t fault_seed = 0x517e57ull;
    std::string noise_spec;
    std::uint64_t shot_seed = 0x5407ull;
    std::string batch_mode = "shared";
    std::string trace_path;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --circuit <family>    hchain|rqc|qaoa|gs|hlf|qft|iqp|qf|"
        "bv|random|grqc\n"
        "  --qasm <file>         load an OpenQASM 2.0 program "
        "instead\n"
        "  --qubits <n>          register size for --circuit "
        "(default 14)\n"
        "  --engine <name>       baseline|naive|overlap|pruning|"
        "reorder|qgpu|cpu|qsim|qdk\n"
        "  --gpu <preset>        p100|v100|v100nvl|a100|p4\n"
        "  --gpus <k>            number of GPUs (default 1)\n"
        "  --devices <k>         alias for --gpus\n"
        "  --fraction <f>        device memory as a fraction of the "
        "state (default 1/16)\n"
        "  --paper-qubits <n>    rate-scaling reference size "
        "(default 34)\n"
        "  --shots <k>           sample k measurement outcomes\n"
        "  --seed <s>            sampling seed\n"
        "  --threads <k>         host simulation threads (0 = all "
        "cores;\n"
        "                        default: $QGPU_SIM_THREADS or 1)\n"
        "  --timeline            print the ASCII execution timeline\n"
        "  --stats               print every engine counter\n"
        "  --exchange-stats      print the cross-device exchange and "
        "per-device\n"
        "                        busy breakdown (multi-device runs)\n"
        "  --kernel-stats        print per-kernel-kind dispatch "
        "counters\n"
        "  --sweep-stats         print sweep-executor counters "
        "(passes over the state vs gates)\n"
        "  --verify-chunks       checksum chunks at compress/D2H "
        "time and verify at\n"
        "                        H2D/decompress time; prints "
        "integrity counters\n"
        "  --verify-sample <k>   max chunks verified per sweep "
        "(rotating window;\n"
        "                        0 = every chunk; default 8)\n"
        "  --fast-math           run the contracted-FMA kernel tier "
        "(1e-12 accuracy\n"
        "                        contract; also $QGPU_FAST_MATH=1)\n"
        "  --precision <p>       amplitude storage precision: "
        "f64|f32|adaptive\n"
        "                        (f32 halves every modeled transfer; "
        "1e-5 contract)\n"
        "  --adaptive-threshold <t>\n"
        "                        adaptive mode: chunks whose largest "
        "amplitude\n"
        "                        component is below t stay f64 "
        "(default 1e-6)\n"
        "  --storage <kind>      chunk storage backend: "
        "raw|compressed|spill\n"
        "                        (cold chunks GFC-encoded in host "
        "memory / paged to\n"
        "                        a scratch file; bit-identical to "
        "raw)\n"
        "  --working-set <k>     max decompressed chunks kept "
        "resident (0 = auto:\n"
        "                        a quarter of host RAM)\n"
        "  --spill-dir <dir>     scratch directory for --storage "
        "spill (default:\n"
        "                        $TMPDIR or /tmp)\n"
        "  --storage-stats       print storage.* counters (working-"
        "set hits,\n"
        "                        evictions, compressed bytes)\n"
        "  --fault-spec <spec>   inject faults, e.g. "
        "\"d2h:0.01,codec:0.005\" (points: h2d,\n"
        "                        d2h, peer, codec, alloc; default: "
        "$QGPU_FAULT_SPEC)\n"
        "  --fault-seed <s>      fault-injector seed\n"
        "  --noise-spec <spec>   stochastic noise channels for "
        "batched shots, e.g.\n"
        "                        \"pauli1:0.01,damp:0.02,"
        "readout:0.05\" or a JSON\n"
        "                        object (noise/model.hh); needs "
        "--shots > 0\n"
        "  --shot-seed <s>       base seed of the noisy batch "
        "(shot i draws from\n"
        "                        splitSeed(s, i))\n"
        "  --batch-mode <m>      shared (build the sweep schedule "
        "once, replay per\n"
        "                        shot) | pershot (expand each "
        "shot's sampled errors\n"
        "                        into its own circuit); default "
        "shared\n"
        "  --trace <file>        write a JSON execution trace "
        "(per-phase totals + spans)\n",
        argv0);
    std::exit(1);
}

DeviceSpec
gpuPreset(const std::string &name)
{
    if (name == "p100")
        return machines::p100();
    if (name == "v100")
        return machines::v100Pcie();
    if (name == "v100nvl")
        return machines::v100Nvlink();
    if (name == "a100")
        return machines::a100();
    if (name == "p4")
        return machines::p4();
    QGPU_FATAL("unknown GPU preset '", name, "'");
}

Args
parse(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (flag == "--circuit")
            args.circuit = value();
        else if (flag == "--qasm")
            args.qasm_path = value();
        else if (flag == "--qubits")
            args.qubits = std::atoi(value().c_str());
        else if (flag == "--engine")
            args.engine = value();
        else if (flag == "--gpu")
            args.gpu = value();
        else if (flag == "--gpus" || flag == "--devices")
            args.gpus = std::atoi(value().c_str());
        else if (flag == "--fraction")
            args.device_fraction = std::atof(value().c_str());
        else if (flag == "--paper-qubits")
            args.paper_qubits = std::atoi(value().c_str());
        else if (flag == "--shots")
            args.shots = std::strtoull(value().c_str(), nullptr, 10);
        else if (flag == "--seed")
            args.seed = std::strtoull(value().c_str(), nullptr, 10);
        else if (flag == "--threads")
            args.threads = std::atoi(value().c_str());
        else if (flag == "--timeline")
            args.timeline = true;
        else if (flag == "--stats")
            args.stats = true;
        else if (flag == "--exchange-stats")
            args.exchange_stats = true;
        else if (flag == "--kernel-stats")
            args.kernel_stats = true;
        else if (flag == "--sweep-stats")
            args.sweep_stats = true;
        else if (flag == "--verify-chunks")
            args.verify_chunks = true;
        else if (flag == "--verify-sample")
            args.verify_sample = std::atoi(value().c_str());
        else if (flag == "--fast-math")
            args.fast_math = true;
        else if (flag == "--precision")
            args.precision = value();
        else if (flag == "--adaptive-threshold")
            args.adaptive_threshold = std::atof(value().c_str());
        else if (flag == "--storage")
            args.storage = value();
        else if (flag == "--working-set")
            args.working_set = std::atoll(value().c_str());
        else if (flag == "--spill-dir")
            args.spill_dir = value();
        else if (flag == "--storage-stats")
            args.storage_stats = true;
        else if (flag == "--fault-spec")
            args.fault_spec = value();
        else if (flag == "--fault-seed")
            args.fault_seed =
                std::strtoull(value().c_str(), nullptr, 10);
        else if (flag == "--noise-spec")
            args.noise_spec = value();
        else if (flag == "--shot-seed")
            args.shot_seed =
                std::strtoull(value().c_str(), nullptr, 10);
        else if (flag == "--batch-mode")
            args.batch_mode = value();
        else if (flag == "--trace")
            args.trace_path = value();
        else
            usage(argv[0]);
    }
    if (args.circuit.empty() == args.qasm_path.empty())
        usage(argv[0]); // exactly one source required
    return args;
}

Circuit
loadCircuit(const Args &args)
{
    if (!args.qasm_path.empty()) {
        std::ifstream in(args.qasm_path);
        if (!in)
            QGPU_FATAL("cannot open '", args.qasm_path, "'");
        std::ostringstream buf;
        buf << in.rdbuf();
        return fromQasm(buf.str());
    }
    return circuits::makeBenchmark(args.circuit, args.qubits);
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parse(argc, argv);
    if (args.threads >= 0)
        setSimThreads(args.threads);
    const Circuit circuit = loadCircuit(args);

    std::printf("circuit: %s (%d qubits, %zu gates, depth %d)\n",
                circuit.name().c_str(), circuit.numQubits(),
                circuit.numGates(), circuit.depth());

    Machine machine = machines::makeScaled(
        circuit.numQubits(), gpuPreset(args.gpu),
        args.device_fraction, args.gpus, args.paper_qubits);
    std::printf("machine: %dx %s, %.1f MiB device memory each "
                "(state: %.1f MiB)\n",
                machine.numDevices(), args.gpu.c_str(),
                static_cast<double>(
                    machine.device(0).spec().memBytes) /
                    (1 << 20),
                static_cast<double>(
                    stateBytes(circuit.numQubits())) /
                    (1 << 20));

    ExecOptions options;
    options.recordTimeline = args.timeline;
    options.recordTrace = !args.trace_path.empty();
    options.verifyChunks = args.verify_chunks;
    options.verifySampleChunks = args.verify_sample;
    options.faultSpec = args.fault_spec;
    options.faultSeed = args.fault_seed;
    if (args.fast_math)
        options.fastMath = true; // env opt-in already seeded the default
    if (!args.precision.empty() &&
        !parsePrecision(args.precision, options.precision))
        QGPU_FATAL("unknown precision '", args.precision,
                   "' (expected f64, f32, or adaptive)");
    if (args.adaptive_threshold >= 0.0)
        options.adaptiveThreshold = args.adaptive_threshold;
    if (!args.storage.empty() &&
        !parseStorageKind(args.storage, options.storage))
        QGPU_FATAL("unknown storage kind '", args.storage,
                   "' (expected raw, compressed, or spill)");
    if (args.working_set > 0)
        options.workingSetChunks = static_cast<Index>(args.working_set);
    options.spillDir = args.spill_dir;
    if (options.fastMath || options.precision != Precision::f64 ||
        options.storage != StorageKind::Raw)
        std::printf("tiers:   kernels=%s, precision=%s, "
                    "chunk-storage=%s\n",
                    options.fastMath
                        ? (fastMathCompiled()
                               ? "fast-math(compiled)"
                               : "fast-math(fallback-exact)")
                        : "exact",
                    precisionName(options.precision),
                    storageKindName(options.storage));

    const bool noisy =
        !args.noise_spec.empty() && args.noise_spec != "none";
    if (noisy) {
        // Stochastic batched path: N seeded shot trajectories over
        // the build-once sweep schedule (engine/batched.hh).
        if (args.shots == 0)
            QGPU_FATAL("--noise-spec needs --shots > 0");
        options.noiseSpec = args.noise_spec;
        options.shotSeed = args.shot_seed;
        if (args.batch_mode == "pershot")
            options.batchMode = BatchMode::PerShot;
        else if (args.batch_mode != "shared")
            QGPU_FATAL("unknown batch mode '", args.batch_mode,
                       "' (expected shared or pershot)");
        const auto engine =
            harness::makeEngine(args.engine, machine, options);
        const BatchResult batch =
            engine->runBatched(circuit, args.shots);
        std::printf("engine:  %s (%s batch)\n",
                    batch.engine.c_str(), args.batch_mode.c_str());
        std::printf("wall time:    %.3f s (schedule %.3f s, %d "
                    "host thread%s)\n",
                    batch.wallSeconds, batch.scheduleSeconds,
                    simThreads(), simThreads() == 1 ? "" : "s");
        if (!batch.ok()) {
            std::printf("\nSIM ERROR after %llu shots: %s\n",
                        static_cast<unsigned long long>(
                            batch.outcomes.size()),
                        batch.error->toString().c_str());
            return 2;
        }
        std::printf("\ncounts (%llu noisy shots):\n",
                    static_cast<unsigned long long>(args.shots));
        for (const auto &[outcome, count] : batch.counts) {
            std::printf("  ");
            for (int q = circuit.numQubits() - 1; q >= 0; --q)
                std::printf("%d",
                            static_cast<int>(outcome >> q) & 1);
            std::printf(": %llu\n",
                        static_cast<unsigned long long>(count));
        }
        std::printf("\nbatch counters:\n");
        for (const auto &name : batch.stats.names()) {
            if (name.rfind("shots.", 0) != 0 &&
                name.rfind("noise.", 0) != 0)
                continue;
            std::printf("  %-28s %g\n", name.c_str(),
                        batch.stats.get(name));
        }
        if (args.stats)
            std::printf("\nstats:\n%s",
                        batch.stats.toString().c_str());
        return 0;
    }

    const RunResult result =
        harness::runOn(args.engine, machine, circuit, options);

    std::printf("engine:  %s\n", result.engine.c_str());
    std::printf("virtual time: %.3f s (at %d-qubit-equivalent "
                "scale)\n",
                result.totalTime, args.paper_qubits);
    std::printf("wall time:    %.3f s (%d host thread%s)\n",
                result.wallSeconds, simThreads(),
                simThreads() == 1 ? "" : "s");

    const bool show_integrity =
        args.verify_chunks || args.fault_spec != "env" ||
        std::getenv("QGPU_FAULT_SPEC") != nullptr;
    if (show_integrity) {
        // integrity.* counters from the chunk-integrity layer
        // (fault/integrity.hh), mirrored into the global registry at
        // the end of the run.
        const auto &mr = MetricsRegistry::global();
        std::printf("\nchunk integrity:\n");
        bool any = false;
        for (const auto &name : mr.counterNames()) {
            if (name.rfind("integrity.", 0) != 0)
                continue;
            std::printf("  %-28s %.0f\n", name.c_str(),
                        mr.counter(name));
            any = true;
        }
        if (!any)
            std::printf("  (clean -- no checksums recorded, no "
                        "faults injected)\n");
    }

    if (!result.ok()) {
        // Recovery exhausted: report the structured error and a
        // non-zero exit instead of a meaningless state.
        std::printf("\nSIM ERROR: %s\n",
                    result.error->toString().c_str());
        return 2;
    }
    std::printf("state norm:   %.12f\n", result.state.norm());

    if (args.shots > 0) {
        Rng rng(args.seed);
        const auto counts =
            sampleCounts(result.state, args.shots, rng);
        std::printf("\ncounts (%llu shots):\n",
                    static_cast<unsigned long long>(args.shots));
        for (const auto &[outcome, count] : counts) {
            std::printf("  ");
            for (int q = circuit.numQubits() - 1; q >= 0; --q)
                std::printf("%d", static_cast<int>(outcome >> q) & 1);
            std::printf(": %llu\n",
                        static_cast<unsigned long long>(count));
        }
    }

    if (args.exchange_stats) {
        // exchange.* counters plus the per-device busy rows
        // (device.<i>.busy/h2d/d2h/peer, emitted for multi-device
        // runs by ExecutionEngine::run).
        std::printf("\ncross-device exchange:\n");
        bool any = false;
        for (const auto &name : result.stats.names()) {
            if (name.rfind("exchange.", 0) != 0 &&
                name.rfind("device.", 0) != 0 &&
                name != statkeys::peerTime)
                continue;
            std::printf("  %-28s %g\n", name.c_str(),
                        result.stats.get(name));
            any = true;
        }
        if (!any)
            std::printf("  (none -- single device, or no "
                        "cross-shard sweeps)\n");
    }
    if (args.storage_stats) {
        // storage.* counters from the bounded-residency layer
        // (statevec/chunk_storage.hh), exported into the run's stats
        // by exportStorageStats.
        std::printf("\nchunk storage:\n");
        bool any = false;
        for (const auto &name : result.stats.names()) {
            if (name.rfind("storage.", 0) != 0)
                continue;
            std::printf("  %-28s %g\n", name.c_str(),
                        result.stats.get(name));
            any = true;
        }
        if (!any)
            std::printf("  (raw storage -- no bounded working "
                        "set)\n");
    }
    if (args.timeline)
        std::printf("\n%s", result.timeline.render(100).c_str());
    if (args.stats)
        std::printf("\nstats:\n%s", result.stats.toString().c_str());
    if (args.kernel_stats) {
        // kernel.<kind>.invocations / kernel.<kind>.amps, published
        // by the dispatch layer (statevec/kernel_dispatch.hh).
        const auto &mr = MetricsRegistry::global();
        std::printf("\nkernel dispatch counters:\n");
        bool any = false;
        for (const auto &name : mr.counterNames()) {
            if (name.rfind("kernel.", 0) != 0)
                continue;
            std::printf("  %-28s %.0f\n", name.c_str(),
                        mr.counter(name));
            any = true;
        }
        if (!any)
            std::printf("  (none -- engine bypassed the dispatch "
                        "layer)\n");
    }
    if (args.sweep_stats) {
        // sweep.* counters from the sweep executor
        // (statevec/apply.hh): passes over the state = sweeps, not
        // gates, so gates/sweep is the batching factor.
        const auto &mr = MetricsRegistry::global();
        const double sweeps = mr.counter("sweep.count");
        const double passes = mr.counter("sweep.state_passes");
        const Histogram per = mr.histogram("sweep.gates_per_sweep");
        std::printf("\nsweep executor counters:\n");
        if (sweeps == 0.0) {
            std::printf("  (none -- engine bypassed the sweep "
                        "executor)\n");
        } else {
            std::printf("  sweeps executed:     %.0f\n", sweeps);
            std::printf("  state passes:        %.0f (vs %zu gates "
                        "gate-by-gate)\n",
                        passes, circuit.numGates());
            std::printf("  gates per sweep:     %.2f mean, %.0f "
                        "max\n",
                        per.mean(), per.max());
        }
    }
    if (!args.trace_path.empty()) {
        harness::writeRunReport(result, args.trace_path);
        std::printf("\ntrace: %zu spans -> %s\n",
                    result.trace.spans().size(),
                    args.trace_path.c_str());
        std::printf("phase breakdown (exposed / busy seconds):\n");
        for (const auto &[phase, total] : result.trace.phaseTotals()) {
            std::printf("  %-12s %10.4f / %10.4f  (%llu spans)\n",
                        phase.c_str(), total.exposed, total.busy,
                        static_cast<unsigned long long>(total.spans));
        }
    }
    return 0;
}
