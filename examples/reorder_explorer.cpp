/**
 * @file
 * The paper's Fig. 8 walk-through: reorder a graph-state circuit with
 * the greedy and forward-looking heuristics, print each gate sequence
 * with its running involvement count, and verify the final states are
 * identical.
 *
 * Run:  ./reorder_explorer [num_qubits]
 */

#include <cstdio>
#include <cstdlib>

#include "circuits/circuits.hh"
#include "reorder/reorder.hh"
#include "statevec/state_vector.hh"

using namespace qgpu;

namespace
{

void
show(const char *title, const Circuit &c)
{
    std::printf("--- %s ---\n", title);
    const auto curve = c.involvementCurve();
    for (std::size_t i = 0; i < c.numGates(); ++i)
        std::printf("  %2zu. %-16s involved=%d\n", i + 1,
                    c.gates()[i].toString().c_str(), curve[i]);
    long area = 0;
    for (int v : curve)
        area += v;
    std::printf("  involvement area: %ld (lower = more pruning)\n\n",
                area);
}

} // namespace

int
main(int argc, char **argv)
{
    const int n = argc > 1 ? std::atoi(argv[1]) : 5;
    if (n < 2 || n > 16) {
        std::fprintf(stderr, "usage: %s [qubits 2..16]\n", argv[0]);
        return 1;
    }

    const Circuit original = circuits::graphState(n);
    const Circuit greedy =
        reorderCircuit(original, ReorderKind::Greedy);
    const Circuit forward =
        reorderCircuit(original, ReorderKind::ForwardLooking);

    show("original order (all H first)", original);
    show("greedy reordering (Algorithm 2)", greedy);
    show("forward-looking reordering (Algorithm 3)", forward);

    const StateVector want = simulateReference(original);
    std::printf("max |amp| difference vs original: greedy %.2e, "
                "forward-looking %.2e\n",
                want.maxAbsDiff(simulateReference(greedy)),
                want.maxAbsDiff(simulateReference(forward)));
    std::printf("(reordering provably never changes the result)\n");
    return 0;
}
