/**
 * @file
 * OpenQASM interchange tool: emit any benchmark family as an
 * OpenQASM 2.0 program (the route the paper takes to run its circuits
 * on Qsim-Cirq/QDK), or parse a program from stdin and report its
 * structure and involvement profile.
 *
 * Run:  ./qasm_tool emit <family> <qubits>
 *       ./qasm_tool info < program.qasm
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "circuits/circuits.hh"
#include "qc/qasm.hh"

using namespace qgpu;

int
main(int argc, char **argv)
{
    const std::string mode = argc > 1 ? argv[1] : "";

    if (mode == "emit" && argc == 4) {
        const Circuit c =
            circuits::makeBenchmark(argv[2], std::atoi(argv[3]));
        std::fputs(toQasm(c).c_str(), stdout);
        return 0;
    }

    if (mode == "info") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        const Circuit c = fromQasm(buf.str());
        std::printf("qubits: %d\n", c.numQubits());
        std::printf("gates:  %zu\n", c.numGates());
        std::printf("depth:  %d\n", c.depth());
        std::printf("ops before full involvement: %zu (%.1f%%)\n",
                    c.opsBeforeFullInvolvement(),
                    100.0 *
                        static_cast<double>(
                            c.opsBeforeFullInvolvement()) /
                        static_cast<double>(c.numGates()));
        std::printf("census:\n");
        for (const auto &[name, count] : c.gateCensus())
            std::printf("  %-6s %zu\n", name.c_str(), count);
        return 0;
    }

    std::fprintf(stderr,
                 "usage: %s emit <family> <qubits>\n"
                 "       %s info < program.qasm\n"
                 "families: hchain rqc qaoa gs hlf qft iqp qf bv "
                 "grqc\n",
                 argv[0], argv[0]);
    return 1;
}
