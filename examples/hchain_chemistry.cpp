/**
 * @file
 * Chemistry workload walkthrough: simulate a Trotterized linear
 * hydrogen chain (the paper's hchain benchmark) through every
 * execution version and compare their virtual times — the per-circuit
 * story behind Fig. 12 — then measure site occupation probabilities
 * from the final state.
 *
 * Run:  ./hchain_chemistry [num_qubits] [layers]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "statevec/measure.hh"

using namespace qgpu;

int
main(int argc, char **argv)
{
    const int n = argc > 1 ? std::atoi(argv[1]) : 12;
    const int layers = argc > 2 ? std::atoi(argv[2]) : 6;
    if (n < 2 || n > 22 || layers < 1) {
        std::fprintf(stderr, "usage: %s [qubits 2..22] [layers]\n",
                     argv[0]);
        return 1;
    }

    const Circuit chain = circuits::hchain(n, layers);
    std::printf("circuit: %s, %zu gates, depth %d\n\n",
                chain.name().c_str(), chain.numGates(),
                chain.depth());

    std::printf("%-10s %14s %10s\n", "version", "virtual time",
                "speedup");
    double baseline_time = 0.0;
    StateVector final_state(1);
    for (const char *engine :
         {"baseline", "naive", "overlap", "pruning", "reorder",
          "qgpu", "cpu"}) {
        Machine machine = machines::makeScaled(n);
        const RunResult r =
            harness::runOn(engine, machine, chain);
        if (std::string(engine) == "baseline")
            baseline_time = r.totalTime;
        if (std::string(engine) == "qgpu")
            final_state = r.state;
        std::printf("%-10s %12.1f s %9.2fx\n", r.engine.c_str(),
                    r.totalTime, baseline_time / r.totalTime);
    }

    std::printf("\nsite occupation <n_i> from the Q-GPU state:\n");
    for (int q = 0; q < n; ++q)
        std::printf("  site %2d: %.4f\n", q,
                    probabilityOfOne(final_state, q));
    return 0;
}
