#!/usr/bin/env bash
# Build (if needed) and run the shot-batching bench, producing
# BENCH_shots.json in the repo root: for every circuit family, 1024
# noisy shots through the full Q-GPU engine per-shot (naive baseline)
# vs shared-schedule replay, with the speedup and batch counters per
# row. See bench/bench_shots.cc for the JSON schema.
#
# Usage: scripts/bench_shots.sh [extra bench_shots args...]
#   BUILD_DIR=...  override the build directory (default build)
#   OUT=...        override the output path (default BENCH_shots.json)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_shots.json}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_shots \
    >/dev/null

"$BUILD_DIR/bench/bench_shots" "$OUT" "$@"
