#!/usr/bin/env bash
# Build (if needed) and run the wall-clock scaling bench, producing
# BENCH_wallclock.json in the repo root: real seconds per circuit
# family at 1/2/4/hardware host threads (deduplicated), min over
# repeats, plus the per-kernel-kind dispatch counters and the
# execution-tier sweep (exact / fast64 / fp32 through the
# transfer-bound naive engine at one thread, with per-tier speedup
# over exact and max-abs amplitude error columns — fp32 halves every
# modeled transfer byte, so its speedup is the headline number). See
# bench/bench_wallclock.cc for the JSON schema. On a single-core host
# the JSON carries a top-level "warning": "oversubscribed".
#
# Usage: scripts/bench_wallclock.sh [extra bench_wallclock args...]
#   BUILD_DIR=...  override the build directory (default build)
#   OUT=...        override the output path (default BENCH_wallclock.json)
#   Pass --tier-qubits n to resize the tier sweep (default 14).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_wallclock.json}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_wallclock \
    >/dev/null

"$BUILD_DIR/bench/bench_wallclock" "$OUT" "$@"
