#!/usr/bin/env bash
# Build (if needed) and run the multi-tenant job-service bench,
# producing BENCH_service.json in the repo root: jobs/sec and p50/p99
# end-to-end latency for the cold / 50%-repeat / 90%-repeat request
# mixes at several closed-loop submission windows ("queue depths"),
# each cell against a fresh service (cold cache). The headline
# "speedup_vs_cold_repeat90" records how much throughput the
# content-addressed result cache buys on the 90%-repeat mix; the
# acceptance bar is >= 5x. See bench/bench_service.cc for the JSON
# schema and flags. On a single-core host the JSON carries the shared
# top-level "warning": "oversubscribed" block.
#
# Usage: scripts/bench_service.sh [extra bench_service args...]
#   BUILD_DIR=...  override the build directory (default build)
#   OUT=...        override the output path (default BENCH_service.json)
#   Pass --jobs n / --depths 1,8,64 / --engine name to resize the run.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_service.json}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_service \
    >/dev/null

"$BUILD_DIR/bench/bench_service" "$OUT" "$@"
