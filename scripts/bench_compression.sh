#!/usr/bin/env bash
# Build (if needed) and run the compressed-resident storage bench,
# producing BENCH_compression.json in the repo root. Two sections,
# both through the flagship qgpu engine (pruning + reorder +
# compression): a per-family table at equal qubits (raw register
# bytes vs the bounded run's peak host bytes, compression ratio,
# wall-clock overhead vs raw, eviction/refill counters; every
# compressed run is asserted bit-identical to its raw twin), and a
# fixed host-RAM budget sweep that pushes each budget family past the
# raw-storage qubit ceiling until the register's peak host footprint
# overflows the budget. The headline "qubits_gained" map records how
# many qubits past the raw ceiling still fit in the same budget; the
# acceptance bar is >= +4 on at least one family. See
# bench/bench_compression.cc for the JSON schema and flags.
#
# Usage: scripts/bench_compression.sh [extra bench_compression args...]
#   BUILD_DIR=...  override the build directory (default build)
#   OUT=...        override the output path (default
#                  BENCH_compression.json)
#   Pass --budget 16M / --budget-families bv,qft,... to resize the
#   budget sweep.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_compression.json}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_compression \
    >/dev/null

"$BUILD_DIR/bench/bench_compression" "$OUT" "$@"
