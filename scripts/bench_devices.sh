#!/usr/bin/env bash
# Build (if needed) and run the multi-device scaling bench, producing
# BENCH_devices.json in the repo root: virtual time per circuit family
# on 1/2/4/8 devices at fraction 1.0 (sharded-resident) for both the
# PCIe-ish (p4) and NVLink-ish (v100nvl) presets, with the exchange
# counters and the per-device busy/h2d/d2h/peer breakdown per row. See
# bench/bench_devices.cc for the JSON schema.
#
# Usage: scripts/bench_devices.sh [extra bench_devices args...]
#   BUILD_DIR=...  override the build directory (default build)
#   OUT=...        override the output path (default BENCH_devices.json)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_devices.json}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_devices \
    >/dev/null

"$BUILD_DIR/bench/bench_devices" "$OUT" "$@"
