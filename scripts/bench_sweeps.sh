#!/usr/bin/env bash
# Refresh the passes-per-circuit sweep table in BENCH_wallclock.json
# and print it: per family, the gate count, the number of full passes
# over the state the sweep executor actually makes (state_passes =
# sweeps scheduled), and the resulting gates-per-sweep batching
# factor. Gate-by-gate execution would pay one pass per gate, so
# gates_per_sweep is the memory-traffic reduction of the sweep layer.
#
# Runs the wall-clock bench (which emits the sweep_table alongside its
# timing entries), then renders the table from the JSON.
#
# Usage: scripts/bench_sweeps.sh [extra bench_wallclock args...]
#   BUILD_DIR=...  override the build directory (default build)
#   OUT=...        override the output path (default BENCH_wallclock.json)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_wallclock.json}"

BUILD_DIR="$BUILD_DIR" OUT="$OUT" scripts/bench_wallclock.sh "$@"

# Surface the shared oversubscription marker emitted by the bench
# binaries so a rendered table is never mistaken for a scaling result
# from a single-hardware-thread host.
if grep -q '"warning": "oversubscribed"' "$OUT"; then
    echo "bench_sweeps: warning: $OUT is marked oversubscribed" \
         "(single hardware thread)" >&2
fi

echo
echo "passes per circuit ($OUT):"
printf '  %-8s %8s %14s %16s\n' family gates state_passes gates_per_sweep
# The sweep_table entries are one JSON object per line.
grep -o '{"family": "[^"]*", "gates": [0-9]*, "state_passes": [0-9]*, "gates_per_sweep": [0-9.]*}' "$OUT" |
    sed -E 's/[{}"]//g; s/family: //; s/gates: //; s/state_passes: //; s/gates_per_sweep: //' |
    awk -F', ' '{ printf "  %-8s %8s %14s %16s\n", $1, $2, $3, $4 }'
