#!/usr/bin/env bash
# One-command verify: configure, build with -Werror, run the tier-1
# test suite. This is the gate every PR must keep green (ROADMAP
# "Tier-1 verify").
#
# Usage: scripts/check.sh [--tsan] [--asan] [--fast-math]
#   --tsan         additionally build with -DQGPU_SANITIZE=thread (in
#                  its own build-tsan directory) and run the
#                  parallelism-focused tests under ThreadSanitizer
#   --asan         additionally build with -DQGPU_SANITIZE=address (in
#                  its own build-asan directory) and run the fault/
#                  integrity suites -- including the tier2 differential
#                  fuzz sweep -- under AddressSanitizer
#   --fast-math    additionally build with -DQGPU_FAST_MATH=ON (in its
#                  own build-check-fast directory, so the contracted
#                  kernel TU is actually compiled), assert via a smoke
#                  run that the fast tier is the compiled one rather
#                  than the exact fallback, and rerun the
#                  versions-differential / kernel-dispatch / precision
#                  suites there with QGPU_FAST_MATH=1 so the 1e-12
#                  accuracy contract is exercised end to end
#
# The default pass also rebuilds the kernel differential suite with
# -DQGPU_NATIVE=ON (build-check-native) and reruns it there, so the
# tolerance-0 specialized-vs-generic guarantee is checked under the
# vectorized -march=native code generation too.
#   BUILD_DIR=...  override the build directory (default build-check,
#                  kept separate from the default `build` so -Werror
#                  does not pollute incremental developer builds)
#   JOBS=...       override parallelism (default: all cores)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-check}"
JOBS="${JOBS:-$(nproc)}"

RUN_TSAN=0
RUN_ASAN=0
RUN_FAST_MATH=0
for arg in "$@"; do
    case "$arg" in
        --tsan) RUN_TSAN=1 ;;
        --asan) RUN_ASAN=1 ;;
        --fast-math) RUN_FAST_MATH=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

# Refuse to reuse a build directory whose cache was configured with
# different flags than this pass needs. A stale cache fails silently in
# the worst way: a build-tsan left over from a plain configure would
# "pass" every test without ThreadSanitizer instrumented, and a
# build-check-native carrying QGPU_NATIVE=OFF would re-certify the
# bit-identity contract against the exact same codegen it already ran.
require_cache() {
    local dir="$1" cache="$1/CMakeCache.txt" kv var want have
    shift
    [ -f "$cache" ] || return 0
    for kv in "$@"; do
        var="${kv%%=*}"
        want="${kv#*=}"
        have=$(sed -n "s/^${var}:[A-Z]*=//p" "$cache")
        if [ "$have" != "$want" ]; then
            echo "error: $dir is configured with ${var}='${have}' but" >&2
            echo "       this pass needs ${var}='${want}'. Delete the" >&2
            echo "       directory (rm -rf $dir) and rerun." >&2
            exit 2
        fi
    done
}

require_cache "$BUILD_DIR" "QGPU_SANITIZE=" "QGPU_NATIVE=OFF"
cmake -B "$BUILD_DIR" -S . -DCMAKE_CXX_FLAGS="-Werror"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure -j "$JOBS"

if [ "$RUN_FAST_MATH" -eq 1 ]; then
    # A dedicated build: the contracted-FMA kernel TU only exists when
    # the tree is configured with -DQGPU_FAST_MATH=ON, so rerunning the
    # suites against the default build would silently exercise the
    # exact fallback and certify nothing. The smoke run pins this down
    # before any suite runs: the tiers banner must say
    # fast-math(compiled), i.e. fastMathCompiled() is true.
    FAST_DIR="${FAST_DIR:-build-check-fast}"
    echo "== fast-math tier pass (QGPU_FAST_MATH=ON, $FAST_DIR) =="
    require_cache "$FAST_DIR" "QGPU_FAST_MATH=ON" "QGPU_SANITIZE=" \
        "QGPU_NATIVE=OFF"
    cmake -B "$FAST_DIR" -S . -DQGPU_FAST_MATH=ON \
        -DCMAKE_CXX_FLAGS="-Werror"
    cmake --build "$FAST_DIR" -j "$JOBS" --target qgpu_sim_cli \
        test_differential test_kernel_dispatch test_precision_tiers
    banner=$("$FAST_DIR"/examples/qgpu_sim --circuit bv --qubits 6 \
        --engine qgpu --fast-math | grep '^tiers:')
    case "$banner" in
        *'fast-math(compiled)'*) ;;
        *)
            echo "error: fast-math smoke run reports '$banner' --" >&2
            echo "       expected kernels=fast-math(compiled); the" >&2
            echo "       contracted kernel TU was not built." >&2
            exit 1 ;;
    esac
    # With the compiled tier proven present, force it on through the
    # environment: the versions-differential suite's cross-version
    # agreement plus the kernel-dispatch specialized-vs-generic and
    # precision-tier checks must hold within the documented fast-math
    # contract (DESIGN.md "Fast-math & precision tiers").
    QGPU_FAST_MATH=1 ctest --test-dir "$FAST_DIR" \
        --output-on-failure -j "$JOBS" \
        -R 'VersionsDifferential|KernelDispatch|Precision'
fi

# Kernel differential suite again under -march=native: FMA contraction
# or wider vectors must not break the bit-identity contract
# (QGPU_NATIVE disables -ffp-contract, FMA3, and AVX-512 for exactly
# this reason -- GCC's complex-multiply vectorization pattern emits
# vfmaddsub through either set regardless of -ffp-contract).
NATIVE_DIR="${NATIVE_DIR:-build-check-native}"
echo "== QGPU_NATIVE kernel differential pass ($NATIVE_DIR) =="
require_cache "$NATIVE_DIR" "QGPU_NATIVE=ON" "QGPU_SANITIZE="
cmake -B "$NATIVE_DIR" -S . -DQGPU_NATIVE=ON
cmake --build "$NATIVE_DIR" -j "$JOBS" --target test_kernel_dispatch \
    test_sweep_executor test_shard_differential
# The sweep suite rides along: sweep execution chains kernels over a
# cache-resident chunk, so its bit-identity-to-gate-by-gate contract
# must also hold under the vectorized code generation. The shard
# differential (single- vs multi-device, tolerance 0) rides along for
# the same reason: its contract is bit-identity of the same kernels
# under a different schedule.
ctest --test-dir "$NATIVE_DIR" --output-on-failure -j "$JOBS" \
    -R 'KernelDispatch|Sweep|ShardDifferential'

if [ "$RUN_TSAN" -eq 1 ]; then
    TSAN_DIR="${TSAN_DIR:-build-tsan}"
    echo "== ThreadSanitizer pass ($TSAN_DIR) =="
    require_cache "$TSAN_DIR" "QGPU_SANITIZE=thread"
    cmake -B "$TSAN_DIR" -S . -DQGPU_SANITIZE=thread
    cmake --build "$TSAN_DIR" -j "$JOBS" --target test_common \
        test_statevec test_compress test_thread_determinism \
        test_sweep_executor test_shard_differential test_service \
        test_batched_differential
    # The parallelism-focused suites: the pool itself, the pool-backed
    # parallelFor / threaded apply, the cross-thread determinism +
    # stress tests, the sweep executor (whose group fan-out chains
    # several kernels per worker), the shard differential (which
    # sweeps the same circuits single- and multi-threaded per device
    # count), the job-service suite (concurrent submissions,
    # cross-thread cache/single-flight traffic, and engine runs
    # multiplexed onto the shared pool), and the batched-shot
    # differential (noisy shots replayed at 1 and 4 host threads must
    # stay bit-identical while the apply path fans out).
    ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$JOBS" \
        -R 'ThreadPool|TaskGroup|SimThreads|ParallelFor|ThreadedApply|Determinism|Stress|Sweep|ShardDifferential|Service|ResultCache|Batched'
fi

if [ "$RUN_ASAN" -eq 1 ]; then
    ASAN_DIR="${ASAN_DIR:-build-asan}"
    echo "== AddressSanitizer fault/fuzz pass ($ASAN_DIR) =="
    require_cache "$ASAN_DIR" "QGPU_SANITIZE=address"
    cmake -B "$ASAN_DIR" -S . -DQGPU_SANITIZE=address
    cmake --build "$ASAN_DIR" -j "$JOBS" --target test_fault \
        test_fault_fuzz test_compress test_engines \
        test_chunk_storage test_storage_differential \
        test_storage_fuzz test_noise test_noise_fuzz \
        test_batched_differential
    # The fault-injection surface: the unit suite, the long tier2
    # differential fuzz sweep (50 seeds x every engine version x three
    # prune modes, recovery must be bit-identical or a structured
    # SimError), the codec property tests the sidecar leans on, and
    # the engine edge cases. The bounded-storage suites ride along:
    # eviction, spill-file I/O, codec retry, and the storage fuzz leg
    # (codec/alloc faults armed during eviction and refill) all
    # shuffle heap buffers, which is exactly what ASan watches. The
    # noise suites join for the same reason: shot batches allocate a
    # fresh chunked state per shot and the tier2 noise fuzz sweeps
    # every version x prune mode with sampled gate insertion (plus a
    # fault-on-top-of-noise leg).
    ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$JOBS" \
        -R 'Checksum|FaultSpec|FaultInjector|SimError|GuardedTransfer|FaultSmoke|FaultFuzz|GfcProperties|EdgeCases|ColdStoreRoundTrip|BoundedState|StorageDifferential|StorageFuzz|Noise|Batched'
fi
