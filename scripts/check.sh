#!/usr/bin/env bash
# One-command verify: configure, build with -Werror, run the tier-1
# test suite. This is the gate every PR must keep green (ROADMAP
# "Tier-1 verify").
#
# Usage: scripts/check.sh [--tsan]
#   --tsan         additionally build with -DQGPU_SANITIZE=thread (in
#                  its own build-tsan directory) and run the
#                  parallelism-focused tests under ThreadSanitizer
#   BUILD_DIR=...  override the build directory (default build-check,
#                  kept separate from the default `build` so -Werror
#                  does not pollute incremental developer builds)
#   JOBS=...       override parallelism (default: all cores)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-check}"
JOBS="${JOBS:-$(nproc)}"

RUN_TSAN=0
for arg in "$@"; do
    case "$arg" in
        --tsan) RUN_TSAN=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

cmake -B "$BUILD_DIR" -S . -DCMAKE_CXX_FLAGS="-Werror"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure -j "$JOBS"

if [ "$RUN_TSAN" -eq 1 ]; then
    TSAN_DIR="${TSAN_DIR:-build-tsan}"
    echo "== ThreadSanitizer pass ($TSAN_DIR) =="
    cmake -B "$TSAN_DIR" -S . -DQGPU_SANITIZE=thread
    cmake --build "$TSAN_DIR" -j "$JOBS" --target test_common \
        test_statevec test_compress test_thread_determinism
    # The parallelism-focused suites: the pool itself, the pool-backed
    # parallelFor / threaded apply, and the cross-thread determinism +
    # stress tests.
    ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$JOBS" \
        -R 'ThreadPool|TaskGroup|SimThreads|ParallelFor|ThreadedApply|Determinism|Stress'
fi
