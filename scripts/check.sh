#!/usr/bin/env bash
# One-command verify: configure, build with -Werror, run the tier-1
# test suite. This is the gate every PR must keep green (ROADMAP
# "Tier-1 verify").
#
# Usage: scripts/check.sh
#   BUILD_DIR=...  override the build directory (default build-check,
#                  kept separate from the default `build` so -Werror
#                  does not pollute incremental developer builds)
#   JOBS=...       override parallelism (default: all cores)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-check}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_CXX_FLAGS="-Werror"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure -j "$JOBS"
