/**
 * @file
 * Structured simulation errors. When a fault-injection recovery policy
 * is exhausted (e.g. a simulated transfer keeps failing past the retry
 * budget) the engine must neither crash nor return a silently corrupt
 * state: it throws a SimException carrying a SimError, which
 * ExecutionEngine::run catches and surfaces as RunResult::error.
 */

#ifndef QGPU_FAULT_SIM_ERROR_HH
#define QGPU_FAULT_SIM_ERROR_HH

#include <cstdint>
#include <exception>
#include <string>

namespace qgpu
{

/** What kind of pipeline failure exhausted its recovery policy. */
enum class SimErrorCode
{
    /** A simulated H2D/D2H transfer failed past the retry budget. */
    TransferFailed,
    /** A chunk's data no longer matches its recorded checksum and no
     *  pristine fallback copy exists. */
    ChecksumMismatch,
    /** The codec produced undecodable or mismatching output and the
     *  raw-payload fallback was unavailable. */
    CodecFailed,
    /** A host allocation failed past its recovery policy. */
    AllocFailed,
};

const char *simErrorCodeName(SimErrorCode code);

/** One structured pipeline failure, with enough context to localize it. */
struct SimError
{
    SimErrorCode code = SimErrorCode::TransferFailed;
    /** Fault point name ("h2d", "d2h", "codec", "alloc"). */
    std::string point;
    /** Human-readable description. */
    std::string detail;
    /** Chunk index, or -1 when the failure is not chunk-scoped. */
    std::int64_t chunk = -1;
    /** Gate index in the executed circuit, or -1. */
    std::int64_t gate = -1;
    /** Attempts consumed before giving up (retried operations). */
    int attempts = 0;

    /** "code at point (gate g, chunk c, k attempts): detail". */
    std::string toString() const;
};

/** Exception wrapper thrown inside engine bodies; never escapes run(). */
class SimException : public std::exception
{
  public:
    explicit SimException(SimError error);

    const SimError &error() const { return error_; }
    const char *what() const noexcept override { return what_.c_str(); }

  private:
    SimError error_;
    std::string what_;
};

} // namespace qgpu

#endif // QGPU_FAULT_SIM_ERROR_HH
