/**
 * @file
 * FNV-1a-style 64-bit checksums over raw byte buffers, used by the
 * chunk-integrity layer to guard simulated host/device data movement.
 * The hash walks 8-byte words (tails byte-wise), so a pass runs near
 * memory bandwidth; any single-byte change flips the digest, which is
 * all the integrity layer needs (error detection, not cryptography).
 */

#ifndef QGPU_FAULT_CHECKSUM_HH
#define QGPU_FAULT_CHECKSUM_HH

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/types.hh"

namespace qgpu
{

/** FNV-1a over @p size bytes, 8 bytes per round. */
std::uint64_t checksumBytes(const void *data, std::size_t size);

/** Checksum of an amplitude span's raw bit patterns. */
std::uint64_t checksumAmps(std::span<const Amp> amps);

} // namespace qgpu

#endif // QGPU_FAULT_CHECKSUM_HH
