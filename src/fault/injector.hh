/**
 * @file
 * Seed-driven deterministic fault injection for the streaming
 * pipeline. A FaultSpec names per-point fault probabilities (parsed
 * from a spec string such as "d2h:0.01,codec:0.005", usually supplied
 * via the QGPU_FAULT_SPEC environment variable); a FaultInjector draws
 * from one seeded RNG in pipeline order, so a given (spec, seed,
 * circuit, options) tuple injects exactly the same faults on every
 * run — including across host thread counts, because every draw
 * happens on the single-threaded scheduling path.
 *
 * Fault points and the recovery policy each is paired with in
 * StreamingEngine:
 *   h2d, d2h  a simulated transfer fails; the attempt's virtual time
 *             is burned and the transfer retried, up to
 *             ExecOptions::transferRetries, then SimError.
 *   peer      a simulated GPU-to-GPU exchange transfer fails; same
 *             bounded-retry policy as the host links.
 *   codec     the compressed sidecar payload of a shipped chunk is
 *             corrupted in flight; detected by checksum at receive
 *             time and recovered via the raw-payload fallback.
 *   alloc     a host allocation at the fault point fails; the codec
 *             path degrades to shipping raw.
 */

#ifndef QGPU_FAULT_INJECTOR_HH
#define QGPU_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace qgpu
{

/** Named places in the pipeline where a fault can be injected. */
enum class FaultPoint
{
    H2D,
    D2H,
    Peer,
    Codec,
    Alloc,
};

inline constexpr int kNumFaultPoints = 5;

const char *faultPointName(FaultPoint point);

/** Per-point fault probabilities. */
struct FaultSpec
{
    std::array<double, kNumFaultPoints> probability{};

    /**
     * Parse "point:prob[,point:prob...]" with points h2d, d2h, peer,
     * codec, alloc. Empty input yields an all-zero (disabled) spec;
     * unknown points or malformed probabilities are fatal (user
     * error).
     */
    static FaultSpec parse(const std::string &spec);

    /** Parse $QGPU_FAULT_SPEC (disabled spec when unset/empty). */
    static FaultSpec fromEnv();

    /**
     * Resolve an ExecOptions::faultSpec value: "env" reads
     * QGPU_FAULT_SPEC, "" and "none" disable injection, anything else
     * is parsed as a spec string.
     */
    static FaultSpec resolve(const std::string &option);

    bool
    enabled() const
    {
        for (double p : probability)
            if (p > 0.0)
                return true;
        return false;
    }

    bool
    enabled(FaultPoint point) const
    {
        return probability[static_cast<int>(point)] > 0.0;
    }
};

/**
 * Deterministic fault source. One instance per engine run; fire() must
 * only be called from the (single-threaded) scheduling path so the
 * draw sequence is reproducible.
 */
class FaultInjector
{
  public:
    FaultInjector(FaultSpec spec, std::uint64_t seed);

    bool enabled() const { return spec_.enabled(); }
    bool enabled(FaultPoint p) const { return spec_.enabled(p); }

    /** Roll for a fault at @p point; counts injected faults. */
    bool fire(FaultPoint point);

    /** Faults injected so far at @p point. */
    std::uint64_t injected(FaultPoint point) const;

    /** Total faults injected across all points. */
    std::uint64_t injectedTotal() const;

    /**
     * Corrupt one byte of @p bytes (xor with a non-zero mask at a
     * random offset), simulating in-flight payload damage. No-op on an
     * empty buffer.
     */
    void corrupt(std::vector<std::uint8_t> &bytes);

  private:
    FaultSpec spec_;
    Rng rng_;
    std::array<std::uint64_t, kNumFaultPoints> injected_{};
};

} // namespace qgpu

#endif // QGPU_FAULT_INJECTOR_HH
