#include "fault/checksum.hh"

#include <cstring>

namespace qgpu
{

namespace
{

constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kPrime = 0x100000001b3ull;
constexpr std::uint64_t kLaneSalt = 0x9e3779b97f4a7c15ull;

} // namespace

std::uint64_t
checksumBytes(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::size_t i = 0;
    // Four interleaved FNV-1a lanes: a single xor-multiply chain is
    // latency-bound (one dependent 64-bit multiply per 8 bytes), so
    // chunk-sized buffers hash far below memory bandwidth. Independent
    // lanes keep several multiplies in flight; distinct lane bases
    // break the symmetry between equal-content lanes. Each per-word
    // step stays invertible (xor, then multiply by an odd constant),
    // so any single-byte change still flips the digest.
    std::uint64_t h0 = kOffsetBasis;
    std::uint64_t h1 = kOffsetBasis + kLaneSalt;
    std::uint64_t h2 = kOffsetBasis + 2 * kLaneSalt;
    std::uint64_t h3 = kOffsetBasis + 3 * kLaneSalt;
    for (; i + 32 <= size; i += 32) {
        std::uint64_t w0, w1, w2, w3;
        std::memcpy(&w0, bytes + i, 8);
        std::memcpy(&w1, bytes + i + 8, 8);
        std::memcpy(&w2, bytes + i + 16, 8);
        std::memcpy(&w3, bytes + i + 24, 8);
        h0 = (h0 ^ w0) * kPrime;
        h1 = (h1 ^ w1) * kPrime;
        h2 = (h2 ^ w2) * kPrime;
        h3 = (h3 ^ w3) * kPrime;
    }
    std::uint64_t hash =
        (((h0 * kPrime ^ h1) * kPrime ^ h2) * kPrime ^ h3) * kPrime;
    for (; i + 8 <= size; i += 8) {
        std::uint64_t word;
        std::memcpy(&word, bytes + i, 8);
        hash = (hash ^ word) * kPrime;
    }
    for (; i < size; ++i)
        hash = (hash ^ bytes[i]) * kPrime;
    // Final mix so buffers differing only in trailing zero words do
    // not collide with their prefixes of the same rounded length.
    hash ^= static_cast<std::uint64_t>(size);
    return hash * kPrime;
}

std::uint64_t
checksumAmps(std::span<const Amp> amps)
{
    return checksumBytes(amps.data(), amps.size_bytes());
}

} // namespace qgpu
