/**
 * @file
 * Chunk-integrity layer for the streaming pipeline. Every chunk that
 * ships D2H gets an FNV checksum recorded at ship (compress/D2H) time;
 * the checksum is verified the next time the chunk is uploaded (H2D/
 * decompress time). When codec faults are armed the layer additionally
 * maintains a real compressed sidecar per shipped chunk — the GFC
 * stream that would cross the bus — so injected payload corruption is
 * exercised against the actual codec: the corrupted stream is detected
 * by its sender-side stream checksum (or, for a hypothetical codec
 * bug, by the decompressed payload failing the raw checksum) and the
 * chunk falls back to its pristine raw payload. The authoritative
 * amplitudes always live in the ChunkedStateVector, so the fallback
 * recovers bit-identically; only a mismatch on the raw copy itself —
 * which no recovery can repair — raises a structured SimError.
 *
 * Work is bounded per epoch: checksums are computed/verified at most
 * once per chunk between sweep boundaries (the only places chunk data
 * legitimately changes), and in pure verify mode (no payload faults
 * armed) only a rotating sample window of chunks is tracked each
 * epoch (ExecOptions::verifySampleChunks, mirroring the
 * codecSampleChunks idiom), so `--verify-chunks` costs a bounded
 * number of hash passes per sweep while still covering every chunk
 * across consecutive sweeps. When the compressed sidecar is armed,
 * every shipped chunk is tracked: injected corruption must never
 * escape the ledger.
 *
 * Counters (per-run StatSet, mirrored into MetricsRegistry::global()
 * by ExecutionEngine::run):
 *   integrity.checksum.computed   checksums recorded at ship time
 *   integrity.checksum.verified   successful receive-time checks
 *   integrity.checksum.mismatch   corruption detected (then recovered)
 *   integrity.fallback.raw        chunks recovered via raw payload
 *   integrity.fault.<point>       faults injected at
 *                                 h2d/d2h/peer/codec/alloc
 *   integrity.retry.h2d/.d2h/.peer  transfer attempts repeated
 *   integrity.sim_error           runs ended by a structured SimError
 */

#ifndef QGPU_FAULT_INTEGRITY_HH
#define QGPU_FAULT_INTEGRITY_HH

#include <span>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "compress/gfc.hh"
#include "fault/injector.hh"
#include "fault/sim_error.hh"

namespace qgpu
{

namespace intkeys
{
inline constexpr const char *checksumComputed =
    "integrity.checksum.computed";
inline constexpr const char *checksumVerified =
    "integrity.checksum.verified";
inline constexpr const char *checksumMismatch =
    "integrity.checksum.mismatch";
inline constexpr const char *fallbackRaw = "integrity.fallback.raw";
inline constexpr const char *simErrors = "integrity.sim_error";
/** Chunks shipped in the fp32 storage lane (Precision::f32/adaptive). */
inline constexpr const char *laneF32 = "integrity.lane.f32";
/** Receives whose lane disagreed with the ship-time lane (a pipeline
 *  bug: lanes only change at sweep boundaries, i.e. epochs). */
inline constexpr const char *laneMismatch = "integrity.lane.mismatch";

/** "integrity.fault.<point>". */
const char *faultKey(FaultPoint point);
/** "integrity.retry.<point>" (transfer points only). */
const char *retryKey(FaultPoint point);
} // namespace intkeys

/**
 * Per-run checksum ledger plus optional compressed sidecar. One
 * instance per engine run; all methods are called from the
 * single-threaded scheduling path.
 */
class ChunkIntegrity
{
  public:
    /**
     * @param verify        record/verify checksums (the
     *                      --verify-chunks contract; implied whenever
     *                      @p codec is set).
     * @param codec         non-null arms the compressed sidecar (used
     *                      when codec or alloc faults are enabled).
     * @param sample_limit  max chunks tracked per epoch in pure verify
     *                      mode (0 = every chunk). The tracked window
     *                      rotates each epoch so every chunk is
     *                      covered over ceil(chunks/limit) sweeps.
     *                      Ignored while the sidecar is armed: injected
     *                      payload corruption must always be tracked.
     */
    ChunkIntegrity(bool verify, const GfcCodec *codec,
                   int sample_limit = 0);

    /** Anything to do at ship/receive time? */
    bool active() const { return verify_ || codec_ != nullptr; }

    /** Adopt a new chunk geometry; drops the ledger and sidecars. */
    void reset(Index num_chunks);

    /**
     * Chunk data may have changed (sweep boundary): recorded checksums
     * become stale and are neither verified nor trusted afterwards.
     * Advances the rotating sample window.
     */
    void
    beginEpoch()
    {
        ++epoch_;
        updateSampleWindow();
    }

    /** Is chunk @p c inside this epoch's rotating sample window? */
    bool
    sampled(Index c) const
    {
        return trackAll_ || (c >= sampleLo_ && c < sampleHi_) ||
               c < sampleWrap_;
    }

    /**
     * Would onShip do any work for chunk @p c this epoch? Cheap
     * inline reject for the per-gate scheduling loop, which revisits
     * every batch member far more often than checksums are taken.
     */
    bool
    needsShip(Index c) const
    {
        return active() && sampled(c) &&
               ledger_[c].computedEpoch != epoch_;
    }

    /** Would onReceive do any work for chunk @p c this epoch? */
    bool
    needsReceive(Index c) const
    {
        if (!active())
            return false;
        const Entry &entry = ledger_[c];
        return entry.computedEpoch == epoch_ &&
               entry.verifiedEpoch != epoch_;
    }

    /**
     * Ship chunk @p c (compress/D2H time): record its checksum and
     * refresh the compressed sidecar, injecting codec/alloc faults.
     * Idempotent within an epoch. @p f32_lane records the chunk's
     * storage lane (ChunkedStateVector::chunkIsF32): the checksum is
     * always taken over the (possibly fp32-quantized) doubles, but an
     * fp32-lane sidecar compresses the narrowed floats — the bytes
     * that actually cross the bus.
     */
    void onShip(std::span<const Amp> data, Index c, std::int64_t gate,
                FaultInjector &injector, StatSet &stats,
                bool f32_lane = false);

    /**
     * Receive chunk @p c (H2D/decompress time): verify the sidecar
     * stream and payload (falling back to the raw payload on any
     * mismatch) and the raw copy against the ledger. Throws
     * SimException on a raw-copy mismatch, which no fallback can
     * repair. Idempotent within an epoch; no-op for chunks not shipped
     * this epoch. @p f32_lane is the receiver's view of the chunk's
     * lane; disagreement with the ship-time lane is counted under
     * integrity.lane.mismatch (lanes are stable within an epoch, so a
     * mismatch indicates a pipeline bug, not data corruption).
     */
    void onReceive(std::span<const Amp> data, Index c,
                   std::int64_t gate, FaultInjector &injector,
                   StatSet &stats, bool f32_lane = false);

  private:
    struct Entry
    {
        std::uint64_t sum = 0;
        std::int64_t computedEpoch = -1;
        std::int64_t verifiedEpoch = -1;
        /** Storage lane the chunk shipped in (1 = fp32). */
        std::uint8_t f32Lane = 0;
    };

    struct Sidecar
    {
        CompressedBlock block;
        /** Sender-side checksum of the compressed stream. */
        std::uint64_t streamSum = 0;
        std::int64_t epoch = -1;
        bool present = false;
    };

    /** Recompute the [sampleLo_, sampleHi_) + [0, sampleWrap_)
     *  window for the current epoch. */
    void updateSampleWindow();

    bool verify_;
    const GfcCodec *codec_;
    int sampleLimit_;
    /** Sampling disabled: every chunk tracked every epoch. */
    bool trackAll_ = true;
    Index sampleLo_ = 0;
    Index sampleHi_ = 0;
    Index sampleWrap_ = 0;
    std::int64_t epoch_ = 0;
    std::vector<Entry> ledger_;
    std::vector<Sidecar> sidecars_;
    std::vector<double> scratch_;
    /** Narrow-lane decode scratch for fp32 sidecars. */
    std::vector<float> scratchF32_;
};

/**
 * Schedule one simulated transfer with fault-driven bounded retry.
 * @p attempt maps a start time to the attempt's completion time (and
 * performs the schedule/trace bookkeeping); a fault at @p point burns
 * the attempt's virtual time and retries from its completion, up to
 * @p max_retries extra attempts, then throws a structured SimError.
 * With no injector (or the point disabled) this is exactly one
 * attempt.
 */
template <typename Attempt>
VTime
guardedTransfer(FaultInjector *injector, FaultPoint point,
                int max_retries, std::int64_t gate, StatSet &stats,
                VTime start, Attempt &&attempt)
{
    VTime done = attempt(start);
    if (injector == nullptr || !injector->enabled(point))
        return done;
    int attempts = 1;
    while (injector->fire(point)) {
        stats.add(intkeys::faultKey(point), 1.0);
        if (attempts > max_retries) {
            throw SimException(SimError{
                SimErrorCode::TransferFailed, faultPointName(point),
                "transfer retry budget exhausted", -1, gate,
                attempts});
        }
        stats.add(intkeys::retryKey(point), 1.0);
        done = attempt(done);
        ++attempts;
    }
    return done;
}

} // namespace qgpu

#endif // QGPU_FAULT_INTEGRITY_HH
