#include "fault/integrity.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/checksum.hh"

namespace qgpu
{

namespace intkeys
{

const char *
faultKey(FaultPoint point)
{
    switch (point) {
      case FaultPoint::H2D: return "integrity.fault.h2d";
      case FaultPoint::D2H: return "integrity.fault.d2h";
      case FaultPoint::Peer: return "integrity.fault.peer";
      case FaultPoint::Codec: return "integrity.fault.codec";
      case FaultPoint::Alloc: return "integrity.fault.alloc";
    }
    return "integrity.fault.?";
}

const char *
retryKey(FaultPoint point)
{
    switch (point) {
      case FaultPoint::H2D: return "integrity.retry.h2d";
      case FaultPoint::D2H: return "integrity.retry.d2h";
      case FaultPoint::Peer: return "integrity.retry.peer";
      default:
        QGPU_PANIC("retryKey: ", faultPointName(point),
                   " is not a transfer fault point");
    }
}

} // namespace intkeys

ChunkIntegrity::ChunkIntegrity(bool verify, const GfcCodec *codec,
                               int sample_limit)
    : verify_(verify || codec != nullptr), codec_(codec),
      sampleLimit_(sample_limit)
{
}

void
ChunkIntegrity::updateSampleWindow()
{
    // With the sidecar armed every chunk is tracked: an injected
    // corruption on an untracked chunk would be an escape. In pure
    // verify mode a rotating window bounds the per-sweep hash cost;
    // consecutive epochs shift the window so every chunk is covered
    // over ceil(chunks/limit) sweeps. Precomputed here so sampled()
    // stays a pair of inline compares in the per-gate batch loop.
    const auto num_chunks = static_cast<Index>(ledger_.size());
    const auto limit = static_cast<Index>(sampleLimit_);
    trackAll_ = codec_ != nullptr || sampleLimit_ <= 0 ||
                num_chunks == 0 || limit >= num_chunks;
    if (trackAll_)
        return;
    const Index start =
        (static_cast<Index>(epoch_) * limit) % num_chunks;
    sampleLo_ = start;
    sampleHi_ = std::min(start + limit, num_chunks);
    sampleWrap_ =
        start + limit > num_chunks ? start + limit - num_chunks : 0;
}

void
ChunkIntegrity::reset(Index num_chunks)
{
    ledger_.assign(num_chunks, Entry{});
    if (codec_ != nullptr)
        sidecars_.assign(num_chunks, Sidecar{});
    updateSampleWindow();
}

void
ChunkIntegrity::onShip(std::span<const Amp> data, Index c,
                       std::int64_t gate, FaultInjector &injector,
                       StatSet &stats, bool f32_lane)
{
    (void)gate;
    if (!active())
        return;
    if (!sampled(c))
        return; // outside this epoch's rotating verify window
    Entry &entry = ledger_[c];
    if (entry.computedEpoch == epoch_)
        return; // already shipped this epoch; data unchanged
    // fp32-lane data is already quantized, so the checksum over the
    // doubles commutes with the narrow/widen round trip the sidecar
    // (and the real bus) performs.
    entry.sum = checksumAmps(data);
    entry.computedEpoch = epoch_;
    entry.verifiedEpoch = -1;
    entry.f32Lane = f32_lane ? 1 : 0;
    stats.add(intkeys::checksumComputed, 1.0);
    if (f32_lane)
        stats.add(intkeys::laneF32, 1.0);

    if (codec_ == nullptr)
        return;
    Sidecar &side = sidecars_[c];
    side.present = false;
    side.epoch = epoch_;
    // A failed host allocation for the compressed buffer degrades the
    // chunk to shipping raw: no sidecar, nothing to verify beyond the
    // raw checksum.
    if (injector.fire(FaultPoint::Alloc)) {
        stats.add(intkeys::faultKey(FaultPoint::Alloc), 1.0);
        stats.add(intkeys::fallbackRaw, 1.0);
        return;
    }
    side.block = f32_lane
                     ? codec_->compressAmpsF32(data.data(), data.size())
                     : codec_->compressAmps(data.data(), data.size());
    // The sender checksums the stream it put on the bus; corruption
    // happens in flight, after the checksum is recorded.
    side.streamSum = checksumBytes(side.block.bytes.data(),
                                   side.block.bytes.size());
    if (injector.fire(FaultPoint::Codec)) {
        stats.add(intkeys::faultKey(FaultPoint::Codec), 1.0);
        injector.corrupt(side.block.bytes);
    }
    side.present = true;
}

void
ChunkIntegrity::onReceive(std::span<const Amp> data, Index c,
                          std::int64_t gate, FaultInjector &injector,
                          StatSet &stats, bool f32_lane)
{
    if (!active())
        return;
    Entry &entry = ledger_[c];
    if (entry.computedEpoch != epoch_)
        return; // not shipped since the data last changed
    if (entry.verifiedEpoch == epoch_)
        return; // already verified this epoch
    entry.verifiedEpoch = epoch_;
    if ((entry.f32Lane != 0) != f32_lane) {
        // Lanes only change at sweep boundaries (epochs), so a
        // ship/receive disagreement is a scheduling bug; surface it as
        // a counter and verify via the ship-time lane regardless.
        stats.add(intkeys::laneMismatch, 1.0);
    }

    bool payload_ok = false;
    if (codec_ != nullptr && sidecars_[c].epoch == epoch_ &&
        sidecars_[c].present) {
        const Sidecar &side = sidecars_[c];
        if (checksumBytes(side.block.bytes.data(),
                          side.block.bytes.size()) != side.streamSum) {
            // In-flight corruption of the compressed stream. Never
            // decode a stream that failed its checksum (a corrupt GFC
            // stream is undecodable); recover from the raw payload.
            stats.add(intkeys::checksumMismatch, 1.0);
            stats.add(intkeys::fallbackRaw, 1.0);
        } else if (injector.fire(FaultPoint::Alloc)) {
            // No scratch buffer for decompression: ship raw instead.
            stats.add(intkeys::faultKey(FaultPoint::Alloc), 1.0);
            stats.add(intkeys::fallbackRaw, 1.0);
        } else {
            scratch_.resize(side.block.numDoubles);
            if (side.block.f32) {
                // Decode the narrow stream and widen (exactly) back
                // to doubles so the ship-time checksum applies.
                scratchF32_.resize(side.block.numDoubles);
                codec_->decompressF32(side.block, scratchF32_.data());
                for (std::size_t i = 0; i < scratchF32_.size(); ++i)
                    scratch_[i] = static_cast<double>(scratchF32_[i]);
            } else {
                codec_->decompress(side.block, scratch_.data());
            }
            if (checksumBytes(scratch_.data(),
                              scratch_.size() * sizeof(double)) !=
                entry.sum) {
                // Stream intact but the payload does not reconstruct:
                // a codec failure. Recover from the raw payload.
                stats.add(intkeys::checksumMismatch, 1.0);
                stats.add(intkeys::fallbackRaw, 1.0);
            } else {
                payload_ok = true;
            }
        }
    }

    // The raw copy is what the functional update actually reads, so
    // its checksum is the last line of defense. A mismatch here means
    // the authoritative data itself is damaged — unrecoverable.
    if (checksumAmps(data) != entry.sum) {
        stats.add(intkeys::checksumMismatch, 1.0);
        throw SimException(SimError{
            SimErrorCode::ChecksumMismatch, "h2d",
            "raw chunk payload does not match its ship-time checksum",
            static_cast<std::int64_t>(c), gate, 0});
    }
    (void)payload_ok;
    stats.add(intkeys::checksumVerified, 1.0);
}

} // namespace qgpu
