#include "fault/injector.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace qgpu
{

const char *
faultPointName(FaultPoint point)
{
    switch (point) {
      case FaultPoint::H2D: return "h2d";
      case FaultPoint::D2H: return "d2h";
      case FaultPoint::Peer: return "peer";
      case FaultPoint::Codec: return "codec";
      case FaultPoint::Alloc: return "alloc";
    }
    return "?";
}

FaultSpec
FaultSpec::parse(const std::string &spec)
{
    FaultSpec out;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;
        const std::size_t colon = entry.find(':');
        if (colon == std::string::npos)
            QGPU_FATAL("fault spec entry '", entry,
                       "' is not point:probability");
        const std::string point = entry.substr(0, colon);
        const std::string prob_str = entry.substr(colon + 1);
        char *parsed_end = nullptr;
        const double prob =
            std::strtod(prob_str.c_str(), &parsed_end);
        if (prob_str.empty() || *parsed_end != '\0' || prob < 0.0 ||
            prob > 1.0) {
            QGPU_FATAL("fault probability '", prob_str,
                       "' is not in [0, 1]");
        }
        int idx = -1;
        for (int p = 0; p < kNumFaultPoints; ++p) {
            if (point == faultPointName(static_cast<FaultPoint>(p)))
                idx = p;
        }
        if (idx < 0)
            QGPU_FATAL("unknown fault point '", point,
                       "' (want h2d, d2h, peer, codec, or alloc)");
        out.probability[idx] = prob;
    }
    return out;
}

FaultSpec
FaultSpec::fromEnv()
{
    const char *env = std::getenv("QGPU_FAULT_SPEC");
    return parse(env ? env : "");
}

FaultSpec
FaultSpec::resolve(const std::string &option)
{
    if (option == "env")
        return fromEnv();
    if (option.empty() || option == "none")
        return FaultSpec{};
    return parse(option);
}

FaultInjector::FaultInjector(FaultSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed)
{
}

bool
FaultInjector::fire(FaultPoint point)
{
    const double p = spec_.probability[static_cast<int>(point)];
    if (p <= 0.0)
        return false;
    if (rng_.nextDouble() >= p)
        return false;
    ++injected_[static_cast<int>(point)];
    return true;
}

std::uint64_t
FaultInjector::injected(FaultPoint point) const
{
    return injected_[static_cast<int>(point)];
}

std::uint64_t
FaultInjector::injectedTotal() const
{
    std::uint64_t total = 0;
    for (std::uint64_t n : injected_)
        total += n;
    return total;
}

void
FaultInjector::corrupt(std::vector<std::uint8_t> &bytes)
{
    if (bytes.empty())
        return;
    const std::size_t at = rng_.nextBelow(bytes.size());
    const std::uint8_t mask =
        static_cast<std::uint8_t>(1 + rng_.nextBelow(255));
    bytes[at] ^= mask;
}

} // namespace qgpu
