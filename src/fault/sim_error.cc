#include "fault/sim_error.hh"

#include <sstream>

namespace qgpu
{

const char *
simErrorCodeName(SimErrorCode code)
{
    switch (code) {
      case SimErrorCode::TransferFailed: return "transfer_failed";
      case SimErrorCode::ChecksumMismatch: return "checksum_mismatch";
      case SimErrorCode::CodecFailed: return "codec_failed";
      case SimErrorCode::AllocFailed: return "alloc_failed";
    }
    return "?";
}

std::string
SimError::toString() const
{
    std::ostringstream os;
    os << simErrorCodeName(code) << " at " << point;
    if (gate >= 0)
        os << " (gate " << gate;
    if (chunk >= 0)
        os << (gate >= 0 ? ", chunk " : " (chunk ") << chunk;
    if (gate >= 0 || chunk >= 0)
        os << ")";
    if (attempts > 0)
        os << " after " << attempts << " attempts";
    if (!detail.empty())
        os << ": " << detail;
    return os.str();
}

SimException::SimException(SimError error)
    : error_(std::move(error)), what_(error_.toString())
{
}

} // namespace qgpu
