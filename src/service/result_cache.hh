/**
 * @file
 * Content-addressed result cache for the job service. Keys are
 * simulation keys (service/job.hh); values are the full final state
 * of the producing run plus the metadata shared by every future hit.
 * Entries are immutable and handed out as shared_ptr<const>, so a
 * hit can outlive eviction and concurrent readers never copy the
 * state.
 *
 * The cache is sharded by key to keep lock hold times short under
 * concurrent submission, and bounded by total resident bytes with
 * per-shard LRU eviction (each shard gets capacity/shards). An entry
 * larger than a whole shard's budget is simply not admitted — the
 * simulation still ran; the caller returns its result directly.
 *
 * Correctness contract (see qc/canonical.hh): two requests with the
 * same simulation key execute the exact same canonical gate stream
 * under the same result-affecting options, so a cached state is
 * bit-identical (maxAbsDiff == 0) to what a fresh run would produce.
 * Shots are NOT cached for ideal jobs: sampling is post-hoc over the
 * cached state with the requesting job's own seed. Noisy batched
 * jobs are the exception — their key folds the noise spec, shot
 * count, and shot seed (service/job.hh), the trajectories are
 * deterministic in that key, and what is cached is the aggregated
 * counts themselves (there is no single final state to resample).
 */

#ifndef QGPU_SERVICE_RESULT_CACHE_HH
#define QGPU_SERVICE_RESULT_CACHE_HH

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "statevec/state_vector.hh"

namespace qgpu
{
namespace service
{

/** One cached simulation: the final state plus shared metadata. */
struct CachedSim
{
    std::uint64_t key = 0;
    std::string engine; ///< display name of the producing engine
    StateVector state{1};
    double totalVTime = 0.0; ///< modeled time of the producing run
    double norm = 0.0;
    /**
     * Entry holds a noisy batch: counts are the batch's aggregated
     * outcomes and MUST be returned verbatim (never resampled from
     * state, which is the trivial |0> placeholder for these).
     */
    bool noisy = false;
    std::map<Index, std::uint64_t> counts;

    /** Resident footprint used for the byte budget. */
    std::size_t bytes() const
    {
        return sizeof(CachedSim) + state.size() * sizeof(Amp) +
               counts.size() *
                   (sizeof(Index) + sizeof(std::uint64_t) +
                    4 * sizeof(void *));
    }
};

/** Aggregate counters (monotonic except bytes/entries). */
struct ResultCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rejected = 0; ///< entries too large to admit
    std::size_t bytes = 0;      ///< currently resident
    std::uint64_t entries = 0;  ///< currently resident
};

/**
 * Sharded, byte-bounded, content-addressed LRU cache. Thread-safe;
 * all locking is per shard.
 */
class ResultCache
{
  public:
    /**
     * @param capacity_bytes total budget across all shards (0
     *        disables caching entirely: every lookup misses, every
     *        insert is rejected).
     * @param shards lock shards (clamped to >= 1).
     */
    explicit ResultCache(std::size_t capacity_bytes,
                         int shards = 8);

    /** Entry for @p key, or nullptr (counts a hit or a miss). */
    std::shared_ptr<const CachedSim> lookup(std::uint64_t key);

    /**
     * Insert @p sim under its own key, evicting least-recently-used
     * entries of the shard as needed. Re-inserting an existing key
     * refreshes the entry. Returns false when the entry exceeds the
     * shard budget and was not admitted.
     */
    bool insert(std::shared_ptr<const CachedSim> sim);

    /** Drop every entry (counters keep their history). */
    void clear();

    ResultCacheStats stats() const;

    std::size_t capacityBytes() const { return capacity_; }

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        /** LRU order, most recent at front. */
        std::list<std::shared_ptr<const CachedSim>> order;
        std::unordered_map<std::uint64_t,
                           std::list<std::shared_ptr<
                               const CachedSim>>::iterator>
            map;
        std::size_t bytes = 0;
        std::uint64_t hits = 0, misses = 0, insertions = 0,
                      evictions = 0, rejected = 0;
    };

    Shard &shardFor(std::uint64_t key);

    std::size_t capacity_;
    std::size_t shardCapacity_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace service
} // namespace qgpu

#endif // QGPU_SERVICE_RESULT_CACHE_HH
