#include "service/traffic.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "circuits/circuits.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace qgpu
{
namespace service
{

std::vector<JobRequest>
generateTraffic(const TrafficConfig &config)
{
    std::vector<std::string> families = config.families;
    if (families.empty())
        families = circuits::benchmarkNames();
    Rng rng(config.seed);
    std::vector<JobRequest> out;
    std::vector<std::size_t> uniques; // indices of unique requests
    out.reserve(static_cast<std::size_t>(config.jobs));
    double arrival = 0.0;
    for (int i = 0; i < config.jobs; ++i) {
        // Exponential-ish inter-arrival gap; virtual only (replay
        // submits as fast as the service admits).
        arrival += -config.meanGapMs *
                   std::log(1.0 - rng.nextDouble());
        JobRequest r;
        if (!uniques.empty() && rng.nextBool(config.repeatFraction)) {
            r = out[uniques[rng.nextBelow(uniques.size())]];
        } else {
            r.circuit.family = families[rng.nextBelow(
                families.size())];
            r.circuit.qubits = static_cast<int>(rng.nextRange(
                config.minQubits, config.maxQubits));
            r.circuit.seed = rng.next() >> 8;
            r.engine = config.engine;
            r.shots = config.shots;
            uniques.push_back(out.size());
        }
        // Per-submission fields: fresh even for repeats.
        char tenant[24];
        std::snprintf(tenant, sizeof tenant, "t%llu",
                      static_cast<unsigned long long>(
                          rng.nextBelow(static_cast<std::uint64_t>(
                              std::max(config.tenants, 1)))));
        r.tenant = tenant;
        r.seed = rng.next() >> 8;
        r.arrivalMs = arrival;
        out.push_back(std::move(r));
    }
    return out;
}

std::string
trafficToJsonl(const std::vector<JobRequest> &requests)
{
    std::string out;
    for (const JobRequest &r : requests) {
        out += r.toJson().toString();
        out += '\n';
    }
    return out;
}

bool
trafficFromJsonl(const std::string &text,
                 std::vector<JobRequest> &out, std::string &error)
{
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#')
            continue;
        std::string parseError;
        const auto value = parseJson(line, &parseError);
        if (!value) {
            error = "line " + std::to_string(lineno) + ": " +
                    parseError;
            return false;
        }
        const auto request = JobRequest::fromJson(*value);
        if (!request) {
            error = "line " + std::to_string(lineno) +
                    ": not a job request";
            return false;
        }
        out.push_back(*request);
    }
    return true;
}

std::vector<JobRequest>
loadTraffic(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        QGPU_FATAL("cannot read trace file '", path, "'");
    std::ostringstream text;
    text << in.rdbuf();
    std::vector<JobRequest> out;
    std::string error;
    if (!trafficFromJsonl(text.str(), out, error))
        QGPU_FATAL("bad trace '", path, "': ", error);
    return out;
}

void
saveTraffic(const std::vector<JobRequest> &requests,
            const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        QGPU_FATAL("cannot write trace file '", path, "'");
    out << trafficToJsonl(requests);
    if (!out)
        QGPU_FATAL("failed writing trace file '", path, "'");
}

} // namespace service
} // namespace qgpu
