#include "service/result_cache.hh"

#include <algorithm>

namespace qgpu
{
namespace service
{

namespace
{

/**
 * Spread the (already well-mixed FNV) key across shards using the
 * high bits: the low bits select nothing here because shard count is
 * small and the multiplicative finalizer below decorrelates them.
 */
std::size_t
shardIndex(std::uint64_t key, std::size_t shards)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    return static_cast<std::size_t>(key % shards);
}

} // namespace

ResultCache::ResultCache(std::size_t capacity_bytes, int shards)
    : capacity_(capacity_bytes)
{
    const int n = std::max(shards, 1);
    shardCapacity_ = capacity_bytes / static_cast<std::size_t>(n);
    shards_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ResultCache::Shard &
ResultCache::shardFor(std::uint64_t key)
{
    return *shards_[shardIndex(key, shards_.size())];
}

std::shared_ptr<const CachedSim>
ResultCache::lookup(std::uint64_t key)
{
    Shard &shard = shardFor(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        ++shard.misses;
        return nullptr;
    }
    ++shard.hits;
    // Touch: move to the front of the LRU order.
    shard.order.splice(shard.order.begin(), shard.order,
                       it->second);
    return *it->second;
}

bool
ResultCache::insert(std::shared_ptr<const CachedSim> sim)
{
    if (!sim)
        return false;
    const std::size_t bytes = sim->bytes();
    Shard &shard = shardFor(sim->key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (bytes > shardCapacity_) {
        ++shard.rejected;
        return false;
    }
    const auto it = shard.map.find(sim->key);
    if (it != shard.map.end()) {
        shard.bytes -= (*it->second)->bytes();
        shard.order.erase(it->second);
        shard.map.erase(it);
    }
    while (shard.bytes + bytes > shardCapacity_ &&
           !shard.order.empty()) {
        const auto &victim = shard.order.back();
        shard.bytes -= victim->bytes();
        shard.map.erase(victim->key);
        shard.order.pop_back();
        ++shard.evictions;
    }
    shard.order.push_front(std::move(sim));
    shard.map.emplace(shard.order.front()->key,
                      shard.order.begin());
    shard.bytes += bytes;
    ++shard.insertions;
    return true;
}

void
ResultCache::clear()
{
    for (auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        shard->order.clear();
        shard->map.clear();
        shard->bytes = 0;
    }
}

ResultCacheStats
ResultCache::stats() const
{
    ResultCacheStats out;
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        out.hits += shard->hits;
        out.misses += shard->misses;
        out.insertions += shard->insertions;
        out.evictions += shard->evictions;
        out.rejected += shard->rejected;
        out.bytes += shard->bytes;
        out.entries += shard->map.size();
    }
    return out;
}

} // namespace service
} // namespace qgpu
