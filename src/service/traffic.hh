/**
 * @file
 * Deterministic synthetic traffic for the job service: a seeded
 * generator that produces multi-tenant request mixes with a
 * controllable repeat fraction (the knob behind the cold / 50% /
 * 90%-repeat bench mixes), plus .jsonl trace read/write so any
 * generated (or captured) workload replays byte-identically through
 * `qgpu_serve --replay`.
 */

#ifndef QGPU_SERVICE_TRAFFIC_HH
#define QGPU_SERVICE_TRAFFIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/job.hh"

namespace qgpu
{
namespace service
{

/** Knobs of the synthetic workload. */
struct TrafficConfig
{
    int jobs = 100;
    /** Fraction of submissions that repeat an earlier request's
     *  simulation (same circuit + options, fresh sampling seed). */
    double repeatFraction = 0.0;
    /** Tenants round-robin over this many names ("t0", "t1", ...). */
    int tenants = 4;
    /** Circuit families drawn from (default: all registry names). */
    std::vector<std::string> families;
    int minQubits = 10;
    int maxQubits = 14;
    std::string engine = "qgpu";
    std::uint64_t shots = 0;
    /** Mean inter-arrival gap recorded in arrivalMs (virtual). */
    double meanGapMs = 5.0;
    std::uint64_t seed = 1;
};

/**
 * Generate @p config.jobs requests. Deterministic in the seed: the
 * same config always yields the same trace. Repeats pick a uniformly
 * random earlier unique request; the first job is always unique.
 */
std::vector<JobRequest> generateTraffic(const TrafficConfig &config);

/** Serialize one request per line (.jsonl). */
std::string trafficToJsonl(const std::vector<JobRequest> &requests);

/**
 * Parse a .jsonl trace (blank lines and #-comment lines skipped).
 * Returns false (with a message in @p error) on the first bad line.
 */
bool trafficFromJsonl(const std::string &text,
                      std::vector<JobRequest> &out,
                      std::string &error);

/** Read + parse a trace file; fatal on I/O error. */
std::vector<JobRequest> loadTraffic(const std::string &path);

/** Write a trace file; fatal on I/O error. */
void saveTraffic(const std::vector<JobRequest> &requests,
                 const std::string &path);

} // namespace service
} // namespace qgpu

#endif // QGPU_SERVICE_TRAFFIC_HH
