#include "service/job.hh"

#include <cstdio>

#include "circuits/circuits.hh"
#include "common/logging.hh"
#include "qc/canonical.hh"
#include "qc/qasm.hh"

namespace qgpu
{
namespace service
{

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
    case JobStatus::Queued: return "queued";
    case JobStatus::Running: return "running";
    case JobStatus::Done: return "done";
    case JobStatus::Failed: return "failed";
    case JobStatus::Cancelled: return "cancelled";
    case JobStatus::Rejected: return "rejected";
    }
    QGPU_PANIC("unknown JobStatus ", static_cast<int>(status));
}

bool
jobStatusTerminal(JobStatus status)
{
    return status != JobStatus::Queued && status != JobStatus::Running;
}

Circuit
CircuitSpec::build() const
{
    if (!qasm.empty())
        return fromQasm(qasm);
    if (family.empty())
        QGPU_FATAL("circuit spec needs a family or a qasm program");
    return circuits::makeBenchmark(family, qubits, seed);
}

JsonValue
CircuitSpec::toJson() const
{
    std::map<std::string, JsonValue> m;
    if (!qasm.empty()) {
        m.emplace("qasm", JsonValue::makeString(qasm));
    } else {
        m.emplace("family", JsonValue::makeString(family));
        m.emplace("qubits",
                  JsonValue::makeNumber(static_cast<double>(qubits)));
        m.emplace("seed",
                  JsonValue::makeNumber(static_cast<double>(seed)));
    }
    return JsonValue::makeObject(std::move(m));
}

std::optional<CircuitSpec>
CircuitSpec::fromJson(const JsonValue &v)
{
    if (!v.isObject())
        return std::nullopt;
    CircuitSpec spec;
    spec.qasm = v.stringOr("qasm", "");
    spec.family = v.stringOr("family", "");
    spec.qubits = static_cast<int>(v.numberOr("qubits", 0.0));
    spec.seed = static_cast<std::uint64_t>(v.numberOr("seed", 0.0));
    if (spec.qasm.empty() && spec.family.empty())
        return std::nullopt;
    if (spec.qasm.empty() && spec.qubits <= 0)
        return std::nullopt;
    return spec;
}

bool
JobRequest::faultsArmed() const
{
    // "env" with no QGPU_FAULTS set resolves to no faults, but the
    // resolution is environment-dependent; the service treats any
    // non-empty spec other than the explicit "none" as armed so
    // cacheability never depends on the environment.
    return !faultSpec.empty() && faultSpec != "none";
}

bool
JobRequest::noiseArmed() const
{
    return !noiseSpec.empty() && noiseSpec != "none";
}

JsonValue
JobRequest::toJson() const
{
    std::map<std::string, JsonValue> m;
    m.emplace("tenant", JsonValue::makeString(tenant));
    m.emplace("circuit", circuit.toJson());
    m.emplace("engine", JsonValue::makeString(engine));
    m.emplace("shots",
              JsonValue::makeNumber(static_cast<double>(shots)));
    m.emplace("seed",
              JsonValue::makeNumber(static_cast<double>(seed)));
    m.emplace("precision",
              JsonValue::makeString(precisionName(precision)));
    if (precision == Precision::adaptive)
        m.emplace("adaptive_threshold",
                  JsonValue::makeNumber(adaptiveThreshold));
    m.emplace("fast_math", JsonValue::makeBool(fastMath));
    if (faultsArmed()) {
        m.emplace("fault_spec", JsonValue::makeString(faultSpec));
        m.emplace("fault_seed",
                  JsonValue::makeNumber(
                      static_cast<double>(faultSeed)));
    }
    if (noiseArmed()) {
        m.emplace("noise_spec", JsonValue::makeString(noiseSpec));
        m.emplace("shot_seed",
                  JsonValue::makeNumber(
                      static_cast<double>(shotSeed)));
    }
    m.emplace("arrival_ms", JsonValue::makeNumber(arrivalMs));
    return JsonValue::makeObject(std::move(m));
}

std::optional<JobRequest>
JobRequest::fromJson(const JsonValue &v)
{
    if (!v.isObject())
        return std::nullopt;
    JobRequest r;
    r.tenant = v.stringOr("tenant", "default");
    const JsonValue *circuit = v.find("circuit");
    if (circuit == nullptr)
        return std::nullopt;
    const auto spec = CircuitSpec::fromJson(*circuit);
    if (!spec)
        return std::nullopt;
    r.circuit = *spec;
    r.engine = v.stringOr("engine", "qgpu");
    r.shots = static_cast<std::uint64_t>(v.numberOr("shots", 0.0));
    r.seed = static_cast<std::uint64_t>(v.numberOr("seed", 2026.0));
    if (!parsePrecision(v.stringOr("precision", "f64"), r.precision))
        return std::nullopt;
    r.adaptiveThreshold = v.numberOr("adaptive_threshold", 1e-6);
    r.fastMath = v.boolOr("fast_math", false);
    r.faultSpec = v.stringOr("fault_spec", "");
    r.faultSeed = static_cast<std::uint64_t>(
        v.numberOr("fault_seed",
                   static_cast<double>(0x517e57ull)));
    r.noiseSpec = v.stringOr("noise_spec", "");
    r.shotSeed = static_cast<std::uint64_t>(
        v.numberOr("shot_seed", static_cast<double>(0x5407ull)));
    r.arrivalMs = v.numberOr("arrival_ms", 0.0);
    return r;
}

std::uint64_t
simulationKey(const JobRequest &request, const Circuit &circuit)
{
    HashStream h;
    h.byte(0x4b); // key tag
    h.str(request.engine);
    h.str(precisionName(request.precision));
    // The promotion threshold only steers f32->f64 promotion in
    // adaptive mode; under fixed precision it cannot affect any
    // amplitude, so folding it in would needlessly split the cache.
    if (request.precision == Precision::adaptive)
        h.f64(request.adaptiveThreshold);
    h.byte(request.fastMath ? 1 : 0);
    // Noise trajectories are part of the result: the spec, the shot
    // count, and the batch seed all change what comes back. Fold
    // them only when armed so ideal jobs keep their existing keys
    // (and the sampling seed stays scheduling-only for them).
    if (request.noiseArmed()) {
        h.byte(1);
        h.str(request.noiseSpec);
        h.u64(request.shots);
        h.u64(request.shotSeed);
    }
    return canonicalCircuitHash(circuit, h.digest());
}

namespace
{

std::string
hexKey(std::uint64_t key)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

} // namespace

JsonValue
JobResult::toJson() const
{
    std::map<std::string, JsonValue> m;
    m.emplace("id", JsonValue::makeNumber(static_cast<double>(id)));
    m.emplace("tenant", JsonValue::makeString(tenant));
    m.emplace("status",
              JsonValue::makeString(jobStatusName(status)));
    m.emplace("key", JsonValue::makeString(hexKey(key)));
    m.emplace("engine", JsonValue::makeString(engine));
    m.emplace("cache_hit", JsonValue::makeBool(cacheHit));
    m.emplace("coalesced", JsonValue::makeBool(coalesced));
    m.emplace("dispatch_index",
              JsonValue::makeNumber(
                  static_cast<double>(dispatchIndex)));
    m.emplace("latency_s", JsonValue::makeNumber(latencySeconds()));
    m.emplace("vtime", JsonValue::makeNumber(totalVTime));
    m.emplace("norm", JsonValue::makeNumber(norm));
    if (!counts.empty()) {
        std::map<std::string, JsonValue> c;
        for (const auto &[outcome, hits] : counts)
            c.emplace(std::to_string(outcome),
                      JsonValue::makeNumber(
                          static_cast<double>(hits)));
        m.emplace("counts", JsonValue::makeObject(std::move(c)));
    }
    if (error)
        m.emplace("error", JsonValue::makeString(error->toString()));
    return JsonValue::makeObject(std::move(m));
}

} // namespace service
} // namespace qgpu
