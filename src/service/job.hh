/**
 * @file
 * Job model of the multi-tenant service layer: what a tenant submits
 * (JobRequest), how it moves through the service (JobStatus), and
 * what comes back (JobResult). Both ends serialize to single-line
 * JSON objects so traffic traces are .jsonl files that
 * `qgpu_serve --replay` can feed back deterministically.
 *
 * Identity: every request maps to a 64-bit simulation key =
 * canonical circuit hash (qc/canonical.hh) folded with the
 * result-affecting execution options — engine version, storage
 * precision (+ adaptive threshold), and the fast-math tier.
 * Scheduling-only knobs (host threads, device count/fabric, chunk
 * storage backend, working set, chunk count) are bit-identical by
 * construction (PRs 2/6/8) and deliberately NOT part of the key, so
 * a cache entry produced on one service configuration is valid on
 * any other. Jobs that arm fault injection have no stable result and
 * never participate in caching (simulationKey still computes; the
 * scheduler bypasses the cache for them).
 */

#ifndef QGPU_SERVICE_JOB_HH
#define QGPU_SERVICE_JOB_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/json.hh"
#include "common/types.hh"
#include "fault/sim_error.hh"
#include "qc/circuit.hh"

namespace qgpu
{
namespace service
{

/**
 * Lifecycle of a job. Terminal states: Done, Failed, Cancelled,
 * Rejected.
 *
 *   submit -> Queued -> Running -> Done | Failed
 *                 \--> Cancelled            (cancel before dispatch)
 *   submit -> Rejected                      (admission control)
 *   submit -> Done                          (cache hit: no queue, no
 *                                            engine run)
 */
enum class JobStatus
{
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
    Rejected,
};

/** Lower-case status name ("queued", "running", ...). */
const char *jobStatusName(JobStatus status);

/** True for Done/Failed/Cancelled/Rejected. */
bool jobStatusTerminal(JobStatus status);

/**
 * Which circuit a job wants simulated: a registered benchmark family
 * (family + qubits + generator seed) or an inline OpenQASM 2.0
 * program. Exactly one of family/qasm is set.
 */
struct CircuitSpec
{
    std::string family; ///< registry name; empty when qasm is used
    int qubits = 0;
    std::uint64_t seed = 0; ///< generator seed (0 = family default)
    std::string qasm;       ///< inline program; empty for families

    /** Materialize the circuit (fatal on unknown family/bad QASM). */
    Circuit build() const;

    JsonValue toJson() const;
    static std::optional<CircuitSpec> fromJson(const JsonValue &v);
};

/**
 * One tenant submission. Result-affecting execution options ride on
 * the request; scheduling-only options (threads, devices, storage)
 * are service configuration.
 */
struct JobRequest
{
    std::string tenant = "default";
    CircuitSpec circuit;
    /** Engine selector (harness::makeEngine names). */
    std::string engine = "qgpu";
    /** Measurement shots sampled from the final state (0 = none). */
    std::uint64_t shots = 0;
    /** Sampling seed (per-job; not part of the simulation key). */
    std::uint64_t seed = 2026;
    /** Amplitude storage precision (result-affecting). */
    Precision precision = Precision::f64;
    /** Adaptive-precision promotion threshold (used when adaptive). */
    double adaptiveThreshold = 1e-6;
    /** Fast-math kernel tier opt-in (result-affecting; must match
     *  the service's process-wide tier, see ServiceConfig). */
    bool fastMath = false;
    /** Fault-injection spec ("" = none). Armed jobs bypass caching. */
    std::string faultSpec;
    std::uint64_t faultSeed = 0x517e57ull;
    /**
     * Noise-model spec for batched stochastic execution
     * (noise/model.hh; "" = ideal). Noisy jobs run through
     * runBatched and require shots > 0. Unlike the sampling seed,
     * the noise spec, shot count, and shot seed ARE result-affecting
     * (they change the trajectories), so they fold into the
     * simulation key — but only when armed, keeping every ideal
     * job's key unchanged. "env" is rejected at admission: a key
     * must not depend on the service's environment.
     */
    std::string noiseSpec;
    /** Base seed of the noisy batch (splitSeed(shotSeed, i) per
     *  shot); result-affecting, unlike the ideal sampling seed. */
    std::uint64_t shotSeed = 0x5407ull;
    /** Virtual arrival time in the generating trace (replay order). */
    double arrivalMs = 0.0;

    /** True when faultSpec arms injection ("" and "none" do not). */
    bool faultsArmed() const;

    /** True when noiseSpec arms stochastic noise ("" / "none" do
     *  not; "env" counts as armed and is rejected at admission). */
    bool noiseArmed() const;

    JsonValue toJson() const;
    static std::optional<JobRequest> fromJson(const JsonValue &v);
};

/**
 * The simulation identity of @p request given the already-built
 * @p circuit: canonical circuit hash x result-affecting options.
 */
std::uint64_t simulationKey(const JobRequest &request,
                            const Circuit &circuit);

/**
 * Terminal snapshot of one job, as returned by JobService::result.
 */
struct JobResult
{
    std::uint64_t id = 0;
    std::string tenant;
    JobStatus status = JobStatus::Queued;
    /** Simulation key (hex in JSON). Zero for rejected jobs. */
    std::uint64_t key = 0;
    /** Engine display name of the producing run. */
    std::string engine;
    /** Result came straight from the cache (no queue, no run). */
    bool cacheHit = false;
    /** Result shared from a concurrent identical in-flight run. */
    bool coalesced = false;
    /** Dispatch sequence number (order the scheduler started or
     *  resolved the job); for observing the fair-share policy. */
    std::uint64_t dispatchIndex = 0;
    /** Service-relative wall seconds. */
    double submitSeconds = 0.0;
    double startSeconds = 0.0; ///< == submitSeconds for cache hits
    double doneSeconds = 0.0;
    /** Modeled virtual time of the producing run (0 for hits shares
     *  the cached producing run's time). */
    double totalVTime = 0.0;
    /** Final-state norm (1.0 for a valid state). */
    double norm = 0.0;
    /** Sampled measurement outcomes (shots > 0 only). */
    std::map<Index, std::uint64_t> counts;
    /** Structured failure for status Failed; reason for Rejected is
     *  in detail with code left at its default. */
    std::optional<SimError> error;

    /** End-to-end latency (doneSeconds - submitSeconds). */
    double latencySeconds() const
    {
        return doneSeconds - submitSeconds;
    }

    JsonValue toJson() const;
};

} // namespace service
} // namespace qgpu

#endif // QGPU_SERVICE_JOB_HH
