#include "service/scheduler.hh"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "circuits/circuits.hh"
#include "common/logging.hh"
#include "engine/batched.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "harness/experiment.hh"
#include "qc/canonical.hh"
#include "qc/qasm.hh"
#include "statevec/measure.hh"

namespace qgpu
{
namespace service
{

namespace
{

/** Service-relative wall clock (one epoch per process). */
const WallClock &
serviceClock()
{
    static const WallClock clock;
    return clock;
}

std::optional<DeviceSpec>
presetByName(const std::string &name)
{
    if (name == "p100")
        return machines::p100();
    if (name == "v100")
        return machines::v100Pcie();
    if (name == "v100nvl")
        return machines::v100Nvlink();
    if (name == "a100")
        return machines::a100();
    if (name == "p4")
        return machines::p4();
    return std::nullopt;
}

bool
knownEngine(const std::string &name)
{
    static const std::vector<std::string> engines = {
        "baseline", "naive", "overlap", "pruning", "reorder",
        "qgpu",     "cpu",   "qsim",    "qdk",
    };
    return std::find(engines.begin(), engines.end(), name) !=
           engines.end();
}

bool
knownFamily(const std::string &name)
{
    const auto &names = circuits::benchmarkNames();
    return name == "grqc" ||
           std::find(names.begin(), names.end(), name) !=
               names.end();
}

Circuit
fromQasmChecked(const std::string &text, std::string &reject)
{
    // fromQasm is fatal on malformed programs (it serves trusted
    // tooling); the service validates just enough up front to turn
    // garbage into a structured rejection instead of process exit.
    if (text.find("OPENQASM") == std::string::npos) {
        reject = "qasm program missing OPENQASM header";
        return Circuit{1};
    }
    return fromQasm(text);
}

/** Modeled cost used for the small/large fairness classes. */
double
jobCost(const Circuit &circuit)
{
    return std::ldexp(1.0, circuit.numQubits()) *
           static_cast<double>(circuit.numGates());
}

} // namespace

JobService::JobService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cacheBytes, config_.cacheShards),
      paused_(config_.startPaused)
{
    if (!presetByName(config_.gpu))
        QGPU_FATAL("unknown GPU preset '", config_.gpu, "'");
    const int workers = config_.hostThreads > 0
                            ? config_.hostThreads
                            : ThreadPool::hardwareThreads();
    // At least maxActiveJobs workers, else a lone worker running a
    // job would leave other dispatched jobs queued behind it.
    ThreadPool::global().ensureWorkers(
        std::max(workers, config_.maxActiveJobs));
    serviceClock(); // pin the epoch to service construction
}

JobService::~JobService()
{
    resume();
    drain();
}

std::uint64_t
JobService::submit(const JobRequest &request)
{
    auto job = std::make_shared<Job>();
    job->request = request;

    // Everything up to the queue decision happens on the caller's
    // thread: circuit construction and hashing are cheap relative to
    // simulation, and doing them here means the mutex only guards
    // queue/cache bookkeeping.
    std::string reject;
    if (!request.circuit.qasm.empty()) {
        job->circuit = canonicalCircuit(
            fromQasmChecked(request.circuit.qasm, reject));
    } else if (!knownFamily(request.circuit.family)) {
        reject = "unknown circuit family '" +
                 request.circuit.family + "'";
    } else if (request.circuit.qubits < 1 ||
               request.circuit.qubits > 40) {
        reject = "qubit count out of range";
    } else {
        job->circuit = canonicalCircuit(request.circuit.build());
    }
    if (reject.empty() && !knownEngine(request.engine))
        reject = "unknown engine '" + request.engine + "'";
    if (reject.empty() && request.fastMath != config_.fastMath)
        reject = "fast-math tier mismatch (service runs the " +
                 std::string(config_.fastMath ? "fast" : "exact") +
                 " tier process-wide)";
    // Noise admission: the spec folds into the simulation key, so it
    // must be self-contained ("env" would make identity depend on
    // the service's environment), and a noisy job with no shots has
    // nothing to sample.
    if (reject.empty() && request.noiseSpec == "env")
        reject = "noise spec 'env' is environment-dependent; "
                 "submit the resolved spec string";
    if (reject.empty() && request.noiseArmed() &&
        request.shots == 0)
        reject = "noisy jobs need shots > 0";

    std::lock_guard<std::mutex> lock(mutex_);
    job->id = nextId_++;
    job->result.id = job->id;
    job->result.tenant = request.tenant;
    job->result.submitSeconds = serviceClock().seconds();
    jobs_.emplace(job->id, job);
    bumpLocked("service.submitted");

    if (!reject.empty()) {
        job->result.status = JobStatus::Rejected;
        job->result.error = SimError{};
        job->result.error->detail = reject;
        job->result.doneSeconds = job->result.submitSeconds;
        bumpLocked("service.rejected");
        terminal_.notify_all();
        return job->id;
    }

    job->key = simulationKey(request, job->circuit);
    job->result.key = job->key;
    job->cacheable = !request.faultsArmed();
    job->small = jobCost(job->circuit) <= config_.smallCostThreshold;

    if (job->cacheable) {
        if (const auto sim = cache_.lookup(job->key)) {
            // Hit: resolve on the spot; no queue slot, no run.
            fillFromSim(request, job->result, *sim);
            job->result.status = JobStatus::Done;
            job->result.cacheHit = true;
            job->result.startSeconds = job->result.submitSeconds;
            job->result.doneSeconds = serviceClock().seconds();
            job->result.dispatchIndex = nextDispatch_++;
            bumpLocked("service.cache.hit");
            bumpLocked("service.completed");
            terminal_.notify_all();
            return job->id;
        }
        bumpLocked("service.cache.miss");
        if (const auto it = inflight_.find(job->key);
            it != inflight_.end()) {
            // Single-flight: ride the identical queued/running job.
            it->second->followers.push_back(job->id);
            bumpLocked("service.singleflight.coalesced");
            return job->id;
        }
        inflight_.emplace(job->key, job);
    }

    const int depth = queueDepthLocked();
    if (depth >= config_.maxQueueDepth) {
        if (job->cacheable)
            inflight_.erase(job->key);
        job->result.status = JobStatus::Rejected;
        job->result.error = SimError{};
        job->result.error->detail =
            "queue full (" + std::to_string(depth) + "/" +
            std::to_string(config_.maxQueueDepth) + ")";
        job->result.doneSeconds = serviceClock().seconds();
        bumpLocked("service.rejected");
        terminal_.notify_all();
        return job->id;
    }

    (job->small ? smallQueue_ : largeQueue_).push_back(job);
    bumpLocked("service.queue_depth", 1.0);
    pumpLocked();
    return job->id;
}

int
JobService::queueDepthLocked() const
{
    return static_cast<int>(smallQueue_.size() +
                            largeQueue_.size());
}

JobService::JobPtr
JobService::takeNextLocked()
{
    const auto liveFollowers = [this](const JobPtr &job) {
        for (const std::uint64_t id : job->followers) {
            const auto it = jobs_.find(id);
            if (it != jobs_.end() &&
                it->second->result.status == JobStatus::Queued)
                return true;
        }
        return false;
    };
    const auto popDead = [&](std::deque<JobPtr> &queue) {
        // Skip jobs cancelled while queued (kept in the queue when
        // live followers still need the simulation).
        while (!queue.empty() &&
               queue.front()->result.status ==
                   JobStatus::Cancelled &&
               !liveFollowers(queue.front())) {
            if (queue.front()->cacheable)
                inflight_.erase(queue.front()->key);
            queue.pop_front();
            bumpLocked("service.queue_depth", -1.0);
        }
    };
    popDead(smallQueue_);
    popDead(largeQueue_);

    const bool haveSmall = !smallQueue_.empty();
    const bool haveLarge = !largeQueue_.empty();
    if (!haveSmall && !haveLarge)
        return nullptr;

    bool takeSmall;
    if (haveSmall && haveLarge) {
        // Fair share: up to fairShareSmallBurst smalls, then one
        // large. Burst 0 means strict FIFO by submission id.
        if (config_.fairShareSmallBurst <= 0)
            takeSmall =
                smallQueue_.front()->id < largeQueue_.front()->id;
        else
            takeSmall = burstUsed_ < config_.fairShareSmallBurst;
    } else {
        takeSmall = haveSmall;
    }

    auto &queue = takeSmall ? smallQueue_ : largeQueue_;
    JobPtr job = queue.front();
    queue.pop_front();
    bumpLocked("service.queue_depth", -1.0);
    if (config_.fairShareSmallBurst > 0)
        burstUsed_ = takeSmall ? burstUsed_ + 1 : 0;
    return job;
}

void
JobService::pumpLocked()
{
    while (!paused_ && active_ < config_.maxActiveJobs) {
        JobPtr job = takeNextLocked();
        if (!job)
            break;
        ++active_;
        job->result.dispatchIndex = nextDispatch_++;
        job->result.startSeconds = serviceClock().seconds();
        if (job->result.status == JobStatus::Queued)
            job->result.status = JobStatus::Running;
        ThreadPool::global().submit(
            [this, job] { execute(job); });
    }
}

void
JobService::execute(const JobPtr &job)
{
    const JobRequest &request = job->request;
    ExecOptions options = harness::benchOptions();
    options.keepState = true; // state feeds the cache and sampling
    options.hostThreads = config_.hostThreads;
    options.precision = request.precision;
    options.adaptiveThreshold = request.adaptiveThreshold;
    options.fastMath = request.fastMath;
    options.faultSpec =
        request.faultsArmed() ? request.faultSpec : "none";
    options.faultSeed = request.faultSeed;

    Machine machine = machines::makeScaled(
        job->circuit.numQubits(), *presetByName(config_.gpu),
        config_.deviceFraction, config_.devices);

    if (request.noiseArmed()) {
        // Noisy batched job: run shot trajectories through
        // runBatched. The simulation key pins (canonical circuit,
        // noise spec, shots, shot seed), and the draw-path
        // determinism contract (engine/batched.hh) makes the counts
        // a pure function of that key — so the aggregated counts
        // are what gets cached, returned verbatim on every hit.
        options.keepState = false;
        options.noiseSpec = request.noiseSpec;
        options.shotSeed = request.shotSeed;
        options.shots = request.shots;
        const auto engine = harness::makeEngine(
            request.engine, machine, options);
        BatchResult batch = engine->runBatched(job->circuit);
        std::shared_ptr<const CachedSim> sim;
        if (batch.ok()) {
            auto owned = std::make_shared<CachedSim>();
            owned->key = job->key;
            owned->engine = batch.engine;
            owned->noisy = true;
            owned->counts = std::move(batch.counts);
            owned->norm = 1.0;
            sim = std::move(owned);
        } else {
            job->result.error = batch.error;
            job->result.engine = batch.engine;
        }
        complete(job, std::move(sim));
        return;
    }

    // The canonical form IS what runs: hash-equal jobs execute the
    // exact same gate stream, which is what makes cached states
    // bit-identical to fresh runs (see qc/canonical.hh).
    RunResult run = harness::runOn(request.engine, machine,
                                   job->circuit, options);

    std::shared_ptr<const CachedSim> sim;
    if (run.ok()) {
        auto owned = std::make_shared<CachedSim>();
        owned->key = job->key;
        owned->engine = run.engine;
        owned->state = std::move(run.state);
        owned->totalVTime = run.totalTime;
        owned->norm = owned->state.norm();
        sim = std::move(owned);
    } else {
        job->result.error = run.error;
        job->result.engine = run.engine;
        job->result.totalVTime = run.totalTime;
    }
    complete(job, std::move(sim));
}

void
JobService::complete(const JobPtr &job,
                     std::shared_ptr<const CachedSim> sim)
{
    // Sampling for the leader happens outside the mutex; follower
    // sampling below is O(shots) under the lock only for coalesced
    // jobs, which is fine at service scale (sampling is post-hoc and
    // cheap next to simulation).
    const bool cancelled =
        job->result.status == JobStatus::Cancelled;
    if (sim && !cancelled)
        fillFromSim(job->request, job->result, *sim);

    std::lock_guard<std::mutex> lock(mutex_);
    const double now = serviceClock().seconds();
    if (!cancelled) {
        job->result.status =
            sim ? JobStatus::Done : JobStatus::Failed;
        job->result.doneSeconds = now;
        bumpLocked(sim ? "service.completed" : "service.failed");
    }
    for (const std::uint64_t id : job->followers) {
        const auto it = jobs_.find(id);
        if (it == jobs_.end())
            continue;
        const JobPtr &follower = it->second;
        if (follower->result.status != JobStatus::Queued)
            continue; // cancelled while coalesced
        if (sim) {
            fillFromSim(follower->request, follower->result, *sim);
            follower->result.status = JobStatus::Done;
        } else {
            follower->result.status = JobStatus::Failed;
            follower->result.error = job->result.error;
            follower->result.engine = job->result.engine;
        }
        follower->result.coalesced = true;
        follower->result.startSeconds = job->result.startSeconds;
        follower->result.doneSeconds = now;
        follower->result.dispatchIndex = nextDispatch_++;
        bumpLocked(sim ? "service.completed" : "service.failed");
    }
    if (job->cacheable) {
        inflight_.erase(job->key);
        if (sim)
            cache_.insert(std::move(sim));
    }
    --active_;
    pumpLocked();
    terminal_.notify_all();
}

void
JobService::fillFromSim(const JobRequest &request,
                        JobResult &result,
                        const CachedSim &sim) const
{
    result.engine = sim.engine;
    result.totalVTime = sim.totalVTime;
    result.norm = sim.norm;
    if (sim.noisy) {
        // The cached counts ARE the result of a noisy batch — the
        // shot seed is part of the key, so every hit must see the
        // exact same counts, never a resample.
        result.counts = sim.counts;
    } else if (request.shots > 0) {
        Rng rng(request.seed);
        result.counts = sampleCounts(sim.state, request.shots, rng);
    }
}

std::shared_ptr<const CachedSim>
JobService::cachedFor(const JobRequest &request)
{
    if (request.faultsArmed())
        return nullptr;
    const Circuit canon = canonicalCircuit(request.circuit.build());
    return cache_.lookup(simulationKey(request, canon));
}

bool
JobService::cancel(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    const JobPtr &job = it->second;
    if (job->result.status != JobStatus::Queued)
        return false;
    // Queued leaders stay in their queue when followers still need
    // the simulation (takeNextLocked skips dead entries); followers
    // are simply skipped at fan-out.
    job->result.status = JobStatus::Cancelled;
    job->result.doneSeconds = serviceClock().seconds();
    bumpLocked("service.cancelled");
    terminal_.notify_all();
    return true;
}

JobResult
JobService::wait(std::uint64_t id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        QGPU_FATAL("wait on unknown job id ", id);
    const JobPtr job = it->second;
    terminal_.wait(lock, [&] {
        return jobStatusTerminal(job->result.status);
    });
    return job->result;
}

void
JobService::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    terminal_.wait(lock, [&] {
        return active_ == 0 && (paused_ || (smallQueue_.empty() &&
                                            largeQueue_.empty()));
    });
}

JobResult
JobService::result(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        QGPU_FATAL("result for unknown job id ", id);
    return it->second->result;
}

void
JobService::pause()
{
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
}

void
JobService::resume()
{
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
    pumpLocked();
}

int
JobService::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queueDepthLocked();
}

std::uint64_t
JobService::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
JobService::bumpLocked(const std::string &name, double delta)
{
    // queue_depth is the one gauge: +1/-1. Everything else is a
    // monotonic count.
    if (delta >= 0.0)
        counters_[name] +=
            static_cast<std::uint64_t>(delta);
    else
        counters_[name] -=
            static_cast<std::uint64_t>(-delta);
    MetricsRegistry::global().add(name, delta);
}

} // namespace service
} // namespace qgpu
