/**
 * @file
 * JobService: the multi-tenant front end that multiplexes concurrent
 * simulation jobs onto the shared process-wide ThreadPool.
 *
 * Flow of one submission:
 *
 *   submit(request)
 *     |- admission: reject on invalid request, tier mismatch, or a
 *     |  full queue (maxQueueDepth) -> JobStatus::Rejected
 *     |- cache lookup (cacheable jobs): hit -> JobStatus::Done
 *     |  immediately, no queue slot, no engine run
 *     |- single-flight: an identical cacheable job already queued or
 *     |  running -> attach as follower; the leader's completion fans
 *     |  the shared result out (counted service.singleflight.coalesced)
 *     '- otherwise enqueue (small or large class) and pump
 *
 * Dispatch ("pump") runs under the service mutex whenever a slot
 * frees or work arrives; it never blocks. Up to maxActiveJobs jobs
 * run concurrently, each as one ThreadPool task that builds its own
 * Machine and engine, so jobs share worker threads with the
 * data-parallel loops inside each engine (the pool's help-based
 * waiting keeps that nesting deadlock-free).
 *
 * Fairness: jobs are classed small/large by modeled cost
 * (2^qubits * gates vs smallCostThreshold). The dispatcher
 * alternates up to fairShareSmallBurst small jobs, then one large
 * job, whenever both classes are waiting — so a tenant streaming
 * 30-qubit monsters cannot starve interactive 10-qubit traffic,
 * while the burst bound keeps large jobs from starving in turn.
 * fairShareSmallBurst = 0 degenerates to strict FIFO.
 *
 * Determinism: results are bit-identical regardless of concurrency,
 * because thread count, device count, and storage backend do not
 * affect amplitudes (PRs 2/6/8) and every job executes the canonical
 * circuit form (qc/canonical.hh). The ONE process-global that could
 * break this — the fast-math kernel tier — is pinned per service:
 * jobs whose fastMath flag differs from ServiceConfig::fastMath are
 * rejected at admission.
 *
 * Counters (mirrored into MetricsRegistry::global(), see
 * common/metrics.hh): service.submitted, service.rejected,
 * service.completed, service.failed, service.cancelled,
 * service.cache.hit, service.cache.miss,
 * service.singleflight.coalesced, service.queue_depth (gauge-like:
 * add +1/-1).
 */

#ifndef QGPU_SERVICE_SCHEDULER_HH
#define QGPU_SERVICE_SCHEDULER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/job.hh"
#include "service/result_cache.hh"
#include "sim/machine.hh"

namespace qgpu
{
namespace service
{

/** Service-wide configuration (scheduling-only; never keyed). */
struct ServiceConfig
{
    /** GPU preset name for per-job machines ("p100", "v100",
     *  "v100nvl", "a100", "p4"). */
    std::string gpu = "p100";
    /** Device-memory fraction of the state (makeScaled). */
    double deviceFraction = 1.0 / 16.0;
    /** Simulated devices per job. */
    int devices = 1;
    /** Host worker threads (ThreadPool::global() is grown to this). */
    int hostThreads = 0; ///< 0 = hardware concurrency
    /** Queued-job bound; submissions beyond it are Rejected. */
    int maxQueueDepth = 256;
    /** Concurrently running jobs. */
    int maxActiveJobs = 2;
    /** Small jobs dispatched per large job when both wait (0 = FIFO). */
    int fairShareSmallBurst = 4;
    /** Small/large class boundary on modeled cost 2^qubits * gates. */
    double smallCostThreshold = 1.0e9;
    /** Result-cache budget in bytes (0 disables the cache). */
    std::size_t cacheBytes = std::size_t{512} << 20;
    int cacheShards = 8;
    /** Process-wide fast-math tier; jobs must match (see file doc). */
    bool fastMath = false;
    /** Start with dispatch paused (tests: queue, then resume()). */
    bool startPaused = false;
};

/**
 * The job service. Thread-safe: submit/cancel/wait/result may be
 * called concurrently from any thread.
 */
class JobService
{
  public:
    explicit JobService(ServiceConfig config = {});

    /** Drains all outstanding work before destruction. */
    ~JobService();

    JobService(const JobService &) = delete;
    JobService &operator=(const JobService &) = delete;

    /**
     * Submit one job. Always returns a job id; inspect result(id)
     * for Rejected / immediate cache-hit Done. Never blocks on
     * simulation work.
     */
    std::uint64_t submit(const JobRequest &request);

    /**
     * Cancel a queued job. Returns true when the job was still
     * queued (it becomes Cancelled and never runs); false when it
     * already started, finished, or never existed. Followers of an
     * in-flight leader can be cancelled while the leader runs.
     */
    bool cancel(std::uint64_t id);

    /** Block until job @p id reaches a terminal status. */
    JobResult wait(std::uint64_t id);

    /** Block until every submitted job is terminal. */
    void drain();

    /** Snapshot of a job's current result (terminal or not). */
    JobResult result(std::uint64_t id);

    /** Stop dispatching new jobs (running jobs finish). */
    void pause();

    /** Resume dispatching. */
    void resume();

    /** Currently queued (not yet dispatched) jobs. */
    int queueDepth() const;

    const ServiceConfig &config() const { return config_; }

    ResultCacheStats cacheStats() const { return cache_.stats(); }

    /**
     * The cache entry @p request would hit, or nullptr. Introspection
     * for tests and tooling: this is how the differential suite
     * checks a cached state bitwise against a fresh engine run.
     * Counts a cache hit/miss like any lookup.
     */
    std::shared_ptr<const CachedSim>
    cachedFor(const JobRequest &request);

    /** Monotonic counters, keyed as in the file doc block. */
    std::uint64_t counter(const std::string &name) const;

  private:
    struct Job
    {
        std::uint64_t id = 0;
        JobRequest request;
        Circuit circuit{1};
        std::uint64_t key = 0;
        bool cacheable = false;
        bool small = false;
        JobResult result;
        /** Followers coalesced onto this leader (ids). */
        std::vector<std::uint64_t> followers;
    };

    using JobPtr = std::shared_ptr<Job>;

    /** Dispatch queued jobs while slots are free (mutex held). */
    void pumpLocked();

    int queueDepthLocked() const;

    /** Pick the next job honoring the fair-share policy (mutex
     *  held); null when both queues are empty. */
    JobPtr takeNextLocked();

    /** Run one job on the calling pool thread (no service mutex). */
    void execute(const JobPtr &job);

    /** Leader finished: fan out to followers, cache, free the slot
     *  (takes the mutex). */
    void complete(const JobPtr &job,
                  std::shared_ptr<const CachedSim> sim);

    /** Fill @p result from @p sim + per-job sampling (no mutex). */
    void fillFromSim(const JobRequest &request, JobResult &result,
                     const CachedSim &sim) const;

    void bumpLocked(const std::string &name, double delta = 1.0);

    ServiceConfig config_;
    ResultCache cache_;

    mutable std::mutex mutex_;
    std::condition_variable terminal_; ///< job reached terminal state
    std::uint64_t nextId_ = 1;
    std::uint64_t nextDispatch_ = 1;
    bool paused_ = false;
    int active_ = 0;
    int burstUsed_ = 0; ///< small jobs dispatched since last large
    std::deque<JobPtr> smallQueue_;
    std::deque<JobPtr> largeQueue_;
    std::unordered_map<std::uint64_t, JobPtr> jobs_;
    /** Single-flight: simulation key -> leader job. */
    std::unordered_map<std::uint64_t, JobPtr> inflight_;
    std::unordered_map<std::string, std::uint64_t> counters_;
};

} // namespace service
} // namespace qgpu

#endif // QGPU_SERVICE_SCHEDULER_HH
