#include "compress/gfc.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/bits.hh"
#include "common/logging.hh"

namespace qgpu
{

namespace
{

/** Bit-pattern of a double as an unsigned integer. */
std::uint64_t
toBits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

double
fromBits(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

/** Leading-zero bytes of a 64-bit magnitude, capped at 7. */
int
leadingZeroBytes(std::uint64_t mag)
{
    const int lz_bits = std::countl_zero(mag);
    return std::min(lz_bits / 8, 7);
}

struct Residual
{
    bool negative;
    std::uint64_t magnitude;
};

/**
 * Residual between bit patterns, computed modulo 2^64 so that
 * reconstruction (prev + signed residual) is exact for every input.
 */
Residual
residualOf(std::uint64_t cur, std::uint64_t prev)
{
    const std::uint64_t diff = cur - prev; // mod 2^64
    if (diff > (std::uint64_t{1} << 63))
        return {true, ~diff + 1}; // -diff mod 2^64
    return {false, diff};
}

} // namespace

GfcCodec::GfcCodec(int warp_size, int segments)
    : warpSize_(warp_size), segments_(segments)
{
    if (warp_size < 1 || segments < 1)
        QGPU_FATAL("invalid GFC configuration: warp ", warp_size,
                   ", segments ", segments);
}

CompressedBlock
GfcCodec::compress(const double *data, std::uint64_t count) const
{
    CompressedBlock block;
    block.numDoubles = count;

    const std::uint64_t per =
        bits::ceilDiv(count, static_cast<std::uint64_t>(segments_));
    const int num_segs =
        per == 0 ? 0
                 : static_cast<int>(bits::ceilDiv(count, per));

    auto &out = block.bytes;
    auto put_u32 = [&out](std::uint32_t v) {
        for (int b = 0; b < 4; ++b)
            out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    };
    auto put_u64 = [&out](std::uint64_t v) {
        for (int b = 0; b < 8; ++b)
            out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    };

    put_u64(count);
    put_u32(static_cast<std::uint32_t>(num_segs));
    const std::size_t seglen_at = out.size();
    for (int s = 0; s < num_segs; ++s)
        put_u32(0); // patched below

    for (int s = 0; s < num_segs; ++s) {
        const std::uint64_t lo = static_cast<std::uint64_t>(s) * per;
        const std::uint64_t hi = std::min(count, lo + per);
        const std::uint64_t m = hi - lo;
        const std::size_t seg_start = out.size();

        // Nibble area first (packed two per byte), then payloads.
        const std::size_t nib_at = out.size();
        out.resize(out.size() + (m + 1) / 2, 0);

        std::vector<std::uint64_t> prev_lane(
            static_cast<std::size_t>(warpSize_), 0);
        for (std::uint64_t i = 0; i < m; ++i) {
            const int lane = static_cast<int>(i %
                static_cast<std::uint64_t>(warpSize_));
            const std::uint64_t cur = toBits(data[lo + i]);
            const Residual r = residualOf(cur, prev_lane[lane]);
            prev_lane[lane] = cur;

            const int lzb = leadingZeroBytes(r.magnitude);
            const std::uint8_t nib = static_cast<std::uint8_t>(
                (r.negative ? 8 : 0) | lzb);
            if (i % 2 == 0)
                out[nib_at + i / 2] = nib;
            else
                out[nib_at + i / 2] |= static_cast<std::uint8_t>(
                    nib << 4);

            const int payload = 8 - lzb;
            for (int b = 0; b < payload; ++b)
                out.push_back(static_cast<std::uint8_t>(
                    r.magnitude >> (8 * b)));
        }

        const std::uint32_t seg_bytes =
            static_cast<std::uint32_t>(out.size() - seg_start);
        for (int b = 0; b < 4; ++b)
            out[seglen_at + static_cast<std::size_t>(s) * 4 +
                static_cast<std::size_t>(b)] =
                static_cast<std::uint8_t>(seg_bytes >> (8 * b));
    }
    return block;
}

CompressedBlock
GfcCodec::compressAmps(const Amp *data, std::uint64_t count) const
{
    static_assert(sizeof(Amp) == 2 * sizeof(double));
    return compress(reinterpret_cast<const double *>(data), 2 * count);
}

void
GfcCodec::decompress(const CompressedBlock &block, double *out) const
{
    const auto &in = block.bytes;
    std::size_t pos = 0;
    auto get_u32 = [&in, &pos]() {
        std::uint32_t v = 0;
        for (int b = 0; b < 4; ++b)
            v |= static_cast<std::uint32_t>(in.at(pos++)) << (8 * b);
        return v;
    };
    auto get_u64 = [&in, &pos]() {
        std::uint64_t v = 0;
        for (int b = 0; b < 8; ++b)
            v |= static_cast<std::uint64_t>(in.at(pos++)) << (8 * b);
        return v;
    };

    const std::uint64_t count = get_u64();
    if (count != block.numDoubles)
        QGPU_PANIC("GFC stream count ", count, " != block count ",
                   block.numDoubles);
    const std::uint32_t num_segs = get_u32();
    std::vector<std::uint32_t> seg_len(num_segs);
    for (auto &len : seg_len)
        len = get_u32();

    const std::uint64_t per =
        bits::ceilDiv(count, static_cast<std::uint64_t>(segments_));

    for (std::uint32_t s = 0; s < num_segs; ++s) {
        const std::uint64_t lo = static_cast<std::uint64_t>(s) * per;
        const std::uint64_t hi = std::min(count, lo + per);
        const std::uint64_t m = hi - lo;
        const std::size_t seg_start = pos;
        const std::size_t nib_at = pos;
        std::size_t payload_at = pos + (m + 1) / 2;

        std::vector<std::uint64_t> prev_lane(
            static_cast<std::size_t>(warpSize_), 0);
        for (std::uint64_t i = 0; i < m; ++i) {
            const int lane = static_cast<int>(i %
                static_cast<std::uint64_t>(warpSize_));
            std::uint8_t nib = in.at(nib_at + i / 2);
            nib = (i % 2 == 0) ? (nib & 0x0f)
                               : static_cast<std::uint8_t>(nib >> 4);
            const bool negative = nib & 0x8;
            const int lzb = nib & 0x7;
            const int payload = 8 - lzb;
            std::uint64_t mag = 0;
            for (int b = 0; b < payload; ++b)
                mag |= static_cast<std::uint64_t>(in.at(payload_at++))
                       << (8 * b);
            const std::uint64_t cur =
                negative ? prev_lane[lane] - mag
                         : prev_lane[lane] + mag;
            prev_lane[lane] = cur;
            out[lo + i] = fromBits(cur);
        }
        if (payload_at - seg_start != seg_len[s])
            QGPU_PANIC("GFC segment ", s, " consumed ",
                       payload_at - seg_start, " bytes, header says ",
                       seg_len[s]);
        pos = payload_at;
    }
}

void
GfcCodec::decompressAmps(const CompressedBlock &block, Amp *out) const
{
    decompress(block, reinterpret_cast<double *>(out));
}

std::uint64_t
GfcCodec::headerBytes(std::uint64_t count) const
{
    const std::uint64_t per =
        bits::ceilDiv(count, static_cast<std::uint64_t>(segments_));
    const std::uint64_t num_segs =
        per == 0 ? 0 : bits::ceilDiv(count, per);
    return 8 + 4 + 4 * num_segs;
}

std::uint64_t
GfcCodec::compressedPayloadSize(const double *data,
                                std::uint64_t count) const
{
    return compressedSize(data, count) - headerBytes(count);
}

std::uint64_t
GfcCodec::compressedSize(const double *data, std::uint64_t count) const
{
    const std::uint64_t per =
        bits::ceilDiv(count, static_cast<std::uint64_t>(segments_));
    const int num_segs =
        per == 0 ? 0
                 : static_cast<int>(bits::ceilDiv(count, per));

    std::uint64_t total = 8 + 4 + 4ull * num_segs;
    std::vector<std::uint64_t> prev_lane(
        static_cast<std::size_t>(warpSize_));
    for (int s = 0; s < num_segs; ++s) {
        const std::uint64_t lo = static_cast<std::uint64_t>(s) * per;
        const std::uint64_t hi = std::min(count, lo + per);
        const std::uint64_t m = hi - lo;
        total += (m + 1) / 2; // nibbles
        std::fill(prev_lane.begin(), prev_lane.end(), 0);
        for (std::uint64_t i = 0; i < m; ++i) {
            const int lane = static_cast<int>(i %
                static_cast<std::uint64_t>(warpSize_));
            const std::uint64_t cur = toBits(data[lo + i]);
            const Residual r = residualOf(cur, prev_lane[lane]);
            prev_lane[lane] = cur;
            total += static_cast<std::uint64_t>(
                8 - leadingZeroBytes(r.magnitude));
        }
    }
    return total;
}

} // namespace qgpu
