#include "compress/gfc.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <type_traits>

#include "common/bits.hh"
#include "common/cacheinfo.hh"
#include "common/logging.hh"
#include "common/parallel.hh"

namespace qgpu
{

namespace
{

/**
 * The codec runs in two lane widths: the classic GFC stream of
 * 64-bit doubles, and an fp32 lane (for Precision::f32 chunks) where
 * every element is a 32-bit float. The structure is identical — only
 * the word width changes — so the helpers are templated on the
 * floating type. @c WordOf maps it to the raw-bit integer.
 */
template <typename Fp>
struct WordOf;

template <>
struct WordOf<double>
{
    using type = std::uint64_t;
};

template <>
struct WordOf<float>
{
    using type = std::uint32_t;
};

template <typename Fp>
using Word = typename WordOf<Fp>::type;

/** Bit-pattern of a floating value as an unsigned integer. */
template <typename Fp>
Word<Fp>
toBits(Fp v)
{
    return std::bit_cast<Word<Fp>>(v);
}

template <typename Fp>
Fp
fromBits(Word<Fp> bits)
{
    return std::bit_cast<Fp>(bits);
}

/**
 * Leading-zero bytes of a magnitude, capped at sizeof(word) - 1 so a
 * zero residual still emits one payload byte (the 3-bit nibble field
 * holds up to 7, which also covers the fp32 cap of 3).
 */
template <typename W>
int
leadingZeroBytes(W mag)
{
    const int lz_bits = std::countl_zero(mag);
    return std::min(lz_bits / 8, static_cast<int>(sizeof(W)) - 1);
}

template <typename W>
struct Residual
{
    bool negative;
    W magnitude;
};

/**
 * Residual between bit patterns, computed modulo 2^width so that
 * reconstruction (prev + signed residual) is exact for every input.
 */
template <typename W>
Residual<W>
residualOf(W cur, W prev)
{
    const W diff = static_cast<W>(cur - prev); // mod 2^width
    if (diff > static_cast<W>(W{1} << (8 * sizeof(W) - 1)))
        return {true, static_cast<W>(~diff + 1)}; // -diff mod 2^width
    return {false, diff};
}

/**
 * The encode-side residual of element @p i of a segment. Lane j of
 * micro-chunk k chains to lane j of micro-chunk k-1, i.e. element
 * i - warp: the residual is a pure function of two inputs, which is
 * what makes the codec parallel over element ranges.
 */
template <typename Fp>
Residual<Word<Fp>>
elementResidual(const Fp *seg, std::uint64_t i, int warp)
{
    const Word<Fp> cur = toBits(seg[i]);
    const Word<Fp> prev =
        i >= static_cast<std::uint64_t>(warp)
            ? toBits(seg[i - static_cast<std::uint64_t>(warp)])
            : Word<Fp>{0};
    return residualOf(cur, prev);
}

/** Payload bytes of elements [lo, hi) of a segment. */
template <typename Fp>
std::uint64_t
payloadBytesRange(const Fp *seg, std::uint64_t lo, std::uint64_t hi,
                  int warp)
{
    std::uint64_t total = 0;
    for (std::uint64_t i = lo; i < hi; ++i) {
        const auto r = elementResidual(seg, i, warp);
        total += static_cast<std::uint64_t>(
            static_cast<int>(sizeof(Word<Fp>)) -
            leadingZeroBytes(r.magnitude));
    }
    return total;
}

/**
 * Minimum elements per concurrent codec range, derived from the L1d
 * size (common/cacheinfo.hh) so each range's working set stays
 * cache-resident; env-overridable via QGPU_L1D_BYTES.
 */
std::uint64_t
codecGrain()
{
    static const std::uint64_t grain =
        static_cast<std::uint64_t>(codecGrainWords());
    return grain;
}

/**
 * Split [0, m) into at most @p threads ranges on even element
 * boundaries (two elements share a nibble byte, so an even split
 * keeps every output byte owned by exactly one range).
 */
std::vector<std::pair<std::uint64_t, std::uint64_t>>
evenRanges(std::uint64_t m, int threads)
{
    const std::uint64_t want =
        std::max<std::uint64_t>(1, m / codecGrain());
    const int parts = static_cast<int>(std::min<std::uint64_t>(
        threads < 1 ? 1 : threads, want));
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
    ranges.reserve(parts);
    std::uint64_t lo = 0;
    for (int r = 0; r < parts; ++r) {
        std::uint64_t hi =
            r + 1 == parts
                ? m
                : (m * static_cast<std::uint64_t>(r + 1) /
                   static_cast<std::uint64_t>(parts)) &
                      ~std::uint64_t{1};
        hi = std::max(hi, lo);
        ranges.emplace_back(lo, hi);
        lo = hi;
    }
    ranges.back().second = m;
    return ranges;
}

/**
 * Encode elements [lo, hi) of a segment: nibbles into the shared
 * nibble area (disjoint bytes per even-aligned range), payload bytes
 * starting at @p payload.
 */
template <typename Fp>
void
encodeRange(const Fp *seg, std::uint64_t lo, std::uint64_t hi,
            int warp, std::uint8_t *nib_area, std::uint8_t *payload)
{
    for (std::uint64_t i = lo; i < hi; ++i) {
        const auto r = elementResidual(seg, i, warp);
        const int lzb = leadingZeroBytes(r.magnitude);
        const std::uint8_t nib =
            static_cast<std::uint8_t>((r.negative ? 8 : 0) | lzb);
        if (i % 2 == 0)
            nib_area[i / 2] = nib;
        else
            nib_area[i / 2] |= static_cast<std::uint8_t>(nib << 4);

        const int bytes = static_cast<int>(sizeof(Word<Fp>)) - lzb;
        for (int b = 0; b < bytes; ++b)
            *payload++ =
                static_cast<std::uint8_t>(r.magnitude >> (8 * b));
    }
}

/**
 * Encode one whole segment of @p m words into @p dst (layout:
 * (m+1)/2 nibble bytes, then payload). @p dst must hold exactly the
 * segment's compressed size; @p threads > 1 fans element ranges out
 * across the pool with output bit-identical to the serial order.
 */
template <typename Fp>
void
encodeSegment(const Fp *seg, std::uint64_t m, int warp, int threads,
              std::uint8_t *dst)
{
    const std::uint64_t nib_len = (m + 1) / 2;
    const auto ranges = evenRanges(m, threads);
    if (ranges.size() == 1) {
        encodeRange(seg, 0, m, warp, dst, dst + nib_len);
        return;
    }
    // Pass 1: payload size of each range; prefix-sum the offsets.
    std::vector<std::uint64_t> offset(ranges.size() + 1, 0);
    parallelFor(
        0, ranges.size(), threads,
        [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t r = lo; r < hi; ++r)
                offset[r + 1] = payloadBytesRange(
                    seg, ranges[r].first, ranges[r].second, warp);
        },
        1);
    for (std::size_t r = 1; r <= ranges.size(); ++r)
        offset[r] += offset[r - 1];
    // Pass 2: each range encodes into its own slice.
    parallelFor(
        0, ranges.size(), threads,
        [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t r = lo; r < hi; ++r)
                encodeRange(seg, ranges[r].first, ranges[r].second,
                            warp, dst, dst + nib_len + offset[r]);
        },
        1);
}

/** Nibble of element @p i read back from the nibble area. */
std::uint8_t
nibbleAt(const std::uint8_t *nib_area, std::uint64_t i)
{
    const std::uint8_t packed = nib_area[i / 2];
    return i % 2 == 0 ? (packed & 0x0f)
                      : static_cast<std::uint8_t>(packed >> 4);
}

/**
 * Decode one segment of @p m words from @p src (sized @p seg_bytes,
 * validated against the nibble-derived layout) into @p out.
 *
 * The parallel path reconstructs each lane's running value with a
 * prefix combine: residual addends are mod-2^width integers, so
 * partial per-range, per-lane sums compose exactly, and every range
 * can decode independently from its combined lane start state.
 */
template <typename Fp>
void
decodeSegment(const std::uint8_t *src, std::uint64_t seg_bytes,
              std::uint64_t m, int warp, int threads, Fp *out)
{
    using W = Word<Fp>;
    constexpr int word_bytes = static_cast<int>(sizeof(W));
    const std::uint64_t nib_len = (m + 1) / 2;
    if (seg_bytes < nib_len)
        QGPU_PANIC("GFC segment of ", m, " words shorter (",
                   seg_bytes, " bytes) than its nibble area");
    const std::uint8_t *payload_area = src + nib_len;
    const std::uint64_t payload_len = seg_bytes - nib_len;

    const auto ranges = evenRanges(m, threads);
    const std::size_t num_ranges = ranges.size();
    const std::uint64_t uwarp = static_cast<std::uint64_t>(warp);

    // Payload offset of each range, from the nibble area alone.
    std::vector<std::uint64_t> offset(num_ranges + 1, 0);
    parallelFor(
        0, num_ranges, threads,
        [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t r = lo; r < hi; ++r) {
                std::uint64_t total = 0;
                for (std::uint64_t i = ranges[r].first;
                     i < ranges[r].second; ++i)
                    total += static_cast<std::uint64_t>(
                        word_bytes - (nibbleAt(src, i) & 0x7));
                offset[r + 1] = total;
            }
        },
        1);
    for (std::size_t r = 1; r <= num_ranges; ++r)
        offset[r] += offset[r - 1];
    if (offset[num_ranges] != payload_len)
        QGPU_PANIC("GFC segment nibbles imply ", offset[num_ranges],
                   " payload bytes, header says ", payload_len);

    // Pass 2: decode each range's signed residual addends (stashed
    // in out as raw bit patterns) and its per-lane addend sums.
    std::vector<W> lane_sums(
        num_ranges * static_cast<std::size_t>(warp), 0);
    parallelFor(
        0, num_ranges, threads,
        [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t r = lo; r < hi; ++r) {
                const std::uint8_t *payload =
                    payload_area + offset[r];
                W *lanes = lane_sums.data() +
                           r * static_cast<std::uint64_t>(warp);
                for (std::uint64_t i = ranges[r].first;
                     i < ranges[r].second; ++i) {
                    const std::uint8_t nib = nibbleAt(src, i);
                    const int bytes = word_bytes - (nib & 0x7);
                    W mag = 0;
                    for (int b = 0; b < bytes; ++b)
                        mag |= static_cast<W>(*payload++) << (8 * b);
                    const W addend = (nib & 0x8)
                                         ? static_cast<W>(~mag + 1)
                                         : mag; // mod 2^width
                    lanes[i % uwarp] += addend;
                    out[i] = fromBits<Fp>(addend);
                }
            }
        },
        1);

    // Serial combine: lane start states per range.
    std::vector<W> lane_base(lane_sums.size(), 0);
    for (std::size_t r = 1; r < num_ranges; ++r)
        for (int l = 0; l < warp; ++l)
            lane_base[r * static_cast<std::size_t>(warp) + l] =
                lane_base[(r - 1) * static_cast<std::size_t>(warp) +
                          l] +
                lane_sums[(r - 1) * static_cast<std::size_t>(warp) +
                          l];

    // Pass 3: turn addends into values from each lane's start state.
    parallelFor(
        0, num_ranges, threads,
        [&](std::uint64_t lo, std::uint64_t hi) {
            std::vector<W> lane(static_cast<std::size_t>(warp));
            for (std::uint64_t r = lo; r < hi; ++r) {
                std::copy_n(lane_base.data() +
                                r * static_cast<std::uint64_t>(warp),
                            warp, lane.begin());
                for (std::uint64_t i = ranges[r].first;
                     i < ranges[r].second; ++i) {
                    W &v = lane[i % uwarp];
                    v += toBits(out[i]); // addend, mod 2^width
                    out[i] = fromBits<Fp>(v);
                }
            }
        },
        1);
}

void
putU32(std::uint8_t *dst, std::uint32_t v)
{
    for (int b = 0; b < 4; ++b)
        dst[b] = static_cast<std::uint8_t>(v >> (8 * b));
}

void
putU64(std::uint8_t *dst, std::uint64_t v)
{
    for (int b = 0; b < 8; ++b)
        dst[b] = static_cast<std::uint8_t>(v >> (8 * b));
}

std::uint64_t
headerBytesFor(std::uint64_t count, int segments)
{
    const std::uint64_t per =
        bits::ceilDiv(count, static_cast<std::uint64_t>(segments));
    const std::uint64_t num_segs =
        per == 0 ? 0 : bits::ceilDiv(count, per);
    return 8 + 4 + 4 * num_segs;
}

template <typename Fp>
void
compressIntoImpl(const Fp *data, std::uint64_t count, int warp,
                 int segments, CompressedBlock &block)
{
    block.numDoubles = count;
    block.f32 = std::is_same_v<Fp, float>;

    const std::uint64_t per =
        bits::ceilDiv(count, static_cast<std::uint64_t>(segments));
    const int num_segs =
        per == 0 ? 0 : static_cast<int>(bits::ceilDiv(count, per));
    const int threads = simThreads();

    // Pass 1: exact size of every segment, so the stream is written
    // in place (parallel across segments; a lone segment
    // parallelizes internally instead).
    std::vector<std::uint64_t> seg_bytes(num_segs, 0);
    const auto seg_span = [&](int s) {
        const std::uint64_t lo = static_cast<std::uint64_t>(s) * per;
        return std::pair<std::uint64_t, std::uint64_t>{
            lo, std::min(count, lo + per)};
    };
    const int outer = num_segs > 1 ? threads : 1;
    const int inner = num_segs > 1 ? 1 : threads;
    parallelFor(
        0, num_segs, outer,
        [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t s = lo; s < hi; ++s) {
                const auto [a, b] = seg_span(static_cast<int>(s));
                const std::uint64_t m = b - a;
                std::uint64_t payload = 0;
                if (inner > 1) {
                    std::atomic<std::uint64_t> sum{0};
                    parallelFor(
                        a, b, inner,
                        [&](std::uint64_t l, std::uint64_t h) {
                            sum.fetch_add(
                                payloadBytesRange(data, l, h, warp),
                                std::memory_order_relaxed);
                        },
                        codecGrain());
                    payload = sum.load();
                } else {
                    payload = payloadBytesRange(data + a,
                                                std::uint64_t{0}, m,
                                                warp);
                }
                seg_bytes[s] = (m + 1) / 2 + payload;
            }
        },
        1);

    const std::uint64_t header = headerBytesFor(count, segments);
    std::uint64_t total = header;
    for (int s = 0; s < num_segs; ++s)
        total += seg_bytes[s];
    auto &out = block.bytes;
    out.assign(total, 0);

    putU64(out.data(), count);
    putU32(out.data() + 8, static_cast<std::uint32_t>(num_segs));
    std::vector<std::uint64_t> seg_start(num_segs + 1, header);
    for (int s = 0; s < num_segs; ++s) {
        putU32(out.data() + 12 + static_cast<std::size_t>(s) * 4,
               static_cast<std::uint32_t>(seg_bytes[s]));
        seg_start[s + 1] = seg_start[s] + seg_bytes[s];
    }

    // Pass 2: encode each segment into its slice.
    parallelFor(
        0, num_segs, outer,
        [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t s = lo; s < hi; ++s) {
                const auto [a, b] = seg_span(static_cast<int>(s));
                encodeSegment(data + a, b - a, warp, inner,
                              out.data() + seg_start[s]);
            }
        },
        1);
}

template <typename Fp>
CompressedBlock
compressImpl(const Fp *data, std::uint64_t count, int warp,
             int segments)
{
    CompressedBlock block;
    compressIntoImpl(data, count, warp, segments, block);
    return block;
}

template <typename Fp>
void
decompressImpl(const CompressedBlock &block, Fp *out, int warp,
               int segments)
{
    const auto &in = block.bytes;
    std::size_t pos = 0;
    auto get_u32 = [&in, &pos]() {
        std::uint32_t v = 0;
        for (int b = 0; b < 4; ++b)
            v |= static_cast<std::uint32_t>(in.at(pos++)) << (8 * b);
        return v;
    };
    auto get_u64 = [&in, &pos]() {
        std::uint64_t v = 0;
        for (int b = 0; b < 8; ++b)
            v |= static_cast<std::uint64_t>(in.at(pos++)) << (8 * b);
        return v;
    };

    const std::uint64_t count = get_u64();
    if (count != block.numDoubles)
        QGPU_PANIC("GFC stream count ", count, " != block count ",
                   block.numDoubles);
    const std::uint32_t num_segs = get_u32();
    std::vector<std::uint32_t> seg_len(num_segs);
    for (auto &len : seg_len)
        len = get_u32();

    const std::uint64_t per =
        bits::ceilDiv(count, static_cast<std::uint64_t>(segments));
    std::vector<std::uint64_t> seg_start(num_segs + 1, pos);
    for (std::uint32_t s = 0; s < num_segs; ++s)
        seg_start[s + 1] = seg_start[s] + seg_len[s];
    if (num_segs > 0 && seg_start[num_segs] > in.size())
        QGPU_PANIC("GFC stream truncated: segments need ",
                   seg_start[num_segs], " bytes, have ", in.size());

    const int threads = simThreads();
    const int outer = num_segs > 1 ? threads : 1;
    const int inner = num_segs > 1 ? 1 : threads;
    parallelFor(
        0, num_segs, outer,
        [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t s = lo; s < hi; ++s) {
                const std::uint64_t a =
                    static_cast<std::uint64_t>(s) * per;
                const std::uint64_t b = std::min(count, a + per);
                decodeSegment(in.data() + seg_start[s], seg_len[s],
                              b - a, warp, inner, out + a);
            }
        },
        1);
}

template <typename Fp>
std::uint64_t
compressedSizeImpl(const Fp *data, std::uint64_t count, int warp,
                   int segments)
{
    const std::uint64_t per =
        bits::ceilDiv(count, static_cast<std::uint64_t>(segments));
    const int num_segs =
        per == 0 ? 0 : static_cast<int>(bits::ceilDiv(count, per));

    // Residuals are pure functions of (element, element - warp), and
    // byte counts add associatively, so the size splits freely over
    // the pool regardless of segment boundaries.
    std::atomic<std::uint64_t> payload{0};
    const int threads = simThreads();
    parallelFor(
        0, num_segs, num_segs > 1 ? threads : 1,
        [&](std::uint64_t s_lo, std::uint64_t s_hi) {
            for (std::uint64_t s = s_lo; s < s_hi; ++s) {
                const std::uint64_t a =
                    static_cast<std::uint64_t>(s) * per;
                const std::uint64_t b = std::min(count, a + per);
                if (num_segs > 1) {
                    payload.fetch_add(
                        payloadBytesRange(data + a, std::uint64_t{0},
                                          b - a, warp),
                        std::memory_order_relaxed);
                } else {
                    parallelFor(
                        a, b, threads,
                        [&](std::uint64_t l, std::uint64_t h) {
                            payload.fetch_add(
                                payloadBytesRange(data, l, h, warp),
                                std::memory_order_relaxed);
                        },
                        codecGrain());
                }
            }
        },
        1);

    std::uint64_t total = 8 + 4 + 4ull * num_segs;
    for (int s = 0; s < num_segs; ++s) {
        const std::uint64_t lo = static_cast<std::uint64_t>(s) * per;
        const std::uint64_t hi = std::min(count, lo + per);
        total += (hi - lo + 1) / 2; // nibbles
    }
    return total + payload.load();
}

} // namespace

GfcCodec::GfcCodec(int warp_size, int segments)
    : warpSize_(warp_size), segments_(segments)
{
    if (warp_size < 1 || segments < 1)
        QGPU_FATAL("invalid GFC configuration: warp ", warp_size,
                   ", segments ", segments);
}

CompressedBlock
GfcCodec::compress(const double *data, std::uint64_t count) const
{
    return compressImpl(data, count, warpSize_, segments_);
}

CompressedBlock
GfcCodec::compressAmps(const Amp *data, std::uint64_t count) const
{
    static_assert(sizeof(Amp) == 2 * sizeof(double));
    return compress(reinterpret_cast<const double *>(data), 2 * count);
}

CompressedBlock
GfcCodec::compressF32(const float *data, std::uint64_t count) const
{
    return compressImpl(data, count, warpSize_, segments_);
}

CompressedBlock
GfcCodec::compressAmpsF32(const Amp *data, std::uint64_t count) const
{
    // Narrow the (already fp32-quantized) components into a float
    // scratch and compress that: the stream then models exactly what
    // an fp32-lane chunk ships over the wire.
    const double *raw = reinterpret_cast<const double *>(data);
    const std::uint64_t n = 2 * count;
    std::vector<float> narrow(n);
    parallelFor(
        0, n, simThreads(),
        [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t i = lo; i < hi; ++i)
                narrow[i] = static_cast<float>(raw[i]);
        },
        codecGrain());
    return compressF32(narrow.data(), n);
}

void
GfcCodec::compressInto(const double *data, std::uint64_t count,
                       CompressedBlock &out) const
{
    compressIntoImpl(data, count, warpSize_, segments_, out);
}

void
GfcCodec::compressAmpsInto(const Amp *data, std::uint64_t count,
                           CompressedBlock &out) const
{
    static_assert(sizeof(Amp) == 2 * sizeof(double));
    compressInto(reinterpret_cast<const double *>(data), 2 * count,
                 out);
}

void
GfcCodec::compressF32Into(const float *data, std::uint64_t count,
                          CompressedBlock &out) const
{
    compressIntoImpl(data, count, warpSize_, segments_, out);
}

void
GfcCodec::decompress(const CompressedBlock &block, double *out) const
{
    if (block.f32)
        QGPU_PANIC("f32-lane GFC block decompressed as f64");
    decompressImpl(block, out, warpSize_, segments_);
}

void
GfcCodec::decompressAmps(const CompressedBlock &block, Amp *out) const
{
    decompress(block, reinterpret_cast<double *>(out));
}

void
GfcCodec::decompressF32(const CompressedBlock &block, float *out) const
{
    if (!block.f32)
        QGPU_PANIC("f64 GFC block decompressed as f32 lane");
    decompressImpl(block, out, warpSize_, segments_);
}

void
GfcCodec::decompressAmpsF32(const CompressedBlock &block,
                            Amp *out) const
{
    std::vector<float> narrow(block.numDoubles);
    decompressF32(block, narrow.data());
    // Widening float -> double is exact, so the reconstructed Amp
    // components equal the quantized values that were compressed.
    double *raw = reinterpret_cast<double *>(out);
    parallelFor(
        0, block.numDoubles, simThreads(),
        [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t i = lo; i < hi; ++i)
                raw[i] = static_cast<double>(narrow[i]);
        },
        codecGrain());
}

std::uint64_t
GfcCodec::headerBytes(std::uint64_t count) const
{
    return headerBytesFor(count, segments_);
}

std::uint64_t
GfcCodec::compressedPayloadSize(const double *data,
                                std::uint64_t count) const
{
    return compressedSize(data, count) - headerBytes(count);
}

std::uint64_t
GfcCodec::compressedPayloadSizeF32(const float *data,
                                   std::uint64_t count) const
{
    return compressedSizeF32(data, count) - headerBytes(count);
}

std::uint64_t
GfcCodec::compressedSize(const double *data, std::uint64_t count) const
{
    return compressedSizeImpl(data, count, warpSize_, segments_);
}

std::uint64_t
GfcCodec::compressedSizeF32(const float *data,
                            std::uint64_t count) const
{
    return compressedSizeImpl(data, count, warpSize_, segments_);
}

std::vector<CompressedBlock>
compressBatch(const GfcCodec &codec,
              const std::vector<DoubleRun> &runs)
{
    std::vector<CompressedBlock> blocks(runs.size());
    parallelFor(
        0, runs.size(), simThreads(),
        [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t i = lo; i < hi; ++i)
                blocks[i] = codec.compress(runs[i].data,
                                           runs[i].count);
        },
        1);
    return blocks;
}

void
decompressBatch(
    const GfcCodec &codec,
    const std::vector<std::pair<const CompressedBlock *, double *>>
        &items)
{
    parallelFor(
        0, items.size(), simThreads(),
        [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t i = lo; i < hi; ++i)
                codec.decompress(*items[i].first, items[i].second);
        },
        1);
}

} // namespace qgpu
