/**
 * @file
 * GFC lossless floating-point compression (O'Neil & Burtscher, GPGPU
 * 2011), as adopted by Q-GPU for non-zero state amplitudes (§IV-D).
 *
 * Layout follows the paper's Fig. 11: a chunk is split into segments
 * (one per warp on the real GPU); each segment is processed in
 * micro-chunks of `warpSize` doubles. Lane j of micro-chunk k encodes
 * the residual against lane j of micro-chunk k-1 as a 4-bit prefix
 * (1 sign bit, 3 bits counting leading-zero bytes) plus the non-zero
 * magnitude bytes. Residuals are computed on the raw 64-bit patterns,
 * so the codec is lossless for every input including NaN payloads.
 *
 * Host parallelism: when simThreads() > 1 every entry point fans work
 * across the shared thread pool with output (and reconstruction)
 * bit-identical to the serial path. Multi-segment blocks parallelize
 * over segments; a single segment parallelizes internally — encoding
 * residuals are pure functions of (element, element - warpSize), and
 * decoding splits because residual addition is associative mod 2^64,
 * so per-range per-lane partial sums compose exactly. compressBatch /
 * decompressBatch additionally fan independent blocks out together.
 */

#ifndef QGPU_COMPRESS_GFC_HH
#define QGPU_COMPRESS_GFC_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace qgpu
{

/**
 * A compressed run of floating-point words. Classic GFC streams hold
 * doubles; fp32-lane streams (see GfcCodec::compressF32) hold floats
 * and set @c f32. @c numDoubles counts words of the stream's lane
 * width (the name predates the fp32 lane).
 */
struct CompressedBlock
{
    std::vector<std::uint8_t> bytes;
    std::uint64_t numDoubles = 0;
    /** True when the stream's words are fp32 lanes. */
    bool f32 = false;

    std::uint64_t compressedBytes() const { return bytes.size(); }
    std::uint64_t
    originalBytes() const
    {
        return numDoubles * (f32 ? sizeof(float) : sizeof(double));
    }
    /** original/compressed; > 1 means the data shrank. */
    double
    ratio() const
    {
        return bytes.empty()
                   ? 1.0
                   : static_cast<double>(originalBytes()) /
                         static_cast<double>(compressedBytes());
    }
};

/**
 * The GFC codec. Stateless apart from configuration; safe to share.
 */
class GfcCodec
{
  public:
    /**
     * @param warp_size lanes per micro-chunk (32 on NVIDIA hardware).
     * @param segments segments per block; on the GPU each is an
     *        independent warp's work item.
     */
    explicit GfcCodec(int warp_size = 32, int segments = 32);

    int warpSize() const { return warpSize_; }
    int segments() const { return segments_; }

    /** Compress @p count doubles. */
    CompressedBlock compress(const double *data,
                             std::uint64_t count) const;

    /** Compress the raw doubles of an amplitude array. */
    CompressedBlock compressAmps(const Amp *data,
                                 std::uint64_t count) const;

    /**
     * Decompress into @p out, which must hold block.numDoubles
     * doubles. Panics on a corrupt stream.
     */
    void decompress(const CompressedBlock &block, double *out) const;

    /** Decompress into an amplitude array of numDoubles/2 entries. */
    void decompressAmps(const CompressedBlock &block, Amp *out) const;

    /**
     * Compress @p count floats in the fp32 lane: the same stream
     * layout with 32-bit words (2-bit-effective leading-zero-byte
     * counts, residuals mod 2^32). Lossless for every float input
     * including NaN payloads; serial/parallel byte-identity holds
     * exactly as in the f64 lane.
     */
    CompressedBlock compressF32(const float *data,
                                std::uint64_t count) const;

    /**
     * Compress an fp32-lane amplitude chunk: each (already
     * fp32-quantized, see quantizeAmpF32) component is narrowed to
     * float and compressed in the fp32 lane — exactly the bytes a
     * Precision::f32 chunk ships.
     */
    CompressedBlock compressAmpsF32(const Amp *data,
                                    std::uint64_t count) const;

    /**
     * In-place variant of compress: encode into @p out, reusing its
     * byte buffer's capacity. The repeated store/evict cycles of the
     * compressed-resident chunk storage lean on this to avoid a fresh
     * stream allocation per eviction.
     */
    void compressInto(const double *data, std::uint64_t count,
                      CompressedBlock &out) const;

    /** In-place variant of compressAmps. */
    void compressAmpsInto(const Amp *data, std::uint64_t count,
                          CompressedBlock &out) const;

    /** In-place variant of compressF32. */
    void compressF32Into(const float *data, std::uint64_t count,
                         CompressedBlock &out) const;

    /** Decompress an fp32-lane block into numDoubles floats. */
    void decompressF32(const CompressedBlock &block, float *out) const;

    /**
     * Decompress an fp32-lane block into numDoubles/2 amplitudes,
     * widening each component to double (exact, so the result equals
     * the quantized values that were compressed).
     */
    void decompressAmpsF32(const CompressedBlock &block,
                           Amp *out) const;

    /**
     * Size in bytes the block would compress to, without materializing
     * the stream (used when only the ratio is needed).
     */
    std::uint64_t compressedSize(const double *data,
                                 std::uint64_t count) const;

    /** compressedSize for an fp32-lane stream of @p count floats. */
    std::uint64_t compressedSizeF32(const float *data,
                                    std::uint64_t count) const;

    /** Fixed stream overhead (headers + segment table) for @p count
     *  doubles. compressedSize = headerBytes + payload. */
    std::uint64_t headerBytes(std::uint64_t count) const;

    /**
     * Payload-only compressed size (nibbles + residual bytes). This
     * is the asymptotic per-byte cost of the stream: on paper-scale
     * chunks (tens of MB) the headers are noise, so the engine's
     * ratio model uses this.
     */
    std::uint64_t compressedPayloadSize(const double *data,
                                        std::uint64_t count) const;

    /** compressedPayloadSize for an fp32-lane stream. */
    std::uint64_t compressedPayloadSizeF32(const float *data,
                                           std::uint64_t count) const;

  private:
    int warpSize_;
    int segments_;
};

/** One run of doubles handed to the batch APIs. */
struct DoubleRun
{
    const double *data;
    std::uint64_t count;
};

/**
 * Compress every run concurrently on the thread pool. Output blocks
 * are bit-identical to calling codec.compress on each run in order.
 */
std::vector<CompressedBlock>
compressBatch(const GfcCodec &codec,
              const std::vector<DoubleRun> &runs);

/**
 * Decompress every (block, destination) pair concurrently on the
 * thread pool. Destinations must not alias.
 */
void decompressBatch(
    const GfcCodec &codec,
    const std::vector<std::pair<const CompressedBlock *, double *>>
        &items);

} // namespace qgpu

#endif // QGPU_COMPRESS_GFC_HH
