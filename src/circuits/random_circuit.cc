#include "circuits/circuits.hh"

#include "common/rng.hh"

namespace qgpu
{
namespace circuits
{

/**
 * Unstructured seeded random circuit — the tenth registry family
 * ("random"). Unlike rqc/grqc, which follow the supremacy-circuit
 * layer structure, this family draws every gate independently from a
 * palette spanning all gate kinds the simulator supports (diagonal,
 * permutation, controlled, dense, one- to three-qubit, parameterized),
 * on uniformly random distinct qubits. That makes it the workload of
 * choice for differential fuzzing: a seed sweep exercises every kernel
 * kind, chunk-crossing pattern, and involvement profile without any
 * family-specific bias, and the same seed always reproduces the same
 * gate stream.
 */
Circuit
randomFamily(int num_qubits, int num_gates, std::uint64_t seed)
{
    if (num_gates <= 0)
        num_gates = 6 * num_qubits;
    Circuit c(num_qubits,
              "random_" + std::to_string(num_qubits));
    Rng rng(seed);

    const auto angle = [&] {
        return rng.nextDouble() * 6.283185307179586 -
               3.141592653589793;
    };
    // Distinct random qubits for multi-qubit gates.
    int q0 = 0, q1 = 0, q2 = 0;
    const auto draw2 = [&] {
        q0 = static_cast<int>(rng.nextBelow(num_qubits));
        do {
            q1 = static_cast<int>(rng.nextBelow(num_qubits));
        } while (q1 == q0);
    };
    const auto draw3 = [&] {
        draw2();
        do {
            q2 = static_cast<int>(rng.nextBelow(num_qubits));
        } while (q2 == q0 || q2 == q1);
    };

    for (int g = 0; g < num_gates; ++g) {
        // Three-qubit gates need a register to match; fall through to
        // the one-qubit palette on tiny registers.
        const bool has2 = num_qubits >= 2;
        const bool has3 = num_qubits >= 3;
        const std::uint64_t kind = rng.nextBelow(24);
        q0 = static_cast<int>(rng.nextBelow(num_qubits));
        switch (kind) {
          case 0: c.h(q0); break;
          case 1: c.x(q0); break;
          case 2: c.y(q0); break;
          case 3: c.z(q0); break;
          case 4: c.s(q0); break;
          case 5: c.sdg(q0); break;
          case 6: c.t(q0); break;
          case 7: c.tdg(q0); break;
          case 8: c.sx(q0); break;
          case 9: c.sy(q0); break;
          case 10: c.rx(angle(), q0); break;
          case 11: c.ry(angle(), q0); break;
          case 12: c.rz(angle(), q0); break;
          case 13: c.p(angle(), q0); break;
          case 14: c.u(angle(), angle(), angle(), q0); break;
          case 15:
            if (has2) { draw2(); c.cx(q0, q1); } else c.h(q0);
            break;
          case 16:
            if (has2) { draw2(); c.cy(q0, q1); } else c.x(q0);
            break;
          case 17:
            if (has2) { draw2(); c.cz(q0, q1); } else c.z(q0);
            break;
          case 18:
            if (has2) { draw2(); c.cp(angle(), q0, q1); }
            else c.p(angle(), q0);
            break;
          case 19:
            if (has2) { draw2(); c.crz(angle(), q0, q1); }
            else c.rz(angle(), q0);
            break;
          case 20:
            if (has2) { draw2(); c.rzz(angle(), q0, q1); }
            else c.rz(angle(), q0);
            break;
          case 21:
            if (has2) { draw2(); c.swap(q0, q1); } else c.sx(q0);
            break;
          case 22:
            if (has3) { draw3(); c.ccx(q0, q1, q2); }
            else c.t(q0);
            break;
          default:
            if (has3) { draw3(); c.ccz(q0, q1, q2); }
            else c.s(q0);
            break;
        }
    }
    return c;
}

} // namespace circuits
} // namespace qgpu
