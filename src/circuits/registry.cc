#include "circuits/circuits.hh"

#include "common/logging.hh"

namespace qgpu
{
namespace circuits
{

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "hchain", "rqc", "qaoa", "gs",     "hlf",
        "qft",    "iqp", "qf",   "bv",     "random",
    };
    return names;
}

Circuit
makeBenchmark(const std::string &family, int num_qubits,
              std::uint64_t seed)
{
    // A zero seed selects each family's default, so the standard
    // benchmark instances are stable across the test and bench suite.
    if (family == "hchain")
        return hchain(num_qubits, 10, seed ? seed : 1);
    if (family == "rqc")
        return rqc(num_qubits, 6, seed ? seed : 2);
    if (family == "grqc")
        return grqc(num_qubits, 160, seed ? seed : 3);
    if (family == "qaoa")
        return qaoa(num_qubits, 4, seed ? seed : 4);
    if (family == "gs")
        return graphState(num_qubits, 0, seed ? seed : 5);
    if (family == "hlf")
        return hlf(num_qubits, seed ? seed : 6);
    if (family == "qft")
        return qft(num_qubits);
    if (family == "iqp")
        return iqp(num_qubits, 0.55, seed ? seed : 7);
    if (family == "qf")
        return quadraticForm(num_qubits, seed ? seed : 8);
    if (family == "bv")
        return bv(num_qubits, seed ? seed : 9);
    if (family == "random")
        return randomFamily(num_qubits, 0, seed ? seed : 10);
    QGPU_FATAL("unknown benchmark family '", family, "'");
}

} // namespace circuits
} // namespace qgpu
