#include "circuits/circuits.hh"

#include <numbers>

namespace qgpu
{
namespace circuits
{

Circuit
qft(int num_qubits, int approx_degree)
{
    Circuit c(num_qubits, "qft_" + std::to_string(num_qubits));
    const int degree =
        approx_degree <= 0 ? num_qubits : approx_degree;

    // Textbook QFT emitted in ascending target order: per target
    // qubit a Hadamard followed by controlled-phase rotations from
    // every higher qubit. The first block touches all qubits, giving
    // qft the early-involvement profile of the paper's Table II,
    // while the CP gates of later blocks are exactly the independent
    // work the reordering pass can pull forward (Fig. 9). An
    // approximation degree d drops rotations beyond distance d.
    for (int i = 0; i < num_qubits; ++i) {
        c.h(i);
        for (int j = i + 1; j < num_qubits && (j - i) <= degree;
             ++j) {
            const double angle =
                std::numbers::pi / static_cast<double>(1ull << (j - i));
            c.cp(angle, j, i);
        }
    }
    // Unlike the descending-target decomposition, this ascending form
    // already leaves the output in natural bit order: no bit-reversal
    // swap layer is needed (verified against the analytic DFT in
    // tests/test_state_vector.cc).
    return c;
}

} // namespace circuits
} // namespace qgpu
