#include "circuits/circuits.hh"

#include <numbers>
#include <utility>
#include <vector>

#include "common/rng.hh"

namespace qgpu
{
namespace circuits
{

namespace
{

/**
 * Random 3-regular-ish graph: a ring (guarantees connectivity) plus
 * one random chord per vertex, deduplicated.
 */
std::vector<std::pair<int, int>>
randomCubicGraph(int n, Rng &rng)
{
    std::vector<std::pair<int, int>> edges;
    auto has = [&](int a, int b) {
        for (const auto &[x, y] : edges)
            if ((x == a && y == b) || (x == b && y == a))
                return true;
        return false;
    };
    for (int v = 0; v < n; ++v)
        edges.emplace_back(v, (v + 1) % n);
    for (int v = 0; v < n; ++v) {
        const int w = static_cast<int>(rng.nextBelow(n));
        if (w != v && !has(v, w))
            edges.emplace_back(std::min(v, w), std::max(v, w));
    }
    return edges;
}

} // namespace

Circuit
qaoa(int num_qubits, int rounds, std::uint64_t seed)
{
    Circuit c(num_qubits, "qaoa_" + std::to_string(num_qubits));
    Rng rng(seed);
    const auto edges = randomCubicGraph(num_qubits, rng);

    // Uniform superposition: every qubit is involved immediately,
    // which is why pruning and reordering buy qaoa little (paper
    // Table II / Fig. 9); its savings come from compression instead.
    for (int q = 0; q < num_qubits; ++q)
        c.h(q);

    for (int r = 0; r < rounds; ++r) {
        // Small per-round angles, as in a standard linear-ramp QAOA
        // schedule. They keep the state near the uniform
        // superposition, which is what gives qaoa the near-zero
        // amplitude residuals (high compressibility) of Fig. 10.
        const double gamma = 0.08 * (r + 1); // cost angle
        const double beta = 0.10;            // mixer angle
        for (const auto &[a, b] : edges) {
            c.cx(a, b);
            c.rz(2 * gamma, b);
            c.cx(a, b);
        }
        for (int q = 0; q < num_qubits; ++q)
            c.rx(2 * beta, q);
    }
    return c;
}

} // namespace circuits
} // namespace qgpu
