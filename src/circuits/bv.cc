#include "circuits/circuits.hh"

#include "common/rng.hh"

namespace qgpu
{
namespace circuits
{

Circuit
bv(int num_qubits, std::uint64_t seed)
{
    Circuit c(num_qubits, "bv_" + std::to_string(num_qubits));
    Rng rng(seed);

    // Textbook Bernstein-Vazirani with the ancilla on the top qubit:
    // phase-kickback preparation, the opening H column (after which
    // every qubit is involved, ~1/3 into the circuit), the oracle's
    // CX pattern, and the closing H column.
    const int anc = num_qubits - 1;
    c.x(anc);
    c.h(anc);

    std::vector<bool> secret(num_qubits - 1);
    for (int q = 0; q < num_qubits - 1; ++q)
        secret[q] = rng.nextBool(0.75);

    for (int q = 0; q < num_qubits - 1; ++q)
        c.h(q);
    for (int q = 0; q < num_qubits - 1; ++q)
        if (secret[q])
            c.cx(q, anc);
    for (int q = 0; q < num_qubits - 1; ++q)
        c.h(q);
    c.h(anc);
    c.x(anc);
    return c;
}

} // namespace circuits
} // namespace qgpu
