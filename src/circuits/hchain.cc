#include "circuits/circuits.hh"

#include <numbers>

#include "common/rng.hh"

namespace qgpu
{
namespace circuits
{

Circuit
hchain(int num_qubits, int layers, std::uint64_t seed)
{
    Circuit c(num_qubits, "hchain_" + std::to_string(num_qubits));
    Rng rng(seed);

    // First-order Trotter step of a 1D chain Hamiltonian: on-site
    // terms (RZ + RX per qubit) followed by nearest-neighbour ZZ
    // interaction ladders (CX - RZ - CX). Angle magnitudes mimic a
    // small time step; exact values only shape amplitude content.
    for (int layer = 0; layer < layers; ++layer) {
        for (int q = 0; q < num_qubits; ++q) {
            c.rz(0.23 + 0.11 * rng.nextDouble(), q);
            c.rx(0.41 + 0.07 * rng.nextDouble(), q);
        }
        for (int q = 0; q + 1 < num_qubits; ++q) {
            c.cx(q, q + 1);
            c.rz(0.17 + 0.05 * rng.nextDouble(), q + 1);
            c.cx(q, q + 1);
        }
    }
    // Basis-change layer before measurement.
    for (int q = 0; q < num_qubits; ++q)
        c.ry(std::numbers::pi / 4, q);
    return c;
}

} // namespace circuits
} // namespace qgpu
