/**
 * @file
 * Generators for the nine benchmark circuit families of Table I, plus
 * the deep random circuits of Table III. Gate emission order matters:
 * it determines the qubit-involvement profile the pruning and
 * reordering optimizations exploit, so each generator emits gates in
 * the order the corresponding application naturally produces them.
 */

#ifndef QGPU_CIRCUITS_CIRCUITS_HH
#define QGPU_CIRCUITS_CIRCUITS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "qc/circuit.hh"

namespace qgpu
{
namespace circuits
{

/**
 * Linear hydrogen-atom chain: Trotterized evolution with per-layer
 * single-qubit rotations and a nearest-neighbour CX-RZ-CX ladder.
 * Long circuit, early entanglement.
 */
Circuit hchain(int num_qubits, int layers = 10,
               std::uint64_t seed = 1);

/**
 * Random quantum circuit following the Boixo et al. supremacy rules:
 * staggered CZ layers interleaved with random {sqrt(X), sqrt(Y), T}
 * single-qubit gates; Hadamards applied lazily at first qubit use.
 */
Circuit rqc(int num_qubits, int cycles = 6, std::uint64_t seed = 2);

/** Deep random circuit (Table III); same rules, many cycles. */
Circuit grqc(int num_qubits, int cycles = 160,
             std::uint64_t seed = 3);

/**
 * QAOA for MaxCut on a random 3-regular graph with @p rounds
 * gamma/beta rounds: initial H column, then per round a CX-RZ-CX block
 * per edge and an RX mixer per qubit.
 */
Circuit qaoa(int num_qubits, int rounds = 4, std::uint64_t seed = 4);

/**
 * Graph state preparation over a path graph plus @p chords random
 * extra edges: H per vertex, CZ per edge.
 */
Circuit graphState(int num_qubits, int chords = 0,
                   std::uint64_t seed = 5);

/**
 * 2D hidden linear function problem: H column, CZ over a random
 * subset of grid edges, S over a random vertex subset, H column.
 */
Circuit hlf(int num_qubits, std::uint64_t seed = 6);

/**
 * Quantum Fourier transform. @p approx_degree limits controlled-phase
 * range (0 = exact); the paper's circuit sizes match degree ~5.
 */
Circuit qft(int num_qubits, int approx_degree = 0);

/**
 * Instantaneous quantum polynomial-time circuit: a diagonal part of
 * T/CP gates emitted in ascending max-qubit order, then the H column.
 * Qubits become involved very late, maximizing pruning potential.
 */
Circuit iqp(int num_qubits, double density = 0.55,
            std::uint64_t seed = 7);

/**
 * Quadratic form on binary variables (Grover adaptive search): H
 * columns, controlled-phase encodings of the quadratic terms onto a
 * result register, inverse QFT on the result register.
 */
Circuit quadraticForm(int num_qubits, std::uint64_t seed = 8);

/** Bernstein-Vazirani with a random secret string. */
Circuit bv(int num_qubits, std::uint64_t seed = 9);

/**
 * Unstructured seeded random circuit: @p num_gates gates (0 = 6 per
 * qubit) drawn uniformly from the full supported gate palette on
 * random distinct qubits. Unlike rqc/grqc there is no layer
 * structure; the same seed always reproduces the same gate stream,
 * which makes this the workload for differential fuzzing.
 */
Circuit randomFamily(int num_qubits, int num_gates = 0,
                     std::uint64_t seed = 10);

/** Abbreviated family names in paper order. */
const std::vector<std::string> &benchmarkNames();

/**
 * Construct a benchmark by family name ("hchain", "rqc", "qaoa",
 * "gs", "hlf", "qft", "iqp", "qf", "bv", "random", "grqc") with default
 * parameters; the circuit is named "<family>_<n>". Fatal on unknown
 * names.
 */
Circuit makeBenchmark(const std::string &family, int num_qubits,
                      std::uint64_t seed = 0);

} // namespace circuits
} // namespace qgpu

#endif // QGPU_CIRCUITS_CIRCUITS_HH
