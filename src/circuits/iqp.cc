#include "circuits/circuits.hh"

#include <numbers>

#include "common/rng.hh"

namespace qgpu
{
namespace circuits
{

Circuit
iqp(int num_qubits, double density, std::uint64_t seed)
{
    Circuit c(num_qubits, "iqp_" + std::to_string(num_qubits));
    Rng rng(seed);

    // An IQP circuit is D * H^n with D diagonal. Because every CP in D
    // commutes with the Hadamards on *other* qubits, the circuit
    // factorizes into per-qubit blocks: H(q) followed by the diagonal
    // couplings of q to earlier qubits. Emitting it this way gives the
    // very late involvement profile the paper reports for iqp (~90% of
    // operations execute before all qubits are involved — the best
    // case for pruning) while still producing genuinely entangled,
    // dispersed amplitudes (Fig. 10).
    for (int q = 0; q < num_qubits; ++q) {
        c.h(q);
        // Diagonal single-qubit phase (a power of T).
        c.p(std::numbers::pi / 4 *
                static_cast<double>(1 + rng.nextBelow(7)),
            q);
        // Diagonal two-qubit couplings to earlier qubits.
        for (int j = 0; j < q; ++j) {
            if (rng.nextDouble() < density)
                c.cp(std::numbers::pi / 2 *
                         static_cast<double>(1 + rng.nextBelow(3)),
                     j, q);
        }
    }
    return c;
}

} // namespace circuits
} // namespace qgpu
