#include "circuits/circuits.hh"

#include <cmath>

#include "common/rng.hh"

namespace qgpu
{
namespace circuits
{

Circuit
hlf(int num_qubits, std::uint64_t seed)
{
    Circuit c(num_qubits, "hlf_" + std::to_string(num_qubits));
    Rng rng(seed);

    // 2D hidden linear function (Bravyi, Gosset, König): qubits on a
    // near-square grid; the instance is a random symmetric binary
    // matrix A supported on grid edges plus a random diagonal b.
    // Circuit: H column, CZ for every A_ij = 1, S for every b_i = 1,
    // H column.
    const int cols = std::max(
        1, static_cast<int>(std::lround(std::sqrt(num_qubits))));

    for (int q = 0; q < num_qubits; ++q)
        c.h(q);

    for (int q = 0; q < num_qubits; ++q) {
        const int right = q + 1;
        const int down = q + cols;
        // Keep row-internal right edges only.
        if (right < num_qubits && right % cols != 0 && rng.nextBool())
            c.cz(q, right);
        if (down < num_qubits && rng.nextBool())
            c.cz(q, down);
    }
    for (int q = 0; q < num_qubits; ++q)
        if (rng.nextBool())
            c.s(q);

    for (int q = 0; q < num_qubits; ++q)
        c.h(q);
    return c;
}

} // namespace circuits
} // namespace qgpu
