#include "circuits/circuits.hh"

#include <algorithm>

#include "common/rng.hh"

namespace qgpu
{
namespace circuits
{

namespace
{

/**
 * Shared generator for shallow (rqc) and deep (grqc) random circuits.
 *
 * Follows the structure of the Boixo et al. supremacy circuits mapped
 * to a line of qubits: cycles of staggered CZ gates interleaved with
 * random single-qubit gates from {sqrt(X), sqrt(Y), T} on the qubits
 * that participated in a CZ in the previous cycle. A Hadamard is
 * applied lazily the first time a qubit is used, so involvement grows
 * over the first cycles rather than in one opening column.
 */
Circuit
randomCircuit(const std::string &name, int num_qubits, int cycles,
              std::uint64_t seed)
{
    Circuit c(num_qubits, name);
    Rng rng(seed);

    std::vector<bool> used(num_qubits, false);
    std::vector<bool> in_prev_cz(num_qubits, false);

    auto touch = [&](int q) {
        if (!used[q]) {
            used[q] = true;
            c.h(q);
        }
    };

    for (int cycle = 0; cycle < cycles; ++cycle) {
        // Random single-qubit gates on qubits active last cycle.
        for (int q = 0; q < num_qubits; ++q) {
            if (!in_prev_cz[q])
                continue;
            switch (rng.nextBelow(3)) {
              case 0: c.sx(q); break;
              case 1: c.sy(q); break;
              default: c.t(q); break;
            }
        }
        // Staggered brickwork CZ layer over the whole chain; qubits
        // are Hadamard-prepared lazily on first use, so involvement
        // completes partway through the first cycles (the paper's
        // ~43% profile) rather than in an opening column. The dense
        // brickwork also keeps the dependency structure tight, which
        // is what limits reordering on rqc.
        std::fill(in_prev_cz.begin(), in_prev_cz.end(), false);
        // The first two cycles use the sparse stride-4 activation
        // pattern of the supremacy circuits, so full involvement is
        // reached roughly 40% into the circuit; later cycles are
        // dense brickwork.
        const int stride = cycle < 2 ? 4 : 2;
        const int offset = (cycle % 2) * (stride / 2);
        for (int q = offset; q + 1 < num_qubits; q += stride) {
            touch(q);
            touch(q + 1);
            c.cz(q, q + 1);
            in_prev_cz[q] = in_prev_cz[q + 1] = true;
        }
    }
    return c;
}

} // namespace

Circuit
rqc(int num_qubits, int cycles, std::uint64_t seed)
{
    return randomCircuit("rqc_" + std::to_string(num_qubits),
                         num_qubits, cycles, seed);
}

Circuit
grqc(int num_qubits, int cycles, std::uint64_t seed)
{
    return randomCircuit("grqc_" + std::to_string(num_qubits),
                         num_qubits, cycles, seed);
}

} // namespace circuits
} // namespace qgpu
