#include "circuits/circuits.hh"

#include <numbers>

#include "common/rng.hh"

namespace qgpu
{
namespace circuits
{

Circuit
quadraticForm(int num_qubits, std::uint64_t seed)
{
    Circuit c(num_qubits, "qf_" + std::to_string(num_qubits));
    Rng rng(seed);

    // Quadratic form evaluation (Gilliam et al., Grover adaptive
    // search): the register splits into binary variables x and a
    // result register r; Q(x) = sum A_ij x_i x_j + sum b_i x_i is
    // accumulated into r's phases with controlled-phase rotations,
    // then an inverse QFT turns the phases into the binary value.
    // Every qubit is involved by the opening H columns, so pruning
    // buys little, but the phase structure compresses well — exactly
    // the profile the paper reports for qf.
    const int result_bits = std::max(2, num_qubits / 4);
    const int vars = num_qubits - result_bits;
    const int r0 = vars; // result register starts here

    for (int q = 0; q < num_qubits; ++q)
        c.h(q);

    // Linear terms: b_i x_i rotated into each result bit.
    for (int i = 0; i < vars; ++i) {
        const double b = rng.nextRange(-2, 2);
        if (b == 0)
            continue;
        for (int k = 0; k < result_bits; ++k)
            c.cp(std::numbers::pi * b / static_cast<double>(1 << k),
                 i, r0 + k);
    }
    // Quadratic terms on a sparse random set of variable pairs,
    // compiled to CCZ-like phase chains (CP conjugated by CX). Two
    // candidate pairs per variable keeps the operation count near the
    // paper's ~6.5 gates per qubit.
    for (int rep = 0; rep < 2; ++rep) {
        for (int i = 0; i < vars; ++i) {
            const int j = static_cast<int>(rng.nextBelow(vars));
            if (j == i)
                continue;
            const double a = rng.nextRange(-1, 1);
            if (a == 0)
                continue;
            const int k =
                static_cast<int>(rng.nextBelow(result_bits));
            c.cx(i, j);
            c.cp(std::numbers::pi * a / static_cast<double>(1 << k),
                 j, r0 + k);
            c.cx(i, j);
        }
    }
    // Inverse QFT on the result register.
    for (int k = 0; k < result_bits; ++k) {
        for (int j = k - 1; j >= 0; --j)
            c.cp(-std::numbers::pi / static_cast<double>(1 << (k - j)),
                 r0 + j, r0 + k);
        c.h(r0 + k);
    }
    return c;
}

} // namespace circuits
} // namespace qgpu
