#include "circuits/circuits.hh"

#include <algorithm>

#include "common/rng.hh"

namespace qgpu
{
namespace circuits
{

Circuit
graphState(int num_qubits, int chords, std::uint64_t seed)
{
    Circuit c(num_qubits, "gs_" + std::to_string(num_qubits));
    Rng rng(seed);

    // H on every vertex, then CZ per edge of a path graph plus
    // optional random chords. Emitted in the textbook order (all H
    // first), which is exactly what the paper's Fig. 8 reordering
    // walk-through improves on.
    for (int q = 0; q < num_qubits; ++q)
        c.h(q);
    for (int q = 0; q + 1 < num_qubits; ++q)
        c.cz(q, q + 1);
    for (int e = 0; e < chords; ++e) {
        const int a = static_cast<int>(rng.nextBelow(num_qubits));
        const int b = static_cast<int>(rng.nextBelow(num_qubits));
        if (a != b)
            c.cz(std::min(a, b), std::max(a, b));
    }
    return c;
}

} // namespace circuits
} // namespace qgpu
