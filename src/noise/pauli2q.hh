/**
 * @file
 * Two-qubit Pauli channel: after every gate acting on two or more
 * qubits, the first two acted-on qubits suffer a uniformly-chosen
 * non-identity Pauli pair P⊗Q (15 branches) with total probability
 * p — the standard symmetric two-qubit depolarizing error attached
 * to entangling gates. The sampled pair materializes as up to two
 * 1-qubit Pauli gates (the identity factor of a pair like X⊗I is
 * dropped), keeping every inserted error a plain registry gate.
 */

#ifndef QGPU_NOISE_PAULI2Q_HH
#define QGPU_NOISE_PAULI2Q_HH

#include <vector>

#include "noise/channel.hh"

namespace qgpu
{
namespace noise
{

class Pauli2qChannel
{
  public:
    Pauli2qChannel() = default;

    void setProbability(double p) { p_ = p; }
    double probability() const { return p_; }
    bool enabled() const { return p_ > 0.0; }

    /**
     * Draw the error pair for a multi-qubit gate on (@p q0, @p q1).
     * One rng draw always; a second draw picks the pair only when
     * the error fires (the branch count is outcome-dependent, which
     * is fine: determinism needs a fixed draw ORDER, not a fixed
     * draw count).
     */
    void sample(int q0, int q1, std::size_t gate_index, Rng &rng,
                std::vector<NoiseEvent> &out) const;

  private:
    double p_ = 0.0;
};

} // namespace noise
} // namespace qgpu

#endif // QGPU_NOISE_PAULI2Q_HH
