#include "noise/model.hh"

#include <algorithm>
#include <cstdlib>

#include "common/json.hh"
#include "common/logging.hh"

namespace qgpu
{
namespace noise
{

NoiseModel &
NoiseModel::pauli1(PauliProbs p)
{
    pauli1_.setDefault(p);
    return *this;
}

NoiseModel &
NoiseModel::pauli1On(int q, PauliProbs p)
{
    pauli1_.setQubit(q, p);
    return *this;
}

NoiseModel &
NoiseModel::pauli2(double p)
{
    if (p < 0.0 || p > 1.0)
        QGPU_FATAL("pauli2 probability out of [0,1]: ", p);
    pauli2_.setProbability(p);
    return *this;
}

NoiseModel &
NoiseModel::damping(double gamma)
{
    damp_.setDefault(gamma);
    return *this;
}

NoiseModel &
NoiseModel::dampingOn(int q, double gamma)
{
    damp_.setQubit(q, gamma);
    return *this;
}

NoiseModel &
NoiseModel::readout(double p)
{
    readout_.setDefault(p);
    return *this;
}

NoiseModel &
NoiseModel::readoutOn(int q, double p)
{
    readout_.setQubit(q, p);
    return *this;
}

NoiseModel &
NoiseModel::idle(int q, PauliProbs p)
{
    idle_.setQubit(q, p);
    return *this;
}

bool
NoiseModel::gateNoiseArmed() const
{
    return pauli1_.enabled() || pauli2_.enabled() ||
           damp_.enabled() || idle_.enabled();
}

std::vector<NoiseEvent>
NoiseModel::sample(std::span<const Gate> gates, Rng &rng) const
{
    std::vector<NoiseEvent> events;
    if (!gateNoiseArmed())
        return events;
    const bool p1 = pauli1_.enabled();
    const bool p2 = pauli2_.enabled();
    const bool dmp = damp_.enabled();
    const bool idl = idle_.enabled();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const Gate &g = gates[i];
        if (p1 && g.numQubits() == 1)
            pauli1_.sample(g.qubits[0], i, rng, events);
        if (p2 && g.numQubits() >= 2)
            pauli2_.sample(g.qubits[0], g.qubits[1], i, rng, events);
        if (dmp)
            for (int q : g.qubits)
                damp_.sample(q, i, rng, events);
        if (idl)
            idle_.sample(i, rng, events);
    }
    return events;
}

Index
NoiseModel::sampleReadoutFlips(int num_qubits, Rng &rng) const
{
    if (!readout_.enabled())
        return 0;
    return readout_.sampleFlips(num_qubits, rng);
}

std::uint64_t
NoiseModel::touchableBits(const Gate &gate) const
{
    std::uint64_t mask = 0;
    if (gate.numQubits() == 1 && pauli1_.enabled() &&
        pauli1_.nonDiagonalOn(gate.qubits[0]))
        mask |= std::uint64_t{1} << gate.qubits[0];
    if (gate.numQubits() >= 2 && pauli2_.enabled()) {
        mask |= std::uint64_t{1} << gate.qubits[0];
        mask |= std::uint64_t{1} << gate.qubits[1];
    }
    if (damp_.enabled())
        for (int q : gate.qubits)
            if (damp_.nonDiagonalOn(q))
                mask |= std::uint64_t{1} << q;
    if (idle_.enabled())
        mask |= idle_.nonDiagonalBits();
    return mask;
}

namespace
{

// ---- spec-string parsing ------------------------------------------

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (;;) {
        const std::size_t at = text.find(sep, start);
        if (at == std::string::npos) {
            parts.push_back(text.substr(start));
            return parts;
        }
        parts.push_back(text.substr(start, at - start));
        start = at + 1;
    }
}

double
parseProb(const std::string &spec, const std::string &token)
{
    char *end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0' || v < 0.0 || v > 1.0)
        QGPU_FATAL("noise spec '", spec,
                   "': bad probability '", token, "'");
    return v;
}

// "p" -> depolarizing(p); "px:py:pz" (as the 1..3 value tokens).
PauliProbs
parseMixture(const std::string &spec,
             const std::vector<std::string> &values)
{
    if (values.size() == 1)
        return PauliProbs::depolarizing(parseProb(spec, values[0]));
    if (values.size() != 3)
        QGPU_FATAL("noise spec '", spec,
                   "': expected p or px:py:pz");
    PauliProbs p{parseProb(spec, values[0]),
                 parseProb(spec, values[1]),
                 parseProb(spec, values[2])};
    if (p.total() > 1.0)
        QGPU_FATAL("noise spec '", spec,
                   "': mixture probabilities sum over 1");
    return p;
}

NoiseModel
parseSpecString(const std::string &spec)
{
    NoiseModel model;
    for (const std::string &entry : splitOn(spec, ',')) {
        if (entry.empty())
            QGPU_FATAL("noise spec '", spec, "': empty entry");
        auto fields = splitOn(entry, ':');
        std::string name = fields[0];
        fields.erase(fields.begin());
        if (fields.empty())
            QGPU_FATAL("noise spec '", spec, "': entry '", entry,
                       "' has no value");
        int qubit = -1;
        const std::size_t at = name.find('@');
        if (at != std::string::npos) {
            char *end = nullptr;
            const long q =
                std::strtol(name.c_str() + at + 1, &end, 10);
            if (end == name.c_str() + at + 1 || *end != '\0' ||
                q < 0 || q > 63)
                QGPU_FATAL("noise spec '", spec,
                           "': bad qubit in '", entry, "'");
            qubit = static_cast<int>(q);
            name = name.substr(0, at);
        }
        if (name == "pauli1") {
            const PauliProbs p = parseMixture(spec, fields);
            if (qubit < 0)
                model.pauli1(p);
            else
                model.pauli1On(qubit, p);
        } else if (name == "pauli2") {
            if (qubit >= 0 || fields.size() != 1)
                QGPU_FATAL("noise spec '", spec,
                           "': pauli2 takes a single probability");
            model.pauli2(parseProb(spec, fields[0]));
        } else if (name == "damp") {
            if (fields.size() != 1)
                QGPU_FATAL("noise spec '", spec,
                           "': damp takes a single rate");
            const double g = parseProb(spec, fields[0]);
            if (qubit < 0)
                model.damping(g);
            else
                model.dampingOn(qubit, g);
        } else if (name == "readout") {
            if (fields.size() != 1)
                QGPU_FATAL("noise spec '", spec,
                           "': readout takes a single probability");
            const double p = parseProb(spec, fields[0]);
            if (qubit < 0)
                model.readout(p);
            else
                model.readoutOn(qubit, p);
        } else if (name == "idle") {
            if (qubit < 0)
                QGPU_FATAL("noise spec '", spec,
                           "': idle needs a qubit (idle@q:p)");
            model.idle(qubit, parseMixture(spec, fields));
        } else {
            QGPU_FATAL("noise spec '", spec,
                       "': unknown channel '", name, "'");
        }
    }
    return model;
}

// ---- JSON parsing -------------------------------------------------

PauliProbs
jsonMixture(const std::string &spec, const JsonValue &v)
{
    if (v.isNumber()) {
        const double p = v.asNumber();
        if (p < 0.0 || p > 1.0)
            QGPU_FATAL("noise spec '", spec,
                       "': probability out of [0,1]");
        return PauliProbs::depolarizing(p);
    }
    if (v.isArray() && v.asArray().size() == 3) {
        const auto &a = v.asArray();
        for (const JsonValue &e : a)
            if (!e.isNumber() || e.asNumber() < 0.0 ||
                e.asNumber() > 1.0)
                QGPU_FATAL("noise spec '", spec,
                           "': bad mixture element");
        PauliProbs p{a[0].asNumber(), a[1].asNumber(),
                     a[2].asNumber()};
        if (p.total() > 1.0)
            QGPU_FATAL("noise spec '", spec,
                       "': mixture probabilities sum over 1");
        return p;
    }
    QGPU_FATAL("noise spec '", spec,
               "': expected a probability or [px,py,pz]");
}

double
jsonProb(const std::string &spec, const JsonValue &v)
{
    if (!v.isNumber() || v.asNumber() < 0.0 || v.asNumber() > 1.0)
        QGPU_FATAL("noise spec '", spec,
                   "': expected a probability in [0,1]");
    return v.asNumber();
}

int
jsonQubit(const std::string &spec, const std::string &key)
{
    char *end = nullptr;
    const long q = std::strtol(key.c_str(), &end, 10);
    if (end == key.c_str() || *end != '\0' || q < 0 || q > 63)
        QGPU_FATAL("noise spec '", spec, "': bad qubit key '", key,
                   "'");
    return static_cast<int>(q);
}

// Walk a channel value that may be scalar (default) or an object of
// per-qubit entries with an optional "default" key.
template <typename DefaultFn, typename QubitFn>
void
jsonChannel(const std::string &spec, const JsonValue &v,
            bool allow_default, DefaultFn on_default,
            QubitFn on_qubit)
{
    if (!v.isObject()) {
        if (!allow_default)
            QGPU_FATAL("noise spec '", spec,
                       "': this channel needs per-qubit entries");
        on_default(v);
        return;
    }
    for (const auto &[key, value] : v.asObject()) {
        if (key == "default") {
            if (!allow_default)
                QGPU_FATAL("noise spec '", spec,
                           "': 'default' not allowed here");
            on_default(value);
        } else {
            on_qubit(jsonQubit(spec, key), value);
        }
    }
}

NoiseModel
parseJsonSpec(const std::string &spec)
{
    std::string err;
    const auto parsed = parseJson(spec, &err);
    if (!parsed || !parsed->isObject())
        QGPU_FATAL("noise spec is not a JSON object: ", err);
    NoiseModel model;
    for (const auto &[name, v] : parsed->asObject()) {
        if (name == "pauli1") {
            jsonChannel(
                spec, v, true,
                [&](const JsonValue &d) {
                    model.pauli1(jsonMixture(spec, d));
                },
                [&](int q, const JsonValue &d) {
                    model.pauli1On(q, jsonMixture(spec, d));
                });
        } else if (name == "pauli2") {
            model.pauli2(jsonProb(spec, v));
        } else if (name == "damp") {
            jsonChannel(
                spec, v, true,
                [&](const JsonValue &d) {
                    model.damping(jsonProb(spec, d));
                },
                [&](int q, const JsonValue &d) {
                    model.dampingOn(q, jsonProb(spec, d));
                });
        } else if (name == "readout") {
            jsonChannel(
                spec, v, true,
                [&](const JsonValue &d) {
                    model.readout(jsonProb(spec, d));
                },
                [&](int q, const JsonValue &d) {
                    model.readoutOn(q, jsonProb(spec, d));
                });
        } else if (name == "idle") {
            jsonChannel(
                spec, v, false, [&](const JsonValue &) {},
                [&](int q, const JsonValue &d) {
                    model.idle(q, jsonMixture(spec, d));
                });
        } else {
            QGPU_FATAL("noise spec: unknown channel '", name, "'");
        }
    }
    return model;
}

} // namespace

NoiseModel
NoiseModel::parse(const std::string &spec)
{
    if (spec.empty())
        return NoiseModel{};
    NoiseModel model = spec.front() == '{' ? parseJsonSpec(spec)
                                           : parseSpecString(spec);
    model.spec_ = spec;
    return model;
}

NoiseModel
NoiseModel::resolve(const std::string &option)
{
    if (option.empty() || option == "none")
        return NoiseModel{};
    if (option == "env") {
        const char *env = std::getenv("QGPU_NOISE_SPEC");
        return parse(env == nullptr ? "" : env);
    }
    return parse(option);
}

Circuit
expandCircuit(const Circuit &ordered,
              std::span<const NoiseEvent> events)
{
    Circuit out(ordered.numQubits(), ordered.name() + "+noise");
    std::size_t ev = 0;
    const auto &gates = ordered.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        out.add(gates[i]);
        while (ev < events.size() && events[ev].gateIndex == i) {
            out.add(events[ev].gate);
            ++ev;
        }
    }
    if (ev != events.size())
        QGPU_PANIC("noise events past the end of the circuit");
    return out;
}

} // namespace noise
} // namespace qgpu
