/**
 * @file
 * Measurement (readout) noise: each qubit's classical measurement
 * outcome flips with probability p, independently per shot. Readout
 * errors act on sampled OUTCOMES, not on the state — they are applied
 * after the end-of-circuit sample draw, so they never interact with
 * pruning or the sweep schedule.
 */

#ifndef QGPU_NOISE_READOUT_HH
#define QGPU_NOISE_READOUT_HH

#include <map>

#include "common/rng.hh"
#include "common/types.hh"

namespace qgpu
{
namespace noise
{

class ReadoutChannel
{
  public:
    ReadoutChannel() = default;

    void setDefault(double p);
    void setQubit(int q, double p);

    bool enabled() const;

    /** Effective flip probability for @p qubit. */
    double probFor(int qubit) const;

    /**
     * Draw the per-shot flip mask over @p num_qubits qubits. Draw
     * order: ascending qubit, one draw per qubit whose probability
     * is non-zero (disabled qubits consume no draw).
     */
    Index sampleFlips(int num_qubits, Rng &rng) const;

  private:
    double default_ = 0.0;
    std::map<int, double> overrides_;
};

} // namespace noise
} // namespace qgpu

#endif // QGPU_NOISE_READOUT_HH
