#include "noise/damping.hh"

#include <cmath>

#include "common/logging.hh"

namespace qgpu
{
namespace noise
{

PauliProbs
twirledDamping(double gamma)
{
    if (gamma < 0.0 || gamma > 1.0)
        QGPU_FATAL("damping rate out of [0,1]: ", gamma);
    const double s = std::sqrt(1.0 - gamma);
    PauliProbs p;
    p.px = gamma / 4.0;
    p.py = gamma / 4.0;
    p.pz = (1.0 - gamma / 2.0 - s) / 2.0;
    return p;
}

void
DampingChannel::setDefault(double gamma)
{
    default_ = twirledDamping(gamma);
}

void
DampingChannel::setQubit(int q, double gamma)
{
    overrides_[q] = twirledDamping(gamma);
}

bool
DampingChannel::enabled() const
{
    if (default_.enabled())
        return true;
    for (const auto &[q, p] : overrides_)
        if (p.enabled())
            return true;
    return false;
}

const PauliProbs &
DampingChannel::probsFor(int qubit) const
{
    const auto it = overrides_.find(qubit);
    return it == overrides_.end() ? default_ : it->second;
}

void
DampingChannel::sample(int qubit, std::size_t gate_index, Rng &rng,
                       std::vector<NoiseEvent> &out) const
{
    const PauliProbs &p = probsFor(qubit);
    if (!p.enabled())
        return;
    const int which = samplePauli1(p, rng);
    if (which != 0)
        out.push_back({gate_index, pauliGate(which, qubit)});
}

} // namespace noise
} // namespace qgpu
