#include "noise/pauli1q.hh"

namespace qgpu
{
namespace noise
{

const PauliProbs &
Pauli1qChannel::probsFor(int qubit) const
{
    const auto it = overrides_.find(qubit);
    return it == overrides_.end() ? default_ : it->second;
}

bool
Pauli1qChannel::enabled() const
{
    if (default_.enabled())
        return true;
    for (const auto &[q, p] : overrides_)
        if (p.enabled())
            return true;
    return false;
}

void
Pauli1qChannel::sample(int qubit, std::size_t gate_index, Rng &rng,
                       std::vector<NoiseEvent> &out) const
{
    const PauliProbs &p = probsFor(qubit);
    if (!p.enabled())
        return;
    const int which = samplePauli1(p, rng);
    if (which != 0)
        out.push_back({gate_index, pauliGate(which, qubit)});
}

} // namespace noise
} // namespace qgpu
