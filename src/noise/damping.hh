/**
 * @file
 * Amplitude damping, implemented as its Pauli twirl. The exact
 * damping channel is NOT a mixed-unitary channel — its jump
 * probability depends on the state — which would break every
 * tolerance-0 trajectory contract this subsystem is built on
 * (channel.hh). The twirled channel is the closest Pauli mixture:
 * conjugating the damping map by uniformly-random Paulis leaves the
 * Pauli transfer matrix diag(1, s, s, 1-γ) with s = sqrt(1-γ), which
 * is exactly the Pauli mixture
 *
 *     px = py = γ/4,     pz = (1 - γ/2 - sqrt(1-γ)) / 2,
 *
 * (pI carries the rest). It preserves the channel's fidelity decay
 * rates while staying unitary-mixture — the standard approximation
 * used by stochastic (trajectory) simulators for T1 noise.
 */

#ifndef QGPU_NOISE_DAMPING_HH
#define QGPU_NOISE_DAMPING_HH

#include <map>
#include <vector>

#include "noise/channel.hh"

namespace qgpu
{
namespace noise
{

/** The Pauli-twirl mixture of amplitude damping with rate @p gamma.
 *  Fatal unless 0 <= gamma <= 1. */
PauliProbs twirledDamping(double gamma);

/**
 * Gate-attached damping: after every gate, each acted-on qubit
 * suffers the twirled mixture for its configured γ.
 */
class DampingChannel
{
  public:
    DampingChannel() = default;

    void setDefault(double gamma);
    void setQubit(int q, double gamma);

    bool enabled() const;

    /** Effective mixture for @p qubit (override, else default). */
    const PauliProbs &probsFor(int qubit) const;

    bool nonDiagonalOn(int qubit) const
    {
        return probsFor(qubit).nonDiagonal();
    }

    /** One draw per call when @p qubit's mixture is enabled. */
    void sample(int qubit, std::size_t gate_index, Rng &rng,
                std::vector<NoiseEvent> &out) const;

  private:
    PauliProbs default_;
    std::map<int, PauliProbs> overrides_;
};

} // namespace noise
} // namespace qgpu

#endif // QGPU_NOISE_DAMPING_HH
