/**
 * @file
 * Idle (spectator) noise: configured qubits suffer a Pauli mixture
 * after EVERY executed gate, whether or not the gate touches them —
 * decoherence of qubits sitting idle while their neighbors are
 * driven. This is the channel that makes the noise × pruning
 * interaction unavoidable: a sampled X on a qubit no gate ever
 * touches must still invalidate the involvement mask, or the pruner
 * silently zeroes the error away (see engine/batched.hh and the
 * regression in tests/test_noise.cc).
 */

#ifndef QGPU_NOISE_IDLE_HH
#define QGPU_NOISE_IDLE_HH

#include <map>
#include <vector>

#include "noise/channel.hh"

namespace qgpu
{
namespace noise
{

class IdleChannel
{
  public:
    IdleChannel() = default;

    void setQubit(int q, PauliProbs p) { qubits_[q] = p; }

    bool enabled() const;

    const std::map<int, PauliProbs> &qubits() const
    {
        return qubits_;
    }

    /** Qubit-space mask of qubits that can suffer X/Y here. */
    std::uint64_t nonDiagonalBits() const;

    /**
     * Draw the idle errors fired by one executed gate. Draw order:
     * ascending qubit, one draw per configured (enabled) qubit.
     */
    void sample(std::size_t gate_index, Rng &rng,
                std::vector<NoiseEvent> &out) const;

  private:
    std::map<int, PauliProbs> qubits_;
};

} // namespace noise
} // namespace qgpu

#endif // QGPU_NOISE_IDLE_HH
