#include "noise/readout.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace qgpu
{
namespace noise
{

namespace
{

void
checkProb(double p)
{
    if (p < 0.0 || p > 1.0)
        QGPU_FATAL("readout flip probability out of [0,1]: ", p);
}

} // namespace

void
ReadoutChannel::setDefault(double p)
{
    checkProb(p);
    default_ = p;
}

void
ReadoutChannel::setQubit(int q, double p)
{
    checkProb(p);
    overrides_[q] = p;
}

bool
ReadoutChannel::enabled() const
{
    if (default_ > 0.0)
        return true;
    for (const auto &[q, p] : overrides_)
        if (p > 0.0)
            return true;
    return false;
}

double
ReadoutChannel::probFor(int qubit) const
{
    const auto it = overrides_.find(qubit);
    return it == overrides_.end() ? default_ : it->second;
}

Index
ReadoutChannel::sampleFlips(int num_qubits, Rng &rng) const
{
    Index mask = 0;
    for (int q = 0; q < num_qubits; ++q) {
        const double p = probFor(q);
        if (p > 0.0 && rng.nextBool(p))
            mask = bits::setBit(mask, q);
    }
    return mask;
}

} // namespace noise
} // namespace qgpu
