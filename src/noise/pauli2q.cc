#include "noise/pauli2q.hh"

namespace qgpu
{
namespace noise
{

void
Pauli2qChannel::sample(int q0, int q1, std::size_t gate_index,
                       Rng &rng, std::vector<NoiseEvent> &out) const
{
    if (!enabled())
        return;
    if (rng.nextDouble() >= p_)
        return;
    // Branch 1..15 encodes (P on q0, Q on q1) = (k & 3, k >> 2) over
    // {I, X, Y, Z}^2 minus I⊗I.
    const int k = static_cast<int>(rng.nextBelow(15)) + 1;
    const int a = k & 3;
    const int b = k >> 2;
    if (a != 0)
        out.push_back({gate_index, pauliGate(a, q0)});
    if (b != 0)
        out.push_back({gate_index, pauliGate(b, q1)});
}

} // namespace noise
} // namespace qgpu
