/**
 * @file
 * Single-qubit Pauli channel: after every 1-qubit gate, the acted-on
 * qubit suffers X / Y / Z with probabilities (px, py, pz). The
 * per-qubit override map lets a NoiseModel give individual qubits
 * their own error rates (calibration-style heterogeneous noise).
 */

#ifndef QGPU_NOISE_PAULI1Q_HH
#define QGPU_NOISE_PAULI1Q_HH

#include <map>
#include <vector>

#include "noise/channel.hh"

namespace qgpu
{
namespace noise
{

class Pauli1qChannel
{
  public:
    Pauli1qChannel() = default;

    void setDefault(PauliProbs p) { default_ = p; }
    void setQubit(int q, PauliProbs p) { overrides_[q] = p; }

    /** Effective mixture for @p qubit (override, else default). */
    const PauliProbs &probsFor(int qubit) const;

    /** Any qubit with a non-zero mixture? */
    bool enabled() const;

    /** Can this channel emit a non-diagonal error on @p qubit? */
    bool nonDiagonalOn(int qubit) const
    {
        return probsFor(qubit).nonDiagonal();
    }

    /**
     * Draw the error for a 1q gate on @p qubit (exactly one rng draw
     * when the qubit's mixture is enabled, zero otherwise) and append
     * the sampled gate, if any, to @p out.
     */
    void sample(int qubit, std::size_t gate_index, Rng &rng,
                std::vector<NoiseEvent> &out) const;

  private:
    PauliProbs default_;
    std::map<int, PauliProbs> overrides_;
};

} // namespace noise
} // namespace qgpu

#endif // QGPU_NOISE_PAULI1Q_HH
