#include "noise/idle.hh"

namespace qgpu
{
namespace noise
{

bool
IdleChannel::enabled() const
{
    for (const auto &[q, p] : qubits_)
        if (p.enabled())
            return true;
    return false;
}

std::uint64_t
IdleChannel::nonDiagonalBits() const
{
    std::uint64_t mask = 0;
    for (const auto &[q, p] : qubits_)
        if (p.nonDiagonal())
            mask |= std::uint64_t{1} << q;
    return mask;
}

void
IdleChannel::sample(std::size_t gate_index, Rng &rng,
                    std::vector<NoiseEvent> &out) const
{
    for (const auto &[q, p] : qubits_) {
        if (!p.enabled())
            continue;
        const int which = samplePauli1(p, rng);
        if (which != 0)
            out.push_back({gate_index, pauliGate(which, q)});
    }
}

} // namespace noise
} // namespace qgpu
