/**
 * @file
 * Shared vocabulary of the pluggable noise layer: sampled noise
 * events, Pauli mixture probabilities, and the tiny helpers every
 * channel source builds on.
 *
 * Every gate-attached channel in this subsystem is a *mixed-unitary*
 * channel: sampling draws a concrete error unitary (or nothing) with
 * state-INDEPENDENT probabilities. That restriction is what makes the
 * trajectory contracts hold at tolerance 0 — a shot is exactly the
 * ideal circuit with the sampled error gates materialized into it
 * (noise/model.hh, expandCircuit), so a batched shot, a per-shot
 * engine run of the expanded circuit, and a flat gate-by-gate replay
 * of the same expanded circuit are all bit-identical.
 *
 * Draw-path determinism (the fault-injector pattern,
 * fault/injector.hh): all sampling happens on the single-threaded
 * scheduling path from one seeded RNG in documented order, so a given
 * (model, seed, circuit) tuple inserts exactly the same error gates
 * on every run — across host thread counts, device counts, and chunk
 * storage backends.
 */

#ifndef QGPU_NOISE_CHANNEL_HH
#define QGPU_NOISE_CHANNEL_HH

#include <cstddef>
#include <cstdint>

#include "common/rng.hh"
#include "qc/gate.hh"

namespace qgpu
{
namespace noise
{

/**
 * Probabilities of the non-identity Pauli errors of a 1q mixture;
 * the identity branch carries the remaining 1 - px - py - pz.
 */
struct PauliProbs
{
    double px = 0.0;
    double py = 0.0;
    double pz = 0.0;

    double total() const { return px + py + pz; }

    /** True iff a sampled error can be non-diagonal (X or Y). */
    bool nonDiagonal() const { return px > 0.0 || py > 0.0; }

    bool enabled() const { return total() > 0.0; }

    /** Symmetric depolarizing split: px = py = pz = p/3. */
    static PauliProbs depolarizing(double p)
    {
        return {p / 3.0, p / 3.0, p / 3.0};
    }
};

/**
 * One sampled stochastic error: @p gate is inserted immediately
 * after gate @p gateIndex of the *executed* (post-reorder,
 * post-fusion) sequence. Events produced for the same gate index
 * apply in production order.
 */
struct NoiseEvent
{
    std::size_t gateIndex = 0;
    Gate gate;
};

/**
 * The Pauli error gate for mixture branch @p which on @p qubit:
 * 1 = X, 2 = Y, 3 = Z. @p which must be in [1, 3].
 */
Gate pauliGate(int which, int qubit);

/**
 * Draw from a 1q Pauli mixture with exactly one rng draw; returns
 * 0 (identity — no event) or the branch index 1..3 for pauliGate.
 * The draw happens even when the mixture is all-zero IF called, so
 * callers must gate calls on enabled() to keep the documented draw
 * order stable.
 */
int samplePauli1(const PauliProbs &p, Rng &rng);

} // namespace noise
} // namespace qgpu

#endif // QGPU_NOISE_CHANNEL_HH
