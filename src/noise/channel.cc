#include "noise/channel.hh"

#include "common/logging.hh"

namespace qgpu
{
namespace noise
{

Gate
pauliGate(int which, int qubit)
{
    switch (which) {
    case 1: return Gate(GateKind::X, {qubit});
    case 2: return Gate(GateKind::Y, {qubit});
    case 3: return Gate(GateKind::Z, {qubit});
    }
    QGPU_PANIC("pauliGate branch out of range: ", which);
}

int
samplePauli1(const PauliProbs &p, Rng &rng)
{
    const double u = rng.nextDouble();
    if (u < p.px)
        return 1;
    if (u < p.px + p.py)
        return 2;
    if (u < p.px + p.py + p.pz)
        return 3;
    return 0;
}

} // namespace noise
} // namespace qgpu
