/**
 * @file
 * NoiseModel: the builder composing the channel sources (pauli1q,
 * pauli2q, damping, idle, readout) per-gate / per-qubit, plus the
 * spec-string / JSON front end that `--noise-spec`, QGPU_NOISE_SPEC,
 * and the service layer share.
 *
 * Spec grammar (comma-separated entries, FaultSpec-style):
 *
 *   pauli1:p            symmetric depolarizing on 1q gates (px=py=pz=p/3)
 *   pauli1:px:py:pz     explicit mixture on 1q gates
 *   pauli1@q:...        per-qubit override (either value form)
 *   pauli2:p            uniform non-identity Pauli pair on >=2q gates
 *   damp:g              amplitude damping (Pauli twirl) on every
 *                       acted-on qubit;  damp@q:g  per-qubit
 *   readout:p           measurement flip;  readout@q:p  per-qubit
 *   idle@q:p            depolarizing on qubit q after EVERY gate
 *   idle@q:px:py:pz     (explicit mixture form; @q is required)
 *
 * A spec starting with '{' is parsed as JSON instead: an object with
 * the same channel names as keys; values are a number (the `p` form),
 * a 3-array (the px:py:pz form, pauli1/idle only), or an object
 * mapping qubit numbers (and optionally "default") to either value
 * form. Examples:
 *
 *   {"pauli1": 0.01, "pauli2": 0.002, "readout": 0.02}
 *   {"pauli1": {"default": 0.01, "3": [0.1, 0, 0]}, "idle": {"5": 0.2}}
 *
 * Sampling draw order (the determinism contract — goldens in
 * tests/test_noise.cc pin it): per executed gate, in sequence order:
 *   1. pauli1 (1q gates only, one draw if the qubit's mixture is on)
 *   2. pauli2 (>=2q gates, on the first two listed qubits)
 *   3. damping (per acted-on qubit, in the gate's listed order)
 *   4. idle (per configured qubit, ascending)
 * then ONE outcome draw (statevec/measure.hh sampleOutcome), then
 * readout flips (ascending qubit, armed qubits only). All draws come
 * from one per-shot RNG on the single-threaded scheduling path.
 */

#ifndef QGPU_NOISE_MODEL_HH
#define QGPU_NOISE_MODEL_HH

#include <span>
#include <string>
#include <vector>

#include "noise/damping.hh"
#include "noise/idle.hh"
#include "noise/pauli1q.hh"
#include "noise/pauli2q.hh"
#include "noise/readout.hh"
#include "qc/circuit.hh"

namespace qgpu
{
namespace noise
{

class NoiseModel
{
  public:
    NoiseModel() = default;

    /// @name Builder interface
    /// @{
    NoiseModel &pauli1(PauliProbs p);
    NoiseModel &pauli1On(int q, PauliProbs p);
    NoiseModel &pauli2(double p);
    NoiseModel &damping(double gamma);
    NoiseModel &dampingOn(int q, double gamma);
    NoiseModel &readout(double p);
    NoiseModel &readoutOn(int q, double p);
    NoiseModel &idle(int q, PauliProbs p);
    /// @}

    /** Any gate-attached channel armed (pauli1/pauli2/damp/idle)? */
    bool gateNoiseArmed() const;

    bool readoutArmed() const { return readout_.enabled(); }

    bool armed() const { return gateNoiseArmed() || readoutArmed(); }

    /**
     * Draw every gate-attached error for one shot, in the documented
     * order. Events come back sorted by gateIndex (ascending) with
     * same-index events in application order.
     */
    std::vector<NoiseEvent> sample(std::span<const Gate> gates,
                                   Rng &rng) const;

    /** Per-shot readout flip mask over @p num_qubits qubits. */
    Index sampleReadoutFlips(int num_qubits, Rng &rng) const;

    /**
     * Qubit-space mask of qubits a sampled error attached to @p gate
     * may act on NON-diagonally (X/Y). This is what the batched
     * planner feeds the noise-aware sweep scheduler and ORs into the
     * conservative union involvement mask: diagonal errors (Z) can
     * never move weight out of the pruned subspace, so they need no
     * arming under either involvement policy.
     */
    std::uint64_t touchableBits(const Gate &gate) const;

    /** The spec string this model was parsed from ("" if built
     *  programmatically). Folded into service cache keys verbatim. */
    const std::string &spec() const { return spec_; }

    /**
     * Parse a spec string or (when it starts with '{') a JSON object
     * per the grammar above. Empty input yields a disarmed model;
     * malformed input is fatal (user error).
     */
    static NoiseModel parse(const std::string &spec);

    /**
     * Resolve an ExecOptions::noiseSpec value: "env" reads
     * QGPU_NOISE_SPEC, "" and "none" disable noise, anything else is
     * parsed.
     */
    static NoiseModel resolve(const std::string &option);

  private:
    Pauli1qChannel pauli1_;
    Pauli2qChannel pauli2_;
    DampingChannel damp_;
    ReadoutChannel readout_;
    IdleChannel idle_;
    std::string spec_;
};

/**
 * Materialize one shot's trajectory: @p ordered with every sampled
 * error gate inserted after its attachment gate. Running the result
 * through any engine (with reordering/fusion off) or a flat
 * gate-by-gate replay is bit-identical to the batched shared-schedule
 * replay of the same events — the stochastic-differential contract.
 */
Circuit expandCircuit(const Circuit &ordered,
                      std::span<const NoiseEvent> events);

} // namespace noise
} // namespace qgpu

#endif // QGPU_NOISE_MODEL_HH
