/**
 * @file
 * Compiler-assisted, dependency-aware gate reordering (paper §IV-C).
 * Both heuristics traverse the dependency DAG and pick runnable gates
 * that delay qubit involvement, enlarging the pruning window:
 *
 *  - GreedyReorderer (Algorithm 2) picks the runnable gate that
 *    introduces the fewest new qubits.
 *  - ForwardLookingReorderer (Algorithm 3) adds a one-step lookahead
 *    term to the cost, fixing the gs-style regressions of greedy.
 */

#ifndef QGPU_REORDER_REORDER_HH
#define QGPU_REORDER_REORDER_HH

#include <memory>
#include <string>
#include <vector>

#include "qc/dag.hh"

namespace qgpu
{

/** Reordering strategy selector used across engines and benches. */
enum class ReorderKind { None, Greedy, ForwardLooking };

const char *reorderKindName(ReorderKind kind);

/**
 * Base class: derive and implement pickNext() over the runnable set.
 */
class Reorderer
{
  public:
    virtual ~Reorderer() = default;

    virtual std::string name() const = 0;

    /** Compute a full schedule (gate ids in execution order). */
    std::vector<int> schedule(const DagCircuit &dag) const;

    /** Convenience: rebuild the circuit in the new order. */
    Circuit reorder(const Circuit &circuit) const;

  protected:
    /**
     * Choose the next gate among @p runnable (indices into the DAG).
     * @p involved marks already-involved qubits. Implementations
     * return a position into @p runnable.
     */
    virtual std::size_t
    pickNext(const DagCircuit &dag, const std::vector<int> &runnable,
             const std::vector<bool> &involved,
             const std::vector<int> &in_degree) const = 0;
};

/** Algorithm 2. */
class GreedyReorderer : public Reorderer
{
  public:
    std::string name() const override { return "greedy"; }

  protected:
    std::size_t pickNext(const DagCircuit &dag,
                         const std::vector<int> &runnable,
                         const std::vector<bool> &involved,
                         const std::vector<int> &in_degree)
        const override;
};

/** Algorithm 3. */
class ForwardLookingReorderer : public Reorderer
{
  public:
    std::string name() const override { return "forward-looking"; }

  protected:
    std::size_t pickNext(const DagCircuit &dag,
                         const std::vector<int> &runnable,
                         const std::vector<bool> &involved,
                         const std::vector<int> &in_degree)
        const override;
};

/** Factory; returns nullptr for ReorderKind::None. */
std::unique_ptr<Reorderer> makeReorderer(ReorderKind kind);

/**
 * Apply @p kind to @p circuit; None returns the circuit unchanged.
 */
Circuit reorderCircuit(const Circuit &circuit, ReorderKind kind);

} // namespace qgpu

#endif // QGPU_REORDER_REORDER_HH
