#include "reorder/reorder.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace qgpu
{

namespace
{

/** Number of qubits of gate @p g not yet marked in @p involved. */
int
newQubits(const DagCircuit &dag, int g, const std::vector<bool> &involved)
{
    int count = 0;
    for (int q : dag.circuit().gates()[g].qubits)
        if (!involved[q])
            ++count;
    return count;
}

} // namespace

const char *
reorderKindName(ReorderKind kind)
{
    switch (kind) {
      case ReorderKind::None: return "original";
      case ReorderKind::Greedy: return "greedy";
      case ReorderKind::ForwardLooking: return "forward-looking";
    }
    return "?";
}

std::vector<int>
Reorderer::schedule(const DagCircuit &dag) const
{
    std::vector<int> in_degree = dag.inDegrees();
    std::vector<int> runnable = dag.roots();
    std::vector<bool> involved(dag.circuit().numQubits(), false);

    std::vector<int> order;
    order.reserve(dag.numNodes());
    while (!runnable.empty()) {
        const std::size_t pos =
            pickNext(dag, runnable, involved, in_degree);
        const int g = runnable[pos];
        runnable.erase(runnable.begin() +
                       static_cast<std::ptrdiff_t>(pos));
        order.push_back(g);
        for (int q : dag.circuit().gates()[g].qubits)
            involved[q] = true;
        for (int s : dag.successors(g))
            if (--in_degree[s] == 0)
                runnable.push_back(s);
    }
    if (order.size() != dag.numNodes())
        QGPU_PANIC("reorderer produced a partial schedule");
    return order;
}

Circuit
Reorderer::reorder(const Circuit &circuit) const
{
    const DagCircuit dag(circuit);
    Circuit out = applySchedule(circuit, schedule(dag));
    out.setName(circuit.name());
    return out;
}

std::size_t
GreedyReorderer::pickNext(const DagCircuit &dag,
                          const std::vector<int> &runnable,
                          const std::vector<bool> &involved,
                          const std::vector<int> &in_degree) const
{
    (void)in_degree;
    std::size_t best = 0;
    int best_cost = std::numeric_limits<int>::max();
    for (std::size_t i = 0; i < runnable.size(); ++i) {
        const int cost = newQubits(dag, runnable[i], involved);
        if (cost < best_cost) {
            best_cost = cost;
            best = i;
            if (cost == 0)
                break; // cannot do better
        }
    }
    return best;
}

std::size_t
ForwardLookingReorderer::pickNext(const DagCircuit &dag,
                                  const std::vector<int> &runnable,
                                  const std::vector<bool> &involved,
                                  const std::vector<int> &in_degree) const
{
    std::size_t best = 0;
    int best_cost = std::numeric_limits<int>::max();
    int best_current = std::numeric_limits<int>::max();

    for (std::size_t i = 0; i < runnable.size(); ++i) {
        const int g = runnable[i];
        const int cost_current = newQubits(dag, g, involved);

        // Hypothetically execute g (Algorithm 3 works on copies).
        std::vector<bool> involved2 = involved;
        for (int q : dag.circuit().gates()[g].qubits)
            involved2[q] = true;

        // Lookahead: cheapest gate runnable after g.
        int cost_look = std::numeric_limits<int>::max();
        for (std::size_t j = 0; j < runnable.size(); ++j) {
            if (j == i)
                continue;
            cost_look = std::min(
                cost_look, newQubits(dag, runnable[j], involved2));
        }
        for (int s : dag.successors(g)) {
            if (in_degree[s] == 1) // g was its last blocker
                cost_look = std::min(
                    cost_look, newQubits(dag, s, involved2));
        }
        if (cost_look == std::numeric_limits<int>::max())
            cost_look = 0; // nothing left to look at

        const int cost = cost_current + cost_look;
        // Ties break toward the gate that involves fewer qubits right
        // now: keeping involvement low for longer is what pruning
        // monetizes.
        if (cost < best_cost ||
            (cost == best_cost && cost_current < best_current)) {
            best_cost = cost;
            best_current = cost_current;
            best = i;
            if (cost == 0 && cost_current == 0)
                break;
        }
    }
    return best;
}

std::unique_ptr<Reorderer>
makeReorderer(ReorderKind kind)
{
    switch (kind) {
      case ReorderKind::None:
        return nullptr;
      case ReorderKind::Greedy:
        return std::make_unique<GreedyReorderer>();
      case ReorderKind::ForwardLooking:
        return std::make_unique<ForwardLookingReorderer>();
    }
    return nullptr;
}

Circuit
reorderCircuit(const Circuit &circuit, ReorderKind kind)
{
    const auto reorderer = makeReorderer(kind);
    if (!reorderer)
        return circuit;
    return reorderer->reorder(circuit);
}

} // namespace qgpu
