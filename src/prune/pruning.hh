/**
 * @file
 * Chunk-level pruning, the enumeration of Algorithm 1: given the
 * involvement mask and the chunk size, list the chunks that can hold
 * non-zero amplitudes and skip (prune) the rest.
 */

#ifndef QGPU_PRUNE_PRUNING_HH
#define QGPU_PRUNE_PRUNING_HH

#include <vector>

#include "prune/involvement.hh"

namespace qgpu
{

/** Result of one Algorithm 1 sweep. */
struct PruneSweep
{
    std::vector<Index> live;   ///< chunk indices that may be non-zero
    Index totalChunks = 0;
    Index prunedChunks = 0;
};

/**
 * Enumerate live chunks exactly as Algorithm 1 does: iterate chunk
 * indices, stop early once the shifted index exceeds the involvement
 * mask (every later chunk has an uninvolved high bit set), and skip
 * chunks whose shifted index is not covered by the mask.
 */
PruneSweep sweepChunks(const InvolvementMask &mask, int num_qubits,
                       int chunk_bits);

} // namespace qgpu

#endif // QGPU_PRUNE_PRUNING_HH
