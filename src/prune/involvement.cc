#include "prune/involvement.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace qgpu
{

InvolvementMask::InvolvementMask(int num_qubits,
                                 InvolvementPolicy policy)
    : numQubits_(num_qubits), policy_(policy)
{
    if (num_qubits < 1 || num_qubits > 62)
        QGPU_FATAL("unsupported qubit count ", num_qubits);
}

void
InvolvementMask::involve(int q)
{
    mask_ = bits::setBit(mask_, q);
}

void
InvolvementMask::involve(const Gate &gate)
{
    if (policy_ == InvolvementPolicy::PerOp) {
        mask_ |= gateInvolvementBits(gate, policy_);
        return;
    }

    // NonDiagonal refinement: a controlled permutation whose controls
    // are all uninvolved acts as the identity on the live subspace
    // (the control-on amplitudes are all zero), so it involves
    // nothing at all.
    switch (gate.kind) {
      case GateKind::CX:
      case GateKind::CY:
        if (isInvolved(gate.qubits[0]))
            involve(gate.qubits[1]);
        return;
      case GateKind::CCX:
        if (isInvolved(gate.qubits[0]) && isInvolved(gate.qubits[1]))
            involve(gate.qubits[2]);
        return;
      case GateKind::CSWAP:
        if (isInvolved(gate.qubits[0])) {
            const bool a = isInvolved(gate.qubits[1]);
            const bool b = isInvolved(gate.qubits[2]);
            if (b)
                involve(gate.qubits[1]);
            if (a)
                involve(gate.qubits[2]);
        }
        return;
      default:
        mask_ |= gateInvolvementBits(gate, policy_);
        return;
    }
}

bool
InvolvementMask::isInvolved(int q) const
{
    return bits::testBit(mask_, q);
}

int
InvolvementMask::count() const
{
    return bits::popcount(mask_);
}

bool
InvolvementMask::chunkIsLive(Index chunk, int chunk_bits) const
{
    const std::uint64_t shifted = chunk << chunk_bits;
    return (shifted & mask_) == shifted;
}

int
InvolvementMask::dynamicChunkBits(int min_bits, int max_bits) const
{
    const int run = bits::trailingOnes(mask_);
    return std::clamp(run, min_bits, max_bits);
}

std::uint64_t
gateInvolvementBits(const Gate &gate, InvolvementPolicy policy)
{
    std::uint64_t out = 0;
    if (policy == InvolvementPolicy::PerOp) {
        for (int q : gate.qubits)
            out = bits::setBit(out, q);
        return out;
    }

    // NonDiagonal: only qubits on which the unitary acts
    // non-diagonally can gain |1>-subspace weight.
    switch (gate.kind) {
      // Fully diagonal gates involve nothing.
      case GateKind::ID:
      case GateKind::Z:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T:
      case GateKind::Tdg:
      case GateKind::RZ:
      case GateKind::P:
      case GateKind::CZ:
      case GateKind::CP:
      case GateKind::CRZ:
      case GateKind::RZZ:
      case GateKind::CCZ:
        return 0;
      // Controlled permutations involve their targets only.
      case GateKind::CX:
      case GateKind::CY:
        return bits::setBit(0, gate.qubits[1]);
      case GateKind::CCX:
        return bits::setBit(0, gate.qubits[2]);
      case GateKind::CSWAP:
        return bits::setBit(bits::setBit(0, gate.qubits[1]),
                            gate.qubits[2]);
      default:
        // 1q non-diagonal gates, SWAP, Custom: everything named.
        for (int q : gate.qubits)
            out = bits::setBit(out, q);
        return out;
    }
}

} // namespace qgpu
