#include "prune/pruning.hh"

namespace qgpu
{

PruneSweep
sweepChunks(const InvolvementMask &mask, int num_qubits,
            int chunk_bits)
{
    PruneSweep sweep;
    sweep.totalChunks = Index{1} << (num_qubits - chunk_bits);

    const std::uint64_t involvement = mask.bits();
    for (Index chunk = 0; chunk < sweep.totalChunks; ++chunk) {
        const std::uint64_t shifted = chunk << chunk_bits;
        if (shifted > involvement) {
            // Every remaining chunk has at least one set bit above the
            // involvement mask; all are prunable (Algorithm 1 line 5).
            sweep.prunedChunks += sweep.totalChunks - chunk;
            break;
        }
        if ((shifted & involvement) != shifted) {
            ++sweep.prunedChunks;
            continue;
        }
        sweep.live.push_back(chunk);
    }
    return sweep;
}

} // namespace qgpu
