/**
 * @file
 * Qubit involvement tracking (paper §IV-B). A bit of the involvement
 * mask is set once a gate has acted on the corresponding qubit; while
 * it is clear, every amplitude whose index has that bit set is
 * provably zero, which is what licenses pruning.
 */

#ifndef QGPU_PRUNE_INVOLVEMENT_HH
#define QGPU_PRUNE_INVOLVEMENT_HH

#include <cstdint>

#include "common/types.hh"
#include "qc/gate.hh"

namespace qgpu
{

/**
 * How a gate involves its qubits.
 *
 * PerOp is the paper's rule: any gate involves every qubit it names.
 * NonDiagonal is a sharper (still exact) extension implemented here:
 * a diagonal action cannot move weight into the |1> subspace, so a
 * qubit only becomes involved when a gate acts non-diagonally on it
 * (e.g. CX involves its target but not its control; CZ/CP involve
 * nothing). Evaluated as an ablation.
 */
enum class InvolvementPolicy { PerOp, NonDiagonal };

/**
 * The involvement bitmask of Algorithm 1.
 */
class InvolvementMask
{
  public:
    explicit InvolvementMask(int num_qubits,
                             InvolvementPolicy policy =
                                 InvolvementPolicy::PerOp);

    int numQubits() const { return numQubits_; }
    std::uint64_t bits() const { return mask_; }
    InvolvementPolicy policy() const { return policy_; }

    /** Mark qubit @p q involved. */
    void involve(int q);

    /** Record the application of @p gate per the active policy. */
    void involve(const Gate &gate);

    bool isInvolved(int q) const;

    /** Number of involved qubits. */
    int count() const;

    bool allInvolved() const { return count() == numQubits_; }

    /**
     * True iff chunk @p chunk (with @p chunk_bits offset bits) can
     * hold non-zero amplitudes: every set bit of the shifted chunk
     * index must be an involved qubit (Algorithm 1 line 7).
     */
    bool chunkIsLive(Index chunk, int chunk_bits) const;

    /**
     * Dynamic chunk size of Algorithm 1: the run of involved qubits
     * starting at qubit 0 (the least non-zero bit rule), clamped to
     * [@p min_bits, @p max_bits].
     */
    int dynamicChunkBits(int min_bits, int max_bits) const;

  private:
    int numQubits_;
    InvolvementPolicy policy_;
    std::uint64_t mask_ = 0;
};

/**
 * Per-gate qubit bits under a policy, without a mask instance: which
 * qubits would the gate involve?
 */
std::uint64_t gateInvolvementBits(const Gate &gate,
                                  InvolvementPolicy policy);

} // namespace qgpu

#endif // QGPU_PRUNE_INVOLVEMENT_HH
