/**
 * @file
 * The dynamic-allocation streaming engine family. With every feature
 * flag off it is the paper's Naive version (§III-D): every chunk makes
 * a synchronous round trip through the GPU for every gate. The Q-GPU
 * optimizations stack on top through ExecOptions:
 *
 *  - overlap:  double-buffered, bidirectional proactive transfer
 *              (§IV-A);
 *  - prune:    zero-amplitude chunk pruning with dynamic chunk size
 *              (§IV-B, Algorithm 1);
 *  - reorder:  dependency-aware gate reordering (§IV-C);
 *  - compress: GFC compression of non-zero chunks (§IV-D).
 *
 * With more than one device in the machine, batches are assigned to
 * GPUs round-robin (§V-E, Fig. 18) while the state exceeds the
 * devices' combined memory. When every device can hold its balanced
 * shard (sched/shard.hh), the engine switches to the sharded-resident
 * path instead: each device keeps its top-bits shard resident, sweeps
 * run concurrently on every device's compute engine, and sweeps whose
 * coupled chunk-index bits cross the shard boundary pay one batched
 * gather/scatter exchange phase over the peer links.
 */

#ifndef QGPU_ENGINE_STREAMING_HH
#define QGPU_ENGINE_STREAMING_HH

#include "compress/gfc.hh"
#include "engine/execution.hh"
#include "statevec/apply.hh"

namespace qgpu
{

/**
 * Naive / Overlap / Pruning / Reorder / Q-GPU engine, selected by the
 * feature flags in ExecOptions.
 */
class StreamingEngine : public ExecutionEngine
{
  public:
    /**
     * @param label display name; derived from the flags when empty.
     */
    StreamingEngine(Machine &machine, ExecOptions options,
                    std::string label = "");

    std::string name() const override { return label_; }

  protected:
    StateVector execute(const Circuit &circuit,
                        RunResult &result) override;

  private:
    /** Fully device-resident run (state fits on one GPU). */
    StateVector executeResident(const Circuit &circuit,
                                RunResult &result);

    /**
     * Multi-device run with every device holding its shard resident:
     * concurrent per-device sweeps plus batched peer exchange for
     * cross-shard sweeps. Taken when numDevices() > 1 and the largest
     * balanced shard fits every device's memory.
     */
    StateVector executeSharded(const Circuit &circuit,
                               RunResult &result);

    std::string label_;
    /**
     * Ratio-model codec: warp-32 lanes, one segment, sizes taken
     * payload-only over a batch-concatenated sample. The scaled-down
     * chunks here stand for the paper's multi-MB chunks, where GFC's
     * per-segment restarts and headers are noise; measuring tiny
     * chunks individually would bias the ratio toward 1 (see
     * DESIGN.md).
     */
    GfcCodec codec_{32, 1};
};

} // namespace qgpu

#endif // QGPU_ENGINE_STREAMING_HH
