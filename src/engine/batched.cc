#include "engine/batched.hh"

#include <utility>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "fault/injector.hh"
#include "fault/integrity.hh"
#include "qc/fusion.hh"
#include "statevec/apply.hh"
#include "statevec/chunked.hh"
#include "statevec/kernel_dispatch.hh"
#include "statevec/measure.hh"

namespace qgpu
{

namespace
{

// TRUE for chunks provably all-zero under the union mask: some set
// bit of the chunk's global-index prefix is not a live qubit
// (InvolvementMask::chunkIsLive over a plain bit mask).
ZeroPredicate
deadPredicate(bool prune, std::uint64_t live_bits, int chunk_bits)
{
    if (!prune)
        return {};
    return [live_bits, chunk_bits](Index c) {
        return ((c << chunk_bits) & ~live_bits) != 0;
    };
}

// Restores result-affecting options around the PerShot inner runs:
// reordering/fusion already happened once at plan time (error gates
// are attached to the executed order, so re-running the passes over
// the expanded circuit could migrate them), and the inner run must
// keep its state for outcome sampling.
class ScopedBatchOptions
{
  public:
    ScopedBatchOptions(ExecOptions &options) : options_(options), saved_(options)
    {
        options_.reorder = ReorderKind::None;
        options_.fuseWidth = 0;
        options_.keepState = true;
    }
    ~ScopedBatchOptions() { options_ = saved_; }

  private:
    ExecOptions &options_;
    ExecOptions saved_;
};

} // namespace

ShotPlan
buildShotPlan(const Circuit &circuit, const ExecOptions &options,
              int chunk_bits, const noise::NoiseModel &model)
{
    ShotPlan plan;
    plan.ordered = reorderCircuit(circuit, options.reorder);
    if (options.fuseWidth > 0)
        plan.ordered = fuseGates(plan.ordered, options.fuseWidth);
    plan.chunkBits = chunk_bits;
    plan.prune = options.prune;

    const std::span<const Gate> gates(plan.ordered.gates());
    plan.noiseBits.resize(gates.size());
    for (std::size_t i = 0; i < gates.size(); ++i)
        plan.noiseBits[i] = model.touchableBits(gates[i]);

    const int n = plan.ordered.numQubits();
    InvolvementMask umask(n, options.involvement);
    std::size_t at = 0;
    while (at < gates.size()) {
        const Sweep sw =
            nextSweep(gates, at, chunk_bits,
                      plan.prune ? &umask : nullptr, plan.noiseBits);
        PlanSweep ps;
        ps.begin = sw.begin;
        ps.end = sw.end;
        ps.globalBits = sw.globalBits;
        if (plan.prune) {
            ps.liveBits = umask.bits();
            for (std::size_t i = sw.begin; i < sw.end; ++i) {
                umask.involve(gates[i]);
                // Conservative union arming: every qubit any shot's
                // sampled error at this site could touch
                // non-diagonally goes live for the REST of the plan.
                std::uint64_t noise = plan.noiseBits[i];
                if ((noise & ~umask.bits()) != 0)
                    ++plan.armedSites;
                while (noise != 0) {
                    umask.involve(std::countr_zero(noise));
                    noise &= noise - 1;
                }
            }
            ps.postBits = umask.bits();
        }
        plan.sweeps.push_back(std::move(ps));
        at = sw.end;
    }
    return plan;
}

BatchResult
ExecutionEngine::runBatched(const Circuit &circuit)
{
    return runBatched(circuit, options_.shots);
}

BatchResult
ExecutionEngine::runBatched(const Circuit &circuit,
                            std::uint64_t shots,
                            std::span<const std::uint64_t> shot_seeds)
{
    const WallClock wall;
    BatchResult br;
    br.engine = name();
    br.shots = shots;
    if (!shot_seeds.empty() && shot_seeds.size() != shots)
        QGPU_FATAL("runBatched: ", shot_seeds.size(),
                   " shot seeds for ", shots, " shots");

    const noise::NoiseModel model =
        noise::NoiseModel::resolve(options_.noiseSpec);
    const int n = circuit.numQubits();
    auto seed_for = [&](std::uint64_t i) {
        return shot_seeds.empty()
                   ? splitSeed(options_.shotSeed, i)
                   : shot_seeds[i];
    };

    if (options_.batchMode == BatchMode::PerShot) {
        // Apply the order-changing passes once so sampled errors
        // attach to the same executed sequence Shared mode sees —
        // the two modes are bit-identical per shot.
        Circuit ordered = reorderCircuit(circuit, options_.reorder);
        if (options_.fuseWidth > 0)
            ordered = fuseGates(ordered, options_.fuseWidth);
        const std::span<const Gate> gates(ordered.gates());

        for (std::uint64_t s = 0; s < shots && br.ok(); ++s) {
            Rng rng(seed_for(s));
            const auto events = model.sample(gates, rng);
            const Circuit expanded =
                noise::expandCircuit(ordered, events);
            RunResult rr;
            {
                ScopedBatchOptions guard(options_);
                rr = run(expanded);
            }
            if (!rr.ok()) {
                br.error = rr.error;
                break;
            }
            br.stats.add(statkeys::noiseEvents,
                         static_cast<double>(events.size()));
            Index outcome = sampleOutcome(rr.state, rng);
            if (model.readoutArmed()) {
                const Index flips = model.sampleReadoutFlips(n, rng);
                br.stats.add(statkeys::noiseReadoutFlips,
                             static_cast<double>(
                                 bits::popcount(flips)));
                outcome ^= flips;
            }
            br.outcomes.push_back(outcome);
            ++br.counts[outcome];
            if (options_.keepShotStates)
                br.states.push_back(std::move(rr.state));
            br.stats.add(statkeys::shotsTotal, 1.0);
        }
    } else {
        const WallClock plan_wall;
        const ShotPlan plan = buildShotPlan(
            circuit, options_, baseChunkBits(n), model);
        br.scheduleSeconds = plan_wall.seconds();
        br.stats.add(statkeys::shotsPlans, 1.0);
        br.stats.set(statkeys::shotsPlanSweeps,
                     static_cast<double>(plan.sweeps.size()));
        br.stats.set(statkeys::noiseArmedSites,
                     static_cast<double>(plan.armedSites));
        const std::span<const Gate> gates(plan.ordered.gates());

        std::optional<ScopedKernelTier> tier;
        if (options_.fastMath && kernelTier() != KernelTier::Fast)
            tier.emplace(KernelTier::Fast);

        for (std::uint64_t s = 0; s < shots && br.ok(); ++s) {
            Rng rng(seed_for(s));
            const auto events = model.sample(gates, rng);
            br.stats.add(statkeys::noiseEvents,
                         static_cast<double>(events.size()));
            try {
                FaultInjector injector(
                    FaultSpec::resolve(options_.faultSpec),
                    options_.faultSeed);
                ChunkedStateVector state(
                    n, plan.chunkBits,
                    makeStorageConfig(options_, &injector));
                if (options_.precision != Precision::f64)
                    state.setPrecision(options_.precision,
                                       options_.adaptiveThreshold);

                std::size_t ev = 0;
                for (const PlanSweep &ps : plan.sweeps) {
                    std::size_t at = ps.begin;
                    while (at < ps.end) {
                        // Replay up to the next error insertion (or
                        // the sweep end); a mid-sweep insertion
                        // splits the replay into sub-spans, all run
                        // with the sweep's signature and predicate.
                        std::size_t stop = ps.end;
                        if (ev < events.size() &&
                            events[ev].gateIndex + 1 < ps.end)
                            stop = events[ev].gateIndex + 1;
                        if (stop < ps.end)
                            br.stats.add(statkeys::shotsSweepSplits,
                                         1.0);
                        applySweepChunked(
                            state, gates.subspan(at, stop - at),
                            ps.globalBits,
                            deadPredicate(plan.prune, ps.liveBits,
                                          plan.chunkBits));
                        br.stats.add(statkeys::shotsSweepReplays,
                                     1.0);
                        // Errors attached at the sub-span's last
                        // gate. Boundary insertions see postBits
                        // (their arming, by construction, is only
                        // ever needed there); mid-sweep insertions
                        // touch already-live qubits.
                        const std::uint64_t live =
                            stop == ps.end ? ps.postBits
                                           : ps.liveBits;
                        while (ev < events.size() &&
                               events[ev].gateIndex == stop - 1) {
                            applyGateChunked(
                                state, events[ev].gate,
                                deadPredicate(plan.prune, live,
                                              plan.chunkBits));
                            ++ev;
                        }
                        at = stop;
                    }
                    state.refreshPrecision();
                }

                Index outcome = sampleOutcome(state, rng);
                if (model.readoutArmed()) {
                    const Index flips =
                        model.sampleReadoutFlips(n, rng);
                    br.stats.add(statkeys::noiseReadoutFlips,
                                 static_cast<double>(
                                     bits::popcount(flips)));
                    outcome ^= flips;
                }
                br.outcomes.push_back(outcome);
                ++br.counts[outcome];
                if (options_.keepShotStates)
                    br.states.push_back(state.toFlat());
                br.stats.add(statkeys::shotsTotal, 1.0);
            } catch (const SimException &e) {
                br.error = e.error();
                br.stats.add(intkeys::simErrors, 1.0);
            }
        }
    }

    br.wallSeconds = wall.seconds();

    // Mirror the batch counters into the process-wide registry
    // (ExecutionEngine::run does the same for integrity/storage).
    auto &registry = MetricsRegistry::global();
    for (const auto &key : br.stats.names()) {
        if ((key.rfind("noise.", 0) == 0 ||
             key.rfind("shots.", 0) == 0) &&
            br.stats.get(key) != 0.0) {
            registry.add(key, br.stats.get(key));
        }
    }
    return br;
}

} // namespace qgpu
