/**
 * @file
 * The QISKit-Aer-style baseline (paper §III-B): static chunk
 * allocation — the first chunks that fit stay resident on the GPU,
 * the rest live on the CPU — and reactive, synchronous chunk exchange
 * whenever a group mixes CPU and GPU chunks.
 */

#ifndef QGPU_ENGINE_BASELINE_HH
#define QGPU_ENGINE_BASELINE_HH

#include "engine/execution.hh"

namespace qgpu
{

/**
 * Static-allocation baseline engine (single GPU: device 0 of the
 * machine; the multi-GPU baseline splits the static region across
 * devices).
 */
class BaselineEngine : public ExecutionEngine
{
  public:
    BaselineEngine(Machine &machine, ExecOptions options);

    std::string name() const override { return "Baseline"; }

  protected:
    StateVector execute(const Circuit &circuit,
                        RunResult &result) override;
};

} // namespace qgpu

#endif // QGPU_ENGINE_BASELINE_HH
