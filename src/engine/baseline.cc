#include "engine/baseline.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "fault/integrity.hh"
#include "sched/shard.hh"
#include "sched/sweep.hh"
#include "statevec/apply.hh"
#include "statevec/kernels.hh"

namespace qgpu
{

BaselineEngine::BaselineEngine(Machine &machine, ExecOptions options)
    : ExecutionEngine(machine, std::move(options))
{
}

StateVector
BaselineEngine::execute(const Circuit &circuit, RunResult &result)
{
    auto &stats = result.stats;
    auto &trace = result.trace;
    Machine &m = machine();
    const int n = circuit.numQubits();
    const int chunk_bits = baseChunkBits(n);

    // Transfer faults apply to the baseline's bus traffic too: the
    // initial load, the per-gate reactive exchanges, and the final
    // drain all retry under the shared bounded-retry policy.
    FaultInjector injector(FaultSpec::resolve(options().faultSpec),
                           options().faultSeed);
    ChunkedStateVector state(n, chunk_bits,
                             makeStorageConfig(options(), &injector));
    if (options().precision != Precision::f64)
        state.setPrecision(options().precision,
                           options().adaptiveThreshold);
    const Index num_chunks = state.numChunks();
    // Lane-aware chunk size: halved under Precision::f32, the wide
    // (f64) size under adaptive — the baseline prices its uniform
    // static allocation at the capacity-planning width.
    const std::uint64_t chunk_bytes = state.chunkBytes();

    // Static allocation (sched/shard.hh): device d owns a contiguous
    // range bounded by its memory; the remainder stays host-resident.
    // No device map is set for eviction: capacity-limited maps leave
    // overflow chunks on the host (kHost), so the balanced-share
    // heuristic would be meaningless here.
    std::vector<Index> caps(m.numDevices());
    for (int d = 0; d < m.numDevices(); ++d)
        caps[d] = m.device(d).spec().memBytes / chunk_bytes;
    const ShardMap shard =
        ShardMap::capacityLimited(num_chunks, caps);
    const Index host_chunks = shard.hostChunks();
    stats.set("chunks.total", static_cast<double>(num_chunks));
    stats.set("chunks.on_device",
              static_cast<double>(num_chunks - host_chunks));
    stats.set("chunks.on_host", static_cast<double>(host_chunks));
    const int retries = options().transferRetries;

    // Initial load of the static device region.
    VTime prev_end = 0.0;
    for (int d = 0; d < m.numDevices(); ++d) {
        const Index owned = shard.ownedCount(d);
        if (owned == 0)
            continue;
        auto &dev = m.device(d);
        const VTime done = guardedTransfer(
            &injector, FaultPoint::H2D, retries, -1, stats, 0.0,
            [&](VTime s) {
                const VTime end = dev.h2dEngine().schedule(
                    s, m.contendedHostLink(dev.spec().h2d)
                           .transferTime(owned * chunk_bytes));
                stats.add(statkeys::bytesH2d,
                          static_cast<double>(owned * chunk_bytes));
                return end;
            });
        prev_end = std::max(prev_end, done);
    }

    const double per_amp_bytes =
        2.0 * static_cast<double>(ampStoredBytes(
                  options().precision == Precision::f32)); // r + w

    // Functional updates run sweep-at-a-time (one chunk-major pass
    // per sweep, sched/sweep.hh); the per-gate loop below only shapes
    // the virtual-time schedule, which models the per-gate baseline.
    const std::span<const Gate> gates{circuit.gates()};
    std::size_t sweep_end = 0;

    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        if (gi == sweep_end) {
            const Sweep sw = nextSweep(gates, gi, chunk_bits);
            applySweepChunked(state,
                              gates.subspan(sw.begin, sw.size()),
                              sw.globalBits);
            sweep_end = sw.end;
            state.refreshPrecision();
        }
        const Gate &gate = gates[gi];
        const GatePlan plan(gate, n, chunk_bits);
        const Index span = plan.chunksPerGroup();
        const double group_flops =
            kernels::gateFlops(gate, n) /
            static_cast<double>(plan.numGroups());
        const double group_bytes =
            static_cast<double>(span * state.chunkSize()) *
            per_amp_bytes;

        // Partition groups by where their chunks live.
        double host_groups = 0.0;
        std::vector<double> dev_groups(m.numDevices(), 0.0);
        // Mixed groups per target device: count, foreign bytes from
        // the host, and foreign bytes from each other device.
        std::vector<double> mixed_groups(m.numDevices(), 0.0);
        std::vector<double> mixed_host_bytes(m.numDevices(), 0.0);
        std::vector<double> mixed_peer_bytes(
            static_cast<std::size_t>(m.numDevices()) *
                m.numDevices(),
            0.0);

        std::vector<Index> members;
        for (Index g = 0; g < plan.numGroups(); ++g) {
            plan.membersInto(g, members);
            bool any_host = false;
            int first_dev = -1;
            bool multi_dev = false;
            for (Index c : members) {
                const int loc = shard.device(c);
                if (loc == ShardMap::kHost) {
                    any_host = true;
                } else if (first_dev < 0) {
                    first_dev = loc;
                } else if (loc != first_dev) {
                    multi_dev = true;
                }
            }
            if (first_dev < 0) {
                host_groups += 1.0;
            } else if (!any_host && !multi_dev) {
                dev_groups[first_dev] += 1.0;
            } else {
                // Reactive exchange: foreign chunks go to first_dev —
                // host-resident ones over its host link, device-
                // resident ones over the peer links.
                mixed_groups[first_dev] += 1.0;
                for (Index c : members) {
                    const int loc = shard.device(c);
                    if (loc == first_dev)
                        continue;
                    if (loc == ShardMap::kHost) {
                        mixed_host_bytes[first_dev] +=
                            static_cast<double>(chunk_bytes);
                    } else {
                        mixed_peer_bytes
                            [static_cast<std::size_t>(first_dev) *
                                 m.numDevices() +
                             loc] += static_cast<double>(chunk_bytes);
                    }
                }
            }
        }
        double gate_peer_bytes = 0.0;
        for (double b : mixed_peer_bytes)
            gate_peer_bytes += b;
        if (gate_peer_bytes > 0.0)
            stats.add(statkeys::exchangePhases, 1.0);
        // Schedule this gate. QISKit-Aer's chunk loop walks the
        // host-resident region with the CPU threads and only then
        // services the device region and its reactive exchanges, so
        // host and device work serialize within a gate (which is why
        // the paper's Fig. 2 breakdown sums to 100%). Devices run
        // concurrently with each other.
        VTime host_end = prev_end;
        if (host_groups > 0) {
            const double flops = host_groups * group_flops;
            const double bytes = host_groups * group_bytes;
            const VTime dur = m.host().updateTime(
                flops, bytes, options().hostThreads);
            host_end = m.host().compute().schedule(prev_end, dur);
            trace.record(phases::hostCompute, "update",
                         "host.compute", host_end - dur, host_end);
            stats.add(statkeys::flopsHost, flops);
        }
        VTime gate_end = host_end;
        for (int d = 0; d < m.numDevices(); ++d) {
            auto &dev = m.device(d);
            VTime t = host_end;
            if (dev_groups[d] > 0) {
                const double flops = dev_groups[d] * group_flops;
                const double bytes = dev_groups[d] * group_bytes;
                t = dev.compute().schedule(
                    t, dev.kernelTime(flops, bytes));
                trace.record(phases::compute, "kernel",
                             dev.spec().name + ".compute", prev_end,
                             t);
                stats.add(statkeys::flopsDevice, flops);
                stats.add(statkeys::deviceMemBytes, bytes);
            }
            if (mixed_groups[d] > 0) {
                // Reactive: copy in, compute, copy back, in order.
                // Host-resident foreign chunks cross the host link;
                // device-resident ones cross the peer links, each
                // serialized on the sender's egress port.
                VTime in_done = t;
                if (mixed_host_bytes[d] > 0) {
                    in_done = guardedTransfer(
                        &injector, FaultPoint::H2D, retries,
                        static_cast<std::int64_t>(gi), stats, t,
                        [&](VTime s) {
                            const VTime end =
                                dev.h2dEngine().schedule(
                                    s,
                                    m.contendedHostLink(
                                         dev.spec().h2d)
                                        .transferTime(
                                            static_cast<
                                                std::uint64_t>(
                                                mixed_host_bytes
                                                    [d])));
                            stats.add(statkeys::bytesH2d,
                                      mixed_host_bytes[d]);
                            trace.record(phases::h2d, "xfer",
                                         dev.spec().name + ".h2d",
                                         s, end);
                            return end;
                        });
                }
                for (int src = 0; src < m.numDevices(); ++src) {
                    const double pb = mixed_peer_bytes
                        [static_cast<std::size_t>(d) *
                             m.numDevices() +
                         src];
                    if (pb <= 0.0)
                        continue;
                    auto &src_dev = m.device(src);
                    const VTime done = guardedTransfer(
                        &injector, FaultPoint::Peer, retries,
                        static_cast<std::int64_t>(gi), stats, t,
                        [&](VTime s) {
                            const VTime end =
                                src_dev.peerEngine().schedule(
                                    s, m.peerLink(src, d)
                                           .transferTime(
                                               static_cast<
                                                   std::uint64_t>(
                                                   pb)));
                            trace.record(phases::peer, "xchg",
                                         src_dev.spec().name +
                                             ".peer",
                                         s, end);
                            return end;
                        });
                    stats.add(statkeys::exchangeBytes, pb);
                    stats.add(statkeys::exchangeChunks,
                              pb / static_cast<double>(chunk_bytes));
                    in_done = std::max(in_done, done);
                }
                const double flops = mixed_groups[d] * group_flops;
                const double bytes = mixed_groups[d] * group_bytes;
                const VTime k_done = dev.compute().schedule(
                    in_done, dev.kernelTime(flops, bytes));
                stats.add(statkeys::flopsDevice, flops);
                stats.add(statkeys::deviceMemBytes, bytes);
                VTime out_done = k_done;
                if (mixed_host_bytes[d] > 0) {
                    out_done = guardedTransfer(
                        &injector, FaultPoint::D2H, retries,
                        static_cast<std::int64_t>(gi), stats, k_done,
                        [&](VTime s) {
                            const VTime end =
                                dev.d2hEngine().schedule(
                                    s,
                                    m.contendedHostLink(
                                         dev.spec().d2h)
                                        .transferTime(
                                            static_cast<
                                                std::uint64_t>(
                                                mixed_host_bytes
                                                    [d])));
                            stats.add(statkeys::bytesD2h,
                                      mixed_host_bytes[d]);
                            trace.record(phases::d2h, "xfer",
                                         dev.spec().name + ".d2h",
                                         s, end);
                            return end;
                        });
                }
                for (int src = 0; src < m.numDevices(); ++src) {
                    const double pb = mixed_peer_bytes
                        [static_cast<std::size_t>(d) *
                             m.numDevices() +
                         src];
                    if (pb <= 0.0)
                        continue;
                    // Return trip: the foreign chunks go home over
                    // this device's own egress port.
                    const VTime done = guardedTransfer(
                        &injector, FaultPoint::Peer, retries,
                        static_cast<std::int64_t>(gi), stats,
                        k_done, [&](VTime s) {
                            const VTime end =
                                dev.peerEngine().schedule(
                                    s, m.peerLink(d, src)
                                           .transferTime(
                                               static_cast<
                                                   std::uint64_t>(
                                                   pb)));
                            trace.record(phases::peer, "xchg",
                                         dev.spec().name + ".peer",
                                         s, end);
                            return end;
                        });
                    stats.add(statkeys::exchangeBytes, pb);
                    stats.add(statkeys::exchangeChunks,
                              pb / static_cast<double>(chunk_bytes));
                    out_done = std::max(out_done, done);
                }
                t = out_done;
            }
            gate_end = std::max(gate_end, t);
        }

        // Per-gate synchronization barrier.
        gate_end += options().syncLatency;
        stats.add(statkeys::sync, options().syncLatency);
        stats.add(statkeys::gatesApplied, 1.0);
        prev_end = gate_end;
    }

    // Drain the device-resident region back to the host.
    for (int d = 0; d < m.numDevices(); ++d) {
        const Index owned = shard.ownedCount(d);
        if (owned == 0)
            continue;
        auto &dev = m.device(d);
        guardedTransfer(
            &injector, FaultPoint::D2H, retries,
            static_cast<std::int64_t>(gates.size()), stats, prev_end,
            [&](VTime s) {
                const VTime end = dev.d2hEngine().schedule(
                    s, m.contendedHostLink(dev.spec().d2h)
                           .transferTime(owned * chunk_bytes));
                stats.add(statkeys::bytesD2h,
                          static_cast<double>(owned * chunk_bytes));
                return end;
            });
    }
    // Account the serialized gate chain: the host compute resource may
    // show idle gaps, but prev_end is the true makespan. Pin it by
    // scheduling a zero-length marker.
    m.host().compute().schedule(prev_end, 0.0);

    exportStorageStats(state, stats);
    return state.toFlat();
}

} // namespace qgpu
