/**
 * @file
 * Execution-engine interface. An engine runs a circuit functionally
 * (producing the exact final state) while accruing virtual time on the
 * machine's host/device resources according to its scheduling policy.
 * The six versions evaluated in the paper (Baseline, Naive, Overlap,
 * Pruning, Reorder, Q-GPU) are engines with different policies over
 * the same machine model.
 */

#ifndef QGPU_ENGINE_EXECUTION_HH
#define QGPU_ENGINE_EXECUTION_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "common/stats.hh"
#include "common/trace.hh"
#include "fault/sim_error.hh"
#include "prune/involvement.hh"
#include "qc/circuit.hh"
#include "reorder/reorder.hh"
#include "sim/machine.hh"
#include "sim/timeline.hh"
#include "statevec/chunk_storage.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{

class ChunkedStateVector;
class FaultInjector;
struct BatchResult;

/** Canonical stat keys every engine reports (others may be added). */
namespace statkeys
{
inline constexpr const char *totalTime = "time.total";
inline constexpr const char *hostCompute = "time.host_compute";
inline constexpr const char *deviceCompute = "time.device_compute";
inline constexpr const char *h2d = "time.h2d";
inline constexpr const char *d2h = "time.d2h";
inline constexpr const char *transfer = "time.transfer";
inline constexpr const char *sync = "time.sync";
inline constexpr const char *compressTime = "time.compress";
inline constexpr const char *decompressTime = "time.decompress";
inline constexpr const char *bytesH2d = "bytes.h2d";
inline constexpr const char *bytesD2h = "bytes.d2h";
inline constexpr const char *flopsDevice = "flops.device";
inline constexpr const char *flopsHost = "flops.host";
inline constexpr const char *deviceMemBytes = "bytes.device_mem";
inline constexpr const char *chunksProcessed = "chunks.processed";
inline constexpr const char *chunksPruned = "chunks.pruned";
inline constexpr const char *compressIn = "compress.in_bytes";
inline constexpr const char *compressOut = "compress.out_bytes";
inline constexpr const char *gatesApplied = "gates.applied";
/** Shots executed by runBatched. */
inline constexpr const char *shotsTotal = "shots.total";
/** Shared sweep schedules built (1 per shared-mode batch). */
inline constexpr const char *shotsPlans = "shots.schedule_builds";
/** Sweeps in the shared plan (per batch). */
inline constexpr const char *shotsPlanSweeps = "shots.plan_sweeps";
/** Sweep replays executed across every shot of the batch. */
inline constexpr const char *shotsSweepReplays =
    "shots.sweep_replays";
/** Sweep replays split mid-sweep by a sampled error insertion. */
inline constexpr const char *shotsSweepSplits =
    "shots.sweep_splits";
/** Sampled error gates inserted across the batch. */
inline constexpr const char *noiseEvents = "noise.events";
/** Gate sites whose attached noise could arm a new qubit (plan). */
inline constexpr const char *noiseArmedSites = "noise.armed_sites";
/** Readout bit flips applied to sampled outcomes. */
inline constexpr const char *noiseReadoutFlips =
    "noise.readout_flips";
/** Busy time summed over every device's peer (GPU-to-GPU) engine. */
inline constexpr const char *peerTime = "time.peer";
/** Cross-device exchange phases paid (at most one per sweep). */
inline constexpr const char *exchangePhases = "exchange.phases";
/** Bytes moved over peer links (gather + scatter). */
inline constexpr const char *exchangeBytes = "exchange.bytes";
/** Chunk payloads moved over peer links. */
inline constexpr const char *exchangeChunks = "exchange.chunks";
/** Chunks held by the cold backend at the end of the run. */
inline constexpr const char *storageCold = "storage.compressed_chunks";
/** Working-set evictions performed. */
inline constexpr const char *storageEvictions = "storage.evictions";
/** Chunk accesses served by an already-resident slot. */
inline constexpr const char *storageHits = "storage.decompress_hits";
/** Chunk accesses that decoded from the cold backend. */
inline constexpr const char *storageMisses =
    "storage.decompress_misses";
/** Refills served by zero-filling an elided chunk. */
inline constexpr const char *storageZeroFills = "storage.zero_fills";
/** Bytes of decompressed resident slots at the end of the run. */
inline constexpr const char *storageResidentBytes =
    "storage.resident_bytes";
/** Host bytes of cold compressed streams at the end of the run. */
inline constexpr const char *storageColdBytes = "storage.cold_bytes";
/** Scratch-file bytes held by the spill backend. */
inline constexpr const char *storageSpillBytes = "storage.spill_bytes";
/** High-water mark of resident + cold host bytes. */
inline constexpr const char *storagePeakBytes =
    "storage.peak_host_bytes";
/** Payload checksums verified after decodes. */
inline constexpr const char *storageVerified = "storage.verified";
/** Eviction-write verification retries (armed codec faults). */
inline constexpr const char *storageRetries = "storage.retries";
/** Evictions degraded to raw payloads (armed alloc faults). */
inline constexpr const char *storageRawFallbacks =
    "storage.fallback_raw";
/** Configured working-set bound, in chunks. */
inline constexpr const char *storageWorkingSet = "storage.working_set";
} // namespace statkeys

/**
 * How runBatched executes a multi-shot job (engine/batched.hh).
 *
 * Shared builds the sweep schedule once under a conservative union
 * involvement mask (ideal involvement ∪ every armable noise qubit)
 * and replays it per shot — the amortized fast path. PerShot
 * materializes each shot's sampled errors into an expanded circuit
 * and runs it through the engine's normal path, so pruning uses the
 * exact per-shot "touched-by-noise" set. Both are bit-identical per
 * shot (the stochastic-differential contract).
 */
enum class BatchMode
{
    Shared,
    PerShot,
};

/** Tunables shared by the engines. */
struct ExecOptions
{
    /** Target number of chunks the state is partitioned into. */
    Index targetChunks = 256;

    /** Proactive bidirectional transfer (double buffering). */
    bool overlap = false;

    /** Zero-amplitude pruning (Algorithm 1). */
    bool prune = false;

    /** Dynamic chunk-size selection (needs prune). */
    bool dynamicChunks = true;

    /** Gate reordering pass applied before execution. */
    ReorderKind reorder = ReorderKind::None;

    /** GFC compression of non-zero chunks. */
    bool compress = false;

    /**
     * Qsim-style gate fusion before streaming (0 = off). An
     * extension beyond the paper: merging adjacent gates into
     * few-qubit matrices cuts the number of full-state streaming
     * passes, which is the dominant cost when the state exceeds
     * device memory. Applied after reordering.
     */
    int fuseWidth = 0;

    /** Involvement rule (paper = PerOp; NonDiagonal is the ablation). */
    InvolvementPolicy involvement = InvolvementPolicy::PerOp;

    /**
     * Max chunks whose compressed size is measured exactly per gate;
     * the rest reuse the sampled ratio. 0 measures every chunk.
     */
    int codecSampleChunks = 4;

    /** Per-gate host/device synchronization latency (seconds). */
    double syncLatency = 20e-6;

    /** Host threads for CPU-side work (0 = all cores). */
    int hostThreads = 0;

    /** Record a Fig. 6-style timeline of every scheduled span. */
    bool recordTimeline = false;

    /**
     * Record a phase-tagged execution trace (see common/trace.hh).
     * Implied by recordTimeline: the timeline is derived from the
     * trace after the run.
     */
    bool recordTrace = false;

    /** Keep the final state in the result (disable to save memory). */
    bool keepState = true;

    /**
     * Record per-chunk checksums at compress/D2H time and verify them
     * at H2D/decompress time (the `--verify-chunks` contract; see
     * fault/integrity.hh). Implied when payload faults are armed.
     */
    bool verifyChunks = false;

    /**
     * Max chunks checksummed/verified per sweep epoch under
     * --verify-chunks with no payload faults armed; the tracked window
     * rotates each epoch so every chunk is still covered over
     * consecutive sweeps (the codecSampleChunks idiom — bounds the
     * fault-free verification overhead). 0 tracks every chunk every
     * epoch. Ignored while payload faults arm the compressed sidecar,
     * which always tracks every shipped chunk.
     */
    int verifySampleChunks = 8;

    /**
     * Fault-injection spec: "env" (default) reads $QGPU_FAULT_SPEC,
     * "" or "none" disables injection, anything else is parsed as a
     * spec string like "d2h:0.01,codec:0.005" (fault/injector.hh).
     */
    std::string faultSpec = "env";

    /** Seed for the deterministic fault injector. */
    std::uint64_t faultSeed = 0x517e57ull;

    /**
     * Extra attempts granted to a simulated transfer that keeps
     * failing under injected faults before the run ends with a
     * structured SimError.
     */
    int transferRetries = 3;

    /**
     * Run the fast-math kernel tier (kernel_dispatch.hh,
     * KernelTier::Fast): contracted-FMA duplicates of the specialized
     * kernels, accuracy-bounded at 1e-12 against the exact tier.
     * Defaults to the QGPU_FAST_MATH environment flag (see
     * defaultFastMath) so the CLI/env opt-in reaches every engine;
     * the default tier stays bit-identical when this is off.
     */
    bool fastMath = defaultFastMath();

    /**
     * Amplitude storage precision (common/types.hh). f32 halves the
     * bytes every modeled transfer and the GFC codec move, at a 1e-5
     * accuracy contract; adaptive keeps low-magnitude chunks in the
     * f64 lane (see adaptiveThreshold). Computation stays double.
     */
    Precision precision = Precision::f64;

    /**
     * Adaptive mode's promotion threshold: a chunk whose largest
     * amplitude component magnitude is below this stays in the f64
     * lane instead of being rounded to fp32.
     */
    double adaptiveThreshold = 1e-6;

    /**
     * Chunk storage backend for the authoritative host state
     * (statevec/chunk_storage.hh). Raw keeps every chunk
     * decompressed (today's behavior); Compressed / Spill bound the
     * decompressed working set and keep cold chunks GFC-encoded in
     * host memory / paged to a scratch file — bit-identical results,
     * several extra qubits at equal host RAM.
     */
    StorageKind storage = StorageKind::Raw;

    /**
     * Working-set bound in chunks for non-raw storage (0 = auto: a
     * quarter of host RAM; see StorageConfig::workingSetChunks).
     */
    Index workingSetChunks = 0;

    /** Scratch directory for the spill backend ("" = $TMPDIR, /tmp). */
    std::string spillDir;

    /**
     * Default shot count for the runBatched(circuit) overload
     * (0 = caller must pass shots explicitly).
     */
    std::uint64_t shots = 0;

    /**
     * Noise-model spec for batched execution (noise/model.hh):
     * "" or "none" runs ideal shots, "env" reads $QGPU_NOISE_SPEC,
     * anything else is a spec string or JSON object.
     */
    std::string noiseSpec;

    /**
     * Base seed of the batch; shot i draws from
     * Rng(splitSeed(shotSeed, i)) (common/rng.hh).
     */
    std::uint64_t shotSeed = 0x5407ull;

    /** Shared-schedule replay vs per-shot expanded runs. */
    BatchMode batchMode = BatchMode::Shared;

    /**
     * Keep every per-shot final state in BatchResult::states (the
     * differential harness needs them; production batches should
     * leave this off — it is shots × the full state).
     */
    bool keepShotStates = false;

    /** True when QGPU_FAST_MATH is set to a non-empty, non-"0" value
     *  in the environment (read once per process). */
    static bool defaultFastMath();
};

/**
 * The StorageConfig an engine's state should run under: the options'
 * backend/bound plus the run's fault injector (codec/alloc points
 * reach eviction and refill) and retry budget.
 */
StorageConfig makeStorageConfig(const ExecOptions &options,
                                FaultInjector *injector);

/**
 * Export the state's storage.* counters into @p stats (no-op under
 * raw storage). Engines call this right before flattening the final
 * state; ExecutionEngine::run mirrors the family into the global
 * MetricsRegistry.
 */
void exportStorageStats(const ChunkedStateVector &state,
                        StatSet &stats);

/** Outcome of one engine run. */
struct RunResult
{
    std::string engine;
    VTime totalTime = 0.0;
    /** Real host seconds spent inside run() (the virtual totalTime
     *  models the GPU; this measures the simulator itself). */
    double wallSeconds = 0.0;
    StatSet stats;
    /** Phase-tagged spans (empty unless recordTrace/recordTimeline). */
    Trace trace;
    /** Derived from the trace when recordTimeline is set. */
    Timeline timeline;
    /** Final state; empty (1 qubit, |0>) when keepState is false. */
    StateVector state{1};
    /**
     * Structured failure when a fault-recovery policy was exhausted;
     * the state is then meaningless. Faults that were recovered
     * in-pipeline (retries, raw fallback) leave this empty.
     */
    std::optional<SimError> error;

    bool ok() const { return !error.has_value(); }
};

/**
 * Abstract engine. Construction binds a machine (resources are reset
 * at the start of every run).
 */
class ExecutionEngine
{
  public:
    ExecutionEngine(Machine &machine, ExecOptions options);
    virtual ~ExecutionEngine() = default;

    virtual std::string name() const = 0;

    const ExecOptions &options() const { return options_; }

    /** Simulate @p circuit from |0...0>. */
    RunResult run(const Circuit &circuit);

    /**
     * Execute @p shots seeded measurement shots of @p circuit under
     * the options' noise model and batch mode (engine/batched.hh).
     * @p shot_seeds, when non-empty, supplies one RNG seed per shot
     * (size must equal @p shots); otherwise shot i is seeded with
     * splitSeed(options().shotSeed, i). Implemented once here —
     * every engine version batches identically; in Shared mode the
     * per-shot results are engine-version-independent by
     * construction.
     */
    BatchResult runBatched(
        const Circuit &circuit, std::uint64_t shots,
        std::span<const std::uint64_t> shot_seeds = {});

    /** runBatched with the options' default shot count. */
    BatchResult runBatched(const Circuit &circuit);

  protected:
    /**
     * Engine body: update @p result.stats / timeline, schedule on
     * machine(), and return the final state.
     */
    virtual StateVector execute(const Circuit &circuit,
                                RunResult &result) = 0;

    Machine &machine() { return machine_; }

    /** Chunk-offset bits giving ~targetChunks chunks of n qubits. */
    int baseChunkBits(int num_qubits) const;

  private:
    Machine &machine_;
    ExecOptions options_;
};

} // namespace qgpu

#endif // QGPU_ENGINE_EXECUTION_HH
