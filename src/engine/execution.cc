#include "engine/execution.hh"

#include <algorithm>
#include <cstdlib>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "fault/injector.hh"
#include "fault/integrity.hh"
#include "statevec/chunked.hh"
#include "statevec/kernel_dispatch.hh"

namespace qgpu
{

StorageConfig
makeStorageConfig(const ExecOptions &options, FaultInjector *injector)
{
    StorageConfig cfg;
    cfg.kind = options.storage;
    cfg.workingSetChunks = options.workingSetChunks;
    cfg.spillDir = options.spillDir;
    cfg.injector = injector;
    cfg.retries = options.transferRetries;
    return cfg;
}

void
exportStorageStats(const ChunkedStateVector &state, StatSet &stats)
{
    if (!state.boundedStorage())
        return;
    const StorageStats s = state.storageStats();
    stats.set(statkeys::storageCold,
              static_cast<double>(s.coldChunks));
    stats.set(statkeys::storageEvictions,
              static_cast<double>(s.evictions));
    stats.set(statkeys::storageHits,
              static_cast<double>(s.decompressHits));
    stats.set(statkeys::storageMisses,
              static_cast<double>(s.decompressMisses));
    stats.set(statkeys::storageZeroFills,
              static_cast<double>(s.zeroFills));
    stats.set(statkeys::storageResidentBytes,
              static_cast<double>(s.residentBytes));
    stats.set(statkeys::storageColdBytes,
              static_cast<double>(s.coldBytes));
    stats.set(statkeys::storageSpillBytes,
              static_cast<double>(s.spillBytes));
    stats.set(statkeys::storagePeakBytes,
              static_cast<double>(s.peakHostBytes));
    stats.set(statkeys::storageVerified,
              static_cast<double>(s.verified));
    stats.set(statkeys::storageRetries,
              static_cast<double>(s.retries));
    stats.set(statkeys::storageRawFallbacks,
              static_cast<double>(s.rawFallbacks));
    stats.set(statkeys::storageWorkingSet,
              static_cast<double>(s.workingSet));
}

bool
ExecOptions::defaultFastMath()
{
    static const bool enabled = [] {
        const char *v = std::getenv("QGPU_FAST_MATH");
        return v != nullptr && *v != '\0' &&
               std::string_view{v} != "0";
    }();
    return enabled;
}

ExecutionEngine::ExecutionEngine(Machine &machine, ExecOptions options)
    : machine_(machine), options_(std::move(options))
{
}

RunResult
ExecutionEngine::run(const Circuit &circuit)
{
    machine_.reset();

    const WallClock wall;
    RunResult result;
    result.engine = name();
    if (options_.recordTrace || options_.recordTimeline)
        result.trace.enable();

    // The kernel tier is a process-global read by makeKernelSpec;
    // scope the opt-in to this run so interleaved exact runs (e.g.
    // the differential reference) are unaffected. Engaged only when
    // the tier actually changes: concurrent runs that already match
    // the ambient tier (the service layer's steady state) must not
    // fight over the global. Runs without the opt-in inherit the
    // ambient tier, as before.
    std::optional<ScopedKernelTier> tier;
    if (options_.fastMath && kernelTier() != KernelTier::Fast)
        tier.emplace(KernelTier::Fast);

    StateVector state{circuit.numQubits()};
    try {
        state = execute(circuit, result);
    } catch (const SimException &e) {
        // A fault-recovery policy was exhausted. Surface the failure
        // structurally — never a crash, never a silently corrupt
        // state (the |0...0> placeholder plus `error` is the
        // contract).
        result.error = e.error();
        result.stats.add(intkeys::simErrors, 1.0);
    }
    result.wallSeconds = wall.seconds();

    if (options_.recordTimeline) {
        result.timeline.enable();
        result.timeline.addTrace(result.trace);
    }

    // Collect resource busy times common to every engine.
    auto &stats = result.stats;
    stats.set(statkeys::hostCompute,
              machine_.host().compute().busyTime());
    double h2d = 0.0, d2h = 0.0, dev = 0.0, peer = 0.0;
    VTime horizon = machine_.host().compute().freeAt();
    const bool multi = machine_.numDevices() > 1;
    for (int d = 0; d < machine_.numDevices(); ++d) {
        const auto &device = machine_.device(d);
        h2d += device.h2dEngine().busyTime();
        d2h += device.d2hEngine().busyTime();
        dev += device.compute().busyTime();
        peer += device.peerEngine().busyTime();
        horizon = std::max({horizon, device.compute().freeAt(),
                            device.h2dEngine().freeAt(),
                            device.d2hEngine().freeAt(),
                            device.peerEngine().freeAt()});
        if (multi) {
            // Per-device busy breakdown: with one device these rows
            // duplicate the aggregates, so they are multi-device only.
            const std::string prefix =
                "device." + std::to_string(d) + ".";
            stats.set(prefix + "busy", device.compute().busyTime());
            stats.set(prefix + "h2d", device.h2dEngine().busyTime());
            stats.set(prefix + "d2h", device.d2hEngine().busyTime());
            stats.set(prefix + "peer",
                      device.peerEngine().busyTime());
        }
    }
    stats.set(statkeys::h2d, h2d);
    stats.set(statkeys::d2h, d2h);
    if (peer > 0.0)
        stats.set(statkeys::peerTime, peer);
    // Exposed transfer period: bidirectional overlap hides the
    // shorter direction behind the longer one.
    stats.set(statkeys::transfer,
              options_.overlap ? std::max(h2d, d2h) : h2d + d2h);
    // Device compute excluding codec work.
    stats.set(statkeys::deviceCompute,
              dev - stats.get(statkeys::compressTime) -
                  stats.get(statkeys::decompressTime));

    result.totalTime = horizon;
    stats.set(statkeys::totalTime, result.totalTime);

    // Mirror the per-run integrity and storage counters into the
    // process-wide registry so long-lived processes can watch
    // corruption/recovery and working-set behavior without keeping
    // RunResults alive.
    auto &registry = MetricsRegistry::global();
    for (const auto &name : stats.names()) {
        if ((name.rfind("integrity.", 0) == 0 ||
             name.rfind("storage.", 0) == 0) &&
            stats.get(name) != 0.0) {
            registry.add(name, stats.get(name));
        }
    }

    if (options_.keepState)
        result.state = std::move(state);
    return result;
}

int
ExecutionEngine::baseChunkBits(int num_qubits) const
{
    const int chunk_index_bits = std::min<int>(
        num_qubits,
        bits::log2Exact(std::bit_ceil(options_.targetChunks)));
    return num_qubits - chunk_index_bits;
}

} // namespace qgpu
