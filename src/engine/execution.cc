#include "engine/execution.hh"

#include <algorithm>
#include <cstdlib>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "fault/integrity.hh"
#include "statevec/kernel_dispatch.hh"

namespace qgpu
{

bool
ExecOptions::defaultFastMath()
{
    static const bool enabled = [] {
        const char *v = std::getenv("QGPU_FAST_MATH");
        return v != nullptr && *v != '\0' &&
               std::string_view{v} != "0";
    }();
    return enabled;
}

ExecutionEngine::ExecutionEngine(Machine &machine, ExecOptions options)
    : machine_(machine), options_(std::move(options))
{
}

RunResult
ExecutionEngine::run(const Circuit &circuit)
{
    machine_.reset();

    const WallClock wall;
    RunResult result;
    result.engine = name();
    if (options_.recordTrace || options_.recordTimeline)
        result.trace.enable();

    // The kernel tier is a process-global read by makeKernelSpec;
    // scope the opt-in to this run so interleaved exact runs (e.g.
    // the differential reference) are unaffected.
    const ScopedKernelTier tier(options_.fastMath ? KernelTier::Fast
                                                  : kernelTier());

    StateVector state{circuit.numQubits()};
    try {
        state = execute(circuit, result);
    } catch (const SimException &e) {
        // A fault-recovery policy was exhausted. Surface the failure
        // structurally — never a crash, never a silently corrupt
        // state (the |0...0> placeholder plus `error` is the
        // contract).
        result.error = e.error();
        result.stats.add(intkeys::simErrors, 1.0);
    }
    result.wallSeconds = wall.seconds();

    if (options_.recordTimeline) {
        result.timeline.enable();
        result.timeline.addTrace(result.trace);
    }

    // Collect resource busy times common to every engine.
    auto &stats = result.stats;
    stats.set(statkeys::hostCompute,
              machine_.host().compute().busyTime());
    double h2d = 0.0, d2h = 0.0, dev = 0.0, peer = 0.0;
    VTime horizon = machine_.host().compute().freeAt();
    const bool multi = machine_.numDevices() > 1;
    for (int d = 0; d < machine_.numDevices(); ++d) {
        const auto &device = machine_.device(d);
        h2d += device.h2dEngine().busyTime();
        d2h += device.d2hEngine().busyTime();
        dev += device.compute().busyTime();
        peer += device.peerEngine().busyTime();
        horizon = std::max({horizon, device.compute().freeAt(),
                            device.h2dEngine().freeAt(),
                            device.d2hEngine().freeAt(),
                            device.peerEngine().freeAt()});
        if (multi) {
            // Per-device busy breakdown: with one device these rows
            // duplicate the aggregates, so they are multi-device only.
            const std::string prefix =
                "device." + std::to_string(d) + ".";
            stats.set(prefix + "busy", device.compute().busyTime());
            stats.set(prefix + "h2d", device.h2dEngine().busyTime());
            stats.set(prefix + "d2h", device.d2hEngine().busyTime());
            stats.set(prefix + "peer",
                      device.peerEngine().busyTime());
        }
    }
    stats.set(statkeys::h2d, h2d);
    stats.set(statkeys::d2h, d2h);
    if (peer > 0.0)
        stats.set(statkeys::peerTime, peer);
    // Exposed transfer period: bidirectional overlap hides the
    // shorter direction behind the longer one.
    stats.set(statkeys::transfer,
              options_.overlap ? std::max(h2d, d2h) : h2d + d2h);
    // Device compute excluding codec work.
    stats.set(statkeys::deviceCompute,
              dev - stats.get(statkeys::compressTime) -
                  stats.get(statkeys::decompressTime));

    result.totalTime = horizon;
    stats.set(statkeys::totalTime, result.totalTime);

    // Mirror the per-run integrity counters into the process-wide
    // registry so long-lived processes can watch corruption/recovery
    // rates without keeping RunResults alive.
    auto &registry = MetricsRegistry::global();
    for (const auto &name : stats.names()) {
        if (name.rfind("integrity.", 0) == 0 &&
            stats.get(name) != 0.0) {
            registry.add(name, stats.get(name));
        }
    }

    if (options_.keepState)
        result.state = std::move(state);
    return result;
}

int
ExecutionEngine::baseChunkBits(int num_qubits) const
{
    const int chunk_index_bits = std::min<int>(
        num_qubits,
        bits::log2Exact(std::bit_ceil(options_.targetChunks)));
    return num_qubits - chunk_index_bits;
}

} // namespace qgpu
