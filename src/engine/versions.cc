#include "engine/versions.hh"

#include "common/logging.hh"
#include "engine/baseline.hh"
#include "engine/streaming.hh"

namespace qgpu
{

const char *
versionName(Version v)
{
    switch (v) {
      case Version::Baseline: return "Baseline";
      case Version::Naive: return "Naive";
      case Version::Overlap: return "Overlap";
      case Version::Pruning: return "Pruning";
      case Version::Reorder: return "Reorder";
      case Version::QGpu: return "Q-GPU";
    }
    return "?";
}

const std::vector<Version> &
allVersions()
{
    static const std::vector<Version> versions = {
        Version::Baseline, Version::Naive,   Version::Overlap,
        Version::Pruning,  Version::Reorder, Version::QGpu,
    };
    return versions;
}

std::unique_ptr<ExecutionEngine>
makeVersion(Version version, Machine &machine, ExecOptions base)
{
    ExecOptions o = base;
    switch (version) {
      case Version::Baseline:
        return std::make_unique<BaselineEngine>(machine, o);
      case Version::Naive:
        o.overlap = false;
        o.prune = false;
        o.reorder = ReorderKind::None;
        o.compress = false;
        break;
      case Version::Overlap:
        o.overlap = true;
        o.prune = false;
        o.reorder = ReorderKind::None;
        o.compress = false;
        break;
      case Version::Pruning:
        o.overlap = true;
        o.prune = true;
        o.reorder = ReorderKind::None;
        o.compress = false;
        break;
      case Version::Reorder:
        o.overlap = true;
        o.prune = true;
        o.reorder = ReorderKind::ForwardLooking;
        o.compress = false;
        break;
      case Version::QGpu:
        o.overlap = true;
        o.prune = true;
        o.reorder = ReorderKind::ForwardLooking;
        o.compress = true;
        break;
    }
    return std::make_unique<StreamingEngine>(machine, o,
                                             versionName(version));
}

} // namespace qgpu
