#include "engine/streaming.hh"

#include <algorithm>
#include <span>
#include <vector>

#include "common/bits.hh"
#include "common/logging.hh"
#include "fault/integrity.hh"
#include "qc/fusion.hh"
#include "sched/shard.hh"
#include "sched/sweep.hh"
#include "statevec/apply.hh"
#include "statevec/kernels.hh"

namespace qgpu
{

namespace
{

std::string
deriveLabel(const ExecOptions &o)
{
    if (o.compress)
        return "Q-GPU";
    if (o.reorder != ReorderKind::None)
        return "Reorder";
    if (o.prune)
        return "Pruning";
    if (o.overlap)
        return "Overlap";
    return "Naive";
}

} // namespace

StreamingEngine::StreamingEngine(Machine &machine, ExecOptions options,
                                 std::string label)
    : ExecutionEngine(machine, std::move(options)),
      label_(label.empty() ? deriveLabel(this->options())
                           : std::move(label))
{
}

StateVector
StreamingEngine::execute(const Circuit &circuit, RunResult &result)
{
    Circuit ordered = reorderCircuit(circuit, options().reorder);
    if (options().fuseWidth > 0) {
        result.stats.set("gates.original",
                         static_cast<double>(ordered.numGates()));
        ordered = fuseGates(ordered, options().fuseWidth);
        result.stats.set("gates.fused",
                         static_cast<double>(ordered.numGates()));
    }

    // Whole state resident on a single GPU: no streaming needed.
    if (machine().numDevices() == 1 &&
        stateBytes(circuit.numQubits()) <=
            machine().device(0).spec().memBytes) {
        return executeResident(ordered, result);
    }

    // Every device can hold its balanced shard: sharded-resident
    // execution with batched peer exchange. Otherwise the state
    // exceeds the devices' combined memory and falls through to
    // round-robin host streaming (§V-E).
    if (machine().numDevices() > 1) {
        const int n_q = ordered.numQubits();
        const int cb = baseChunkBits(n_q);
        const Index num_chunks = Index{1} << (n_q - cb);
        const Index D =
            static_cast<Index>(machine().numDevices());
        const std::uint64_t shard_bytes =
            ((num_chunks + D - 1) / D) *
            ((Index{1} << cb) * ampBytes);
        bool fits = true;
        for (int d = 0; d < machine().numDevices(); ++d)
            fits = fits && shard_bytes <=
                               machine().device(d).spec().memBytes;
        if (fits)
            return executeSharded(ordered, result);
    }

    auto &stats = result.stats;
    auto &trace = result.trace;
    Machine &m = machine();
    const int n = ordered.numQubits();
    const int num_devs = m.numDevices();
    // Storage lane width drives every modeled byte count. f32 halves
    // it; adaptive plans capacity at the wide lane (chunks may be
    // promoted at any sweep) and accounts per chunk where it matters.
    const bool narrow = options().precision == Precision::f32;
    const double per_amp_bytes =
        2.0 * static_cast<double>(ampStoredBytes(narrow)); // r + w

    const int base_bits = baseChunkBits(n);
    const int min_bits = std::clamp(n - 14, 0, base_bits);
    const bool dynamic = options().prune && options().dynamicChunks;

    InvolvementMask mask(n, options().involvement);
    int chunk_bits =
        dynamic ? mask.dynamicChunkBits(min_bits, base_bits)
                : base_bits;
    // Fault injection + chunk integrity (fault/integrity.hh). The
    // compressed sidecar — a real GFC roundtrip per shipped chunk —
    // is only armed when payload faults are, so a fault-free
    // --verify-chunks run pays for checksums alone. Built before the
    // state so bounded storage can route its codec/alloc faults
    // through the same injector.
    FaultInjector injector(FaultSpec::resolve(options().faultSpec),
                           options().faultSeed);
    ChunkedStateVector state(n, chunk_bits,
                             makeStorageConfig(options(), &injector));
    if (options().precision != Precision::f64)
        state.setPrecision(options().precision,
                           options().adaptiveThreshold);
    const bool payload_faults =
        injector.enabled(FaultPoint::Codec) ||
        injector.enabled(FaultPoint::Alloc);
    ChunkIntegrity guard(options().verifyChunks,
                         payload_faults ? &codec_ : nullptr,
                         options().verifySampleChunks);
    if (guard.active())
        guard.reset(state.numChunks());
    const int retries = options().transferRetries;

    // Host-side availability of each chunk's latest value.
    std::vector<VTime> chunk_ready(state.numChunks(), 0.0);
    // Compressed size of each chunk as currently held on the host.
    std::vector<double> comp_size;
    double fallback_ratio = 1.0;
    // Measure the GFC ratio over a run of chunks, concatenated so the
    // lane structure spans chunk boundaries the way it spans a
    // paper-scale chunk. Chunks are grouped by storage lane: f64-lane
    // chunks price the classic stream, fp32-lane chunks price the
    // narrow stream over their float components (what actually ships).
    // Returns original/compressed, floored at 1 (the raw escape
    // hatch: incompressible data ships as-is).
    std::vector<Amp> scratch;
    std::vector<Amp> scratch32;
    std::vector<float> narrow_buf;
    const auto measure_ratio = [&](const std::vector<Index> &chunks,
                                   std::size_t max_chunks) {
        scratch.clear();
        scratch32.clear();
        const std::size_t take =
            max_chunks == 0 ? chunks.size()
                            : std::min(chunks.size(), max_chunks);
        for (std::size_t i = 0; i < take; ++i) {
            const auto &data = state.chunk(chunks[i]);
            auto &dst =
                state.chunkIsF32(chunks[i]) ? scratch32 : scratch;
            dst.insert(dst.end(), data.begin(), data.end());
        }
        if (scratch.empty() && scratch32.empty())
            return 1.0;
        const double raw =
            static_cast<double>(scratch.size()) * ampBytes +
            static_cast<double>(scratch32.size()) *
                static_cast<double>(ampStoredBytes(true));
        double comp = 0.0;
        if (!scratch.empty()) {
            comp += static_cast<double>(codec_.compressedPayloadSize(
                reinterpret_cast<const double *>(scratch.data()),
                2 * scratch.size()));
        }
        if (!scratch32.empty()) {
            narrow_buf.resize(2 * scratch32.size());
            const double *raw_comp =
                reinterpret_cast<const double *>(scratch32.data());
            for (std::size_t i = 0; i < narrow_buf.size(); ++i)
                narrow_buf[i] = static_cast<float>(raw_comp[i]);
            comp += static_cast<double>(
                codec_.compressedPayloadSizeF32(narrow_buf.data(),
                                                narrow_buf.size()));
        }
        comp = std::max(1.0, comp);
        return std::max(1.0, raw / comp);
    };
    auto reset_comp_sizes = [&] {
        if (!options().compress)
            return;
        // Untouched chunks are all zero and compress maximally: GFC
        // stores one nibble and one zero byte per double.
        const double zero_size = std::max<double>(
            1.0,
            static_cast<double>(2 * state.chunkSize()) * 1.5);
        comp_size.assign(state.numChunks(), zero_size);
        comp_size[0] = static_cast<double>(state.chunkBytes()) /
                       measure_ratio({0}, 1);
        fallback_ratio =
            static_cast<double>(state.chunkBytes()) / zero_size;
    };
    reset_comp_sizes();

    // Per-device double-buffer slot availability.
    const int slots = options().overlap ? 2 : 1;
    std::vector<std::vector<VTime>> slot_free(
        num_devs, std::vector<VTime>(slots, 0.0));
    std::vector<int> dev_batches(num_devs, 0);
    int batch_rr = 0;
    // Latest D2H completion; prune-decision markers anchor here.
    VTime frontier = 0.0;

    // Functional updates run sweep-at-a-time: at each sweep boundary
    // the whole sweep is applied in one chunk-major pass, and the
    // per-gate loop below only does the transfer/codec/kernel
    // scheduling and its bookkeeping. The involvement mask is constant
    // within a sweep (sched/sweep.hh rule 3), so the per-gate prune
    // decisions and the dynamic chunk size — both pure functions of
    // the mask — are exactly what gate-by-gate execution would
    // compute; rechunking in particular can only trigger at a sweep
    // boundary.
    const std::span<const Gate> all_gates{ordered.gates()};
    std::size_t sweep_end = 0;
    const ZeroPredicate chunk_dead =
        options().prune
            ? ZeroPredicate([&](Index c) {
                  return !mask.chunkIsLive(c, chunk_bits);
              })
            : ZeroPredicate{};

    std::size_t gate_idx = 0;
    for (const Gate &gate : ordered.gates()) {
        if (gate_idx == sweep_end) {
            // Dynamic chunk-size selection (Algorithm 1 line 2).
            if (dynamic) {
                const int want =
                    mask.dynamicChunkBits(min_bits, base_bits);
                if (want != chunk_bits) {
                    state.rechunk(want);
                    chunk_bits = want;
                    VTime barrier = 0.0;
                    for (VTime t : chunk_ready)
                        barrier = std::max(barrier, t);
                    chunk_ready.assign(state.numChunks(), barrier);
                    reset_comp_sizes();
                    // New chunk geometry: recorded checksums no
                    // longer describe any chunk.
                    if (guard.active())
                        guard.reset(state.numChunks());
                }
            }
            const Sweep sw = nextSweep(
                all_gates, gate_idx, chunk_bits,
                options().prune ? &mask : nullptr);
            applySweepChunked(
                state, all_gates.subspan(sw.begin, sw.size()),
                sw.globalBits, chunk_dead);
            sweep_end = sw.end;
            // Re-apply the storage-precision policy to the post-sweep
            // data before anything ships or is checksummed: fp32-lane
            // chunks are rounded here, so every later reader (codec
            // sample, integrity ledger, functional state) sees the
            // same stored values.
            state.refreshPrecision();
            // The sweep rewrote chunk data: ship-time checksums from
            // before it are stale.
            guard.beginEpoch();
        }

        const GatePlan plan(gate, n, chunk_bits);
        const int span = plan.chunksPerGroup();
        const std::uint64_t chunk_bytes = state.chunkBytes();
        const double group_flops =
            kernels::gateFlops(gate, n) /
            static_cast<double>(plan.numGroups());
        const std::uint64_t post_mask_bits =
            mask.bits() |
            gateInvolvementBits(gate, options().involvement);

        auto live_in = [&](Index c) {
            return !options().prune || mask.chunkIsLive(c, chunk_bits);
        };
        auto live_out = [&](Index c) {
            if (!options().prune)
                return true;
            const std::uint64_t shifted =
                (c << chunk_bits);
            return (shifted & post_mask_bits) == shifted;
        };

        // Enumerate live groups (a group is dead only if every member
        // chunk is provably zero; dead groups are no-ops).
        std::vector<Index> live_groups;
        std::vector<Index> member_scratch;
        live_groups.reserve(plan.numGroups());
        for (Index g = 0; g < plan.numGroups(); ++g) {
            if (!options().prune) {
                live_groups.push_back(g);
                continue;
            }
            plan.membersInto(g, member_scratch);
            const bool any_live =
                std::any_of(member_scratch.begin(),
                            member_scratch.end(), live_in);
            if (any_live)
                live_groups.push_back(g);
        }
        const double live_chunks =
            static_cast<double>(live_groups.size()) * span;
        const double pruned_chunks =
            static_cast<double>(plan.numGroups() -
                                live_groups.size()) *
            span;
        stats.add(statkeys::chunksProcessed, live_chunks);
        stats.add(statkeys::chunksPruned, pruned_chunks);
        stats.add(statkeys::gatesApplied, 1.0);
        if (options().prune && trace.enabled()) {
            // Zero-length marker: the decision is host bookkeeping
            // with no modeled cost, but its outcome is the counter
            // the pruning figures are built from.
            trace.record(phases::prune, "decide", "host.prune",
                         frontier, frontier,
                         {{statkeys::chunksProcessed, live_chunks},
                          {statkeys::chunksPruned, pruned_chunks}});
        }

        // Batch the live groups under the buffer capacity.
        bool first_batch_of_gate = true;
        for (std::size_t at = 0; at < live_groups.size();) {
            const int d = batch_rr % num_devs;
            ++batch_rr;
            auto &dev = m.device(d);
            const std::uint64_t buf_bytes =
                std::max<std::uint64_t>(
                    dev.spec().memBytes /
                        static_cast<std::uint64_t>(slots),
                    static_cast<std::uint64_t>(span) * chunk_bytes);
            const std::size_t groups_per_batch =
                std::max<std::size_t>(
                    1, buf_bytes / (static_cast<std::uint64_t>(span) *
                                    chunk_bytes));
            const std::size_t end =
                std::min(live_groups.size(), at + groups_per_batch);

            // Gather batch facts.
            VTime ready = 0.0;
            double in_bytes = 0.0, in_decomp_raw = 0.0;
            std::vector<Index> out_chunks;
            for (std::size_t i = at; i < end; ++i) {
                plan.membersInto(live_groups[i], member_scratch);
                for (Index c : member_scratch) {
                    ready = std::max(ready, chunk_ready[c]);
                    if (live_in(c)) {
                        // H2D/decompress-time integrity check of the
                        // uploaded chunk (throws on an unrecoverable
                        // mismatch). needsReceive is the cheap inline
                        // reject: this loop runs per batch member per
                        // gate, verification at most once per epoch.
                        if (guard.needsReceive(c)) {
                            guard.onReceive(
                                state.chunk(c), c,
                                static_cast<std::int64_t>(gate_idx),
                                injector, stats,
                                state.chunkIsF32(c));
                        }
                        if (options().compress) {
                            in_bytes += comp_size[c];
                            // Chunks stored raw (escape hatch) skip
                            // the decompression kernel.
                            if (comp_size[c] <
                                0.98 * static_cast<double>(
                                           chunk_bytes)) {
                                in_decomp_raw += static_cast<double>(
                                    chunk_bytes);
                            }
                        } else {
                            in_bytes += static_cast<double>(
                                state.chunkStoredBytes(c));
                        }
                    }
                    if (live_out(c))
                        out_chunks.push_back(c);
                }
            }
            const double batch_groups =
                static_cast<double>(end - at);
            const double flops = batch_groups * group_flops;
            const double kbytes =
                batch_groups * static_cast<double>(span) *
                static_cast<double>(state.chunkSize()) *
                per_amp_bytes;

            const int slot = dev_batches[d] % slots;
            ++dev_batches[d];

            // H2D of the live inputs; a faulted attempt burns its
            // virtual time and the transfer repeats, bounded by the
            // retry budget.
            const VTime start =
                std::max(ready, slot_free[d][slot]);
            VTime t = guardedTransfer(
                &injector, FaultPoint::H2D, retries,
                static_cast<std::int64_t>(gate_idx), stats, start,
                [&](VTime s) {
                    const VTime done = dev.h2dEngine().schedule(
                        s, m.contendedHostLink(dev.spec().h2d)
                               .transferTime(static_cast<std::uint64_t>(
                                   in_bytes)));
                    trace.record(phases::h2d, "xfer",
                                 dev.spec().name + ".h2d", s, done);
                    stats.add(statkeys::bytesH2d, in_bytes);
                    return done;
                });

            if (options().compress && in_decomp_raw > 0) {
                const VTime dur = dev.codecTime(
                    static_cast<std::uint64_t>(in_decomp_raw));
                t = dev.compute().schedule(t, dur);
                stats.add(statkeys::decompressTime, dur);
                trace.record(phases::compress, "dec",
                             dev.spec().name + ".compute", t - dur,
                             t);
            }

            // Kernel.
            const VTime k_dur = dev.kernelTime(flops, kbytes);
            t = dev.compute().schedule(t, k_dur);
            trace.record(phases::compute, "kernel",
                         dev.spec().name + ".compute", t - k_dur, t);
            stats.add(statkeys::flopsDevice, flops);
            stats.add(statkeys::deviceMemBytes, kbytes);

            // Compress updated chunks and ship them back. (The
            // functional update already ran in the sweep pass above;
            // host memory stands in for every location, and the
            // engines differ only in scheduling. The ratio sample
            // below therefore reads the post-sweep state - the same
            // amplitudes the chunks hold when they actually ship.)
            double out_bytes = 0.0;
            if (options().compress && !out_chunks.empty()) {
                const double out_raw =
                    static_cast<double>(out_chunks.size()) *
                    static_cast<double>(chunk_bytes);
                const std::size_t sample_chunks =
                    options().codecSampleChunks <= 0
                        ? out_chunks.size()
                        : static_cast<std::size_t>(
                              options().codecSampleChunks);
                // The ratio is re-measured on the first batch of each
                // gate; later batches of the same gate reuse it (the
                // state's character does not change mid-gate).
                double sampled_raw = 0.0;
                if (first_batch_of_gate) {
                    fallback_ratio =
                        measure_ratio(out_chunks, sample_chunks);
                    sampled_raw =
                        static_cast<double>(std::min(
                            out_chunks.size(), sample_chunks)) *
                        static_cast<double>(chunk_bytes);
                    first_batch_of_gate = false;
                }
                const double ratio = fallback_ratio;
                const double size_each =
                    static_cast<double>(chunk_bytes) / ratio;
                for (Index c : out_chunks)
                    comp_size[c] = size_each;
                out_bytes = out_raw / ratio;

                // Adaptive bypass: with a double-buffered (depth-2)
                // pipeline the codec sits on the batch critical path,
                // so compression only pays once the transfer savings
                // beat the codec time - around ratio 1.2 for GFC at
                // 75 GB/s against PCIe. Below that, only the sample
                // paid the compression kernel and the batch ships
                // raw; above it the whole batch is compressed.
                const bool worthwhile = ratio >= 1.25;
                if (!worthwhile) {
                    for (Index c : out_chunks)
                        comp_size[c] =
                            static_cast<double>(chunk_bytes);
                    out_bytes = out_raw;
                }
                const double attempted =
                    worthwhile ? out_raw : sampled_raw;
                if (attempted > 0) {
                    const VTime dur = dev.codecTime(
                        static_cast<std::uint64_t>(attempted));
                    t = dev.compute().schedule(t, dur);
                    stats.add(statkeys::compressTime, dur);
                    trace.record(phases::compress, "cmp",
                                 dev.spec().name + ".compute",
                                 t - dur, t);
                }
                stats.add(statkeys::compressIn, out_raw);
                stats.add(statkeys::compressOut, out_bytes);
            } else {
                for (Index c : out_chunks)
                    out_bytes += static_cast<double>(
                        state.chunkStoredBytes(c));
            }

            // Compress/D2H-time integrity: checksum every tracked
            // outbound chunk (once per epoch) and refresh its
            // compressed sidecar when payload faults are armed. The
            // inline needsShip reject keeps the per-gate batch loop
            // free of out-of-line calls for already-tracked chunks.
            if (guard.active()) {
                for (Index c : out_chunks) {
                    if (!guard.needsShip(c))
                        continue;
                    guard.onShip(state.chunk(c), c,
                                 static_cast<std::int64_t>(gate_idx),
                                 injector, stats,
                                 state.chunkIsF32(c));
                }
            }

            // D2H of the updated chunks, under the same bounded-retry
            // policy as H2D.
            const VTime d2h_done = guardedTransfer(
                &injector, FaultPoint::D2H, retries,
                static_cast<std::int64_t>(gate_idx), stats, t,
                [&](VTime s) {
                    const VTime done = dev.d2hEngine().schedule(
                        s, m.contendedHostLink(dev.spec().d2h)
                               .transferTime(static_cast<std::uint64_t>(
                                   out_bytes)));
                    trace.record(phases::d2h, "xfer",
                                 dev.spec().name + ".d2h", s, done);
                    stats.add(statkeys::bytesD2h, out_bytes);
                    return done;
                });

            for (std::size_t i = at; i < end; ++i) {
                plan.membersInto(live_groups[i], member_scratch);
                for (Index c : member_scratch)
                    chunk_ready[c] = d2h_done;
            }
            slot_free[d][slot] = d2h_done;
            frontier = std::max(frontier, d2h_done);

            at = end;
        }

        if (!options().overlap) {
            // Naive: a device synchronization closes every gate.
            stats.add(statkeys::sync, options().syncLatency);
            VTime barrier = 0.0;
            for (int d = 0; d < num_devs; ++d)
                barrier = std::max(barrier,
                                   m.device(d).d2hEngine().freeAt());
            barrier += options().syncLatency;
            for (auto &sf : slot_free)
                for (auto &t : sf)
                    t = std::max(t, barrier);
        }

        if (options().prune)
            mask.involve(gate);
        ++gate_idx;
    }
    (void)gate_idx;

    stats.set("chunks.final", static_cast<double>(state.numChunks()));
    if (state.precision() == Precision::adaptive)
        stats.set("precision.promoted_chunks",
                  static_cast<double>(state.promotedChunks()));
    exportStorageStats(state, stats);
    return state.toFlat();
}

StateVector
StreamingEngine::executeResident(const Circuit &circuit,
                                 RunResult &result)
{
    auto &stats = result.stats;
    auto &trace = result.trace;
    Machine &m = machine();
    auto &dev = m.device(0);
    const int n = circuit.numQubits();
    const int chunk_bits = baseChunkBits(n);
    const bool narrow = options().precision == Precision::f32;
    const double per_amp_bytes =
        2.0 * static_cast<double>(ampStoredBytes(narrow));

    // The resident path moves the state across the bus exactly twice;
    // transfer faults still apply to both bulk transfers (per-chunk
    // integrity bookkeeping is a streaming-path concern).
    FaultInjector injector(FaultSpec::resolve(options().faultSpec),
                           options().faultSeed);
    ChunkedStateVector state(n, chunk_bits,
                             makeStorageConfig(options(), &injector));
    if (options().precision != Precision::f64)
        state.setPrecision(options().precision,
                           options().adaptiveThreshold);
    InvolvementMask mask(n, options().involvement);
    const int retries = options().transferRetries;

    // One bulk upload, kernels only, one bulk download. The bulk
    // transfers are priced at the stored (lane-aware) size; the
    // download re-reads it after the run since adaptive lanes may
    // have shifted.
    std::uint64_t total_bytes = state.totalStoredBytes();
    VTime t = guardedTransfer(
        &injector, FaultPoint::H2D, retries, -1, stats, 0.0,
        [&](VTime s) {
            const VTime done = dev.h2dEngine().schedule(
                s, m.contendedHostLink(dev.spec().h2d)
                       .transferTime(total_bytes));
            stats.add(statkeys::bytesH2d,
                      static_cast<double>(total_bytes));
            trace.record(phases::h2d, "xfer",
                         dev.spec().name + ".h2d", s, done);
            return done;
        });

    // Functional updates run sweep-at-a-time (one chunk-major pass
    // per sweep); the loop below keeps the per-gate kernel-time
    // bookkeeping of the resident model.
    const std::span<const Gate> all_gates{circuit.gates()};
    std::size_t sweep_end = 0;
    const ZeroPredicate chunk_dead =
        options().prune
            ? ZeroPredicate([&](Index c) {
                  return !mask.chunkIsLive(c, chunk_bits);
              })
            : ZeroPredicate{};

    std::vector<Index> live_groups;
    std::vector<Index> member_scratch;
    std::size_t gate_idx = 0;
    for (const Gate &gate : circuit.gates()) {
        if (gate_idx == sweep_end) {
            const Sweep sw = nextSweep(
                all_gates, gate_idx, chunk_bits,
                options().prune ? &mask : nullptr);
            applySweepChunked(
                state, all_gates.subspan(sw.begin, sw.size()),
                sw.globalBits, chunk_dead);
            sweep_end = sw.end;
            state.refreshPrecision();
        }
        ++gate_idx;
        const GatePlan plan(gate, n, chunk_bits);
        live_groups.clear();
        for (Index g = 0; g < plan.numGroups(); ++g) {
            bool any_live = !options().prune;
            if (!any_live) {
                plan.membersInto(g, member_scratch);
                any_live = std::any_of(
                    member_scratch.begin(), member_scratch.end(),
                    [&](Index c) {
                        return mask.chunkIsLive(c, chunk_bits);
                    });
            }
            if (any_live)
                live_groups.push_back(g);
        }
        const double frac =
            static_cast<double>(live_groups.size()) /
            static_cast<double>(plan.numGroups());
        const double flops = kernels::gateFlops(gate, n) * frac;
        const double bytes = static_cast<double>(stateSize(n)) *
                             per_amp_bytes * frac;
        const VTime dur = dev.kernelTime(flops, bytes);
        t = dev.compute().schedule(t, dur);
        trace.record(phases::compute, "kernel",
                     dev.spec().name + ".compute", t - dur, t);
        stats.add(statkeys::flopsDevice, flops);
        stats.add(statkeys::deviceMemBytes, bytes);
        stats.add(statkeys::gatesApplied, 1.0);
        if (options().prune)
            mask.involve(gate);
    }

    total_bytes = state.totalStoredBytes();
    guardedTransfer(
        &injector, FaultPoint::D2H, retries,
        static_cast<std::int64_t>(circuit.numGates()), stats, t,
        [&](VTime s) {
            const VTime done = dev.d2hEngine().schedule(
                s, m.contendedHostLink(dev.spec().d2h)
                       .transferTime(total_bytes));
            stats.add(statkeys::bytesD2h,
                      static_cast<double>(total_bytes));
            trace.record(phases::d2h, "xfer",
                         dev.spec().name + ".d2h", s, done);
            return done;
        });

    if (state.precision() == Precision::adaptive)
        stats.set("precision.promoted_chunks",
                  static_cast<double>(state.promotedChunks()));
    exportStorageStats(state, stats);
    return state.toFlat();
}

StateVector
StreamingEngine::executeSharded(const Circuit &circuit,
                                RunResult &result)
{
    auto &stats = result.stats;
    auto &trace = result.trace;
    Machine &m = machine();
    const int n = circuit.numQubits();
    const int num_devs = m.numDevices();
    const int chunk_bits = baseChunkBits(n);
    const bool narrow = options().precision == Precision::f32;
    const double per_amp_bytes =
        2.0 * static_cast<double>(ampStoredBytes(narrow));

    // The shard map is fixed for the run: chunk geometry stays at the
    // base size (a rechunk would re-shard the whole state, costing the
    // very all-to-all the top-bit split avoids), and exchanges ship
    // raw chunks — at NVLink-class peer bandwidth the codec is a loss.
    FaultInjector injector(FaultSpec::resolve(options().faultSpec),
                           options().faultSeed);
    ChunkedStateVector state(n, chunk_bits,
                             makeStorageConfig(options(), &injector));
    if (options().precision != Precision::f64)
        state.setPrecision(options().precision,
                           options().adaptiveThreshold);
    const ShardMap shard(state.numChunks(), num_devs);
    // Shard-balanced eviction: the residency layer prefers victims
    // from devices holding at least their balanced share.
    state.setDeviceMap(shard.deviceTable());
    InvolvementMask mask(n, options().involvement);
    const int retries = options().transferRetries;
    const bool payload_faults =
        injector.enabled(FaultPoint::Codec) ||
        injector.enabled(FaultPoint::Alloc);
    // One integrity ledger per device: chunks are checksummed against
    // the ledger of the device they leave, so a detected mismatch
    // names the faulty sender.
    std::vector<ChunkIntegrity> guards;
    guards.reserve(num_devs);
    for (int d = 0; d < num_devs; ++d)
        guards.emplace_back(options().verifyChunks,
                            payload_faults ? &codec_ : nullptr,
                            options().verifySampleChunks);
    const bool guarded = guards.front().active();
    if (guarded)
        for (auto &g : guards)
            g.reset(state.numChunks());

    // Tail of each device's schedule; kernels and outgoing transfers
    // chain from here.
    std::vector<VTime> dev_t(num_devs, 0.0);

    // Per-device stored bytes of its shard under current lanes (in
    // uniform modes this is just ownedCount * chunkBytes; adaptive
    // mixes lanes, so sum per chunk).
    const auto shard_stored_bytes = [&](int d) {
        std::uint64_t bytes = 0;
        for (Index c = 0; c < state.numChunks(); ++c)
            if (shard.device(c) == d)
                bytes += state.chunkStoredBytes(c);
        return bytes;
    };

    // Initial upload: every device loads its shard over its own host
    // link, all links concurrent but DRAM-contended.
    for (int d = 0; d < num_devs; ++d) {
        const Index owned = shard.ownedCount(d);
        if (owned == 0)
            continue;
        auto &dev = m.device(d);
        const std::uint64_t bytes = shard_stored_bytes(d);
        dev_t[d] = guardedTransfer(
            &injector, FaultPoint::H2D, retries, -1, stats, 0.0,
            [&](VTime s) {
                const VTime done = dev.h2dEngine().schedule(
                    s, m.contendedHostLink(dev.spec().h2d)
                           .transferTime(bytes));
                stats.add(statkeys::bytesH2d,
                          static_cast<double>(bytes));
                trace.record(phases::h2d, "xfer",
                             dev.spec().name + ".h2d", s, done);
                return done;
            });
    }

    const ZeroPredicate chunk_dead =
        options().prune
            ? ZeroPredicate([&](Index c) {
                  return !mask.chunkIsLive(c, chunk_bits);
              })
            : ZeroPredicate{};
    const std::function<bool(Index)> live_chunk =
        options().prune
            ? std::function<bool(Index)>([&](Index c) {
                  return mask.chunkIsLive(c, chunk_bits);
              })
            : std::function<bool(Index)>{};

    // One exchange direction: aggregate the transfers per (src, dst)
    // pair into one peer-link message each, serialized on the source's
    // egress port; every destination then waits for its arrivals.
    std::vector<double> pair_bytes(
        static_cast<std::size_t>(num_devs) * num_devs, 0.0);
    std::vector<VTime> arrive(num_devs, 0.0);
    const auto run_exchange =
        [&](const std::vector<PeerTransfer> &transfers,
            std::int64_t gate_tag) {
            if (transfers.empty())
                return;
            std::fill(pair_bytes.begin(), pair_bytes.end(), 0.0);
            for (const PeerTransfer &t : transfers) {
                pair_bytes[static_cast<std::size_t>(t.src) *
                               num_devs +
                           t.dst] +=
                    static_cast<double>(
                        state.chunkStoredBytes(t.chunk));
                // Ship-time checksum/sidecar against the sender's
                // ledger (idempotent within the epoch).
                if (guarded && guards[t.src].needsShip(t.chunk))
                    guards[t.src].onShip(
                        state.chunk(t.chunk), t.chunk, gate_tag,
                        injector, stats,
                        state.chunkIsF32(t.chunk));
            }
            std::fill(arrive.begin(), arrive.end(), 0.0);
            for (int s = 0; s < num_devs; ++s) {
                auto &src_dev = m.device(s);
                for (int d = 0; d < num_devs; ++d) {
                    const double bytes =
                        pair_bytes[static_cast<std::size_t>(s) *
                                       num_devs +
                                   d];
                    if (bytes <= 0.0)
                        continue;
                    const VTime done = guardedTransfer(
                        &injector, FaultPoint::Peer, retries,
                        gate_tag, stats, dev_t[s], [&](VTime at) {
                            const VTime end =
                                src_dev.peerEngine().schedule(
                                    at,
                                    m.peerLink(s, d).transferTime(
                                        static_cast<std::uint64_t>(
                                            bytes)));
                            trace.record(phases::peer, "xchg",
                                         src_dev.spec().name +
                                             ".peer",
                                         at, end);
                            return end;
                        });
                    stats.add(statkeys::exchangeBytes, bytes);
                    arrive[d] = std::max(arrive[d], done);
                }
            }
            for (int d = 0; d < num_devs; ++d)
                dev_t[d] = std::max(dev_t[d], arrive[d]);
            stats.add(statkeys::exchangeChunks,
                      static_cast<double>(transfers.size()));
            // Receive-time verification at the destination, against
            // the sender's ledger.
            if (guarded) {
                for (const PeerTransfer &t : transfers) {
                    if (guards[t.src].needsReceive(t.chunk))
                        guards[t.src].onReceive(
                            state.chunk(t.chunk), t.chunk, gate_tag,
                            injector, stats,
                            state.chunkIsF32(t.chunk));
                }
            }
        };

    const std::span<const Gate> all_gates{circuit.gates()};
    std::vector<Index> member_scratch;
    std::vector<double> dev_groups(num_devs, 0.0);
    std::size_t gate_idx = 0;
    while (gate_idx < all_gates.size()) {
        const Sweep sw =
            nextSweep(all_gates, gate_idx, chunk_bits,
                      options().prune ? &mask : nullptr);
        // All cross-chunk gates of the sweep couple the same bits, so
        // the whole sweep pays at most one gather and one scatter.
        const ExchangePlan xplan =
            shard.exchangePlan(sw.globalBits, live_chunk);
        if (!xplan.empty())
            stats.add(statkeys::exchangePhases, 1.0);

        // The previous sweep rewrote chunk data: new ledger epoch,
        // then ship/verify the gathers against pre-sweep data.
        if (guarded)
            for (auto &g : guards)
                g.beginEpoch();
        run_exchange(xplan.gather,
                     static_cast<std::int64_t>(sw.begin));

        applySweepChunked(state,
                          all_gates.subspan(sw.begin, sw.size()),
                          sw.globalBits, chunk_dead);
        // Round fp32-lane chunks (and re-tag adaptive lanes) before
        // the scatter ships or checksums the post-sweep data.
        state.refreshPrecision();

        // During the sweep a chunk resides on the owner of its sweep
        // group (its home unless it was just gathered): the owner of
        // the member with every sweep-coupled bit cleared.
        std::uint64_t sweep_mask = 0;
        for (int b : sw.globalBits)
            sweep_mask |= Index{1} << b;
        const auto resident_dev = [&](Index c) {
            return shard.device(c & ~sweep_mask);
        };

        // Per-gate kernel scheduling: each device sweeps its share of
        // the live groups concurrently.
        for (std::size_t gi = sw.begin; gi < sw.end; ++gi) {
            const Gate &gate = all_gates[gi];
            const GatePlan plan(gate, n, chunk_bits);
            const int span = plan.chunksPerGroup();
            const double group_flops =
                kernels::gateFlops(gate, n) /
                static_cast<double>(plan.numGroups());

            std::fill(dev_groups.begin(), dev_groups.end(), 0.0);
            double live_groups = 0.0;
            for (Index g = 0; g < plan.numGroups(); ++g) {
                plan.membersInto(g, member_scratch);
                const bool any_live =
                    !options().prune ||
                    std::any_of(member_scratch.begin(),
                                member_scratch.end(), [&](Index c) {
                                    return mask.chunkIsLive(
                                        c, chunk_bits);
                                });
                if (!any_live)
                    continue;
                live_groups += 1.0;
                dev_groups[resident_dev(member_scratch.front())] +=
                    1.0;
            }
            const double live_chunks =
                live_groups * static_cast<double>(span);
            const double pruned_chunks =
                (static_cast<double>(plan.numGroups()) -
                 live_groups) *
                static_cast<double>(span);
            stats.add(statkeys::chunksProcessed, live_chunks);
            stats.add(statkeys::chunksPruned, pruned_chunks);
            stats.add(statkeys::gatesApplied, 1.0);
            if (options().prune && trace.enabled()) {
                VTime frontier = 0.0;
                for (VTime t : dev_t)
                    frontier = std::max(frontier, t);
                trace.record(
                    phases::prune, "decide", "host.prune", frontier,
                    frontier,
                    {{statkeys::chunksProcessed, live_chunks},
                     {statkeys::chunksPruned, pruned_chunks}});
            }

            for (int d = 0; d < num_devs; ++d) {
                if (dev_groups[d] <= 0.0)
                    continue;
                auto &dev = m.device(d);
                const double flops = dev_groups[d] * group_flops;
                const double kbytes =
                    dev_groups[d] * static_cast<double>(span) *
                    static_cast<double>(state.chunkSize()) *
                    per_amp_bytes;
                const VTime dur = dev.kernelTime(flops, kbytes);
                dev_t[d] = dev.compute().schedule(dev_t[d], dur);
                trace.record(phases::compute, "kernel",
                             dev.spec().name + ".compute",
                             dev_t[d] - dur, dev_t[d]);
                stats.add(statkeys::flopsDevice, flops);
                stats.add(statkeys::deviceMemBytes, kbytes);
            }

            if (options().prune)
                mask.involve(gate);
        }

        // The sweep rewrote chunk data: scatter ships post-sweep
        // payloads under a fresh ledger epoch.
        if (guarded)
            for (auto &g : guards)
                g.beginEpoch();
        run_exchange(xplan.scatter,
                     static_cast<std::int64_t>(sw.end) - 1);

        gate_idx = sw.end;
    }

    // Final drain: every device ships its shard home concurrently.
    for (int d = 0; d < num_devs; ++d) {
        const Index owned = shard.ownedCount(d);
        if (owned == 0)
            continue;
        auto &dev = m.device(d);
        const std::uint64_t bytes = shard_stored_bytes(d);
        guardedTransfer(
            &injector, FaultPoint::D2H, retries,
            static_cast<std::int64_t>(circuit.numGates()), stats,
            dev_t[d], [&](VTime s) {
                const VTime done = dev.d2hEngine().schedule(
                    s, m.contendedHostLink(dev.spec().d2h)
                           .transferTime(bytes));
                stats.add(statkeys::bytesD2h,
                          static_cast<double>(bytes));
                trace.record(phases::d2h, "xfer",
                             dev.spec().name + ".d2h", s, done);
                return done;
            });
    }

    stats.set("chunks.final",
              static_cast<double>(state.numChunks()));
    if (state.precision() == Precision::adaptive)
        stats.set("precision.promoted_chunks",
                  static_cast<double>(state.promotedChunks()));
    exportStorageStats(state, stats);
    return state.toFlat();
}

} // namespace qgpu
