/**
 * @file
 * The six execution versions of the paper's evaluation (§V) as a
 * factory: Baseline, Naive, Overlap, Pruning, Reorder, and the full
 * Q-GPU (Compression).
 */

#ifndef QGPU_ENGINE_VERSIONS_HH
#define QGPU_ENGINE_VERSIONS_HH

#include <memory>
#include <vector>

#include "engine/execution.hh"

namespace qgpu
{

/** Paper execution versions, in presentation order. */
enum class Version
{
    Baseline,
    Naive,
    Overlap,
    Pruning,
    Reorder,
    QGpu,
};

const char *versionName(Version v);

/** All six versions in paper order. */
const std::vector<Version> &allVersions();

/**
 * Build the engine for @p version over @p machine. @p base carries the
 * shared knobs (chunk count, sampling, timeline); the version's
 * feature flags override the relevant fields.
 */
std::unique_ptr<ExecutionEngine>
makeVersion(Version version, Machine &machine, ExecOptions base = {});

} // namespace qgpu

#endif // QGPU_ENGINE_VERSIONS_HH
