/**
 * @file
 * Shot-batched execution: classify / prune / reorder / sweep-schedule
 * ONCE, then execute N seeded shots over the cached schedule. This is
 * the stochastic workload class real simulators spend their cycles on
 * (noisy multi-shot jobs); batching lets every Q-GPU optimization
 * amortize across shots.
 *
 * ## Determinism contract
 *
 * Shot i runs on its own RNG, seeded with splitSeed(base, i). Every
 * stochastic draw — error sampling, the outcome draw, readout flips —
 * happens on the single-threaded driver path in the documented order
 * (noise/model.hh), so a (circuit, options, noise spec, seed) tuple
 * reproduces outcomes bit-identically across host thread counts,
 * device counts, and chunk storage backends. Per-shot states obey
 * the repo-wide bit-identity contract: a noisy shot equals a flat
 * gate-by-gate replay of its expanded circuit at tolerance 0.
 *
 * ## Noise × pruning
 *
 * A sampled X/Y on a not-yet-involved qubit invalidates the
 * involvement mask: the pruner would keep skipping chunks that now
 * hold weight. The two batch modes resolve this differently:
 *
 *   Shared   the plan is built under a CONSERVATIVE UNION mask —
 *            ideal involvement ∪ every qubit any shot's noise could
 *            touch non-diagonally (NoiseModel::touchableBits). The
 *            noise-aware sweep rule (sched/sweep.hh) closes a sweep
 *            at each gate whose attached noise can arm a new qubit,
 *            so arming only changes the zero predicate at sweep
 *            boundaries and the predicate stays sweep-constant, as
 *            applySweepChunked requires. All shots replay one
 *            partition; shots where the error did not fire simply
 *            carry zero weight in the extra live chunks (exactness
 *            of pruning is preserved — it is merely less tight).
 *
 *   PerShot  each shot materializes its sampled errors into an
 *            expanded circuit and runs the engine's normal path, so
 *            the mask is rebuilt from the EXACT per-shot
 *            touched-by-noise set. No schedule reuse — the
 *            correctness reference and the path for noise models
 *            whose pruning loss under the union mask matters.
 */

#ifndef QGPU_ENGINE_BATCHED_HH
#define QGPU_ENGINE_BATCHED_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "engine/execution.hh"
#include "fault/sim_error.hh"
#include "noise/model.hh"
#include "sched/sweep.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{

/** Outcome of one runBatched call. */
struct BatchResult
{
    std::string engine;
    std::uint64_t shots = 0;

    /** Post-readout measurement outcome of every shot, in order. */
    std::vector<Index> outcomes;

    /** Aggregated outcome -> count over all shots. */
    std::map<Index, std::uint64_t> counts;

    /** Per-shot final states (ExecOptions::keepShotStates only). */
    std::vector<StateVector> states;

    /** Real host seconds inside runBatched. */
    double wallSeconds = 0.0;

    /** Host seconds spent building the shared plan (Shared mode). */
    double scheduleSeconds = 0.0;

    /** shots.* / noise.* counters (statkeys). */
    StatSet stats;

    /**
     * Structured failure: the batch stops at the first shot whose
     * execution exhausts a fault-recovery policy; earlier shots'
     * outcomes are kept.
     */
    std::optional<SimError> error;

    bool ok() const { return !error.has_value(); }
};

/**
 * One sweep of the shared plan: the gate range and signature (as in
 * sched/sweep.hh) plus the union-mask liveness before and after the
 * sweep. liveBits gates the zero predicate while the sweep's gates
 * replay; postBits (liveBits ∪ the sweep's gate involvement ∪ its
 * boundary noise arming) gates error gates inserted at the sweep
 * boundary and becomes the next sweep's liveBits. All-ones when
 * pruning is off.
 */
struct PlanSweep
{
    std::size_t begin = 0;
    std::size_t end = 0;
    std::vector<int> globalBits;
    std::uint64_t liveBits = ~std::uint64_t{0};
    std::uint64_t postBits = ~std::uint64_t{0};
};

/**
 * The build-once artifact Shared mode replays per shot: the executed
 * gate order (reordering and fusion applied), a fixed chunk
 * geometry, the noise-aware sweep partition, and each gate's
 * armable-noise mask.
 */
struct ShotPlan
{
    Circuit ordered{1};
    int chunkBits = 0;
    bool prune = false;
    std::vector<PlanSweep> sweeps;
    /** Per executed gate: NoiseModel::touchableBits. */
    std::vector<std::uint64_t> noiseBits;
    /** Gate sites whose noise closes a sweep (armed sites). */
    std::uint64_t armedSites = 0;
};

/**
 * Build the shared plan for @p circuit under @p options and
 * @p model. Exposed for the scheduler tests; runBatched calls it
 * internally.
 */
ShotPlan buildShotPlan(const Circuit &circuit,
                       const ExecOptions &options, int chunk_bits,
                       const noise::NoiseModel &model);

} // namespace qgpu

#endif // QGPU_ENGINE_BATCHED_HH
