/**
 * @file
 * Minimal gem5-style status/error reporting: panic for internal bugs,
 * fatal for user errors, warn/inform for status messages.
 */

#ifndef QGPU_COMMON_LOGGING_HH
#define QGPU_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace qgpu
{

/** Verbosity levels for inform(). */
enum class LogLevel { Quiet, Normal, Verbose };

/** Process-wide log verbosity; defaults to Normal. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg, LogLevel level);

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/**
 * Abort on a condition that indicates a bug in the simulator itself.
 */
#define QGPU_PANIC(...) \
    ::qgpu::detail::panicImpl(__FILE__, __LINE__, \
                              ::qgpu::detail::format(__VA_ARGS__))

/**
 * Exit on a condition that is the user's fault (bad configuration,
 * invalid arguments).
 */
#define QGPU_FATAL(...) \
    ::qgpu::detail::fatalImpl(__FILE__, __LINE__, \
                              ::qgpu::detail::format(__VA_ARGS__))

/** Warn about suspicious but survivable conditions. */
#define QGPU_WARN(...) \
    ::qgpu::detail::warnImpl(::qgpu::detail::format(__VA_ARGS__))

/** Normal-priority status message. */
#define QGPU_INFORM(...) \
    ::qgpu::detail::informImpl(::qgpu::detail::format(__VA_ARGS__), \
                               ::qgpu::LogLevel::Normal)

} // namespace qgpu

#endif // QGPU_COMMON_LOGGING_HH
