/**
 * @file
 * Named statistic counters. Every execution engine exposes its byte,
 * flop, and per-phase virtual-time counters through a StatSet so the
 * bench harness can print breakdowns the way nvprof/Nsight would.
 */

#ifndef QGPU_COMMON_STATS_HH
#define QGPU_COMMON_STATS_HH

#include <map>
#include <string>
#include <vector>

namespace qgpu
{

/**
 * An ordered collection of named double-valued counters.
 *
 * Counters are created on first use and remember insertion order so
 * reports are stable.
 */
class StatSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void add(const std::string &name, double delta);

    /** Set counter @p name to @p value. */
    void set(const std::string &name, double value);

    /** Value of counter @p name; zero if absent. */
    double get(const std::string &name) const;

    /** True iff the counter exists. */
    bool has(const std::string &name) const;

    /** Counter names in insertion order. */
    const std::vector<std::string> &names() const { return order_; }

    /** Merge: add every counter of @p other into this set. */
    void merge(const StatSet &other);

    /** Reset all counters to zero (names retained). */
    void clear();

    /** Multi-line "name = value" dump. */
    std::string toString() const;

  private:
    std::map<std::string, double> values_;
    std::vector<std::string> order_;
};

} // namespace qgpu

#endif // QGPU_COMMON_STATS_HH
