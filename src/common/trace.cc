#include "common/trace.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace qgpu
{

namespace
{

using Interval = std::pair<double, double>;

/** Sort + merge into disjoint intervals. */
std::vector<Interval>
unionOf(std::vector<Interval> v)
{
    std::vector<Interval> out;
    std::sort(v.begin(), v.end());
    for (const auto &iv : v) {
        if (iv.second <= iv.first)
            continue;
        if (!out.empty() && iv.first <= out.back().second)
            out.back().second = std::max(out.back().second, iv.second);
        else
            out.push_back(iv);
    }
    return out;
}

/** a \ b for disjoint sorted interval sets. */
std::vector<Interval>
subtract(const std::vector<Interval> &a, const std::vector<Interval> &b)
{
    std::vector<Interval> out;
    std::size_t j = 0;
    for (auto [lo, hi] : a) {
        while (j < b.size() && b[j].second <= lo)
            ++j;
        double cur = lo;
        for (std::size_t k = j; k < b.size() && b[k].first < hi; ++k) {
            if (b[k].first > cur)
                out.push_back({cur, b[k].first});
            cur = std::max(cur, b[k].second);
        }
        if (cur < hi)
            out.push_back({cur, hi});
    }
    return out;
}

double
length(const std::vector<Interval> &v)
{
    double total = 0.0;
    for (const auto &iv : v)
        total += iv.second - iv.first;
    return total;
}

} // namespace

void
Trace::record(const std::string &phase, const std::string &label,
              const std::string &resource, VTime start, VTime end,
              std::vector<std::pair<std::string, double>> counters)
{
    if (enabled_)
        spans_.push_back({phase, label, resource, start, end,
                          openDepth_, std::move(counters)});
}

void
Trace::clear()
{
    spans_.clear();
    openDepth_ = 0;
}

VTime
Trace::horizon() const
{
    VTime horizon = 0.0;
    for (const auto &span : spans_)
        horizon = std::max(horizon, span.end);
    return horizon;
}

double
Trace::coveredTime() const
{
    std::vector<Interval> all;
    all.reserve(spans_.size());
    for (const auto &span : spans_)
        all.push_back({span.start, span.end});
    return length(unionOf(all));
}

const std::vector<std::string> &
Trace::defaultPriority()
{
    static const std::vector<std::string> order = {
        phases::compute, phases::compress,    phases::h2d,
        phases::d2h,     phases::hostCompute, phases::prune,
    };
    return order;
}

std::map<std::string, PhaseTotal>
Trace::phaseTotals(const std::vector<std::string> &priority) const
{
    std::map<std::string, PhaseTotal> totals;
    std::map<std::string, std::vector<Interval>> by_phase;
    std::vector<std::string> order = priority;
    for (const auto &span : spans_) {
        auto &total = totals[span.phase];
        total.busy += span.duration();
        ++total.spans;
        by_phase[span.phase].push_back({span.start, span.end});
        if (std::find(order.begin(), order.end(), span.phase) ==
            order.end()) {
            order.push_back(span.phase);
        }
    }
    // Exposure: each phase keeps what no higher-priority phase covers.
    std::vector<Interval> higher;
    for (const auto &phase : order) {
        auto it = by_phase.find(phase);
        if (it == by_phase.end())
            continue;
        const auto mine = unionOf(std::move(it->second));
        totals[phase].exposed = length(subtract(mine, higher));
        higher.insert(higher.end(), mine.begin(), mine.end());
        higher = unionOf(std::move(higher));
    }
    return totals;
}

std::string
jsonEscape(const std::string &s)
{
    std::ostringstream os;
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    return os.str();
}

std::string
Trace::toJson(bool with_spans) const
{
    std::ostringstream os;
    os.precision(12);
    os << "{\"horizon\": " << horizon()
       << ", \"covered\": " << coveredTime() << ", \"phases\": {";
    bool first = true;
    for (const auto &[phase, total] : phaseTotals()) {
        os << (first ? "" : ", ") << '"' << jsonEscape(phase)
           << "\": {\"busy\": " << total.busy
           << ", \"exposed\": " << total.exposed
           << ", \"spans\": " << total.spans << "}";
        first = false;
    }
    os << "}";
    if (with_spans) {
        os << ", \"spans\": [";
        for (std::size_t i = 0; i < spans_.size(); ++i) {
            const auto &span = spans_[i];
            os << (i ? ", " : "") << "{\"phase\": \""
               << jsonEscape(span.phase) << "\", \"label\": \""
               << jsonEscape(span.label) << "\", \"resource\": \""
               << jsonEscape(span.resource)
               << "\", \"start\": " << span.start
               << ", \"end\": " << span.end
               << ", \"depth\": " << span.depth;
            if (!span.counters.empty()) {
                os << ", \"counters\": {";
                for (std::size_t c = 0; c < span.counters.size(); ++c)
                    os << (c ? ", " : "") << '"'
                       << jsonEscape(span.counters[c].first)
                       << "\": " << span.counters[c].second;
                os << "}";
            }
            os << "}";
        }
        os << "]";
    }
    os << "}";
    return os.str();
}

std::string
Trace::toCsv() const
{
    std::ostringstream os;
    os.precision(12);
    os << "phase,label,resource,start,end,depth,counters\n";
    for (const auto &span : spans_) {
        os << span.phase << ',' << span.label << ',' << span.resource
           << ',' << span.start << ',' << span.end << ','
           << span.depth << ',';
        for (std::size_t c = 0; c < span.counters.size(); ++c)
            os << (c ? ";" : "") << span.counters[c].first << '='
               << span.counters[c].second;
        os << '\n';
    }
    return os.str();
}

ScopedSpan::ScopedSpan(Trace &trace, std::string phase,
                       std::string label)
    : trace_(trace), phase_(std::move(phase)), label_(std::move(label))
{
    startSec_ = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() -
                    trace_.wallEpoch_)
                    .count();
    ++trace_.openDepth_;
}

ScopedSpan::~ScopedSpan()
{
    const double end = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() -
                           trace_.wallEpoch_)
                           .count();
    --trace_.openDepth_;
    trace_.record(phase_, label_, "wall", startSec_, end,
                  std::move(counters_));
}

void
ScopedSpan::counter(const std::string &name, double delta)
{
    for (auto &[key, value] : counters_) {
        if (key == name) {
            value += delta;
            return;
        }
    }
    counters_.push_back({name, delta});
}

} // namespace qgpu
