/**
 * @file
 * Minimal data-parallel helper for host-side state-vector passes: an
 * index range split across worker threads. This is the OpenMP-style
 * parallelism of the CPU comparators, kept dependency-free.
 */

#ifndef QGPU_COMMON_PARALLEL_HH
#define QGPU_COMMON_PARALLEL_HH

#include <cstdint>
#include <functional>

namespace qgpu
{

/**
 * Run @p body over [begin, end) split into contiguous sub-ranges, one
 * per worker. @p threads <= 1 (or a range smaller than @p min_grain)
 * runs inline on the calling thread.
 *
 * @param body callable taking (range_begin, range_end).
 */
void parallelFor(std::uint64_t begin, std::uint64_t end, int threads,
                 const std::function<void(std::uint64_t,
                                          std::uint64_t)> &body,
                 std::uint64_t min_grain = 1024);

/** Worker count used by StateVector::apply (default 1). */
int simThreads();

/** Set the worker count for subsequent host-side applies. */
void setSimThreads(int threads);

} // namespace qgpu

#endif // QGPU_COMMON_PARALLEL_HH
