/**
 * @file
 * Data-parallel helpers for host-side state-vector passes: an index
 * range split across the persistent process-wide thread pool (see
 * common/thread_pool.hh). This is the OpenMP-style parallelism of the
 * CPU comparators, kept dependency-free.
 *
 * Thread-count resolution, in priority order:
 *  1. setSimThreads(k) - explicit programmatic override;
 *  2. the QGPU_SIM_THREADS environment variable, read once on first
 *     use (honored by qgpu_sim, the harness, and every bench binary);
 *  3. the default of 1 (sequential, deterministic-by-default).
 * A value of 0 in either channel means "all hardware threads".
 *
 * Two dispatch guards keep small or oversubscribed work off the pool
 * (fan-out costs real microseconds; a range whose total work is
 * smaller than that is faster inline, and more workers than hardware
 * threads only adds scheduler churn):
 *  - requests above the hardware thread count are clamped to it
 *    (results are bit-identical at any worker count, so clamping is
 *    purely a performance decision);
 *  - callers that know their per-item cost pass @c cost_hint, and the
 *    range runs inline when (end - begin) * cost_hint falls under the
 *    tunable cutoff (setParallelCutoff / QGPU_PAR_CUTOFF, in
 *    amplitude-update units). A zero hint (the default) skips the
 *    cutoff, so sites with unknown item cost keep the old behavior.
 */

#ifndef QGPU_COMMON_PARALLEL_HH
#define QGPU_COMMON_PARALLEL_HH

#include <cstdint>
#include <functional>

namespace qgpu
{

/**
 * Run @p body over [begin, end) split into contiguous sub-ranges
 * executed concurrently on the shared thread pool. @p threads <= 1
 * (or a range smaller than @p min_grain, or estimated total work
 * @c (end - begin) * cost_hint under parallelCutoff() when
 * @p cost_hint > 0) runs inline on the calling thread. Requests above
 * the hardware thread count are clamped to it.
 *
 * If a body invocation throws, every other sub-range still runs to
 * completion and the first exception is rethrown on the calling
 * thread. Safe to call concurrently from several threads and to nest
 * (a pool task may itself call parallelFor).
 *
 * @param body callable taking (range_begin, range_end).
 * @param cost_hint estimated work per index in amplitude-update
 *        units; 0 means unknown (no small-work cutoff).
 */
void parallelFor(std::uint64_t begin, std::uint64_t end, int threads,
                 const std::function<void(std::uint64_t,
                                          std::uint64_t)> &body,
                 std::uint64_t min_grain = 1024,
                 double cost_hint = 0.0);

/**
 * Worker count used by the hot paths (flat apply, chunked group
 * fan-out, sweep executor, GFC codec). Defaults to 1 unless
 * QGPU_SIM_THREADS is set.
 */
int simThreads();

/**
 * Set the worker count for subsequent host-side passes. 0 resolves
 * to the hardware thread count; values outside [0, 256] are fatal.
 */
void setSimThreads(int threads);

/**
 * Small-work cutoff in amplitude-update units: ranges whose
 * (end - begin) * cost_hint estimate falls below this run inline.
 * Initialized from QGPU_PAR_CUTOFF (first use), default 16384.
 */
double parallelCutoff();

/** Override the small-work cutoff; <= 0 disables the cutoff. */
void setParallelCutoff(double cutoff);

} // namespace qgpu

#endif // QGPU_COMMON_PARALLEL_HH
