/**
 * @file
 * Plain-text table printer used by the bench harness to emit the rows
 * of each reproduced paper table/figure.
 */

#ifndef QGPU_COMMON_TABLE_HH
#define QGPU_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace qgpu
{

/**
 * A simple left-aligned text table with a header row.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision digits. */
    static std::string num(double value, int precision = 3);

    /** Render the table with aligned columns and a separator rule. */
    std::string toString() const;

    /** Render as comma-separated values (header + rows). */
    std::string toCsv() const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace qgpu

#endif // QGPU_COMMON_TABLE_HH
