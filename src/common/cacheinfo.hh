/**
 * @file
 * Detected CPU cache geometry and the block sizes derived from it.
 *
 * The sweep executor chains many kernels over a cache-resident tile
 * (sched/sweep.hh), the codec splits its passes into per-thread
 * slices, and the group scratch buffer is recycled across groups —
 * all three previously used fixed constants. The right numbers depend
 * on the machine: a tile that fits half of L2 keeps the chained
 * kernels' working set resident, a codec slice of a few L1 capacities
 * amortizes task-handoff overhead, and scratch capacity worth keeping
 * is bounded by what L3 could ever serve quickly.
 *
 * Geometry is read once from
 * /sys/devices/system/cpu/cpu0/cache/index* (Linux); every level can
 * be overridden with QGPU_L1D_BYTES / QGPU_L2_BYTES / QGPU_L3_BYTES
 * (plain bytes, or with a K/M/G suffix). Unparseable or missing
 * levels fall back to conservative defaults (32K / 1M / 8M).
 *
 * All derived sizes are pure functions of the geometry, so overriding
 * the environment variables reproduces another machine's blocking
 * exactly — the differential contracts do not depend on any of this
 * (tiling splits kernels on work-item boundaries, which is
 * bit-identical by the kernel range contract in kernel_dispatch.hh).
 */

#ifndef QGPU_COMMON_CACHEINFO_HH
#define QGPU_COMMON_CACHEINFO_HH

#include <cstdint>

#include "common/types.hh"

namespace qgpu
{

/** Per-core data-cache capacities in bytes. */
struct CacheGeometry
{
    std::uint64_t l1dBytes = 32u * 1024;
    std::uint64_t l2Bytes = 1024u * 1024;
    std::uint64_t l3Bytes = 8u * 1024 * 1024;

    /** True when at least one level was read from sysfs (as opposed
     *  to the fallback defaults); env overrides also count. */
    bool detected = false;
};

/**
 * Detect geometry afresh: sysfs first, then env overrides, then
 * defaults for anything still missing. Exposed (rather than only the
 * cached accessor) so tests can exercise the override parsing.
 */
CacheGeometry detectCacheGeometry();

/** The process-wide geometry, detected once on first use. */
const CacheGeometry &cacheGeometry();

/**
 * log2 of the sweep tile, in amplitudes: the largest power of two
 * whose amplitudes fill at most half of L2 (the other half is left
 * for the gate LUTs, the chunk's neighbours, and prefetch), clamped
 * to [10, 26]. applySweepChunked re-clamps per sweep so a tile never
 * splits a kernel's target span.
 */
int sweepTileBits(const CacheGeometry &g = cacheGeometry());

/**
 * Codec pass grain in 64-bit words: the minimum slice of a GFC
 * compress/decompress pass worth handing to another thread — four L1
 * capacities, clamped to [2^12, 2^17]. Affects slicing only, never
 * bytes: the stream layout is fixed by the segment count.
 */
Index codecGrainWords(const CacheGeometry &g = cacheGeometry());

/**
 * Amplitude capacity worth RETAINING in a recycled scratch buffer
 * (GroupScratch): half of L3. Buffers grow past this for a single
 * oversized group but are trimmed back afterwards instead of pinning
 * the high-water mark for the rest of the run.
 */
std::size_t scratchRetainAmps(const CacheGeometry &g = cacheGeometry());

/**
 * Detect total host RAM afresh: QGPU_HOST_RAM_BYTES (plain bytes or
 * K/M/G suffix) wins, then /proc/meminfo MemTotal, then a
 * conservative 8G default. Exposed so tests can exercise the
 * override; hostRamBytes() is the cached accessor everything else
 * uses (it sizes the default compressed-storage working set).
 */
std::uint64_t detectHostRamBytes();

/** The process-wide host RAM size, detected once on first use. */
std::uint64_t hostRamBytes();

} // namespace qgpu

#endif // QGPU_COMMON_CACHEINFO_HH
