/**
 * @file
 * Span-based execution tracing. Engines tag every scheduled piece of
 * work with an execution *phase* (h2d, compute, d2h, compress, ...)
 * and record it as a span over virtual time; host-side code can open
 * nestable RAII spans measured in wall time. A Trace aggregates spans
 * into per-phase totals — both *busy* time (sum of span durations)
 * and *exposed* time (the part of the run each phase occupies on the
 * critical path, computed by interval union with a phase priority) —
 * and exports them as JSON or CSV. The exposed totals are the
 * measurement contract for the paper's breakdown figures (Figs. 2/4/
 * 13/14): they partition the covered run time, so per-phase exposed
 * values sum to the wall time minus idle gaps.
 */

#ifndef QGPU_COMMON_TRACE_HH
#define QGPU_COMMON_TRACE_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace qgpu
{

/** Canonical phase names recorded by the engines. */
namespace phases
{
inline constexpr const char *h2d = "h2d";
inline constexpr const char *d2h = "d2h";
/** GPU-to-GPU exchange transfers (multi-device sharding). */
inline constexpr const char *peer = "peer";
inline constexpr const char *compute = "compute";
/** Codec work, both directions (labels "cmp"/"dec" distinguish). */
inline constexpr const char *compress = "compress";
inline constexpr const char *hostCompute = "host_compute";
/** Zero-length prune-decision markers carrying live/pruned counters. */
inline constexpr const char *prune = "prune";
inline constexpr const char *other = "other";
} // namespace phases

/** One traced span of work. */
struct TraceSpan
{
    std::string phase;    ///< canonical phase (see qgpu::phases)
    std::string label;    ///< timeline mark, e.g. "kernel", "xfer"
    std::string resource; ///< scheduling resource, e.g. "p100:0.h2d"
    VTime start = 0.0;
    VTime end = 0.0;
    int depth = 0; ///< nesting depth (scoped spans only)
    /** Counters attached to this span (bytes, chunks, ratios...). */
    std::vector<std::pair<std::string, double>> counters;

    VTime duration() const { return end - start; }
};

/** Per-phase aggregate over a trace. */
struct PhaseTotal
{
    double busy = 0.0;    ///< sum of span durations
    double exposed = 0.0; ///< critical-path share (partition of run)
    std::uint64_t spans = 0;
};

/**
 * An append-only collection of spans. Recording is disabled by
 * default so the engines' hot path does not allocate.
 */
class Trace
{
  public:
    void enable() { enabled_ = true; }
    bool enabled() const { return enabled_; }

    /** Record a span over virtual time (no-op when disabled). */
    void
    record(const std::string &phase, const std::string &label,
           const std::string &resource, VTime start, VTime end)
    {
        if (enabled_)
            spans_.push_back({phase, label, resource, start, end,
                              openDepth_, {}});
    }

    /** Record a span carrying counters (no-op when disabled). */
    void record(const std::string &phase, const std::string &label,
                const std::string &resource, VTime start, VTime end,
                std::vector<std::pair<std::string, double>> counters);

    const std::vector<TraceSpan> &spans() const { return spans_; }
    bool empty() const { return spans_.empty(); }
    void clear();

    /** Latest span end. */
    VTime horizon() const;

    /** Length of the union of all span intervals (run minus idle). */
    double coveredTime() const;

    /**
     * Aggregate per-phase busy/exposed totals. Exposure attributes
     * each covered instant to the highest-priority phase active at
     * that instant, so exposed totals partition coveredTime().
     * Phases absent from @p priority rank after it, in first-seen
     * order.
     */
    std::map<std::string, PhaseTotal>
    phaseTotals(const std::vector<std::string> &priority =
                    defaultPriority()) const;

    /** compute > compress > h2d > d2h > host_compute > prune. */
    static const std::vector<std::string> &defaultPriority();

    /**
     * JSON object: {"horizon": .., "covered": .., "phases": {name:
     * {"busy","exposed","spans"}}, "spans": [...]}. Spans carry their
     * counters; @p with_spans false drops the span array for compact
     * summaries.
     */
    std::string toJson(bool with_spans = true) const;

    /** CSV: header + one row per span (counters flattened as k=v). */
    std::string toCsv() const;

  private:
    friend class ScopedSpan;

    bool enabled_ = false;
    int openDepth_ = 0;
    std::vector<TraceSpan> spans_;
    std::chrono::steady_clock::time_point wallEpoch_ =
        std::chrono::steady_clock::now();
};

/**
 * RAII wall-clock span for host-side code (harness, benches, CLI).
 * Opens on construction, records on destruction; nesting depth is
 * tracked through the owning Trace. Times are seconds since the
 * trace's construction, so scoped spans and a fresh trace share an
 * origin.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Trace &trace, std::string phase, std::string label);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Attach a counter to the span recorded at scope exit. */
    void counter(const std::string &name, double delta);

  private:
    Trace &trace_;
    std::string phase_;
    std::string label_;
    double startSec_;
    std::vector<std::pair<std::string, double>> counters_;
};

/** Escape a string for embedding in a JSON document. */
std::string jsonEscape(const std::string &s);

} // namespace qgpu

#endif // QGPU_COMMON_TRACE_HH
