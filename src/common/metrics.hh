/**
 * @file
 * Process-wide metrics registry: named monotonic counters and value
 * histograms, thread-safe, with JSON and CSV exporters. Engines and
 * the harness publish per-run headline numbers here so long-lived
 * processes (sweeps, services) can report aggregates without keeping
 * every RunResult alive. Complements StatSet, which is per-run and
 * unsynchronized.
 *
 * Canonical names published by the harness:
 *   runs.total              counter, one per completed run
 *   runs.<engine>           counter, one per run of that engine
 *   run.total_time          histogram of virtual run times (s)
 *   run.bytes_h2d           histogram of host-to-device bytes
 *   run.bytes_d2h           histogram of device-to-host bytes
 *
 * Wall-clock histograms (real seconds, next to the virtual times, so
 * host-parallelism speedups are measurable in-process):
 *   run.wall_time           histogram of engine-run wall seconds
 *   apply.wall_time         histogram of per-gate chunked/flat apply
 *                           wall seconds
 *
 * Kernel-dispatch counters (statevec/kernel_dispatch.hh), one pair
 * per KernelKind name (diag1q, diag2q, diagk, perm1q, ctrl1q,
 * dense1q, dense2q, densek):
 *   kernel.<kind>.invocations  counter, one per gate application
 *   kernel.<kind>.amps         counter, amplitudes touched (recorded
 *                              once per gate per sweep with the full
 *                              modeled total, never per chunk)
 *
 * Sweep-executor counters (statevec/apply.hh, applySweepChunked; the
 * memory-traffic model is passes-over-the-state = sweeps, not gates):
 *   sweep.count             counter, one per executed sweep
 *   sweep.state_passes      counter, full passes over the chunked
 *                           state (equals sweep.count; named for what
 *                           it measures)
 *   sweep.gates_per_sweep   histogram of gates batched per sweep
 *
 * Chunk-integrity counters (fault/integrity.hh; accumulated per run
 * in the StatSet and mirrored here by ExecutionEngine::run, nonzero
 * entries only):
 *   integrity.checksum.computed   chunk checksums recorded at
 *                                 compress/D2H time
 *   integrity.checksum.verified   successful H2D/decompress-time
 *                                 verifications
 *   integrity.checksum.mismatch   corruptions detected (and then
 *                                 recovered via the raw fallback)
 *   integrity.fallback.raw        chunks recovered from / degraded to
 *                                 their raw payload
 *   integrity.fault.<point>       injected faults per point (h2d,
 *                                 d2h, codec, alloc)
 *   integrity.retry.h2d / .d2h    transfer attempts repeated after an
 *                                 injected failure
 *   integrity.sim_error           runs ended by a structured SimError
 *   runs.failed                   runs whose RunResult carries an
 *                                 error (harness::publishRunMetrics)
 *
 * Chunk-storage counters (statevec/chunk_storage.hh; per-run gauges
 * and counters exported by exportStorageStats and mirrored here by
 * ExecutionEngine::run, nonzero entries only):
 *   storage.compressed_chunks   chunks in the cold backend at run end
 *   storage.evictions           working-set evictions performed
 *   storage.decompress_hits     accesses served by a resident slot
 *   storage.decompress_misses   accesses that decoded from cold
 *   storage.zero_fills          refills served by zero-filling
 *   storage.resident_bytes      decompressed working-set bytes
 *   storage.cold_bytes          compressed host bytes (cold chunks)
 *   storage.spill_bytes         scratch-file bytes (spill backend)
 *   storage.peak_host_bytes     high-water resident + cold bytes
 *   storage.verified            payload checksums verified on decode
 *   storage.retries             eviction-write verification retries
 *   storage.fallback_raw        evictions degraded to raw payloads
 *   storage.working_set         configured resident-chunk bound
 *
 * Batched-shot counters (engine/batched.hh; accumulated per batch in
 * BatchResult::stats and mirrored here by runBatched, nonzero entries
 * only):
 *   shots.total             shots executed across every batch
 *   shots.schedule_builds   shared sweep schedules built (one per
 *                           Shared-mode batch — the amortization)
 *   shots.plan_sweeps       sweeps in the shared plan
 *   shots.sweep_replays     sweep replays executed across all shots
 *   shots.sweep_splits      replays split mid-sweep by a sampled
 *                           error insertion
 *   noise.events            sampled error gates inserted
 *   noise.armed_sites       plan gate sites whose attached noise can
 *                           involve a new qubit (union-mask arming)
 *   noise.readout_flips     readout bit flips applied to outcomes
 *
 * Job-service counters (service/scheduler.hh; every JobService
 * mirrors its internal counters here, so a process hosting one
 * service reads them directly and a multi-service process reads
 * process-wide totals):
 *   service.submitted           jobs accepted past admission (any
 *                               outcome, including instant cache hits
 *                               and coalesced followers)
 *   service.rejected            submissions refused at admission
 *                               (invalid request, fast-math tier
 *                               mismatch, or full queue)
 *   service.completed           jobs that reached Done
 *   service.failed              jobs that reached Failed (structured
 *                               SimError; never takes the process
 *                               down)
 *   service.cancelled           queued jobs cancelled before dispatch
 *   service.cache.hit           result-cache lookups that hit
 *   service.cache.miss          result-cache lookups that missed
 *   service.singleflight.coalesced
 *                               submissions attached to an identical
 *                               in-flight leader instead of running
 *   service.queue_depth         gauge via +-1 deltas: jobs currently
 *                               queued (not yet dispatched)
 */

#ifndef QGPU_COMMON_METRICS_HH
#define QGPU_COMMON_METRICS_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace qgpu
{

/**
 * Monotonic wall-clock stopwatch, running from construction.
 * Complements the virtual VTime clocks: every hot path that got a
 * real parallel execution layer reports real seconds through one of
 * these into the wall-time histograms above.
 */
class WallClock
{
  public:
    WallClock() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction (or the last restart). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    void restart() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Streaming summary of observed values (no sample retention). */
class Histogram
{
  public:
    void observe(double value);
    void merge(const Histogram &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const;
    double max() const;
    double mean() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Named counters and histograms. Instances are independent (tests use
 * their own); global() is the process-wide registry.
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry. */
    static MetricsRegistry &global();

    /** Add @p delta to counter @p name (created at zero). */
    void add(const std::string &name, double delta = 1.0);

    /** Value of counter @p name; zero if absent. */
    double counter(const std::string &name) const;

    /** Record @p value into histogram @p name (created empty). */
    void observe(const std::string &name, double value);

    /** Copy of histogram @p name; empty histogram if absent. */
    Histogram histogram(const std::string &name) const;

    std::vector<std::string> counterNames() const;
    std::vector<std::string> histogramNames() const;

    /** Drop every counter and histogram. */
    void clear();

    /** {"counters": {...}, "histograms": {name: {summary...}}}. */
    std::string toJson() const;

    /** kind,name,count,sum,min,max,mean rows (counters: count=1). */
    std::string toCsv() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, double> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace qgpu

#endif // QGPU_COMMON_METRICS_HH
