/**
 * @file
 * Minimal JSON value model, parser, and writer for the service layer:
 * job requests arrive and results leave as single-line JSON objects
 * (one per line in a .jsonl trace), so the parser favors strictness
 * and smallness over speed. Complements the hand-rolled emitters in
 * trace/harness, which only ever WRITE JSON; replay needs to read it
 * back.
 *
 * Supported: objects, arrays, strings (with \uXXXX escapes decoded to
 * UTF-8), finite numbers, booleans, null. Rejected: trailing commas,
 * comments, NaN/Inf literals, unpaired surrogates.
 */

#ifndef QGPU_COMMON_JSON_HH
#define QGPU_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace qgpu
{

/**
 * One parsed JSON value. Object member order is not preserved (keys
 * are sorted by std::map); the service's schemas never rely on it.
 */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue makeObject(std::map<std::string, JsonValue> m);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; fatal on kind mismatch (programming error). */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;
    const std::map<std::string, JsonValue> &asObject() const;

    /** Object member, or nullptr when absent / not an object. */
    const JsonValue *find(const std::string &key) const;

    /// @name Schema helpers: member lookup with a typed default.
    /// @{
    double numberOr(const std::string &key, double fallback) const;
    bool boolOr(const std::string &key, bool fallback) const;
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;
    /// @}

    /** Serialize (compact, keys sorted, doubles at %.17g). */
    std::string toString() const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
};

/**
 * Parse @p text as exactly one JSON value (leading/trailing
 * whitespace allowed). Returns nullopt on any syntax error; @p error,
 * when non-null, receives a one-line description with the byte
 * offset.
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

/** Double formatted so parseJson round-trips it exactly (%.17g). */
std::string jsonNumber(double value);

} // namespace qgpu

#endif // QGPU_COMMON_JSON_HH
