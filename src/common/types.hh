/**
 * @file
 * Fundamental value types shared across the Q-GPU reproduction.
 */

#ifndef QGPU_COMMON_TYPES_HH
#define QGPU_COMMON_TYPES_HH

#include <complex>
#include <cstddef>
#include <cstdint>

namespace qgpu
{

/** A single state amplitude. The paper simulates in double precision. */
using Amp = std::complex<double>;

/** Index into a state vector; up to 2^63 amplitudes. */
using Index = std::uint64_t;

/** Virtual time in seconds as accrued by the device/host models. */
using VTime = double;

/** Bytes occupied by one amplitude. */
inline constexpr std::size_t ampBytes = sizeof(Amp);

/** Number of amplitudes in an n-qubit state vector. */
constexpr Index
stateSize(int num_qubits)
{
    return Index{1} << num_qubits;
}

/** Bytes occupied by an n-qubit state vector. */
constexpr std::uint64_t
stateBytes(int num_qubits)
{
    return stateSize(num_qubits) * ampBytes;
}

} // namespace qgpu

#endif // QGPU_COMMON_TYPES_HH
