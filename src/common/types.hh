/**
 * @file
 * Fundamental value types shared across the Q-GPU reproduction.
 */

#ifndef QGPU_COMMON_TYPES_HH
#define QGPU_COMMON_TYPES_HH

#include <complex>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace qgpu
{

/** A single state amplitude. The paper simulates in double precision. */
using Amp = std::complex<double>;

/** Index into a state vector; up to 2^63 amplitudes. */
using Index = std::uint64_t;

/** Virtual time in seconds as accrued by the device/host models. */
using VTime = double;

/** Bytes occupied by one amplitude. */
inline constexpr std::size_t ampBytes = sizeof(Amp);

/**
 * Amplitude storage precision. Computation always runs in double; the
 * precision selects how amplitudes are STORED between sweeps, which is
 * what every modeled transfer and the GFC codec move. @c f32 rounds
 * each component through IEEE single precision at sweep boundaries
 * (halving bytes per amplitude); @c adaptive keeps a per-chunk lane,
 * promoting a chunk back to f64 when its max-amplitude magnitude falls
 * below a configurable threshold.
 */
enum class Precision
{
    f64,
    f32,
    adaptive,
};

/** Canonical name of a precision mode ("f64" / "f32" / "adaptive"). */
constexpr const char *
precisionName(Precision p)
{
    switch (p) {
    case Precision::f32: return "f32";
    case Precision::adaptive: return "adaptive";
    case Precision::f64: break;
    }
    return "f64";
}

/**
 * Parse a precision name as printed by precisionName. Returns false
 * (leaving @p out untouched) for anything else.
 */
inline bool
parsePrecision(std::string_view name, Precision &out)
{
    if (name == "f64" || name == "double") {
        out = Precision::f64;
    } else if (name == "f32" || name == "single") {
        out = Precision::f32;
    } else if (name == "adaptive") {
        out = Precision::adaptive;
    } else {
        return false;
    }
    return true;
}

/** Stored bytes per amplitude under a (uniform) precision lane. */
constexpr std::size_t
ampStoredBytes(bool f32_lane)
{
    return f32_lane ? 2 * sizeof(float) : sizeof(Amp);
}

/**
 * Round one amplitude through fp32 storage: each component is the
 * nearest IEEE single, widened back to double. This is the exact value
 * an fp32-resident chunk holds after a store/load cycle.
 *
 * The components are forced through volatile float slots: GCC 12's
 * complex lowering at -O2 otherwise folds the double->float->double
 * round trip of std::complex components into a no-op move, silently
 * skipping the rounding (plain double values are narrowed correctly;
 * only the complex-typed path miscompiles). Bulk quantization should
 * prefer iterating a raw double view, which both rounds correctly
 * and vectorizes — see ChunkedStateVector::refreshPrecision.
 */
inline Amp
quantizeAmpF32(Amp a)
{
    volatile float re = static_cast<float>(a.real());
    volatile float im = static_cast<float>(a.imag());
    return Amp{static_cast<double>(re), static_cast<double>(im)};
}

/** Number of amplitudes in an n-qubit state vector. */
constexpr Index
stateSize(int num_qubits)
{
    return Index{1} << num_qubits;
}

/** Bytes occupied by an n-qubit state vector. */
constexpr std::uint64_t
stateBytes(int num_qubits)
{
    return stateSize(num_qubits) * ampBytes;
}

} // namespace qgpu

#endif // QGPU_COMMON_TYPES_HH
