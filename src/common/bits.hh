/**
 * @file
 * Bit-manipulation helpers used by the chunked state vector, the pruning
 * iterator, and the gate-application kernels.
 */

#ifndef QGPU_COMMON_BITS_HH
#define QGPU_COMMON_BITS_HH

#include <bit>
#include <cassert>
#include <cstdint>

#include "common/types.hh"

namespace qgpu
{
namespace bits
{

/** Mask with the low @p n bits set. */
constexpr std::uint64_t
lowMask(int n)
{
    return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

/** Test bit @p pos of @p value. */
constexpr bool
testBit(std::uint64_t value, int pos)
{
    return (value >> pos) & 1;
}

/** Set bit @p pos of @p value. */
constexpr std::uint64_t
setBit(std::uint64_t value, int pos)
{
    return value | (std::uint64_t{1} << pos);
}

/** Clear bit @p pos of @p value. */
constexpr std::uint64_t
clearBit(std::uint64_t value, int pos)
{
    return value & ~(std::uint64_t{1} << pos);
}

/**
 * Insert a zero bit at position @p pos, shifting the bits at and above
 * @p pos up by one. This is the standard trick for enumerating the
 * amplitude pairs touched by a gate on qubit @p pos: iterating i over
 * [0, 2^(n-1)) and inserting a zero at @p pos yields the index of the
 * |0> element of every pair exactly once.
 */
constexpr std::uint64_t
insertZeroBit(std::uint64_t value, int pos)
{
    const std::uint64_t low = value & lowMask(pos);
    const std::uint64_t high = (value >> pos) << (pos + 1);
    return high | low;
}

/**
 * Insert zero bits at every position in @p sorted_pos (ascending order),
 * lowest position first.
 */
template <typename Container>
constexpr std::uint64_t
insertZeroBits(std::uint64_t value, const Container &sorted_pos)
{
    std::uint64_t out = value;
    for (int pos : sorted_pos)
        out = insertZeroBit(out, pos);
    return out;
}

/** Number of trailing (low-order) one bits. */
constexpr int
trailingOnes(std::uint64_t value)
{
    return std::countr_one(value);
}

/** Number of set bits. */
constexpr int
popcount(std::uint64_t value)
{
    return std::popcount(value);
}

/** True iff @p value is a power of two (and non-zero). */
constexpr bool
isPow2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr int
log2Exact(std::uint64_t value)
{
    assert(isPow2(value));
    return std::countr_zero(value);
}

/** Ceiling division. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace bits
} // namespace qgpu

#endif // QGPU_COMMON_BITS_HH
