#include "common/parallel.hh"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace qgpu
{

namespace
{
int global_sim_threads = 1;
} // namespace

void
parallelFor(std::uint64_t begin, std::uint64_t end, int threads,
            const std::function<void(std::uint64_t, std::uint64_t)>
                &body,
            std::uint64_t min_grain)
{
    if (begin >= end)
        return;
    const std::uint64_t count = end - begin;
    const int usable = std::min<std::uint64_t>(
        threads <= 1 ? 1 : threads,
        std::max<std::uint64_t>(1, count / min_grain));
    if (usable <= 1) {
        body(begin, end);
        return;
    }

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(usable) - 1);
    const std::uint64_t per =
        (count + static_cast<std::uint64_t>(usable) - 1) /
        static_cast<std::uint64_t>(usable);
    for (int w = 1; w < usable; ++w) {
        const std::uint64_t lo =
            begin + per * static_cast<std::uint64_t>(w);
        const std::uint64_t hi = std::min(end, lo + per);
        if (lo >= hi)
            break;
        workers.emplace_back([&body, lo, hi] { body(lo, hi); });
    }
    body(begin, std::min(end, begin + per));
    for (auto &worker : workers)
        worker.join();
}

int
simThreads()
{
    return global_sim_threads;
}

void
setSimThreads(int threads)
{
    if (threads < 1 || threads > 256)
        QGPU_FATAL("bad thread count ", threads);
    global_sim_threads = threads;
}

} // namespace qgpu
