#include "common/parallel.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace qgpu
{

namespace
{

int
resolveThreads(int threads)
{
    return threads == 0 ? ThreadPool::hardwareThreads() : threads;
}

int
initialSimThreads()
{
    const char *env = std::getenv("QGPU_SIM_THREADS");
    if (!env || !*env)
        return 1;
    const int value = std::atoi(env);
    if (value < 0 || value > ThreadPool::kMaxWorkers) {
        QGPU_WARN("ignoring QGPU_SIM_THREADS='", env,
                  "' (want 0..", ThreadPool::kMaxWorkers, ")");
        return 1;
    }
    return resolveThreads(value);
}

int &
simThreadsRef()
{
    static int threads = initialSimThreads();
    return threads;
}

double
initialParallelCutoff()
{
    const char *env = std::getenv("QGPU_PAR_CUTOFF");
    if (!env || !*env)
        return 16384.0;
    char *tail = nullptr;
    const double value = std::strtod(env, &tail);
    if (tail == env) {
        QGPU_WARN("ignoring QGPU_PAR_CUTOFF='", env,
                  "' (want a number; <= 0 disables the cutoff)");
        return 16384.0;
    }
    return value;
}

double &
parallelCutoffRef()
{
    static double cutoff = initialParallelCutoff();
    return cutoff;
}

} // namespace

void
parallelFor(std::uint64_t begin, std::uint64_t end, int threads,
            const std::function<void(std::uint64_t, std::uint64_t)>
                &body,
            std::uint64_t min_grain, double cost_hint)
{
    if (begin >= end)
        return;
    const std::uint64_t count = end - begin;
    // Oversubscription clamp: extra workers past the hardware thread
    // count only add scheduling churn; results don't depend on the
    // worker count, so this is purely a dispatch decision.
    if (threads > ThreadPool::hardwareThreads())
        threads = ThreadPool::hardwareThreads();
    // Small-work cutoff for callers that know their per-item cost:
    // fan-out latency dominates ranges whose total estimated work is
    // under the cutoff, so run those inline.
    if (cost_hint > 0.0) {
        const double cutoff = parallelCutoffRef();
        if (cutoff > 0.0 &&
            static_cast<double>(count) * cost_hint < cutoff) {
            body(begin, end);
            return;
        }
    }
    const int usable = std::min<std::uint64_t>(
        threads <= 1 ? 1 : threads,
        std::max<std::uint64_t>(1, count / std::max<std::uint64_t>(
                                           1, min_grain)));
    if (usable <= 1) {
        body(begin, end);
        return;
    }

    auto &pool = ThreadPool::global();
    pool.ensureWorkers(usable - 1);
    const std::uint64_t per =
        (count + static_cast<std::uint64_t>(usable) - 1) /
        static_cast<std::uint64_t>(usable);
    TaskGroup group(pool);
    for (int w = 0; w < usable; ++w) {
        const std::uint64_t lo =
            begin + per * static_cast<std::uint64_t>(w);
        const std::uint64_t hi = std::min(end, lo + per);
        if (lo >= hi)
            break;
        group.run([&body, lo, hi] { body(lo, hi); });
    }
    // The calling thread drains queued sub-ranges itself, so the
    // first range typically runs right here, as before the pool.
    group.wait();
}

int
simThreads()
{
    return simThreadsRef();
}

void
setSimThreads(int threads)
{
    if (threads < 0 || threads > ThreadPool::kMaxWorkers)
        QGPU_FATAL("bad thread count ", threads);
    simThreadsRef() = resolveThreads(threads);
}

double
parallelCutoff()
{
    return parallelCutoffRef();
}

void
setParallelCutoff(double cutoff)
{
    parallelCutoffRef() = cutoff;
}

} // namespace qgpu
