#include "common/parallel.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace qgpu
{

namespace
{

int
resolveThreads(int threads)
{
    return threads == 0 ? ThreadPool::hardwareThreads() : threads;
}

int
initialSimThreads()
{
    const char *env = std::getenv("QGPU_SIM_THREADS");
    if (!env || !*env)
        return 1;
    const int value = std::atoi(env);
    if (value < 0 || value > ThreadPool::kMaxWorkers) {
        QGPU_WARN("ignoring QGPU_SIM_THREADS='", env,
                  "' (want 0..", ThreadPool::kMaxWorkers, ")");
        return 1;
    }
    return resolveThreads(value);
}

int &
simThreadsRef()
{
    static int threads = initialSimThreads();
    return threads;
}

} // namespace

void
parallelFor(std::uint64_t begin, std::uint64_t end, int threads,
            const std::function<void(std::uint64_t, std::uint64_t)>
                &body,
            std::uint64_t min_grain)
{
    if (begin >= end)
        return;
    const std::uint64_t count = end - begin;
    const int usable = std::min<std::uint64_t>(
        threads <= 1 ? 1 : threads,
        std::max<std::uint64_t>(1, count / std::max<std::uint64_t>(
                                           1, min_grain)));
    if (usable <= 1) {
        body(begin, end);
        return;
    }

    auto &pool = ThreadPool::global();
    pool.ensureWorkers(usable - 1);
    const std::uint64_t per =
        (count + static_cast<std::uint64_t>(usable) - 1) /
        static_cast<std::uint64_t>(usable);
    TaskGroup group(pool);
    for (int w = 0; w < usable; ++w) {
        const std::uint64_t lo =
            begin + per * static_cast<std::uint64_t>(w);
        const std::uint64_t hi = std::min(end, lo + per);
        if (lo >= hi)
            break;
        group.run([&body, lo, hi] { body(lo, hi); });
    }
    // The calling thread drains queued sub-ranges itself, so the
    // first range typically runs right here, as before the pool.
    group.wait();
}

int
simThreads()
{
    return simThreadsRef();
}

void
setSimThreads(int threads)
{
    if (threads < 0 || threads > ThreadPool::kMaxWorkers)
        QGPU_FATAL("bad thread count ", threads);
    simThreadsRef() = resolveThreads(threads);
}

} // namespace qgpu
