#include "common/cacheinfo.hh"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <string>

namespace qgpu
{

namespace
{

// Parse "48K", "2048K", "36M", "268435456", ... Returns 0 on failure.
std::uint64_t
parseSize(const std::string &text)
{
    std::size_t pos = 0;
    std::uint64_t value = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
        value = value * 10 + static_cast<std::uint64_t>(text[pos] - '0');
        ++pos;
    }
    if (pos == 0)
        return 0;
    if (pos < text.size()) {
        switch (std::toupper(static_cast<unsigned char>(text[pos]))) {
        case 'K': value <<= 10; break;
        case 'M': value <<= 20; break;
        case 'G': value <<= 30; break;
        case '\n':
        case '\r':
        case ' ': break;
        default: return 0;
        }
    }
    return value;
}

std::string
readLine(const std::string &path)
{
    std::ifstream in(path);
    std::string line;
    if (in)
        std::getline(in, line);
    return line;
}

// Read cpu0's cache levels from sysfs. Unified caches count for L2/L3;
// only the Data/Unified index feeds L1d.
bool
readSysfs(CacheGeometry &g)
{
    bool any = false;
    for (int index = 0; index < 8; ++index) {
        const std::string base =
            "/sys/devices/system/cpu/cpu0/cache/index" +
            std::to_string(index) + "/";
        const std::string level = readLine(base + "level");
        if (level.empty())
            continue;
        const std::string type = readLine(base + "type");
        if (type == "Instruction")
            continue;
        const std::uint64_t size = parseSize(readLine(base + "size"));
        if (size == 0)
            continue;
        if (level == "1")
            g.l1dBytes = size;
        else if (level == "2")
            g.l2Bytes = size;
        else if (level == "3")
            g.l3Bytes = size;
        else
            continue;
        any = true;
    }
    return any;
}

bool
envOverride(const char *name, std::uint64_t &out)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return false;
    const std::uint64_t parsed = parseSize(value);
    if (parsed == 0)
        return false;
    out = parsed;
    return true;
}

int
floorLog2(std::uint64_t v)
{
    return v == 0 ? 0 : 63 - std::countl_zero(v);
}

} // namespace

CacheGeometry
detectCacheGeometry()
{
    CacheGeometry g;
    g.detected = readSysfs(g);
    g.detected |= envOverride("QGPU_L1D_BYTES", g.l1dBytes);
    g.detected |= envOverride("QGPU_L2_BYTES", g.l2Bytes);
    g.detected |= envOverride("QGPU_L3_BYTES", g.l3Bytes);
    return g;
}

const CacheGeometry &
cacheGeometry()
{
    static const CacheGeometry g = detectCacheGeometry();
    return g;
}

int
sweepTileBits(const CacheGeometry &g)
{
    const int bits = floorLog2(g.l2Bytes / 2 / ampBytes);
    return std::clamp(bits, 10, 26);
}

Index
codecGrainWords(const CacheGeometry &g)
{
    const std::uint64_t words = 4 * g.l1dBytes / sizeof(std::uint64_t);
    return std::clamp<std::uint64_t>(words, Index{1} << 12,
                                     Index{1} << 17);
}

std::size_t
scratchRetainAmps(const CacheGeometry &g)
{
    return static_cast<std::size_t>(g.l3Bytes / 2 / ampBytes);
}

std::uint64_t
detectHostRamBytes()
{
    std::uint64_t bytes = 0;
    if (envOverride("QGPU_HOST_RAM_BYTES", bytes))
        return bytes;
    // /proc/meminfo: "MemTotal:       16054256 kB"
    std::ifstream in("/proc/meminfo");
    std::string line;
    while (in && std::getline(in, line)) {
        if (line.rfind("MemTotal:", 0) != 0)
            continue;
        std::size_t pos = line.find_first_of("0123456789");
        if (pos == std::string::npos)
            break;
        std::uint64_t kib = 0;
        while (pos < line.size() &&
               std::isdigit(static_cast<unsigned char>(line[pos]))) {
            kib = kib * 10 +
                  static_cast<std::uint64_t>(line[pos] - '0');
            ++pos;
        }
        if (kib > 0)
            return kib << 10;
        break;
    }
    return std::uint64_t{8} << 30;
}

std::uint64_t
hostRamBytes()
{
    static const std::uint64_t bytes = detectHostRamBytes();
    return bytes;
}

} // namespace qgpu
