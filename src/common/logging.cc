#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace qgpu
{

namespace
{
LogLevel global_level = LogLevel::Normal;
} // namespace

LogLevel
logLevel()
{
    return global_level;
}

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (global_level != LogLevel::Quiet)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg, LogLevel level)
{
    if (static_cast<int>(level) <= static_cast<int>(global_level))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace qgpu
