#include "common/stats.hh"

#include <sstream>

namespace qgpu
{

void
StatSet::add(const std::string &name, double delta)
{
    auto it = values_.find(name);
    if (it == values_.end()) {
        values_.emplace(name, delta);
        order_.push_back(name);
    } else {
        it->second += delta;
    }
}

void
StatSet::set(const std::string &name, double value)
{
    auto it = values_.find(name);
    if (it == values_.end()) {
        values_.emplace(name, value);
        order_.push_back(name);
    } else {
        it->second = value;
    }
}

double
StatSet::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &name : other.names())
        add(name, other.get(name));
}

void
StatSet::clear()
{
    for (auto &kv : values_)
        kv.second = 0.0;
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto &name : order_)
        os << name << " = " << values_.at(name) << "\n";
    return os.str();
}

} // namespace qgpu
