#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"
#include "common/trace.hh" // jsonEscape

namespace qgpu
{

JsonValue
JsonValue::makeNull()
{
    return JsonValue{};
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.array_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> m)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.object_ = std::move(m);
    return v;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        QGPU_PANIC("JsonValue: not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        QGPU_PANIC("JsonValue: not a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        QGPU_PANIC("JsonValue: not a string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (kind_ != Kind::Array)
        QGPU_PANIC("JsonValue: not an array");
    return array_;
}

const std::map<std::string, JsonValue> &
JsonValue::asObject() const
{
    if (kind_ != Kind::Object)
        QGPU_PANIC("JsonValue: not an object");
    return object_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    const auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v != nullptr && v->isNumber() ? v->asNumber() : fallback;
}

bool
JsonValue::boolOr(const std::string &key, bool fallback) const
{
    const JsonValue *v = find(key);
    return v != nullptr && v->isBool() ? v->asBool() : fallback;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v != nullptr && v->isString() ? v->asString() : fallback;
}

std::string
jsonNumber(double value)
{
    // %.17g round-trips every finite double; integral values print
    // without an exponent for readability.
    char buf[40];
    if (value == static_cast<double>(static_cast<long long>(value)) &&
        std::fabs(value) < 1e15) {
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(value));
    } else {
        std::snprintf(buf, sizeof buf, "%.17g", value);
    }
    return buf;
}

std::string
JsonValue::toString() const
{
    std::ostringstream os;
    switch (kind_) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::Number:
        os << jsonNumber(number_);
        break;
      case Kind::String:
        os << '"' << jsonEscape(string_) << '"';
        break;
      case Kind::Array: {
        os << '[';
        bool first = true;
        for (const JsonValue &v : array_) {
            os << (first ? "" : ", ") << v.toString();
            first = false;
        }
        os << ']';
        break;
      }
      case Kind::Object: {
        os << '{';
        bool first = true;
        for (const auto &[key, v] : object_) {
            os << (first ? "" : ", ") << '"' << jsonEscape(key)
               << "\": " << v.toString();
            first = false;
        }
        os << '}';
        break;
      }
    }
    return os.str();
}

namespace
{

/** Recursive-descent parser over a byte range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    std::optional<JsonValue>
    parse()
    {
        skipWs();
        JsonValue v;
        if (!parseValue(v))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters");
            return std::nullopt;
        }
        return v;
    }

  private:
    void
    fail(const std::string &what)
    {
        if (error_ != nullptr && error_->empty()) {
            std::ostringstream os;
            os << what << " at byte " << pos_;
            *error_ = os.str();
        }
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::string_view{word}.size();
        if (text_.compare(pos_, len, word) != 0) {
            fail("invalid literal");
            return false;
        }
        pos_ += len;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (depth_ > 64) {
            fail("nesting too deep");
            return false;
        }
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        switch (text_[pos_]) {
          case 'n':
            return literal("null") &&
                   (out = JsonValue::makeNull(), true);
          case 't':
            return literal("true") &&
                   (out = JsonValue::makeBool(true), true);
          case 'f':
            return literal("false") &&
                   (out = JsonValue::makeBool(false), true);
          case '"':
            return parseString(out);
          case '[':
            return parseArray(out);
          case '{':
            return parseObject(out);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        const auto digits = [&] {
            std::size_t n = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0) {
            fail("invalid number");
            return false;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (digits() == 0) {
                fail("invalid number");
                return false;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (digits() == 0) {
                fail("invalid number");
                return false;
            }
        }
        const std::string token = text_.substr(start, pos_ - start);
        out = JsonValue::makeNumber(std::strtod(token.c_str(), nullptr));
        return true;
    }

    void
    appendUtf8(std::string &s, unsigned cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xF0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    parseHex4(unsigned &out)
    {
        if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
        }
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else {
                fail("invalid \\u escape");
                return false;
            }
        }
        return true;
    }

    bool
    parseString(JsonValue &out)
    {
        ++pos_; // opening quote
        std::string s;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
                return false;
            }
            const char c = text_[pos_++];
            if (c == '"')
                break;
            if (c != '\\') {
                s += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("truncated escape");
                return false;
            }
            const char e = text_[pos_++];
            switch (e) {
              case '"': s += '"'; break;
              case '\\': s += '\\'; break;
              case '/': s += '/'; break;
              case 'b': s += '\b'; break;
              case 'f': s += '\f'; break;
              case 'n': s += '\n'; break;
              case 'r': s += '\r'; break;
              case 't': s += '\t'; break;
              case 'u': {
                  unsigned cp = 0;
                  if (!parseHex4(cp))
                      return false;
                  if (cp >= 0xD800 && cp < 0xDC00) {
                      // High surrogate: a low surrogate must follow.
                      if (pos_ + 1 >= text_.size() ||
                          text_[pos_] != '\\' ||
                          text_[pos_ + 1] != 'u') {
                          fail("unpaired surrogate");
                          return false;
                      }
                      pos_ += 2;
                      unsigned lo = 0;
                      if (!parseHex4(lo))
                          return false;
                      if (lo < 0xDC00 || lo > 0xDFFF) {
                          fail("unpaired surrogate");
                          return false;
                      }
                      cp = 0x10000 + ((cp - 0xD800) << 10) +
                           (lo - 0xDC00);
                  } else if (cp >= 0xDC00 && cp < 0xE000) {
                      fail("unpaired surrogate");
                      return false;
                  }
                  appendUtf8(s, cp);
                  break;
              }
              default:
                fail("invalid escape");
                return false;
            }
        }
        out = JsonValue::makeString(std::move(s));
        return true;
    }

    bool
    parseArray(JsonValue &out)
    {
        ++pos_; // '['
        ++depth_;
        std::vector<JsonValue> items;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            --depth_;
            out = JsonValue::makeArray(std::move(items));
            return true;
        }
        while (true) {
            JsonValue v;
            skipWs();
            if (!parseValue(v))
                return false;
            items.push_back(std::move(v));
            skipWs();
            if (pos_ >= text_.size()) {
                fail("unterminated array");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                --depth_;
                out = JsonValue::makeArray(std::move(items));
                return true;
            }
            fail("expected ',' or ']'");
            return false;
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        ++pos_; // '{'
        ++depth_;
        std::map<std::string, JsonValue> members;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            --depth_;
            out = JsonValue::makeObject(std::move(members));
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                return false;
            }
            JsonValue key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                fail("expected ':'");
                return false;
            }
            ++pos_;
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            members[key.asString()] = std::move(v);
            skipWs();
            if (pos_ >= text_.size()) {
                fail("unterminated object");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                --depth_;
                out = JsonValue::makeObject(std::move(members));
                return true;
            }
            fail("expected ',' or '}'");
            return false;
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    if (error != nullptr)
        error->clear();
    return Parser(text, error).parse();
}

} // namespace qgpu
