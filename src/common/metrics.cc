#include "common/metrics.hh"

#include <algorithm>
#include <sstream>

#include "common/trace.hh"

namespace qgpu
{

void
Histogram::observe(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
}

double
Histogram::min() const
{
    return count_ ? min_ : 0.0;
}

double
Histogram::max() const
{
    return count_ ? max_ : 0.0;
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

void
MetricsRegistry::add(const std::string &name, double delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

double
MetricsRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
}

void
MetricsRegistry::observe(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    histograms_[name].observe(value);
}

Histogram
MetricsRegistry::histogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? Histogram{} : it->second;
}

std::vector<std::string>
MetricsRegistry::counterNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto &[name, value] : counters_)
        names.push_back(name);
    return names;
}

std::vector<std::string>
MetricsRegistry::histogramNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(histograms_.size());
    for (const auto &[name, hist] : histograms_)
        names.push_back(name);
    return names;
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    histograms_.clear();
}

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os.precision(12);
    os << "{\"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        os << (first ? "" : ", ") << '"' << jsonEscape(name)
           << "\": " << value;
        first = false;
    }
    os << "}, \"histograms\": {";
    first = true;
    for (const auto &[name, hist] : histograms_) {
        os << (first ? "" : ", ") << '"' << jsonEscape(name)
           << "\": {\"count\": " << hist.count()
           << ", \"sum\": " << hist.sum()
           << ", \"min\": " << hist.min()
           << ", \"max\": " << hist.max()
           << ", \"mean\": " << hist.mean() << "}";
        first = false;
    }
    os << "}}";
    return os.str();
}

std::string
MetricsRegistry::toCsv() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os.precision(12);
    os << "kind,name,count,sum,min,max,mean\n";
    for (const auto &[name, value] : counters_)
        os << "counter," << name << ",1," << value << ',' << value
           << ',' << value << ',' << value << '\n';
    for (const auto &[name, hist] : histograms_)
        os << "histogram," << name << ',' << hist.count() << ','
           << hist.sum() << ',' << hist.min() << ',' << hist.max()
           << ',' << hist.mean() << '\n';
    return os.str();
}

} // namespace qgpu
