#include "common/thread_pool.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace qgpu
{

ThreadPool::ThreadPool(int workers)
{
    if (workers < 0 || workers > kMaxWorkers)
        QGPU_PANIC("bad worker count ", workers);
    ensureWorkers(workers);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

int
ThreadPool::numWorkers() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(workers_.size());
}

void
ThreadPool::ensureWorkers(int workers)
{
    workers = std::min(workers, kMaxWorkers);
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_)
        QGPU_PANIC("ensureWorkers on a stopping pool");
    while (static_cast<int>(workers_.size()) < workers)
        workers_.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            QGPU_PANIC("submit on a stopping pool");
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

bool
ThreadPool::helpRunOneTask()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        task = std::move(queue_.front());
        queue_.pop_front();
    }
    task(); // exceptions are caught by the TaskGroup wrapper
    return true;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

ThreadPool &
ThreadPool::global()
{
    // Workers are added lazily by call sites (parallelFor grows the
    // pool to its request); the pool itself lives until exit.
    static ThreadPool pool(0);
    return pool;
}

int
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

TaskGroup::TaskGroup(ThreadPool &pool) : pool_(pool)
{
}

TaskGroup::~TaskGroup()
{
    waitNoThrow();
}

void
TaskGroup::run(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++pending_;
    }
    pool_.submit([this, task = std::move(task)] {
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (error && !firstError_)
            firstError_ = error;
        if (--pending_ == 0)
            done_.notify_all();
    });
}

void
TaskGroup::waitNoThrow()
{
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (pending_ == 0)
                return;
        }
        // Donate this thread to the pool. The task run may belong to
        // another group; that still makes progress towards ours
        // (workers freed up) and keeps nested loops deadlock-free.
        if (pool_.helpRunOneTask())
            continue;
        std::unique_lock<std::mutex> lock(mutex_);
        // Tasks of this group are either queued (handled above) or
        // running on workers; sleep until one completes. Re-check the
        // queue on wake via the loop.
        done_.wait(lock, [this] { return pending_ == 0; });
        return;
    }
}

void
TaskGroup::wait()
{
    waitNoThrow();
    std::exception_ptr error;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        error = std::exchange(firstError_, nullptr);
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace qgpu
