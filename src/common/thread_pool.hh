/**
 * @file
 * Persistent host work pool behind every data-parallel loop in the
 * simulator. One process-wide pool owns long-lived worker threads and
 * a FIFO task queue; parallel loops submit closures through a
 * TaskGroup and wait for just their own tasks. This replaces the old
 * spawn-and-join parallelFor body: thread creation is paid once, not
 * per gate.
 *
 * Exception contract: a task that throws never terminates the
 * process. The first exception raised within a TaskGroup is captured,
 * every remaining task still runs to completion, and the exception is
 * rethrown on the thread that calls TaskGroup::wait().
 *
 * Nesting: wait() lends the calling thread to the pool (it drains
 * queued tasks while waiting), so a pool task may itself run a nested
 * parallel loop without deadlocking, even on a single-worker pool.
 */

#ifndef QGPU_COMMON_THREAD_POOL_HH
#define QGPU_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qgpu
{

/**
 * Fixed-queue thread pool. Workers are started on demand (grow-only)
 * and joined on destruction. Tasks are plain closures; completion and
 * exception tracking live in TaskGroup so that independent loops can
 * share the pool without waiting on each other's work.
 */
class ThreadPool
{
  public:
    /** Upper bound on workers, matching setSimThreads' range. */
    static constexpr int kMaxWorkers = 256;

    /** @param workers initial worker threads (0 is a valid pool:
     *  tasks then run only via helpRunOneTask / TaskGroup::wait). */
    explicit ThreadPool(int workers = 0);

    /** Drains nothing: outstanding tasks must be waited on by their
     *  TaskGroup before the pool dies. Joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Current worker-thread count. */
    int numWorkers() const;

    /** Grow the pool to at least @p workers threads (capped at
     *  kMaxWorkers; never shrinks). */
    void ensureWorkers(int workers);

    /** Enqueue @p task for execution by any worker. */
    void submit(std::function<void()> task);

    /**
     * Run one queued task on the calling thread, if any is queued.
     * Returns false when the queue was empty. This is how waiting
     * threads donate their cycles to the pool.
     */
    bool helpRunOneTask();

    /**
     * The process-wide pool shared by parallelFor, the chunked apply
     * fan-out, and the GFC codec. Created on first use; sized lazily
     * by ensureWorkers from each call site's thread request.
     */
    static ThreadPool &global();

    /** max(1, std::thread::hardware_concurrency()). */
    static int hardwareThreads();

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
};

/**
 * Completion scope for a batch of pool tasks. run() submits, wait()
 * blocks (helping the pool) until every task submitted through THIS
 * group finished, then rethrows the first captured exception.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool = ThreadPool::global());

    /** Waits for outstanding tasks; never throws (errors are dropped
     *  if wait() was not called). */
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Submit @p task to the pool under this group. */
    void run(std::function<void()> task);

    /**
     * Block until every task run() through this group completed,
     * executing queued pool tasks on this thread while waiting. If
     * any task threw, rethrows the first exception afterwards.
     */
    void wait();

  private:
    void waitNoThrow();

    ThreadPool &pool_;
    std::mutex mutex_;
    std::condition_variable done_;
    std::size_t pending_ = 0;
    std::exception_ptr firstError_;
};

} // namespace qgpu

#endif // QGPU_COMMON_THREAD_POOL_HH
