/**
 * @file
 * Deterministic xoshiro256++ random number generator. Used by circuit
 * generators (rqc, iqp, qaoa graphs, bv secrets) and measurement
 * sampling so every experiment is reproducible from a seed.
 */

#ifndef QGPU_COMMON_RNG_HH
#define QGPU_COMMON_RNG_HH

#include <cstdint>

namespace qgpu
{

/**
 * xoshiro256++ PRNG (Blackman & Vigna). Small, fast, and good enough
 * for workload generation; not cryptographic.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p. */
    bool nextBool(double p = 0.5);

  private:
    std::uint64_t state_[4];
};

/**
 * Stateless stream split: the deterministic sub-seed of stream
 * @p index under @p base. Used to derive per-shot RNG seeds for
 * batched execution (engine/batched.hh): shot i of a batch seeded
 * with `base` runs on Rng(splitSeed(base, i)), so shots are
 * independent streams yet reproducible individually. The mapping is
 * a fixed bit-mixing function (splitmix64 finalizer over
 * base + (index+1)·φ64) with cross-platform goldens in
 * tests/test_rng.cc — a refactor can never silently reshuffle shot
 * outcomes.
 */
std::uint64_t splitSeed(std::uint64_t base, std::uint64_t index);

} // namespace qgpu

#endif // QGPU_COMMON_RNG_HH
