#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace qgpu
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        QGPU_PANIC("table row width ", row.size(), " != header width ",
                   header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TextTable::toString() const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    emit(header_);
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
TextTable::toCsv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

} // namespace qgpu
