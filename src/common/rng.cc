#include "common/rng.hh"

#include <cassert>

namespace qgpu
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
splitSeed(std::uint64_t base, std::uint64_t index)
{
    // index+1 keeps splitSeed(base, 0) != splitmix64 state "base",
    // so the batch driver's own draws never collide with shot 0.
    std::uint64_t x =
        base + (index + 1) * 0x9e3779b97f4a7c15ull;
    return splitmix64(x);
}

} // namespace qgpu
