/**
 * @file
 * CPU-only comparator simulators (paper §V-A and §V-C):
 *
 *  - CpuEngine: QISKit-Aer's CPU-OpenMP path — one full state-vector
 *    pass per gate across all host cores.
 *  - QsimLikeEngine: a Qsim-Cirq-style simulator — gate fusion into
 *    few-qubit matrices (Qsim's headline optimization) followed by
 *    vectorized full-state passes.
 *  - QdkLikeEngine: a Microsoft-QDK-style simulator — per-gate
 *    full-state passes with heavy per-operation overhead and poor
 *    thread scaling, matching its measured order-of-magnitude gap.
 *
 * All three compute exact states; they differ in the host-time model
 * and (for qsim) the fusion preprocessing.
 */

#ifndef QGPU_BASELINES_CPU_ENGINES_HH
#define QGPU_BASELINES_CPU_ENGINES_HH

#include "engine/execution.hh"

namespace qgpu
{

/** QISKit-Aer CPU-OpenMP comparator. */
class CpuEngine : public ExecutionEngine
{
  public:
    CpuEngine(Machine &machine, ExecOptions options);
    std::string name() const override { return "CPU-OpenMP"; }

  protected:
    StateVector execute(const Circuit &circuit,
                        RunResult &result) override;
};

/** Qsim-Cirq comparator: fusion + efficient CPU kernels. */
class QsimLikeEngine : public ExecutionEngine
{
  public:
    QsimLikeEngine(Machine &machine, ExecOptions options,
                   int max_fused_qubits = 4);
    std::string name() const override { return "Qsim-Cirq"; }

  protected:
    StateVector execute(const Circuit &circuit,
                        RunResult &result) override;

  private:
    int maxFusedQubits_;
};

/** Microsoft QDK comparator: per-gate passes with large overheads. */
class QdkLikeEngine : public ExecutionEngine
{
  public:
    QdkLikeEngine(Machine &machine, ExecOptions options);
    std::string name() const override { return "QDK"; }

  protected:
    StateVector execute(const Circuit &circuit,
                        RunResult &result) override;
};

} // namespace qgpu

#endif // QGPU_BASELINES_CPU_ENGINES_HH
