#include "baselines/cpu_engines.hh"

#include <algorithm>

#include "qc/fusion.hh"
#include "statevec/kernels.hh"

namespace qgpu
{

namespace
{

/**
 * Sequential full-state passes on the host compute resource.
 * @p efficiency divides the host's effective rates: 2.0 means each
 * pass runs twice as fast as the reference loops, 1/7 means seven
 * times slower.
 */
StateVector
hostPasses(Machine &m, const Circuit &circuit, RunResult &result,
           int threads, double efficiency, double per_gate_overhead)
{
    auto &stats = result.stats;
    const int n = circuit.numQubits();
    const double pass_bytes =
        2.0 * static_cast<double>(stateBytes(n)); // read + write

    StateVector state(n);
    VTime prev = 0.0;
    for (const Gate &gate : circuit.gates()) {
        state.apply(gate);
        const double flops = kernels::gateFlops(gate, n);
        const VTime dur =
            m.host().updateTime(flops / efficiency,
                                pass_bytes / efficiency, threads) +
            per_gate_overhead;
        prev = m.host().compute().schedule(prev, dur);
        stats.add(statkeys::flopsHost, flops);
        stats.add(statkeys::gatesApplied, 1.0);
        result.trace.record(phases::hostCompute, "update",
                            "host.compute", prev - dur, prev);
    }
    return state;
}

} // namespace

CpuEngine::CpuEngine(Machine &machine, ExecOptions options)
    : ExecutionEngine(machine, std::move(options))
{
}

StateVector
CpuEngine::execute(const Circuit &circuit, RunResult &result)
{
    return hostPasses(machine(), circuit, result,
                      options().hostThreads, 1.0, 0.0);
}

QsimLikeEngine::QsimLikeEngine(Machine &machine, ExecOptions options,
                               int max_fused_qubits)
    : ExecutionEngine(machine, std::move(options)),
      maxFusedQubits_(max_fused_qubits)
{
}

StateVector
QsimLikeEngine::execute(const Circuit &circuit, RunResult &result)
{
    // Fusion is qsim's defining optimization: far fewer full-state
    // passes, each with a denser (but vectorization-friendly) matrix.
    const Circuit fused = fuseGates(circuit, maxFusedQubits_);
    result.stats.set("gates.original",
                     static_cast<double>(circuit.numGates()));
    result.stats.set("gates.fused",
                     static_cast<double>(fused.numGates()));
    // AVX batching makes the dense fused kernels ~2x as efficient per
    // flop as Aer's per-gate loops.
    return hostPasses(machine(), fused, result,
                      options().hostThreads, 2.0, 0.0);
}

QdkLikeEngine::QdkLikeEngine(Machine &machine, ExecOptions options)
    : ExecutionEngine(machine, std::move(options))
{
}

StateVector
QdkLikeEngine::execute(const Circuit &circuit, RunResult &result)
{
    // QDK's full-state simulator pays a large managed-runtime cost
    // per amplitude pass and does not block for cache or vectorize
    // the inner loops; its passes run several times slower than
    // Aer's. The 1/2 derate reproduces the paper's measured gap
    // (QDK ~10.8x slower than Q-GPU, which itself is ~3.5x faster
    // than the Aer baseline).
    const int threads =
        std::max(1, machine().host().spec().cores / 4);
    return hostPasses(machine(), circuit, result, threads,
                      1.0 / 2.0, 2e-3);
}

} // namespace qgpu
