/**
 * @file
 * Pluggable cold-chunk storage for ChunkedStateVector (ROADMAP item 5,
 * MEMQSim-style memory-efficient state): instead of keeping every
 * chunk fully decompressed in host memory, a bounded working set of
 * chunks stays resident while the rest live in a ColdStore backend —
 * GFC-compressed host buffers (`compressed`) or a scratch file
 * (`spill`). `raw` keeps today's behavior and is the default.
 *
 * Bit-identity contract: eviction is always LOSSLESS. A chunk is
 * stored either byte-for-byte or through the GFC codec (which is
 * lossless on raw 64-bit patterns, including -0.0, denormals, and NaN
 * payloads); the fp32 stream lane is used only when every component
 * provably round-trips double->float->double bit-exactly. Refilling a
 * chunk therefore reproduces exactly the bytes that were evicted, so
 * every engine x backend combination stays maxAbsDiff == 0 against
 * raw storage.
 *
 * Threading discipline: all residency transitions, fault-injection
 * draws, and counter updates happen on the single-threaded scheduling
 * path. The only work that runs on pool workers is filling the slots
 * of chunks being pinned (distinct chunks, disjoint buffers); pinned
 * chunks are never evicted, so parallel kernel workers only ever see
 * fully resident, stable slots.
 *
 * Integrity (PR 5 interplay): every store records two FNV-1a
 * checksums — the decompressed payload and the encoded stream. load()
 * verifies the stream checksum BEFORE decoding (the GFC decoder
 * panics on corrupt streams, so corruption must be caught first) and
 * the caller re-verifies the payload checksum after decoding; a
 * mismatch surfaces as a structured SimError instead of silent
 * corruption. Eviction writes re-checksum the stored stream when
 * codec faults are armed, retrying up to StorageConfig::retries.
 */

#ifndef QGPU_STATEVEC_CHUNK_STORAGE_HH
#define QGPU_STATEVEC_CHUNK_STORAGE_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.hh"
#include "common/types.hh"

namespace qgpu
{

class FaultInjector;

/** Which backend holds chunks outside the working set. */
enum class StorageKind
{
    /** Every chunk fully decompressed in host memory (default). */
    Raw,
    /** Cold chunks held GFC-encoded in host memory. */
    Compressed,
    /** Cold chunks paged to an unlinked scratch file. */
    Spill,
};

/** Canonical name ("raw" / "compressed" / "spill"). */
const char *storageKindName(StorageKind kind);

/**
 * Parse a storage kind name as printed by storageKindName. Returns
 * false (leaving @p out untouched) for anything else.
 */
bool parseStorageKind(std::string_view name, StorageKind &out);

/** Counters and gauges exported as the `storage.*` metric family. */
struct StorageStats
{
    /** Chunks currently held by the cold backend. */
    std::uint64_t coldChunks = 0;
    /** Chunks currently decompressed in the working set. */
    std::uint64_t residentChunks = 0;
    /** Chunks currently elided entirely (known byte-zero). */
    std::uint64_t zeroChunks = 0;
    /** Working-set evictions performed. */
    std::uint64_t evictions = 0;
    /** Chunk accesses satisfied by an already-resident slot. */
    std::uint64_t decompressHits = 0;
    /** Chunk accesses that had to decode from the cold backend. */
    std::uint64_t decompressMisses = 0;
    /** Refills satisfied by zero-filling an elided chunk. */
    std::uint64_t zeroFills = 0;
    /** Payload checksums verified after a decode. */
    std::uint64_t verified = 0;
    /** Eviction-write verification retries (armed codec faults). */
    std::uint64_t retries = 0;
    /** Evictions degraded to a raw payload (armed alloc faults). */
    std::uint64_t rawFallbacks = 0;
    /** Bytes of decompressed resident slots. */
    std::uint64_t residentBytes = 0;
    /** Host bytes held by the cold backend (compressed streams). */
    std::uint64_t coldBytes = 0;
    /** Scratch-file bytes held by the spill backend. */
    std::uint64_t spillBytes = 0;
    /** High-water mark of residentBytes + coldBytes. */
    std::uint64_t peakHostBytes = 0;
    /** Configured working-set bound, in chunks. */
    std::uint64_t workingSet = 0;
};

/** What a ColdStore::store recorded for one chunk. */
struct StoredInfo
{
    /** Bytes the stored form occupies (host or scratch file). */
    std::uint64_t storedBytes = 0;
    /** FNV-1a checksum of the encoded stream as written. */
    std::uint64_t streamSum = 0;
};

/**
 * Backend holding chunks evicted from the working set. store / drop /
 * storedSum / corruptStored are scheduling-thread-only; load may be
 * called concurrently for DISTINCT chunks (refill tasks on the pool).
 */
class ColdStore
{
  public:
    virtual ~ColdStore() = default;

    virtual StorageKind kind() const = 0;

    /** Size for @p num_chunks chunks of @p chunk_size amps each,
     *  dropping any previous contents. */
    virtual void reset(Index num_chunks, Index chunk_size) = 0;

    /**
     * Store chunk @p c. @p f32_lane selects the fp32 stream lane (the
     * caller guarantees every component round-trips bit-exactly);
     * @p force_raw bypasses the codec and stores the amplitude bytes
     * verbatim (alloc-fault degradation path).
     */
    virtual StoredInfo store(Index c, std::span<const Amp> amps,
                             bool f32_lane, bool force_raw) = 0;

    /** Re-checksum the stored stream of chunk @p c as held now. */
    virtual std::uint64_t storedSum(Index c) = 0;

    /**
     * Decode chunk @p c into @p out (chunk_size amps). Verifies the
     * stored stream against @p stream_sum BEFORE decoding and throws
     * SimException(ChecksumMismatch) on mismatch. The entry stays
     * stored (callers drop() explicitly).
     */
    virtual void load(Index c, std::span<Amp> out,
                      std::uint64_t stream_sum) = 0;

    /** Forget chunk @p c, releasing its bytes. */
    virtual void drop(Index c) = 0;

    /** Flip one byte of chunk @p c's stored form (fault injection). */
    virtual void corruptStored(Index c, FaultInjector &injector) = 0;

    /** Host bytes currently held (0 for the spill backend). */
    virtual std::uint64_t hostBytes() const = 0;

    /** Scratch-file bytes currently held (0 for host backends). */
    virtual std::uint64_t spillBytes() const = 0;
};

/** Construct the backend for @p kind (nullptr for Raw). */
std::unique_ptr<ColdStore> makeColdStore(StorageKind kind,
                                         const std::string &spill_dir);

/** How a ChunkedStateVector's storage should behave. */
struct StorageConfig
{
    StorageKind kind = StorageKind::Raw;
    /**
     * Bound on decompressed chunks kept resident. 0 sizes the set
     * automatically from host RAM (a quarter of hostRamBytes()).
     * Clamped to [min(4, numChunks), numChunks].
     */
    Index workingSetChunks = 0;
    /** Scratch directory for the spill backend ("" = $TMPDIR, /tmp). */
    std::string spillDir;
    /** Optional fault source (codec/alloc points); must outlive the
     *  state. Draws happen only on the scheduling thread. */
    FaultInjector *injector = nullptr;
    /** Eviction-write verification retry budget (armed codec faults). */
    int retries = 3;
};

/**
 * Residency manager for one ChunkedStateVector: tracks the per-chunk
 * state machine (Zero / Resident / Cold), the clock eviction hand,
 * pin counts, and the checksums guarding every cold round trip. The
 * managed slots are the state's own chunk vectors; the invariant
 * "slot non-empty <=> chunk Resident" is what lets the hot accessors
 * skip the residency layer entirely for resident chunks.
 */
class ChunkResidency
{
  public:
    enum class State : std::uint8_t
    {
        /** Known byte-zero; no slot, no stored payload. */
        Zero,
        /** Decompressed in its slot, part of the working set. */
        Resident,
        /** Held by the cold backend; slot empty. */
        Cold,
    };

    /**
     * Adopt @p slots (the state's chunk vectors, which must outlive
     * this object): empty or byte-zero slots become Zero (byte-zero
     * slots are freed), everything else Resident; then the working
     * set is brought within budget.
     */
    ChunkResidency(const StorageConfig &config, Index num_chunks,
                   Index chunk_size,
                   std::vector<std::vector<Amp>> &slots);
    ~ChunkResidency();

    ChunkResidency(const ChunkResidency &) = delete;
    ChunkResidency &operator=(const ChunkResidency &) = delete;

    StorageKind kind() const { return kind_; }
    Index workingSet() const { return budget_; }

    /** Largest chunk block callers should pin at once: half the
     *  working set, so the prefetched next block fits alongside. */
    Index maxPinnedBlock() const
    {
        return budget_ / 2 > 0 ? budget_ / 2 : 1;
    }

    /**
     * Owning device per chunk (ShardMap::deviceTable). Eviction then
     * prefers victims from devices at or above their balanced share,
     * keeping per-device working sets even.
     */
    void setDeviceMap(std::vector<int> device_of);

    State stateOf(Index c) const { return meta_[c].state; }

    /** True when chunk @p c is known all-value-zero without touching
     *  data (Zero, or Cold with a value-zero payload). Resident
     *  chunks return false — the caller must scan. */
    bool knownZero(Index c) const
    {
        const Meta &m = meta_[c];
        return m.state == State::Zero ||
               (m.state == State::Cold && m.wasZero);
    }

    /**
     * Make chunk @p c resident (scheduling thread only; accessors
     * call this exactly when the slot is empty, which never happens
     * for pinned chunks inside parallel regions).
     */
    void ensure(Index c);

    /**
     * Copy chunk @p c into @p dst (chunk_size amps) WITHOUT changing
     * residency: Zero chunks zero-fill, Resident chunks copy, Cold
     * chunks decode straight into @p dst (payload verified).
     */
    void readChunk(Index c, Amp *dst);

    /**
     * Replace chunk @p c with @p src (chunk_size amps). Byte-zero
     * content elides the chunk back to Zero; anything else becomes
     * Resident (evicting as needed).
     */
    void writeChunk(Index c, const Amp *src);

    /**
     * Pin @p cs and begin refilling any non-resident members
     * asynchronously on the thread pool. Transitions, fault draws,
     * and eviction of victims all happen here, serially; only the
     * slot fills run concurrently. Pinned chunks are never evicted.
     */
    void pinAsync(std::span<const Index> cs);

    /** Wait for outstanding refills; rethrows their first error. */
    void waitPins();

    /** Drop the pins taken by a matching pinAsync. */
    void unpin(std::span<const Index> cs);

    /** pinAsync + waitPins. */
    void pin(std::span<const Index> cs)
    {
        pinAsync(cs);
        waitPins();
    }

    /** Make every chunk resident, ignoring the budget (used around
     *  re-partitioning; follow with enforceBudget()). */
    void materializeAll();

    /** Evict until the working set is within budget again. */
    void enforceBudget();

    /** Current counters, gauges, and per-state chunk counts. */
    StorageStats stats() const;

    /** Resident chunk count per device (empty without a device map);
     *  exposed for the shard-balance tests. */
    std::vector<Index> deviceResident() const { return devResident_; }

  private:
    struct Meta
    {
        State state = State::Zero;
        /** Clock reference bit (second chance). */
        std::uint8_t ref = 0;
        /** Pin count; pinned chunks are never evicted. */
        std::uint16_t pins = 0;
        /** Cold payload is all value-zero (may contain -0.0). */
        bool wasZero = true;
        /** FNV-1a of the decompressed payload at eviction time. */
        std::uint64_t payloadSum = 0;
        /** FNV-1a of the encoded stream as stored. */
        std::uint64_t streamSum = 0;
    };

    void evict(Index c);
    Index pickVictim();
    void makeRoom(Index incoming);
    void issueFill(Index c, bool async);
    void finishDrops();
    void devInc(Index c);
    void devDec(Index c);
    void notePeak();
    std::uint64_t residentBytes() const
    {
        return residentCount_ * chunkSize_ * sizeof(Amp);
    }

    StorageKind kind_;
    Index numChunks_;
    Index chunkSize_;
    Index budget_;
    int retries_;
    FaultInjector *injector_;
    std::vector<std::vector<Amp>> *slots_;
    std::unique_ptr<ColdStore> store_;
    std::vector<Meta> meta_;
    Index hand_ = 0;
    Index residentCount_ = 0;
    std::vector<int> deviceOf_;
    std::vector<Index> devResident_;
    TaskGroup fills_;
    std::vector<Index> pendingDrops_;
    StorageStats stats_;
};

} // namespace qgpu

#endif // QGPU_STATEVEC_CHUNK_STORAGE_HH
