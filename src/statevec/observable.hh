/**
 * @file
 * Pauli-string observables and expectation values. The chemistry
 * workloads (hchain) are Trotterized evolutions of Pauli Hamiltonians;
 * this module evaluates <psi| H |psi> on a final state, which the
 * chemistry example uses to report energies.
 */

#ifndef QGPU_STATEVEC_OBSERVABLE_HH
#define QGPU_STATEVEC_OBSERVABLE_HH

#include <string>
#include <vector>

#include "statevec/state_vector.hh"

namespace qgpu
{

/** Single-qubit Pauli operator. */
enum class Pauli : char { I = 'I', X = 'X', Y = 'Y', Z = 'Z' };

/**
 * A tensor product of Pauli operators over selected qubits, e.g.
 * Z0 Z1 or X2 Y5.
 */
class PauliString
{
  public:
    PauliString() = default;

    /**
     * Parse a compact spec like "ZZ" applied at @p start_qubit, or
     * build explicitly with add().
     */
    PauliString(const std::string &ops, int start_qubit = 0);

    /** Add operator @p op on qubit @p qubit. */
    PauliString &add(Pauli op, int qubit);

    const std::vector<std::pair<int, Pauli>> &terms() const
    { return terms_; }

    /** Largest qubit referenced; -1 when identity. */
    int maxQubit() const;

    /**
     * <psi| P |psi> for this Pauli string. Always real (Pauli strings
     * are Hermitian); computed in one pass over the state.
     */
    double expectation(const StateVector &state) const;

    /** Printable form, e.g. "X0*Z3". */
    std::string toString() const;

  private:
    std::vector<std::pair<int, Pauli>> terms_;
};

/**
 * A Hermitian observable: a real-weighted sum of Pauli strings, e.g.
 * a transverse-field Ising chain Hamiltonian.
 */
class Observable
{
  public:
    /** Add @p coefficient * @p pauli to the sum. */
    Observable &add(double coefficient, PauliString pauli);

    std::size_t numTerms() const { return terms_.size(); }

    /** <psi| H |psi>. */
    double expectation(const StateVector &state) const;

    /**
     * Transverse-field Ising chain on @p num_qubits sites:
     * -J sum Z_i Z_{i+1} - h sum X_i. The hchain benchmark's layers
     * are one Trotter step of exactly this family.
     */
    static Observable isingChain(int num_qubits, double coupling_j,
                                 double field_h);

  private:
    std::vector<std::pair<double, PauliString>> terms_;
};

} // namespace qgpu

#endif // QGPU_STATEVEC_OBSERVABLE_HH
