#include "statevec/measure.hh"

#include <algorithm>
#include <cmath>

#include "common/bits.hh"
#include "common/logging.hh"

namespace qgpu
{

std::vector<double>
probabilities(const StateVector &state)
{
    std::vector<double> out(state.size());
    for (Index i = 0; i < state.size(); ++i)
        out[i] = std::norm(state[i]);
    return out;
}

std::vector<double>
marginalProbabilities(const StateVector &state,
                      const std::vector<int> &qubits)
{
    std::vector<double> out(Index{1} << qubits.size(), 0.0);
    for (Index i = 0; i < state.size(); ++i) {
        Index key = 0;
        for (std::size_t j = 0; j < qubits.size(); ++j)
            if (bits::testBit(i, qubits[j]))
                key = bits::setBit(key, static_cast<int>(j));
        out[key] += std::norm(state[i]);
    }
    return out;
}

std::map<Index, std::uint64_t>
sampleCounts(const StateVector &state, std::uint64_t shots, Rng &rng)
{
    // Build the CDF once; binary-search per shot.
    std::vector<double> cdf(state.size());
    double acc = 0.0;
    for (Index i = 0; i < state.size(); ++i) {
        acc += std::norm(state[i]);
        cdf[i] = acc;
    }
    if (std::abs(acc - 1.0) > 1e-6)
        QGPU_WARN("sampling an unnormalized state (norm = ", acc, ")");

    std::map<Index, std::uint64_t> counts;
    for (std::uint64_t s = 0; s < shots; ++s) {
        const double u = rng.nextDouble() * acc;
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        const Index outcome =
            static_cast<Index>(it - cdf.begin());
        ++counts[std::min<Index>(outcome, state.size() - 1)];
    }
    return counts;
}

double
probabilityOfOne(const StateVector &state, int q)
{
    double p = 0.0;
    for (Index i = 0; i < state.size(); ++i)
        if (bits::testBit(i, q))
            p += std::norm(state[i]);
    return p;
}

} // namespace qgpu
