#include "statevec/measure.hh"

#include <algorithm>
#include <cmath>

#include "common/bits.hh"
#include "common/logging.hh"
#include "statevec/chunked.hh"

namespace qgpu
{

std::vector<double>
probabilities(const StateVector &state)
{
    std::vector<double> out(state.size());
    for (Index i = 0; i < state.size(); ++i)
        out[i] = std::norm(state[i]);
    return out;
}

std::vector<double>
marginalProbabilities(const StateVector &state,
                      const std::vector<int> &qubits)
{
    std::vector<double> out(Index{1} << qubits.size(), 0.0);
    for (Index i = 0; i < state.size(); ++i) {
        Index key = 0;
        for (std::size_t j = 0; j < qubits.size(); ++j)
            if (bits::testBit(i, qubits[j]))
                key = bits::setBit(key, static_cast<int>(j));
        out[key] += std::norm(state[i]);
    }
    return out;
}

std::map<Index, std::uint64_t>
sampleCounts(const StateVector &state, std::uint64_t shots, Rng &rng)
{
    // Build the CDF once; binary-search per shot.
    std::vector<double> cdf(state.size());
    double acc = 0.0;
    for (Index i = 0; i < state.size(); ++i) {
        acc += std::norm(state[i]);
        cdf[i] = acc;
    }
    if (std::abs(acc - 1.0) > 1e-6)
        QGPU_WARN("sampling an unnormalized state (norm = ", acc, ")");

    std::map<Index, std::uint64_t> counts;
    for (std::uint64_t s = 0; s < shots; ++s) {
        const double u = rng.nextDouble() * acc;
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        const Index outcome =
            static_cast<Index>(it - cdf.begin());
        ++counts[std::min<Index>(outcome, state.size() - 1)];
    }
    return counts;
}

namespace
{

// Shared inverse-CDF core: `accumulate` must invoke its callback
// with every |a_i|^2 in ascending index order, identically on both
// passes. Pass 1 totals the norm with the same summation order
// sampleCounts uses; pass 2 replays it and stops at the first index
// whose running sum reaches u (== lower_bound on the CDF array).
template <typename Accumulate>
Index
inverseCdfDraw(Index size, Rng &rng, Accumulate &&accumulate)
{
    double acc = 0.0;
    accumulate([&](double p, Index) { acc += p; return true; });
    const double u = rng.nextDouble() * acc;
    double running = 0.0;
    Index outcome = size == 0 ? 0 : size - 1;
    accumulate([&](double p, Index i) {
        running += p;
        if (running >= u) {
            outcome = i;
            return false;
        }
        return true;
    });
    return std::min<Index>(outcome, size - 1);
}

} // namespace

Index
sampleOutcome(const StateVector &state, Rng &rng)
{
    return inverseCdfDraw(
        state.size(), rng, [&](auto &&visit) {
            for (Index i = 0; i < state.size(); ++i)
                if (!visit(std::norm(state[i]), i))
                    return;
        });
}

Index
sampleOutcome(const ChunkedStateVector &state, Rng &rng)
{
    const Index chunk_size = state.chunkSize();
    return inverseCdfDraw(
        state.numChunks() * chunk_size, rng, [&](auto &&visit) {
            for (Index c = 0; c < state.numChunks(); ++c) {
                const auto &amps = state.chunk(c);
                const Index base = c * chunk_size;
                for (Index i = 0; i < chunk_size; ++i)
                    if (!visit(std::norm(amps[i]), base + i))
                        return;
            }
        });
}

void
mergeCounts(std::map<Index, std::uint64_t> &into,
            const std::map<Index, std::uint64_t> &from)
{
    for (const auto &[outcome, hits] : from)
        into[outcome] += hits;
}

double
probabilityOfOne(const StateVector &state, int q)
{
    double p = 0.0;
    for (Index i = 0; i < state.size(); ++i)
        if (bits::testBit(i, q))
            p += std::norm(state[i]);
    return p;
}

} // namespace qgpu
