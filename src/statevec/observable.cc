#include "statevec/observable.hh"

#include <algorithm>
#include <sstream>

#include "common/bits.hh"
#include "common/logging.hh"

namespace qgpu
{

PauliString::PauliString(const std::string &ops, int start_qubit)
{
    for (std::size_t i = 0; i < ops.size(); ++i) {
        switch (ops[i]) {
          case 'I':
          case 'i':
            break;
          case 'X':
          case 'x':
            add(Pauli::X, start_qubit + static_cast<int>(i));
            break;
          case 'Y':
          case 'y':
            add(Pauli::Y, start_qubit + static_cast<int>(i));
            break;
          case 'Z':
          case 'z':
            add(Pauli::Z, start_qubit + static_cast<int>(i));
            break;
          default:
            QGPU_FATAL("bad Pauli character '", ops[i], "'");
        }
    }
}

PauliString &
PauliString::add(Pauli op, int qubit)
{
    if (qubit < 0 || qubit > 62)
        QGPU_FATAL("bad Pauli qubit ", qubit);
    for (const auto &[q, existing] : terms_) {
        (void)existing;
        if (q == qubit)
            QGPU_FATAL("duplicate Pauli on qubit ", qubit);
    }
    if (op != Pauli::I)
        terms_.emplace_back(qubit, op);
    return *this;
}

int
PauliString::maxQubit() const
{
    int max_q = -1;
    for (const auto &[q, op] : terms_) {
        (void)op;
        max_q = std::max(max_q, q);
    }
    return max_q;
}

double
PauliString::expectation(const StateVector &state) const
{
    if (maxQubit() >= state.numQubits())
        QGPU_PANIC("Pauli string exceeds register");

    // P|i> = phase(i) |i ^ flip>, with X/Y contributing to flip and
    // Z/Y contributing phases.
    Index flip = 0;
    for (const auto &[q, op] : terms_)
        if (op == Pauli::X || op == Pauli::Y)
            flip = bits::setBit(flip, q);

    Amp total{0, 0};
    for (Index i = 0; i < state.size(); ++i) {
        Amp phase{1, 0};
        for (const auto &[q, op] : terms_) {
            const bool bit = bits::testBit(i, q);
            if (op == Pauli::Z) {
                if (bit)
                    phase = -phase;
            } else if (op == Pauli::Y) {
                phase *= bit ? Amp{0, -1} : Amp{0, 1};
            }
        }
        total += std::conj(state[i ^ flip]) * phase * state[i];
    }
    return total.real();
}

std::string
PauliString::toString() const
{
    if (terms_.empty())
        return "I";
    std::ostringstream os;
    auto sorted = terms_;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        os << (i ? "*" : "")
           << static_cast<char>(sorted[i].second) << sorted[i].first;
    }
    return os.str();
}

Observable &
Observable::add(double coefficient, PauliString pauli)
{
    terms_.emplace_back(coefficient, std::move(pauli));
    return *this;
}

double
Observable::expectation(const StateVector &state) const
{
    double sum = 0.0;
    for (const auto &[coeff, pauli] : terms_)
        sum += coeff * pauli.expectation(state);
    return sum;
}

Observable
Observable::isingChain(int num_qubits, double coupling_j,
                       double field_h)
{
    Observable h;
    for (int q = 0; q + 1 < num_qubits; ++q) {
        PauliString zz;
        zz.add(Pauli::Z, q).add(Pauli::Z, q + 1);
        h.add(-coupling_j, std::move(zz));
    }
    for (int q = 0; q < num_qubits; ++q) {
        PauliString x;
        x.add(Pauli::X, q);
        h.add(-field_h, std::move(x));
    }
    return h;
}

} // namespace qgpu
