#include "statevec/chunked.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace qgpu
{

ChunkedStateVector::ChunkedStateVector(int num_qubits, int chunk_bits)
    : numQubits_(num_qubits), chunkBits_(chunk_bits)
{
    if (chunk_bits < 0 || chunk_bits > num_qubits)
        QGPU_FATAL("chunk bits ", chunk_bits, " outside [0, ",
                   num_qubits, "]");
    chunks_.assign(numChunks(),
                   std::vector<Amp>(chunkSize(), Amp{0, 0}));
    chunks_[0][0] = Amp{1, 0};
}

ChunkedStateVector::ChunkedStateVector(int num_qubits, int chunk_bits,
                                       const StorageConfig &storage)
    : numQubits_(num_qubits), chunkBits_(chunk_bits),
      storageCfg_(storage)
{
    if (chunk_bits < 0 || chunk_bits > num_qubits)
        QGPU_FATAL("chunk bits ", chunk_bits, " outside [0, ",
                   num_qubits, "]");
    if (storage.kind == StorageKind::Raw) {
        chunks_.assign(numChunks(),
                       std::vector<Amp>(chunkSize(), Amp{0, 0}));
        chunks_[0][0] = Amp{1, 0};
        return;
    }
    // Bounded storage: every chunk starts elided (known zero); only
    // chunk 0 is materialized to hold the |0...0> amplitude. The full
    // register is never allocated at once.
    chunks_.assign(numChunks(), std::vector<Amp>{});
    setupResidency();
    residency_->ensure(0);
    chunks_[0][0] = Amp{1, 0};
}

void
ChunkedStateVector::setupResidency()
{
    residency_ = std::make_unique<ChunkResidency>(
        storageCfg_, numChunks(), chunkSize(), chunks_);
}

void
ChunkedStateVector::configureStorage(const StorageConfig &storage)
{
    if (residency_) {
        residency_->materializeAll();
        residency_.reset();
    }
    storageCfg_ = storage;
    if (storage.kind == StorageKind::Raw)
        return;
    setupResidency();
}

void
ChunkedStateVector::rechunk(int new_bits)
{
    if (new_bits == chunkBits_)
        return;
    if (new_bits < 0 || new_bits > numQubits_)
        QGPU_FATAL("chunk bits ", new_bits, " outside [0, ",
                   numQubits_, "]");

    // Re-partitioning permutes amplitudes across chunk boundaries;
    // under bounded storage the simplest bit-identical route is to
    // transiently materialize everything, re-partition raw, and
    // re-scan into the new chunk geometry (enforcing the budget
    // again at the end).
    const bool bounded = residency_ != nullptr;
    if (bounded) {
        residency_->materializeAll();
        residency_.reset();
    }

    const Index new_count = Index{1} << (numQubits_ - new_bits);
    const Index new_size = Index{1} << new_bits;
    std::vector<std::vector<Amp>> next(
        new_count, std::vector<Amp>(new_size));
    for (Index i = 0; i < stateSize(numQubits_); ++i)
        next[i >> new_bits][i & bits::lowMask(new_bits)] = amp(i);
    chunks_ = std::move(next);
    chunkBits_ = new_bits;
    // Lane tags are per chunk; re-derive them for the new partition.
    // Amplitudes in fp32 lanes are already rounded, so no re-quantize
    // is needed (rounding is idempotent).
    retagChunks();
    if (bounded)
        setupResidency();
}

bool
ChunkedStateVector::chunkIsZero(Index c) const
{
    if (residency_ &&
        residency_->stateOf(c) != ChunkResidency::State::Resident)
        return residency_->knownZero(c);
    for (const Amp &a : chunks_[c])
        if (a != Amp{0, 0})
            return false;
    return true;
}

void
ChunkedStateVector::gatherChunks(std::span<const Index> members,
                                 Amp *dst) const
{
    const Index size = chunkSize();
    for (std::size_t s = 0; s < members.size(); ++s) {
        const std::vector<Amp> &src = chunks_[members[s]];
        std::copy(src.begin(), src.end(), dst + s * size);
    }
}

void
ChunkedStateVector::scatterChunks(std::span<const Index> members,
                                  const Amp *src)
{
    const Index size = chunkSize();
    for (std::size_t s = 0; s < members.size(); ++s)
        std::copy(src + s * size, src + (s + 1) * size,
                  chunks_[members[s]].begin());
}

StateVector
ChunkedStateVector::toFlat() const
{
    StateVector out(numQubits_);
    if (residency_) {
        // Chunk-wise, without residency churn: cold chunks decode
        // straight into the flat buffer and stay cold.
        for (Index c = 0; c < numChunks(); ++c)
            residency_->readChunk(c, &out[c << chunkBits_]);
        return out;
    }
    for (Index i = 0; i < stateSize(numQubits_); ++i)
        out[i] = amp(i);
    return out;
}

void
ChunkedStateVector::fromFlat(const StateVector &state)
{
    if (state.numQubits() != numQubits_)
        QGPU_PANIC("flat state register ", state.numQubits(),
                   " != chunked register ", numQubits_);
    if (residency_) {
        for (Index c = 0; c < numChunks(); ++c)
            residency_->writeChunk(c, &state[c << chunkBits_]);
        return;
    }
    for (Index i = 0; i < stateSize(numQubits_); ++i)
        amp(i) = state[i];
}

double
ChunkedStateVector::norm() const
{
    double sum = 0.0;
    if (residency_) {
        std::vector<Amp> scratch;
        for (Index c = 0; c < numChunks(); ++c) {
            using State = ChunkResidency::State;
            const State s = residency_->stateOf(c);
            if (s == State::Zero)
                continue;
            const Amp *data;
            if (s == State::Resident) {
                data = chunks_[c].data();
            } else {
                scratch.resize(chunkSize());
                residency_->readChunk(c, scratch.data());
                data = scratch.data();
            }
            for (Index i = 0; i < chunkSize(); ++i)
                sum += std::norm(data[i]);
        }
        return sum;
    }
    for (const auto &c : chunks_)
        for (const Amp &a : c)
            sum += std::norm(a);
    return sum;
}

void
ChunkedStateVector::setPrecision(Precision p, double promote_threshold)
{
    precision_ = p;
    promoteThreshold_ = promote_threshold;
    refreshPrecision();
}

void
ChunkedStateVector::retagChunks()
{
    if (precision_ == Precision::f64) {
        chunkF32_.clear();
        return;
    }
    chunkF32_.assign(numChunks(), 1);
    if (precision_ != Precision::adaptive)
        return;
    for (Index c = 0; c < numChunks(); ++c) {
        double max_mag = 0.0;
        for (const Amp &a : chunks_[c]) {
            max_mag = std::max(max_mag, std::abs(a.real()));
            max_mag = std::max(max_mag, std::abs(a.imag()));
        }
        if (max_mag < promoteThreshold_)
            chunkF32_[c] = 0;
    }
}

void
ChunkedStateVector::refreshPrecision()
{
    if (precision_ == Precision::f64) {
        chunkF32_.clear();
        return;
    }
    if (residency_) {
        // Per chunk: materialize (cold chunks round-trip losslessly,
        // so tags are still decided on pre-quantize values), re-tag,
        // then round fp32-lane chunks in place. Interleaving chunks
        // is bit-identical to the raw two-phase path because tag and
        // rounding are pure per-chunk functions. Known-zero chunks
        // skip materialization outright: their tag is what a zero
        // scan yields and rounding zeros is the identity.
        chunkF32_.assign(numChunks(), 1);
        for (Index c = 0; c < numChunks(); ++c) {
            if (residency_->stateOf(c) !=
                    ChunkResidency::State::Resident &&
                residency_->knownZero(c)) {
                if (precision_ == Precision::adaptive)
                    chunkF32_[c] = 0;
                continue;
            }
            double *raw = reinterpret_cast<double *>(chunk(c).data());
            const Index lanes = 2 * chunkSize();
            if (precision_ == Precision::adaptive) {
                double max_mag = 0.0;
                for (Index i = 0; i < lanes; ++i)
                    max_mag = std::max(max_mag, std::abs(raw[i]));
                if (max_mag < promoteThreshold_) {
                    chunkF32_[c] = 0;
                    continue;
                }
            }
            for (Index i = 0; i < lanes; ++i)
                raw[i] =
                    static_cast<double>(static_cast<float>(raw[i]));
        }
        return;
    }
    retagChunks();
    const double cost =
        static_cast<double>(chunkSize()) * sizeof(Amp);
    parallelFor(
        Index{0}, numChunks(), simThreads(),
        [&](Index cb, Index ce) {
            for (Index c = cb; c < ce; ++c) {
                if (!chunkIsF32(c))
                    continue;
                // Quantize through the raw double view: identical to
                // quantizeAmpF32 per component, but free of the
                // complex-typed narrowing that GCC 12 miscompiles
                // (see quantizeAmpF32) and vectorizable.
                double *raw =
                    reinterpret_cast<double *>(chunks_[c].data());
                const Index lanes = 2 * chunkSize();
                for (Index i = 0; i < lanes; ++i)
                    raw[i] = static_cast<double>(
                        static_cast<float>(raw[i]));
            }
        },
        1, cost);
}

std::uint64_t
ChunkedStateVector::totalStoredBytes() const
{
    std::uint64_t sum = 0;
    for (Index c = 0; c < numChunks(); ++c)
        sum += chunkStoredBytes(c);
    return sum;
}

Index
ChunkedStateVector::promotedChunks() const
{
    if (precision_ != Precision::adaptive)
        return 0;
    Index n = 0;
    for (Index c = 0; c < numChunks(); ++c)
        if (!chunkIsF32(c))
            ++n;
    return n;
}

} // namespace qgpu
