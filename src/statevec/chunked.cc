#include "statevec/chunked.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace qgpu
{

ChunkedStateVector::ChunkedStateVector(int num_qubits, int chunk_bits)
    : numQubits_(num_qubits), chunkBits_(chunk_bits)
{
    if (chunk_bits < 0 || chunk_bits > num_qubits)
        QGPU_FATAL("chunk bits ", chunk_bits, " outside [0, ",
                   num_qubits, "]");
    chunks_.assign(numChunks(),
                   std::vector<Amp>(chunkSize(), Amp{0, 0}));
    chunks_[0][0] = Amp{1, 0};
}

void
ChunkedStateVector::rechunk(int new_bits)
{
    if (new_bits == chunkBits_)
        return;
    if (new_bits < 0 || new_bits > numQubits_)
        QGPU_FATAL("chunk bits ", new_bits, " outside [0, ",
                   numQubits_, "]");

    const Index new_count = Index{1} << (numQubits_ - new_bits);
    const Index new_size = Index{1} << new_bits;
    std::vector<std::vector<Amp>> next(
        new_count, std::vector<Amp>(new_size));
    for (Index i = 0; i < stateSize(numQubits_); ++i)
        next[i >> new_bits][i & bits::lowMask(new_bits)] = amp(i);
    chunks_ = std::move(next);
    chunkBits_ = new_bits;
}

bool
ChunkedStateVector::chunkIsZero(Index c) const
{
    for (const Amp &a : chunks_[c])
        if (a != Amp{0, 0})
            return false;
    return true;
}

void
ChunkedStateVector::gatherChunks(std::span<const Index> members,
                                 Amp *dst) const
{
    const Index size = chunkSize();
    for (std::size_t s = 0; s < members.size(); ++s) {
        const std::vector<Amp> &src = chunks_[members[s]];
        std::copy(src.begin(), src.end(), dst + s * size);
    }
}

void
ChunkedStateVector::scatterChunks(std::span<const Index> members,
                                  const Amp *src)
{
    const Index size = chunkSize();
    for (std::size_t s = 0; s < members.size(); ++s)
        std::copy(src + s * size, src + (s + 1) * size,
                  chunks_[members[s]].begin());
}

StateVector
ChunkedStateVector::toFlat() const
{
    StateVector out(numQubits_);
    for (Index i = 0; i < stateSize(numQubits_); ++i)
        out[i] = amp(i);
    return out;
}

void
ChunkedStateVector::fromFlat(const StateVector &state)
{
    if (state.numQubits() != numQubits_)
        QGPU_PANIC("flat state register ", state.numQubits(),
                   " != chunked register ", numQubits_);
    for (Index i = 0; i < stateSize(numQubits_); ++i)
        amp(i) = state[i];
}

double
ChunkedStateVector::norm() const
{
    double sum = 0.0;
    for (const auto &c : chunks_)
        for (const Amp &a : c)
            sum += std::norm(a);
    return sum;
}

} // namespace qgpu
