/**
 * @file
 * Chunked state vector, mirroring QISKit-Aer's partitioning (paper
 * §III-B Step 1): the top index bits select a chunk, the low
 * @c chunkBits bits are the offset inside it. Chunks are the unit of
 * CPU<->GPU transfer, pruning, and compression.
 */

#ifndef QGPU_STATEVEC_CHUNKED_HH
#define QGPU_STATEVEC_CHUNKED_HH

#include <span>
#include <vector>

#include "common/bits.hh"
#include "common/types.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{

/**
 * A state vector stored as 2^(n - chunkBits) chunks of 2^chunkBits
 * amplitudes each.
 */
class ChunkedStateVector
{
  public:
    /** Initialize to |0...0>. */
    ChunkedStateVector(int num_qubits, int chunk_bits);

    int numQubits() const { return numQubits_; }
    int chunkBits() const { return chunkBits_; }
    Index numChunks() const { return Index{1} << (numQubits_ - chunkBits_); }
    Index chunkSize() const { return Index{1} << chunkBits_; }
    std::uint64_t chunkBytes() const { return chunkSize() * ampBytes; }

    std::vector<Amp> &chunk(Index c) { return chunks_[c]; }
    const std::vector<Amp> &chunk(Index c) const { return chunks_[c]; }

    /** Global amplitude accessor. */
    Amp &amp(Index i)
    { return chunks_[i >> chunkBits_][i & bits::lowMask(chunkBits_)]; }
    const Amp &amp(Index i) const
    { return chunks_[i >> chunkBits_][i & bits::lowMask(chunkBits_)]; }

    /**
     * Re-partition into chunks of @p new_bits amplitudes. Used by the
     * dynamic chunk-size selection of Algorithm 1.
     */
    void rechunk(int new_bits);

    /** True iff every amplitude in chunk @p c is exactly zero. */
    bool chunkIsZero(Index c) const;

    /**
     * Copy the listed chunks, in order, into the contiguous buffer at
     * @p dst (which must hold members.size() * chunkSize() amps).
     * With @p members from GatePlan::membersInto this assembles the
     * sub-register a cross-chunk gate group acts on; the dispatch
     * layer runs its contiguous fast kernels on it and scatters back.
     */
    void gatherChunks(std::span<const Index> members, Amp *dst) const;

    /** Inverse of gatherChunks: copy the buffer back into the chunks. */
    void scatterChunks(std::span<const Index> members, const Amp *src);

    /** Copy out as a flat state vector. */
    StateVector toFlat() const;

    /** Load from a flat state vector (must match register size). */
    void fromFlat(const StateVector &state);

    /** Sum of |a_i|^2 over all chunks. */
    double norm() const;

  private:
    int numQubits_;
    int chunkBits_;
    std::vector<std::vector<Amp>> chunks_;
};

} // namespace qgpu

#endif // QGPU_STATEVEC_CHUNKED_HH
