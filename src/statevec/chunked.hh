/**
 * @file
 * Chunked state vector, mirroring QISKit-Aer's partitioning (paper
 * §III-B Step 1): the top index bits select a chunk, the low
 * @c chunkBits bits are the offset inside it. Chunks are the unit of
 * CPU<->GPU transfer, pruning, and compression.
 */

#ifndef QGPU_STATEVEC_CHUNKED_HH
#define QGPU_STATEVEC_CHUNKED_HH

#include <memory>
#include <span>
#include <vector>

#include "common/bits.hh"
#include "common/types.hh"
#include "statevec/chunk_storage.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{

/**
 * A state vector stored as 2^(n - chunkBits) chunks of 2^chunkBits
 * amplitudes each.
 */
class ChunkedStateVector
{
  public:
    /** Initialize to |0...0>. */
    ChunkedStateVector(int num_qubits, int chunk_bits);

    /**
     * Initialize to |0...0> under the given storage policy. Non-raw
     * kinds never materialize the full register: all chunks start
     * elided (known zero) and only the working set is ever
     * decompressed at once — the memory headroom the compressed /
     * spill backends exist for.
     */
    ChunkedStateVector(int num_qubits, int chunk_bits,
                       const StorageConfig &storage);

    // The residency manager points back at this object's chunk slots,
    // so the state is pinned in place.
    ChunkedStateVector(const ChunkedStateVector &) = delete;
    ChunkedStateVector &operator=(const ChunkedStateVector &) = delete;

    int numQubits() const { return numQubits_; }
    int chunkBits() const { return chunkBits_; }
    Index numChunks() const { return Index{1} << (numQubits_ - chunkBits_); }
    Index chunkSize() const { return Index{1} << chunkBits_; }

    /**
     * Stored bytes of one chunk — the unit every modeled H2D/D2H/peer
     * transfer and capacity computation is priced in. Halves in f32
     * mode. Adaptive mode reports the f64 size here (chunks start in
     * the fp32 lane but may be promoted at any sweep, so uniform
     * capacity planning must assume the larger lane); per-chunk
     * accounting uses chunkStoredBytes.
     */
    std::uint64_t chunkBytes() const
    {
        return chunkSize() * (precision_ == Precision::f32
                                  ? ampStoredBytes(true)
                                  : ampBytes);
    }

    /**
     * Direct chunk access. Under bounded storage a non-resident chunk
     * is made resident first (scheduling thread only — parallel
     * workers must touch pinned chunks exclusively, which are always
     * resident); the empty-slot check makes resident access free.
     */
    std::vector<Amp> &chunk(Index c)
    {
        if (residency_ && chunks_[c].empty())
            residency_->ensure(c);
        return chunks_[c];
    }
    const std::vector<Amp> &chunk(Index c) const
    {
        if (residency_ && chunks_[c].empty())
            residency_->ensure(c);
        return chunks_[c];
    }

    /** Global amplitude accessor. */
    Amp &amp(Index i)
    {
        return chunk(i >> chunkBits_)[i & bits::lowMask(chunkBits_)];
    }
    const Amp &amp(Index i) const
    {
        return chunk(i >> chunkBits_)[i & bits::lowMask(chunkBits_)];
    }

    /**
     * Re-partition into chunks of @p new_bits amplitudes. Used by the
     * dynamic chunk-size selection of Algorithm 1.
     */
    void rechunk(int new_bits);

    /** True iff every amplitude in chunk @p c is exactly zero. */
    bool chunkIsZero(Index c) const;

    /**
     * Copy the listed chunks, in order, into the contiguous buffer at
     * @p dst (which must hold members.size() * chunkSize() amps).
     * With @p members from GatePlan::membersInto this assembles the
     * sub-register a cross-chunk gate group acts on; the dispatch
     * layer runs its contiguous fast kernels on it and scatters back.
     */
    void gatherChunks(std::span<const Index> members, Amp *dst) const;

    /** Inverse of gatherChunks: copy the buffer back into the chunks. */
    void scatterChunks(std::span<const Index> members, const Amp *src);

    /** Copy out as a flat state vector. */
    StateVector toFlat() const;

    /** Load from a flat state vector (must match register size). */
    void fromFlat(const StateVector &state);

    /** Sum of |a_i|^2 over all chunks. */
    double norm() const;

    /** Storage precision mode (Precision::f64 unless selected). */
    Precision precision() const { return precision_; }

    /** Adaptive promotion threshold (see setPrecision). */
    double promoteThreshold() const { return promoteThreshold_; }

    /**
     * Select the storage precision (common/types.hh). @c f32 places
     * every chunk in the fp32 lane and rounds it immediately;
     * @c adaptive tags chunks individually — a chunk whose largest
     * amplitude component magnitude falls below
     * @p promote_threshold is promoted to (kept in) the f64 lane,
     * everything else lives in the fp32 lane; @c f64 clears all tags.
     * Computation is always double: the lane only decides how the
     * chunk is STORED between sweeps, i.e. what the transfers and the
     * codec move.
     */
    void setPrecision(Precision p, double promote_threshold = 1e-6);

    /**
     * Re-apply the precision policy after a sweep's functional
     * updates: adaptive mode re-tags every chunk, then each fp32-lane
     * chunk is rounded through fp32 storage (quantizeAmpF32). No-op
     * in f64 mode. Elementwise and lane decisions are per chunk, so
     * the result is independent of thread count and chunk geometry
     * only decides tag granularity.
     */
    void refreshPrecision();

    /** True when chunk @p c currently lives in the fp32 lane. */
    bool chunkIsF32(Index c) const
    {
        return !chunkF32_.empty() && chunkF32_[c] != 0;
    }

    /** Stored bytes of chunk @p c under its current lane. */
    std::uint64_t chunkStoredBytes(Index c) const
    {
        return chunkSize() * ampStoredBytes(chunkIsF32(c));
    }

    /** Stored bytes of the whole register under current lanes. */
    std::uint64_t totalStoredBytes() const;

    /** Chunks currently in the f64 lane due to adaptive promotion
     *  (0 outside adaptive mode). */
    Index promotedChunks() const;

    /** True when a bounded (non-raw) storage backend is active. */
    bool boundedStorage() const { return residency_ != nullptr; }

    /** The residency manager (nullptr under raw storage). Sweep
     *  executors use it to pin the chunk blocks they work on. */
    ChunkResidency *residency() const { return residency_.get(); }

    /**
     * Switch the storage policy of an existing state. Leaving raw
     * scans current chunks (byte-zero ones are elided) and evicts
     * down to the working-set bound; returning to raw materializes
     * everything.
     */
    void configureStorage(const StorageConfig &storage);

    /** Per-chunk owning device for shard-balanced eviction
     *  (no-op under raw storage). */
    void setDeviceMap(std::vector<int> device_of)
    {
        if (residency_)
            residency_->setDeviceMap(std::move(device_of));
    }

    /** Storage counters (all zero under raw storage). */
    StorageStats storageStats() const
    {
        return residency_ ? residency_->stats() : StorageStats{};
    }

  private:
    void retagChunks();
    void setupResidency();

    int numQubits_;
    int chunkBits_;
    std::vector<std::vector<Amp>> chunks_;
    Precision precision_ = Precision::f64;
    double promoteThreshold_ = 1e-6;
    /** Per-chunk lane tag (1 = fp32); empty in f64 mode. */
    std::vector<std::uint8_t> chunkF32_;
    StorageConfig storageCfg_;
    /** Present only under bounded storage; declared last so it is
     *  destroyed before the chunk slots it references. */
    std::unique_ptr<ChunkResidency> residency_;
};

} // namespace qgpu

#endif // QGPU_STATEVEC_CHUNKED_HH
