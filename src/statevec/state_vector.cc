#include "statevec/state_vector.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/parallel.hh"
#include "statevec/kernel_dispatch.hh"

namespace qgpu
{

StateVector::StateVector(int num_qubits)
    : numQubits_(num_qubits), amps_(stateSize(num_qubits), Amp{0, 0})
{
    amps_[0] = Amp{1, 0};
}

void
StateVector::apply(const Gate &gate)
{
    const WallClock wall;
    Amp *data = amps_.data();
    const KernelSpec spec = makeKernelSpec(gate);
    const Index items = kernelWorkItems(spec, numQubits_);
    const int threads = simThreads();
    if (threads <= 1) {
        applyKernel(spec, data, numQubits_, 0, items);
    } else {
        // Work items (pairs/groups/amplitudes) are independent, so
        // the range splits freely across the pool's workers.
        parallelFor(0, items, threads,
                    [&](std::uint64_t lo, std::uint64_t hi) {
                        applyKernel(spec, data, numQubits_, lo, hi);
                    });
    }
    recordKernelMetrics(spec.kind,
                        items * static_cast<Index>(
                                    kernelItemWidth(spec)));
    MetricsRegistry::global().observe("apply.wall_time",
                                      wall.seconds());
}

void
StateVector::apply(const Circuit &circuit)
{
    if (circuit.numQubits() != numQubits_)
        QGPU_PANIC("circuit register ", circuit.numQubits(),
                   " != state register ", numQubits_);
    for (const Gate &g : circuit.gates())
        apply(g);
}

double
StateVector::norm() const
{
    double sum = 0.0;
    for (const Amp &a : amps_)
        sum += std::norm(a);
    return sum;
}

double
StateVector::fidelity(const StateVector &other) const
{
    Amp inner{0, 0};
    for (Index i = 0; i < size(); ++i)
        inner += std::conj(amps_[i]) * other.amps_[i];
    return std::norm(inner);
}

double
StateVector::maxAbsDiff(const StateVector &other) const
{
    double worst = 0.0;
    for (Index i = 0; i < size(); ++i)
        worst = std::max(worst, std::abs(amps_[i] - other.amps_[i]));
    return worst;
}

Index
StateVector::countZeros(double tol) const
{
    Index count = 0;
    for (const Amp &a : amps_)
        if (std::abs(a.real()) <= tol && std::abs(a.imag()) <= tol)
            ++count;
    return count;
}

void
StateVector::reset()
{
    std::fill(amps_.begin(), amps_.end(), Amp{0, 0});
    amps_[0] = Amp{1, 0};
}

StateVector
simulateReference(const Circuit &circuit)
{
    StateVector state(circuit.numQubits());
    state.apply(circuit);
    return state;
}

} // namespace qgpu
