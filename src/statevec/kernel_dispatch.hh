/**
 * @file
 * Specialized, vectorization-friendly gate-kernel dispatch.
 *
 * Every gate is classified once into a KernelKind and carried as a
 * KernelSpec (small matrices copied out of the GateMatrix, targets
 * pre-sorted, control masks precomputed). Application then runs a
 * dedicated kernel over a contiguous Amp array with strided inner
 * loops the compiler can vectorize — stride-1 pair loops for low
 * targets, blocked two-level loops for high targets — instead of the
 * generic accessor-indirected dense matvec in kernels.hh.
 *
 * kernels.hh remains the reference implementation; the differential
 * suite (tests/test_kernel_dispatch.cc) asserts every specialized
 * kernel is bit-identical (tolerance 0) to it. All kernels take a
 * [begin, end) range in the kind's work-item space so parallel
 * callers can split freely; any split yields the same result as one
 * full-range call.
 *
 * Per-kind invocation/amplitude counters are published to
 * MetricsRegistry under "kernel.<kind>.invocations" and
 * "kernel.<kind>.amps" by the apply layers (once per gate, so the
 * hot loops never touch the registry mutex).
 */

#ifndef QGPU_STATEVEC_KERNEL_DISPATCH_HH
#define QGPU_STATEVEC_KERNEL_DISPATCH_HH

#include <vector>

#include "common/types.hh"
#include "qc/gate.hh"

namespace qgpu
{

/**
 * Kernel classes in dispatch order. Diagonal kinds touch each
 * amplitude once; Perm1q moves amplitude pairs without mixing;
 * Ctrl1q touches only the pairs whose control bits are all set;
 * the dense kinds run the full matvec at fixed, unrolled width.
 */
enum class KernelKind
{
    Diag1q,  ///< 1q diagonal (Z, S, T, RZ, P, diagonal 1q Custom)
    Diag2q,  ///< 2q diagonal (CZ, CP, CRZ, RZZ, diagonal 2q Custom)
    DiagK,   ///< k>=3 diagonal (CCZ, fused diagonal Custom)
    Perm1q,  ///< 1q anti-diagonal / X-like (X, Y)
    Ctrl1q,  ///< controlled 1q with dense target block (CX, CY, CCX)
    Dense1q, ///< dense 1q (H, SX, RX, RY, U, dense 1q Custom)
    Dense2q, ///< dense 2q (SWAP, RXX, RYY, dense 2q Custom)
    DenseK,  ///< dense k>=3 (CSWAP, fused dense Custom)
};

inline constexpr int numKernelKinds = 8;

/** Short lower-case kind mnemonic ("diag1q", "ctrl1q", ...). */
const char *kernelKindName(KernelKind kind);

/**
 * Execution tier a spec is lowered for. @c Exact runs the default
 * kernels, bit-identical (tolerance 0) to kernels.hh. @c Fast runs
 * the duplicated kernels in kernel_fast.cc, compiled with
 * -ffp-contract=fast and the host's FMA/AVX-512 instruction sets
 * (CMake option QGPU_FAST_MATH): same arithmetic, contracted
 * rounding, accuracy-bounded at 1e-12 against Exact by the
 * differential suites.
 */
enum class KernelTier
{
    Exact,
    Fast,
};

/**
 * Process-wide tier makeKernelSpec lowers new specs for. Defaults to
 * Exact; engines set it (scoped) from ExecOptions::fastMath, benches
 * and tests set it directly. Deliberately NOT read from the
 * environment here: QGPU_FAST_MATH=1 opts the ENGINES in (see
 * ExecOptions), while direct kernel users — including the tolerance-0
 * differential suites — stay exact unless they ask.
 */
KernelTier kernelTier();
void setKernelTier(KernelTier tier);

/**
 * True when kernel_fast.cc was compiled with the fast-math flag set
 * (QGPU_FAST_MATH=ON). When false the Fast tier still dispatches to
 * the duplicated kernels, which then compile under the default flags
 * and meet the 1e-12 contract trivially.
 */
bool fastMathCompiled();

/** RAII tier override for engines/benches: set on entry, restore. */
class ScopedKernelTier
{
  public:
    explicit ScopedKernelTier(KernelTier tier) : prev_(kernelTier())
    {
        setKernelTier(tier);
    }
    ~ScopedKernelTier() { setKernelTier(prev_); }
    ScopedKernelTier(const ScopedKernelTier &) = delete;
    ScopedKernelTier &operator=(const ScopedKernelTier &) = delete;

  private:
    KernelTier prev_;
};

/**
 * A gate lowered to its kernel class: targets pre-sorted, control
 * mask precomputed, and the (small) matrix copied into inline
 * storage. Built once per gate with makeKernelSpec, then applied to
 * any number of chunks/ranges.
 */
struct KernelSpec
{
    KernelKind kind = KernelKind::DenseK;

    /** Gate qubits in matrix order (matrix index bit j <-> qubits[j]). */
    std::vector<int> qubits;

    /** Single target (1q kinds and Ctrl1q). */
    int target = -1;

    /** Sorted targets for Diag2q / Dense2q (tLo < tHi). */
    int tLo = -1, tHi = -1;

    /** Ctrl1q: controls+target ascending, and the control bit mask. */
    std::vector<int> fixedSorted;
    Index ctrlMask = 0;

    /**
     * 1q matrix storage: row-major 2x2 for Dense1q/Perm1q/Ctrl1q,
     * {d0, d1} diagonal entries for Diag1q.
     */
    Amp m1[4] = {};

    /** Diag2q lookup indexed by bit(tLo) | bit(tHi) << 1. */
    Amp lut[4] = {};

    /** Full matrix for Dense2q / DenseK / DiagK. */
    GateMatrix matrix{2};

    /** Tier the spec was lowered for (kernelTier() at build time). */
    KernelTier tier = KernelTier::Exact;
};

/** Classify @p gate and lower it to a KernelSpec (once per gate). */
KernelSpec makeKernelSpec(const Gate &gate);

/**
 * Number of independent work items applyKernel iterates for this
 * spec on an n-qubit register: amplitudes for diagonal kinds, pairs
 * for 1q kinds, control-satisfying pairs for Ctrl1q, groups for the
 * dense kinds. Parallel callers split [0, this) into ranges.
 */
Index kernelWorkItems(const KernelSpec &spec, int num_qubits);

/** Amplitudes written per work item (1, 2, or the matvec width). */
int kernelItemWidth(const KernelSpec &spec);

/**
 * Apply the spec'd gate to the contiguous n-qubit register at
 * @p data, over work items [begin, end). Bit-identical to
 * kernels::applyGate on the same range for finite amplitudes.
 */
void applyKernel(const KernelSpec &spec, Amp *data, int num_qubits,
                 Index begin = 0, Index end = ~Index{0});

/**
 * Publish one gate application's per-kind counters:
 * kernel.<kind>.invocations += 1, kernel.<kind>.amps += @p amps.
 * Callers pass the number of amplitudes actually written.
 */
void recordKernelMetrics(KernelKind kind, Index amps);

/**
 * Low-level contiguous kernels, exposed for the chunked diagonal
 * path (which folds chunk-global selector bits into the LUT before
 * calling) and for microbenchmarks. Ranges are in each kernel's own
 * work-item space, as in applyKernel.
 */
namespace kern
{

/** amp[i] *= f over amplitude indices [begin, end). */
void scale(Amp *data, Amp f, Index begin, Index end);

/** 1q diagonal: amp[i] *= d[bit(i, t)] over amplitudes [begin, end). */
void diag1(Amp *data, int t, Amp d0, Amp d1, Index begin, Index end);

/**
 * 2q diagonal over amplitudes [begin, end): amp[i] *=
 * lut[bit(i, t_lo) | bit(i, t_hi) << 1], with t_lo < t_hi.
 */
void diag2(Amp *data, int t_lo, int t_hi, const Amp *lut,
           Index begin, Index end);

/**
 * k-qubit diagonal over amplitudes [begin, end): the diagonal entry
 * is selected by the amplitude's bits at @p qubits (matrix order).
 */
void diagK(Amp *data, const std::vector<int> &qubits,
           const GateMatrix &m, Index begin, Index end);

/** Dense 1q over pair indices [begin, end); @p m row-major 2x2. */
void dense1(Amp *data, int t, const Amp *m, Index begin, Index end);

/** X-like 1q over pairs [begin, end): a0' = m01*a1, a1' = m10*a0. */
void perm1(Amp *data, int t, Amp m01, Amp m10, Index begin,
           Index end);

/**
 * Controlled dense 1q over control-satisfying pair indices
 * [begin, end): @p fixed_sorted lists controls+target ascending,
 * @p cmask is the control bit mask, @p m the 2x2 target block.
 */
void ctrl1(Amp *data, int t, const std::vector<int> &fixed_sorted,
           Index cmask, const Amp *m, Index begin, Index end);

/**
 * Dense 2q over group indices [begin, end); @p q0, @p q1 in matrix
 * order (matrix index bit 0 <-> q0), @p m row-major 4x4.
 */
void dense2(Amp *data, int q0, int q1, const Amp *m, Index begin,
            Index end);

} // namespace kern

/**
 * Fast-tier duplicates of the kern:: kernels plus the dense k-qubit
 * matvec, defined in kernel_fast.cc — a separate translation unit so
 * CMake can hand it -ffp-contract=fast and the native FMA/AVX-512
 * sets without touching the exact tier's code generation. Signatures
 * and work-item spaces match kern:: exactly; results are within
 * 1e-12 of the exact kernels (contracted rounding only).
 */
namespace kernfast
{

void scale(Amp *data, Amp f, Index begin, Index end);
void diag1(Amp *data, int t, Amp d0, Amp d1, Index begin, Index end);
void diag2(Amp *data, int t_lo, int t_hi, const Amp *lut,
           Index begin, Index end);
void diagK(Amp *data, const std::vector<int> &qubits,
           const GateMatrix &m, Index begin, Index end);
void dense1(Amp *data, int t, const Amp *m, Index begin, Index end);
void perm1(Amp *data, int t, Amp m01, Amp m10, Index begin,
           Index end);
void ctrl1(Amp *data, int t, const std::vector<int> &fixed_sorted,
           Index cmask, const Amp *m, Index begin, Index end);
void dense2(Amp *data, int q0, int q1, const Amp *m, Index begin,
            Index end);

/** Dense k>=3 matvec over group indices [begin, end). */
void denseK(Amp *data, int num_qubits,
            const std::vector<int> &qubits, const GateMatrix &m,
            Index begin, Index end);

/** Fast-tier dispatch, mirroring applyKernel's switch. */
void applyKernelFast(const KernelSpec &spec, Amp *data,
                     int num_qubits, Index begin, Index end);

} // namespace kernfast

} // namespace qgpu

#endif // QGPU_STATEVEC_KERNEL_DISPATCH_HH
