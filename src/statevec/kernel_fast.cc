/**
 * @file
 * Fast-tier kernels: the 8 specialized kernels of kernel_dispatch.cc
 * duplicated into their own translation unit so the build can compile
 * JUST this file with -ffp-contract=fast plus the host's FMA/AVX-512
 * instruction sets (CMake option QGPU_FAST_MATH) while the exact tier
 * keeps the bit-identity-preserving code generation.
 *
 * The loop structure deliberately mirrors kern:: one-for-one — the
 * speedup comes from the code generation, not a different algorithm:
 * under contraction GCC fuses each complex multiply-add's
 * mul/add pairs into vfmaddsub/vfmsubadd FMAs, halving the rounding
 * steps and the arithmetic-port pressure. Each fused step rounds once
 * instead of twice, so any output differs from the exact tier by a
 * reassociation-free sequence of at most one ulp per fused pair;
 * the differential suites bound the end-to-end effect at 1e-12.
 *
 * If QGPU_FAST_MATH is OFF this file compiles under the default flags
 * and the Fast tier degenerates into a second exact tier (the 1e-12
 * contract holds trivially); fastMathCompiled() tells callers which
 * one they got.
 */

#include <algorithm>
#include <array>

#include "common/bits.hh"
#include "common/logging.hh"
#include "statevec/kernel_dispatch.hh"

namespace qgpu
{

bool
fastMathCompiled()
{
#ifdef QGPU_FAST_MATH_COMPILED
    return true;
#else
    return false;
#endif
}

namespace kernfast
{

namespace
{

// Component-wise complex multiply, as in kernel_dispatch.cc's cmul —
// but compiled under -ffp-contract=fast, so the mul/add chains the
// callers build from it contract into FMAs.
inline Amp
cmul(const Amp &a, const Amp &b)
{
    return Amp{a.real() * b.real() - a.imag() * b.imag(),
               a.real() * b.imag() + a.imag() * b.real()};
}

} // namespace

void
scale(Amp *data, Amp f, Index begin, Index end)
{
    for (Index i = begin; i < end; ++i)
        data[i] = cmul(data[i], f);
}

void
diag1(Amp *data, int t, Amp d0, Amp d1, Index begin, Index end)
{
    if (t == 0) {
        for (Index i = begin; i < end; ++i)
            data[i] = cmul(data[i], (i & 1) ? d1 : d0);
        return;
    }
    const Index run = Index{1} << t;
    Index i = begin;
    while (i < end) {
        const Index blk_end = std::min(end, (i | (run - 1)) + 1);
        const Amp f = ((i >> t) & 1) ? d1 : d0;
        for (; i < blk_end; ++i)
            data[i] = cmul(data[i], f);
    }
}

void
diag2(Amp *data, int t_lo, int t_hi, const Amp *lut, Index begin,
      Index end)
{
    if (t_lo == 0) {
        for (Index i = begin; i < end; ++i) {
            const int sel = static_cast<int>(i & 1) |
                            (static_cast<int>((i >> t_hi) & 1) << 1);
            data[i] = cmul(data[i], lut[sel]);
        }
        return;
    }
    const Index run = Index{1} << t_lo;
    Index i = begin;
    while (i < end) {
        const Index blk_end = std::min(end, (i | (run - 1)) + 1);
        const int sel = static_cast<int>((i >> t_lo) & 1) |
                        (static_cast<int>((i >> t_hi) & 1) << 1);
        const Amp f = lut[sel];
        for (; i < blk_end; ++i)
            data[i] = cmul(data[i], f);
    }
}

void
diagK(Amp *data, const std::vector<int> &qubits, const GateMatrix &m,
      Index begin, Index end)
{
    const int k = static_cast<int>(qubits.size());
    for (Index i = begin; i < end; ++i) {
        int sel = 0;
        for (int j = 0; j < k; ++j)
            sel |= static_cast<int>(bits::testBit(i, qubits[j])) << j;
        data[i] = cmul(data[i], m.at(sel, sel));
    }
}

void
dense1(Amp *data, int t, const Amp *m, Index begin, Index end)
{
    const Amp m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
    if (t == 0) {
        for (Index p = begin; p < end; ++p) {
            Amp *a = data + 2 * p;
            const Amp a0 = a[0], a1 = a[1];
            a[0] = cmul(m00, a0) + cmul(m01, a1);
            a[1] = cmul(m10, a0) + cmul(m11, a1);
        }
        return;
    }
    const Index run = Index{1} << t;
    Index p = begin;
    while (p < end) {
        const Index blk_end = std::min(end, (p | (run - 1)) + 1);
        Amp *base = data + ((p >> t) << (t + 1));
        Index j = p & (run - 1);
        for (; p < blk_end; ++p, ++j) {
            const Amp a0 = base[j], a1 = base[j + run];
            base[j] = cmul(m00, a0) + cmul(m01, a1);
            base[j + run] = cmul(m10, a0) + cmul(m11, a1);
        }
    }
}

void
perm1(Amp *data, int t, Amp m01, Amp m10, Index begin, Index end)
{
    if (t == 0) {
        for (Index p = begin; p < end; ++p) {
            Amp *a = data + 2 * p;
            const Amp a0 = a[0], a1 = a[1];
            a[0] = cmul(m01, a1);
            a[1] = cmul(m10, a0);
        }
        return;
    }
    const Index run = Index{1} << t;
    Index p = begin;
    while (p < end) {
        const Index blk_end = std::min(end, (p | (run - 1)) + 1);
        Amp *base = data + ((p >> t) << (t + 1));
        Index j = p & (run - 1);
        for (; p < blk_end; ++p, ++j) {
            const Amp a0 = base[j], a1 = base[j + run];
            base[j] = cmul(m01, a1);
            base[j + run] = cmul(m10, a0);
        }
    }
}

void
ctrl1(Amp *data, int t, const std::vector<int> &fixed_sorted,
      Index cmask, const Amp *m, Index begin, Index end)
{
    const Amp m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
    const Index tbit = Index{1} << t;
    const int low = fixed_sorted.front();
    if (low == 0) {
        for (Index w = begin; w < end; ++w) {
            const Index i0 =
                bits::insertZeroBits(w, fixed_sorted) | cmask;
            const Amp a0 = data[i0], a1 = data[i0 | tbit];
            data[i0] = cmul(m00, a0) + cmul(m01, a1);
            data[i0 | tbit] = cmul(m10, a0) + cmul(m11, a1);
        }
        return;
    }
    const Index run = Index{1} << low;
    Index w = begin;
    while (w < end) {
        const Index blk_end = std::min(end, (w | (run - 1)) + 1);
        Amp *base =
            data +
            (bits::insertZeroBits(w & ~(run - 1), fixed_sorted) |
             cmask);
        Index j = w & (run - 1);
        for (; w < blk_end; ++w, ++j) {
            const Amp a0 = base[j], a1 = base[j + tbit];
            base[j] = cmul(m00, a0) + cmul(m01, a1);
            base[j + tbit] = cmul(m10, a0) + cmul(m11, a1);
        }
    }
}

void
dense2(Amp *data, int q0, int q1, const Amp *m, Index begin,
       Index end)
{
    const int tl = std::min(q0, q1), th = std::max(q0, q1);
    const Index o0 = Index{1} << q0, o1 = Index{1} << q1;

    auto update = [&](Amp *a) {
        const Amp in[4] = {a[0], a[o0], a[o1], a[o0 + o1]};
        Amp out[4];
        for (int r = 0; r < 4; ++r) {
            Amp sum{0, 0};
            for (int c = 0; c < 4; ++c)
                sum += cmul(m[4 * r + c], in[c]);
            out[r] = sum;
        }
        a[0] = out[0];
        a[o0] = out[1];
        a[o1] = out[2];
        a[o0 + o1] = out[3];
    };

    if (tl == 0) {
        for (Index g = begin; g < end; ++g)
            update(data +
                   bits::insertZeroBit(bits::insertZeroBit(g, tl),
                                       th));
        return;
    }
    const Index run = Index{1} << tl;
    Index g = begin;
    while (g < end) {
        const Index blk_end = std::min(end, (g | (run - 1)) + 1);
        Amp *base =
            data + bits::insertZeroBit(
                       bits::insertZeroBit(g & ~(run - 1), tl), th);
        Index j = g & (run - 1);
        for (; g < blk_end; ++g, ++j)
            update(base + j);
    }
}

void
denseK(Amp *data, int num_qubits, const std::vector<int> &qubits,
       const GateMatrix &m, Index begin, Index end)
{
    // Same offset-table matvec as kernels::applyK, but with the
    // accessor indirection flattened and cmul in place of operator*
    // so the accumulation chain contracts.
    const int k = static_cast<int>(qubits.size());
    const int dim = 1 << k;

    std::vector<int> sorted = qubits;
    std::sort(sorted.begin(), sorted.end());

    std::array<Index, 64> offset{};
    for (int b = 0; b < dim; ++b) {
        Index off = 0;
        for (int j = 0; j < k; ++j)
            if (bits::testBit(static_cast<std::uint64_t>(b), j))
                off |= Index{1} << qubits[j];
        offset[b] = off;
    }

    std::array<Amp, 64> in;
    const Index groups = stateSize(num_qubits - k);
    end = std::min(end, groups);
    for (Index g = begin; g < end; ++g) {
        const Index base = bits::insertZeroBits(g, sorted);
        for (int b = 0; b < dim; ++b)
            in[b] = data[base | offset[b]];
        for (int r = 0; r < dim; ++r) {
            Amp sum{0, 0};
            for (int c = 0; c < dim; ++c)
                sum += cmul(m.at(r, c), in[c]);
            data[base | offset[r]] = sum;
        }
    }
}

void
applyKernelFast(const KernelSpec &spec, Amp *data, int num_qubits,
                Index begin, Index end)
{
    switch (spec.kind) {
      case KernelKind::Diag1q:
        diag1(data, spec.target, spec.m1[0], spec.m1[1], begin, end);
        return;
      case KernelKind::Diag2q:
        diag2(data, spec.tLo, spec.tHi, spec.lut, begin, end);
        return;
      case KernelKind::DiagK:
        diagK(data, spec.qubits, spec.matrix, begin, end);
        return;
      case KernelKind::Perm1q:
        perm1(data, spec.target, spec.m1[1], spec.m1[2], begin, end);
        return;
      case KernelKind::Ctrl1q:
        ctrl1(data, spec.target, spec.fixedSorted, spec.ctrlMask,
              spec.m1, begin, end);
        return;
      case KernelKind::Dense1q:
        dense1(data, spec.target, spec.m1, begin, end);
        return;
      case KernelKind::Dense2q:
        dense2(data, spec.qubits[0], spec.qubits[1],
               spec.matrix.data().data(), begin, end);
        return;
      case KernelKind::DenseK:
        denseK(data, num_qubits, spec.qubits, spec.matrix, begin,
               end);
        return;
    }
    QGPU_PANIC("unhandled kernel kind");
}

} // namespace kernfast
} // namespace qgpu
