/**
 * @file
 * Chunk-aware gate application. A gate partitions the chunks into
 * independent work groups: diagonal or chunk-local gates touch each
 * chunk alone (the paper's Case 1), while a non-diagonal gate with
 * targets above the chunk boundary pairs chunks at a stride (Case 2).
 *
 * Engines walk the groups themselves (to schedule transfers and skip
 * pruned groups); the functional update for one group lives here so
 * every engine computes bit-identical states.
 *
 * Groups of one plan touch disjoint chunk sets, so applying many
 * groups concurrently is race-free by construction; applyGroups and
 * applyGateChunked fan the groups out across the shared thread pool
 * (common/thread_pool.hh) when simThreads() > 1. Each worker reuses
 * one GroupScratch across its groups, so the hot loop performs no
 * per-group heap allocation.
 *
 * Gate application itself goes through the kernel-dispatch layer
 * (statevec/kernel_dispatch.hh): each gate is classified once into a
 * KernelKind, chunk-local groups run the specialized contiguous
 * kernels directly on the chunk, and cross-chunk groups are gathered
 * into a per-worker contiguous register, updated, and scattered back.
 */

#ifndef QGPU_STATEVEC_APPLY_HH
#define QGPU_STATEVEC_APPLY_HH

#include <functional>
#include <span>
#include <vector>

#include "statevec/chunked.hh"

namespace qgpu
{

/** Predicate: is chunk @p c guaranteed all-zero? */
using ZeroPredicate = std::function<bool(Index)>;

/**
 * Decomposition of one gate into independent chunk groups for a given
 * chunk size.
 */
class GatePlan
{
  public:
    GatePlan(const Gate &gate, int num_qubits, int chunk_bits);

    /** Plan for a whole sweep: the shared coupled chunk-index bit
     *  positions (sorted) instead of one gate's. An empty list is the
     *  per-chunk plan. */
    GatePlan(std::vector<int> global_bits, int num_qubits,
             int chunk_bits);

    /** True iff every group is a single chunk (paper's Case 1). */
    bool perChunk() const { return globalBits_.empty(); }

    /** Chunk-index bit positions that the gate couples (Case 2). */
    const std::vector<int> &globalBits() const { return globalBits_; }

    /** Number of independent groups. */
    Index numGroups() const { return numGroups_; }

    /** Chunks per group: 1 << globalBits.size(). */
    int chunksPerGroup() const { return 1 << globalBits_.size(); }

    /** Chunk indices belonging to group @p group (ascending). */
    std::vector<Index> members(Index group) const;

    /** members() into @p out (cleared first): the allocation-free
     *  form used by the parallel fan-out's per-worker scratch. */
    void membersInto(Index group, std::vector<Index> &out) const;

  private:
    int chunkBits_;
    std::vector<int> globalBits_; // sorted positions in chunk-index space
    Index numGroups_;
};

/**
 * Per-worker reusable buffers for group application: the member chunk
 * indices and the contiguous gather register. Cross-chunk groups are
 * gathered into @c gathered, updated there by the specialized
 * contiguous kernels (statevec/kernel_dispatch.hh), and scattered
 * back; reusing one instance per worker keeps the hot loop free of
 * per-group heap allocation. Capacity retained across groups is
 * bounded by scratchRetainAmps() (common/cacheinfo.hh): a single
 * oversized group may grow the buffer, but the excess is released
 * before the next gather instead of pinning the high-water mark.
 */
struct GroupScratch
{
    std::vector<Index> members;
    std::vector<Amp> gathered;
};

/**
 * Apply @p gate to the chunks of group @p group only. All other groups
 * are untouched; applying the gate to every group in any order yields
 * the full-state update.
 */
void applyGroup(ChunkedStateVector &state, const Gate &gate,
                const GatePlan &plan, Index group);

/**
 * Apply @p gate to each listed group, fanned out across the thread
 * pool (simThreads() workers). Groups touch disjoint chunks, so the
 * concurrent application is race-free and bit-identical to the
 * sequential order.
 */
void applyGroups(ChunkedStateVector &state, const Gate &gate,
                 const GatePlan &plan, std::span<const Index> groups);

/**
 * Apply @p gate to the whole chunked state, skipping groups whose
 * member chunks are all reported zero by @p zero (mathematically a
 * no-op: an all-zero vector stays zero under any linear map). The
 * surviving groups run concurrently on the thread pool. @p zero must
 * be safe to call from several threads (engines pass pure functions
 * of immutable masks).
 */
void applyGateChunked(ChunkedStateVector &state, const Gate &gate,
                      const ZeroPredicate &zero = {});

/**
 * Apply one scheduled sweep (sched/sweep.hh) of @p gates in a single
 * chunk-major pass: instead of sweeping the whole state once per gate,
 * each chunk (or gathered cross-chunk register when @p global_bits is
 * non-empty) is loaded once and every gate of the sweep is chained
 * over it while it is cache-resident. One parallelFor dispatch covers
 * the whole sweep.
 *
 * Bit-identity contract: the result is bit-identical to running the
 * gates through applyGateChunked in order with the same @p zero
 * predicate. That holds because (a) the sweep partition refines or
 * equals each member gate's own partition, so per-amplitude operation
 * order is preserved, (b) gather/scatter are pure copies, and (c) the
 * executor makes exactly the same skip decisions: chunk-local and
 * diagonal work skips dead member chunks individually, cross-chunk
 * kernels run whenever any member is live. @p zero must be constant
 * across the sweep (sched/sweep.hh's involvement-boundary rule
 * guarantees the involvement mask is).
 *
 * Every gate must be chunk-local/diagonal or couple exactly the bits
 * in @p global_bits (sorted chunk-index positions) — i.e. the span
 * must be a sweep produced by nextSweep at this chunk size; anything
 * else is fatal.
 *
 * Publishes sweep.count / sweep.state_passes counters, the
 * sweep.gates_per_sweep histogram, and per-gate kernel counters with
 * the same modeled totals as applyGateChunked (once per gate per
 * sweep, never per chunk).
 */
void applySweepChunked(ChunkedStateVector &state,
                       std::span<const Gate> gates,
                       const std::vector<int> &global_bits,
                       const ZeroPredicate &zero = {});

/** Run a whole circuit sweep-by-sweep (nextSweep at the state's chunk
 *  size feeding applySweepChunked), the single-pass-per-sweep default
 *  path. */
void applyCircuitChunked(ChunkedStateVector &state,
                         const Circuit &circuit);

} // namespace qgpu

#endif // QGPU_STATEVEC_APPLY_HH
