/**
 * @file
 * End-of-circuit measurement: outcome probabilities, marginals over a
 * qubit subset, and shot sampling. The paper only measures at circuit
 * end, so no mid-circuit collapse is needed.
 */

#ifndef QGPU_STATEVEC_MEASURE_HH
#define QGPU_STATEVEC_MEASURE_HH

#include <map>
#include <vector>

#include "common/rng.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{

/** |a_i|^2 for every basis state. */
std::vector<double> probabilities(const StateVector &state);

/**
 * Marginal distribution over @p qubits (low-to-high significance in
 * the returned index).
 */
std::vector<double> marginalProbabilities(const StateVector &state,
                                          const std::vector<int> &qubits);

/**
 * Draw @p shots measurement outcomes; returns outcome -> count.
 * Sampling uses inverse-CDF over the probability vector.
 */
std::map<Index, std::uint64_t> sampleCounts(const StateVector &state,
                                            std::uint64_t shots,
                                            Rng &rng);

/** Probability that qubit @p q reads 1. */
double probabilityOfOne(const StateVector &state, int q);

} // namespace qgpu

#endif // QGPU_STATEVEC_MEASURE_HH
