/**
 * @file
 * End-of-circuit measurement: outcome probabilities, marginals over a
 * qubit subset, and shot sampling. The paper only measures at circuit
 * end, so no mid-circuit collapse is needed.
 */

#ifndef QGPU_STATEVEC_MEASURE_HH
#define QGPU_STATEVEC_MEASURE_HH

#include <map>
#include <vector>

#include "common/rng.hh"
#include "statevec/state_vector.hh"

namespace qgpu
{

/** |a_i|^2 for every basis state. */
std::vector<double> probabilities(const StateVector &state);

/**
 * Marginal distribution over @p qubits (low-to-high significance in
 * the returned index).
 */
std::vector<double> marginalProbabilities(const StateVector &state,
                                          const std::vector<int> &qubits);

/**
 * Draw @p shots measurement outcomes; returns outcome -> count.
 * Sampling uses inverse-CDF over the probability vector.
 */
std::map<Index, std::uint64_t> sampleCounts(const StateVector &state,
                                            std::uint64_t shots,
                                            Rng &rng);

/** Probability that qubit @p q reads 1. */
double probabilityOfOne(const StateVector &state, int q);

class ChunkedStateVector;

/**
 * Draw ONE measurement outcome with exactly one rng draw,
 * bit-compatible with `sampleCounts(state, 1, rng)`: the total norm
 * accumulates in ascending index order, the draw is
 * `rng.nextDouble() * acc`, and the outcome is the first index whose
 * running CDF reaches it (what lower_bound finds on the
 * non-decreasing CDF). The per-shot sampler of batched execution
 * (engine/batched.hh) — bit-compatibility is what makes noiseless
 * batched shots outcome-identical to N single runs.
 */
Index sampleOutcome(const StateVector &state, Rng &rng);

/**
 * Chunked overload: accumulates chunk-by-chunk in global index order
 * — the SAME floating-point sequence as the flat overload, so the
 * outcome is identical to flattening first (and therefore chunk-
 * geometry- and storage-backend-independent) without materializing
 * the flat state.
 */
Index sampleOutcome(const ChunkedStateVector &state, Rng &rng);

/**
 * Fold @p from into @p into (per-shot counts aggregation for
 * batched execution and the service layer).
 */
void mergeCounts(std::map<Index, std::uint64_t> &into,
                 const std::map<Index, std::uint64_t> &from);

} // namespace qgpu

#endif // QGPU_STATEVEC_MEASURE_HH
