/**
 * @file
 * Generic gate-application kernels, templated over an amplitude
 * accessor. These are the "vector-matrix multiplications in the form
 * of Equation 8" the paper describes.
 *
 * An Accessor is any callable mapping a global amplitude index to an
 * Amp reference.
 *
 * Since the kernel-dispatch layer landed (kernel_dispatch.hh), the
 * simulators run specialized contiguous kernels instead; this file is
 * the REFERENCE implementation the dispatch layer is differentially
 * tested against (bit-identical, tolerance 0), and still drives the
 * dense k-qubit case and non-contiguous accessors.
 */

#ifndef QGPU_STATEVEC_KERNELS_HH
#define QGPU_STATEVEC_KERNELS_HH

#include <algorithm>
#include <array>
#include <vector>

#include "common/bits.hh"
#include "common/types.hh"
#include "qc/gate.hh"

namespace qgpu
{
namespace kernels
{

/**
 * Apply a 1-qubit gate to every amplitude pair of an n-qubit register.
 * @p m is the row-major 2x2 matrix.
 */
template <typename Accessor>
void
apply1q(Accessor &&amp, int num_qubits, int target, const Amp *m,
        Index begin = 0, Index end = ~Index{0})
{
    const Index pairs = stateSize(num_qubits) >> 1;
    end = std::min(end, pairs);
    for (Index i = begin; i < end; ++i) {
        const Index i0 = bits::insertZeroBit(i, target);
        const Index i1 = i0 | (Index{1} << target);
        const Amp a0 = amp(i0);
        const Amp a1 = amp(i1);
        amp(i0) = m[0] * a0 + m[1] * a1;
        amp(i1) = m[2] * a0 + m[3] * a1;
    }
}

/**
 * Apply a diagonal 1-qubit gate: amplitude i picks diagonal entry
 * d[bit(i, target)].
 */
template <typename Accessor>
void
applyDiag1q(Accessor &&amp, int num_qubits, int target,
            const Amp *diag, Index begin = 0, Index end = ~Index{0})
{
    const Index size = stateSize(num_qubits);
    end = std::min(end, size);
    for (Index i = begin; i < end; ++i)
        amp(i) *= diag[bits::testBit(i, target)];
}

/**
 * Apply a generic k-qubit gate. @p gate_qubits follow the Gate matrix
 * convention: matrix index bit j corresponds to gate_qubits[j].
 */
template <typename Accessor>
void
applyK(Accessor &&amp, int num_qubits,
       const std::vector<int> &gate_qubits, const GateMatrix &m,
       Index begin = 0, Index end = ~Index{0})
{
    const int k = static_cast<int>(gate_qubits.size());
    const int dim = 1 << k;

    std::vector<int> sorted = gate_qubits;
    std::sort(sorted.begin(), sorted.end());

    // Address offsets of each matrix basis index relative to the group
    // base: basis bit j contributes 1 << gate_qubits[j].
    std::array<Index, 64> offset{};
    for (int b = 0; b < dim; ++b) {
        Index off = 0;
        for (int j = 0; j < k; ++j)
            if (bits::testBit(static_cast<std::uint64_t>(b), j))
                off |= Index{1} << gate_qubits[j];
        offset[b] = off;
    }

    std::array<Amp, 64> in;
    const Index groups = stateSize(num_qubits - k);
    end = std::min(end, groups);
    for (Index g = begin; g < end; ++g) {
        const Index base = bits::insertZeroBits(g, sorted);
        for (int b = 0; b < dim; ++b)
            in[b] = amp(base | offset[b]);
        for (int r = 0; r < dim; ++r) {
            Amp sum{0, 0};
            for (int c = 0; c < dim; ++c)
                sum += m.at(r, c) * in[c];
            amp(base | offset[r]) = sum;
        }
    }
}

/**
 * Apply a diagonal k-qubit gate: amplitude i picks the diagonal entry
 * selected by its bits at the gate qubits.
 */
template <typename Accessor>
void
applyDiagK(Accessor &&amp, int num_qubits,
           const std::vector<int> &gate_qubits, const GateMatrix &m,
           Index begin = 0, Index end = ~Index{0})
{
    const int k = static_cast<int>(gate_qubits.size());
    const Index size = stateSize(num_qubits);
    end = std::min(end, size);
    for (Index i = begin; i < end; ++i) {
        int sel = 0;
        for (int j = 0; j < k; ++j)
            sel |= bits::testBit(i, gate_qubits[j]) << j;
        amp(i) *= m.at(sel, sel);
    }
}

/**
 * Number of independent work items applyGate iterates for @p gate on
 * an n-qubit register (pairs, amplitudes, or groups). Parallel
 * callers split [0, this) into ranges.
 */
inline Index
gateWorkItems(const Gate &gate, int num_qubits)
{
    if (gate.isDiagonal())
        return stateSize(num_qubits);
    return stateSize(num_qubits - gate.numQubits());
}

/**
 * Dispatch on gate shape over work items [begin, end). This is the
 * one entry point both simulators use; the default range covers the
 * whole register.
 */
template <typename Accessor>
void
applyGate(Accessor &&amp, int num_qubits, const Gate &gate,
          Index begin = 0, Index end = ~Index{0})
{
    const GateMatrix m = gate.matrix();
    if (gate.numQubits() == 1) {
        if (gate.isDiagonal()) {
            const Amp diag[2] = {m.at(0, 0), m.at(1, 1)};
            applyDiag1q(amp, num_qubits, gate.qubits[0], diag,
                        begin, end);
        } else {
            const Amp flat[4] = {m.at(0, 0), m.at(0, 1),
                                 m.at(1, 0), m.at(1, 1)};
            apply1q(amp, num_qubits, gate.qubits[0], flat, begin,
                    end);
        }
        return;
    }
    if (gate.isDiagonal()) {
        applyDiagK(amp, num_qubits, gate.qubits, m, begin, end);
        return;
    }
    applyK(amp, num_qubits, gate.qubits, m, begin, end);
}

/**
 * Modeled floating-point work of applying @p gate to an n-qubit state:
 * complex multiply-adds per amplitude group times group count, at 8
 * flops per complex MAC. Drives the compute-engine timing and the
 * roofline (Fig. 15).
 */
inline double
gateFlops(const Gate &gate, int num_qubits)
{
    const int k = gate.numQubits();
    const double dim = static_cast<double>(1 << k);
    if (gate.isDiagonal()) {
        // One complex multiply (6 flops) per amplitude.
        return 6.0 * static_cast<double>(stateSize(num_qubits));
    }
    const double groups =
        static_cast<double>(stateSize(num_qubits - k));
    return groups * dim * dim * 8.0;
}

} // namespace kernels
} // namespace qgpu

#endif // QGPU_STATEVEC_KERNELS_HH
