#include "statevec/snapshot.hh"

#include <istream>
#include <ostream>

#include "common/logging.hh"
#include "compress/gfc.hh"

namespace qgpu
{

namespace
{

constexpr std::uint32_t snapshot_magic = 0x51475055; // "QGPU"

void
putU32(std::ostream &out, std::uint32_t v)
{
    char buf[4];
    for (int b = 0; b < 4; ++b)
        buf[b] = static_cast<char>(v >> (8 * b));
    out.write(buf, 4);
}

void
putU64(std::ostream &out, std::uint64_t v)
{
    char buf[8];
    for (int b = 0; b < 8; ++b)
        buf[b] = static_cast<char>(v >> (8 * b));
    out.write(buf, 8);
}

std::uint32_t
getU32(std::istream &in)
{
    unsigned char buf[4];
    in.read(reinterpret_cast<char *>(buf), 4);
    if (!in)
        QGPU_FATAL("snapshot: truncated stream");
    std::uint32_t v = 0;
    for (int b = 0; b < 4; ++b)
        v |= static_cast<std::uint32_t>(buf[b]) << (8 * b);
    return v;
}

std::uint64_t
getU64(std::istream &in)
{
    unsigned char buf[8];
    in.read(reinterpret_cast<char *>(buf), 8);
    if (!in)
        QGPU_FATAL("snapshot: truncated stream");
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b)
        v |= static_cast<std::uint64_t>(buf[b]) << (8 * b);
    return v;
}

} // namespace

void
saveState(const StateVector &state, std::ostream &out, bool compress)
{
    putU32(out, snapshot_magic);
    putU32(out, static_cast<std::uint32_t>(state.numQubits()));
    putU32(out, compress ? 1 : 0);

    if (!compress) {
        putU64(out, state.size() * ampBytes);
        out.write(reinterpret_cast<const char *>(
                      state.amplitudes().data()),
                  static_cast<std::streamsize>(state.size() *
                                               ampBytes));
        return;
    }

    GfcCodec codec;
    const CompressedBlock block =
        codec.compressAmps(state.amplitudes().data(), state.size());
    putU64(out, block.bytes.size());
    out.write(reinterpret_cast<const char *>(block.bytes.data()),
              static_cast<std::streamsize>(block.bytes.size()));
}

StateVector
loadState(std::istream &in)
{
    if (getU32(in) != snapshot_magic)
        QGPU_FATAL("snapshot: bad magic");
    const int num_qubits = static_cast<int>(getU32(in));
    if (num_qubits < 1 || num_qubits > 34)
        QGPU_FATAL("snapshot: implausible register size ",
                   num_qubits);
    const bool compressed = getU32(in) != 0;
    const std::uint64_t payload = getU64(in);

    StateVector state(num_qubits);
    if (!compressed) {
        if (payload != state.size() * ampBytes)
            QGPU_FATAL("snapshot: payload size mismatch");
        in.read(reinterpret_cast<char *>(
                    state.amplitudes().data()),
                static_cast<std::streamsize>(payload));
        if (!in)
            QGPU_FATAL("snapshot: truncated amplitudes");
        return state;
    }

    CompressedBlock block;
    block.numDoubles = 2 * state.size();
    block.bytes.resize(payload);
    in.read(reinterpret_cast<char *>(block.bytes.data()),
            static_cast<std::streamsize>(payload));
    if (!in)
        QGPU_FATAL("snapshot: truncated compressed payload");
    GfcCodec codec;
    codec.decompressAmps(block, state.amplitudes().data());
    return state;
}

} // namespace qgpu
