#include "statevec/chunk_storage.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/cacheinfo.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "compress/gfc.hh"
#include "fault/checksum.hh"
#include "fault/injector.hh"
#include "fault/sim_error.hh"

namespace qgpu
{

const char *
storageKindName(StorageKind kind)
{
    switch (kind) {
    case StorageKind::Compressed: return "compressed";
    case StorageKind::Spill: return "spill";
    case StorageKind::Raw: break;
    }
    return "raw";
}

bool
parseStorageKind(std::string_view name, StorageKind &out)
{
    if (name == "raw") {
        out = StorageKind::Raw;
    } else if (name == "compressed" || name == "gfc") {
        out = StorageKind::Compressed;
    } else if (name == "spill") {
        out = StorageKind::Spill;
    } else {
        return false;
    }
    return true;
}

namespace
{

[[noreturn]] void
throwStorageError(SimErrorCode code, const char *point,
                  std::string detail, Index chunk, int attempts = 0)
{
    SimError err;
    err.code = code;
    err.point = point;
    err.detail = std::move(detail);
    err.chunk = static_cast<std::int64_t>(chunk);
    err.attempts = attempts;
    throw SimException(std::move(err));
}

/**
 * Cold chunks as GFC streams in host memory. The fp32 stream lane is
 * only ever selected for bit-exact float round trips, so every stored
 * form decodes back to the evicted bytes exactly.
 */
class CompressedStore final : public ColdStore
{
  public:
    StorageKind kind() const override { return StorageKind::Compressed; }

    void
    reset(Index num_chunks, Index) override
    {
        entries_.assign(num_chunks, Entry{});
        hostBytes_ = 0;
    }

    StoredInfo
    store(Index c, std::span<const Amp> amps, bool f32_lane,
          bool force_raw) override
    {
        Entry &e = entries_[c];
        hostBytes_ -= e.block.bytes.size();
        e.used = true;
        e.raw = force_raw;
        if (force_raw) {
            const auto *bytes =
                reinterpret_cast<const std::uint8_t *>(amps.data());
            e.block.bytes.assign(bytes,
                                 bytes + amps.size() * sizeof(Amp));
            e.block.numDoubles = 2 * amps.size();
            e.block.f32 = false;
        } else if (f32_lane) {
            const std::uint64_t n = 2 * amps.size();
            narrow_.resize(n);
            const double *raw =
                reinterpret_cast<const double *>(amps.data());
            parallelFor(
                std::uint64_t{0}, n, simThreads(),
                [&](std::uint64_t lo, std::uint64_t hi) {
                    for (std::uint64_t i = lo; i < hi; ++i)
                        narrow_[i] = static_cast<float>(raw[i]);
                },
                std::size_t{1} << 12);
            codec_.compressF32Into(narrow_.data(), n, e.block);
        } else {
            codec_.compressAmpsInto(amps.data(), amps.size(), e.block);
        }
        hostBytes_ += e.block.bytes.size();
        return {e.block.bytes.size(),
                checksumBytes(e.block.bytes.data(),
                              e.block.bytes.size())};
    }

    std::uint64_t
    storedSum(Index c) override
    {
        const Entry &e = entries_[c];
        return checksumBytes(e.block.bytes.data(), e.block.bytes.size());
    }

    void
    load(Index c, std::span<Amp> out, std::uint64_t stream_sum) override
    {
        const Entry &e = entries_[c];
        if (!e.used)
            QGPU_PANIC("load of unstored chunk ", c);
        // The GFC decoder panics on corrupt streams, so corruption
        // must be caught here, before decoding.
        if (checksumBytes(e.block.bytes.data(),
                          e.block.bytes.size()) != stream_sum)
            throwStorageError(SimErrorCode::ChecksumMismatch, "codec",
                              "stored GFC stream checksum mismatch", c);
        if (e.raw) {
            std::memcpy(out.data(), e.block.bytes.data(),
                        out.size() * sizeof(Amp));
        } else if (e.block.f32) {
            codec_.decompressAmpsF32(e.block, out.data());
        } else {
            codec_.decompressAmps(e.block, out.data());
        }
    }

    void
    drop(Index c) override
    {
        Entry &e = entries_[c];
        hostBytes_ -= e.block.bytes.size();
        e = Entry{};
    }

    void
    corruptStored(Index c, FaultInjector &injector) override
    {
        injector.corrupt(entries_[c].block.bytes);
    }

    std::uint64_t hostBytes() const override { return hostBytes_; }
    std::uint64_t spillBytes() const override { return 0; }

  private:
    struct Entry
    {
        CompressedBlock block;
        bool used = false;
        bool raw = false;
    };

    GfcCodec codec_;
    std::vector<Entry> entries_;
    std::vector<float> narrow_;
    std::uint64_t hostBytes_ = 0;
};

/**
 * Cold chunks paged to an unlinked scratch file, one fixed-size slot
 * per chunk (fp32-lane chunks write floats, halving the slot's used
 * bytes). pread/pwrite are positioned, so concurrent loads of
 * distinct chunks need no shared file offset.
 */
class SpillStore final : public ColdStore
{
  public:
    explicit SpillStore(std::string dir) : dir_(std::move(dir)) {}

    ~SpillStore() override
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    StorageKind kind() const override { return StorageKind::Spill; }

    void
    reset(Index num_chunks, Index chunk_size) override
    {
        entries_.assign(num_chunks, Entry{});
        slotBytes_ = chunk_size * sizeof(Amp);
        spillBytes_ = 0;
        if (fd_ >= 0 && ::ftruncate(fd_, 0) != 0)
            throwStorageError(SimErrorCode::TransferFailed, "spill",
                              "ftruncate failed", 0);
    }

    StoredInfo
    store(Index c, std::span<const Amp> amps, bool f32_lane,
          bool force_raw) override
    {
        openFile();
        Entry &e = entries_[c];
        spillBytes_ -= e.bytes;
        const bool narrow = f32_lane && !force_raw;
        const std::uint8_t *payload;
        std::uint64_t bytes;
        if (narrow) {
            const std::uint64_t n = 2 * amps.size();
            narrow_.resize(n);
            const double *raw =
                reinterpret_cast<const double *>(amps.data());
            for (std::uint64_t i = 0; i < n; ++i)
                narrow_[i] = static_cast<float>(raw[i]);
            payload =
                reinterpret_cast<const std::uint8_t *>(narrow_.data());
            bytes = n * sizeof(float);
        } else {
            payload =
                reinterpret_cast<const std::uint8_t *>(amps.data());
            bytes = amps.size() * sizeof(Amp);
        }
        rw(c, const_cast<std::uint8_t *>(payload), bytes, true);
        e.used = true;
        e.f32 = narrow;
        e.bytes = bytes;
        spillBytes_ += bytes;
        return {bytes, checksumBytes(payload, bytes)};
    }

    std::uint64_t
    storedSum(Index c) override
    {
        const Entry &e = entries_[c];
        std::vector<std::uint8_t> buf(e.bytes);
        rw(c, buf.data(), e.bytes, false);
        return checksumBytes(buf.data(), buf.size());
    }

    void
    load(Index c, std::span<Amp> out, std::uint64_t stream_sum) override
    {
        const Entry &e = entries_[c];
        if (!e.used)
            QGPU_PANIC("load of unspilled chunk ", c);
        if (e.f32) {
            std::vector<float> buf(2 * out.size());
            rw(c, reinterpret_cast<std::uint8_t *>(buf.data()),
               e.bytes, false);
            if (checksumBytes(buf.data(), e.bytes) != stream_sum)
                throwStorageError(SimErrorCode::ChecksumMismatch,
                                  "spill",
                                  "spilled payload checksum mismatch",
                                  c);
            double *raw = reinterpret_cast<double *>(out.data());
            for (std::size_t i = 0; i < buf.size(); ++i)
                raw[i] = static_cast<double>(buf[i]);
        } else {
            rw(c, reinterpret_cast<std::uint8_t *>(out.data()),
               e.bytes, false);
            if (checksumBytes(out.data(), e.bytes) != stream_sum)
                throwStorageError(SimErrorCode::ChecksumMismatch,
                                  "spill",
                                  "spilled payload checksum mismatch",
                                  c);
        }
    }

    void
    drop(Index c) override
    {
        Entry &e = entries_[c];
        spillBytes_ -= e.bytes;
        e = Entry{};
    }

    void
    corruptStored(Index c, FaultInjector &injector) override
    {
        const Entry &e = entries_[c];
        std::vector<std::uint8_t> buf(e.bytes);
        rw(c, buf.data(), e.bytes, false);
        injector.corrupt(buf);
        rw(c, buf.data(), e.bytes, true);
    }

    std::uint64_t hostBytes() const override { return 0; }
    std::uint64_t spillBytes() const override { return spillBytes_; }

  private:
    struct Entry
    {
        bool used = false;
        bool f32 = false;
        std::uint64_t bytes = 0;
    };

    void
    openFile()
    {
        if (fd_ >= 0)
            return;
        std::string dir = dir_;
        if (dir.empty()) {
            const char *tmp = std::getenv("TMPDIR");
            dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
        }
        std::string path = dir + "/qgpu-spill-XXXXXX";
        fd_ = ::mkstemp(path.data());
        if (fd_ < 0)
            throwStorageError(SimErrorCode::AllocFailed, "spill",
                              "cannot create scratch file in " + dir,
                              0);
        // Unlink immediately: the file lives only as long as the fd.
        ::unlink(path.c_str());
    }

    void
    rw(Index c, std::uint8_t *buf, std::uint64_t bytes, bool write)
    {
        std::uint64_t done = 0;
        const auto base = static_cast<off_t>(c * slotBytes_);
        while (done < bytes) {
            const off_t at = base + static_cast<off_t>(done);
            const ssize_t n =
                write ? ::pwrite(fd_, buf + done, bytes - done, at)
                      : ::pread(fd_, buf + done, bytes - done, at);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                throwStorageError(SimErrorCode::TransferFailed, "spill",
                                  write ? "pwrite failed"
                                        : "pread failed",
                                  c);
            }
            done += static_cast<std::uint64_t>(n);
        }
    }

    std::string dir_;
    int fd_ = -1;
    std::uint64_t slotBytes_ = 0;
    std::uint64_t spillBytes_ = 0;
    std::vector<Entry> entries_;
    std::vector<float> narrow_;
};

} // namespace

std::unique_ptr<ColdStore>
makeColdStore(StorageKind kind, const std::string &spill_dir)
{
    switch (kind) {
    case StorageKind::Compressed:
        return std::make_unique<CompressedStore>();
    case StorageKind::Spill:
        return std::make_unique<SpillStore>(spill_dir);
    case StorageKind::Raw: break;
    }
    return nullptr;
}

namespace
{

Index
budgetFor(const StorageConfig &config, Index num_chunks,
          Index chunk_size)
{
    Index budget = config.workingSetChunks;
    if (budget == 0) {
        // Auto: a quarter of host RAM for the decompressed set, the
        // rest left for the cold streams, scratch, and everyone else.
        const std::uint64_t chunk_bytes =
            std::max<std::uint64_t>(1, chunk_size * sizeof(Amp));
        budget = static_cast<Index>(hostRamBytes() / 4 / chunk_bytes);
    }
    const Index floor = std::min<Index>(num_chunks, 4);
    return std::clamp(budget, floor, num_chunks);
}

} // namespace

ChunkResidency::ChunkResidency(const StorageConfig &config,
                               Index num_chunks, Index chunk_size,
                               std::vector<std::vector<Amp>> &slots)
    : kind_(config.kind), numChunks_(num_chunks),
      chunkSize_(chunk_size),
      budget_(budgetFor(config, num_chunks, chunk_size)),
      retries_(config.retries), injector_(config.injector),
      slots_(&slots), store_(makeColdStore(config.kind, config.spillDir)),
      meta_(num_chunks)
{
    if (store_ == nullptr)
        QGPU_FATAL("ChunkResidency needs a non-raw storage kind");
    store_->reset(num_chunks, chunk_size);
    stats_.workingSet = budget_;
    for (Index c = 0; c < numChunks_; ++c) {
        std::vector<Amp> &slot = slots[c];
        if (slot.empty())
            continue; // Zero (the default meta)
        bool byte_zero = true;
        const auto *raw =
            reinterpret_cast<const std::uint64_t *>(slot.data());
        for (Index i = 0; i < 2 * chunkSize_ && byte_zero; ++i)
            byte_zero = raw[i] == 0;
        if (byte_zero) {
            std::vector<Amp>().swap(slot);
            continue;
        }
        meta_[c].state = State::Resident;
        meta_[c].wasZero = false;
        ++residentCount_;
    }
    notePeak();
    enforceBudget();
}

ChunkResidency::~ChunkResidency() = default;

void
ChunkResidency::setDeviceMap(std::vector<int> device_of)
{
    deviceOf_ = std::move(device_of);
    int max_dev = -1;
    for (int d : deviceOf_)
        max_dev = std::max(max_dev, d);
    devResident_.assign(static_cast<std::size_t>(max_dev + 1), 0);
    for (Index c = 0; c < numChunks_; ++c)
        if (meta_[c].state == State::Resident)
            devInc(c);
}

void
ChunkResidency::devInc(Index c)
{
    if (!deviceOf_.empty() && deviceOf_[c] >= 0)
        ++devResident_[static_cast<std::size_t>(deviceOf_[c])];
}

void
ChunkResidency::devDec(Index c)
{
    if (!deviceOf_.empty() && deviceOf_[c] >= 0)
        --devResident_[static_cast<std::size_t>(deviceOf_[c])];
}

void
ChunkResidency::notePeak()
{
    const std::uint64_t now = residentBytes() + store_->hostBytes();
    stats_.peakHostBytes = std::max(stats_.peakHostBytes, now);
}

Index
ChunkResidency::pickVictim()
{
    // Clock with second chance; bounded at two laps so a fully
    // referenced set degrades to plain FIFO order. With a device map
    // the first eligible victim from a device at or above its
    // balanced share wins, keeping per-device working sets even; the
    // overall first eligible chunk is kept as the fallback.
    const Index none = numChunks_;
    Index fallback = none;
    const std::uint64_t num_devs = devResident_.size();
    for (Index step = 0; step < 2 * numChunks_; ++step) {
        const Index c = hand_;
        hand_ = hand_ + 1 == numChunks_ ? 0 : hand_ + 1;
        Meta &m = meta_[c];
        if (m.state != State::Resident || m.pins > 0)
            continue;
        if (m.ref != 0) {
            m.ref = 0;
            continue;
        }
        if (deviceOf_.empty())
            return c;
        const int dev = deviceOf_[c];
        if (dev < 0 ||
            devResident_[static_cast<std::size_t>(dev)] * num_devs >=
                residentCount_)
            return c;
        if (fallback == none)
            fallback = c;
    }
    return fallback;
}

void
ChunkResidency::evict(Index c)
{
    Meta &m = meta_[c];
    std::vector<Amp> &slot = (*slots_)[c];
    // One pass over the raw 64-bit patterns classifies the chunk:
    // byte-zero (all +0.0 — elide entirely), value-zero (may contain
    // -0.0, whose sign bit must survive the round trip), and
    // f32-exact (every component round-trips double->float->double
    // bit-identically, making the fp32 stream lane lossless here).
    bool byte_zero = true, value_zero = true, f32_exact = true;
    const double *raw = reinterpret_cast<const double *>(slot.data());
    const Index lanes = 2 * chunkSize_;
    for (Index i = 0;
         i < lanes && (byte_zero || value_zero || f32_exact); ++i) {
        const double v = raw[i];
        std::uint64_t pattern;
        std::memcpy(&pattern, &v, sizeof pattern);
        if (pattern != 0)
            byte_zero = false;
        if (!(v == 0.0))
            value_zero = false;
        if (f32_exact) {
            const double back =
                static_cast<double>(static_cast<float>(v));
            std::uint64_t back_pattern;
            std::memcpy(&back_pattern, &back, sizeof back_pattern);
            if (back_pattern != pattern)
                f32_exact = false;
        }
    }

    if (byte_zero) {
        std::vector<Amp>().swap(slot);
        m.state = State::Zero;
        m.wasZero = true;
        m.payloadSum = 0;
        m.streamSum = 0;
    } else {
        m.payloadSum = checksumAmps(slot);
        bool force_raw = false;
        if (injector_ != nullptr &&
            injector_->enabled(FaultPoint::Alloc) &&
            injector_->fire(FaultPoint::Alloc)) {
            // Simulated compression-scratch allocation failure:
            // degrade this chunk to a raw stored payload.
            force_raw = true;
            ++stats_.rawFallbacks;
        }
        const bool armed_codec = injector_ != nullptr &&
                                 injector_->enabled(FaultPoint::Codec);
        int attempt = 0;
        for (;;) {
            const StoredInfo info =
                store_->store(c, slot, f32_exact, force_raw);
            m.streamSum = info.streamSum;
            if (!armed_codec)
                break;
            if (injector_->fire(FaultPoint::Codec))
                store_->corruptStored(c, *injector_);
            // Eviction writes re-checksum: re-read the stored stream
            // before the decompressed copy is gone.
            if (store_->storedSum(c) == info.streamSum)
                break;
            ++stats_.retries;
            if (++attempt >= retries_)
                throwStorageError(SimErrorCode::CodecFailed, "codec",
                                  "eviction write verification "
                                  "exhausted its retries",
                                  c, attempt);
        }
        std::vector<Amp>().swap(slot);
        m.state = State::Cold;
        m.wasZero = value_zero;
    }
    m.ref = 0;
    --residentCount_;
    devDec(c);
    ++stats_.evictions;
    notePeak();
}

void
ChunkResidency::makeRoom(Index incoming)
{
    while (residentCount_ + incoming > budget_) {
        const Index victim = pickVictim();
        if (victim == numChunks_)
            break; // everything evictable is pinned: overshoot
        evict(victim);
    }
}

void
ChunkResidency::issueFill(Index c, bool async)
{
    // Serial half of a refill: state transition, fault draws, and
    // counters. The returned slot fill is the only concurrent part.
    Meta &m = meta_[c];
    const bool zero = m.state == State::Zero;
    if (zero) {
        ++stats_.zeroFills;
    } else {
        ++stats_.decompressMisses;
        if (injector_ != nullptr &&
            injector_->enabled(FaultPoint::Alloc) &&
            injector_->fire(FaultPoint::Alloc))
            throwStorageError(SimErrorCode::AllocFailed, "alloc",
                              "working-set refill allocation failed",
                              c);
        ++stats_.verified;
        pendingDrops_.push_back(c);
    }
    m.state = State::Resident;
    m.ref = 1;
    ++residentCount_;
    devInc(c);
    notePeak();
    auto work = [this, c, zero] {
        std::vector<Amp> &slot = (*slots_)[c];
        if (zero) {
            slot.assign(chunkSize_, Amp{0, 0});
            return;
        }
        const Meta &m = meta_[c];
        slot.resize(chunkSize_);
        store_->load(c, slot, m.streamSum);
        if (checksumAmps(slot) != m.payloadSum)
            throwStorageError(SimErrorCode::ChecksumMismatch, "codec",
                              "decoded payload checksum mismatch", c);
    };
    if (async) {
        fills_.run(std::move(work));
    } else {
        work();
        finishDrops();
    }
}

void
ChunkResidency::finishDrops()
{
    for (Index c : pendingDrops_)
        store_->drop(c);
    pendingDrops_.clear();
}

void
ChunkResidency::ensure(Index c)
{
    Meta &m = meta_[c];
    if (m.state == State::Resident) {
        m.ref = 1;
        return;
    }
    makeRoom(1);
    issueFill(c, false);
}

void
ChunkResidency::readChunk(Index c, Amp *dst)
{
    Meta &m = meta_[c];
    switch (m.state) {
    case State::Zero:
        std::fill(dst, dst + chunkSize_, Amp{0, 0});
        break;
    case State::Resident: {
        const std::vector<Amp> &slot = (*slots_)[c];
        std::copy(slot.begin(), slot.end(), dst);
        ++stats_.decompressHits;
        break;
    }
    case State::Cold:
        ++stats_.decompressMisses;
        store_->load(c, {dst, static_cast<std::size_t>(chunkSize_)},
                     m.streamSum);
        if (checksumAmps({dst, static_cast<std::size_t>(chunkSize_)}) !=
            m.payloadSum)
            throwStorageError(SimErrorCode::ChecksumMismatch, "codec",
                              "decoded payload checksum mismatch", c);
        ++stats_.verified;
        break;
    }
}

void
ChunkResidency::writeChunk(Index c, const Amp *src)
{
    Meta &m = meta_[c];
    std::vector<Amp> &slot = (*slots_)[c];
    bool byte_zero = true;
    const auto *raw = reinterpret_cast<const std::uint64_t *>(src);
    for (Index i = 0; i < 2 * chunkSize_ && byte_zero; ++i)
        byte_zero = raw[i] == 0;
    if (byte_zero) {
        if (m.state == State::Resident) {
            std::vector<Amp>().swap(slot);
            --residentCount_;
            devDec(c);
        } else if (m.state == State::Cold) {
            store_->drop(c);
        }
        m.state = State::Zero;
        m.wasZero = true;
        m.ref = 0;
        m.payloadSum = 0;
        m.streamSum = 0;
        return;
    }
    if (m.state == State::Cold)
        store_->drop(c);
    if (m.state != State::Resident) {
        makeRoom(1);
        m.state = State::Resident;
        ++residentCount_;
        devInc(c);
        notePeak();
    }
    m.ref = 1;
    m.wasZero = false;
    slot.assign(src, src + chunkSize_);
}

void
ChunkResidency::pinAsync(std::span<const Index> cs)
{
    // Pins are taken before any eviction, so makeRoom can never pick
    // a victim out of this same block.
    Index incoming = 0;
    for (Index c : cs) {
        Meta &m = meta_[c];
        ++m.pins;
        if (m.state != State::Resident) {
            ++incoming;
        } else if (m.pins == 1) {
            m.ref = 1;
            ++stats_.decompressHits;
        }
    }
    if (incoming == 0)
        return;
    makeRoom(incoming);
    for (Index c : cs)
        if (meta_[c].state != State::Resident)
            issueFill(c, true);
}

void
ChunkResidency::waitPins()
{
    fills_.wait();
    finishDrops();
}

void
ChunkResidency::unpin(std::span<const Index> cs)
{
    for (Index c : cs)
        --meta_[c].pins;
}

void
ChunkResidency::materializeAll()
{
    for (Index c = 0; c < numChunks_; ++c)
        if (meta_[c].state != State::Resident)
            issueFill(c, false);
}

void
ChunkResidency::enforceBudget()
{
    makeRoom(0);
}

StorageStats
ChunkResidency::stats() const
{
    StorageStats out = stats_;
    for (const Meta &m : meta_) {
        switch (m.state) {
        case State::Zero: ++out.zeroChunks; break;
        case State::Resident: ++out.residentChunks; break;
        case State::Cold: ++out.coldChunks; break;
        }
    }
    out.residentBytes = residentBytes();
    out.coldBytes = store_->hostBytes();
    out.spillBytes = store_->spillBytes();
    return out;
}

} // namespace qgpu
