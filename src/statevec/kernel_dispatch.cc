#include "statevec/kernel_dispatch.hh"

#include <algorithm>
#include <atomic>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "statevec/kernels.hh"

namespace qgpu
{

namespace
{

/**
 * Complex multiply on components. For finite operands this is exactly
 * what std::complex operator* computes (the NaN-recovery fixup of
 * __muldc3 never fires), so kernels built from cmul stay bit-identical
 * to the generic path while avoiding its per-multiply branch.
 */
inline Amp
cmul(const Amp &a, const Amp &b)
{
    return Amp{a.real() * b.real() - a.imag() * b.imag(),
               a.real() * b.imag() + a.imag() * b.real()};
}

// Written from test/bench/engine setup code; read in makeKernelSpec,
// which runs outside the parallel kernel loops. Atomic (relaxed)
// because the service layer runs several engines concurrently:
// ExecutionEngine::run only touches the tier when it actually has to
// flip it, but a job opting in while another run is in flight must
// not be a data race. Interleaved runs that NEED different tiers are
// still a logical conflict — the service admits only jobs matching
// its process-wide tier (see service/scheduler.hh).
std::atomic<KernelTier> g_kernel_tier{KernelTier::Exact};

} // namespace

KernelTier
kernelTier()
{
    return g_kernel_tier.load(std::memory_order_relaxed);
}

void
setKernelTier(KernelTier tier)
{
    g_kernel_tier.store(tier, std::memory_order_relaxed);
}

const char *
kernelKindName(KernelKind kind)
{
    switch (kind) {
      case KernelKind::Diag1q: return "diag1q";
      case KernelKind::Diag2q: return "diag2q";
      case KernelKind::DiagK: return "diagk";
      case KernelKind::Perm1q: return "perm1q";
      case KernelKind::Ctrl1q: return "ctrl1q";
      case KernelKind::Dense1q: return "dense1q";
      case KernelKind::Dense2q: return "dense2q";
      case KernelKind::DenseK: return "densek";
    }
    return "?";
}

namespace kern
{

void
scale(Amp *data, Amp f, Index begin, Index end)
{
    for (Index i = begin; i < end; ++i)
        data[i] = cmul(data[i], f);
}

void
diag1(Amp *data, int t, Amp d0, Amp d1, Index begin, Index end)
{
    if (t == 0) {
        for (Index i = begin; i < end; ++i)
            data[i] = cmul(data[i], (i & 1) ? d1 : d0);
        return;
    }
    // Within a run of 2^t amplitudes the selector bit is constant:
    // multiply each run by one constant in a stride-1 loop.
    const Index run = Index{1} << t;
    Index i = begin;
    while (i < end) {
        const Index blk_end = std::min(end, (i | (run - 1)) + 1);
        const Amp f = ((i >> t) & 1) ? d1 : d0;
        for (; i < blk_end; ++i)
            data[i] = cmul(data[i], f);
    }
}

void
diag2(Amp *data, int t_lo, int t_hi, const Amp *lut, Index begin,
      Index end)
{
    if (t_lo == 0) {
        for (Index i = begin; i < end; ++i) {
            const int sel = static_cast<int>(i & 1) |
                            (static_cast<int>((i >> t_hi) & 1) << 1);
            data[i] = cmul(data[i], lut[sel]);
        }
        return;
    }
    const Index run = Index{1} << t_lo;
    Index i = begin;
    while (i < end) {
        const Index blk_end = std::min(end, (i | (run - 1)) + 1);
        const int sel = static_cast<int>((i >> t_lo) & 1) |
                        (static_cast<int>((i >> t_hi) & 1) << 1);
        const Amp f = lut[sel];
        for (; i < blk_end; ++i)
            data[i] = cmul(data[i], f);
    }
}

void
diagK(Amp *data, const std::vector<int> &qubits, const GateMatrix &m,
      Index begin, Index end)
{
    const int k = static_cast<int>(qubits.size());
    for (Index i = begin; i < end; ++i) {
        int sel = 0;
        for (int j = 0; j < k; ++j)
            sel |= static_cast<int>(bits::testBit(i, qubits[j])) << j;
        data[i] = cmul(data[i], m.at(sel, sel));
    }
}

void
dense1(Amp *data, int t, const Amp *m, Index begin, Index end)
{
    const Amp m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
    if (t == 0) {
        for (Index p = begin; p < end; ++p) {
            Amp *a = data + 2 * p;
            const Amp a0 = a[0], a1 = a[1];
            a[0] = cmul(m00, a0) + cmul(m01, a1);
            a[1] = cmul(m10, a0) + cmul(m11, a1);
        }
        return;
    }
    // Pair index p = (block << t) | j: the |0> element sits at
    // (block << (t+1)) + j, its partner one stride of 2^t above.
    // The inner j loop is stride-1 over a contiguous run.
    const Index run = Index{1} << t;
    Index p = begin;
    while (p < end) {
        const Index blk_end = std::min(end, (p | (run - 1)) + 1);
        Amp *base = data + ((p >> t) << (t + 1));
        Index j = p & (run - 1);
        for (; p < blk_end; ++p, ++j) {
            const Amp a0 = base[j], a1 = base[j + run];
            base[j] = cmul(m00, a0) + cmul(m01, a1);
            base[j + run] = cmul(m10, a0) + cmul(m11, a1);
        }
    }
}

void
perm1(Amp *data, int t, Amp m01, Amp m10, Index begin, Index end)
{
    if (t == 0) {
        for (Index p = begin; p < end; ++p) {
            Amp *a = data + 2 * p;
            const Amp a0 = a[0], a1 = a[1];
            a[0] = cmul(m01, a1);
            a[1] = cmul(m10, a0);
        }
        return;
    }
    const Index run = Index{1} << t;
    Index p = begin;
    while (p < end) {
        const Index blk_end = std::min(end, (p | (run - 1)) + 1);
        Amp *base = data + ((p >> t) << (t + 1));
        Index j = p & (run - 1);
        for (; p < blk_end; ++p, ++j) {
            const Amp a0 = base[j], a1 = base[j + run];
            base[j] = cmul(m01, a1);
            base[j + run] = cmul(m10, a0);
        }
    }
}

void
ctrl1(Amp *data, int t, const std::vector<int> &fixed_sorted,
      Index cmask, const Amp *m, Index begin, Index end)
{
    const Amp m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
    const Index tbit = Index{1} << t;
    const int low = fixed_sorted.front();
    if (low == 0) {
        for (Index w = begin; w < end; ++w) {
            const Index i0 =
                bits::insertZeroBits(w, fixed_sorted) | cmask;
            const Amp a0 = data[i0], a1 = data[i0 | tbit];
            data[i0] = cmul(m00, a0) + cmul(m01, a1);
            data[i0 | tbit] = cmul(m10, a0) + cmul(m11, a1);
        }
        return;
    }
    // Work bits below the lowest fixed bit pass through insertZeroBits
    // unchanged, so they index a stride-1 inner run.
    const Index run = Index{1} << low;
    Index w = begin;
    while (w < end) {
        const Index blk_end = std::min(end, (w | (run - 1)) + 1);
        Amp *base =
            data +
            (bits::insertZeroBits(w & ~(run - 1), fixed_sorted) |
             cmask);
        Index j = w & (run - 1);
        for (; w < blk_end; ++w, ++j) {
            const Amp a0 = base[j], a1 = base[j + tbit];
            base[j] = cmul(m00, a0) + cmul(m01, a1);
            base[j + tbit] = cmul(m10, a0) + cmul(m11, a1);
        }
    }
}

void
dense2(Amp *data, int q0, int q1, const Amp *m, Index begin,
       Index end)
{
    const int tl = std::min(q0, q1), th = std::max(q0, q1);
    const Index o0 = Index{1} << q0, o1 = Index{1} << q1;

    // Mirrors the generic applyK accumulation (zero-initialized sum,
    // columns ascending) so results stay bit-identical.
    auto update = [&](Amp *a) {
        const Amp in[4] = {a[0], a[o0], a[o1], a[o0 + o1]};
        Amp out[4];
        for (int r = 0; r < 4; ++r) {
            Amp sum{0, 0};
            for (int c = 0; c < 4; ++c)
                sum += cmul(m[4 * r + c], in[c]);
            out[r] = sum;
        }
        a[0] = out[0];
        a[o0] = out[1];
        a[o1] = out[2];
        a[o0 + o1] = out[3];
    };

    if (tl == 0) {
        for (Index g = begin; g < end; ++g)
            update(data +
                   bits::insertZeroBit(bits::insertZeroBit(g, tl),
                                       th));
        return;
    }
    const Index run = Index{1} << tl;
    Index g = begin;
    while (g < end) {
        const Index blk_end = std::min(end, (g | (run - 1)) + 1);
        Amp *base =
            data + bits::insertZeroBit(
                       bits::insertZeroBit(g & ~(run - 1), tl), th);
        Index j = g & (run - 1);
        for (; g < blk_end; ++g, ++j)
            update(base + j);
    }
}

} // namespace kern

KernelSpec
makeKernelSpec(const Gate &gate)
{
    KernelSpec s;
    s.tier = kernelTier();
    s.qubits = gate.qubits;
    const int k = gate.numQubits();

    if (gate.isDiagonal()) {
        const GateMatrix m = gate.matrix();
        if (k == 1) {
            s.kind = KernelKind::Diag1q;
            s.target = gate.qubits[0];
            s.m1[0] = m.at(0, 0);
            s.m1[1] = m.at(1, 1);
        } else if (k == 2) {
            s.kind = KernelKind::Diag2q;
            s.tLo = std::min(gate.qubits[0], gate.qubits[1]);
            s.tHi = std::max(gate.qubits[0], gate.qubits[1]);
            const int j_lo = gate.qubits[0] < gate.qubits[1] ? 0 : 1;
            for (int c = 0; c < 4; ++c) {
                const int sel = ((c & 1) << j_lo) |
                                (((c >> 1) & 1) << (1 - j_lo));
                s.lut[c] = m.at(sel, sel);
            }
        } else {
            s.kind = KernelKind::DiagK;
            s.matrix = m;
        }
        return s;
    }

    // Controlled kinds with a dense 1q target block: controls are the
    // leading qubits (gate.hh convention), the target the last one.
    int num_controls = 0;
    switch (gate.kind) {
      case GateKind::CX:
      case GateKind::CY:
        num_controls = 1;
        break;
      case GateKind::CCX:
        num_controls = 2;
        break;
      default:
        break;
    }
    if (num_controls > 0) {
        s.kind = KernelKind::Ctrl1q;
        s.target = gate.qubits[num_controls];
        s.fixedSorted = gate.qubits;
        std::sort(s.fixedSorted.begin(), s.fixedSorted.end());
        for (int c = 0; c < num_controls; ++c)
            s.ctrlMask |= Index{1} << gate.qubits[c];
        // The target block sits at the rows/columns whose control
        // bits (matrix bits 0..nc-1) are all ones.
        const GateMatrix m = gate.matrix();
        const int cm = static_cast<int>(bits::lowMask(num_controls));
        for (int r = 0; r < 2; ++r)
            for (int c = 0; c < 2; ++c)
                s.m1[r * 2 + c] = m.at((r << num_controls) | cm,
                                       (c << num_controls) | cm);
        return s;
    }

    if (k == 1) {
        const GateMatrix m = gate.matrix();
        s.target = gate.qubits[0];
        s.m1[0] = m.at(0, 0);
        s.m1[1] = m.at(0, 1);
        s.m1[2] = m.at(1, 0);
        s.m1[3] = m.at(1, 1);
        s.kind = gate.isPermutation() ? KernelKind::Perm1q
                                      : KernelKind::Dense1q;
        return s;
    }
    if (k == 2) {
        s.kind = KernelKind::Dense2q;
        s.tLo = std::min(gate.qubits[0], gate.qubits[1]);
        s.tHi = std::max(gate.qubits[0], gate.qubits[1]);
        s.matrix = gate.matrix();
        return s;
    }
    s.kind = KernelKind::DenseK;
    s.matrix = gate.matrix();
    return s;
}

Index
kernelWorkItems(const KernelSpec &spec, int num_qubits)
{
    switch (spec.kind) {
      case KernelKind::Diag1q:
      case KernelKind::Diag2q:
      case KernelKind::DiagK:
        return stateSize(num_qubits);
      case KernelKind::Perm1q:
      case KernelKind::Dense1q:
        return stateSize(num_qubits - 1);
      case KernelKind::Ctrl1q:
        return stateSize(num_qubits -
                         static_cast<int>(spec.fixedSorted.size()));
      case KernelKind::Dense2q:
        return stateSize(num_qubits - 2);
      case KernelKind::DenseK:
        return stateSize(num_qubits -
                         static_cast<int>(spec.qubits.size()));
    }
    QGPU_PANIC("unhandled kernel kind");
}

int
kernelItemWidth(const KernelSpec &spec)
{
    switch (spec.kind) {
      case KernelKind::Diag1q:
      case KernelKind::Diag2q:
      case KernelKind::DiagK:
        return 1;
      case KernelKind::Perm1q:
      case KernelKind::Dense1q:
      case KernelKind::Ctrl1q:
        return 2;
      case KernelKind::Dense2q:
        return 4;
      case KernelKind::DenseK:
        return 1 << spec.qubits.size();
    }
    QGPU_PANIC("unhandled kernel kind");
}

void
applyKernel(const KernelSpec &spec, Amp *data, int num_qubits,
            Index begin, Index end)
{
    end = std::min(end, kernelWorkItems(spec, num_qubits));
    if (begin >= end)
        return;
    if (spec.tier == KernelTier::Fast) {
        kernfast::applyKernelFast(spec, data, num_qubits, begin, end);
        return;
    }
    switch (spec.kind) {
      case KernelKind::Diag1q:
        kern::diag1(data, spec.target, spec.m1[0], spec.m1[1], begin,
                    end);
        return;
      case KernelKind::Diag2q:
        kern::diag2(data, spec.tLo, spec.tHi, spec.lut, begin, end);
        return;
      case KernelKind::DiagK:
        kern::diagK(data, spec.qubits, spec.matrix, begin, end);
        return;
      case KernelKind::Perm1q:
        kern::perm1(data, spec.target, spec.m1[1], spec.m1[2], begin,
                    end);
        return;
      case KernelKind::Ctrl1q:
        kern::ctrl1(data, spec.target, spec.fixedSorted,
                    spec.ctrlMask, spec.m1, begin, end);
        return;
      case KernelKind::Dense1q:
        kern::dense1(data, spec.target, spec.m1, begin, end);
        return;
      case KernelKind::Dense2q:
        kern::dense2(data, spec.qubits[0], spec.qubits[1],
                     spec.matrix.data().data(), begin, end);
        return;
      case KernelKind::DenseK:
        kernels::applyK([data](Index i) -> Amp & { return data[i]; },
                        num_qubits, spec.qubits, spec.matrix, begin,
                        end);
        return;
    }
    QGPU_PANIC("unhandled kernel kind");
}

void
recordKernelMetrics(KernelKind kind, Index amps)
{
    auto &mr = MetricsRegistry::global();
    const std::string base =
        std::string("kernel.") + kernelKindName(kind);
    mr.add(base + ".invocations");
    mr.add(base + ".amps", static_cast<double>(amps));
}

} // namespace qgpu
