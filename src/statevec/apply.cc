#include "statevec/apply.hh"

#include <algorithm>

#include "common/logging.hh"
#include "statevec/kernels.hh"

namespace qgpu
{

GatePlan::GatePlan(const Gate &gate, int num_qubits, int chunk_bits)
    : chunkBits_(chunk_bits)
{
    // Diagonal gates never couple amplitudes, so every chunk is
    // independent no matter where the targets sit.
    if (!gate.isDiagonal()) {
        for (int q : gate.qubits)
            if (q >= chunk_bits)
                globalBits_.push_back(q - chunk_bits);
        std::sort(globalBits_.begin(), globalBits_.end());
    }
    const int chunk_index_bits = num_qubits - chunk_bits;
    numGroups_ = Index{1}
                 << (chunk_index_bits
                     - static_cast<int>(globalBits_.size()));
}

std::vector<Index>
GatePlan::members(Index group) const
{
    const Index base = bits::insertZeroBits(group, globalBits_);
    const int span = chunksPerGroup();
    std::vector<Index> out;
    out.reserve(span);
    for (int s = 0; s < span; ++s) {
        Index idx = base;
        for (std::size_t j = 0; j < globalBits_.size(); ++j)
            if (bits::testBit(static_cast<std::uint64_t>(s),
                              static_cast<int>(j))) {
                idx = bits::setBit(idx, globalBits_[j]);
            }
        out.push_back(idx);
    }
    return out;
}

namespace
{

/**
 * Apply a diagonal gate to one chunk. The diagonal entry selector
 * depends on the full global index, so fold the chunk index in.
 */
void
applyDiagToChunk(ChunkedStateVector &state, const Gate &gate,
                 Index chunk_idx)
{
    const GateMatrix m = gate.matrix();
    const int k = gate.numQubits();
    const int chunk_bits = state.chunkBits();
    auto &data = state.chunk(chunk_idx);
    const Index chunk_base = chunk_idx << chunk_bits;

    // Selector bits contributed by the chunk index are constant.
    int fixed_sel = 0;
    std::vector<std::pair<int, int>> local; // (offset bit, selector bit)
    for (int j = 0; j < k; ++j) {
        const int q = gate.qubits[j];
        if (q >= chunk_bits)
            fixed_sel |= bits::testBit(chunk_base, q) << j;
        else
            local.emplace_back(q, j);
    }

    const Index size = state.chunkSize();
    for (Index off = 0; off < size; ++off) {
        int sel = fixed_sel;
        for (const auto &[q, j] : local)
            sel |= bits::testBit(off, q) << j;
        data[off] *= m.at(sel, sel);
    }
}

/** Remap gate targets into the group-local register. */
Gate
remapGateForGroup(const Gate &gate, const std::vector<int> &global_bits,
                  int chunk_bits)
{
    Gate out = gate;
    for (int &q : out.qubits) {
        if (q >= chunk_bits) {
            const auto it = std::lower_bound(global_bits.begin(),
                                             global_bits.end(),
                                             q - chunk_bits);
            q = chunk_bits
                + static_cast<int>(it - global_bits.begin());
        }
    }
    return out;
}

} // namespace

void
applyGroup(ChunkedStateVector &state, const Gate &gate,
           const GatePlan &plan, Index group)
{
    const int chunk_bits = state.chunkBits();

    if (plan.perChunk()) {
        const Index chunk_idx = group;
        if (gate.isDiagonal()) {
            applyDiagToChunk(state, gate, chunk_idx);
            return;
        }
        // All targets live below the chunk boundary: apply inside the
        // chunk as if it were a small register.
        Amp *data = state.chunk(chunk_idx).data();
        kernels::applyGate(
            [data](Index i) -> Amp & { return data[i]; }, chunk_bits,
            gate);
        return;
    }

    // Case 2: assemble the sub-register spanning the member chunks.
    const std::vector<Index> members = plan.members(group);
    const Gate remapped =
        remapGateForGroup(gate, plan.globalBits(), chunk_bits);
    const int sub_qubits =
        chunk_bits + static_cast<int>(plan.globalBits().size());
    const Index offset_mask = bits::lowMask(chunk_bits);

    std::vector<Amp *> bufs(members.size());
    for (std::size_t s = 0; s < members.size(); ++s)
        bufs[s] = state.chunk(members[s]).data();

    auto accessor = [&](Index i) -> Amp & {
        return bufs[i >> chunk_bits][i & offset_mask];
    };
    kernels::applyGate(accessor, sub_qubits, remapped);
}

void
applyGateChunked(ChunkedStateVector &state, const Gate &gate,
                 const ZeroPredicate &zero)
{
    const GatePlan plan(gate, state.numQubits(), state.chunkBits());
    for (Index g = 0; g < plan.numGroups(); ++g) {
        if (zero) {
            bool all_zero = true;
            for (Index c : plan.members(g)) {
                if (!zero(c)) {
                    all_zero = false;
                    break;
                }
            }
            if (all_zero)
                continue;
        }
        applyGroup(state, gate, plan, g);
    }
}

void
applyCircuitChunked(ChunkedStateVector &state, const Circuit &circuit)
{
    if (circuit.numQubits() != state.numQubits())
        QGPU_PANIC("circuit register ", circuit.numQubits(),
                   " != state register ", state.numQubits());
    for (const Gate &g : circuit.gates())
        applyGateChunked(state, g);
}

} // namespace qgpu
