#include "statevec/apply.hh"

#include <algorithm>

#include "common/cacheinfo.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/parallel.hh"
#include "sched/sweep.hh"
#include "statevec/kernel_dispatch.hh"

namespace qgpu
{

GatePlan::GatePlan(const Gate &gate, int num_qubits, int chunk_bits)
    : GatePlan(gateGlobalBits(gate, chunk_bits), num_qubits,
               chunk_bits)
{
}

GatePlan::GatePlan(std::vector<int> global_bits, int num_qubits,
                   int chunk_bits)
    : chunkBits_(chunk_bits), globalBits_(std::move(global_bits))
{
    const int chunk_index_bits = num_qubits - chunk_bits;
    numGroups_ = Index{1}
                 << (chunk_index_bits
                     - static_cast<int>(globalBits_.size()));
}

void
GatePlan::membersInto(Index group, std::vector<Index> &out) const
{
    const Index base = bits::insertZeroBits(group, globalBits_);
    const int span = chunksPerGroup();
    out.clear();
    for (int s = 0; s < span; ++s) {
        Index idx = base;
        for (std::size_t j = 0; j < globalBits_.size(); ++j)
            if (bits::testBit(static_cast<std::uint64_t>(s),
                              static_cast<int>(j))) {
                idx = bits::setBit(idx, globalBits_[j]);
            }
        out.push_back(idx);
    }
}

std::vector<Index>
GatePlan::members(Index group) const
{
    std::vector<Index> out;
    out.reserve(chunksPerGroup());
    membersInto(group, out);
    return out;
}

namespace
{

/** Kernel kind of a k-qubit diagonal gate (for the metrics counters). */
KernelKind
diagKindOf(int k)
{
    if (k == 1)
        return KernelKind::Diag1q;
    if (k == 2)
        return KernelKind::Diag2q;
    return KernelKind::DiagK;
}

/**
 * Apply a diagonal gate to one contiguous register slice after the
 * constant selector bits have been folded into @p fixed_sel: the
 * @p local (register bit, selector shift) pairs drive the specialized
 * contiguous diag kernels, every other selector bit is constant for
 * the slice.
 */
void
applyDiagFolded(Amp *data, Index size, int fixed_sel,
                std::span<const std::pair<int, int>> local,
                const GateMatrix &m)
{
    // No varying targets: one constant diagonal entry scales the
    // whole slice.
    if (local.empty()) {
        kern::scale(data, m.at(fixed_sel, fixed_sel), 0, size);
        return;
    }
    if (local.size() == 1) {
        const auto [q0, j0] = local[0];
        const int sel1 = fixed_sel | (1 << j0);
        kern::diag1(data, q0, m.at(fixed_sel, fixed_sel),
                    m.at(sel1, sel1), 0, size);
        return;
    }
    if (local.size() == 2) {
        auto [qa, ja] = local[0];
        auto [qb, jb] = local[1];
        if (qa > qb) {
            std::swap(qa, qb);
            std::swap(ja, jb);
        }
        Amp lut[4];
        for (int c = 0; c < 4; ++c) {
            const int sel = fixed_sel | ((c & 1) << ja) |
                            (((c >> 1) & 1) << jb);
            lut[c] = m.at(sel, sel);
        }
        kern::diag2(data, qa, qb, lut, 0, size);
        return;
    }

    for (Index off = 0; off < size; ++off) {
        int sel = fixed_sel;
        for (const auto &[q, j] : local)
            sel |= static_cast<int>(bits::testBit(off, q)) << j;
        data[off] *= m.at(sel, sel);
    }
}

/**
 * Apply a diagonal gate to one chunk. Selector bits contributed by
 * targets above the chunk boundary are constant for the chunk, so
 * they fold into the diagonal lookup and the chunk-local bits drive
 * the specialized contiguous diag kernels.
 */
void
applyDiagToChunk(ChunkedStateVector &state, const GateMatrix &m,
                 const std::vector<int> &qubits, Index chunk_idx)
{
    const int k = static_cast<int>(qubits.size());
    const int chunk_bits = state.chunkBits();
    Amp *data = state.chunk(chunk_idx).data();
    const Index chunk_base = chunk_idx << chunk_bits;

    int fixed_sel = 0;
    std::vector<std::pair<int, int>> local; // (chunk bit, selector shift)
    for (int j = 0; j < k; ++j) {
        const int q = qubits[j];
        if (q >= chunk_bits)
            fixed_sel |= static_cast<int>(bits::testBit(chunk_base, q))
                         << j;
        else
            local.emplace_back(q, j);
    }

    applyDiagFolded(data, state.chunkSize(), fixed_sel, local, m);
}

/** Remap gate targets into the group-local register. */
Gate
remapGateForGroup(const Gate &gate, const std::vector<int> &global_bits,
                  int chunk_bits)
{
    Gate out = gate;
    for (int &q : out.qubits) {
        if (q >= chunk_bits) {
            const auto it = std::lower_bound(global_bits.begin(),
                                             global_bits.end(),
                                             q - chunk_bits);
            q = chunk_bits
                + static_cast<int>(it - global_bits.begin());
        }
    }
    return out;
}

/** Case-1 body, non-diagonal: all targets live below the chunk
 *  boundary, so the specialized kernels run directly on the chunk. */
void
applySpecToChunk(ChunkedStateVector &state, const KernelSpec &spec,
                 Index chunk_idx)
{
    applyKernel(spec, state.chunk(chunk_idx).data(),
                state.chunkBits());
}

/**
 * Size the recycled gather buffer for @p need amplitudes. A capacity
 * left over from a larger group is dropped first when it exceeds what
 * L3 could ever serve quickly (common/cacheinfo.hh): one oversized
 * group may grow the buffer, but it must not pin the high-water mark
 * for the rest of the run.
 */
void
prepareGathered(GroupScratch &scratch, std::size_t need)
{
    const std::size_t cap = scratch.gathered.capacity();
    if (cap > need && cap > scratchRetainAmps())
        std::vector<Amp>().swap(scratch.gathered);
    scratch.gathered.resize(need);
}

/**
 * Case-2 body with scratch.members already filled: gather the member
 * chunks into the worker's contiguous register, run the specialized
 * kernel there, and scatter back. @p spec is built from the gate with
 * targets remapped into the group-local register (identical for every
 * group of a plan, so callers hoist it).
 */
void
applyGroupPrepared(ChunkedStateVector &state, const KernelSpec &spec,
                   const GatePlan &plan, GroupScratch &scratch)
{
    const int sub_qubits =
        state.chunkBits() + static_cast<int>(plan.globalBits().size());
    prepareGathered(scratch, stateSize(sub_qubits));
    state.gatherChunks(scratch.members, scratch.gathered.data());
    applyKernel(spec, scratch.gathered.data(), sub_qubits);
    state.scatterChunks(scratch.members, scratch.gathered.data());
}

/** Modeled amplitudes written by one full application of @p spec. */
Index
specAmps(const KernelSpec &spec, int num_qubits)
{
    return kernelWorkItems(spec, num_qubits) *
           static_cast<Index>(kernelItemWidth(spec));
}

/**
 * One gate of a sweep, pre-classified for the chunk-major executor.
 * Non-diagonal gates carry their KernelSpec (targets remapped into
 * the gathered register for cross-chunk gates); diagonal gates carry
 * the matrix plus the selector-bit split that lets the fold be
 * finished per chunk / per group member in the worker.
 */
struct SweepOp
{
    bool diag = false;
    bool cross = false; // non-diagonal, couples the sweep's G bits
    KernelSpec spec{};  // valid when !diag
    GateMatrix dm{1};   // valid when diag
    // Diagonal selector-bit split, (position, selector shift) pairs:
    std::vector<std::pair<int, int>> low;       // chunk-local bits
    std::vector<std::pair<int, int>> memberSel; // index into G
    std::vector<std::pair<int, int>> groupSel;  // chunk-index bit not
                                                // in G (group-constant)
    KernelKind kind{};
    Index amps = 0; // modeled amplitudes (applyGateChunked's totals)
};

/**
 * Classify the gates of one sweep against the sweep's coupled bits
 * @p G (sorted chunk-index positions). Fatal if any gate couples a
 * different bit set — the span then isn't a sweep for this chunk
 * size.
 */
std::vector<SweepOp>
buildSweepOps(std::span<const Gate> gates, const std::vector<int> &G,
              int num_qubits, int chunk_bits)
{
    const int sub_qubits = chunk_bits + static_cast<int>(G.size());
    const Index num_chunks = Index{1} << (num_qubits - chunk_bits);
    const Index num_groups = Index{1} << (num_qubits - sub_qubits);

    std::vector<SweepOp> ops;
    ops.reserve(gates.size());
    for (const Gate &gate : gates) {
        SweepOp op;
        if (gate.isDiagonal()) {
            op.diag = true;
            op.dm = gate.matrix();
            const int k = gate.numQubits();
            for (int j = 0; j < k; ++j) {
                const int q = gate.qubits[j];
                if (q < chunk_bits) {
                    op.low.emplace_back(q, j);
                    continue;
                }
                const int g = q - chunk_bits;
                const auto it =
                    std::lower_bound(G.begin(), G.end(), g);
                if (it != G.end() && *it == g)
                    op.memberSel.emplace_back(
                        static_cast<int>(it - G.begin()), j);
                else
                    op.groupSel.emplace_back(g, j);
            }
            op.kind = diagKindOf(k);
            op.amps = stateSize(num_qubits);
        } else {
            const std::vector<int> gbits =
                gateGlobalBits(gate, chunk_bits);
            if (gbits.empty()) {
                op.spec = makeKernelSpec(gate);
                op.amps = num_chunks * specAmps(op.spec, chunk_bits);
            } else {
                if (gbits != G)
                    QGPU_PANIC("gate '", gate.toString(),
                               "' couples other chunk-index bits than "
                               "its sweep: not a sweep at chunk size ",
                               chunk_bits);
                op.cross = true;
                op.spec = makeKernelSpec(
                    remapGateForGroup(gate, G, chunk_bits));
                op.amps = num_groups * specAmps(op.spec, sub_qubits);
            }
            op.kind = op.spec.kind;
        }
        ops.push_back(std::move(op));
    }
    return ops;
}

/**
 * Chunks the engine's predicate cannot prove zero. Under bounded
 * storage these are exactly the chunks that must be materialized and
 * processed: kernels may write -0.0 into a value-zero chunk, so
 * skipping a chunk the raw path would touch could diverge by sign
 * bits.
 */
std::vector<Index>
liveChunks(const ChunkedStateVector &state, const ZeroPredicate &zero)
{
    std::vector<Index> live;
    live.reserve(state.numChunks());
    for (Index c = 0; c < state.numChunks(); ++c)
        if (!(zero && zero(c)))
            live.push_back(c);
    return live;
}

/** Groups with at least one live member (all groups without a
 *  predicate), matching the skip decision of the unbounded path. */
std::vector<Index>
liveGroups(const GatePlan &plan, const ZeroPredicate &zero)
{
    std::vector<Index> out;
    out.reserve(plan.numGroups());
    std::vector<Index> members;
    for (Index g = 0; g < plan.numGroups(); ++g) {
        if (zero) {
            plan.membersInto(g, members);
            if (std::all_of(members.begin(), members.end(),
                            [&zero](Index c) { return zero(c); }))
                continue;
        }
        out.push_back(g);
    }
    return out;
}

/**
 * Pinned-block pipeline over @p items for bounded-storage states:
 * each block's chunks (expand() appends an item's chunks) are pinned
 * before processing, and the NEXT block's refills are issued
 * asynchronously on the pool while the current block computes — the
 * sweep-aware prefetch that overlaps decompression with kernel work.
 * Pinned chunks are never evicted, so parallel workers only ever see
 * stable resident slots. A block may transiently overshoot the
 * working-set budget when a single item spans more chunks than the
 * budget allows; correctness is unaffected (the overshoot drains as
 * soon as the block unpins).
 */
template <typename Expand, typename Process>
void
runPinnedBlocks(ChunkResidency &res, std::span<const Index> items,
                Index items_per_block, Expand &&expand,
                Process &&process)
{
    if (items.empty())
        return;
    const auto block = static_cast<std::size_t>(items_per_block);
    std::vector<Index> cur_chunks, next_chunks;
    const auto collect = [&](std::size_t lo, std::size_t n,
                             std::vector<Index> &out) {
        out.clear();
        for (std::size_t i = lo; i < lo + n; ++i)
            expand(items[i], out);
    };
    std::size_t at = 0;
    std::size_t cur_n = std::min(block, items.size());
    collect(0, cur_n, cur_chunks);
    res.pin(cur_chunks);
    while (at < items.size()) {
        const std::size_t next_n =
            std::min(block, items.size() - at - cur_n);
        if (next_n > 0) {
            collect(at + cur_n, next_n, next_chunks);
            res.pinAsync(next_chunks);
        }
        process(items.subspan(at, cur_n));
        res.unpin(cur_chunks);
        if (next_n > 0)
            res.waitPins();
        at += cur_n;
        cur_n = next_n;
        std::swap(cur_chunks, next_chunks);
    }
}

/** expand() for items that are chunk indices themselves. */
void
expandChunk(Index c, std::vector<Index> &out)
{
    out.push_back(c);
}

} // namespace

void
applyGroup(ChunkedStateVector &state, const Gate &gate,
           const GatePlan &plan, Index group)
{
    if (plan.perChunk()) {
        // state.chunk() materializes on demand (serial path).
        if (gate.isDiagonal())
            applyDiagToChunk(state, gate.matrix(), gate.qubits,
                             group);
        else
            applySpecToChunk(state, makeKernelSpec(gate), group);
        return;
    }
    GroupScratch scratch;
    plan.membersInto(group, scratch.members);
    if (state.boundedStorage())
        state.residency()->pin(scratch.members);
    const Gate remapped = remapGateForGroup(gate, plan.globalBits(),
                                            state.chunkBits());
    applyGroupPrepared(state, makeKernelSpec(remapped), plan, scratch);
    if (state.boundedStorage())
        state.residency()->unpin(scratch.members);
}

void
applyGroups(ChunkedStateVector &state, const Gate &gate,
            const GatePlan &plan, std::span<const Index> groups)
{
    if (groups.empty())
        return;
    const int threads = simThreads();
    // Bounded storage: make every chunk this batch touches resident
    // before fanning out (workers must never trigger a refill). The
    // batch is caller-sized, so no block pipeline here — a batch
    // larger than the working set transiently overshoots, which is
    // safe (pinned chunks are never evicted).
    std::vector<Index> pinned;
    if (state.boundedStorage()) {
        if (plan.perChunk()) {
            pinned.assign(groups.begin(), groups.end());
        } else {
            std::vector<Index> members;
            for (Index g : groups) {
                plan.membersInto(g, members);
                pinned.insert(pinned.end(), members.begin(),
                              members.end());
            }
        }
        state.residency()->pin(pinned);
    }
    struct Unpin
    {
        ChunkedStateVector &state;
        const std::vector<Index> &chunks;
        ~Unpin()
        {
            if (!chunks.empty())
                state.residency()->unpin(chunks);
        }
    } unpin{state, pinned};
    if (plan.perChunk()) {
        if (gate.isDiagonal()) {
            const GateMatrix m = gate.matrix();
            parallelFor(
                0, groups.size(), threads,
                [&](std::uint64_t lo, std::uint64_t hi) {
                    for (std::uint64_t i = lo; i < hi; ++i)
                        applyDiagToChunk(state, m, gate.qubits,
                                         groups[i]);
                },
                1, static_cast<double>(state.chunkSize()));
            recordKernelMetrics(diagKindOf(gate.numQubits()),
                                groups.size() * state.chunkSize());
            return;
        }
        const KernelSpec spec = makeKernelSpec(gate);
        parallelFor(
            0, groups.size(), threads,
            [&](std::uint64_t lo, std::uint64_t hi) {
                for (std::uint64_t i = lo; i < hi; ++i)
                    applySpecToChunk(state, spec, groups[i]);
            },
            1,
            static_cast<double>(specAmps(spec, state.chunkBits())));
        recordKernelMetrics(spec.kind,
                            groups.size() *
                                specAmps(spec, state.chunkBits()));
        return;
    }
    const Gate remapped = remapGateForGroup(gate, plan.globalBits(),
                                            state.chunkBits());
    const KernelSpec spec = makeKernelSpec(remapped);
    const int sub_qubits =
        state.chunkBits() + static_cast<int>(plan.globalBits().size());
    parallelFor(
        0, groups.size(), threads,
        [&](std::uint64_t lo, std::uint64_t hi) {
            GroupScratch scratch;
            for (std::uint64_t i = lo; i < hi; ++i) {
                plan.membersInto(groups[i], scratch.members);
                applyGroupPrepared(state, spec, plan, scratch);
            }
        },
        1, static_cast<double>(specAmps(spec, sub_qubits)));
    recordKernelMetrics(spec.kind,
                        groups.size() * specAmps(spec, sub_qubits));
}

void
applyGateChunked(ChunkedStateVector &state, const Gate &gate,
                 const ZeroPredicate &zero)
{
    const WallClock wall;
    const GatePlan plan(gate, state.numQubits(), state.chunkBits());

    // The groups partition the chunk set: every chunk is a member of
    // exactly one group, which is what makes the concurrent fan-out
    // below race-free by construction.
    if (plan.numGroups() * static_cast<Index>(plan.chunksPerGroup()) !=
        state.numChunks())
        QGPU_PANIC("gate plan does not partition the ",
                   state.numChunks(), "-chunk state: ",
                   plan.numGroups(), " groups x ",
                   plan.chunksPerGroup(), " chunks");

    const int threads = simThreads();
    const bool bounded = state.boundedStorage();
    // Run body(chunk) over every live chunk: the plain parallel
    // fan-out, or (bounded storage) a pinned-block pipeline with
    // asynchronous prefetch of the next block's refills.
    const auto for_each_live_chunk = [&](double cost, auto &&body) {
        if (!bounded) {
            parallelFor(
                0, plan.numGroups(), threads,
                [&](std::uint64_t lo, std::uint64_t hi) {
                    for (Index g = lo; g < hi; ++g) {
                        if (zero && zero(g))
                            continue;
                        body(g);
                    }
                },
                1, cost);
            return;
        }
        ChunkResidency &res = *state.residency();
        const std::vector<Index> live = liveChunks(state, zero);
        runPinnedBlocks(
            res, live, res.maxPinnedBlock(), expandChunk,
            [&](std::span<const Index> blk) {
                parallelFor(
                    std::size_t{0}, blk.size(), threads,
                    [&](std::uint64_t lo, std::uint64_t hi) {
                        for (std::uint64_t i = lo; i < hi; ++i)
                            body(blk[i]);
                    },
                    1, cost);
            });
    };
    if (gate.isDiagonal()) {
        const GateMatrix m = gate.matrix();
        for_each_live_chunk(
            static_cast<double>(state.chunkSize()), [&](Index g) {
                applyDiagToChunk(state, m, gate.qubits, g);
            });
        recordKernelMetrics(diagKindOf(gate.numQubits()),
                            stateSize(state.numQubits()));
    } else if (plan.perChunk()) {
        const KernelSpec spec = makeKernelSpec(gate);
        for_each_live_chunk(
            static_cast<double>(specAmps(spec, state.chunkBits())),
            [&](Index g) { applySpecToChunk(state, spec, g); });
        recordKernelMetrics(spec.kind,
                            plan.numGroups() *
                                specAmps(spec, state.chunkBits()));
    } else {
        const Gate remapped = remapGateForGroup(
            gate, plan.globalBits(), state.chunkBits());
        const KernelSpec spec = makeKernelSpec(remapped);
        const int sub_qubits =
            state.chunkBits() +
            static_cast<int>(plan.globalBits().size());
        const double cost =
            static_cast<double>(specAmps(spec, sub_qubits));
        if (!bounded) {
            parallelFor(
                0, plan.numGroups(), threads,
                [&](std::uint64_t lo, std::uint64_t hi) {
                    GroupScratch scratch;
                    for (Index g = lo; g < hi; ++g) {
                        // Compute the member list once per group; the
                        // prune check and the apply below share it.
                        plan.membersInto(g, scratch.members);
                        if (zero) {
                            const bool all_zero = std::all_of(
                                scratch.members.begin(),
                                scratch.members.end(),
                                [&zero](Index c) { return zero(c); });
                            if (all_zero)
                                continue;
                        }
                        applyGroupPrepared(state, spec, plan, scratch);
                    }
                },
                1, cost);
        } else {
            // Gather/scatter touch every member, so whole groups are
            // pinned per block (same skip decision as above via
            // liveGroups).
            ChunkResidency &res = *state.residency();
            const std::vector<Index> lg = liveGroups(plan, zero);
            const Index per_block = std::max<Index>(
                1, res.maxPinnedBlock() / plan.chunksPerGroup());
            std::vector<Index> members;
            runPinnedBlocks(
                res, lg, per_block,
                [&](Index g, std::vector<Index> &out) {
                    plan.membersInto(g, members);
                    out.insert(out.end(), members.begin(),
                               members.end());
                },
                [&](std::span<const Index> blk) {
                    parallelFor(
                        std::size_t{0}, blk.size(), threads,
                        [&](std::uint64_t lo, std::uint64_t hi) {
                            GroupScratch scratch;
                            for (std::uint64_t i = lo; i < hi; ++i) {
                                plan.membersInto(blk[i],
                                                 scratch.members);
                                applyGroupPrepared(state, spec, plan,
                                                   scratch);
                            }
                        },
                        1, cost);
                });
        }
        recordKernelMetrics(spec.kind,
                            plan.numGroups() *
                                specAmps(spec, sub_qubits));
    }
    MetricsRegistry::global().observe("apply.wall_time",
                                      wall.seconds());
}

void
applySweepChunked(ChunkedStateVector &state,
                  std::span<const Gate> gates,
                  const std::vector<int> &global_bits,
                  const ZeroPredicate &zero)
{
    if (gates.empty())
        return;
    const WallClock wall;
    const int chunk_bits = state.chunkBits();
    const int num_qubits = state.numQubits();
    const Index chunk_size = state.chunkSize();
    const std::vector<SweepOp> ops =
        buildSweepOps(gates, global_bits, num_qubits, chunk_bits);
    const int threads = simThreads();

    if (global_bits.empty()) {
        // Chunk-local sweep: each chunk is loaded once and every gate
        // chains over it while it is cache-resident. A chunk that
        // out-sizes the cache-derived sweep tile (common/cacheinfo.hh)
        // is processed in aligned 2^tile_bits sub-blocks instead, so
        // each op reads amplitudes the previous op just wrote while
        // they are still L2-resident. The tile is widened until it
        // clears every chunk-local target/control bit of the sweep:
        // aligned tiles then contain whole work items of every op, so
        // tiling only splits kernel ranges on work-item boundaries —
        // bit-identical by the kernel range contract.
        int tile_bits = sweepTileBits();
        for (const SweepOp &op : ops) {
            if (op.diag) {
                for (const auto &[q, j] : op.low)
                    tile_bits = std::max(tile_bits, q + 1);
            } else {
                for (int q : op.spec.qubits)
                    tile_bits = std::max(tile_bits, q + 1);
            }
        }
        tile_bits = std::min(tile_bits, chunk_bits);
        const Index num_tiles = chunk_size >> tile_bits;
        const Index tile_amps = Index{1} << tile_bits;
        // Work items per tile for the non-diagonal ops: every op's
        // item count is a power of two dividing the chunk's amplitude
        // count, so it splits evenly across aligned tiles.
        std::vector<Index> op_tile_items(ops.size(), 0);
        for (std::size_t i = 0; i < ops.size(); ++i)
            if (!ops[i].diag)
                op_tile_items[i] =
                    kernelWorkItems(ops[i].spec, chunk_bits) /
                    num_tiles;
        const auto run_chunk = [&](Index c) {
            Amp *data = state.chunk(c).data();
            for (Index t = 0; t < num_tiles; ++t) {
                const Index a0 = t << tile_bits;
                for (std::size_t i = 0; i < ops.size(); ++i) {
                    const SweepOp &op = ops[i];
                    if (!op.diag) {
                        const Index per = op_tile_items[i];
                        applyKernel(op.spec, data, chunk_bits,
                                    t * per, (t + 1) * per);
                        continue;
                    }
                    // op.low bits all fall below tile_bits, so
                    // slice-local offsets select the same
                    // diagonal entries as chunk offsets.
                    int fixed = 0;
                    for (const auto &[g, j] : op.groupSel)
                        fixed |= static_cast<int>(bits::testBit(c, g))
                                 << j;
                    applyDiagFolded(data + a0, tile_amps, fixed,
                                    op.low, op.dm);
                }
            }
        };
        const double chunk_cost = static_cast<double>(ops.size()) *
                                  static_cast<double>(chunk_size);
        if (!state.boundedStorage()) {
            parallelFor(
                0, state.numChunks(), threads,
                [&](std::uint64_t lo, std::uint64_t hi) {
                    for (Index c = lo; c < hi; ++c) {
                        if (zero && zero(c))
                            continue;
                        run_chunk(c);
                    }
                },
                1, chunk_cost);
        } else {
            // Bounded storage: pin a working-set-sized block of live
            // chunks, compute it in parallel, and prefetch the next
            // block's refills on the pool meanwhile.
            ChunkResidency &res = *state.residency();
            const std::vector<Index> live = liveChunks(state, zero);
            runPinnedBlocks(
                res, live, res.maxPinnedBlock(), expandChunk,
                [&](std::span<const Index> blk) {
                    parallelFor(
                        std::size_t{0}, blk.size(), threads,
                        [&](std::uint64_t lo, std::uint64_t hi) {
                            for (std::uint64_t i = lo; i < hi; ++i)
                                run_chunk(blk[i]);
                        },
                        1, chunk_cost);
                });
        }
    } else {
        const GatePlan plan(global_bits, num_qubits, chunk_bits);
        if (plan.numGroups() *
                static_cast<Index>(plan.chunksPerGroup()) !=
            state.numChunks())
            QGPU_PANIC("sweep plan does not partition the ",
                       state.numChunks(), "-chunk state: ",
                       plan.numGroups(), " groups x ",
                       plan.chunksPerGroup(), " chunks");
        const int sub_qubits =
            chunk_bits + static_cast<int>(global_bits.size());
        const int span = plan.chunksPerGroup();
        const auto run_group = [&](Index g, GroupScratch &scratch,
                                   std::vector<char> &live) {
            plan.membersInto(g, scratch.members);
            // Per-member liveness, computed once: the mask
            // behind `zero` is constant across a sweep, and
            // skip decisions must match gate-by-gate exactly
            // (writing to a provably-zero chunk could flip
            // signed-zero bits).
            bool any_live = true;
            if (zero) {
                live.assign(span, 0);
                any_live = false;
                for (int m = 0; m < span; ++m)
                    if (!zero(scratch.members[m])) {
                        live[m] = 1;
                        any_live = true;
                    }
            }
            if (!any_live)
                return;
            prepareGathered(scratch, stateSize(sub_qubits));
            state.gatherChunks(scratch.members,
                               scratch.gathered.data());
            Amp *reg = scratch.gathered.data();
            for (const SweepOp &op : ops) {
                if (op.cross) {
                    // Whole gathered register, exactly like
                    // gate-by-gate's group apply (which runs
                    // when any member is live).
                    applyKernel(op.spec, reg, sub_qubits);
                    continue;
                }
                if (!op.diag) {
                    for (int m = 0; m < span; ++m) {
                        if (zero && !live[m])
                            continue;
                        applyKernel(op.spec, reg + m * chunk_size,
                                    chunk_bits);
                    }
                    continue;
                }
                int group_fixed = 0;
                for (const auto &[gb, j] : op.groupSel)
                    group_fixed |= static_cast<int>(bits::testBit(
                                       scratch.members[0], gb))
                                   << j;
                for (int m = 0; m < span; ++m) {
                    if (zero && !live[m])
                        continue;
                    int fixed = group_fixed;
                    for (const auto &[p, j] : op.memberSel)
                        fixed |= static_cast<int>(bits::testBit(
                                     static_cast<std::uint64_t>(m), p))
                                 << j;
                    applyDiagFolded(reg + m * chunk_size, chunk_size,
                                    fixed, op.low, op.dm);
                }
            }
            state.scatterChunks(scratch.members,
                                scratch.gathered.data());
        };
        const double group_cost = static_cast<double>(ops.size()) *
                                  static_cast<double>(chunk_size) *
                                  static_cast<double>(span);
        if (!state.boundedStorage()) {
            parallelFor(
                0, plan.numGroups(), threads,
                [&](std::uint64_t lo, std::uint64_t hi) {
                    GroupScratch scratch;
                    std::vector<char> live;
                    for (Index g = lo; g < hi; ++g)
                        run_group(g, scratch, live);
                },
                1, group_cost);
        } else {
            // Bounded storage: gather/scatter touch every member of a
            // group, so whole groups are pinned per block (all
            // members, dead ones included — a Zero chunk zero-fills
            // to exactly the bytes the raw path holds).
            ChunkResidency &res = *state.residency();
            const std::vector<Index> lg = liveGroups(plan, zero);
            const Index per_block =
                std::max<Index>(1, res.maxPinnedBlock() / span);
            std::vector<Index> members;
            runPinnedBlocks(
                res, lg, per_block,
                [&](Index g, std::vector<Index> &out) {
                    plan.membersInto(g, members);
                    out.insert(out.end(), members.begin(),
                               members.end());
                },
                [&](std::span<const Index> blk) {
                    parallelFor(
                        std::size_t{0}, blk.size(), threads,
                        [&](std::uint64_t lo, std::uint64_t hi) {
                            GroupScratch scratch;
                            std::vector<char> live;
                            for (std::uint64_t i = lo; i < hi; ++i)
                                run_group(blk[i], scratch, live);
                        },
                        1, group_cost);
                });
        }
    }

    // Kernel counters once per gate per sweep, with the same modeled
    // totals applyGateChunked records; the sweep counters expose how
    // many full passes over the state the circuit actually cost.
    for (const SweepOp &op : ops)
        recordKernelMetrics(op.kind, op.amps);
    auto &mr = MetricsRegistry::global();
    mr.add("sweep.count");
    mr.add("sweep.state_passes");
    mr.observe("sweep.gates_per_sweep",
               static_cast<double>(gates.size()));
    mr.observe("apply.wall_time", wall.seconds());
}

void
applyCircuitChunked(ChunkedStateVector &state, const Circuit &circuit)
{
    if (circuit.numQubits() != state.numQubits())
        QGPU_PANIC("circuit register ", circuit.numQubits(),
                   " != state register ", state.numQubits());
    const std::span<const Gate> gates{circuit.gates()};
    std::size_t at = 0;
    while (at < gates.size()) {
        const Sweep sweep = nextSweep(gates, at, state.chunkBits());
        applySweepChunked(state,
                          gates.subspan(sweep.begin, sweep.size()),
                          sweep.globalBits);
        at = sweep.end;
    }
}

} // namespace qgpu
